# Development targets for the CoPart reproduction.

GO ?= go

.PHONY: all build vet lint test test-race cover bench bench-json bench-guard bench-fleet figures verify smoke clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus copartlint, the repo's own go/analysis-style
# suite (determinism with taint paths, noalloc with call-graph reachability,
# parclosure, directive hygiene, floatcmp — see DESIGN.md §10 and §15).
# CI runs this before the tests.
lint: vet
	$(GO) run ./cmd/copartlint ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/...

cover:
	$(GO) test -cover ./internal/... .

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot of the solver and experiment-engine
# hot paths: the heavy figure benchmarks at a fixed small iteration count
# and the microbenchmarks at a larger one, merged into one JSON file.
BENCHJSON_DATE ?= $(shell date +%F)
# Benchmark output is staged through a file, not piped live: in a pipe,
# `go run ./cmd/benchjson` compiles concurrently with the first
# benchmark and skews its timings on small machines.
BENCH_RAW ?= /tmp/bench-raw.txt
# The heavy macro benchmarks run with -count 3 so the snapshot records
# the run-to-run spread; benchguard compares the fastest record per name.
# Both snapshot targets merge into any existing BENCH_<date>.json
# (benchjson -merge): re-run benchmarks are deduped to min-of-runs and
# untouched entries survive, so bench-json and bench-fleet compose on
# the same day instead of clobbering each other. The merge stages
# through $(BENCH_MERGED) because redirecting onto the merge source
# would truncate it before benchjson reads it.
BENCH_MERGED ?= /tmp/bench-merged.json
bench-json:
	{ $(GO) test -run xxx -bench 'BenchmarkFig12$$|BenchmarkFig1$$' -benchtime 2x -count 3 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkFleet256$$' -benchtime 5x -count 3 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkFleet4096$$' -benchtime 2x -count 3 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkMachineSolve$$|BenchmarkGetNextSystemState4$$|BenchmarkManagerPeriod$$' -benchtime 1000x -benchmem . ; } \
	> $(BENCH_RAW)
	$(GO) run ./cmd/benchjson -merge BENCH_$(BENCHJSON_DATE).json < $(BENCH_RAW) > $(BENCH_MERGED)
	mv $(BENCH_MERGED) BENCH_$(BENCHJSON_DATE).json
	@cat BENCH_$(BENCHJSON_DATE).json

# Fleet-scale snapshot only: the Fleet256 steady-state budget, the
# Fleet4096/Fleet16384/Fleet65536 scale proofs (p99 period latency flat
# as nodes grow — compare the p99ns extras), the FleetChurn
# fleet-over-trace run, and a fleetbench -parallel sweep recording the
# 1/4/16-worker scaling of one fixed fleet (the block-batched dispatch
# must not regress at any worker count). All test-binary runs carry
# -benchmem so benchguard can hold the allocs_per_op and bytes_per_op
# lines. Emits the same dated JSON format as bench-json and merges the
# same way.
bench-fleet:
	{ $(GO) test -run xxx -bench 'BenchmarkFleet256$$' -benchtime 5x -count 3 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkFleet4096$$' -benchtime 2x -count 3 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkFleet16384$$' -benchtime 1x -count 3 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkFleet65536$$' -benchtime 1x -count 2 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkFleetChurn$$' -benchtime 2x -count 3 -benchmem . ; \
	  for wk in 1 4 16 ; do \
	    $(GO) run ./cmd/fleetbench -nodes 4096 -periods 50 -parallel $$wk -benchline BenchmarkFleetWorkers$$wk ; \
	  done ; } \
	> $(BENCH_RAW)
	$(GO) run ./cmd/benchjson -merge BENCH_$(BENCHJSON_DATE).json < $(BENCH_RAW) > $(BENCH_MERGED)
	mv $(BENCH_MERGED) BENCH_$(BENCHJSON_DATE).json
	@cat BENCH_$(BENCHJSON_DATE).json

# Guard the headline benchmarks against the newest committed BENCH_*.json:
# rerun them at the bench-json iteration counts and fail on a >20 % ns/op
# regression. Run this BEFORE bench-json — regenerating the snapshot first
# would compare the fresh run against itself. Baselines are machine-
# specific; see DESIGN.md §9 for the cross-machine caveat.
BENCHGUARD_CUR ?= /tmp/bench-guard-cur.json
bench-guard:
	{ $(GO) test -run xxx -bench 'BenchmarkFig12$$' -benchtime 2x -count 3 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkFleet256$$' -benchtime 5x -count 3 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkFleet4096$$' -benchtime 2x -count 3 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkFleet16384$$' -benchtime 1x -count 3 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkFleet65536$$' -benchtime 1x -count 2 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkFleetChurn$$' -benchtime 2x -count 3 -benchmem . ; \
	  $(GO) test -run xxx -bench 'BenchmarkMachineSolve$$' -benchtime 1000x -count 3 -benchmem . ; } \
	> $(BENCH_RAW)
	$(GO) run ./cmd/benchjson < $(BENCH_RAW) > $(BENCHGUARD_CUR)
	$(GO) run ./cmd/benchguard -base "$$(ls BENCH_*.json | sort | tail -1)" -cur $(BENCHGUARD_CUR) \
	  -bench BenchmarkFig12,BenchmarkMachineSolve,BenchmarkFleet256,BenchmarkFleet4096,BenchmarkFleet16384,BenchmarkFleet65536,BenchmarkFleetChurn

# Crash-safety gate: first the lint-suite fixture smoke (the antest
# golden fixtures are the fastest whole-stack check of the analyzers
# gating this build), then capture a real snapshot from copartd, verify
# its replay is deterministic (snap2test -check), and generate a pinned
# regression test from it and run it. The generated test lands in
# _verify/ — underscore-prefixed so ./... wildcards never pick it up;
# it is removed again on success and left behind for inspection on
# failure.
VERIFY_SNAP ?= /tmp/copart-verify-snap.json
verify: build
	$(GO) test -run Fixture -count=1 ./internal/analysis
	$(GO) run ./cmd/copartd -mix H-Both -apps 4 -duration 60s -seed 1 -snapshot-exit $(VERIFY_SNAP) > /dev/null
	$(GO) run ./cmd/snap2test -snapshot $(VERIFY_SNAP) -duration 30s -check
	rm -rf _verify && mkdir _verify
	$(GO) run ./cmd/snap2test -snapshot $(VERIFY_SNAP) -duration 30s -name Verify -o _verify/replay_test.go
	$(GO) test ./_verify/
	rm -rf _verify

# Black-box control-plane smoke: boot copartd with the admission API on
# loopback and drive add/reweight/remove, snapshot round-trip, and a
# /metrics scrape with curl. See scripts/smoke_copartd.sh.
smoke: build
	./scripts/smoke_copartd.sh

# Regenerate every table and figure of the paper into ./out/ (text + SVG).
figures:
	mkdir -p out
	$(GO) run ./cmd/characterize -table1 -table2 > out/tables.txt
	$(GO) run ./cmd/characterize -fig 1 -svg out > out/fig1.txt
	$(GO) run ./cmd/characterize -fig 2 -svg out > out/fig2.txt
	$(GO) run ./cmd/characterize -fig 3 -svg out > out/fig3.txt
	$(GO) run ./cmd/fairmap -fig 4 -svg out > out/fig4.txt
	$(GO) run ./cmd/fairmap -fig 5 -svg out > out/fig5.txt
	$(GO) run ./cmd/fairmap -fig 6 -svg out > out/fig6.txt
	$(GO) run ./cmd/sensitivity -param all > out/fig11.txt
	$(GO) run ./cmd/evaluate -fig 12 -svg out > out/fig12.txt
	$(GO) run ./cmd/evaluate -fig 13 -svg out > out/fig13.txt
	$(GO) run ./cmd/evaluate -fig 14 -svg out > out/fig14.txt
	$(GO) run ./cmd/casestudy -csv out/fig15.csv -svg out/fig15.svg > out/fig15.txt
	$(GO) run ./cmd/overhead -convergence > out/fig16.txt
	$(GO) run ./cmd/evaluate -fig 17 -svg out > out/fig17.txt
	$(GO) run ./cmd/evaluate -fig 12 -extended > out/fig12_extended.txt
	$(GO) run ./cmd/evaluate -dualsocket > out/dualsocket.txt
	$(GO) run ./cmd/ablate > out/ablation.txt

clean:
	rm -rf out
