package repro

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/policies"
	"repro/internal/resctrl"
	"repro/internal/workloads"
)

// Machine simulation (internal/machine).
type (
	// Config describes the simulated server (Table 1 by default).
	Config = machine.Config
	// Machine is the simulated commodity server.
	Machine = machine.Machine
	// AppModel is the analytic description of one application.
	AppModel = machine.AppModel
	// WSComponent is one hot working-set component of an AppModel.
	WSComponent = machine.WSComponent
	// Alloc is a per-application (CBM, MBA level) allocation.
	Alloc = machine.Alloc
	// Counters are the simulated performance counters.
	Counters = machine.Counters
	// Perf is a solved steady-state performance point.
	Perf = machine.Perf
)

// DefaultConfig returns the paper's machine: 16 cores at 2.1 GHz, a 22 MB
// 11-way LLC, and a ~28 GB/s DRAM budget.
func DefaultConfig() Config { return machine.DefaultConfig() }

// NewMachine builds a simulated server.
func NewMachine(cfg Config) (*Machine, error) { return machine.New(cfg) }

// EqualSplit divides ways evenly across n applications.
func EqualSplit(totalWays, n int) ([]int, error) { return machine.EqualSplit(totalWays, n) }

// AssignContiguousWays converts way counts into exclusive contiguous CBMs.
func AssignContiguousWays(counts []int, lo, totalWays int) ([]uint64, error) {
	return machine.AssignContiguousWays(counts, lo, totalWays)
}

// CoPart controller (internal/core).
type (
	// Params are CoPart's design parameters (§5).
	Params = core.Params
	// Manager is CoPart's resource manager.
	Manager = core.Manager
	// Envelope is the window of LLC ways the manager governs.
	Envelope = core.Envelope
	// Target abstracts the controlled machine.
	Target = core.Target
	// PeriodReport summarizes one control period.
	PeriodReport = core.PeriodReport
	// State is a classifier state (Supply / Maintain / Demand).
	State = core.State
	// AllocState is the controller's per-application system state.
	AllocState = core.AllocState
)

// Classifier states.
const (
	Supply   = core.Supply
	Maintain = core.Maintain
	Demand   = core.Demand
)

// DefaultParams returns the paper's parameter configuration.
func DefaultParams() Params { return core.DefaultParams() }

// NewManager builds the CoPart resource manager over a target.
func NewManager(target Target, params Params, streamRef map[int]float64, env Envelope, rng *rand.Rand) (*Manager, error) {
	return core.NewManager(target, params, streamRef, env, rng)
}

// Workloads (internal/workloads).
type (
	// BenchSpec pairs a calibrated benchmark model with its Table 2
	// classification and reference rates.
	BenchSpec = workloads.Spec
	// MixKind enumerates the seven evaluation workload mixes.
	MixKind = workloads.MixKind
	// Category is the four-way benchmark classification.
	Category = workloads.Category
	// LatencyCritical models the §6.3 latency-critical service.
	LatencyCritical = workloads.LatencyCritical
)

// Workload mix kinds (Figure 12 order).
const (
	HLLC  = workloads.HLLC
	HBW   = workloads.HBW
	HBoth = workloads.HBoth
	MLLC  = workloads.MLLC
	MBW   = workloads.MBW
	MBoth = workloads.MBoth
	IS    = workloads.IS
)

// Benchmark categories.
const (
	LLCSensitive  = workloads.LLCSensitive
	BWSensitive   = workloads.BWSensitive
	DualSensitive = workloads.DualSensitive
	Insensitive   = workloads.Insensitive
)

// Catalog returns the eleven Table 2 benchmarks calibrated against cfg.
func Catalog(cfg Config) ([]BenchSpec, error) { return workloads.Catalog(cfg) }

// Benchmark returns one calibrated benchmark by its Table 2 name.
func Benchmark(cfg Config, name string) (BenchSpec, error) { return workloads.ByName(cfg, name) }

// Mix builds one of the paper's workload mixes with n applications.
func Mix(cfg Config, kind MixKind, n int) ([]AppModel, error) {
	return workloads.Mix(cfg, kind, n)
}

// StreamMissRates profiles the STREAM reference at every MBA level,
// producing the traffic-ratio denominators the manager needs.
func StreamMissRates(m *Machine) (map[int]float64, error) {
	return workloads.StreamMissRates(m)
}

// Memcached returns the case study's latency-critical service model.
func Memcached(cfg Config) LatencyCritical { return workloads.Memcached(cfg) }

// Policies (internal/policies).
type (
	// Policy allocates resources for a workload mix.
	Policy = policies.Policy
	// PolicyResult is a policy's steady-state outcome.
	PolicyResult = policies.Result
)

// NewEQ returns the equal-allocation baseline.
func NewEQ() Policy { return policies.EQ{} }

// NewST returns the static-oracle baseline.
func NewST() Policy { return policies.ST{} }

// NewCoPart returns the coordinated CoPart policy.
func NewCoPart(seed int64) Policy { return policies.CoPart(seed) }

// NewCATOnly returns the dynamic-LLC-only baseline.
func NewCATOnly(seed int64) Policy { return policies.CATOnly(seed) }

// NewMBAOnly returns the dynamic-bandwidth-only baseline.
func NewMBAOnly(seed int64) Policy { return policies.MBAOnly(seed) }

// NewUnpartitioned returns the no-partitioning baseline.
func NewUnpartitioned() Policy { return policies.None{} }

// Metrics (internal/fairness).

// Slowdown computes Equation 1: ipsFull / ips.
func Slowdown(ipsFull, ips float64) (float64, error) { return fairness.Slowdown(ipsFull, ips) }

// Unfairness computes Equation 2: σ/μ over the slowdowns.
func Unfairness(slowdowns []float64) (float64, error) { return fairness.Unfairness(slowdowns) }

// resctrl interface (internal/resctrl).
type (
	// ResctrlClient drives a resctrl-shaped directory tree (real or
	// simulated).
	ResctrlClient = resctrl.Client
	// Schemata is a parsed resctrl schemata file.
	Schemata = resctrl.Schemata
)

// OpenResctrl opens a resctrl tree (e.g. /sys/fs/resctrl).
func OpenResctrl(root string) (*ResctrlClient, error) { return resctrl.Open(root) }

// NewSimResctrl materializes a simulated resctrl tree under dir.
func NewSimResctrl(dir string, cfg Config) (*ResctrlClient, error) {
	return resctrl.NewSimTree(dir, cfg)
}

// RunFor drives a manager for a span of target time — a convenience for
// quick starts.
func RunFor(m *Manager, d time.Duration) error { return m.Run(d) }
