package repro_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro"
)

// TestPublicAPIQuickstart exercises the facade the way README's
// quickstart does: build a machine, consolidate a mix, run the
// controller, compare against a baseline policy.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := repro.DefaultConfig()
	models, err := repro.Mix(cfg, repro.HLLC, 4)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := repro.NewEQ().Run(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := repro.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := repro.NewManager(m, repro.DefaultParams(), ref,
		repro.Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	var last repro.PeriodReport
	mgr.OnPeriod = func(r repro.PeriodReport) { last = r }
	if err := repro.RunFor(mgr, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if last.Unfairness >= eq.Unfairness {
		t.Errorf("CoPart %.4f should beat EQ %.4f through the public API",
			last.Unfairness, eq.Unfairness)
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	cfg := repro.DefaultConfig()
	models, err := repro.Mix(cfg, repro.MBoth, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []repro.Policy{
		repro.NewEQ(), repro.NewST(), repro.NewCoPart(1),
		repro.NewCATOnly(1), repro.NewMBAOnly(1), repro.NewUnpartitioned(),
	} {
		res, err := p.Run(cfg, models)
		if err != nil {
			t.Errorf("%s: %v", p.Name(), err)
			continue
		}
		if res.Unfairness < 0 || len(res.Slowdowns) != 4 {
			t.Errorf("%s: malformed result %+v", p.Name(), res)
		}
	}
}

func TestPublicAPIMetrics(t *testing.T) {
	s, err := repro.Slowdown(200, 100)
	if err != nil || s != 2 {
		t.Errorf("Slowdown=%v,%v", s, err)
	}
	u, err := repro.Unfairness([]float64{1, 3})
	if err != nil || math.Abs(u-0.5) > 1e-12 {
		t.Errorf("Unfairness=%v,%v", u, err)
	}
}

func TestPublicAPICatalog(t *testing.T) {
	cfg := repro.DefaultConfig()
	specs, err := repro.Catalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 11 {
		t.Fatalf("catalog size %d", len(specs))
	}
	wn, err := repro.Benchmark(cfg, "WN")
	if err != nil {
		t.Fatal(err)
	}
	if wn.Category != repro.LLCSensitive {
		t.Errorf("WN category %v", wn.Category)
	}
	lc := repro.Memcached(cfg)
	if lc.SLO != time.Millisecond {
		t.Errorf("memcached SLO %v", lc.SLO)
	}
}

func TestPublicAPIResctrl(t *testing.T) {
	cfg := repro.DefaultConfig()
	client, err := repro.NewSimResctrl(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.CreateGroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := client.WriteSchemata("g", repro.Schemata{
		L3: map[int]uint64{0: 0x3},
		MB: map[int]int{0: 50},
	}); err != nil {
		t.Fatal(err)
	}
	s, err := client.ReadSchemata("g")
	if err != nil {
		t.Fatal(err)
	}
	if s.L3[0] != 0x3 || s.MB[0] != 50 {
		t.Errorf("schemata %+v", s)
	}
	if _, err := repro.OpenResctrl(t.TempDir()); err == nil {
		t.Error("opening an empty dir should error")
	}
}

func TestPublicAPILayoutHelpers(t *testing.T) {
	counts, err := repro.EqualSplit(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	masks, err := repro.AssignContiguousWays(counts, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	var union uint64
	for _, m := range masks {
		if union&m != 0 {
			t.Error("masks overlap")
		}
		union |= m
	}
	if union != (1<<11)-1 {
		t.Errorf("union %#x should cover all ways", union)
	}
}
