// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index), plus
// microbenchmarks of the core mechanisms. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN / BenchmarkFigN target executes the corresponding
// harness end to end; the cmd/ tools print the same rows.
package repro_test

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/machine"
	"repro/internal/matching"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// sequential pins the experiment engine to one worker for the benchmark,
// restoring the all-cores default afterwards. The Seq variants give the
// single-thread baseline the parallel figures are compared against.
func sequential(b *testing.B) {
	parallel.SetWorkers(1)
	b.Cleanup(func() { parallel.SetWorkers(0) })
}

func cfg() machine.Config { return machine.DefaultConfig() }

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table2(cfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPerfFigure(b *testing.B, fig int) {
	names, err := experiments.FigureBenches(fig)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range names {
			if _, _, err := experiments.PerfHeatmap(cfg(), n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig1(b *testing.B) { benchPerfFigure(b, 1) }
func BenchmarkFig2(b *testing.B) { benchPerfFigure(b, 2) }
func BenchmarkFig3(b *testing.B) { benchPerfFigure(b, 3) }

func BenchmarkFig1Seq(b *testing.B) {
	sequential(b)
	benchPerfFigure(b, 1)
}

func benchFairFigure(b *testing.B, fig int) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.FairnessHeatmap(cfg(), fig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) { benchFairFigure(b, 4) }
func BenchmarkFig5(b *testing.B) { benchFairFigure(b, 5) }
func BenchmarkFig6(b *testing.B) { benchFairFigure(b, 6) }

func BenchmarkFig11a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure11(cfg(), experiments.SensPerf, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure11(cfg(), experiments.SensMissRatio, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure11(cfg(), experiments.SensTraffic, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// reportShared attaches the process-wide solve-cache deltas of the
// benchmark loop as custom metrics (benchjson surfaces them in Extra).
func reportShared(b *testing.B, before machine.SharedCacheStats) {
	after := machine.SharedSolveCacheStats()
	n := float64(b.N)
	b.ReportMetric(float64(after.Hits-before.Hits)/n, "L2hits/op")
	b.ReportMetric(float64(after.Misses-before.Misses)/n, "L2misses/op")
	b.ReportMetric(float64(after.Evictions-before.Evictions)/n, "L2evict/op")
}

func BenchmarkFig12(b *testing.B) {
	before := machine.SharedSolveCacheStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure12(cfg(), 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportShared(b, before)
}

// BenchmarkFig12NoShared is Figure 12 with the process-wide L2 disabled —
// the ablation that isolates what cross-run sharing contributes.
func BenchmarkFig12NoShared(b *testing.B) {
	prev := machine.SetSharedSolveCache(false)
	b.Cleanup(func() { machine.SetSharedSolveCache(prev) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure12(cfg(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Seq(b *testing.B) {
	sequential(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure12(cfg(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure13(cfg(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure14(cfg(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CaseStudy(cfg(), experiments.DefaultLoadTrace(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure16(cfg(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure17(cfg(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks of the core mechanisms ---

// benchAllocatorState builds an n-application allocation problem with a
// mixture of supplier and demander states.
func benchAllocatorState(n int) (core.AllocState, []core.AppInfo) {
	ways := make([]int, n)
	mba := make([]int, n)
	infos := make([]core.AppInfo, n)
	remaining := 11 - n
	for i := range ways {
		ways[i] = 1
		if remaining > 0 {
			ways[i]++
			remaining--
		}
		mba[i] = 50
		infos[i] = core.AppInfo{
			LLCState: core.State(i % 3),
			MBAState: core.State((i + 1) % 3),
			Slowdown: 1 + float64(i)*0.3,
		}
	}
	return core.AllocState{Ways: ways, MBA: mba}, infos
}

// BenchmarkGetNextSystemState measures the paper's Figure 16 primitive:
// one instability-chaining allocation step (paper: 10.6–14.4 µs for 3–6
// applications, on their hardware, including bookkeeping).
func benchGetNext(b *testing.B, n int) {
	st, infos := benchAllocatorState(n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GetNextSystemState(st, infos, 11, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetNextSystemState3(b *testing.B) { benchGetNext(b, 3) }
func BenchmarkGetNextSystemState4(b *testing.B) { benchGetNext(b, 4) }
func BenchmarkGetNextSystemState5(b *testing.B) { benchGetNext(b, 5) }
func BenchmarkGetNextSystemState6(b *testing.B) { benchGetNext(b, 6) }

// BenchmarkManagerPeriod measures one steady-state exploration control
// period — sample, step, classify, match, actuate — the per-second work
// of a deployed controller. An effectively infinite θ keeps the manager
// exploring (repeated states perturb instead of parking), so every
// iteration exercises the same path; the allocation budget this loop
// runs under is pinned by TestManagerPeriodAllocationGuard.
func BenchmarkManagerPeriod(b *testing.B) {
	c := cfg()
	m, err := machine.New(c, machine.WithSolveCache())
	if err != nil {
		b.Fatal(err)
	}
	models, err := workloads.Mix(c, workloads.HBoth, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			b.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		b.Fatal(err)
	}
	params := core.DefaultParams()
	params.Theta = 1 << 30
	mgr, err := core.NewManager(m, params, ref, core.Envelope{LoWay: 0, Ways: c.LLCWays},
		rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	if err := mgr.Profile(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.ExploreStep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleet256 measures the fleet driver at the cmd/fleetbench
// default scale: 256 independent nodes, each profiling and then running
// 10 control periods, fanned across the worker pool.
func BenchmarkFleet256(b *testing.B) { benchFleet(b, 256) }

// BenchmarkFleet4096 is the scale proof: 16× the nodes with the same
// per-node period cost — p99 period latency stays flat relative to
// Fleet256 because nodes share nothing mutable but the (lock-striped)
// L2 solve cache and the immutable mix and profile memos.
func BenchmarkFleet4096(b *testing.B) { benchFleet(b, 4096) }

// BenchmarkFleet16384 extends the scale proof another 4×: with the
// bounded latency samplers the per-run memory cost no longer scales
// with Nodes×Periods, so p99 period latency must stay flat against
// Fleet4096.
func BenchmarkFleet16384(b *testing.B) { benchFleet(b, 16384) }

// BenchmarkFleet65536 is the 100k-scale proof: 4× Fleet16384 again,
// blocks dispatched across the pool, telemetry striped per block, zero
// allocations per run at steady state. p99 period latency must stay
// flat against the smaller fleets. CI runs it at a tiny node count
// (FLEET_SMOKE_NODES) as a smoke test; the real scale runs under
// make bench-fleet.
func BenchmarkFleet65536(b *testing.B) {
	nodes := 65536
	if s := os.Getenv("FLEET_SMOKE_NODES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			b.Fatalf("FLEET_SMOKE_NODES=%q", s)
		}
		nodes = n
	}
	benchFleet(b, nodes)
}

// BenchmarkFleetChurn measures fleet-over-trace: 1024 nodes arriving on
// a Poisson schedule and living for exponential lifetimes (mean 10
// periods), every arrival reinitializing a departed node's pooled
// runtime across differing mix shapes. The acceptance targets — flat
// p99 vs the fixed fleets and ≤16 allocs/op at steady state — are held
// by benchguard (allocs, ns/op) and TestChurnSteadyStateAllocs.
func BenchmarkFleetChurn(b *testing.B) {
	cfg := fleet.ChurnConfig{Arrivals: 1024, Rate: 4, MeanLife: 10, MaxLife: 40, Seed: 1}
	var res fleet.Result
	if err := fleet.RunChurnInto(cfg, &res); err != nil { // warm pool + memos
		b.Fatal(err)
	}
	before := machine.SharedSolveCacheStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fleet.RunChurnInto(cfg, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportShared(b, before)
	b.ReportMetric(float64(res.P99.Nanoseconds()), "p99ns")
	b.ReportMetric(float64(res.Pool.Hits+res.Pool.Carries), "poolhits/run")
}

// benchFleet runs the fleet driver at a given scale: independent nodes,
// each profiling and then running 10 control periods, dispatched in
// blocks across the worker pool. One untimed warm-up run populates the
// node-runtime pool, the profile memo, and the reused Result so the
// timed iterations measure the steady state a long-lived fleet driver
// lives in — with RunInto, that steady state is allocation-free. The
// last run's p99 per-period latency is attached as a custom metric —
// the figure the scale proofs hold flat from Fleet256 up.
func benchFleet(b *testing.B, nodes int) {
	cfg := fleet.Config{Nodes: nodes, Periods: 10, Seed: 1}
	var res fleet.Result
	if err := fleet.RunInto(cfg, &res); err != nil {
		b.Fatal(err)
	}
	before := machine.SharedSolveCacheStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fleet.RunInto(cfg, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportShared(b, before)
	b.ReportMetric(float64(res.P99.Nanoseconds()), "p99ns")
}

// BenchmarkMachineSolve measures one steady-state solve of a consolidated
// 4-application system — the inner loop of every experiment.
func BenchmarkMachineSolve(b *testing.B) {
	m, err := machine.New(cfg())
	if err != nil {
		b.Fatal(err)
	}
	models, err := workloads.Mix(cfg(), workloads.HBoth, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineSolveCached measures the same solve with memoization
// enabled and the allocation unchanged — the Dynamic controller's case of
// revisiting an already-solved state.
func BenchmarkMachineSolveCached(b *testing.B) {
	m, err := machine.New(cfg(), machine.WithSolveCache())
	if err != nil {
		b.Fatal(err)
	}
	models, err := workloads.Mix(cfg(), workloads.HBoth, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := m.Solve(); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineSolveSessionHit measures the warm two-tier hit path —
// a SolveSession revisiting an already-solved state, the ST oracle's
// per-state cost once the shared cache is warm. Pinned at 0 allocs/op
// by TestCachedSolveAllocationGuard.
func BenchmarkMachineSolveSessionHit(b *testing.B) {
	c := cfg()
	m, err := machine.New(c, machine.WithSolveCache())
	if err != nil {
		b.Fatal(err)
	}
	models, err := workloads.Mix(c, workloads.HBoth, 4)
	if err != nil {
		b.Fatal(err)
	}
	masks, err := machine.AssignContiguousWays([]int{3, 3, 3, 2}, 0, c.LLCWays)
	if err != nil {
		b.Fatal(err)
	}
	allocs := make([]machine.Alloc, len(models))
	for i := range allocs {
		allocs[i] = machine.Alloc{CBM: masks[i], MBALevel: 100}
	}
	session := m.NewSolveSession(models)
	perfs := make([]machine.Perf, len(models))
	if err := session.SolveInto(perfs, allocs); err != nil { // warm both tiers
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := session.SolveInto(perfs, allocs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineSolveExclusive measures the solver's fast path: every
// application on a private contiguous LLC partition, which converges in
// the short fixed-point schedule and is the allocation-guard target.
func BenchmarkMachineSolveExclusive(b *testing.B) {
	c := cfg()
	m, err := machine.New(c)
	if err != nil {
		b.Fatal(err)
	}
	models, err := workloads.Mix(c, workloads.HBoth, 4)
	if err != nil {
		b.Fatal(err)
	}
	masks, err := machine.AssignContiguousWays([]int{3, 3, 3, 2}, 0, c.LLCWays)
	if err != nil {
		b.Fatal(err)
	}
	for i, model := range models {
		if err := m.AddApp(model); err != nil {
			b.Fatal(err)
		}
		if err := m.SetAllocation(model.Name, machine.Alloc{CBM: masks[i], MBALevel: 100}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSimAccess measures the trace-driven simulator's access
// path.
func BenchmarkCacheSimAccess(b *testing.B) {
	c, err := cachesim.New(cachesim.Config{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64}, nil)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := trace.NewZipf(0, 4<<20, 64, 1.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	mask := c.FullMask()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Access(0, gen.Next(), mask); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchingSolve measures the generic HR solver at a size typical
// of the controller's rounds.
func BenchmarkMatchingSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := matching.Instance{
		Capacity:      []int{2, 2, 2},
		HospitalPrefs: make([][]int, 3),
		ResidentPrefs: make([][]int, 6),
	}
	for h := range in.HospitalPrefs {
		in.HospitalPrefs[h] = rng.Perm(6)
	}
	for r := range in.ResidentPrefs {
		in.ResidentPrefs[r] = rng.Perm(3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matching.Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMRCAblation compares deriving a miss-ratio curve by
// trace-driven simulation against evaluating the analytic working-set
// model — the design choice DESIGN.md calls out (analytic models keep the
// solver fast; the trace-driven curve grounds them).
func BenchmarkMRCAblation(b *testing.B) {
	simCfg := cachesim.Config{SizeBytes: 2 << 20, Ways: 8, LineBytes: 64}
	b.Run("trace-driven", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gen, err := trace.NewLoop(0, 1<<20, 64)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cachesim.ProfileMRC(simCfg, gen, nil, 4096, 8192); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("analytic", func(b *testing.B) {
		model := machine.AppModel{
			Name: "a", Cores: 1, CPIBase: 1, AccPerInstr: 0.01,
			Hot: []machine.WSComponent{{Bytes: 1 << 20, Weight: 1}},
		}
		for i := 0; i < b.N; i++ {
			for w := 1; w <= 8; w++ {
				_ = model.MissRatio(float64(w) * (256 << 10))
			}
		}
	})
}
