// Command ablate quantifies what each of the controller's reconstruction
// mechanisms contributes: it runs CoPart with every feature disabled one
// at a time (and all at once) across the sensitive workload mixes and
// reports the fairness cost of each removal. See DESIGN.md §3 and the
// reconstruction notes in internal/core/classifier.go for what the
// mechanisms are and why the paper's prose alone under-determines them.
//
// Usage:
//
//	ablate [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/parallel"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for the controller")
	workers := flag.Int("parallel", 0, "worker count for the experiment engine (0 = all cores)")
	flag.Parse()

	parallel.SetWorkers(*workers)
	if err := run(*seed); err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
}

func run(seed int64) error {
	_, tab, err := experiments.Ablations(machine.DefaultConfig(), seed)
	if err != nil {
		return err
	}
	return tab.Render(os.Stdout)
}
