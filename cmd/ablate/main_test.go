package main

import "testing"

func TestRun(t *testing.T) {
	if err := run(1); err != nil {
		t.Fatal(err)
	}
}
