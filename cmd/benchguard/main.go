// Command benchguard compares two benchjson snapshots and fails when a
// watched benchmark regressed beyond a threshold. It is the backend of
// `make bench-guard`, which CI runs against the committed BENCH_*.json
// baseline before regenerating it, so a solver or cache regression
// breaks the build instead of silently rebasing the record.
//
// Usage:
//
//	benchguard -base BENCH_2026-08-05.json -cur /tmp/fresh.json \
//	    -bench BenchmarkFig12,BenchmarkMachineSolve,BenchmarkFleet256
//
// A benchmark missing from the current snapshot fails the guard (the
// suite lost coverage); one missing from the baseline only warns (the
// baseline predates the benchmark and the next bench-json run records
// it). Three metrics are compared against the same budget: ns/op, and —
// when both snapshots carry them (-benchmem) — allocs/op and B/op, so
// the fleet's zero-alloc steady state cannot silently rot behind a
// timing that still squeaks by. A zero baseline for either memory
// metric is absolute: any current usage fails regardless of the
// percentage budget. The
// cache-counter extras are workload metrics, not timings, and are not
// guarded. When a snapshot holds several records for one benchmark (a
// -count>1 run), the guard compares the per-metric minimum across the
// runs on each side: the minimum is the noise-robust estimator of a
// benchmark's true cost, and taking it per metric rather than from the
// single fastest run also discards one-off background allocations —
// the -benchmem counters are global MemStats deltas, so a GC or
// runtime goroutine allocating mid-run can put a few stray bytes on an
// otherwise allocation-free benchmark, while a real per-op leak shows
// up in every run and survives the minimum. Baselines are
// machine-specific — compare snapshots from the same hardware (see
// DESIGN.md §9).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// record mirrors the benchjson fields the guard needs. AllocsPerOp and
// BytesPerOp are pointers because benchjson emits them only for
// -benchmem runs; a nil on either side skips that memory guard for
// that benchmark.
type record struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
}

func main() {
	var (
		base       = flag.String("base", "", "baseline benchjson file (committed BENCH_*.json)")
		cur        = flag.String("cur", "", "current benchjson file (fresh run)")
		benches    = flag.String("bench", "BenchmarkFig12,BenchmarkMachineSolve,BenchmarkFleet256", "comma-separated benchmarks to guard")
		maxRegress = flag.Float64("max-regress", 0.20, "maximum tolerated ns/op regression (0.20 = +20%)")
	)
	flag.Parse()
	if *base == "" || *cur == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -base and -cur are required")
		os.Exit(2)
	}
	baseRecs, err := load(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	curRecs, err := load(*cur)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	names := strings.Split(*benches, ",")
	offenders, ok := compare(os.Stdout, baseRecs, curRecs, names, *maxRegress)
	if !ok {
		// Repeat the offending rows on stderr: CI surfaces the log tail,
		// and the full table may have scrolled past by then.
		fmt.Fprintf(os.Stderr, "benchguard: FAIL — %d guarded benchmark(s) out of budget:\n", len(offenders))
		for _, f := range offenders {
			fmt.Fprintf(os.Stderr, "benchguard:   %s\n", f)
		}
		os.Exit(1)
	}
}

func load(path string) (map[string]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func parse(r io.Reader) (map[string]record, error) {
	var recs []record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("decoding snapshot: %w", err)
	}
	byName := make(map[string]record, len(recs))
	for _, rec := range recs {
		prev, ok := byName[rec.Name]
		if !ok {
			byName[rec.Name] = rec
			continue
		}
		// Per-metric minimum of repeated runs (see the package comment).
		if rec.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = rec.NsPerOp
		}
		prev.AllocsPerOp = minMetric(prev.AllocsPerOp, rec.AllocsPerOp)
		prev.BytesPerOp = minMetric(prev.BytesPerOp, rec.BytesPerOp)
		byName[rec.Name] = prev
	}
	return byName, nil
}

// minMetric returns the smaller of two optional metrics, preferring
// any present value over nil (a -benchmem run beats one without).
func minMetric(a, b *float64) *float64 {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case *b < *a:
		return b
	default:
		return a
	}
}

// finding wraps one failed guard into the shared lint Finding schema
// (internal/analysis): File carries the benchmark name — there is no
// source position — so the stderr summary renders through the same
// String() as copartlint findings and the two failure modes read alike
// in a CI log tail.
func finding(name, format string, argv ...any) analysis.Finding {
	return analysis.Finding{
		File:     name,
		Analyzer: "benchguard",
		Message:  fmt.Sprintf(format, argv...),
	}
}

// compare prints a benchstat-style delta line per watched benchmark and
// reports whether every one is present and within the regression budget.
// The returned offenders hold one Finding per failing benchmark, for
// the caller to repeat wherever failures are read (CI tails stderr).
func compare(w io.Writer, base, cur map[string]record, names []string, maxRegress float64) (offenders []analysis.Finding, ok bool) {
	ok = true
	fmt.Fprintf(w, "%-28s %14s %14s %9s\n", "benchmark", "base ns/op", "cur ns/op", "delta")
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, haveCur := cur[name]
		if !haveCur {
			fmt.Fprintf(w, "%-28s %14s %14s %9s  FAIL: missing from current run\n", name, "-", "-", "-")
			offenders = append(offenders, finding(name, "missing from current run"))
			ok = false
			continue
		}
		b, haveBase := base[name]
		if !haveBase {
			fmt.Fprintf(w, "%-28s %14s %14.0f %9s  warn: missing from baseline\n", name, "-", c.NsPerOp, "-")
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		verdict := "ok"
		if delta > maxRegress {
			verdict = fmt.Sprintf("FAIL: regressed past +%.0f%%", maxRegress*100)
			offenders = append(offenders, finding(name, "%.0f ns/op → %.0f ns/op (%+.1f%%, budget +%.0f%%)",
				b.NsPerOp, c.NsPerOp, delta*100, maxRegress*100))
			ok = false
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %+8.1f%%  %s\n", name, b.NsPerOp, c.NsPerOp, delta*100, verdict)

		// Memory guards: same budget, same table, rows labeled with the
		// unit. Each is skipped (with a warning when the baseline had the
		// metric) whenever either snapshot lacks -benchmem data.
		if msg := guardMem(w, name, "allocs", "allocs/op", "zero-alloc", b.AllocsPerOp, c.AllocsPerOp, maxRegress); msg != "" {
			offenders = append(offenders, finding(name, "%s", msg))
			ok = false
		}
		if msg := guardMem(w, name, "bytes", "B/op", "zero-byte", b.BytesPerOp, c.BytesPerOp, maxRegress); msg != "" {
			offenders = append(offenders, finding(name, "%s", msg))
			ok = false
		}
	}
	return offenders, ok
}

// guardMem holds one -benchmem metric (allocs/op or B/op) to the same
// percentage budget as ns/op and prints its table row. A zero baseline
// is absolute: the fleet's allocation-free steady state is an invariant,
// so any current usage fails no matter how small the absolute delta —
// a percentage budget over zero would otherwise excuse everything. A
// nil metric on either side only warns (when the baseline carried it),
// keeping coverage loss visible without failing timing-only runs.
// Returns a non-empty offender message on failure; the caller wraps it
// into a Finding carrying the benchmark name.
func guardMem(w io.Writer, name, row, unit, zero string, bp, cp *float64, maxRegress float64) string {
	if bp == nil || cp == nil {
		if bp != nil {
			fmt.Fprintf(w, "%-28s %14.0f %14s %9s  warn: %s missing from current run\n",
				name+" "+row, *bp, "-", "-", unit)
		}
		return ""
	}
	bv, cv := *bp, *cp
	delta := 0.0
	if bv > 0 {
		delta = (cv - bv) / bv
	}
	verdict, offender := "ok", ""
	switch {
	case bv == 0 && cv > 0:
		verdict = fmt.Sprintf("FAIL: %s baseline now nonzero", zero)
		offender = fmt.Sprintf("0 %s → %.0f %s (%s baseline)", unit, cv, unit, zero)
	case delta > maxRegress:
		verdict = fmt.Sprintf("FAIL: regressed past +%.0f%%", maxRegress*100)
		offender = fmt.Sprintf("%.0f %s → %.0f %s (%+.1f%%, budget +%.0f%%)",
			bv, unit, cv, unit, delta*100, maxRegress*100)
	}
	fmt.Fprintf(w, "%-28s %14.0f %14.0f %+8.1f%%  %s\n", name+" "+row, bv, cv, delta*100, verdict)
	return offender
}
