// Command benchguard compares two benchjson snapshots and fails when a
// watched benchmark regressed beyond a threshold. It is the backend of
// `make bench-guard`, which CI runs against the committed BENCH_*.json
// baseline before regenerating it, so a solver or cache regression
// breaks the build instead of silently rebasing the record.
//
// Usage:
//
//	benchguard -base BENCH_2026-08-05.json -cur /tmp/fresh.json \
//	    -bench BenchmarkFig12,BenchmarkMachineSolve,BenchmarkFleet256
//
// A benchmark missing from the current snapshot fails the guard (the
// suite lost coverage); one missing from the baseline only warns (the
// baseline predates the benchmark and the next bench-json run records
// it). Two metrics are compared against the same budget: ns/op, and —
// when both snapshots carry it (-benchmem) — allocs/op, so the fleet's
// zero-alloc steady state cannot silently rot behind a timing that
// still squeaks by. A zero-alloc baseline is absolute: any current
// allocations fail regardless of the percentage budget. The
// cache-counter extras are workload metrics, not timings, and are not
// guarded. When a snapshot holds several records for one benchmark (a
// -count>1 run), the guard compares the fastest on each side — the
// minimum is the noise-robust estimator of a benchmark's true cost.
// Baselines are machine-specific — compare snapshots from the same
// hardware (see DESIGN.md §9).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// record mirrors the benchjson fields the guard needs. AllocsPerOp is
// a pointer because benchjson emits it only for -benchmem runs; a nil
// on either side skips the allocation guard for that benchmark.
type record struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

func main() {
	var (
		base       = flag.String("base", "", "baseline benchjson file (committed BENCH_*.json)")
		cur        = flag.String("cur", "", "current benchjson file (fresh run)")
		benches    = flag.String("bench", "BenchmarkFig12,BenchmarkMachineSolve,BenchmarkFleet256", "comma-separated benchmarks to guard")
		maxRegress = flag.Float64("max-regress", 0.20, "maximum tolerated ns/op regression (0.20 = +20%)")
	)
	flag.Parse()
	if *base == "" || *cur == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -base and -cur are required")
		os.Exit(2)
	}
	baseRecs, err := load(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	curRecs, err := load(*cur)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	names := strings.Split(*benches, ",")
	offenders, ok := compare(os.Stdout, baseRecs, curRecs, names, *maxRegress)
	if !ok {
		// Repeat the offending rows on stderr: CI surfaces the log tail,
		// and the full table may have scrolled past by then.
		fmt.Fprintf(os.Stderr, "benchguard: FAIL — %d guarded benchmark(s) out of budget:\n", len(offenders))
		for _, line := range offenders {
			fmt.Fprintf(os.Stderr, "benchguard:   %s\n", line)
		}
		os.Exit(1)
	}
}

func load(path string) (map[string]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func parse(r io.Reader) (map[string]record, error) {
	var recs []record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("decoding snapshot: %w", err)
	}
	byName := make(map[string]record, len(recs))
	for _, rec := range recs {
		if prev, ok := byName[rec.Name]; !ok || rec.NsPerOp < prev.NsPerOp {
			byName[rec.Name] = rec // fastest of repeated runs wins
		}
	}
	return byName, nil
}

// compare prints a benchstat-style delta line per watched benchmark and
// reports whether every one is present and within the regression budget.
// The returned offenders hold one summary line per failing benchmark,
// for the caller to repeat wherever failures are read (CI tails stderr).
func compare(w io.Writer, base, cur map[string]record, names []string, maxRegress float64) (offenders []string, ok bool) {
	ok = true
	fmt.Fprintf(w, "%-28s %14s %14s %9s\n", "benchmark", "base ns/op", "cur ns/op", "delta")
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, haveCur := cur[name]
		if !haveCur {
			fmt.Fprintf(w, "%-28s %14s %14s %9s  FAIL: missing from current run\n", name, "-", "-", "-")
			offenders = append(offenders, fmt.Sprintf("%s: missing from current run", name))
			ok = false
			continue
		}
		b, haveBase := base[name]
		if !haveBase {
			fmt.Fprintf(w, "%-28s %14s %14.0f %9s  warn: missing from baseline\n", name, "-", c.NsPerOp, "-")
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		verdict := "ok"
		if delta > maxRegress {
			verdict = fmt.Sprintf("FAIL: regressed past +%.0f%%", maxRegress*100)
			offenders = append(offenders, fmt.Sprintf("%s: %.0f ns/op → %.0f ns/op (%+.1f%%, budget +%.0f%%)",
				name, b.NsPerOp, c.NsPerOp, delta*100, maxRegress*100))
			ok = false
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %+8.1f%%  %s\n", name, b.NsPerOp, c.NsPerOp, delta*100, verdict)

		// Allocation guard: same budget, same table, rows labeled with the
		// unit. Skipped (with a warning when the baseline had the metric)
		// whenever either snapshot lacks -benchmem data.
		if b.AllocsPerOp == nil || c.AllocsPerOp == nil {
			if b.AllocsPerOp != nil {
				fmt.Fprintf(w, "%-28s %14.0f %14s %9s  warn: allocs/op missing from current run\n",
					name+" allocs", *b.AllocsPerOp, "-", "-")
			}
			continue
		}
		ba, ca := *b.AllocsPerOp, *c.AllocsPerOp
		aDelta := 0.0
		if ba > 0 {
			aDelta = (ca - ba) / ba
		}
		aVerdict := "ok"
		switch {
		case ba == 0 && ca > 0:
			// A zero-alloc steady state is an absolute invariant; any
			// fresh allocation is a regression no percentage can excuse.
			aVerdict = "FAIL: allocation-free baseline now allocates"
			offenders = append(offenders, fmt.Sprintf("%s: 0 allocs/op → %.0f allocs/op (zero-alloc baseline)", name, ca))
			ok = false
		case aDelta > maxRegress:
			aVerdict = fmt.Sprintf("FAIL: regressed past +%.0f%%", maxRegress*100)
			offenders = append(offenders, fmt.Sprintf("%s: %.0f allocs/op → %.0f allocs/op (%+.1f%%, budget +%.0f%%)",
				name, ba, ca, aDelta*100, maxRegress*100))
			ok = false
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %+8.1f%%  %s\n", name+" allocs", ba, ca, aDelta*100, aVerdict)
	}
	return offenders, ok
}
