package main

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, doc string) map[string]record {
	t.Helper()
	recs, err := parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

const baseDoc = `[
  {"name": "BenchmarkFig12", "procs": 1, "iterations": 2, "ns_per_op": 100000000},
  {"name": "BenchmarkMachineSolve", "procs": 1, "iterations": 1000, "ns_per_op": 7500}
]`

func TestCompareWithinBudget(t *testing.T) {
	base := mustParse(t, baseDoc)
	cur := mustParse(t, `[
      {"name": "BenchmarkFig12", "ns_per_op": 110000000},
      {"name": "BenchmarkMachineSolve", "ns_per_op": 7400}
    ]`)
	var out strings.Builder
	offenders, ok := compare(&out, base, cur, []string{"BenchmarkFig12", "BenchmarkMachineSolve"}, 0.20)
	if !ok {
		t.Fatalf("+10%% flagged as a regression with a 20%% budget:\n%s", out.String())
	}
	if len(offenders) != 0 {
		t.Fatalf("passing comparison produced offenders: %v", offenders)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := mustParse(t, baseDoc)
	cur := mustParse(t, `[
      {"name": "BenchmarkFig12", "ns_per_op": 130000000},
      {"name": "BenchmarkMachineSolve", "ns_per_op": 7400}
    ]`)
	var out strings.Builder
	offenders, ok := compare(&out, base, cur, []string{"BenchmarkFig12", "BenchmarkMachineSolve"}, 0.20)
	if ok {
		t.Fatalf("+30%% passed a 20%% budget:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("no FAIL marker in output:\n%s", out.String())
	}
	// The offender summary names only the regressed benchmark, with both
	// timings and the budget — what a CI log tail needs to show. It is
	// an analysis.Finding so bench and lint failures share one format.
	if len(offenders) != 1 {
		t.Fatalf("offenders = %v, want exactly one", offenders)
	}
	if offenders[0].Analyzer != "benchguard" || offenders[0].File != "BenchmarkFig12" {
		t.Errorf("offender = %+v, want analyzer benchguard on BenchmarkFig12", offenders[0])
	}
	line := offenders[0].String()
	for _, frag := range []string{"BenchmarkFig12", "[benchguard]", "100000000", "130000000", "+30.0%", "budget +20%"} {
		if !strings.Contains(line, frag) {
			t.Errorf("offender line missing %q: %s", frag, line)
		}
	}
}

func TestCompareMissingFromCurrentFails(t *testing.T) {
	base := mustParse(t, baseDoc)
	cur := mustParse(t, `[{"name": "BenchmarkMachineSolve", "ns_per_op": 7400}]`)
	var out strings.Builder
	offenders, ok := compare(&out, base, cur, []string{"BenchmarkFig12", "BenchmarkMachineSolve"}, 0.20)
	if ok {
		t.Fatal("benchmark missing from the current run passed the guard")
	}
	if len(offenders) != 1 || !strings.Contains(offenders[0].String(), "missing from current run") {
		t.Fatalf("offenders = %v, want one missing-from-current line", offenders)
	}
}

func TestParseKeepsFastestOfRepeatedRuns(t *testing.T) {
	recs := mustParse(t, `[
      {"name": "BenchmarkFig12", "ns_per_op": 120000000},
      {"name": "BenchmarkFig12", "ns_per_op": 90000000},
      {"name": "BenchmarkFig12", "ns_per_op": 105000000}
    ]`)
	if got := recs["BenchmarkFig12"].NsPerOp; got != 90000000 {
		t.Fatalf("parse kept %v ns/op, want the fastest run (9e7)", got)
	}
}

func TestParseTakesPerMetricMinimum(t *testing.T) {
	// The fastest-ns run carries a stray background allocation (the
	// -benchmem counters are global, so another goroutine's GC-time
	// allocation can land on an allocation-free benchmark); a slower
	// run shows the true zero. Each metric takes its own minimum, so
	// the stray bytes must not survive.
	recs := mustParse(t, `[
      {"name": "BenchmarkFleetChurn", "ns_per_op": 14000000, "allocs_per_op": 0, "bytes_per_op": 24},
      {"name": "BenchmarkFleetChurn", "ns_per_op": 16000000, "allocs_per_op": 0, "bytes_per_op": 0}
    ]`)
	r := recs["BenchmarkFleetChurn"]
	if r.NsPerOp != 14000000 {
		t.Fatalf("ns/op = %v, want the fastest run (1.4e7)", r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 0 {
		t.Fatalf("bytes_per_op = %v, want the per-metric minimum 0", r.BytesPerOp)
	}
	// A present metric beats an absent one, whichever order they appear.
	recs = mustParse(t, `[
      {"name": "BenchmarkFig12", "ns_per_op": 100000000},
      {"name": "BenchmarkFig12", "ns_per_op": 110000000, "allocs_per_op": 7}
    ]`)
	r = recs["BenchmarkFig12"]
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 7 {
		t.Fatalf("allocs_per_op = %v, want 7 adopted from the -benchmem run", r.AllocsPerOp)
	}
}

func TestCompareStrayBytesOnZeroBaselinePasses(t *testing.T) {
	// End to end: a zero-byte baseline and a current -count 2 run where
	// only one count caught background bytes — the guard must pass,
	// while a leak present in every run (the next compare) must fail.
	base := mustParse(t, `[
      {"name": "BenchmarkFleetChurn", "ns_per_op": 14000000, "allocs_per_op": 0, "bytes_per_op": 0}
    ]`)
	cur := mustParse(t, `[
      {"name": "BenchmarkFleetChurn", "ns_per_op": 13000000, "allocs_per_op": 0, "bytes_per_op": 24},
      {"name": "BenchmarkFleetChurn", "ns_per_op": 15000000, "allocs_per_op": 0, "bytes_per_op": 0}
    ]`)
	var out strings.Builder
	if offenders, ok := compare(&out, base, cur, []string{"BenchmarkFleetChurn"}, 0.20); !ok {
		t.Fatalf("one-run stray bytes failed the zero-byte guard: %v\n%s", offenders, out.String())
	}
	leak := mustParse(t, `[
      {"name": "BenchmarkFleetChurn", "ns_per_op": 13000000, "allocs_per_op": 0, "bytes_per_op": 24},
      {"name": "BenchmarkFleetChurn", "ns_per_op": 15000000, "allocs_per_op": 0, "bytes_per_op": 24}
    ]`)
	out.Reset()
	if _, ok := compare(&out, base, leak, []string{"BenchmarkFleetChurn"}, 0.20); ok {
		t.Fatalf("a leak present in every run passed the zero-byte guard:\n%s", out.String())
	}
}

func TestCompareAllocsRegressionFails(t *testing.T) {
	base := mustParse(t, `[
      {"name": "BenchmarkFleet256", "ns_per_op": 5000000, "allocs_per_op": 1000}
    ]`)
	cur := mustParse(t, `[
      {"name": "BenchmarkFleet256", "ns_per_op": 5000000, "allocs_per_op": 1300}
    ]`)
	var out strings.Builder
	offenders, ok := compare(&out, base, cur, []string{"BenchmarkFleet256"}, 0.20)
	if ok {
		t.Fatalf("+30%% allocs/op passed a 20%% budget:\n%s", out.String())
	}
	if len(offenders) != 1 {
		t.Fatalf("offenders = %v, want exactly one", offenders)
	}
	for _, frag := range []string{"BenchmarkFleet256", "1000", "1300", "+30.0%", "budget +20%"} {
		if !strings.Contains(offenders[0].String(), frag) {
			t.Errorf("offender line missing %q: %s", frag, offenders[0])
		}
	}
}

func TestCompareZeroAllocBaselineIsAbsolute(t *testing.T) {
	base := mustParse(t, `[
      {"name": "BenchmarkManagerPeriod", "ns_per_op": 40000, "allocs_per_op": 0}
    ]`)
	cur := mustParse(t, `[
      {"name": "BenchmarkManagerPeriod", "ns_per_op": 40000, "allocs_per_op": 1}
    ]`)
	var out strings.Builder
	offenders, ok := compare(&out, base, cur, []string{"BenchmarkManagerPeriod"}, 0.20)
	if ok {
		t.Fatalf("allocation on a zero-alloc baseline passed the guard:\n%s", out.String())
	}
	if len(offenders) != 1 || !strings.Contains(offenders[0].String(), "zero-alloc baseline") {
		t.Fatalf("offenders = %v, want one zero-alloc-baseline line", offenders)
	}
}

func TestCompareAllocsWithinBudgetPasses(t *testing.T) {
	base := mustParse(t, `[
      {"name": "BenchmarkFleet256", "ns_per_op": 5000000, "allocs_per_op": 100}
    ]`)
	cur := mustParse(t, `[
      {"name": "BenchmarkFleet256", "ns_per_op": 5100000, "allocs_per_op": 110}
    ]`)
	var out strings.Builder
	offenders, ok := compare(&out, base, cur, []string{"BenchmarkFleet256"}, 0.20)
	if !ok {
		t.Fatalf("+10%% allocs/op flagged with a 20%% budget:\n%s\nofenders: %v", out.String(), offenders)
	}
}

func TestCompareAllocsSkippedWhenAbsent(t *testing.T) {
	// Baseline has the metric, current run was not -benchmem: the guard
	// warns but does not fail — alloc coverage loss is visible, timing
	// coverage is still enforced.
	base := mustParse(t, `[
      {"name": "BenchmarkFleet256", "ns_per_op": 5000000, "allocs_per_op": 8}
    ]`)
	cur := mustParse(t, `[
      {"name": "BenchmarkFleet256", "ns_per_op": 5000000}
    ]`)
	var out strings.Builder
	offenders, ok := compare(&out, base, cur, []string{"BenchmarkFleet256"}, 0.20)
	if !ok {
		t.Fatalf("missing -benchmem data failed the guard: %v\n%s", offenders, out.String())
	}
	if !strings.Contains(out.String(), "allocs/op missing from current run") {
		t.Fatalf("no allocs-missing warning in output:\n%s", out.String())
	}
}

func TestCompareBytesRegressionFails(t *testing.T) {
	base := mustParse(t, `[
      {"name": "BenchmarkFleet256", "ns_per_op": 5000000, "bytes_per_op": 2000}
    ]`)
	cur := mustParse(t, `[
      {"name": "BenchmarkFleet256", "ns_per_op": 5000000, "bytes_per_op": 2600}
    ]`)
	var out strings.Builder
	offenders, ok := compare(&out, base, cur, []string{"BenchmarkFleet256"}, 0.20)
	if ok {
		t.Fatalf("+30%% B/op passed a 20%% budget:\n%s", out.String())
	}
	if len(offenders) != 1 {
		t.Fatalf("offenders = %v, want exactly one", offenders)
	}
	for _, frag := range []string{"BenchmarkFleet256", "2000", "2600", "B/op", "+30.0%", "budget +20%"} {
		if !strings.Contains(offenders[0].String(), frag) {
			t.Errorf("offender line missing %q: %s", frag, offenders[0])
		}
	}
}

func TestCompareZeroByteBaselineIsAbsolute(t *testing.T) {
	// The fleet steady state is zero B/op as well as zero allocs/op; a
	// single leaked byte must fail even though any percentage budget
	// over a zero base would pass it.
	base := mustParse(t, `[
      {"name": "BenchmarkFleet16384", "ns_per_op": 200000000, "bytes_per_op": 0}
    ]`)
	cur := mustParse(t, `[
      {"name": "BenchmarkFleet16384", "ns_per_op": 200000000, "bytes_per_op": 64}
    ]`)
	var out strings.Builder
	offenders, ok := compare(&out, base, cur, []string{"BenchmarkFleet16384"}, 0.20)
	if ok {
		t.Fatalf("bytes on a zero-byte baseline passed the guard:\n%s", out.String())
	}
	if len(offenders) != 1 || !strings.Contains(offenders[0].String(), "zero-byte baseline") {
		t.Fatalf("offenders = %v, want one zero-byte-baseline line", offenders)
	}
}

func TestCompareBytesWithinBudgetPasses(t *testing.T) {
	base := mustParse(t, `[
      {"name": "BenchmarkFleet256", "ns_per_op": 5000000, "bytes_per_op": 1000}
    ]`)
	cur := mustParse(t, `[
      {"name": "BenchmarkFleet256", "ns_per_op": 5000000, "bytes_per_op": 1100}
    ]`)
	var out strings.Builder
	offenders, ok := compare(&out, base, cur, []string{"BenchmarkFleet256"}, 0.20)
	if !ok {
		t.Fatalf("+10%% B/op flagged with a 20%% budget:\n%s\noffenders: %v", out.String(), offenders)
	}
}

func TestCompareMissingFromBaselineWarns(t *testing.T) {
	base := mustParse(t, baseDoc)
	cur := mustParse(t, `[
      {"name": "BenchmarkFig12", "ns_per_op": 100000000},
      {"name": "BenchmarkMachineSolve", "ns_per_op": 7400},
      {"name": "BenchmarkFleet256", "ns_per_op": 30000000}
    ]`)
	var out strings.Builder
	offenders, ok := compare(&out, base, cur, []string{"BenchmarkFig12", "BenchmarkMachineSolve", "BenchmarkFleet256"}, 0.20)
	if !ok {
		t.Fatalf("benchmark new in the current run failed the guard:\n%s", out.String())
	}
	if len(offenders) != 0 {
		t.Fatalf("baseline warning counted as an offender: %v", offenders)
	}
	if !strings.Contains(out.String(), "warn: missing from baseline") {
		t.Fatalf("no baseline warning in output:\n%s", out.String())
	}
}
