// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array of benchmark records, one per result line.
// It is the backend of `make bench-json`, which tracks the solver and
// experiment-engine performance over time in BENCH_<date>.json files.
//
// Usage:
//
//	go test -bench X -benchmem . | benchjson > BENCH_$(date +%F).json
//
// Lines that are not benchmark results (the cpu/goos banner, PASS, ok)
// are ignored. Units beyond ns/op, B/op, and allocs/op are preserved in
// the record's "extra" map.
//
// With -merge FILE the fresh records are merged into an existing
// snapshot instead of replacing it: records in FILE whose benchmarks
// were not re-run are preserved verbatim (their run-to-run spread
// included), and each re-run benchmark collapses to a single
// min-of-runs record across the old and new results — so a same-day
// partial re-run (make bench-fleet after make bench-json) updates its
// benchmarks in place instead of tripling the file. A missing FILE
// behaves as an empty snapshot.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only with -benchmem.
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	mergeFile := flag.String("merge", "", "merge into this existing JSON snapshot (dedupe re-run benchmarks, keep min-of-runs)")
	flag.Parse()
	recs, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *mergeFile != "" {
		existing, err := loadSnapshot(*mergeFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		recs = mergeRecords(existing, recs)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadSnapshot reads a BENCH_<date>.json array; a missing file is an
// empty snapshot.
func loadSnapshot(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// mergeRecords folds fresh results into an existing snapshot. Names not
// re-run keep every existing record verbatim, in place; a re-run name
// collapses to one min-ns/op record across old and new results, emitted
// at its first existing position (or appended, for brand-new names, in
// input order).
func mergeRecords(existing, fresh []Record) []Record {
	rerun := make(map[string]Record, len(fresh))
	for _, r := range fresh {
		if b, ok := rerun[r.Name]; !ok || r.NsPerOp < b.NsPerOp {
			rerun[r.Name] = r
		}
	}
	for _, r := range existing {
		if b, ok := rerun[r.Name]; ok && r.NsPerOp < b.NsPerOp {
			rerun[r.Name] = r
		}
	}
	out := make([]Record, 0, len(existing)+len(fresh))
	emitted := make(map[string]bool, len(rerun))
	for _, r := range existing {
		if _, ok := rerun[r.Name]; !ok {
			out = append(out, r)
			continue
		}
		if !emitted[r.Name] {
			out = append(out, rerun[r.Name])
			emitted[r.Name] = true
		}
	}
	for _, r := range fresh {
		if !emitted[r.Name] {
			out = append(out, rerun[r.Name])
			emitted[r.Name] = true
		}
	}
	return out
}

func parse(sc *bufio.Scanner) ([]Record, error) {
	recs := []Record{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec, ok, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		if ok {
			recs = append(recs, rec)
		}
	}
	return recs, sc.Err()
}

// parseLine decodes one result line of the form
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   1 allocs/op
//
// Returns ok=false for Benchmark-prefixed lines that are not results
// (for example a bare benchmark name printed with -v).
func parseLine(line string) (Record, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Record{}, false, nil
	}
	rec := Record{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(rec.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(rec.Name[i+1:]); err == nil && p > 0 {
			rec.Name, rec.Procs = rec.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false, nil
	}
	rec.Iterations = iters
	// The remainder alternates value, unit.
	if (len(fields)-2)%2 != 0 {
		return Record{}, false, fmt.Errorf("odd value/unit pairing in %q", line)
	}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false, fmt.Errorf("bad value %q in %q", fields[i], line)
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			rec.NsPerOp = v
		case "B/op":
			rec.BytesPerOp = &v
		case "allocs/op":
			rec.AllocsPerOp = &v
		default:
			if rec.Extra == nil {
				rec.Extra = map[string]float64{}
			}
			rec.Extra[unit] = v
		}
	}
	return rec, true, nil
}
