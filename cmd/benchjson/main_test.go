package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// rec is a test-construction shorthand.
func rec(name string, ns float64) Record {
	return Record{Name: name, Procs: 1, Iterations: 1, NsPerOp: ns}
}

func TestParseLine(t *testing.T) {
	r, ok, err := parseLine("BenchmarkFleet256-8   5   4700000 ns/op   120 B/op   8 allocs/op   2600 p99ns")
	if err != nil || !ok {
		t.Fatalf("parseLine: ok=%v err=%v", ok, err)
	}
	if r.Name != "BenchmarkFleet256" || r.Procs != 8 || r.Iterations != 5 || r.NsPerOp != 4700000 {
		t.Fatalf("parsed %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 120 || r.AllocsPerOp == nil || *r.AllocsPerOp != 8 {
		t.Fatalf("memory fields: %+v", r)
	}
	if r.Extra["p99ns"] != 2600 {
		t.Fatalf("extra: %+v", r.Extra)
	}
}

// TestMergeRecords is the dedupe table test: same-day re-runs must
// update their benchmarks in place (min-of-runs), preserve everything
// else verbatim, and append genuinely new benchmarks.
func TestMergeRecords(t *testing.T) {
	for _, tc := range []struct {
		name     string
		existing []Record
		fresh    []Record
		want     []Record
	}{
		{
			name:  "fresh file",
			fresh: []Record{rec("BenchmarkA", 100), rec("BenchmarkA", 90), rec("BenchmarkB", 50)},
			want:  []Record{rec("BenchmarkA", 90), rec("BenchmarkB", 50)},
		},
		{
			name:     "rerun collapses to min across old and new",
			existing: []Record{rec("BenchmarkA", 100), rec("BenchmarkA", 80), rec("BenchmarkB", 50)},
			fresh:    []Record{rec("BenchmarkA", 90), rec("BenchmarkA", 95)},
			want:     []Record{rec("BenchmarkA", 80), rec("BenchmarkB", 50)},
		},
		{
			name:     "untouched names keep their spread verbatim",
			existing: []Record{rec("BenchmarkA", 100), rec("BenchmarkA", 120), rec("BenchmarkB", 50)},
			fresh:    []Record{rec("BenchmarkB", 40)},
			want:     []Record{rec("BenchmarkA", 100), rec("BenchmarkA", 120), rec("BenchmarkB", 40)},
		},
		{
			name:     "new benchmarks append in input order",
			existing: []Record{rec("BenchmarkA", 100)},
			fresh:    []Record{rec("BenchmarkC", 70), rec("BenchmarkB", 60), rec("BenchmarkC", 65)},
			want:     []Record{rec("BenchmarkA", 100), rec("BenchmarkC", 65), rec("BenchmarkB", 60)},
		},
		{
			name:  "empty fresh input keeps the snapshot",
			fresh: nil,
			existing: []Record{
				rec("BenchmarkA", 100),
			},
			want: []Record{rec("BenchmarkA", 100)},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := mergeRecords(tc.existing, tc.fresh)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("mergeRecords:\ngot:  %+v\nwant: %+v", got, tc.want)
			}
		})
	}
}

// TestLoadSnapshot covers the file edge cases -merge hits.
func TestLoadSnapshot(t *testing.T) {
	if recs, err := loadSnapshot(filepath.Join(t.TempDir(), "absent.json")); err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v, want empty snapshot", recs, err)
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	want := []Record{rec("BenchmarkA", 100)}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("loadSnapshot = %+v, want %+v", got, want)
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(path); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// TestParseEndToEnd runs the text parser over a realistic -bench
// transcript, banners and all.
func TestParseEndToEnd(t *testing.T) {
	input := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: repro",
		"BenchmarkFleet256-8    5    4700000 ns/op    2600 p99ns",
		"BenchmarkFleet256-8    5    4650000 ns/op    2500 p99ns",
		"PASS",
		"ok  \trepro\t1.2s",
	}, "\n")
	recs, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "BenchmarkFleet256" || recs[1].NsPerOp != 4650000 {
		t.Fatalf("parsed %+v", recs)
	}
}
