// Command casestudy regenerates Figure 15: the runtime behavior of CoPart
// consolidating two batch workloads with a latency-critical memcached
// model whose load steps up at t≈99.4 s and back down at t≈299.4 s. A
// Heracles-style envelope manager sizes the latency-critical reservation
// per load phase; CoPart re-partitions the remainder across the batch
// workloads.
//
// Usage:
//
//	casestudy [-seed N] [-every K]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/svgplot"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for the controller")
	every := flag.Int("every", 10, "print every Kth control period")
	csvPath := flag.String("csv", "", "also write the full timeline as CSV to this file")
	svgPath := flag.String("svg", "", "also write the timeline as an SVG figure to this file")
	flag.Parse()

	if err := run(*seed, *every, *csvPath, *svgPath); err != nil {
		fmt.Fprintln(os.Stderr, "casestudy:", err)
		os.Exit(1)
	}
}

func run(seed int64, every int, csvPath, svgPath string) error {
	res, err := experiments.CaseStudy(machine.DefaultConfig(), experiments.DefaultLoadTrace(), seed)
	if err != nil {
		return err
	}
	if err := experiments.RenderCaseStudy(res, every).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nSLO violations: %d of %d periods\n", res.SLOViolations, len(res.Samples))
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteCaseStudyCSV(f, res); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("timeline written to %s\n", csvPath)
	}
	if svgPath != "" {
		if err := writeSVG(svgPath, res); err != nil {
			return err
		}
		fmt.Printf("figure written to %s\n", svgPath)
	}
	return nil
}

// writeSVG renders the Figure 15 fairness timeline.
func writeSVG(path string, res experiments.CaseStudyResult) error {
	xs := make([]float64, len(res.Samples))
	copart := make([]float64, len(res.Samples))
	eq := make([]float64, len(res.Samples))
	load := make([]float64, len(res.Samples))
	for i, s := range res.Samples {
		xs[i] = s.Time.Seconds()
		copart[i] = s.Unfairness
		eq[i] = s.EQUnfairness
		// Scale the load step onto the unfairness axis for context.
		load[i] = s.LoadRPS / 1e6
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := svgplot.WriteLines(f, svgplot.LineSpec{
		Title:  "Figure 15: runtime behavior of CoPart (case study)",
		XLabel: "time (s)", YLabel: "unfairness / load (MRPS)",
		X: xs,
		Series: []svgplot.LineSeries{
			{Name: "CoPart", Values: copart},
			{Name: "EQ", Values: eq},
			{Name: "load (MRPS)", Values: load},
		},
	}); err != nil {
		return err
	}
	return f.Close()
}
