package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	if err := run(1, 50, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig15.csv")
	if err := run(1, 100, path, ""); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) < 300 {
		t.Fatalf("CSV has %d lines, want the full timeline", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_seconds,load_rps") {
		t.Errorf("CSV header: %s", lines[0])
	}
	if !strings.Contains(string(b), "150000") {
		t.Error("CSV missing the high-load phase")
	}
}

func TestRunBadCSVPath(t *testing.T) {
	if err := run(1, 50, filepath.Join(t.TempDir(), "no", "such", "dir", "x.csv"), ""); err == nil {
		t.Error("unwritable CSV path should error")
	}
}

func TestRunWithSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig15.svg")
	if err := run(1, 200, "", path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "<svg") {
		t.Errorf("not an SVG: %.40s", b)
	}
}
