// Command characterize regenerates Table 1, Table 2, and the performance
// characterization heatmaps of Figures 1–3.
//
// Usage:
//
//	characterize -table1
//	characterize -table2
//	characterize -fig 1        # WN, WS, RT  (LLC-sensitive)
//	characterize -fig 2        # OC, CG, FT  (bandwidth-sensitive)
//	characterize -fig 3        # SP, ON, FMM (dual-sensitive)
//	characterize -bench CG     # one benchmark's heatmap
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/svgplot"
)

func main() {
	table1 := flag.Bool("table1", false, "print the system configuration (Table 1)")
	table2 := flag.Bool("table2", false, "print the benchmark characteristics (Table 2)")
	fig := flag.Int("fig", 0, "print the heatmaps of characterization figure 1, 2, or 3")
	bench := flag.String("bench", "", "print one benchmark's (ways x MBA) heatmap")
	svgDir := flag.String("svg", "", "also write SVG figures into this directory")
	workers := flag.Int("parallel", 0, "worker count for the experiment engine (0 = all cores)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	svgOut = *svgDir
	parallel.SetWorkers(*workers)
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
	err = run(*table1, *table2, *fig, *bench)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
}

func run(table1, table2 bool, fig int, bench string) error {
	cfg := machine.DefaultConfig()
	did := false
	if table1 {
		if err := experiments.Table1(cfg).Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		did = true
	}
	if table2 {
		_, tab, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		did = true
	}
	if fig != 0 {
		names, err := experiments.FigureBenches(fig)
		if err != nil {
			return err
		}
		fmt.Printf("Figure %d. Performance impact of LLC and memory bandwidth partitioning\n\n", fig)
		for _, n := range names {
			if err := printBench(cfg, n); err != nil {
				return err
			}
		}
		did = true
	}
	if bench != "" {
		if err := printBench(cfg, bench); err != nil {
			return err
		}
		did = true
	}
	if !did {
		return fmt.Errorf("nothing to do; pass -table1, -table2, -fig N, or -bench NAME")
	}
	return nil
}

// svgOut, when non-empty, receives SVG copies of every heatmap.
var svgOut string

func printBench(cfg machine.Config, name string) error {
	grid, hm, err := experiments.PerfHeatmap(cfg, name)
	if err != nil {
		return err
	}
	if err := hm.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if svgOut == "" {
		return nil
	}
	if err := os.MkdirAll(svgOut, 0o755); err != nil {
		return err
	}
	xticks := make([]string, len(grid.Levels))
	for i, l := range grid.Levels {
		xticks[i] = fmt.Sprintf("%d", l)
	}
	yticks := make([]string, len(grid.Ways))
	for i, w := range grid.Ways {
		yticks[i] = fmt.Sprintf("%d", w)
	}
	path := filepath.Join(svgOut, "perf_"+name+".svg")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := svgplot.WriteHeatmap(f, svgplot.HeatmapSpec{
		Title:  fmt.Sprintf("Normalized performance of %s", name),
		XLabel: "MBA level (%)", YLabel: "LLC ways",
		XTicks: xticks, YTicks: yticks,
		Values: grid.Norm,
	}); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}
