package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTables(t *testing.T) {
	if err := run(true, true, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure(t *testing.T) {
	if err := run(false, false, 2, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleBench(t *testing.T) {
	if err := run(false, false, 0, "CG"); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSVG(t *testing.T) {
	dir := t.TempDir()
	svgOut = dir
	defer func() { svgOut = "" }()
	if err := run(false, false, 0, "WN"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "perf_WN.svg")); err != nil {
		t.Errorf("missing SVG: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(false, false, 0, ""); err == nil {
		t.Error("nothing to do should error")
	}
	if err := run(false, false, 9, ""); err == nil {
		t.Error("unknown figure should error")
	}
	if err := run(false, false, 0, "nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}
