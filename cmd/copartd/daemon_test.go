package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/membw"
	"repro/internal/resctrl"
)

// TestValidateFlagErrors: every malformed flag is rejected before the
// daemon builds anything, with an error enumerating the valid values.
func TestValidateFlagErrors(t *testing.T) {
	base := config{mix: "H-Both", apps: 4, duration: time.Minute}
	cases := []struct {
		name   string
		mutate func(*config)
		want   []string // substrings of the error
	}{
		{"unknown mix", func(c *config) { c.mix = "H-Everything" },
			[]string{`unknown mix "H-Everything"`, "H-LLC", "IS"}},
		{"apps too low", func(c *config) { c.apps = 1 },
			[]string{"-apps 1 out of range", "2-"}},
		{"apps too high", func(c *config) { c.apps = 40 },
			[]string{"-apps 40 out of range", "LLC way"}},
		{"bad faults", func(c *config) { c.faults = "frob=1,readerr=x" },
			[]string{`"frob=1"`, `"readerr=x"`, "unknown key"}},
		{"bad arrival", func(c *config) { c.faults = "arrive=NOPE@5s" },
			[]string{`"NOPE"`, "valid benchmarks", "EP"}},
		{"zero duration", func(c *config) { c.duration = 0 },
			[]string{"-duration", "positive"}},
		{"negative pace", func(c *config) { c.pace = -time.Second },
			[]string{"-pace"}},
		{"missing restore file", func(c *config) { c.restore = "/nonexistent/snap.json" },
			[]string{"-restore"}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.validate()
		if err == nil {
			t.Errorf("%s: want error", tc.name)
			continue
		}
		for _, w := range tc.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error missing %q:\n%v", tc.name, w, err)
			}
		}
	}
	if err := base.validate(); err != nil {
		t.Errorf("base config should validate: %v", err)
	}
}

// TestRestoreConflictingFlags: -restore refuses flags the snapshot
// supersedes.
func TestRestoreConflictingFlags(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snap.json")
	if err := os.WriteFile(snapPath, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"mix", "apps", "faults", "seed"} {
		cfg := config{restore: snapPath, duration: time.Minute,
			setFlags: map[string]bool{f: true, "restore": true}}
		if err := cfg.validate(); err == nil || !strings.Contains(err.Error(), "-"+f) {
			t.Errorf("restore + -%s: want conflict error, got %v", f, err)
		}
	}
	cfg := config{restore: snapPath, duration: time.Minute,
		setFlags: map[string]bool{"restore": true, "duration": true}}
	if err := cfg.validate(); err != nil {
		t.Errorf("restore + -duration should be fine: %v", err)
	}
}

// TestPanicGuardRestoresDefaults: a panic inside the control loop must
// surface as an error AND still restore the default schemata — a
// crashed controller may never leave the machine partitioned.
func TestPanicGuardRestoresDefaults(t *testing.T) {
	dir := t.TempDir()
	periods := 0
	periodHook = func(r core.PeriodReport) {
		periods++
		if periods == 12 { // deep enough that real partitions are programmed
			panic("injected controller failure")
		}
	}
	defer func() { periodHook = nil }()

	err := run(config{mix: "M-BW", apps: 4, duration: time.Hour, seed: 1, resctrlDir: dir})
	if err == nil || !strings.Contains(err.Error(), "controller panic") {
		t.Fatalf("want controller panic error, got %v", err)
	}

	full := machine.DefaultConfig().FullMask()
	checked := 0
	for _, app := range []string{"OC", "CG", "SW", "EP"} {
		b, err := os.ReadFile(filepath.Join(dir, app, "schemata"))
		if err != nil {
			continue
		}
		s, err := resctrl.ParseSchemata(string(b))
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		checked++
		if s.L3[0] != full || s.MB[0] != membw.MaxLevel {
			t.Errorf("%s left partitioned after panic: %+v", app, s)
		}
	}
	if checked == 0 {
		t.Fatal("no mirrored groups found to check")
	}
}

// TestSnapshotRoundTripCLI: run T, snapshot at exit, restore and run the
// remainder — the final state snapshot must be byte-identical to an
// uninterrupted run of the full duration.
func TestSnapshotRoundTripCLI(t *testing.T) {
	dir := t.TempDir()
	mid := filepath.Join(dir, "mid.json")
	resumed := filepath.Join(dir, "resumed.json")
	whole := filepath.Join(dir, "whole.json")

	if err := run(config{mix: "H-Both", apps: 4, duration: 40 * time.Second, seed: 5,
		snapshotExit: mid}); err != nil {
		t.Fatal(err)
	}
	if err := run(config{restore: mid, duration: 60 * time.Second,
		snapshotExit: resumed}); err != nil {
		t.Fatal(err)
	}
	if err := run(config{mix: "H-Both", apps: 4, duration: 100 * time.Second, seed: 5,
		snapshotExit: whole}); err != nil {
		t.Fatal(err)
	}

	br, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(br, bw) {
		t.Fatalf("snapshot after restore+resume (%d bytes) differs from uninterrupted run (%d bytes)",
			len(br), len(bw))
	}
	// Restored runs must also reject a snapshot that fails to parse.
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(config{restore: badPath, duration: time.Second}); err == nil {
		t.Error("restoring a future-version snapshot should fail")
	}
}

// TestDaemonControlPlane boots the daemon with -listen and drives
// admission, reweight, removal, snapshot, and metrics over real HTTP,
// then shuts down via the signal path.
func TestDaemonControlPlane(t *testing.T) {
	addrCh := make(chan string, 1)
	onListen = func(addr string) { addrCh <- addr }
	defer func() { onListen = nil }()

	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		// Target-time horizon: large enough that the unpaced loop cannot
		// exhaust it on a loaded test host before the shutdown signal.
		done <- run(config{mix: "H-Both", apps: 3, duration: 10000 * time.Hour, seed: 1,
			listen: "127.0.0.1:0", sig: sig})
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	spec, _ := json.Marshal(map[string]interface{}{
		"name": "late", "benchmark": "EP", "cores": 1, "weight": 2.0,
	})
	resp, err := http.Post(base+"/apps", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit = %d", resp.StatusCode)
	}

	req, _ := http.NewRequest("PATCH", base+"/apps/late", strings.NewReader(`{"weight": 1.5}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reweight = %d", resp.StatusCode)
	}

	code, snapBody := get("/snapshot")
	if code != http.StatusOK {
		t.Fatalf("snapshot = %d", code)
	}
	snap, err := core.ParseSnapshot([]byte(snapBody))
	if err != nil {
		t.Fatalf("daemon snapshot unparseable: %v", err)
	}
	// The admitted app must be in the snapshot with its current weight.
	foundLate := false
	for _, a := range snap.Machine.Apps {
		if a.Model.Name == "late" {
			foundLate = true
		}
	}
	if !foundLate {
		t.Error("admitted app missing from snapshot")
	}
	if w := snap.Manager.Weights["late"]; w != 1.5 {
		t.Errorf("snapshot weight for late = %v, want 1.5", w)
	}

	req, _ = http.NewRequest("DELETE", base+"/apps/late", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove = %d", resp.StatusCode)
	}

	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, `copart_admission_ops_total{op="add",outcome="ok"} 1`) {
		t.Errorf("metrics = %d, missing add counter:\n%.400s", code, body)
	}

	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain and exit after signal")
	}
}
