// Command copartd runs the CoPart controller against a simulated server
// consolidating one of the paper's workload mixes, printing one line per
// control period: phase, per-application slowdowns, unfairness, and the
// system state.
//
// With -resctrl DIR, the daemon additionally mirrors every allocation
// decision into a resctrl directory tree (one control group per
// application, schemata written through the same client that drives a
// real /sys/fs/resctrl), demonstrating the deployment path on CAT/MBA
// hardware.
//
// With -faults SPEC, the run is subjected to a fault-injection scenario
// (see internal/faultinject for the spec grammar; "standard" is the
// canonical chaos schedule) and the controller runs with resilience
// enabled: transient errors are retried, and sustained outages push it
// into a degraded equal-allocation mode until the substrate heals.
//
// On SIGINT/SIGTERM the daemon finishes the current control period,
// stops, and — like on normal exit — restores every application to the
// unrestricted default allocation (full cache mask, 100 % memory
// bandwidth), so a controlled machine is never left with stale partition
// restrictions.
//
// Usage:
//
//	copartd -mix H-LLC -apps 4 -duration 60s [-seed 1] [-resctrl DIR] [-faults SPEC]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/membw"
	"repro/internal/resctrl"
	"repro/internal/workloads"
)

func main() {
	mixName := flag.String("mix", "H-Both", "workload mix: H-LLC, H-BW, H-Both, M-LLC, M-BW, M-Both, IS")
	apps := flag.Int("apps", 4, "number of consolidated applications (3-6)")
	duration := flag.Duration("duration", 60*time.Second, "virtual time to run")
	seed := flag.Int64("seed", 1, "controller seed")
	resctrlDir := flag.String("resctrl", "", "mirror decisions into a resctrl tree under this directory")
	events := flag.Bool("events", false, "print the controller's structured event log at exit")
	faults := flag.String("faults", "", `fault-injection scenario, e.g. "standard" or "readerr=0.05,wrap=30s"`)
	flag.Parse()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	if err := run(*mixName, *apps, *duration, *seed, *resctrlDir, *events, *faults, sigc); err != nil {
		fmt.Fprintln(os.Stderr, "copartd:", err)
		os.Exit(1)
	}
}

func parseMix(name string) (workloads.MixKind, error) {
	for _, k := range workloads.MixKinds() {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown mix %q", name)
}

// parseScenario parses the -faults spec and resolves arrival names
// against the workload catalog.
func parseScenario(cfg machine.Config, spec string) (faultinject.Scenario, error) {
	sc, err := faultinject.Parse(spec)
	if err != nil {
		return faultinject.Scenario{}, err
	}
	for i := range sc.Churn {
		ev := &sc.Churn[i]
		if !ev.Arrive {
			continue
		}
		ws, err := workloads.ByName(cfg, ev.Name)
		if err != nil {
			return faultinject.Scenario{}, fmt.Errorf("resolving arrival %q: %w", ev.Name, err)
		}
		model := ws.Model
		ev.Model = &model
	}
	return sc, nil
}

// run is the daemon body; sig may be nil when no signal handling is
// wanted (tests).
func run(mixName string, apps int, duration time.Duration, seed int64,
	resctrlDir string, events bool, faultSpec string, sig <-chan os.Signal) error {
	kind, err := parseMix(mixName)
	if err != nil {
		return err
	}
	cfg := machine.DefaultConfig()
	sc, err := parseScenario(cfg, faultSpec)
	if err != nil {
		return err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	models, err := workloads.Mix(cfg, kind, apps)
	if err != nil {
		return err
	}
	names := make([]string, len(models))
	for i, model := range models {
		if err := m.AddApp(model); err != nil {
			return err
		}
		names[i] = model.Name
	}

	var rc *resctrl.Client
	mirrored := make(map[string]bool)
	if resctrlDir != "" {
		rc, err = resctrl.NewSimTree(resctrlDir, cfg)
		if err != nil {
			return err
		}
		for _, n := range names {
			if err := rc.CreateGroup(n); err != nil {
				return err
			}
			mirrored[n] = true
		}
		fmt.Printf("mirroring schemata into %s\n", resctrlDir)
	}

	var elog *eventlog.Log
	if events {
		elog, err = eventlog.New(8192)
		if err != nil {
			return err
		}
	}

	var (
		target core.Target = m
		inj    *faultinject.Injector
	)
	if !sc.Empty() {
		wrapped, err := faultinject.WrapTarget(m, sc, elog)
		if err != nil {
			return err
		}
		target = wrapped
		inj = wrapped.Injector()
		fmt.Println("fault injection active, resilient control loop enabled")
	}

	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		return err
	}
	mgr, err := core.NewManager(target, core.DefaultParams(), ref,
		core.Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	if !sc.Empty() {
		mgr.Resilience = core.DefaultResilience()
	}
	mgr.Events = elog

	if sig != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case s := <-sig:
				fmt.Fprintf(os.Stderr, "copartd: caught %v, stopping after the current period\n", s)
				mgr.Stop()
			case <-done:
			}
		}()
	}

	fmt.Printf("consolidating %v on %d cores, %d-way LLC\n", names, cfg.Cores, cfg.LLCWays)
	mgr.OnPeriod = func(r core.PeriodReport) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "t=%6.1fs %-11s unfairness=%.4f ", r.Time.Seconds(), r.Phase, r.Unfairness)
		for i, app := range r.Apps {
			fmt.Fprintf(&sb, " %s[w=%d,mba=%d,slow=%.2f]",
				app, r.State.Ways[i], r.State.MBA[i], r.Slowdowns[i])
		}
		fmt.Println(sb.String())
		if rc != nil {
			if err := mirror(rc, mirrored, r); err != nil {
				fmt.Fprintln(os.Stderr, "copartd: resctrl mirror:", err)
			}
		}
	}
	if err := mgr.Run(duration); err != nil {
		return err
	}
	fmt.Printf("done at t=%.1fs in %v phase\n", m.Now().Seconds(), mgr.Phase())
	if inj != nil {
		st := inj.Stats()
		fmt.Printf("injected faults: %d (reads=%d writes=%d overruns=%d wraps=%d stuck=%d departs=%d arrivals=%d)\n",
			st.Total(), st.ReadErrors, st.WriteErrors, st.Overruns, st.Wraps,
			st.StuckReads, st.Departures, st.Arrivals)
	}
	if err := restoreDefaults(m, rc, mirrored); err != nil {
		return fmt.Errorf("restoring default allocations: %w", err)
	}
	fmt.Println("default allocations restored")
	if elog != nil {
		fmt.Printf("\nevent log (%d events, %d retained):\n", elog.Total(), elog.Len())
		if err := elog.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// mirror writes the report's system state into the resctrl tree, creating
// control groups on demand for applications that arrived mid-run.
func mirror(rc *resctrl.Client, mirrored map[string]bool, r core.PeriodReport) error {
	masks, err := machine.AssignContiguousWays(r.State.Ways, 0, len64(rc.Info().CBMMask))
	if err != nil {
		return err
	}
	for i, app := range r.Apps {
		if !mirrored[app] {
			if err := rc.CreateGroup(app); err != nil {
				return err
			}
			mirrored[app] = true
		}
		s := resctrl.Schemata{
			L3: map[int]uint64{0: masks[i]},
			MB: map[int]int{0: r.State.MBA[i]},
		}
		if err := rc.WriteSchemata(app, s); err != nil {
			return err
		}
	}
	return nil
}

// restoreDefaults returns every application — live on the machine, and
// every mirrored control group — to the unrestricted allocation: full
// cache mask and 100 % memory bandwidth. Groups removed underneath us
// are skipped.
func restoreDefaults(m *machine.Machine, rc *resctrl.Client, mirrored map[string]bool) error {
	full := m.Config().FullMask()
	for _, name := range m.Apps() {
		if err := m.SetAllocation(name, machine.Alloc{CBM: full, MBALevel: membw.MaxLevel}); err != nil {
			return err
		}
	}
	if rc == nil {
		return nil
	}
	info := rc.Info()
	s := resctrl.Schemata{L3: map[int]uint64{}, MB: map[int]int{}}
	for _, id := range info.CacheIDs {
		s.L3[id] = info.CBMMask
		s.MB[id] = membw.MaxLevel
	}
	for group := range mirrored {
		if err := rc.WriteSchemata(group, s); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return err
		}
	}
	return nil
}

// len64 counts the set bits of the CBM mask (the way count).
func len64(mask uint64) int {
	n := 0
	for ; mask != 0; mask >>= 1 {
		if mask&1 != 0 {
			n++
		}
	}
	return n
}
