// Command copartd runs the CoPart controller against a simulated server
// consolidating one of the paper's workload mixes, printing one line per
// control period: phase, per-application slowdowns, unfairness, and the
// system state.
//
// With -resctrl DIR, the daemon additionally mirrors every allocation
// decision into a resctrl directory tree (one control group per
// application, schemata written through the same client that drives a
// real /sys/fs/resctrl), demonstrating the deployment path on CAT/MBA
// hardware.
//
// With -faults SPEC, the run is subjected to a fault-injection scenario
// (see internal/faultinject for the spec grammar; "standard" is the
// canonical chaos schedule) and the controller runs with resilience
// enabled: transient errors are retried, and sustained outages push it
// into a degraded equal-allocation mode until the substrate heals.
//
// With -listen ADDR, the daemon serves the control plane: runtime
// admission (POST/DELETE/PATCH /apps), deterministic state snapshots
// (GET /snapshot), health and readiness probes (/healthz, /readyz), and
// Prometheus metrics (/metrics). Combine with -pace to slow the
// simulated clock to something a human (or a curl loop) can interact
// with. A snapshot taken from a running daemon can be handed to
// -restore to resume the run bit-identically; -snapshot-exit writes one
// on the way out.
//
// On SIGINT/SIGTERM the daemon drains: admission closes, the current
// control period finishes, the optional exit snapshot is flushed, and —
// like on normal exit, and even if the controller panics — every
// application is restored to the unrestricted default allocation (full
// cache mask, 100 % memory bandwidth), so a controlled machine is never
// left with stale partition restrictions.
//
// Usage:
//
//	copartd -mix H-LLC -apps 4 -duration 60s [-seed 1] [-resctrl DIR]
//	        [-faults SPEC] [-listen 127.0.0.1:7090] [-pace 100ms]
//	        [-restore FILE] [-snapshot-exit FILE]
//
// Flag validation failures exit with status 2; runtime failures with 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/membw"
	"repro/internal/resctrl"
	"repro/internal/workloads"
)

// config carries every copartd setting; tests drive run with a literal.
type config struct {
	mix          string
	apps         int
	duration     time.Duration
	seed         int64
	resctrlDir   string
	events       bool
	faults       string
	listen       string
	pace         time.Duration
	restore      string
	snapshotExit string

	// sig delivers shutdown signals; nil disables signal handling (tests).
	sig <-chan os.Signal
	// setFlags records which flags the user passed explicitly, for
	// conflict detection; nil means "none".
	setFlags map[string]bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.mix, "mix", "H-Both", "workload mix: "+mixNames())
	flag.IntVar(&cfg.apps, "apps", 4, "number of consolidated applications")
	flag.DurationVar(&cfg.duration, "duration", 60*time.Second, "virtual time to run")
	flag.Int64Var(&cfg.seed, "seed", 1, "controller seed")
	flag.StringVar(&cfg.resctrlDir, "resctrl", "", "mirror decisions into a resctrl tree under this directory")
	flag.BoolVar(&cfg.events, "events", false, "print the controller's structured event log at exit")
	flag.StringVar(&cfg.faults, "faults", "", `fault-injection scenario, e.g. "standard" or "readerr=0.05,wrap=30s"`)
	flag.StringVar(&cfg.listen, "listen", "", "serve the control-plane HTTP API on this address (e.g. 127.0.0.1:7090)")
	flag.DurationVar(&cfg.pace, "pace", 0, "wall-clock sleep per control period (slows the simulation for interactive use)")
	flag.StringVar(&cfg.restore, "restore", "", "resume from a snapshot file instead of booting a mix")
	flag.StringVar(&cfg.snapshotExit, "snapshot-exit", "", "write a state snapshot to this file on exit")
	flag.Parse()

	cfg.setFlags = map[string]bool{}
	flag.Visit(func(f *flag.Flag) { cfg.setFlags[f.Name] = true })

	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "copartd:", err)
		os.Exit(2)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	cfg.sig = sigc

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "copartd:", err)
		os.Exit(1)
	}
}

func mixNames() string {
	kinds := workloads.MixKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return strings.Join(names, ", ")
}

func (c *config) flagSet(name string) bool { return c.setFlags[name] }

// validate rejects invalid flag combinations before anything is built.
// Errors enumerate the valid values so a typo is fixable from the
// message alone; main exits with status 2 on them.
func (c *config) validate() error {
	mcfg := machine.DefaultConfig()
	if c.restore != "" {
		// A snapshot carries its own machine, apps, and fault-free state;
		// flags that would contradict it are refused rather than ignored.
		for _, f := range []string{"mix", "apps", "faults", "seed"} {
			if c.flagSet(f) {
				return fmt.Errorf("-restore resumes the snapshot's own configuration; drop -%s", f)
			}
		}
		if _, err := os.Stat(c.restore); err != nil {
			return fmt.Errorf("-restore: %v", err)
		}
	} else {
		if _, err := parseMix(c.mix); err != nil {
			return err
		}
		maxApps := mcfg.LLCWays
		if mcfg.Cores < maxApps {
			maxApps = mcfg.Cores
		}
		if c.apps < 2 || c.apps > maxApps {
			return fmt.Errorf("-apps %d out of range: valid range is 2-%d (each app needs one exclusive LLC way and at least one core; machine has %d ways, %d cores)",
				c.apps, maxApps, mcfg.LLCWays, mcfg.Cores)
		}
		if _, err := parseScenario(mcfg, c.faults); err != nil {
			return err
		}
	}
	if c.duration <= 0 {
		return fmt.Errorf("-duration %v must be positive", c.duration)
	}
	if c.pace < 0 {
		return fmt.Errorf("-pace %v must be >= 0", c.pace)
	}
	return nil
}

func parseMix(name string) (workloads.MixKind, error) {
	for _, k := range workloads.MixKinds() {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown mix %q (valid: %s)", name, mixNames())
}

// parseScenario parses the -faults spec and resolves arrival names
// against the workload catalog.
func parseScenario(cfg machine.Config, spec string) (faultinject.Scenario, error) {
	sc, err := faultinject.Parse(spec)
	if err != nil {
		return faultinject.Scenario{}, err
	}
	for i := range sc.Churn {
		ev := &sc.Churn[i]
		if !ev.Arrive {
			continue
		}
		ws, err := workloads.ByName(cfg, ev.Name)
		if err != nil {
			return faultinject.Scenario{}, fmt.Errorf(
				"resolving arrival %q: %v (valid benchmarks: %s)",
				ev.Name, err, strings.Join(workloads.Names(), ", "))
		}
		model := ws.Model
		ev.Model = &model
	}
	return sc, nil
}

// Test hooks. onListen receives the control plane's bound address once
// the listener is up; periodHook runs inside OnPeriod (panic-injection
// tests use it to blow up the controller mid-run).
var (
	onListen   func(addr string)
	periodHook func(core.PeriodReport)
)

// run is the daemon body.
func run(cfg config) (err error) {
	if err := cfg.validate(); err != nil {
		return err
	}

	var (
		m   *machine.Machine
		mgr *core.Manager
		sc  faultinject.Scenario
	)
	mcfg := machine.DefaultConfig()

	var elog *eventlog.Log
	if cfg.events {
		elog, err = eventlog.New(8192)
		if err != nil {
			return err
		}
	}

	var inj *faultinject.Injector
	if cfg.restore != "" {
		data, err := os.ReadFile(cfg.restore)
		if err != nil {
			return err
		}
		snap, err := core.ParseSnapshot(data)
		if err != nil {
			return err
		}
		mgr, m, err = core.RestoreSnapshot(snap)
		if err != nil {
			return err
		}
		mcfg = m.Config()
		fmt.Printf("restored snapshot %s at t=%.1fs in %v phase\n",
			cfg.restore, m.Now().Seconds(), mgr.Phase())
	} else {
		kind, err := parseMix(cfg.mix)
		if err != nil {
			return err
		}
		sc, err = parseScenario(mcfg, cfg.faults)
		if err != nil {
			return err
		}
		m, err = machine.New(mcfg)
		if err != nil {
			return err
		}
		models, err := workloads.Mix(mcfg, kind, cfg.apps)
		if err != nil {
			return err
		}
		for _, model := range models {
			if err := m.AddApp(model); err != nil {
				return err
			}
		}

		var target core.Target = m
		if !sc.Empty() {
			wrapped, err := faultinject.WrapTarget(m, sc, elog)
			if err != nil {
				return err
			}
			target = wrapped
			inj = wrapped.Injector()
			fmt.Println("fault injection active, resilient control loop enabled")
		}

		ref, err := workloads.StreamMissRates(m)
		if err != nil {
			return err
		}
		// The counting source produces the exact stream of a plain
		// rand.NewSource(seed) while tracking the position, so snapshots
		// can restore it.
		rng, src := core.NewSeededRand(cfg.seed)
		mgr, err = core.NewManager(target, core.DefaultParams(), ref,
			core.Envelope{LoWay: 0, Ways: mcfg.LLCWays}, rng)
		if err != nil {
			return err
		}
		mgr.SnapshotSource = src
		if !sc.Empty() {
			mgr.Resilience = core.DefaultResilience()
		}
	}
	mgr.Events = elog

	var rc *resctrl.Client
	mirrored := make(map[string]bool)
	if cfg.resctrlDir != "" {
		rc, err = resctrl.NewSimTree(cfg.resctrlDir, mcfg)
		if err != nil {
			return err
		}
		for _, n := range m.Apps() {
			if err := rc.CreateGroup(n); err != nil {
				return err
			}
			mirrored[n] = true
		}
		fmt.Printf("mirroring schemata into %s\n", cfg.resctrlDir)
	}

	// The restore guard: whatever happens from here on — normal exit,
	// error, or a controller panic — the machine and every mirrored
	// control group go back to the unrestricted default allocation. A
	// crashed controller must never leave a machine partitioned.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("controller panic: %v", r)
		}
		if rerr := restoreDefaults(m, rc, mirrored); rerr != nil {
			if err == nil {
				err = fmt.Errorf("restoring default allocations: %w", rerr)
			} else {
				fmt.Fprintln(os.Stderr, "copartd: restoring default allocations:", rerr)
			}
			return
		}
		fmt.Println("default allocations restored")
	}()

	// Control plane: admission ops queue here and apply between periods.
	var plane *controlplane.Plane
	var srv *http.Server
	if cfg.listen != "" {
		adm := &controlplane.MachineAdmitter{M: m, Mgr: mgr}
		plane = controlplane.New(adm, mgr, elog)
		ln, lerr := net.Listen("tcp", cfg.listen)
		if lerr != nil {
			return fmt.Errorf("control plane: %w", lerr)
		}
		srv = &http.Server{Handler: plane.Handler()}
		go srv.Serve(ln) //nolint:errcheck // Shutdown's ErrServerClosed
		fmt.Printf("control plane listening on http://%s\n", ln.Addr())
		if onListen != nil {
			onListen(ln.Addr().String())
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck
		}()
	}
	mgr.BetweenPeriods = func() {
		if cfg.pace > 0 {
			time.Sleep(cfg.pace)
		}
		if plane != nil {
			plane.Drain()
		}
	}

	if cfg.sig != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case s := <-cfg.sig:
				fmt.Fprintf(os.Stderr, "copartd: caught %v, draining and stopping after the current period\n", s)
				if plane != nil {
					plane.SetDraining()
				}
				mgr.Stop()
			case <-done:
			}
		}()
	}

	fmt.Printf("consolidating %v on %d cores, %d-way LLC\n", m.Apps(), mcfg.Cores, mcfg.LLCWays)
	mgr.OnPeriod = func(r core.PeriodReport) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "t=%6.1fs %-11s unfairness=%.4f ", r.Time.Seconds(), r.Phase, r.Unfairness)
		for i, app := range r.Apps {
			fmt.Fprintf(&sb, " %s[w=%d,mba=%d,slow=%.2f]",
				app, r.State.Ways[i], r.State.MBA[i], r.Slowdowns[i])
		}
		fmt.Println(sb.String())
		if plane != nil {
			plane.Observe(r)
		}
		if periodHook != nil {
			periodHook(r)
		}
		if rc != nil {
			if err := mirror(rc, mirrored, r); err != nil {
				fmt.Fprintln(os.Stderr, "copartd: resctrl mirror:", err)
			}
		}
	}
	if err := mgr.Run(cfg.duration); err != nil {
		return err
	}
	if plane != nil {
		// Answer stragglers that queued during the last period; with the
		// drain flag set they are rejected rather than left hanging.
		plane.SetDraining()
		plane.Drain()
	}
	fmt.Printf("done at t=%.1fs in %v phase\n", m.Now().Seconds(), mgr.Phase())
	if inj != nil {
		st := inj.Stats()
		fmt.Printf("injected faults: %d (reads=%d writes=%d overruns=%d wraps=%d stuck=%d departs=%d arrivals=%d)\n",
			st.Total(), st.ReadErrors, st.WriteErrors, st.Overruns, st.Wraps,
			st.StuckReads, st.Departures, st.Arrivals)
	}
	if cfg.snapshotExit != "" {
		if err := writeSnapshot(mgr, cfg.snapshotExit); err != nil {
			return err
		}
		fmt.Printf("state snapshot written to %s\n", cfg.snapshotExit)
	}
	if elog != nil {
		fmt.Printf("\nevent log (%d events, %d retained):\n", elog.Total(), elog.Len())
		if err := elog.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// writeSnapshot serializes the manager's full state into path.
func writeSnapshot(mgr *core.Manager, path string) error {
	snap, err := mgr.Snapshot()
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	data, err := snap.Marshal()
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// mirror writes the report's system state into the resctrl tree, creating
// control groups on demand for applications that arrived mid-run.
func mirror(rc *resctrl.Client, mirrored map[string]bool, r core.PeriodReport) error {
	masks, err := machine.AssignContiguousWays(r.State.Ways, 0, len64(rc.Info().CBMMask))
	if err != nil {
		return err
	}
	for i, app := range r.Apps {
		if !mirrored[app] {
			if err := rc.CreateGroup(app); err != nil {
				return err
			}
			mirrored[app] = true
		}
		s := resctrl.Schemata{
			L3: map[int]uint64{0: masks[i]},
			MB: map[int]int{0: r.State.MBA[i]},
		}
		if err := rc.WriteSchemata(app, s); err != nil {
			return err
		}
	}
	return nil
}

// restoreDefaults returns every application — live on the machine, and
// every mirrored control group — to the unrestricted allocation: full
// cache mask and 100 % memory bandwidth. Groups removed underneath us
// are skipped.
func restoreDefaults(m *machine.Machine, rc *resctrl.Client, mirrored map[string]bool) error {
	full := m.Config().FullMask()
	for _, name := range m.Apps() {
		if err := m.SetAllocation(name, machine.Alloc{CBM: full, MBALevel: membw.MaxLevel}); err != nil {
			return err
		}
	}
	if rc == nil {
		return nil
	}
	info := rc.Info()
	s := resctrl.Schemata{L3: map[int]uint64{}, MB: map[int]int{}}
	for _, id := range info.CacheIDs {
		s.L3[id] = info.CBMMask
		s.MB[id] = membw.MaxLevel
	}
	for group := range mirrored {
		if err := rc.WriteSchemata(group, s); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return err
		}
	}
	return nil
}

// len64 counts the set bits of the CBM mask (the way count).
func len64(mask uint64) int {
	n := 0
	for ; mask != 0; mask >>= 1 {
		if mask&1 != 0 {
			n++
		}
	}
	return n
}
