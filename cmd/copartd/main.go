// Command copartd runs the CoPart controller against a simulated server
// consolidating one of the paper's workload mixes, printing one line per
// control period: phase, per-application slowdowns, unfairness, and the
// system state.
//
// With -resctrl DIR, the daemon additionally mirrors every allocation
// decision into a resctrl directory tree (one control group per
// application, schemata written through the same client that drives a
// real /sys/fs/resctrl), demonstrating the deployment path on CAT/MBA
// hardware.
//
// Usage:
//
//	copartd -mix H-LLC -apps 4 -duration 60s [-seed 1] [-resctrl DIR]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/machine"
	"repro/internal/resctrl"
	"repro/internal/workloads"
)

func main() {
	mixName := flag.String("mix", "H-Both", "workload mix: H-LLC, H-BW, H-Both, M-LLC, M-BW, M-Both, IS")
	apps := flag.Int("apps", 4, "number of consolidated applications (3-6)")
	duration := flag.Duration("duration", 60*time.Second, "virtual time to run")
	seed := flag.Int64("seed", 1, "controller seed")
	resctrlDir := flag.String("resctrl", "", "mirror decisions into a resctrl tree under this directory")
	events := flag.Bool("events", false, "print the controller's structured event log at exit")
	flag.Parse()

	if err := run(*mixName, *apps, *duration, *seed, *resctrlDir, *events); err != nil {
		fmt.Fprintln(os.Stderr, "copartd:", err)
		os.Exit(1)
	}
}

func parseMix(name string) (workloads.MixKind, error) {
	for _, k := range workloads.MixKinds() {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown mix %q", name)
}

func run(mixName string, apps int, duration time.Duration, seed int64, resctrlDir string, events bool) error {
	kind, err := parseMix(mixName)
	if err != nil {
		return err
	}
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	models, err := workloads.Mix(cfg, kind, apps)
	if err != nil {
		return err
	}
	names := make([]string, len(models))
	for i, model := range models {
		if err := m.AddApp(model); err != nil {
			return err
		}
		names[i] = model.Name
	}

	var rc *resctrl.Client
	if resctrlDir != "" {
		rc, err = resctrl.NewSimTree(resctrlDir, cfg)
		if err != nil {
			return err
		}
		for _, n := range names {
			if err := rc.CreateGroup(n); err != nil {
				return err
			}
		}
		fmt.Printf("mirroring schemata into %s\n", resctrlDir)
	}

	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		return err
	}
	mgr, err := core.NewManager(m, core.DefaultParams(), ref,
		core.Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}

	var elog *eventlog.Log
	if events {
		elog, err = eventlog.New(8192)
		if err != nil {
			return err
		}
		mgr.Events = elog
	}

	fmt.Printf("consolidating %v on %d cores, %d-way LLC\n", names, cfg.Cores, cfg.LLCWays)
	mgr.OnPeriod = func(r core.PeriodReport) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "t=%6.1fs %-11s unfairness=%.4f ", r.Time.Seconds(), r.Phase, r.Unfairness)
		for i, app := range r.Apps {
			fmt.Fprintf(&sb, " %s[w=%d,mba=%d,slow=%.2f]",
				app, r.State.Ways[i], r.State.MBA[i], r.Slowdowns[i])
		}
		fmt.Println(sb.String())
		if rc != nil {
			if err := mirror(rc, r); err != nil {
				fmt.Fprintln(os.Stderr, "copartd: resctrl mirror:", err)
			}
		}
	}
	if err := mgr.Run(duration); err != nil {
		return err
	}
	fmt.Printf("done at t=%.1fs in %v phase\n", m.Now().Seconds(), mgr.Phase())
	if elog != nil {
		fmt.Printf("\nevent log (%d events, %d retained):\n", elog.Total(), elog.Len())
		if err := elog.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// mirror writes the report's system state into the resctrl tree.
func mirror(rc *resctrl.Client, r core.PeriodReport) error {
	masks, err := machine.AssignContiguousWays(r.State.Ways, 0, len64(rc.Info().CBMMask))
	if err != nil {
		return err
	}
	for i, app := range r.Apps {
		s := resctrl.Schemata{
			L3: map[int]uint64{0: masks[i]},
			MB: map[int]int{0: r.State.MBA[i]},
		}
		if err := rc.WriteSchemata(app, s); err != nil {
			return err
		}
	}
	return nil
}

// len64 counts the set bits of the CBM mask (the way count).
func len64(mask uint64) int {
	n := 0
	for ; mask != 0; mask >>= 1 {
		if mask&1 != 0 {
			n++
		}
	}
	return n
}
