package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/membw"
	"repro/internal/resctrl"
	"repro/internal/workloads"
)

func TestParseMix(t *testing.T) {
	for _, k := range workloads.MixKinds() {
		got, err := parseMix(k.String())
		if err != nil || got != k {
			t.Errorf("parseMix(%s)=%v,%v", k, got, err)
		}
	}
	// Case-insensitive.
	if k, err := parseMix("h-llc"); err != nil || k != workloads.HLLC {
		t.Errorf("parseMix(h-llc)=%v,%v", k, err)
	}
	if _, err := parseMix("nope"); err == nil {
		t.Error("unknown mix should error")
	}
}

func TestRunSimulated(t *testing.T) {
	if err := run(config{mix: "H-LLC", apps: 4, duration: 30 * time.Second, seed: 1, events: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithResctrlMirror(t *testing.T) {
	dir := t.TempDir()
	if err := run(config{mix: "M-BW", apps: 4, duration: 25 * time.Second, seed: 1, resctrlDir: dir}); err != nil {
		t.Fatal(err)
	}
	// The mirror must contain one group per application with parseable
	// schemata, and the shutdown path must have restored the defaults:
	// full cache mask, 100 % memory bandwidth.
	full := machine.DefaultConfig().FullMask()
	for _, app := range []string{"OC", "CG", "SW", "EP"} {
		b, err := os.ReadFile(filepath.Join(dir, app, "schemata"))
		if err != nil {
			t.Errorf("missing schemata for %s: %v", app, err)
			continue
		}
		s, err := resctrl.ParseSchemata(string(b))
		if err != nil {
			t.Errorf("unparseable schemata for %s: %v", app, err)
			continue
		}
		if s.L3[0] != full {
			t.Errorf("%s: CBM %#x after exit, want restored full mask %#x", app, s.L3[0], full)
		}
		if s.MB[0] != membw.MaxLevel {
			t.Errorf("%s: MBA %d%% after exit, want restored %d%%", app, s.MB[0], membw.MaxLevel)
		}
	}
}

// TestRunWithFaults drives the daemon through the full chaos path: a
// probabilistic error background plus a read outage and churn must not
// make run return an error once resilience is enabled.
func TestRunWithFaults(t *testing.T) {
	spec := "seed=3,readerr=0.1,writeerr=0.05,readburst=20s-25s,depart=@30s,arrive=WN@40s"
	if err := run(config{mix: "H-Both", apps: 4, duration: 70 * time.Second, seed: 1, faults: spec}); err != nil {
		t.Fatal(err)
	}
}

// TestRunWithFaultsAndMirror checks that churn arrivals get a control
// group created on demand in the mirror tree. The mix must not already
// contain WN: the machine rejects re-arrivals under a previously used
// name, and a pre-existing group would make this check vacuous.
func TestRunWithFaultsAndMirror(t *testing.T) {
	dir := t.TempDir()
	spec := "depart=@20s,arrive=WN@30s"
	if err := run(config{mix: "H-Both", apps: 4, duration: 60 * time.Second, seed: 1, resctrlDir: dir, faults: spec}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "WN", "schemata")); err != nil {
		t.Errorf("arrived app WN should have a mirrored control group: %v", err)
	}
}

func TestRunBadFaultSpec(t *testing.T) {
	if err := run(config{mix: "H-LLC", apps: 4, duration: time.Second, seed: 1, faults: "bogus"}); err == nil {
		t.Error("malformed fault spec should error")
	}
	if err := run(config{mix: "H-LLC", apps: 4, duration: time.Second, seed: 1, faults: "arrive=NOPE@5s"}); err == nil {
		t.Error("unknown arrival benchmark should error")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(config{mix: "nope", apps: 4, duration: time.Second, seed: 1}); err == nil {
		t.Error("unknown mix should error")
	}
	if err := run(config{mix: "H-LLC", apps: 40, duration: time.Second, seed: 1}); err == nil {
		t.Error("too many apps should error")
	}
}

// TestRunStopsOnSignal feeds the daemon a synthetic signal and expects a
// clean early exit with defaults restored.
func TestRunStopsOnSignal(t *testing.T) {
	dir := t.TempDir()
	sig := make(chan os.Signal, 1)
	sig <- os.Interrupt
	start := time.Now()
	if err := run(config{mix: "H-LLC", apps: 4, duration: time.Hour, seed: 1, resctrlDir: dir, sig: sig}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("run took %v after the stop signal", elapsed)
	}
	full := machine.DefaultConfig().FullMask()
	for _, app := range []string{"NO", "LU", "UA", "BT"} {
		b, err := os.ReadFile(filepath.Join(dir, app, "schemata"))
		if err != nil {
			// App set depends on the mix; only check groups that exist.
			continue
		}
		s, err := resctrl.ParseSchemata(string(b))
		if err != nil {
			t.Errorf("unparseable schemata for %s: %v", app, err)
			continue
		}
		if s.L3[0] != full || s.MB[0] != membw.MaxLevel {
			t.Errorf("%s not restored to defaults: %+v", app, s)
		}
	}
}
