package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/workloads"
)

func TestParseMix(t *testing.T) {
	for _, k := range workloads.MixKinds() {
		got, err := parseMix(k.String())
		if err != nil || got != k {
			t.Errorf("parseMix(%s)=%v,%v", k, got, err)
		}
	}
	// Case-insensitive.
	if k, err := parseMix("h-llc"); err != nil || k != workloads.HLLC {
		t.Errorf("parseMix(h-llc)=%v,%v", k, err)
	}
	if _, err := parseMix("nope"); err == nil {
		t.Error("unknown mix should error")
	}
}

func TestRunSimulated(t *testing.T) {
	if err := run("H-LLC", 4, 30*time.Second, 1, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithResctrlMirror(t *testing.T) {
	dir := t.TempDir()
	if err := run("M-BW", 4, 25*time.Second, 1, dir, false); err != nil {
		t.Fatal(err)
	}
	// The mirror must contain one group per application with parseable
	// schemata.
	for _, app := range []string{"OC", "CG", "SW", "EP"} {
		b, err := os.ReadFile(filepath.Join(dir, app, "schemata"))
		if err != nil {
			t.Errorf("missing schemata for %s: %v", app, err)
			continue
		}
		if len(b) == 0 {
			t.Errorf("empty schemata for %s", app)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 4, time.Second, 1, "", false); err == nil {
		t.Error("unknown mix should error")
	}
	if err := run("H-LLC", 40, time.Second, 1, "", false); err == nil {
		t.Error("too many apps should error")
	}
}
