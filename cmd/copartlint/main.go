// Command copartlint runs the repo's custom static-analysis suite
// (internal/analysis) over the module: determinism, noalloc, directive
// hygiene, and floatcmp. It is the compile-time counterpart of the
// runtime guard tests — `make lint` and CI run it before the test
// suite, so a wall-clock read added to internal/machine or an
// allocation slipped into a //copart:noalloc function fails the build
// instead of waiting for the one test that might notice.
//
// Usage:
//
//	copartlint [-dir .] [-list] [./...]
//
// The module rooted at -dir is always analyzed in its entirety (the
// optional ./... argument is accepted for familiarity). Exit status is
// 1 when findings are reported, 2 on internal failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("copartlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	dir := fs.String("dir", ".", "module root to analyze")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	for _, arg := range fs.Args() {
		if arg != "./..." {
			fmt.Fprintf(errOut, "copartlint: only the whole module is analyzed; unsupported argument %q\n", arg)
			return 2
		}
	}
	diags, err := lint(*dir, analyzers)
	if err != nil {
		fmt.Fprintln(errOut, "copartlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "copartlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func lint(dir string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		return nil, err
	}
	return analysis.Run(pkgs, analyzers)
}
