// Command copartlint runs the repo's custom static-analysis suite
// (internal/analysis) over the module: determinism (with
// interprocedural taint paths), noalloc (with call-graph reachability),
// parclosure, directive hygiene, and floatcmp. It is the compile-time
// counterpart of the runtime guard tests — `make lint` and CI run it
// before the test suite, so a wall-clock read added to internal/machine
// or an allocation slipped into a //copart:noalloc call chain fails the
// build instead of waiting for the one test that might notice.
//
// Usage:
//
//	copartlint [-dir .] [-list] [-json] [-pass name[,name...]] [./...]
//
// The module rooted at -dir is always analyzed in its entirety (the
// optional ./... argument is accepted for familiarity). -pass restricts
// the run to a comma-separated subset of the analyzers -list prints.
// -json replaces the line-per-finding output with an indented JSON
// array of findings (always an array, "[]" when clean) on stdout; the
// exit codes do not change. Exit status is 1 when findings are
// reported, 2 on internal failure or bad usage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("copartlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	dir := fs.String("dir", ".", "module root to analyze")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	passes := fs.String("pass", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *passes != "" {
		var err error
		analyzers, err = selectAnalyzers(analyzers, *passes)
		if err != nil {
			fmt.Fprintln(errOut, "copartlint:", err)
			return 2
		}
	}
	for _, arg := range fs.Args() {
		if arg != "./..." {
			fmt.Fprintf(errOut, "copartlint: only the whole module is analyzed; unsupported argument %q\n", arg)
			return 2
		}
	}
	diags, err := lint(*dir, analyzers)
	if err != nil {
		fmt.Fprintln(errOut, "copartlint:", err)
		return 2
	}
	if *jsonOut {
		if err := analysis.WriteJSON(out, diags); err != nil {
			fmt.Fprintln(errOut, "copartlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "copartlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers filters the suite down to the named passes, keeping
// suite order. An unknown name is a usage error, not a silent no-op: a
// typo in a CI invocation must fail loudly rather than lint nothing.
func selectAnalyzers(all []*analysis.Analyzer, names string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if byName[n] == nil {
			known := make([]string, 0, len(all))
			for _, a := range all {
				known = append(known, a.Name)
			}
			return nil, fmt.Errorf("unknown pass %q (available: %s)", n, strings.Join(known, ", "))
		}
		want[n] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("-pass given but no pass names parsed from %q", names)
	}
	selected := make([]*analysis.Analyzer, 0, len(want))
	for _, a := range all {
		if want[a.Name] {
			selected = append(selected, a)
		}
	}
	return selected, nil
}

func lint(dir string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		return nil, err
	}
	return analysis.Run(pkgs, analyzers)
}
