package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, want 0; stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"determinism", "noalloc", "parclosure", "directives", "floatcmp"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnsupportedArgument(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"./cmd/..."}, &out, &errOut); code != 2 {
		t.Fatalf("run(./cmd/...) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unsupported argument") {
		t.Errorf("stderr missing explanation: %s", errOut.String())
	}
}

func TestMissingModule(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", t.TempDir()}, &out, &errOut); code != 2 {
		t.Fatalf("run on dir without go.mod = %d, want 2", code)
	}
}

func TestFindingsExitOne(t *testing.T) {
	// A module named repro puts internal/core inside the determinism
	// scope, so a bare time.Now there must surface as a finding.
	dir := writeModule(t, map[string]string{
		"go.mod": "module repro\n\ngo 1.22\n",
		"internal/core/clock.go": `package core

import "time"

// Stamp reads the wall clock where determinism is required.
func Stamp() time.Time {
	return time.Now()
}
`,
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("run = %d, want 1; stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "wall-clock read time.Now") {
		t.Errorf("stdout missing the diagnostic:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "1 finding(s)") {
		t.Errorf("stderr missing the summary: %s", errOut.String())
	}
}

func TestJSONFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module repro\n\ngo 1.22\n",
		"internal/core/clock.go": `package core

import "time"

// Stamp reads the wall clock where determinism is required.
func Stamp() time.Time {
	return time.Now()
}
`,
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir, "-json"}, &out, &errOut); code != 1 {
		t.Fatalf("run(-json) = %d, want 1; stderr: %s", code, errOut.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON findings array: %v\n%s", err, out.String())
	}
	if len(findings) != 1 {
		t.Fatalf("decoded %d findings, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "determinism" {
		t.Errorf("finding analyzer = %q, want determinism", f.Analyzer)
	}
	if !strings.Contains(f.Message, "wall-clock read time.Now") {
		t.Errorf("finding message = %q, want wall-clock diagnostic", f.Message)
	}
	if f.Line == 0 || !strings.HasSuffix(f.File, "clock.go") {
		t.Errorf("finding position = %s:%d, want clock.go with a line", f.File, f.Line)
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"lib.go": "package lib\n\n// Add adds.\nfunc Add(a, b int) int { return a + b }\n",
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir, "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-json) = %d, want 0; stderr: %s", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

func TestPassSelection(t *testing.T) {
	// The module has one determinism finding; restricting the run to
	// floatcmp must make it clean, and restricting it to determinism
	// must keep the finding.
	dir := writeModule(t, map[string]string{
		"go.mod": "module repro\n\ngo 1.22\n",
		"internal/core/clock.go": `package core

import "time"

// Stamp reads the wall clock where determinism is required.
func Stamp() time.Time {
	return time.Now()
}
`,
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir, "-pass", "floatcmp"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-pass floatcmp) = %d, want 0; stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-dir", dir, "-pass", "determinism,directives"}, &out, &errOut); code != 1 {
		t.Fatalf("run(-pass determinism,directives) = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "wall-clock read time.Now") {
		t.Errorf("stdout missing the diagnostic:\n%s", out.String())
	}
}

func TestPassUnknownName(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-pass", "determinsim"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-pass determinsim) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown pass") || !strings.Contains(errOut.String(), "available:") {
		t.Errorf("stderr missing the unknown-pass explanation: %s", errOut.String())
	}
}

func TestCleanModuleExitZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"lib.go": `package lib

// Add is free of anything the suite checks.
func Add(a, b int) int {
	return a + b
}
`,
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0; stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean module produced output:\n%s", out.String())
	}
}
