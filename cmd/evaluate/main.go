// Command evaluate regenerates the evaluation-section comparisons:
// Figure 12 (unfairness per policy per mix), Figure 13 (sensitivity to
// application count), Figure 14 (sensitivity to total LLC capacity), and
// Figure 17 (throughput).
//
// Usage:
//
//	evaluate -fig 12 [-seed N] [-parallel N]
//	evaluate -fig 13
//	evaluate -fig 14
//	evaluate -fig 17
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/svgplot"
	"repro/internal/texttab"
)

func main() {
	fig := flag.Int("fig", 12, "figure to regenerate (12, 13, 14, or 17)")
	seed := flag.Int64("seed", 1, "seed for the dynamic policies")
	extended := flag.Bool("extended", false, "include the None and UCP extension baselines (fig 12 only)")
	dualSocket := flag.Bool("dualsocket", false, "run the dual-socket extension experiment instead of a figure")
	svgDir := flag.String("svg", "", "also write an SVG figure into this directory")
	workers := flag.Int("parallel", 0, "worker count for the experiment engine (0 = all cores)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	svgOut = *svgDir
	parallel.SetWorkers(*workers)
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}

	if *dualSocket {
		err = runDualSocket(*seed)
	} else {
		err = run(*fig, *seed, *extended)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func runDualSocket(seed int64) error {
	_, tab, err := experiments.DualSocket(machine.DefaultConfig(), seed)
	if err != nil {
		return err
	}
	return tab.Render(os.Stdout)
}

// svgOut, when non-empty, receives SVG copies of the figures.
var svgOut string

func run(fig int, seed int64, extended bool) error {
	cfg := machine.DefaultConfig()
	var tab *texttab.Table
	var err error
	var bars *svgplot.BarSpec
	switch fig {
	case 12:
		var res experiments.Fig12Result
		if extended {
			res, tab, err = experiments.Figure12Extended(cfg, seed)
		} else {
			res, tab, err = experiments.Figure12(cfg, seed)
		}
		if err == nil {
			defer printHeadline(res)
			bars = fig12Bars(res)
		}
	case 13:
		var res experiments.SweepResult
		res, tab, err = experiments.Figure13(cfg, seed)
		if err == nil {
			bars = sweepBars("Figure 13: unfairness vs application count", "apps", res)
		}
	case 14:
		var res experiments.SweepResult
		res, tab, err = experiments.Figure14(cfg, seed)
		if err == nil {
			bars = sweepBars("Figure 14: unfairness vs total LLC ways", "ways", res)
		}
	case 17:
		var res experiments.SweepResult
		res, tab, err = experiments.Figure17(cfg, seed)
		if err == nil {
			bars = sweepBars("Figure 17: throughput vs application count", "apps", res)
		}
	default:
		return fmt.Errorf("no evaluation figure %d (supported: 12, 13, 14, 17)", fig)
	}
	if err != nil {
		return err
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	if svgOut != "" && bars != nil {
		path := filepath.Join(svgOut, fmt.Sprintf("fig%d.svg", fig))
		if err := writeSVG(path, *bars); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func fig12Bars(res experiments.Fig12Result) *svgplot.BarSpec {
	spec := &svgplot.BarSpec{
		Title:  "Figure 12: unfairness normalized to EQ (lower is better)",
		YLabel: "normalized unfairness",
	}
	for _, k := range res.Mixes {
		spec.Groups = append(spec.Groups, k.String())
	}
	for pi, name := range res.Policies {
		spec.Series = append(spec.Series, svgplot.BarSeries{Name: name, Values: res.Norm[pi]})
	}
	return spec
}

func sweepBars(title, xName string, res experiments.SweepResult) *svgplot.BarSpec {
	spec := &svgplot.BarSpec{Title: title, YLabel: "normalized " + res.Label}
	for _, x := range res.Points {
		spec.Groups = append(spec.Groups, fmt.Sprintf("%s=%d", xName, x))
	}
	for pi, name := range res.Policies {
		spec.Series = append(spec.Series, svgplot.BarSeries{Name: name, Values: res.Value[pi]})
	}
	return spec
}

func writeSVG(path string, spec svgplot.BarSpec) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := svgplot.WriteBars(f, spec); err != nil {
		return err
	}
	return f.Close()
}

// printHeadline reports the paper's headline metric: CoPart's fairness
// improvement over EQ, CAT-only, and MBA-only.
func printHeadline(res experiments.Fig12Result) {
	idx := map[string]int{}
	for i, p := range res.Policies {
		idx[p] = i
	}
	cp := res.GeoMean[idx["CoPart"]]
	for _, base := range []string{"EQ", "CAT-only", "MBA-only"} {
		b := res.GeoMean[idx[base]]
		if b > 0 {
			fmt.Printf("CoPart fairness improvement over %s: %.1f%% (paper: %s)\n",
				base, (b-cp)/b*100, paperHeadline(base))
		}
	}
}

func paperHeadline(base string) string {
	switch base {
	case "EQ":
		return "57.3%"
	case "CAT-only":
		return "28.6%"
	case "MBA-only":
		return "56.4%"
	default:
		return "n/a"
	}
}
