package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFigure12(t *testing.T) {
	if err := run(12, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure12Extended(t *testing.T) {
	if testing.Short() {
		t.Skip("extended policy sweep")
	}
	if err := run(12, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(99, 1, false); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestPaperHeadline(t *testing.T) {
	for _, base := range []string{"EQ", "CAT-only", "MBA-only"} {
		if paperHeadline(base) == "n/a" {
			t.Errorf("missing paper headline for %s", base)
		}
	}
	if paperHeadline("other") != "n/a" {
		t.Error("unknown base should be n/a")
	}
}

func TestRunDualSocket(t *testing.T) {
	if err := runDualSocket(1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSVG(t *testing.T) {
	dir := t.TempDir()
	svgOut = dir
	defer func() { svgOut = "" }()
	if err := run(12, 1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig12.svg")); err != nil {
		t.Errorf("missing SVG: %v", err)
	}
}
