// Command fairmap regenerates the fairness characterization heatmaps of
// Figures 4–6: the unfairness of one workload mix under a grid of
// (LLC partitioning, MBA partitioning) pairs, normalized to running the
// mix without any partitioning.
//
// Usage:
//
//	fairmap -fig 4   # WN+WS+RT+SW   (LLC-sensitive mix)
//	fairmap -fig 5   # OC+CG+FT+SW   (bandwidth-sensitive mix)
//	fairmap -fig 6   # SP+ON+FMM+SW  (dual-sensitive mix)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/svgplot"
)

func main() {
	fig := flag.Int("fig", 4, "fairness figure to regenerate (4, 5, or 6)")
	svgDir := flag.String("svg", "", "also write an SVG figure into this directory")
	workers := flag.Int("parallel", 0, "worker count for the experiment engine (0 = all cores)")
	flag.Parse()

	parallel.SetWorkers(*workers)
	if err := run(*fig, *svgDir); err != nil {
		fmt.Fprintln(os.Stderr, "fairmap:", err)
		os.Exit(1)
	}
}

func run(fig int, svgDir string) error {
	grid, hm, err := experiments.FairnessHeatmap(machine.DefaultConfig(), fig)
	if err != nil {
		return err
	}
	if err := hm.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nunpartitioned unfairness (normalization base): %.4f\n", grid.NoneUnfair)
	fmt.Println("cells < 1 are fairer than no partitioning; lower is better")
	if svgDir == "" {
		return nil
	}
	if err := os.MkdirAll(svgDir, 0o755); err != nil {
		return err
	}
	xticks := make([]string, len(grid.MBAParts))
	for i, p := range grid.MBAParts {
		xticks[i] = fmt.Sprint(p)
	}
	yticks := make([]string, len(grid.LLCParts))
	for i, p := range grid.LLCParts {
		yticks[i] = fmt.Sprint(p)
	}
	path := filepath.Join(svgDir, fmt.Sprintf("fig%d.svg", fig))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := svgplot.WriteHeatmap(f, svgplot.HeatmapSpec{
		Title:  fmt.Sprintf("Figure %d: unfairness of %v (normalized to no partitioning)", fig, grid.Mix),
		XLabel: "MBA partitioning", YLabel: "LLC partitioning",
		XTicks: xticks, YTicks: yticks,
		Values: grid.Norm,
	}); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
