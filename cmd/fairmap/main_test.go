package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFigures(t *testing.T) {
	for _, fig := range []int{4, 5, 6} {
		if err := run(fig, ""); err != nil {
			t.Errorf("fig %d: %v", fig, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(99, ""); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestRunWritesSVG(t *testing.T) {
	dir := t.TempDir()
	if err := run(4, dir); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig4.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "<svg") {
		t.Errorf("not an SVG: %.40s", b)
	}
}
