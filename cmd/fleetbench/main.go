// Command fleetbench drives a fleet of independent simulated CoPart
// nodes concurrently and reports controller throughput: node-periods
// per second plus the p50/p99 wall-clock latency of one control period,
// and the solve-cache/score-memo hit rates behind them. The per-node
// outcomes are deterministic in -seed — identical at any -parallel
// setting and with the shared L2 cache on or off — so the tool doubles
// as a scale-level determinism check (-verify re-runs the fleet
// sequentially and with the shared cache disabled, and compares).
//
// Usage:
//
//	fleetbench [-nodes 256] [-periods 50] [-parallel N] [-seed 1] [-l2] [-verify]
//	    [-block N] [-blockstats] [-benchline BenchmarkName]
//	    [-churn] [-cpuprofile fleet.cpu] [-memprofile fleet.mem]
//
// The report includes the dispatch shape — block count, block size, and
// the stripe-merge cost of folding the per-block telemetry into the
// result — plus the spread of per-block p99 latencies, which localizes
// regressions: a wide spread points at a few blocks' workloads, a
// uniform shift at the period loop, a growing stripe merge at the
// telemetry itself. -blockstats prints the full per-block table.
// -benchline replaces the report with a single `go test -bench`-format
// result line under the given name, so Makefile sweeps (for example
// bench-fleet's -parallel scaling runs) can feed fleetbench timings
// through benchjson into the same BENCH_<date>.json as the test-binary
// benchmarks.
//
// With -churn the fleet runs over a trace instead of a fixed grid:
// -nodes becomes the total number of Poisson arrivals and -periods the
// mean exponential lifetime in control periods; departing nodes return
// their runtimes to the pool and arrivals reinitialize them in place
// (fleet.RunChurn). The pool hit/miss/eviction counters and the virtual
// live-population stats are reported alongside the usual figures.
//
// The profiling flags mirror evaluate/characterize: they wrap the whole
// fleet run (verification passes included) in the runtime profilers so
// fleet hot spots are inspectable with `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"slices"
	"time"

	"repro/internal/fleet"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/profiling"
)

// options collects the run parameters.
type options struct {
	nodes      int
	periods    int
	workers    int
	seed       int64
	block      int
	l2         bool
	verify     bool
	churn      bool
	blockstats bool
	benchline  string
}

func main() {
	var o options
	flag.IntVar(&o.nodes, "nodes", 256, "number of simulated nodes (arrivals with -churn)")
	flag.IntVar(&o.periods, "periods", 50, "control periods per node after profiling (mean lifetime with -churn)")
	flag.IntVar(&o.workers, "parallel", 0, "worker bound (0 = GOMAXPROCS)")
	flag.Int64Var(&o.seed, "seed", 1, "fleet seed")
	flag.IntVar(&o.block, "block", 0, "dispatch block size in nodes (0 = fleet default)")
	flag.BoolVar(&o.l2, "l2", true, "enable the process-wide shared solve cache")
	flag.BoolVar(&o.verify, "verify", false, "re-run sequentially and with the shared cache toggled, check per-node determinism")
	flag.BoolVar(&o.churn, "churn", false, "fleet-over-trace: Poisson arrivals, exponential lifetimes, pool reuse across mix shapes")
	flag.BoolVar(&o.blockstats, "blockstats", false, "print the full per-block telemetry table")
	flag.StringVar(&o.benchline, "benchline", "", "replace the report with one go-bench-format result line under this Benchmark name")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetbench:", err)
		os.Exit(1)
	}
	err = run(os.Stdout, o)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetbench:", err)
		os.Exit(1)
	}
}

// pct renders hits/(hits+misses) as a percentage.
func pct(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}

// blockP99Spread summarizes the per-block p99 latencies as min, median,
// and max over the blocks that kept any samples. A tight spread says
// the blocks behave uniformly; a wide one localizes a regression to a
// few blocks' workloads.
func blockP99Spread(blocks []fleet.BlockStats) (lo, med, hi time.Duration, ok bool) {
	p99s := make([]time.Duration, 0, len(blocks))
	for _, b := range blocks {
		if b.Samples > 0 {
			p99s = append(p99s, b.P99)
		}
	}
	if len(p99s) == 0 {
		return 0, 0, 0, false
	}
	slices.Sort(p99s)
	return p99s[0], p99s[len(p99s)/2], p99s[len(p99s)-1], true
}

func run(w *os.File, o options) error {
	parallel.SetWorkers(o.workers)
	defer parallel.SetWorkers(0)
	machine.SetSharedSolveCache(o.l2)
	execute := func() (fleet.Result, error) {
		if o.churn {
			return fleet.RunChurn(fleet.ChurnConfig{
				Arrivals: o.nodes,
				MeanLife: float64(o.periods),
				Seed:     o.seed,
				Block:    o.block,
			})
		}
		return fleet.Run(fleet.Config{Nodes: o.nodes, Periods: o.periods, Seed: o.seed, Block: o.block})
	}
	res, err := execute()
	if err != nil {
		return err
	}
	if o.benchline != "" {
		// One `go test -bench` result line: benchjson parses it exactly
		// like a test-binary benchmark, so sweep timings merge into the
		// same snapshot (one run, so one iteration at elapsed ns/op).
		fmt.Fprintf(w, "%s \t       1\t%d ns/op\n", o.benchline, res.Elapsed.Nanoseconds())
		return nil
	}
	reprofiles := 0
	for _, nr := range res.Nodes {
		reprofiles += nr.Reprofiles
	}
	if o.churn {
		fmt.Fprintf(w, "fleet: %d arrivals, mean lifetime %d periods (seed %d, %d workers)\n",
			o.nodes, o.periods, o.seed, parallel.Workers())
		fmt.Fprintf(w, "churn:            peak %d live, mean %.1f live\n",
			res.Churn.PeakLive, res.Churn.MeanLive)
	} else {
		fmt.Fprintf(w, "fleet: %d nodes × %d periods (seed %d, %d workers)\n",
			o.nodes, o.periods, o.seed, parallel.Workers())
	}
	fmt.Fprintf(w, "elapsed:          %v\n", res.Elapsed)
	fmt.Fprintf(w, "node-periods/sec: %.0f\n", res.PeriodsPerSec)
	fmt.Fprintf(w, "period latency:   p50 %v  p99 %v\n", res.P50, res.P99)
	fmt.Fprintf(w, "dispatch:         %d blocks × %d nodes, stripe merge %v\n",
		len(res.Blocks), res.Block, res.StripeMerge)
	if lo, med, hi, ok := blockP99Spread(res.Blocks); ok {
		fmt.Fprintf(w, "block p99 spread: min %v  median %v  max %v\n", lo, med, hi)
	}
	if o.blockstats {
		for i, b := range res.Blocks {
			fmt.Fprintf(w, "  block %4d [%6d,%6d)  periods %7d  samples %5d  stride %4d  p50 %v  p99 %v\n",
				i, b.Lo, b.Hi, b.Periods, b.Samples, b.Stride, b.P50, b.P99)
		}
	}
	fmt.Fprintf(w, "reprofiles:       %d\n", reprofiles)
	fmt.Fprintf(w, "runtime pool:     %.1f%% hit (%d hits, %d misses, %d evictions, %d free)\n",
		pct(res.Pool.Hits, res.Pool.Misses), res.Pool.Hits, res.Pool.Misses,
		res.Pool.Evictions, res.Pool.Free)
	fmt.Fprintf(w, "solve cache L1:   %.1f%% hit (%d hits, %d misses, %d evictions)\n",
		pct(res.CacheHits, res.CacheMisses), res.CacheHits, res.CacheMisses, res.CacheEvictions)
	if o.l2 {
		fmt.Fprintf(w, "solve cache L2:   %.1f%% hit (%d hits, %d misses, %d evictions, %d entries)\n",
			pct(res.Shared.Hits, res.Shared.Misses), res.Shared.Hits, res.Shared.Misses,
			res.Shared.Evictions, res.Shared.Entries)
	} else {
		fmt.Fprintf(w, "solve cache L2:   disabled\n")
	}
	fmt.Fprintf(w, "score memo:       %.1f%% hit (%d hits, %d misses)\n",
		pct(res.ScoreHits, res.ScoreMisses), res.ScoreHits, res.ScoreMisses)
	fmt.Fprintf(w, "health:           %d healthy, %d degraded (max fail streak %d)\n",
		res.Health.Healthy, res.Health.Degraded, res.Health.MaxFailStreak)
	if o.verify {
		parallel.SetWorkers(1)
		seq, err := execute()
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Nodes, seq.Nodes) {
			return fmt.Errorf("per-node results differ between parallel and sequential runs")
		}
		parallel.SetWorkers(o.workers)
		machine.SetSharedSolveCache(!o.l2)
		toggled, err := execute()
		machine.SetSharedSolveCache(o.l2)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Nodes, toggled.Nodes) {
			return fmt.Errorf("per-node results differ with the shared solve cache toggled")
		}
		fmt.Fprintln(w, "determinism:      verified (parallel == sequential == shared-cache toggled)")
	}
	return nil
}
