// Command fleetbench drives a fleet of independent simulated CoPart
// nodes concurrently and reports controller throughput: node-periods
// per second plus the p50/p99 wall-clock latency of one control period.
// The per-node outcomes are deterministic in -seed — identical at any
// -parallel setting — so the tool doubles as a scale-level determinism
// check (-verify runs the fleet twice, sequentially and in parallel,
// and compares).
//
// Usage:
//
//	fleetbench [-nodes 256] [-periods 50] [-parallel N] [-seed 1] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"repro/internal/fleet"
	"repro/internal/parallel"
)

func main() {
	nodes := flag.Int("nodes", 256, "number of simulated nodes")
	periods := flag.Int("periods", 50, "control periods per node after profiling")
	workers := flag.Int("parallel", 0, "worker bound (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "fleet seed")
	verify := flag.Bool("verify", false, "re-run sequentially and check per-node determinism")
	flag.Parse()

	if err := run(os.Stdout, *nodes, *periods, *workers, *seed, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "fleetbench:", err)
		os.Exit(1)
	}
}

func run(w *os.File, nodes, periods, workers int, seed int64, verify bool) error {
	parallel.SetWorkers(workers)
	defer parallel.SetWorkers(0)
	cfg := fleet.Config{Nodes: nodes, Periods: periods, Seed: seed}
	res, err := fleet.Run(cfg)
	if err != nil {
		return err
	}
	reprofiles := 0
	for _, nr := range res.Nodes {
		reprofiles += nr.Reprofiles
	}
	fmt.Fprintf(w, "fleet: %d nodes × %d periods (seed %d, %d workers)\n",
		nodes, periods, seed, parallel.Workers())
	fmt.Fprintf(w, "elapsed:          %v\n", res.Elapsed)
	fmt.Fprintf(w, "node-periods/sec: %.0f\n", res.PeriodsPerSec)
	fmt.Fprintf(w, "period latency:   p50 %v  p99 %v\n", res.P50, res.P99)
	fmt.Fprintf(w, "reprofiles:       %d\n", reprofiles)
	if verify {
		parallel.SetWorkers(1)
		seq, err := fleet.Run(cfg)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Nodes, seq.Nodes) {
			return fmt.Errorf("per-node results differ between parallel and sequential runs")
		}
		fmt.Fprintln(w, "determinism:      verified (parallel == sequential)")
	}
	return nil
}
