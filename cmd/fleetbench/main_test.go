package main

import (
	"os"
	"testing"
)

func TestRun(t *testing.T) {
	if err := run(os.Stdout, 8, 10, 4, 1, true, true); err != nil {
		t.Fatal(err)
	}
}
