package main

import (
	"os"
	"testing"
)

func TestRun(t *testing.T) {
	o := options{nodes: 8, periods: 10, workers: 4, seed: 1, l2: true, verify: true}
	if err := run(os.Stdout, o); err != nil {
		t.Fatal(err)
	}
}

func TestRunChurn(t *testing.T) {
	o := options{nodes: 16, periods: 4, workers: 2, seed: 1, l2: true, verify: true, churn: true}
	if err := run(os.Stdout, o); err != nil {
		t.Fatal(err)
	}
}
