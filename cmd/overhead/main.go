// Command overhead regenerates Figure 16: the wall-clock time of CoPart's
// system-state-space exploration step (the getNextSystemState matching)
// across application counts, and its share of the one-second control
// period.
//
// Usage:
//
//	overhead [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/machine"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for the controller")
	convergence := flag.Bool("convergence", false, "also report adaptation time in control periods")
	flag.Parse()

	if err := run(*seed, *convergence); err != nil {
		fmt.Fprintln(os.Stderr, "overhead:", err)
		os.Exit(1)
	}
}

func run(seed int64, convergence bool) error {
	_, tab, err := experiments.Figure16(machine.DefaultConfig(), seed)
	if err != nil {
		return err
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\npaper reference: 10.6, 11.8, 12.7, 14.4 µs for 3-6 apps")
	if convergence {
		fmt.Println()
		_, ctab, err := experiments.Convergence(machine.DefaultConfig(), seed)
		if err != nil {
			return err
		}
		if err := ctab.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
