package main

import "testing"

func TestRun(t *testing.T) {
	if err := run(1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithConvergence(t *testing.T) {
	if err := run(1, true); err != nil {
		t.Fatal(err)
	}
}
