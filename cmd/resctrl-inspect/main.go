// Command resctrl-inspect dumps a resctrl tree: the advertised hardware
// limits, every control group's schemata and tasks, and — where the tree
// supports CMT/MBM — the monitoring counters. Point it at a real mount
// (/sys/fs/resctrl) on CAT/MBA hardware or at a simulated tree produced
// by copartd -resctrl or examples/resctrl-tree.
//
// Usage:
//
//	resctrl-inspect -root /sys/fs/resctrl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/resctrl"
)

func main() {
	root := flag.String("root", "/sys/fs/resctrl", "resctrl tree to inspect")
	flag.Parse()

	if err := run(os.Stdout, *root); err != nil {
		fmt.Fprintln(os.Stderr, "resctrl-inspect:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, root string) error {
	c, err := resctrl.Open(root)
	if err != nil {
		return err
	}
	info := c.Info()
	fmt.Fprintf(w, "resctrl tree: %s\n", c.Root())
	fmt.Fprintf(w, "L3: cbm_mask=%x min_cbm_bits=%d num_closids=%d domains=%v\n",
		info.CBMMask, info.MinCBMBits, info.NumCLOSIDs, info.CacheIDs)
	fmt.Fprintf(w, "MB: min_bandwidth=%d bandwidth_gran=%d\n", info.MBAMin, info.MBAGran)
	if info.SupportsMonitoring() {
		fmt.Fprintf(w, "MON: num_rmids=%d features=%v\n", info.NumRMIDs, info.MonFeatures)
	} else {
		fmt.Fprintln(w, "MON: not supported")
	}

	groups, err := c.Groups()
	if err != nil {
		return err
	}
	printGroup := func(name, label string) error {
		s, err := c.ReadSchemata(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n[%s]\n%s", label, s.Format())
		tasks, err := c.Tasks(name)
		if err == nil && len(tasks) > 0 {
			fmt.Fprintf(w, "tasks: %v\n", tasks)
		}
		if info.SupportsMonitoring() && name != "" {
			for _, dom := range info.CacheIDs {
				d, err := c.ReadMonData(name, dom)
				if err != nil {
					continue // monitoring files appear lazily
				}
				fmt.Fprintf(w, "mon_L3_%02d: llc_occupancy=%d mbm_total=%d mbm_local=%d\n",
					dom, d.LLCOccupancy, d.MBMTotalBytes, d.MBMLocalBytes)
			}
		}
		return nil
	}
	if err := printGroup("", "root group"); err != nil {
		return err
	}
	for _, g := range groups {
		if err := printGroup(g, g); err != nil {
			return err
		}
	}
	return nil
}
