package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/resctrl"
	"repro/internal/workloads"
)

func TestRunAgainstSimTree(t *testing.T) {
	dir := t.TempDir()
	cfg := machine.DefaultConfig()
	c, err := resctrl.NewSimTree(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workloads.ByName(cfg, "CG")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddApp(spec.Model); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateGroup("CG"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTask("CG", 4242); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSchemata("CG", resctrl.Schemata{
		L3: map[int]uint64{0: 0x1f},
		MB: map[int]int{0: 60},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := resctrl.SyncMonData(c, m); err != nil {
		t.Fatal(err)
	}

	var b bytes.Buffer
	if err := run(&b, dir); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"cbm_mask=7ff", "num_closids=16",
		"[root group]", "[CG]",
		"L3:0=1f", "MB:0=60",
		"tasks: [4242]",
		"mbm_total=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMissingTree(t *testing.T) {
	if err := run(&bytes.Buffer{}, t.TempDir()); err == nil {
		t.Error("empty directory should error")
	}
}
