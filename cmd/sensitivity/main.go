// Command sensitivity regenerates Figure 11: CoPart's sensitivity to its
// three key design parameters (§5.5.3).
//
// Usage:
//
//	sensitivity -param perf       # δ_P, Figure 11a
//	sensitivity -param missratio  # Β,  Figure 11b
//	sensitivity -param traffic    # Γ,  Figure 11c
//	sensitivity -param all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/parallel"
)

func main() {
	param := flag.String("param", "all", "parameter to sweep: perf, missratio, traffic, or all")
	seed := flag.Int64("seed", 1, "seed for the controller")
	workers := flag.Int("parallel", 0, "worker count for the experiment engine (0 = all cores)")
	flag.Parse()

	parallel.SetWorkers(*workers)
	if err := run(*param, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}
}

func run(param string, seed int64) error {
	var params []experiments.SensitivityParam
	switch param {
	case "perf":
		params = []experiments.SensitivityParam{experiments.SensPerf}
	case "missratio":
		params = []experiments.SensitivityParam{experiments.SensMissRatio}
	case "traffic":
		params = []experiments.SensitivityParam{experiments.SensTraffic}
	case "all":
		params = []experiments.SensitivityParam{
			experiments.SensPerf, experiments.SensMissRatio, experiments.SensTraffic,
		}
	default:
		return fmt.Errorf("unknown parameter %q (perf, missratio, traffic, all)", param)
	}
	cfg := machine.DefaultConfig()
	for _, p := range params {
		_, tab, err := experiments.Figure11(cfg, p, seed)
		if err != nil {
			return err
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
