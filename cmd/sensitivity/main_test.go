package main

import "testing"

func TestRunOneParam(t *testing.T) {
	if testing.Short() {
		t.Skip("controller sweep")
	}
	if err := run("perf", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownParam(t *testing.T) {
	if err := run("bogus", 1); err == nil {
		t.Error("unknown parameter should error")
	}
}
