package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// writeSnapshot builds a live manager, runs it for a while, and writes
// its snapshot to dir — the input every snap2test mode consumes.
func writeSnapshot(t *testing.T, dir string) (path string, snap *core.Snapshot) {
	t.Helper()
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HBoth, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	rng, src := core.NewSeededRand(11)
	mgr, err := core.NewManager(m, core.DefaultParams(), ref,
		core.Envelope{LoWay: 0, Ways: cfg.LLCWays}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mgr.SnapshotSource = src
	if err := mgr.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap, err = mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(dir, "incident-0042.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, snap
}

// TestGenerateEmitsValidTest: the generated file must parse as Go, carry
// the replay digest the snapshot actually produces, and derive its test
// name from the snapshot file.
func TestGenerateEmitsValidTest(t *testing.T) {
	dir := t.TempDir()
	snapPath, snap := writeSnapshot(t, dir)
	out := filepath.Join(dir, "replay_test.go")
	const d = 20 * time.Second

	if err := run(snapPath, d, out, "regress", "", false); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, out, src, 0); err != nil {
		t.Fatalf("generated test does not parse: %v", err)
	}

	reports, err := core.ReplaySnapshot(snap, d)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest := fmt.Sprintf("%#016x", core.ReportsDigest(reports))
	text := string(src)
	for _, want := range []string{
		"package regress",
		"func TestSnapshotReplayIncident0042(t *testing.T)",
		wantDigest,
		fmt.Sprintf("%d*time.Nanosecond", int64(d)),
		fmt.Sprintf("want %d", len(reports)),
		"DO NOT EDIT",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("generated test missing %q", want)
		}
	}
}

// TestCheckMode: -check replays without writing anything and rejects
// broken inputs.
func TestCheckMode(t *testing.T) {
	dir := t.TempDir()
	snapPath, _ := writeSnapshot(t, dir)

	if err := run(snapPath, 15*time.Second, "", "regress", "", true); err != nil {
		t.Fatalf("check mode on a good snapshot: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("check mode wrote files: %v", entries)
	}

	if err := run("", time.Second, "", "regress", "", true); err == nil {
		t.Error("missing -snapshot accepted")
	}
	if err := run(snapPath, 0, "", "regress", "", true); err == nil {
		t.Error("zero duration accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, time.Second, "", "regress", "", true); err == nil {
		t.Error("unparseable snapshot accepted")
	}
}

// TestTestName pins the identifier derivation.
func TestTestName(t *testing.T) {
	cases := map[string]string{
		"snap.json":                "Snap",
		"/tmp/x/incident-7.json":   "Incident7",
		"a_b-c.json":               "ABC",
		"2024-01-05T00.json":       "20240105T00",
		"----.json":                "Snapshot",
		"mixed_CASE_name.json":     "MixedCASEName",
		"/deep/path/to/state.json": "State",
	}
	for in, want := range cases {
		if got := testName(in); got != want {
			t.Errorf("testName(%q) = %q, want %q", in, got, want)
		}
	}
}
