// Package repro is a reproduction of "CoPart: Coordinated Partitioning of
// Last-Level Cache and Memory Bandwidth for Fairness-Aware Workload
// Consolidation on Commodity Servers" (Park, Park, Baek — EuroSys 2019).
//
// CoPart is a user-level controller that coordinates Intel CAT (LLC way
// partitioning) and Intel MBA (memory-bandwidth throttling) to minimize
// the unfairness — the coefficient of variation of per-application
// slowdowns — of applications consolidated on one server. It classifies
// each application's cache and bandwidth appetite with two small finite
// state machines, and allocates resource units by solving a
// Hospitals/Residents stable-matching problem each control period.
//
// Because CAT/MBA hardware and its performance counters are not available
// here, the repository includes a full simulated substrate: an analytic
// machine model (internal/machine), a trace-driven cache simulator
// (internal/cachesim), a bandwidth arbiter (internal/membw), calibrated
// models of the paper's eleven benchmarks (internal/workloads), and a
// simulated resctrl filesystem (internal/resctrl) driven through the same
// client code that would program a real /sys/fs/resctrl.
//
// This package is the public facade: it re-exports the user-facing types
// and constructors so downstream code does not reach into internal/.
// Start with:
//
//	cfg := repro.DefaultConfig()
//	m, _ := repro.NewMachine(cfg)
//	models, _ := repro.Mix(cfg, repro.HLLC, 4)
//	for _, mod := range models {
//		m.AddApp(mod)
//	}
//	ref, _ := repro.StreamMissRates(m)
//	mgr, _ := repro.NewManager(m, repro.DefaultParams(), ref,
//		repro.Envelope{Ways: cfg.LLCWays}, rand.New(rand.NewSource(1)))
//	mgr.Run(60 * time.Second)
//
// The examples/ directory contains runnable programs, the cmd/ tools
// regenerate every table and figure of the paper, and EXPERIMENTS.md
// records paper-vs-measured results.
package repro
