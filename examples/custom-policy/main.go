// Custom policy: the Policy interface makes it easy to prototype new
// allocation strategies against the simulated machine. This example
// implements a "footprint-proportional" policy — LLC ways proportional to
// each application's hot working-set size, bandwidth proportional to its
// solo traffic — and compares it with EQ and CoPart on every mix.
//
// The punchline mirrors the paper's motivation: even a reasonable static
// heuristic with perfect knowledge of working sets is not fairness-aware,
// so the feedback-driven controller still wins on mixed workloads.
//
//	go run ./examples/custom-policy
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

// footprintPolicy sizes partitions from the models' static parameters.
type footprintPolicy struct{}

func (footprintPolicy) Name() string { return "Footprint" }

func (footprintPolicy) Run(cfg repro.Config, models []repro.AppModel) (repro.PolicyResult, error) {
	n := len(models)
	// Ways proportional to hot footprint, at least one each.
	counts := make([]int, n)
	total := 0.0
	for _, m := range models {
		total += m.Footprint()
	}
	remaining := cfg.LLCWays - n
	type share struct {
		idx  int
		frac float64
	}
	shares := make([]share, n)
	for i, m := range models {
		counts[i] = 1
		if total > 0 {
			shares[i] = share{i, m.Footprint() / total}
		}
	}
	sort.Slice(shares, func(a, b int) bool { return shares[a].frac > shares[b].frac })
	for remaining > 0 {
		for _, s := range shares {
			if remaining == 0 {
				break
			}
			extra := int(s.frac * float64(cfg.LLCWays-n))
			for e := 0; e < extra && remaining > 0; e++ {
				counts[s.idx]++
				remaining--
			}
		}
		if remaining > 0 { // round-robin the leftovers
			counts[shares[0].idx]++
			remaining--
		}
	}
	masks, err := repro.AssignContiguousWays(counts, 0, cfg.LLCWays)
	if err != nil {
		return repro.PolicyResult{}, err
	}
	// Bandwidth proportional to stream fraction: heavy streamers get
	// 100 %, light ones the minimum.
	allocs := make([]repro.Alloc, n)
	for i, m := range models {
		level := 10 + int(m.StreamFrac*90)
		level = (level + 9) / 10 * 10
		if level > 100 {
			level = 100
		}
		allocs[i] = repro.Alloc{CBM: masks[i], MBALevel: level}
	}
	// Evaluate through the machine model, like the built-in policies do.
	return evaluate(cfg, models, allocs)
}

func evaluate(cfg repro.Config, models []repro.AppModel, allocs []repro.Alloc) (repro.PolicyResult, error) {
	m, err := repro.NewMachine(cfg)
	if err != nil {
		return repro.PolicyResult{}, err
	}
	perfs, err := m.SolveFor(models, allocs)
	if err != nil {
		return repro.PolicyResult{}, err
	}
	res := repro.PolicyResult{Allocs: allocs}
	for i, model := range models {
		solo, err := m.SoloPerf(model)
		if err != nil {
			return repro.PolicyResult{}, err
		}
		s, err := repro.Slowdown(solo.IPS, perfs[i].IPS)
		if err != nil {
			return repro.PolicyResult{}, err
		}
		res.Names = append(res.Names, model.Name)
		res.Slowdowns = append(res.Slowdowns, s)
	}
	res.Unfairness, err = repro.Unfairness(res.Slowdowns)
	return res, err
}

func main() {
	cfg := repro.DefaultConfig()
	kinds := []repro.MixKind{repro.HLLC, repro.HBW, repro.HBoth, repro.MBoth}
	pols := []repro.Policy{repro.NewEQ(), footprintPolicy{}, repro.NewCoPart(3)}

	fmt.Printf("%-8s", "mix")
	for _, p := range pols {
		fmt.Printf("  %-10s", p.Name())
	}
	fmt.Println()
	for _, kind := range kinds {
		models, err := repro.Mix(cfg, kind, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", kind)
		for _, p := range pols {
			res, err := p.Run(cfg, models)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10.4f", res.Unfairness)
		}
		fmt.Println()
	}
	fmt.Println("\nvalues are unfairness (lower is better)")
}
