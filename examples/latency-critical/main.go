// Latency-critical consolidation (a compact version of the paper's §6.3
// case study): a memcached-like service shares the machine with two batch
// jobs. An envelope manager reserves just enough LLC and bandwidth for
// the service to meet its 1 ms p95 SLO at the offered load; CoPart keeps
// the batch jobs fair inside the leftover envelope. When the load doubles,
// the reservation grows, the envelope shrinks, and CoPart re-adapts.
//
//	go run ./examples/latency-critical
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/machine"
)

func main() {
	cfg := machine.DefaultConfig()
	trace := []experiments.LoadPhase{
		{Until: 40e9, RPS: 75_000},  // 40 s of low load
		{Until: 90e9, RPS: 150_000}, // load doubles
		{Until: 130e9, RPS: 75_000}, // back to low load
	}
	res, err := experiments.CaseStudy(cfg, trace, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("t(s)  load     LCways  p95(ms)  batch-unfairness  phase")
	for i, s := range res.Samples {
		if i%5 != 0 && i != len(res.Samples)-1 {
			continue
		}
		fmt.Printf("%5.1f  %6.0f  %5d  %7.3f  %16.4f  %s\n",
			s.Time.Seconds(), s.LoadRPS, s.LCWays,
			float64(s.P95.Microseconds())/1000, s.Unfairness, s.Phase)
	}
	fmt.Printf("\nSLO violations: %d of %d periods\n", res.SLOViolations, len(res.Samples))
}
