// Monitoring: drives the controller with full observability enabled —
// the structured event log (what CoPart decided and why) and the resctrl
// CMT/MBM monitoring files (llc_occupancy, mbm_total_bytes) that a
// production operator would watch alongside it.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro"
	"repro/internal/eventlog"
	"repro/internal/resctrl"
)

func main() {
	cfg := repro.DefaultConfig()
	m, err := repro.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	models, err := repro.Mix(cfg, repro.HBoth, 4)
	if err != nil {
		log.Fatal(err)
	}

	// A simulated resctrl tree next to the machine: allocation flows in
	// through schemata (driven by the manager below via the machine), and
	// monitoring flows out through mon_data.
	dir, err := os.MkdirTemp("", "copart-mon-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	client, err := repro.NewSimResctrl(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			log.Fatal(err)
		}
		if err := client.CreateGroup(model.Name); err != nil {
			log.Fatal(err)
		}
	}

	ref, err := repro.StreamMissRates(m)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := repro.NewManager(m, repro.DefaultParams(), ref,
		repro.Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(21)))
	if err != nil {
		log.Fatal(err)
	}
	elog, err := eventlog.New(2048)
	if err != nil {
		log.Fatal(err)
	}
	mgr.Events = elog

	if err := mgr.Run(45 * time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== controller event log ===")
	if err := elog.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Refresh and read the monitoring files the way an operator's agent
	// would (per-group occupancy and cumulative traffic).
	if err := resctrl.SyncMonData(client, m); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== resctrl monitoring (mon_data) ===")
	fmt.Printf("%-6s %14s %18s\n", "group", "llc_occupancy", "mbm_total_bytes")
	for _, model := range models {
		d, err := client.ReadMonData(model.Name, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %11.1f MB %15.2f GB\n", model.Name,
			float64(d.LLCOccupancy)/(1<<20), float64(d.MBMTotalBytes)/1e9)
	}
}
