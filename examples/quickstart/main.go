// Quickstart: consolidate one of the paper's workload mixes on the
// simulated 16-core server, run the CoPart controller until it goes idle,
// and compare the resulting fairness against the equal-allocation
// baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()

	// A highly LLC-sensitive mix: three cache-hungry benchmarks with
	// different working sets plus one insensitive benchmark (§6.1's
	// H-LLC).
	models, err := repro.Mix(cfg, repro.HLLC, 4)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: what does equal allocation achieve?
	eq, err := repro.NewEQ().Run(cfg, models)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EQ     unfairness: %.4f  slowdowns: %s\n", eq.Unfairness, fmtSlowdowns(eq))

	// CoPart: build a machine, launch the mix, profile STREAM for the
	// traffic-ratio denominators, and run the controller.
	m, err := repro.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			log.Fatal(err)
		}
	}
	ref, err := repro.StreamMissRates(m)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := repro.NewManager(m, repro.DefaultParams(), ref,
		repro.Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}
	var last repro.PeriodReport
	mgr.OnPeriod = func(r repro.PeriodReport) { last = r }
	if err := mgr.Run(60 * time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CoPart unfairness: %.4f  (%.1f%% fairer than EQ)\n",
		last.Unfairness, (eq.Unfairness-last.Unfairness)/eq.Unfairness*100)
	for i, app := range last.Apps {
		fmt.Printf("  %-4s ways=%-2d mba=%-3d slowdown=%.3f\n",
			app, last.State.Ways[i], last.State.MBA[i], last.Slowdowns[i])
	}
}

func fmtSlowdowns(r repro.PolicyResult) string {
	s := ""
	for i, name := range r.Names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%.2f", name, r.Slowdowns[i])
	}
	return s
}
