// Resctrl tree: demonstrates the file-level interface CoPart deploys
// through on real CAT/MBA hardware. It materializes a simulated resctrl
// tree (the same layout the kernel mounts at /sys/fs/resctrl), creates a
// control group per application, programs schemata through the client,
// and pushes the result into the machine simulator — then prints the
// files so you can see exactly what a real deployment would write.
//
//	go run ./examples/resctrl-tree
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/resctrl"
)

func main() {
	dir, err := os.MkdirTemp("", "resctrl-sim-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := repro.DefaultConfig()
	client, err := repro.NewSimResctrl(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	info := client.Info()
	fmt.Printf("resctrl tree at %s\n", dir)
	fmt.Printf("cbm_mask=%x min_cbm_bits=%d num_closids=%d MBA min=%d gran=%d\n\n",
		info.CBMMask, info.MinCBMBits, info.NumCLOSIDs, info.MBAMin, info.MBAGran)

	// Launch two applications on the simulated machine and carve the
	// cache between them through the filesystem interface.
	m, err := repro.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"WN", "CG"} {
		spec, err := repro.Benchmark(cfg, name)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.AddApp(spec.Model); err != nil {
			log.Fatal(err)
		}
		if err := client.CreateGroup(name); err != nil {
			log.Fatal(err)
		}
	}

	// WN (LLC-sensitive) gets 4 ways at full bandwidth; CG (streaming)
	// gets the other 7 ways throttled to 40 %.
	writes := map[string]repro.Schemata{
		"WN": {L3: map[int]uint64{0: 0x00f}, MB: map[int]int{0: 100}},
		"CG": {L3: map[int]uint64{0: 0x7f0}, MB: map[int]int{0: 40}},
	}
	for group, s := range writes {
		if err := client.WriteSchemata(group, s); err != nil {
			log.Fatal(err)
		}
	}
	if err := resctrl.ApplyToMachine(client, m); err != nil {
		log.Fatal(err)
	}

	for _, group := range []string{"WN", "CG"} {
		b, err := os.ReadFile(filepath.Join(dir, group, "schemata"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s/schemata:\n%s", group, b)
		alloc, err := m.Allocation(group)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("→ machine sees CBM=%#x (%d ways), MBA=%d%%\n\n",
			alloc.CBM, alloc.Ways(), alloc.MBALevel)
	}

	// Invalid writes are rejected exactly as the kernel rejects them.
	bad := repro.Schemata{L3: map[int]uint64{0: 0b101}} // non-contiguous
	if err := client.WriteSchemata("WN", bad); err != nil {
		fmt.Printf("non-contiguous CBM rejected as expected: %v\n", err)
	}
}
