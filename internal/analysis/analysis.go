// Package analysis is copartlint's engine: a small, dependency-free
// reimplementation of the go/analysis analyzer shape (golang.org/x/tools
// is deliberately not vendored) plus the four CoPart-specific passes
// that turn the repo's load-bearing runtime guarantees into
// compile-time checks:
//
//   - determinism: deterministic packages must not read wall clocks,
//     draw from the global math/rand source, or let map iteration order
//     reach slices, reports, or digests unsorted.
//   - noalloc: functions annotated //copart:noalloc must not contain
//     allocating constructs outside recognized amortized-grow and
//     cold-error-path patterns.
//   - directives: every //copart: annotation must be spelled correctly
//     and attached to a real declaration or statement, so annotations
//     cannot rot when the code under them moves.
//   - floatcmp: scoring and fairness packages must not compare floats
//     with == or != (the scoreMemo float-cancellation caveat), except
//     against an exact-zero sentinel.
//
// The division of labor with the runtime guard tests
// (TestSolveAllocationGuard, TestManagerPeriodAllocationGuard,
// TestParallelDeterminism) is deliberate: the guard tests pin the
// end-to-end property on the inputs they exercise; these passes pin the
// local hygiene of every function in every build. See DESIGN.md §10.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding, positioned for editors and CI logs.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named pass. Run inspects the package held by the Pass
// and reports findings through it; returning an error aborts the whole
// lint run (reserved for internal failures, not findings).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer   *Analyzer
	Pkg        *Package
	Directives *DirectiveIndex

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position. The DirectiveIndex is built once per
// package and shared across analyzers.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ix := IndexDirectives(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Directives: ix, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
