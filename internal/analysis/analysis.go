// Package analysis is copartlint's engine: a small, dependency-free
// reimplementation of the go/analysis analyzer shape (golang.org/x/tools
// is deliberately not vendored) plus the CoPart-specific passes that
// turn the repo's load-bearing runtime guarantees into compile-time
// checks:
//
//   - determinism: wall-clock reads, global math/rand draws, and
//     order-leaking map iteration are *sources*; exported functions of
//     the deterministic packages are *roots*; a source that sits in a
//     deterministic package, or is reachable from a root through the
//     module call graph, is a finding that reports the full call path.
//   - noalloc: functions annotated //copart:noalloc must not contain
//     allocating constructs, and must not call unannotated module
//     functions that (transitively) allocate — the annotation closes
//     over the call graph instead of stopping at the function brace.
//   - parclosure: closures handed to internal/parallel's fan-out
//     primitives must only write captured state through indices derived
//     from their loop/block variable, or carry //copart:striped.
//   - directives: every //copart: annotation must be spelled correctly
//     and attached to a real declaration or statement, so annotations
//     cannot rot when the code under them moves.
//   - floatcmp: scoring and fairness packages must not compare floats
//     with == or != (the scoreMemo float-cancellation caveat), except
//     against an exact-zero sentinel.
//
// The division of labor with the runtime guard tests
// (TestSolveAllocationGuard, TestManagerPeriodAllocationGuard,
// TestParallelDeterminism) is deliberate: the guard tests pin the
// end-to-end property on the inputs they exercise; these passes pin the
// hygiene of every function in every build, including call chains the
// guard tests never drive. See DESIGN.md §10 and §15.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
)

// Diagnostic is one finding, positioned for editors and CI logs.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string { return d.Finding().String() }

// Finding is the machine-readable form of a Diagnostic: the schema
// behind `copartlint -json` and the shared formatting used by every
// tool that reports findings (cmd/benchguard borrows it for its
// offender summary, so lint and bench failures read the same way).
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Finding converts the diagnostic to its serializable form.
func (d Diagnostic) Finding() Finding {
	return Finding{
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

// String renders "file:line:col: [analyzer] message", omitting the
// position parts that are zero (benchguard findings carry no line).
func (f Finding) String() string {
	loc := f.File
	if f.Line > 0 {
		loc = fmt.Sprintf("%s:%d", loc, f.Line)
		if f.Col > 0 {
			loc = fmt.Sprintf("%s:%d", loc, f.Col)
		}
	}
	return fmt.Sprintf("%s: [%s] %s", loc, f.Analyzer, f.Message)
}

// WriteJSON emits the diagnostics as an indented JSON array of
// Findings — always an array, "[]" for a clean run, so consumers can
// decode unconditionally.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, d.Finding())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// Analyzer is one named pass. Exactly one of Run and RunModule is set:
// Run inspects one package at a time and is invoked per package;
// RunModule is invoked once with a Pass whose Pkg is nil and analyzes
// the whole Program (the interprocedural passes, which need the
// cross-package call graph). Returning an error aborts the whole lint
// run (reserved for internal failures, not findings).
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	RunModule func(*Pass) error
}

// Pass carries one analyzer's view of the code under analysis. For
// per-package analyzers Pkg and Directives are set; module analyzers
// see the whole Program instead and resolve files and directives
// through it.
type Pass struct {
	Analyzer   *Analyzer
	Prog       *Program
	Pkg        *Package        // nil for RunModule passes
	Directives *DirectiveIndex // nil for RunModule passes

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SuppressedAt reports whether the named line directive covers pos,
// resolving the file through the Program (module passes report into
// arbitrary packages, so they cannot use a per-package index).
func (p *Pass) SuppressedAt(pos token.Pos, name string) bool {
	pkg, file := p.Prog.FileFor(pos)
	if pkg == nil {
		return false
	}
	return p.Prog.Directives(pkg).Suppressed(file, pos, name)
}

// Program is the whole loaded module: every package plus the lazily
// built structures the interprocedural passes share — per-package
// directive indexes and the module call graph.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	dirs map[*Package]*DirectiveIndex
	cg   *CallGraph
}

// NewProgram assembles a Program over packages that share a FileSet
// (packages from one Loader always do).
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs, dirs: map[*Package]*DirectiveIndex{}}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	return prog
}

// Directives returns the package's directive index, built on first use
// and shared across analyzers.
func (p *Program) Directives(pkg *Package) *DirectiveIndex {
	ix, ok := p.dirs[pkg]
	if !ok {
		ix = IndexDirectives(pkg)
		p.dirs[pkg] = ix
	}
	return ix
}

// CallGraph returns the module call graph, built on first use.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p)
	}
	return p.cg
}

// FileFor locates the package and file containing pos.
func (p *Program) FileFor(pos token.Pos) (*Package, *ast.File) {
	for _, pkg := range p.Pkgs {
		if f := fileOf(pkg, pos); f != nil {
			return pkg, f
		}
	}
	return nil, nil
}

// Run applies every analyzer to the program formed by the packages and
// returns the combined findings sorted by position. Per-package
// analyzers run once per package; module analyzers run once over the
// whole set.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	prog := NewProgram(pkgs)
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.RunModule != nil {
			pass := &Pass{Analyzer: a, Prog: prog, diags: &diags}
			if err := a.RunModule(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Pkgs {
			pass := &Pass{
				Analyzer:   a,
				Prog:       prog,
				Pkg:        pkg,
				Directives: prog.Directives(pkg),
				diags:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
