package analysis

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expectation is one parsed want comment: a diagnostic matching re must
// be reported at (file, line).
type expectation struct {
	file string // base name of the fixture file
	line int
	re   *regexp.Regexp
	text string // original pattern, for failure messages
}

// collectWants parses the fixture's want comments. The grammar is a
// small subset of analysistest's:
//
//	// want "regexp" ["regexp" ...]
//
// applying to the comment's own line, with an optional signed offset
// (want-1 "regexp") for diagnostics reported on a neighboring line —
// needed by the directives fixture, whose findings land on the
// directive comment itself, leaving no room for a want on that line.
// The want marker may also trail other comment text, so a directive
// comment can carry its own expectation.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				spec := c.Text[i+len("// want"):]
				line := pos.Line
				if len(spec) > 0 && (spec[0] == '+' || spec[0] == '-') {
					j := 1
					for j < len(spec) && spec[j] >= '0' && spec[j] <= '9' {
						j++
					}
					off, err := strconv.Atoi(spec[:j])
					if err != nil {
						t.Fatalf("%s:%d: bad want offset in %q", pos.Filename, pos.Line, spec)
					}
					line += off
					spec = spec[j:]
				}
				n := 0
				for {
					spec = strings.TrimLeft(spec, " \t")
					if !strings.HasPrefix(spec, `"`) {
						break
					}
					q, err := strconv.QuotedPrefix(spec)
					if err != nil {
						t.Fatalf("%s:%d: bad want string: %v", pos.Filename, pos.Line, err)
					}
					spec = spec[len(q):]
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: compiling want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename),
						line: line,
						re:   re,
						text: pat,
					})
					n++
				}
				if n == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<name> as package fixture/<name>, runs
// the one analyzer over it, and checks the diagnostics against the want
// comments exactly: every want must be matched by a distinct diagnostic
// on its line, and every diagnostic must be claimed by a want.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	runFixturePkgs(t, a, name)
}

// runFixturePkgs is runFixture over several fixture directories loaded
// into one Program — the shape the interprocedural passes need, where
// sources in one package are reported because of call paths rooted in
// another. Want comments are collected from every named package.
func runFixturePkgs(t *testing.T, a *Analyzer, names ...string) {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, name := range names {
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	claimed := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if claimed[i] || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				claimed[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}
