package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CallGraph is the module's static call graph: one node per function
// or method declared with a body in a loaded package, one edge per
// *statically resolvable* reference from one body to another. Calls
// through interfaces and plain function values are not resolvable and
// carry no edge; references that merely pass a function along (a
// funcval handed to slices.SortFunc, a callback stored in a field) DO
// carry an edge, because the referenced function may run on the
// caller's behalf. Code inside a closure is attributed to the
// enclosing declared function — the closure may run whenever its
// creator does, so the over-approximation errs toward reachability,
// which is the safe direction for both taint and allocation analysis.
type CallGraph struct {
	// Nodes maps a declared function to its node. Keys are the
	// *types.Func from the declaring package's Defs map.
	Nodes map[*types.Func]*CGNode
	// ByPkg lists each package's nodes in source order, for
	// deterministic iteration.
	ByPkg map[*Package][]*CGNode
}

// CGNode is one declared function.
type CGNode struct {
	Fn   *types.Func
	Pkg  *Package
	File *ast.File
	Decl *ast.FuncDecl
	// Out holds the outgoing edges in source order, deduplicated to the
	// first reference per callee.
	Out []CGEdge
}

// CGEdge is one static reference from a function body to a declared
// module function.
type CGEdge struct {
	To   *CGNode
	Site token.Pos
	// Cold marks references inside an if/else branch that ends in
	// return or panic — the repo's cold-error-path shape. The noalloc
	// pass does not propagate allocations through cold edges, mirroring
	// its intraprocedural exemption; the determinism pass follows every
	// edge.
	Cold bool
}

// Name renders the node for call-path messages: pkg.Func for plain
// functions, pkg.Type.Method for methods (pointer receivers stripped).
func (n *CGNode) Name() string { return funcDisplayName(n.Fn) }

func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// buildCallGraph constructs the graph over every package of the
// program.
func buildCallGraph(prog *Program) *CallGraph {
	cg := &CallGraph{
		Nodes: map[*types.Func]*CGNode{},
		ByPkg: map[*Package][]*CGNode{},
	}
	// Pass 1: a node per declared function with a body.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{Fn: fn, Pkg: pkg, File: f, Decl: fd}
				cg.Nodes[fn] = node
				cg.ByPkg[pkg] = append(cg.ByPkg[pkg], node)
			}
		}
	}
	// Pass 2: edges. Every identifier use resolving to a module
	// function — call position or not — becomes an edge (see the type
	// comment for why references count).
	for _, pkg := range prog.Pkgs {
		for _, node := range cg.ByPkg[pkg] {
			seen := map[*CGNode]bool{}
			walkWithStack(node.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				callee, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				target := cg.Nodes[callee]
				if target == nil || target == node || seen[target] {
					return true
				}
				seen[target] = true
				node.Out = append(node.Out, CGEdge{
					To:   target,
					Site: id.Pos(),
					Cold: inColdBranch(stack),
				})
				return true
			})
		}
	}
	return cg
}

// ReachFrom runs a breadth-first search from the roots and returns the
// predecessor map: reached node → the edge-source it was first reached
// through (roots map to themselves). Iteration order is deterministic
// — roots in the given order, edges in source order — so the reported
// shortest paths never depend on map iteration.
func (cg *CallGraph) ReachFrom(roots []*CGNode) map[*CGNode]*CGNode {
	parent := make(map[*CGNode]*CGNode, len(roots))
	queue := make([]*CGNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := parent[r]; ok {
			continue
		}
		parent[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if _, ok := parent[e.To]; ok {
				continue
			}
			parent[e.To] = n
			queue = append(queue, e.To)
		}
	}
	return parent
}

// PathTo reconstructs the root→node call path from a ReachFrom
// predecessor map, rendered "root -> … -> node". Returns "" when the
// node was not reached.
func PathTo(parent map[*CGNode]*CGNode, n *CGNode) string {
	if _, ok := parent[n]; !ok {
		return ""
	}
	var names []string
	for {
		names = append(names, n.Name())
		p := parent[n]
		if p == n {
			break
		}
		n = p
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}
