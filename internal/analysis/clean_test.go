package analysis

import "testing"

// TestRepoIsClean is the acceptance gate behind `make lint`: the default
// analyzer suite must run clean over the whole module. Any new finding
// means either real nondeterminism/allocation crept in, or an
// intentional site is missing its reviewed //copart: annotation.
func TestRepoIsClean(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walk is broken", len(pkgs))
	}
	diags, err := Run(pkgs, Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
