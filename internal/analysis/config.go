package analysis

// Default returns the analyzer suite with the repo's production
// scopes — what cmd/copartlint and CI run on every build.
func Default() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(DefaultDeterministicPackages...),
		NewNoAlloc(),
		NewParClosure(),
		NewDirectives(),
		NewFloatCmp(DefaultScoringPackages...),
	}
}
