package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NewDeterminism builds the determinism-taint pass scoped to the given
// package-path prefixes. It is a module-level pass: non-determinism
// *sources* are collected everywhere, the deterministic packages'
// exported functions are *roots*, and a source is a finding when it
// sits inside the scope or is reachable from a root through the module
// call graph. Findings carry the root→source call path so a taint
// report reads as the chain a code reviewer would have had to walk by
// hand.
//
// Sources:
//
//   - any reference to time.Now or time.Since — wall-clock reads make
//     nominally identical runs diverge; latency-measurement sites carry
//     //copart:wallclock with a justification.
//   - any use of a math/rand (or math/rand/v2) top-level function that
//     draws from the global, unseeded source. Only explicitly seeded
//     generators (rand.New(rand.NewSource(seed))) keep runs
//     reproducible, which is the convention the whole repo follows.
//   - map-range loops whose iteration order can reach an output: a loop
//     body that writes to a stream (fmt.Print*/Fprint*, Write*) or
//     appends to a slice declared outside the loop that is never sorted
//     afterwards in the same function. Go randomizes map iteration
//     order, so such loops silently produce run-dependent results;
//     //copart:unordered marks loops whose order genuinely cannot
//     matter.
//
// A source inside a scoped package is always reported (the pre-v2
// behavior — helpers of a deterministic package are deterministic code
// even before anything exported calls them). A source in an unscoped
// package is reported only when the call graph shows a scoped root
// reaching it; the finding then points at the source line and prints
// the full path, because the fix belongs at the source, not at the
// root. Package-level initializers (var clock = time.Now) have no call
// path and are reported only in scope.
func NewDeterminism(scope ...string) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock reads, global RNG draws, and order-leaking map iteration in (or reachable from) deterministic packages",
	}
	a.RunModule = func(pass *Pass) error {
		runDeterminism(pass, scope)
		return nil
	}
	return a
}

// DefaultDeterministicPackages is the repo's deterministic core: every
// package whose outputs must be bit-identical across runs, worker
// counts, and cache configurations (pinned at runtime by
// TestParallelDeterminism and the fleet -verify mode).
var DefaultDeterministicPackages = []string{
	"repro/internal/machine",
	"repro/internal/core",
	"repro/internal/policies",
	"repro/internal/matching",
	"repro/internal/experiments",
	"repro/internal/fleet",
	"repro/internal/trace",
}

// detSource is one collected non-determinism source.
type detSource struct {
	pos token.Pos
	fn  *ast.FuncDecl // enclosing declared function; nil in a package-level initializer
	pkg *Package
	msg string // full in-scope message (pre-v2 wording, fixture-pinned)
	// desc is the short description used when the source is out of
	// scope and only the reachability makes it a finding.
	desc string
}

func runDeterminism(pass *Pass, scope []string) {
	prog := pass.Prog
	var sources []detSource
	emit := func(s detSource) { sources = append(sources, s) }
	for _, pkg := range prog.Pkgs {
		dirs := prog.Directives(pkg)
		for _, f := range pkg.Files {
			collectDetSources(pkg, dirs, f, emit)
		}
	}
	if len(sources) == 0 {
		return
	}
	cg := prog.CallGraph()
	parent := cg.ReachFrom(deterministicRoots(prog, cg, scope))
	for _, s := range sources {
		var node *CGNode
		if s.fn != nil {
			if fn, ok := s.pkg.Info.Defs[s.fn.Name].(*types.Func); ok {
				node = cg.Nodes[fn]
			}
		}
		path := ""
		if node != nil {
			path = PathTo(parent, node)
		}
		switch {
		case inScope(s.pkg.Path, scope):
			if path != "" {
				pass.Reportf(s.pos, "%s (reached from exported deterministic API: %s)", s.msg, path)
			} else {
				pass.Reportf(s.pos, "%s", s.msg)
			}
		case path != "":
			pass.Reportf(s.pos, "%s outside the deterministic scope is reachable from exported deterministic API (call path: %s); fix it at the source or move it behind an injected dependency", s.desc, path)
		}
	}
}

// deterministicRoots returns the scoped packages' exported functions
// and exported methods on exported types, in source order.
func deterministicRoots(prog *Program, cg *CallGraph, scope []string) []*CGNode {
	var roots []*CGNode
	for _, pkg := range prog.Pkgs {
		if !inScope(pkg.Path, scope) {
			continue
		}
		for _, node := range cg.ByPkg[pkg] {
			if !node.Decl.Name.IsExported() {
				continue
			}
			if sig, ok := node.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				rt := sig.Recv().Type()
				if p, ok := rt.(*types.Pointer); ok {
					rt = p.Elem()
				}
				named, ok := rt.(*types.Named)
				if !ok || !named.Obj().Exported() {
					continue
				}
			}
			roots = append(roots, node)
		}
	}
	return roots
}

// collectDetSources gathers every source in one file, attributing each
// to its enclosing declared function (nil for package-level
// initializers, which cannot be reached through the call graph).
func collectDetSources(pkg *Package, dirs *DirectiveIndex, f *ast.File, emit func(detSource)) {
	for _, decl := range f.Decls {
		var fd *ast.FuncDecl
		var body ast.Node = decl
		if d, ok := decl.(*ast.FuncDecl); ok {
			if d.Body == nil {
				continue
			}
			fd, body = d, d.Body
		}
		collectWallClock(pkg, dirs, f, fd, body, emit)
		collectGlobalRand(pkg, f, fd, body, emit)
		if fd != nil {
			collectMapOrder(pkg, dirs, f, fd, emit)
		}
	}
}

func collectWallClock(pkg *Package, dirs *DirectiveIndex, f *ast.File, fd *ast.FuncDecl, body ast.Node, emit func(detSource)) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := funcObj(pkg, sel)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		if name := fn.Name(); name == "Now" || name == "Since" {
			if !dirs.Suppressed(f, sel.Pos(), DirWallclock) {
				emit(detSource{
					pos:  sel.Pos(),
					fn:   fd,
					pkg:  pkg,
					msg:  fmt.Sprintf("wall-clock read time.%s in deterministic package; inject a clock or annotate with //copart:wallclock <reason>", name),
					desc: fmt.Sprintf("wall-clock read time.%s", name),
				})
			}
		}
		return true
	})
}

// seededRandFuncs are the math/rand (and v2) top-level functions that
// construct explicitly seeded generators rather than drawing from the
// global source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func collectGlobalRand(pkg *Package, f *ast.File, fd *ast.FuncDecl, body ast.Node, emit func(detSource)) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := funcObj(pkg, sel)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
			return true
		}
		// Methods (on *rand.Rand etc.) always run against an explicitly
		// constructed generator; only package-level functions reach the
		// global source.
		if fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		if !seededRandFuncs[fn.Name()] {
			emit(detSource{
				pos:  sel.Pos(),
				fn:   fd,
				pkg:  pkg,
				msg:  fmt.Sprintf("top-level rand.%s draws from the global unseeded source; use rand.New(rand.NewSource(seed))", fn.Name()),
				desc: fmt.Sprintf("top-level rand.%s draw from the global unseeded source", fn.Name()),
			})
		}
		return true
	})
}

// outputMethodNames are method names treated as order-sensitive sinks
// when called inside a map-range body: stream writers and hash/digest
// accumulators.
var outputMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// fmtOutputFuncs are fmt functions that emit directly to a stream.
var fmtOutputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func collectMapOrder(pkg *Package, dirs *DirectiveIndex, f *ast.File, fd *ast.FuncDecl, emit func(detSource)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if dirs.Suppressed(f, rng.Pos(), DirUnordered) {
			return true
		}
		collectMapRangeBody(pkg, fd, rng, emit)
		return true
	})
}

// collectMapRangeBody gathers order leaks out of one map-range loop.
func collectMapRangeBody(pkg *Package, fd *ast.FuncDecl, rng *ast.RangeStmt, emit func(detSource)) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := funcObj(pkg, n.Fun); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtOutputFuncs[fn.Name()] {
					emit(detSource{
						pos:  n.Pos(),
						fn:   fd,
						pkg:  pkg,
						msg:  fmt.Sprintf("fmt.%s inside map iteration emits in randomized order; collect and sort first, or annotate the loop with //copart:unordered <reason>", fn.Name()),
						desc: fmt.Sprintf("fmt.%s inside map iteration", fn.Name()),
					})
					return true
				}
				if fn.Type().(*types.Signature).Recv() != nil && outputMethodNames[fn.Name()] {
					emit(detSource{
						pos:  n.Pos(),
						fn:   fd,
						pkg:  pkg,
						msg:  fmt.Sprintf("%s inside map iteration feeds a writer/digest in randomized order; collect and sort first, or annotate the loop with //copart:unordered <reason>", fn.Name()),
						desc: fmt.Sprintf("%s call inside map iteration", fn.Name()),
					})
					return true
				}
			}
		case *ast.AssignStmt:
			collectMapRangeAppend(pkg, fd, rng, n, emit)
		}
		return true
	})
}

// collectMapRangeAppend gathers `s = append(s, …)` inside a map-range
// body when s is declared outside the loop and never sorted later in
// the same function.
func collectMapRangeAppend(pkg *Package, fd *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt, emit func(detSource)) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(pkg, call.Fun, "append") || i >= len(as.Lhs) {
			continue
		}
		dest, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pkg.Info.Uses[dest]
		if obj == nil {
			obj = pkg.Info.Defs[dest]
		}
		if obj == nil {
			continue
		}
		// Only slices accumulated across iterations leak order: the
		// destination must be declared outside the loop.
		if rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End() {
			continue
		}
		if sortedAfter(pkg, fd, rng, obj) {
			continue
		}
		emit(detSource{
			pos: as.Pos(),
			fn:  fd,
			pkg: pkg,
			msg: fmt.Sprintf("append to %q inside map iteration leaks randomized order (no subsequent sort in %s); sort the result, or annotate the loop with //copart:unordered <reason>",
				dest.Name, fd.Name.Name),
			desc: fmt.Sprintf("order-leaking append to %q inside map iteration", dest.Name),
		})
	}
}

// sortFuncs maps package path → function names that establish a
// deterministic order over their first argument.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether obj is passed to a recognized sort
// function after the range loop, anywhere later in the function body.
func sortedAfter(pkg *Package, fd *ast.FuncDecl, rng *ast.RangeStmt, obj any) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		fn := funcObj(pkg, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		names, ok := sortFuncs[fn.Pkg().Path()]
		if !ok || !names[fn.Name()] {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// funcObj resolves an expression to the *types.Func it references, if
// any (plain identifier or package-qualified selector).
func funcObj(pkg *Package, e ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isBuiltin reports whether e references the named builtin.
func isBuiltin(pkg *Package, e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}
