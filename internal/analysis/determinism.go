package analysis

import (
	"go/ast"
	"go/types"
)

// NewDeterminism builds the determinism pass scoped to the given
// package-path prefixes. Inside the scope it reports:
//
//   - any reference to time.Now or time.Since — wall-clock reads make
//     nominally identical runs diverge; latency-measurement sites carry
//     //copart:wallclock with a justification.
//   - any use of a math/rand (or math/rand/v2) top-level function that
//     draws from the global, unseeded source. Only explicitly seeded
//     generators (rand.New(rand.NewSource(seed))) keep runs
//     reproducible, which is the convention the whole repo follows.
//   - map-range loops whose iteration order can reach an output: a loop
//     body that writes to a stream (fmt.Print*/Fprint*, Write*) or
//     appends to a slice declared outside the loop that is never sorted
//     afterwards in the same function. Go randomizes map iteration
//     order, so such loops silently produce run-dependent results;
//     //copart:unordered marks loops whose order genuinely cannot
//     matter.
func NewDeterminism(scope ...string) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock reads, global RNG draws, and order-leaking map iteration in deterministic packages",
	}
	a.Run = func(pass *Pass) error {
		if !inScope(pass.Pkg.Path, scope) {
			return nil
		}
		for _, f := range pass.Pkg.Files {
			checkWallClock(pass, f)
			checkGlobalRand(pass, f)
			checkMapOrder(pass, f)
		}
		return nil
	}
	return a
}

// DefaultDeterministicPackages is the repo's deterministic core: every
// package whose outputs must be bit-identical across runs, worker
// counts, and cache configurations (pinned at runtime by
// TestParallelDeterminism and the fleet -verify mode).
var DefaultDeterministicPackages = []string{
	"repro/internal/machine",
	"repro/internal/core",
	"repro/internal/policies",
	"repro/internal/matching",
	"repro/internal/experiments",
	"repro/internal/fleet",
	"repro/internal/trace",
}

// funcObj resolves an expression to the *types.Func it references, if
// any (plain identifier or package-qualified selector).
func funcObj(pass *Pass, e ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, _ := pass.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

func checkWallClock(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := funcObj(pass, sel)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		if name := fn.Name(); name == "Now" || name == "Since" {
			if !pass.Directives.Suppressed(f, sel.Pos(), DirWallclock) {
				pass.Reportf(sel.Pos(), "wall-clock read time.%s in deterministic package; inject a clock or annotate with //copart:wallclock <reason>", name)
			}
		}
		return true
	})
}

// seededRandFuncs are the math/rand (and v2) top-level functions that
// construct explicitly seeded generators rather than drawing from the
// global source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func checkGlobalRand(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := funcObj(pass, sel)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
			return true
		}
		// Methods (on *rand.Rand etc.) always run against an explicitly
		// constructed generator; only package-level functions reach the
		// global source.
		if fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		if !seededRandFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(), "top-level rand.%s draws from the global unseeded source; use rand.New(rand.NewSource(seed))", fn.Name())
		}
		return true
	})
}

// outputMethodNames are method names treated as order-sensitive sinks
// when called inside a map-range body: stream writers and hash/digest
// accumulators.
var outputMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// fmtOutputFuncs are fmt functions that emit directly to a stream.
var fmtOutputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func checkMapOrder(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Directives.Suppressed(f, rng.Pos(), DirUnordered) {
				return true
			}
			checkMapRangeBody(pass, f, fd, rng)
			return true
		})
	}
}

// checkMapRangeBody flags order leaks out of one map-range loop.
func checkMapRangeBody(pass *Pass, f *ast.File, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := funcObj(pass, n.Fun); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtOutputFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "fmt.%s inside map iteration emits in randomized order; collect and sort first, or annotate the loop with //copart:unordered <reason>", fn.Name())
					return true
				}
				if fn.Type().(*types.Signature).Recv() != nil && outputMethodNames[fn.Name()] {
					pass.Reportf(n.Pos(), "%s inside map iteration feeds a writer/digest in randomized order; collect and sort first, or annotate the loop with //copart:unordered <reason>", fn.Name())
					return true
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAppend(pass, fd, rng, n)
		}
		return true
	})
}

// checkMapRangeAppend flags `s = append(s, …)` inside a map-range body
// when s is declared outside the loop and never sorted later in the
// same function.
func checkMapRangeAppend(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") || i >= len(as.Lhs) {
			continue
		}
		dest, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Pkg.Info.Uses[dest]
		if obj == nil {
			obj = pass.Pkg.Info.Defs[dest]
		}
		if obj == nil {
			continue
		}
		// Only slices accumulated across iterations leak order: the
		// destination must be declared outside the loop.
		if rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End() {
			continue
		}
		if sortedAfter(pass, fd, rng, obj) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %q inside map iteration leaks randomized order (no subsequent sort in %s); sort the result, or annotate the loop with //copart:unordered <reason>", dest.Name, fd.Name.Name)
	}
}

// sortFuncs maps package path → function names that establish a
// deterministic order over their first argument.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether obj is passed to a recognized sort
// function after the range loop, anywhere later in the function body.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj any) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		fn := funcObj(pass, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		names, ok := sortFuncs[fn.Pkg().Path()]
		if !ok || !names[fn.Name()] {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// isBuiltin reports whether e references the named builtin.
func isBuiltin(pass *Pass, e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok
}
