package analysis

import "testing"

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, NewDeterminism("fixture/determ"), "determ")
}

func TestDeterminismTaintFixture(t *testing.T) {
	// Two packages in one Program: dtaint is scoped, dtaintlib is not.
	// The lib's sources are findings only along call paths rooted in
	// dtaint's exported API; the wants in both files pin the paths.
	runFixturePkgs(t, NewDeterminism("fixture/dtaint"), "dtaint", "dtaintlib")
}

func TestDeterminismOutOfScope(t *testing.T) {
	// The same fixture outside the analyzer's scope yields nothing: the
	// pass must never fire on packages that legitimately use wall clocks.
	a := NewDeterminism("fixture/otherpackage")
	loader, err := NewLoader("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/determ", "fixture/determ")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, first: %s", len(diags), diags[0])
	}
}
