package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces every copartlint annotation. The comment
// form is the Go directive convention: no space after //, so gofmt
// leaves it alone and go/doc keeps it out of rendered documentation.
const DirectivePrefix = "//copart:"

// The directive vocabulary. Each name has a fixed grammatical home,
// enforced by the directives analyzer:
//
//	//copart:noalloc <reason>   — function doc comment; the function body
//	                              must be free of allocating constructs.
//	//copart:wallclock <reason> — line directive; permits a wall-clock
//	                              read (time.Now / time.Since) on the
//	                              annotated line in a deterministic
//	                              package.
//	//copart:allocok <reason>   — line directive; permits one allocating
//	                              construct inside a //copart:noalloc
//	                              function.
//	//copart:floateq <reason>   — line directive; permits a float ==/!=
//	                              comparison in a scoring package.
//	//copart:unordered <reason> — line directive; permits a map-range
//	                              loop whose iteration order feeds an
//	                              output without a subsequent sort.
//	//copart:striped <reason>   — line directive; permits a write to a
//	                              captured variable inside a closure
//	                              passed to a parallel fan-out primitive
//	                              (the write is synchronized some other
//	                              way — mutex, atomic, single-writer).
const (
	DirNoalloc   = "noalloc"
	DirWallclock = "wallclock"
	DirAllocOK   = "allocok"
	DirFloatEq   = "floateq"
	DirUnordered = "unordered"
	DirStriped   = "striped"
)

// lineDirectives are the names that attach to a single line of code.
var lineDirectives = map[string]bool{
	DirWallclock: true,
	DirAllocOK:   true,
	DirFloatEq:   true,
	DirUnordered: true,
	DirStriped:   true,
}

// knownDirectives is the full vocabulary.
var knownDirectives = map[string]bool{
	DirNoalloc:   true,
	DirWallclock: true,
	DirAllocOK:   true,
	DirFloatEq:   true,
	DirUnordered: true,
	DirStriped:   true,
}

// Directive is one parsed //copart: comment.
type Directive struct {
	Name    string
	Args    string // free-text justification after the name
	Pos     token.Pos
	Line    int
	File    *ast.File
	InDoc   bool // comment lives in a FuncDecl doc group
	Comment *ast.Comment
}

// DirectiveIndex holds every directive of one package, plus the line
// positions of real code, for attachment and suppression queries.
type DirectiveIndex struct {
	fset    *token.FileSet
	byFile  map[*ast.File][]Directive
	funcDir map[*ast.FuncDecl][]Directive
	// codeLines records, per file, the lines on which a statement,
	// declaration, spec, or field begins — the lines a line directive
	// may legally attach to.
	codeLines map[*ast.File]map[int]bool
}

// ParseDirective splits a //copart: comment into name and args. ok is
// false for ordinary comments.
func ParseDirective(text string) (name, args string, ok bool) {
	rest, ok := strings.CutPrefix(text, DirectivePrefix)
	if !ok {
		return "", "", false
	}
	name, args, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(args), true
}

// IndexDirectives scans a package for //copart: comments and records
// code-line positions for attachment checks.
func IndexDirectives(pkg *Package) *DirectiveIndex {
	ix := &DirectiveIndex{
		fset:      pkg.Fset,
		byFile:    map[*ast.File][]Directive{},
		funcDir:   map[*ast.FuncDecl][]Directive{},
		codeLines: map[*ast.File]map[int]bool{},
	}
	for _, f := range pkg.Files {
		docComments := map[*ast.Comment]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					docComments[c] = fd
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, args, ok := ParseDirective(c.Text)
				if !ok {
					continue
				}
				d := Directive{
					Name:    name,
					Args:    args,
					Pos:     c.Pos(),
					Line:    pkg.Fset.Position(c.Pos()).Line,
					File:    f,
					Comment: c,
				}
				if fd, ok := docComments[c]; ok {
					d.InDoc = true
					ix.funcDir[fd] = append(ix.funcDir[fd], d)
				}
				ix.byFile[f] = append(ix.byFile[f], d)
			}
		}
		lines := map[int]bool{}
		lines[pkg.Fset.Position(f.Package).Line] = true
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, ast.Decl, ast.Spec, *ast.Field, *ast.KeyValueExpr:
				lines[pkg.Fset.Position(n.Pos()).Line] = true
			}
			return true
		})
		ix.codeLines[f] = lines
	}
	return ix
}

// FuncDirective returns the named directive from fd's doc comment.
func (ix *DirectiveIndex) FuncDirective(fd *ast.FuncDecl, name string) (Directive, bool) {
	for _, d := range ix.funcDir[fd] {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// Suppressed reports whether the named line directive covers pos: the
// directive sits on the same line as pos or on the line immediately
// above it, in the same file.
func (ix *DirectiveIndex) Suppressed(file *ast.File, pos token.Pos, name string) bool {
	line := ix.fset.Position(pos).Line
	for _, d := range ix.byFile[file] {
		if d.Name == name && (d.Line == line || d.Line == line-1) {
			return true
		}
	}
	return false
}

// fileOf returns the *ast.File containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// inScope reports whether the package path is covered by one of the
// scope prefixes (exact match or a path-segment prefix).
func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}
