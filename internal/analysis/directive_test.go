package analysis

import "testing"

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text       string
		name, args string
		ok         bool
	}{
		{"//copart:noalloc", "noalloc", "", true},
		{"//copart:wallclock fleet latency percentiles", "wallclock", "fleet latency percentiles", true},
		{"//copart:allocok  padded  reason ", "allocok", "padded  reason", true},
		{"// copart:noalloc", "", "", false}, // space breaks the directive form
		{"// ordinary comment", "", "", false},
		{"//go:generate foo", "", "", false},
	}
	for _, c := range cases {
		name, args, ok := ParseDirective(c.text)
		if name != c.name || args != c.args || ok != c.ok {
			t.Errorf("ParseDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, name, args, ok, c.name, c.args, c.ok)
		}
	}
}

func TestInScope(t *testing.T) {
	scope := []string{"repro/internal/core", "repro/internal/machine"}
	for path, want := range map[string]bool{
		"repro/internal/core":     true,
		"repro/internal/core/sub": true,
		"repro/internal/corelike": false,
		"repro/internal/machine":  true,
		"repro/internal/fleet":    false,
		"repro/cmd/copartlint":    false,
	} {
		if got := inScope(path, scope); got != want {
			t.Errorf("inScope(%q) = %v, want %v", path, got, want)
		}
	}
}
