package analysis

import (
	"go/ast"
	"go/types"
)

// NewFloatCmp builds the float-equality pass scoped to the given
// package-path prefixes. In scoring and fairness code, == and != on
// floating-point operands are almost always wrong: the score-memo
// cancellation caveat (DESIGN.md §9) showed that values equal in real
// arithmetic differ in their last ULPs depending on evaluation order,
// so exact comparison silently flips branches between equivalent runs.
//
// Comparison against an exact-zero constant is exempt — zero is the
// repo-wide "feature disabled / sentinel" value (MeasurementNoise == 0,
// mu == 0), assigned literally and never computed. Every other exact
// comparison needs an epsilon helper or //copart:floateq <reason>.
//
// Struct equality is covered too: comparing structs with float fields
// via == hides the same hazard one level down.
func NewFloatCmp(scope ...string) *Analyzer {
	a := &Analyzer{
		Name: "floatcmp",
		Doc:  "flag ==/!= on floating-point operands in scoring and fairness packages",
	}
	a.Run = func(pass *Pass) error {
		if !inScope(pass.Pkg.Path, scope) {
			return nil
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				if op := be.Op.String(); op != "==" && op != "!=" {
					return true
				}
				checkFloatCmp(pass, f, be)
				return true
			})
		}
		return nil
	}
	return a
}

// DefaultScoringPackages is where float comparisons decide fairness
// outcomes: scores, slowdowns, unfairness, bandwidth grants.
var DefaultScoringPackages = []string{
	"repro/internal/core",
	"repro/internal/fairness",
	"repro/internal/machine",
	"repro/internal/policies",
	"repro/internal/matching",
	"repro/internal/membw",
}

func checkFloatCmp(pass *Pass, f *ast.File, be *ast.BinaryExpr) {
	lt, lok := pass.Pkg.Info.Types[be.X]
	rt, rok := pass.Pkg.Info.Types[be.Y]
	if !lok || !rok {
		return
	}
	floaty := hasFloat(lt.Type) || hasFloat(rt.Type)
	if !floaty {
		return
	}
	if isZeroConst(lt) || isZeroConst(rt) {
		return
	}
	if pass.Directives.Suppressed(f, be.Pos(), DirFloatEq) {
		return
	}
	what := "floating-point operands"
	if _, ok := lt.Type.Underlying().(*types.Struct); ok {
		what = "a struct with floating-point fields"
	}
	pass.Reportf(be.Pos(), "%s compares %s exactly; use an epsilon helper or annotate with //copart:floateq <reason>", be.Op, what)
}

// hasFloat reports whether t is a float or a struct/array containing
// one (bounded depth; comparable types only ever nest a few levels).
func hasFloat(t types.Type) bool {
	return hasFloatDepth(t, 0)
}

func hasFloatDepth(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasFloatDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return hasFloatDepth(u.Elem(), depth+1)
	}
	return false
}

// isZeroConst reports whether the operand is a compile-time constant
// equal to exact zero.
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}
