package analysis

import "testing"

func TestFloatCmpFixture(t *testing.T) {
	runFixture(t, NewFloatCmp("fixture/floatfix"), "floatfix")
}
