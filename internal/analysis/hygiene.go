package analysis

import "go/ast"

// NewDirectives builds the hygiene pass over the //copart: vocabulary
// itself. Annotations are load-bearing — a suppression that silently
// detaches from its code re-enables nothing and hides a violation — so
// every directive must:
//
//   - use a known name (typos like //copart:noallocs are errors);
//   - sit where its kind belongs: noalloc in a function's doc comment,
//     line directives (wallclock, allocok, floateq, unordered, striped)
//     on the same line as code or the line immediately above a
//     statement or declaration;
//   - carry a justification: line directives suppress a finding, and a
//     suppression without a reason is unreviewable.
//
// This is what keeps the annotation set from rotting as code moves.
func NewDirectives() *Analyzer {
	a := &Analyzer{
		Name: "directives",
		Doc:  "validate //copart: directive names, placement, and justifications",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, d := range pass.Directives.byFile[f] {
				checkDirective(pass, f, d)
			}
		}
		return nil
	}
	return a
}

func checkDirective(pass *Pass, f *ast.File, d Directive) {
	if !knownDirectives[d.Name] {
		pass.Reportf(d.Pos, "unknown directive //copart:%s (vocabulary: noalloc, wallclock, allocok, floateq, unordered, striped)", d.Name)
		return
	}
	switch {
	case d.Name == DirNoalloc:
		if !d.InDoc {
			pass.Reportf(d.Pos, "//copart:noalloc must be part of a function declaration's doc comment")
		}
	case lineDirectives[d.Name]:
		if d.Args == "" {
			pass.Reportf(d.Pos, "//copart:%s needs a justification: //copart:%s <reason>", d.Name, d.Name)
		}
		if d.InDoc {
			pass.Reportf(d.Pos, "//copart:%s is a line directive and cannot cover a whole function; put it on the offending line", d.Name)
			return
		}
		lines := pass.Directives.codeLines[f]
		if !lines[d.Line] && !lines[d.Line+1] {
			pass.Reportf(d.Pos, "dangling //copart:%s: no statement or declaration on this line or the next — the code it covered has moved", d.Name)
		}
	}
}
