package analysis

import "testing"

func TestDirectivesFixture(t *testing.T) {
	runFixture(t, NewDirectives(), "directivefix")
}
