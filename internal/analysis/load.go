package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path  string // import path ("repro/internal/machine")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads module-local packages from source and type-checks them
// offline: module-internal imports are resolved against the module
// directory tree, everything else (the standard library) through the
// compiler's source importer, so no network, vendor tree, or export
// data is needed. Test files are not loaded — the passes check shipped
// code; tests legitimately use wall clocks and allocate freely.
type Loader struct {
	ModulePath string
	ModuleDir  string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader prepares a loader rooted at the module directory, reading
// the module path from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		ModuleDir:  abs,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer: module-local paths are loaded from
// the module tree, everything else is delegated to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.moduleDir(path); ok {
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// moduleDir maps a module-local import path to its directory.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// LoadDir loads, parses, and type-checks the package in dir under the
// given import path, memoized per path. Type errors are hard errors:
// the tree is expected to compile before it is linted.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadModule loads every package under the module root (the equivalent
// of ./...), skipping testdata, hidden, and VCS directories, in
// deterministic path order.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModuleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
