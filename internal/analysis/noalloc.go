package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// NewNoAlloc builds the pass that checks functions annotated
// //copart:noalloc for allocating constructs: make/new, slice, map, and
// address-taken composite literals, appends that cannot reuse their
// destination, formatting helpers (fmt.Sprintf and friends), string
// concatenation and string<->[]byte conversions, closure creation,
// goroutine launches, and concrete values boxed into interface
// parameters at call sites.
//
// Two allocation shapes are recognized as part of the repo's zero-alloc
// idiom and exempted without annotation:
//
//   - amortized grow: make assigned to x inside an if whose condition
//     tests cap(x) — scratch buffers grow to a steady-state size and
//     then never allocate again (the shape every guard test pins).
//   - cold error branch: any construct inside an if/else block whose
//     last statement is a return or panic — error paths allocate their
//     fmt.Errorf freely; the hot path falls through.
//
// Everything else needs //copart:allocok <reason> on its line, which
// turns each intentional allocation into reviewed documentation.
//
// The pass is module-level: beyond the intraprocedural checks above,
// the annotation closes over the call graph. A call inside an
// annotated function to an *unannotated* module function that
// (transitively) allocates is a finding that prints the call chain
// down to the first allocating construct. Annotated callees are
// trusted boundaries (their own bodies are checked directly), cold
// edges do not propagate (error paths may allocate), and allocok'd
// lines in callees are reviewed allocations that do not re-taint their
// callers. The transitive scan looks only for unconditional allocators
// (make/new, literals, formatting helpers, closures, conversions,
// string concat, go) — append discipline and interface boxing stay
// caller-local, where the reuse context is visible. The runtime guard
// tests still own the end-to-end allocation budget; this pass owns the
// hygiene of every annotated chain on every build.
func NewNoAlloc() *Analyzer {
	a := &Analyzer{
		Name: "noalloc",
		Doc:  "flag allocating constructs inside, and allocating calls reachable from, //copart:noalloc functions",
	}
	a.RunModule = func(pass *Pass) error {
		tracer := newAllocTracer(pass.Prog)
		for _, pkg := range pass.Prog.Pkgs {
			dirs := pass.Prog.Directives(pkg)
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if _, ok := dirs.FuncDirective(fd, DirNoalloc); !ok {
						continue
					}
					checkNoAllocFunc(pass, pkg, dirs, f, fd)
					checkNoAllocReach(pass, pkg, dirs, f, fd, tracer)
				}
			}
		}
		return nil
	}
	return a
}

// checkNoAllocFunc walks one annotated function body.
func checkNoAllocFunc(pass *Pass, pkg *Package, dirs *DirectiveIndex, f *ast.File, fd *ast.FuncDecl) {
	aliases := collectAliases(fd)
	emptyLocals := collectEmptyLocalSlices(pkg, fd)
	report := func(pos ast.Node, format string, args ...any) {
		if dirs.Suppressed(f, pos.Pos(), DirAllocOK) {
			return
		}
		pass.Reportf(pos.Pos(), format, args...)
	}
	walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if inColdBranch(stack) {
			// Constructs under this node are re-inspected only to keep the
			// traversal simple; the branch test fires for them too.
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNoAllocCall(pkg, fd, n, stack, aliases, emptyLocals, report)
		case *ast.CompositeLit:
			checkCompositeLit(pkg, n, stack, report)
		case *ast.BinaryExpr:
			checkStringConcat(pkg, n, report)
		case *ast.FuncLit:
			report(n, "closure literal allocates in //copart:noalloc function %s; hoist it or annotate with //copart:allocok <reason>", fd.Name.Name)
			return false // the closure body is the closure's business
		case *ast.GoStmt:
			report(n, "goroutine launch allocates in //copart:noalloc function %s", fd.Name.Name)
		}
		return true
	})
}

// checkNoAllocReach walks the annotated function's call sites and flags
// calls to unannotated module functions that transitively allocate.
// Cold-branch call sites are exempt (error paths), and an allocok on
// the call line accepts the whole callee chain as reviewed.
func checkNoAllocReach(pass *Pass, pkg *Package, dirs *DirectiveIndex, f *ast.File, fd *ast.FuncDecl, tracer *allocTracer) {
	cg := pass.Prog.CallGraph()
	walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure bodies are flagged as a whole by the intraprocedural walk
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || inColdBranch(stack) {
			return true
		}
		fn := funcObj(pkg, call.Fun)
		if fn == nil {
			return true
		}
		callee := cg.Nodes[fn]
		if callee == nil || tracer.annotatedNoalloc(callee) {
			return true
		}
		tr := tracer.trace(callee)
		if tr == nil {
			return true
		}
		if dirs.Suppressed(f, call.Pos(), DirAllocOK) {
			return true
		}
		pass.Reportf(call.Pos(), "call to %s in //copart:noalloc function %s reaches an allocation (%s at %s, via %s); make the chain allocation-free and annotate it //copart:noalloc, or suppress with //copart:allocok <reason>",
			callee.Name(), fd.Name.Name, tr.cause.what, shortPos(pass.Prog.Fset, tr.cause.pos), tr.chainString())
		return true
	})
}

// allocatingFuncs maps package path → function names that allocate on
// every call and have no place on a zero-alloc path.
var allocatingFuncs = map[string]map[string]bool{
	"fmt":     {"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true, "Appendf": true},
	"errors":  {"New": true},
	"strconv": {"Itoa": true, "FormatInt": true, "FormatUint": true, "FormatFloat": true, "Quote": true},
	"strings": {"Join": true, "Repeat": true, "Replace": true, "ReplaceAll": true, "Split": true},
}

func checkNoAllocCall(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node,
	aliases map[string]string, emptyLocals map[types.Object]bool,
	report func(ast.Node, string, ...any)) {
	// Type conversions: string <-> []byte/[]rune copy their operand,
	// except in map-index position where the compiler elides the copy.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		checkStringConversion(pkg, call, stack, report)
		return
	}
	if isBuiltin(pkg, call.Fun, "make") {
		if !isAmortizedGrow(pkg, call, stack) {
			report(call, "make allocates in //copart:noalloc function %s; reuse a scratch buffer or annotate with //copart:allocok <reason>", fd.Name.Name)
		}
		return
	}
	if isBuiltin(pkg, call.Fun, "new") {
		report(call, "new allocates in //copart:noalloc function %s", fd.Name.Name)
		return
	}
	if isBuiltin(pkg, call.Fun, "append") {
		checkAppend(pkg, fd, call, stack, aliases, emptyLocals, report)
		return
	}
	if fn := funcObj(pkg, call.Fun); fn != nil && fn.Pkg() != nil {
		if names, ok := allocatingFuncs[fn.Pkg().Path()]; ok && names[fn.Name()] {
			report(call, "%s.%s allocates in //copart:noalloc function %s", fn.Pkg().Name(), fn.Name(), fd.Name.Name)
			return
		}
	}
	checkInterfaceBoxing(pkg, fd, call, report)
}

// checkAppend enforces the reuse discipline: append must write back
// into the slice it extends (possibly through a resliced or aliased
// form), and that slice must not start empty on every call.
func checkAppend(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node,
	aliases map[string]string, emptyLocals map[types.Object]bool,
	report func(ast.Node, string, ...any)) {
	if len(call.Args) == 0 {
		return
	}
	as, idx := appendAssign(call, stack)
	if as == nil {
		report(call, "append result escapes (not assigned back) in //copart:noalloc function %s", fd.Name.Name)
		return
	}
	destStr := resolveAlias(types.ExprString(as.Lhs[idx]), aliases)
	base := sliceBase(call.Args[0])
	baseStr := resolveAlias(types.ExprString(base), aliases)
	if destStr != baseStr {
		report(call, "append copies %s into %s (grow-into-new-slice) in //copart:noalloc function %s; append in place or annotate with //copart:allocok <reason>", baseStr, destStr, fd.Name.Name)
		return
	}
	if id, ok := as.Lhs[idx].(*ast.Ident); ok {
		obj := pkg.Info.Uses[id]
		if obj == nil {
			obj = pkg.Info.Defs[id]
		}
		if obj != nil && emptyLocals[obj] {
			report(call, "append to %s, which starts empty on every call, allocates in //copart:noalloc function %s; use a reusable scratch buffer", id.Name, fd.Name.Name)
		}
	}
}

// appendAssign finds the assignment consuming an append call and the
// matching LHS index, or nil when the result is used any other way.
func appendAssign(call *ast.CallExpr, stack []ast.Node) (*ast.AssignStmt, int) {
	if len(stack) == 0 {
		return nil, 0
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok {
		return nil, 0
	}
	for i, rhs := range as.Rhs {
		if rhs == ast.Expr(call) && i < len(as.Lhs) {
			return as, i
		}
	}
	return nil, 0
}

// sliceBase strips slice expressions: s[a:b] → s, recursively.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		se, ok := e.(*ast.SliceExpr)
		if !ok {
			return e
		}
		e = se.X
	}
}

// collectAliases records simple `x := expr` bindings so the append
// reuse check can see through local views of a scratch field
// (e.g. pool := sc.producers[t]).
func collectAliases(fd *ast.FuncDecl) map[string]string {
	aliases := map[string]string{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok.String() != ":=" || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if _, isCall := as.Rhs[0].(*ast.CallExpr); isCall {
			return true
		}
		aliases[id.Name] = types.ExprString(sliceBase(as.Rhs[0]))
		return true
	})
	return aliases
}

// resolveAlias chases simple alias chains with a small bound.
func resolveAlias(s string, aliases map[string]string) string {
	for i := 0; i < 4; i++ {
		next, ok := aliases[s]
		if !ok || next == s {
			return s
		}
		s = next
	}
	return s
}

// collectEmptyLocalSlices records slice variables that are empty at
// every function entry: `var s []T` and `s := []T{}` declarations.
func collectEmptyLocalSlices(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	locals := map[types.Object]bool{}
	record := func(id *ast.Ident) {
		if obj := pkg.Info.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				locals[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, id := range vs.Names {
					record(id)
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" {
				return true
			}
			for i, rhs := range n.Rhs {
				cl, ok := rhs.(*ast.CompositeLit)
				if !ok || len(cl.Elts) != 0 || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					record(id)
				}
			}
		}
		return true
	})
	return locals
}

// isAmortizedGrow recognizes `if cap(x) < n { x = make(...) }`: the
// make is assigned to x and some enclosing if-condition reads cap(x).
func isAmortizedGrow(pkg *Package, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 {
		return false
	}
	dest := types.ExprString(as.Lhs[0])
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if ok && isBuiltin(pkg, c.Fun, "cap") && len(c.Args) == 1 &&
				types.ExprString(c.Args[0]) == dest {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// checkCompositeLit flags slice and map literals (heap-backed storage)
// and address-taken literals (which escape).
func checkCompositeLit(pkg *Package, lit *ast.CompositeLit, stack []ast.Node,
	report func(ast.Node, string, ...any)) {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		report(lit, "slice literal allocates its backing array; reuse a scratch buffer or annotate with //copart:allocok <reason>")
		return
	case *types.Map:
		report(lit, "map literal allocates; reuse a scratch map or annotate with //copart:allocok <reason>")
		return
	}
	if len(stack) > 0 {
		if ue, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
			report(ue, "&composite-literal escapes to the heap; reuse an existing value or annotate with //copart:allocok <reason>")
		}
	}
}

// checkStringConcat flags + on strings (each concatenation builds a new
// string) unless the whole expression is a compile-time constant.
func checkStringConcat(pkg *Package, be *ast.BinaryExpr, report func(ast.Node, string, ...any)) {
	if be.Op.String() != "+" {
		return
	}
	tv, ok := pkg.Info.Types[be]
	if !ok || tv.Value != nil {
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		report(be, "string concatenation allocates; use a reusable buffer or annotate with //copart:allocok <reason>")
	}
}

// checkStringConversion flags string([]byte) / []byte(string) style
// conversions, except the map-index form m[string(b)] which the
// compiler performs without copying.
func checkStringConversion(pkg *Package, call *ast.CallExpr, stack []ast.Node,
	report func(ast.Node, string, ...any)) {
	if len(call.Args) != 1 {
		return
	}
	to, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	from, ok := pkg.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	if !stringByteConversion(to.Type, from.Type) {
		return
	}
	if stringConversionElided(pkg, call, stack) {
		return
	}
	report(call, "string/byte-slice conversion copies; keep one representation or annotate with //copart:allocok <reason>")
}

// stringConversionElided reports the m[string(b)] map-index form, which
// the compiler performs without copying.
func stringConversionElided(pkg *Package, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	ix, ok := stack[len(stack)-1].(*ast.IndexExpr)
	if !ok || ix.Index != ast.Expr(call) {
		return false
	}
	xt, ok := pkg.Info.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := xt.Type.Underlying().(*types.Map)
	return isMap
}

func stringByteConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteSlice(from)) || (isByteSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// checkInterfaceBoxing flags concrete, non-pointer-shaped arguments
// passed to interface parameters — each such call boxes the value on
// the heap. Pointer-shaped values (pointers, channels, maps, funcs,
// unsafe pointers) fit in the interface word directly.
func checkInterfaceBoxing(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr,
	report func(ast.Node, string, ...any)) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through
			}
			pt = params.At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.IsNil() || types.IsInterface(at.Type) {
			continue
		}
		switch at.Type.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
			if b, ok := at.Type.Underlying().(*types.Basic); ok && b.Kind() != types.UnsafePointer {
				report(call, "argument %s boxes into interface parameter in //copart:noalloc function %s", types.ExprString(arg), fd.Name.Name)
			}
			continue
		}
		report(call, "argument %s boxes into interface parameter in //copart:noalloc function %s", types.ExprString(arg), fd.Name.Name)
	}
}

// inColdBranch reports whether the innermost enclosing if/else block
// ends in return or panic — the repo's cold-error-path shape.
func inColdBranch(stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		blk, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		if _, ok := stack[i-1].(*ast.IfStmt); !ok {
			continue
		}
		if len(blk.List) == 0 {
			continue
		}
		switch last := blk.List[len(blk.List)-1].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.ExprStmt:
			if c, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}

// walkWithStack is ast.Inspect with the ancestor stack exposed. The
// stack holds the ancestors of n, outermost first, excluding n itself.
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // children skipped: Inspect sends no nil pop
		}
		stack = append(stack, n)
		return true
	})
}

// shortPos renders a position as "file.go:line" with the directory
// stripped, for use inside finding messages (the finding's own
// position already carries the full path).
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
