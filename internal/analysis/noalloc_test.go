package analysis

import "testing"

func TestNoAllocFixture(t *testing.T) {
	runFixture(t, NewNoAlloc(), "noallocfix")
}
