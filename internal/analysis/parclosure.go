package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewParClosure builds the parallel-closure race pass. Closures handed
// to the fan-out primitives of the given packages (internal/parallel:
// ForEach, ForEachBlock, Map, …) run concurrently, so a captured
// variable they write is a data race unless every write lands in a
// slot owned by the closure's own index — a slice element whose index
// is derived from the loop/block parameter, the striped-telemetry
// discipline PR 9's block engine exists to enforce.
//
// The pass inspects every *ast.FuncLit argument of a call into a
// parallel package. The closure's leading integer parameters are the
// index variables (one for ForEach/Map's i, two for ForEachBlock's
// lo/hi); locals assigned from expressions that mention an index
// variable are index-derived too (pi := k / n, or j in
// `for j := lo; j < hi; j++`). A write to a variable declared outside
// the closure — captured or package-level — is a finding unless some
// index on the left-hand side's access path is index-derived. Writes
// into captured maps are always findings: map access is not
// slot-disjoint no matter how the key is built. Range-statement
// variables are deliberately NOT treated as index-derived — ranging
// over a captured slice gives every worker the same element sequence,
// so a write keyed only by a range variable still collides.
//
// Named functions passed by reference (parallel.ForEachBlock(n, b,
// blockRun)) capture nothing and are skipped. Intentional shared
// writes — a mutex-guarded accumulator, an atomic counter — carry
// //copart:striped <reason> on the write line.
func NewParClosure(parallelPkgs ...string) *Analyzer {
	if len(parallelPkgs) == 0 {
		parallelPkgs = []string{"repro/internal/parallel"}
	}
	pkgSet := map[string]bool{}
	for _, p := range parallelPkgs {
		pkgSet[p] = true
	}
	a := &Analyzer{
		Name: "parclosure",
		Doc:  "flag non-index-disjoint writes to captured variables inside closures passed to parallel fan-out primitives",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcObj(pass.Pkg, call.Fun)
				if fn == nil || fn.Pkg() == nil || !pkgSet[fn.Pkg().Path()] {
					return true
				}
				for _, arg := range call.Args {
					if fl, ok := arg.(*ast.FuncLit); ok {
						checkParClosure(pass, f, call, fn, fl)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

func checkParClosure(pass *Pass, f *ast.File, call *ast.CallExpr, fn *types.Func, fl *ast.FuncLit) {
	pkg := pass.Pkg
	tainted := indexParams(pkg, fl)
	if len(tainted) == 0 {
		return // no index parameter: nothing can be index-disjoint, but also not our shape
	}
	propagateIndexTaint(pkg, fl, tainted)
	site := shortPos(pass.Prog.Fset, call.Pos())
	report := func(pos token.Pos, target string, mapWrite bool) {
		if pass.Directives.Suppressed(f, pos, DirStriped) {
			return
		}
		if mapWrite {
			pass.Reportf(pos, "parallel closure passed to %s.%s at %s writes captured map %s (map access is never index-disjoint); give each worker its own slot or annotate with //copart:striped <reason>",
				fn.Pkg().Name(), fn.Name(), site, target)
			return
		}
		pass.Reportf(pos, "parallel closure passed to %s.%s at %s writes captured %s without indexing by its loop/block parameter; stripe by index or annotate with //copart:striped <reason>",
			fn.Pkg().Name(), fn.Name(), site, target)
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // new locals, not captured writes
			}
			for _, lhs := range n.Lhs {
				checkCapturedWrite(pkg, fl, lhs, n.Pos(), tainted, report)
			}
		case *ast.IncDecStmt:
			checkCapturedWrite(pkg, fl, n.X, n.Pos(), tainted, report)
		}
		return true
	})
}

// indexParams returns the objects of the closure's leading integer
// parameters — ForEach/Map's i, ForEachBlock's lo and hi.
func indexParams(pkg *Package, fl *ast.FuncLit) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	if fl.Type.Params == nil {
		return tainted
	}
	for _, field := range fl.Type.Params.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok {
			return tainted
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			return tainted // stop at the first non-integer parameter
		}
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				tainted[obj] = true
			}
		}
	}
	return tainted
}

// propagateIndexTaint closes the tainted set over simple assignments:
// a closure-local variable assigned from an expression that mentions a
// tainted variable becomes tainted (pi := k / stride). Fixpoint over
// the body, bounded by the taint set growing monotonically.
func propagateIndexTaint(pkg *Package, fl *ast.FuncLit, tainted map[types.Object]bool) {
	for {
		grew := false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj == nil || tainted[obj] || !declaredWithin(obj, fl) {
					continue
				}
				if mentionsTainted(pkg, as.Rhs[i], tainted) {
					tainted[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

func mentionsTainted(pkg *Package, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil && tainted[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// declaredWithin reports whether the object's declaration lies inside
// the closure (parameters included).
func declaredWithin(obj types.Object, fl *ast.FuncLit) bool {
	return fl.Pos() <= obj.Pos() && obj.Pos() <= fl.End()
}

// checkCapturedWrite classifies one write target. It unwraps the
// access path (selectors, derefs, parens, index expressions), records
// whether any index along the path is tainted and whether the
// innermost indexed container is a map, and resolves the root
// identifier. Writes rooted at closure locals are fine; writes rooted
// outside the closure must be map-free and tainted-indexed.
func checkCapturedWrite(pkg *Package, fl *ast.FuncLit, lhs ast.Expr, pos token.Pos,
	tainted map[types.Object]bool, report func(pos token.Pos, target string, mapWrite bool)) {
	expr := lhs
	hasTaintedIndex := false
	mapWrite := false
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			if xt, ok := pkg.Info.Types[e.X]; ok {
				if _, isMap := xt.Type.Underlying().(*types.Map); isMap {
					mapWrite = true
				}
			}
			if mentionsTainted(pkg, e.Index, tainted) {
				hasTaintedIndex = true
			}
			expr = e.X
		case *ast.Ident:
			obj := pkg.Info.Uses[e]
			if obj == nil {
				obj = pkg.Info.Defs[e]
			}
			if obj == nil || declaredWithin(obj, fl) {
				return // closure-local: worker-private state
			}
			if _, ok := obj.(*types.Var); !ok {
				return
			}
			if mapWrite {
				report(pos, e.Name, true)
				return
			}
			if hasTaintedIndex {
				return // index-disjoint slot write
			}
			report(pos, e.Name, false)
			return
		default:
			return
		}
	}
}
