package analysis

import "testing"

func TestParClosureFixture(t *testing.T) {
	runFixture(t, NewParClosure("fixture/parlib"), "parclosurefix")
}
