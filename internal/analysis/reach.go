package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocCause is the first allocating construct found on a call chain.
type allocCause struct {
	what string // e.g. "make", "fmt.Sprintf", "slice literal"
	pos  token.Pos
}

// allocTrace is the verdict for one traced function: the cause and the
// chain of module functions from the traced function down to the one
// holding the cause.
type allocTrace struct {
	cause *allocCause
	chain []*CGNode
}

// chainString renders "pkg.A -> pkg.B -> other.C".
func (t *allocTrace) chainString() string {
	names := make([]string, len(t.chain))
	for i, n := range t.chain {
		names[i] = n.Name()
	}
	return strings.Join(names, " -> ")
}

// allocTracer answers "does this unannotated module function
// transitively allocate?" with memoization over the call graph. It is
// the engine behind the noalloc pass's interprocedural closure; see
// NewNoAlloc for the semantics (trusted annotated boundaries, cold
// edges cut, allocok'd lines reviewed-and-exempt, unconditional
// allocators only).
type allocTracer struct {
	prog   *Program
	cg     *CallGraph
	memo   map[*CGNode]*allocTrace // nil value = allocation-free
	active map[*CGNode]bool        // cycle guard: optimistic on back-edges
}

func newAllocTracer(prog *Program) *allocTracer {
	return &allocTracer{
		prog:   prog,
		cg:     prog.CallGraph(),
		memo:   map[*CGNode]*allocTrace{},
		active: map[*CGNode]bool{},
	}
}

// annotatedNoalloc reports whether the node's declaration carries
// //copart:noalloc.
func (t *allocTracer) annotatedNoalloc(n *CGNode) bool {
	_, ok := t.prog.Directives(n.Pkg).FuncDirective(n.Decl, DirNoalloc)
	return ok
}

// trace returns nil when the function is allocation-free, else the
// chain to the first allocating construct. Deterministic: own body
// first, then outgoing edges in source order.
func (t *allocTracer) trace(n *CGNode) *allocTrace {
	if r, ok := t.memo[n]; ok {
		return r
	}
	if t.active[n] {
		// Recursion cycle: assume the back-edge is clean. If the cycle
		// allocates, the construct itself is found when its own frame's
		// body scan runs.
		return nil
	}
	t.active[n] = true
	defer delete(t.active, n)
	var res *allocTrace
	if cause := t.firstAlloc(n); cause != nil {
		res = &allocTrace{cause: cause, chain: []*CGNode{n}}
	} else {
		for _, e := range n.Out {
			if e.Cold || t.annotatedNoalloc(e.To) {
				continue
			}
			if sub := t.trace(e.To); sub != nil {
				chain := make([]*CGNode, 0, len(sub.chain)+1)
				chain = append(append(chain, n), sub.chain...)
				res = &allocTrace{cause: sub.cause, chain: chain}
				break
			}
		}
	}
	t.memo[n] = res
	return res
}

// firstAlloc scans one unannotated function body for its first
// unconditional allocating construct, honoring the same exemptions as
// the intraprocedural pass: amortized grow, cold branches, and
// //copart:allocok'd lines. Append discipline and interface boxing are
// deliberately out of scope here — they depend on caller context and
// stay with the per-function check.
func (t *allocTracer) firstAlloc(n *CGNode) *allocCause {
	pkg, f := n.Pkg, n.File
	dirs := t.prog.Directives(pkg)
	var cause *allocCause
	set := func(pos token.Pos, what string) {
		if cause == nil && !dirs.Suppressed(f, pos, DirAllocOK) {
			cause = &allocCause{what: what, pos: pos}
		}
	}
	walkWithStack(n.Decl.Body, func(node ast.Node, stack []ast.Node) bool {
		if cause != nil {
			return false
		}
		if inColdBranch(stack) {
			return true // per-construct test; children re-check
		}
		switch x := node.(type) {
		case *ast.CallExpr:
			if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() {
				if len(x.Args) == 1 {
					to, okTo := pkg.Info.Types[x.Fun]
					from, okFrom := pkg.Info.Types[x.Args[0]]
					if okTo && okFrom && stringByteConversion(to.Type, from.Type) &&
						!stringConversionElided(pkg, x, stack) {
						set(x.Pos(), "string/byte-slice conversion")
					}
				}
				return true
			}
			if isBuiltin(pkg, x.Fun, "make") {
				if !isAmortizedGrow(pkg, x, stack) {
					set(x.Pos(), "make")
				}
				return true
			}
			if isBuiltin(pkg, x.Fun, "new") {
				set(x.Pos(), "new")
				return true
			}
			if fn := funcObj(pkg, x.Fun); fn != nil && fn.Pkg() != nil {
				if names, ok := allocatingFuncs[fn.Pkg().Path()]; ok && names[fn.Name()] {
					set(x.Pos(), fn.Pkg().Name()+"."+fn.Name())
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					set(x.Pos(), "slice literal")
				case *types.Map:
					set(x.Pos(), "map literal")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					set(x.Pos(), "&composite-literal")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := pkg.Info.Types[x]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						set(x.Pos(), "string concatenation")
					}
				}
			}
		case *ast.GoStmt:
			set(x.Pos(), "goroutine launch")
		case *ast.FuncLit:
			set(x.Pos(), "closure literal")
			return false
		}
		return true
	})
	return cause
}
