// Package determ is the determinism-analyzer fixture: each violation
// line carries a want comment; suppressed and idiomatic sites carry
// none.
package determ

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// wallClockViolation reads the wall clock without a directive.
func wallClockViolation() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

// wallClockSince measures a duration without a directive.
func wallClockSince(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since"
}

// wallClockSuppressed is a legitimate latency-measurement site.
func wallClockSuppressed() time.Time {
	//copart:wallclock fixture latency measurement
	return time.Now()
}

// wallClockInline is suppressed by an inline directive.
func wallClockInline() time.Time {
	return time.Now() //copart:wallclock fixture latency measurement
}

// globalRand draws from the global unseeded source.
func globalRand() int {
	return rand.Intn(10) // want "top-level rand.Intn draws from the global unseeded source"
}

// globalRandFloat draws a float from the global source.
func globalRandFloat() float64 {
	return rand.Float64() // want "top-level rand.Float64"
}

// seededRand follows the repo convention and is fine.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// mapOrderLeak appends map keys without sorting them.
func mapOrderLeak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside map iteration leaks randomized order"
	}
	return keys
}

// mapOrderSorted collects then sorts: the deterministic idiom.
func mapOrderSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapOrderPrint emits during iteration; no later sort can fix that.
func mapOrderPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside map iteration emits in randomized order"
	}
}

// mapOrderUnordered is annotated: the loop only counts.
func mapOrderUnordered(m map[string]int) []string {
	var keys []string
	//copart:unordered fixture: order scrambled downstream anyway
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// mapOrderLocal appends to a loop-local slice; nothing escapes per
// iteration, so order cannot leak through it.
func mapOrderLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var acc []int
		acc = append(acc, vs...)
		total += len(acc)
	}
	return total
}

// mapDelete mutates the map during iteration (the eviction idiom);
// order affects which entries go, never a value.
func mapDelete(m map[string]int, n int) {
	for k := range m {
		delete(m, k)
		if n--; n <= 0 {
			break
		}
	}
}
