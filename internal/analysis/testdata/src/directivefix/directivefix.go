// Package directivefix is the directive-hygiene fixture: malformed
// //copart: annotations carry wants; well-formed ones carry none.
//
// The diagnostics here land on the directive comment's own line, so the
// fixture uses the harness's offset form (want-1 on the following line)
// wherever the directive comment cannot also hold the want text.
package directivefix

// docClock smuggles a line directive into a doc comment.
//
//copart:wallclock wrong home for a line directive // want "//copart:wallclock is a line directive and cannot cover a whole function"
func docClock() int { return 0 }

// typoFunc misspells the noalloc directive.
func typoFunc() int {
	x := 1 //copart:noallocs mistyped // want "unknown directive //copart:noallocs"
	return x
}

// inlineNoalloc puts noalloc on a statement instead of a doc comment.
func inlineNoalloc() int {
	y := 2 //copart:noalloc // want "must be part of a function declaration's doc comment"
	return y
}

// missingReason suppresses without saying why.
func missingReason(sink *int) {
	*sink = 3 //copart:allocok
	// want-1 "needs a justification"
}

// dangling keeps a directive whose code was deleted.
func dangling() {
	//copart:wallclock the read this covered is gone
	// want-1 "dangling //copart:wallclock"
}

// realNoalloc is properly annotated; the pass accepts it.
//
//copart:noalloc
func realNoalloc(a, b int) int {
	return a + b
}

// inlineOK attaches a justified line directive to the line above code.
func inlineOK(m map[string]int) int {
	total := 0
	//copart:unordered summation is order-independent
	for _, v := range m {
		total += v
	}
	return total
}

// sameLineOK attaches a justified directive to its own code line.
func sameLineOK(a float64) bool {
	return a == a //copart:floateq self-comparison screens NaN
}

// stripedOK attaches a justified striped directive to a write.
func stripedOK(sink *int) {
	*sink = 5 //copart:striped fixture: single-writer by construction
}

// docStriped smuggles a bare striped directive into a doc comment: two
// findings on one line — no reason, and wrong position.
//
// want+2 "//copart:striped needs a justification" "//copart:striped is a line directive and cannot cover a whole function"
//
//copart:striped
func docStriped() int { return 0 }

// danglingStriped keeps a striped directive whose write was deleted.
func danglingStriped() {
	//copart:striped the write this covered is gone
	// want-1 "dangling //copart:striped"
}
