//go:build directivefixtag

// tagged.go: directive hygiene applies behind build constraints too —
// the loader parses every file in the package.
package directivefix

func taggedTypo() int {
	z := 4 //copart:nolock mistyped // want "unknown directive //copart:nolock"
	return z
}
