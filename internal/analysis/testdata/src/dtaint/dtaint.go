// Package dtaint is the scoped half of the determinism-taint fixture:
// its exported functions are the roots the pass walks from, and its
// own in-scope sources are reported directly — with the call path
// appended when a root reaches them.
package dtaint

import (
	"time"

	"fixture/dtaintlib"
)

// Run is the exported root: everything it (transitively) calls is
// deterministic territory.
func Run() int64 {
	t := dtaintlib.Stamp()
	v := dtaintlib.Deep() + int64(dtaintlib.Draw())
	_ = dtaintlib.Suppressed()
	return t.UnixNano() + v + helper().UnixNano()
}

// helper is in scope and reached from Run: the plain in-scope finding
// gains the path suffix.
func helper() time.Time {
	return time.Now() // want "wall-clock read time.Now in deterministic package; inject a clock or annotate with //copart:wallclock <reason> .reached from exported deterministic API: dtaint.Run -> dtaint.helper."
}

// orphan is in scope but nothing exported reaches it: still a finding
// (deterministic packages are deterministic throughout), just without
// a path.
func orphan() time.Time {
	return time.Now() // want "wall-clock read time.Now in deterministic package; inject a clock or annotate with //copart:wallclock <reason>$"
}

// suppressedInScope documents its intentional read.
func suppressedInScope() time.Time {
	return time.Now() //copart:wallclock fixture: latency telemetry, excluded from results
}
