// Package dtaintlib sits OUTSIDE the determinism fixture's scope: its
// sources become findings only when the call graph shows an exported
// function of the scoped package (fixture/dtaint) reaching them.
package dtaintlib

import (
	"math/rand"
	"time"
)

// Stamp is called by the deterministic root dtaint.Run: the finding
// lands here, carrying the root→source path.
func Stamp() time.Time {
	return time.Now() // want "wall-clock read time.Now outside the deterministic scope is reachable from exported deterministic API .call path: dtaint.Run -> dtaintlib.Stamp."
}

// Deep reaches its source through one more hop.
func Deep() int64 {
	return inner()
}

func inner() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now outside the deterministic scope is reachable from exported deterministic API .call path: dtaint.Run -> dtaintlib.Deep -> dtaintlib.inner."
}

// Draw uses the global rand source; reachable, so a finding.
func Draw() int {
	return rand.Int() // want "top-level rand.Int draw from the global unseeded source outside the deterministic scope is reachable from exported deterministic API .call path: dtaint.Run -> dtaintlib.Draw."
}

// Unreached holds the same source but no deterministic root reaches
// it: no finding.
func Unreached() time.Time {
	return time.Now()
}

// Suppressed is reachable, but the source line is annotated: the
// suppression belongs at the source, exactly where the fix would go.
func Suppressed() time.Time {
	return time.Now() //copart:wallclock fixture: out-of-band latency probe, never feeds results
}
