// Package floatfix is the float-equality fixture: exact comparisons
// carry wants; zero-sentinel, suppressed, and integer comparisons do
// not.
package floatfix

type score struct {
	value float64
	apps  int
}

func eqViolation(a, b float64) bool {
	return a == b // want "== compares floating-point operands exactly"
}

func neqViolation(a, b float64) bool {
	return a != b // want "!= compares floating-point operands exactly"
}

func structViolation(a, b score) bool {
	return a == b // want "== compares a struct with floating-point fields exactly"
}

func arrayViolation(a, b [2]float64) bool {
	return a == b // want "== compares floating-point operands exactly"
}

func constViolation(a float64) bool {
	return a == 1.5 // want "== compares floating-point operands exactly"
}

func zeroExempt(a float64) bool {
	return a == 0
}

func zeroLeftExempt(a float64) bool {
	return 0.0 != a
}

func suppressed(a, b float64) bool {
	return a == b //copart:floateq fixture: inputs are bit-identical by construction
}

func intsFine(a, b int) bool {
	return a == b
}

// multiViolation packs two exact comparisons onto one line; each is
// its own finding.
func multiViolation(a, b, c, d float64) bool {
	return a == b && c != d // want "== compares floating-point operands exactly" "!= compares floating-point operands exactly"
}

// mixedLine pairs a violation with a zero-sentinel exemption on the
// same line; only the former is a finding.
func mixedLine(a, b float64) bool {
	return a == b && b != 0 // want "== compares floating-point operands exactly"
}
