//go:build floatfixtag

// tagged.go carries a build constraint the toolchain would normally
// exclude; the analysis loader parses every file in the package, so
// violations behind build tags still surface.
package floatfix

func taggedViolation(a, b float64) bool {
	return a == b // want "== compares floating-point operands exactly"
}

func taggedSuppressed(a, b float64) bool {
	return a == b //copart:floateq fixture: tagged file, inputs bit-identical
}
