// interproc.go exercises the call-graph closure of //copart:noalloc:
// an annotated function may not call an unannotated module function
// that transitively allocates. Annotated callees are trusted
// boundaries, cold edges do not propagate, and an allocok on the call
// line accepts the chain as reviewed.
package noallocfix

// leafAlloc allocates; the chains below reach it.
func leafAlloc() []int {
	return make([]int, 8)
}

// midCall adds a hop between the annotated caller and the allocation.
func midCall() []int {
	return leafAlloc()
}

// hotReach calls into the allocating chain: the finding names the call
// path and the construct at its end.
//
//copart:noalloc
func hotReach() []int {
	return midCall() // want "call to noallocfix.midCall in //copart:noalloc function hotReach reaches an allocation .make at interproc.go:10, via noallocfix.midCall -> noallocfix.leafAlloc."
}

// hotReachSuppressed documents the same call as reviewed.
//
//copart:noalloc
func hotReachSuppressed() []int {
	return midCall() //copart:allocok fixture: one-time construction, amortized by the caller's pool
}

// trustedLeaf is annotated and clean: a trusted boundary.
//
//copart:noalloc
func trustedLeaf(x []int) int {
	total := 0
	for _, v := range x {
		total += v
	}
	return total
}

// hotCallsTrusted only crosses annotated boundaries: no finding.
//
//copart:noalloc
func hotCallsTrusted(x []int) int {
	return trustedLeaf(x)
}

// midColdOnly allocates only on its cold error branch; the cold edge
// does not propagate to callers.
func midColdOnly(x []int) []int {
	if x == nil {
		return leafAlloc()
	}
	return x
}

// hotCallsMidCold stays clean: the only allocation behind the call is
// cold.
//
//copart:noalloc
func hotCallsMidCold(x []int) []int {
	return midColdOnly(x)
}

// hotColdCallSite may call the allocating chain from its own cold
// branch: error paths allocate freely.
//
//copart:noalloc
func hotColdCallSite(x []int) []int {
	if len(x) == 0 {
		return midCall()
	}
	return x
}
