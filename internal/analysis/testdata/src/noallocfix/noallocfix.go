// Package noallocfix is the noalloc-analyzer fixture: annotated
// functions exercise every flagged construct plus the exempt idioms.
package noallocfix

import "fmt"

type scratch struct {
	buf  []int
	data []float64
}

// makeViolation allocates a fresh buffer on every call.
//
//copart:noalloc
func makeViolation(n int) []int {
	s := make([]int, n) // want "make allocates in //copart:noalloc function makeViolation"
	return s
}

// makeSuppressed documents its one intentional allocation.
//
//copart:noalloc
func makeSuppressed(n int) []int {
	s := make([]int, n) //copart:allocok fixture: the returned slice is the API contract
	return s
}

// amortizedGrow is the repo's scratch-reuse idiom: exempt untouched.
//
//copart:noalloc
func amortizedGrow(sc *scratch, n int) []int {
	if cap(sc.buf) < n {
		sc.buf = make([]int, n)
	}
	sc.buf = sc.buf[:n]
	return sc.buf
}

// coldErrorPath allocates only on the branch that returns early.
//
//copart:noalloc
func coldErrorPath(n int) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("noallocfix: negative %d", n)
	}
	return nil, nil
}

// sprintfViolation formats on the hot path.
//
//copart:noalloc
func sprintfViolation(n int) int {
	s := fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates in //copart:noalloc function sprintfViolation"
	return len(s)
}

// appendSelf extends a scratch slice in place: the reuse pattern.
//
//copart:noalloc
func appendSelf(sc *scratch, v int) {
	sc.buf = append(sc.buf, v)
}

// appendReset is the truncate-and-refill pattern, seen through an
// alias.
//
//copart:noalloc
func appendReset(sc *scratch, vs []int) {
	buf := sc.buf[:0]
	for _, v := range vs {
		buf = append(buf, v)
	}
	sc.buf = buf
}

// appendCopy grows into a different slice.
//
//copart:noalloc
func appendCopy(sc *scratch, v int) []int {
	out := append(sc.buf, v) // want "append copies sc.buf into out"
	return out
}

// appendFreshLocal accumulates into a slice that starts empty on every
// call.
//
//copart:noalloc
func appendFreshLocal(vs []int) int {
	var acc []int
	for _, v := range vs {
		acc = append(acc, v) // want "append to acc, which starts empty on every call"
	}
	return len(acc)
}

// appendEscapes never assigns the result back.
//
//copart:noalloc
func appendEscapes(sc *scratch, v int) []int {
	return append(sc.buf, v) // want "append result escapes"
}

// literalViolations cover slice, map, and address-taken literals.
//
//copart:noalloc
func literalViolations() int {
	s := []int{1, 2, 3}   // want "slice literal allocates its backing array"
	m := map[string]int{} // want "map literal allocates"
	p := &scratch{}       // want "&composite-literal escapes to the heap"
	return len(s) + len(m) + len(p.buf)
}

// valueLiteral builds a plain struct value: stack-allocated, exempt.
//
//copart:noalloc
func valueLiteral() int {
	s := scratch{}
	return len(s.buf)
}

// concatViolation builds a new string.
//
//copart:noalloc
func concatViolation(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// constConcat folds at compile time: exempt.
//
//copart:noalloc
func constConcat() string {
	return "a" + "b"
}

// closureViolation allocates a closure.
//
//copart:noalloc
func closureViolation(n int) int {
	f := func() int { return n } // want "closure literal allocates"
	return f()
}

// boxingViolation passes a concrete int to an interface parameter.
//
//copart:noalloc
func boxingViolation(n int) {
	sink(n) // want "argument n boxes into interface parameter"
}

func sink(v any) { _ = v }

// pointerNoBox passes a pointer: pointer-shaped, fits the interface
// word, exempt.
//
//copart:noalloc
func pointerNoBox(sc *scratch) {
	sink(sc)
}

// conversionViolation copies bytes into a string.
//
//copart:noalloc
func conversionViolation(b []byte) string {
	return string(b) // want "string/byte-slice conversion copies"
}

// mapIndexConversion is the compiler-elided lookup form: exempt.
//
//copart:noalloc
func mapIndexConversion(m map[string]int, b []byte) int {
	return m[string(b)]
}

// unannotated allocates freely: the analyzer only reads annotated
// functions.
func unannotated(n int) []int {
	return make([]int, n)
}
