// Package parclosurefix is the parclosure fixture: closures passed to
// the parlib fan-out primitives write captured state with and without
// index-disjoint access. The first case reproduces the pre-sharding
// fleet telemetry bug — every worker appending latencies to one shared
// slice — that the striped-stripe engine was built to eliminate.
package parclosurefix

import "fixture/parlib"

var latencies []int64

// unstripedTelemetry is the historical bug shape: a captured
// package-level slice appended to from every worker.
func unstripedTelemetry(n int) error {
	return parlib.ForEach(n, func(i int) error {
		d := int64(i * 3)
		latencies = append(latencies, d) // want "parallel closure passed to parlib.ForEach at parclosurefix.go:15 writes captured latencies without indexing by its loop/block parameter"
		return nil
	})
}

// stripedSlots writes each worker's result into its own slot: the
// index-disjoint discipline, no finding.
func stripedSlots(n int, out []int64) error {
	return parlib.ForEach(n, func(i int) error {
		out[i] = int64(i)
		return nil
	})
}

// blockLoop derives its per-iteration index from the block bounds —
// the loop variable is tainted through its init expression.
func blockLoop(n, block int, out []int64) error {
	return parlib.ForEachBlock(n, block, func(lo, hi int) error {
		for j := lo; j < hi; j++ {
			out[j] = int64(j)
		}
		return nil
	})
}

// derivedIndex splits the flat index into grid coordinates; both are
// index-derived, so the nested-slice write is disjoint.
func derivedIndex(n, stride int, grid [][]float64) error {
	return parlib.ForEach(n, func(k int) error {
		pi := k / stride
		mi := k % stride
		grid[pi][mi] = float64(k)
		return nil
	})
}

// blockWriteByLo stripes per-block state by the block's own identity.
func blockWriteByLo(n, block int, perBlock []int) error {
	return parlib.ForEachBlock(n, block, func(lo, hi int) error {
		perBlock[lo/block] = hi - lo
		return nil
	})
}

// mapWrite writes a captured map: never index-disjoint, whatever the
// key is built from.
func mapWrite(n int, m map[int]int) error {
	return parlib.ForEach(n, func(i int) error {
		m[i] = i * i // want "parallel closure passed to parlib.ForEach at parclosurefix.go:64 writes captured map m .map access is never index-disjoint."
		return nil
	})
}

// sharedCounter increments captured state from every worker.
func sharedCounter(n int) error {
	total := 0
	err := parlib.ForEach(n, func(i int) error {
		total += i // want "parallel closure passed to parlib.ForEach at parclosurefix.go:73 writes captured total without indexing by its loop/block parameter"
		return nil
	})
	_ = total
	return err
}

// stripedSuppressed documents an intentionally shared write (a
// mutex-guarded accumulator in real code).
func stripedSuppressed(n int) error {
	total := 0
	err := parlib.ForEach(n, func(i int) error {
		total += i //copart:striped fixture: mutex-guarded accumulator in the real caller
		return nil
	})
	_ = total
	return err
}

// rangeNotDisjoint ranges over a captured slice: every worker sees the
// same element sequence, so a write keyed by the range variable still
// collides — range variables are deliberately not index-derived.
func rangeNotDisjoint(n int, shared []int) error {
	return parlib.ForEach(n, func(i int) error {
		for idx := range shared {
			shared[idx]++ // want "parallel closure passed to parlib.ForEach at parclosurefix.go:97 writes captured shared without indexing by its loop/block parameter"
		}
		return nil
	})
}

// localState mutates worker-private state freely.
func localState(n int) error {
	return parlib.ForEach(n, func(i int) error {
		acc := 0
		for j := 0; j < i; j++ {
			acc += j
		}
		_ = acc
		return nil
	})
}
