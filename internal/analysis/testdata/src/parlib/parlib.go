// Package parlib is the parclosure fixture's stand-in for the repo's
// internal/parallel package: the same fan-out signatures, executed
// sequentially — the analyzer matches on package path and shape, not
// on behavior.
package parlib

// ForEach runs fn(0..n-1).
func ForEach(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// ForEachBlock runs fn over [lo, hi) blocks of the given size.
func ForEachBlock(n, block int, fn func(lo, hi int) error) error {
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		if err := fn(lo, hi); err != nil {
			return err
		}
	}
	return nil
}
