// Package cachesim implements a way-partitionable set-associative
// last-level-cache simulator.
//
// Intel Cache Allocation Technology (CAT) partitions the LLC by ways: each
// class of service (CLOS) is assigned a capacity bitmask (CBM) and lines
// brought in on behalf of that CLOS may only be *allocated* into ways whose
// bit is set. Lookups still probe every way — a CLOS can hit on a line that
// lives in a way outside its mask (e.g. a line allocated before the mask
// shrank). The simulator reproduces exactly that semantics.
//
// The evaluated CPU in the paper has a shared 22 MB, 11-way L3 with 64-byte
// lines (Table 1); the simulator accepts any geometry whose parameters are
// powers of two except the way count, which is arbitrary (11 on the paper's
// machine).
//
// Two replacement policies are provided: true LRU and tree pseudo-LRU
// (the latter restricted to power-of-two way counts, as in real designs).
package cachesim

import (
	"fmt"
	"math/bits"
)

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity; also the number of CAT ways
	LineBytes int // cache-line size
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cachesim: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cachesim: line size %d not a power of two", c.LineBytes)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cachesim: size %d not divisible by ways×line (%d×%d)",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.Sets()
	if sets == 0 {
		return fmt.Errorf("cachesim: zero sets for %+v", c)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	return nil
}

// Policy selects victims within a set. Implementations are created per
// cache via a Factory so they can size their metadata to the geometry.
type Policy interface {
	// OnAccess records a touch of (set, way), hit or fill.
	OnAccess(set, way int)
	// Victim picks the way to evict in set among the ways whose bit is set
	// in mask. mask is guaranteed non-zero and within the way count.
	Victim(set int, mask uint64) int
}

// PolicyFactory constructs a Policy for a given geometry.
type PolicyFactory func(sets, ways int) (Policy, error)

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	clos  int // CLOS that allocated the line (for occupancy stats)
}

// Stats accumulates access counts.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// MissRatio returns Misses/Accesses, or 0 when there were no accesses.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a way-partitionable set-associative cache.
type Cache struct {
	cfg      Config
	lines    []line // sets × ways, row-major
	policy   Policy
	setShift uint
	setMask  uint64
	allMask  uint64

	stats     map[int]*Stats // per CLOS
	occupancy []int          // lines currently owned per CLOS index (grow on demand)
}

// New builds a cache with the given geometry and replacement policy
// factory. Passing a nil factory selects true LRU.
func New(cfg Config, factory PolicyFactory) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		factory = NewLRU
	}
	pol, err := factory(cfg.Sets(), cfg.Ways)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:      cfg,
		lines:    make([]line, cfg.Sets()*cfg.Ways),
		policy:   pol,
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(cfg.Sets() - 1),
		allMask:  (uint64(1) << cfg.Ways) - 1,
		stats:    make(map[int]*Stats),
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// FullMask returns the CBM with every way set.
func (c *Cache) FullMask() uint64 { return c.allMask }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	set = int((addr >> c.setShift) & c.setMask)
	tag = addr >> c.setShift >> uint(bits.TrailingZeros(uint(c.cfg.Sets())))
	return set, tag
}

func (c *Cache) statsFor(clos int) *Stats {
	s := c.stats[clos]
	if s == nil {
		s = &Stats{}
		c.stats[clos] = s
	}
	return s
}

func (c *Cache) adjustOccupancy(clos, delta int) {
	for clos >= len(c.occupancy) {
		c.occupancy = append(c.occupancy, 0)
	}
	c.occupancy[clos] += delta
}

// Access performs one access by clos with allocation mask cbm. It returns
// true on a hit. A zero or out-of-range cbm is an error: the hardware
// rejects such schemata and so do we.
func (c *Cache) Access(clos int, addr, cbm uint64) (bool, error) {
	if cbm == 0 || cbm&^c.allMask != 0 {
		return false, fmt.Errorf("cachesim: invalid CBM %#x for %d ways", cbm, c.cfg.Ways)
	}
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	st := c.statsFor(clos)
	st.Accesses++

	// Probe every way: CAT masks restrict fills, not lookups.
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			st.Hits++
			c.policy.OnAccess(set, w)
			return true, nil
		}
	}
	st.Misses++

	// Fill: prefer an invalid way within the mask, else evict per policy.
	victim := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if cbm&(1<<uint(w)) == 0 {
			continue
		}
		if !c.lines[base+w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = c.policy.Victim(set, cbm)
		if victim < 0 || victim >= c.cfg.Ways || cbm&(1<<uint(victim)) == 0 {
			return false, fmt.Errorf("cachesim: policy returned invalid victim %d for mask %#x", victim, cbm)
		}
	}
	ln := &c.lines[base+victim]
	if ln.valid {
		c.adjustOccupancy(ln.clos, -1)
	}
	ln.tag = tag
	ln.valid = true
	ln.clos = clos
	c.adjustOccupancy(clos, 1)
	c.policy.OnAccess(set, victim)
	return false, nil
}

// Contains reports whether addr is resident, without touching replacement
// state or statistics. It is intended for inspection and tests.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if ln := &c.lines[base+w]; ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Stats returns a copy of the statistics for clos.
func (c *Cache) Stats(clos int) Stats {
	if s := c.stats[clos]; s != nil {
		return *s
	}
	return Stats{}
}

// ResetStats zeroes all counters without disturbing cache contents.
func (c *Cache) ResetStats() {
	for _, s := range c.stats {
		*s = Stats{}
	}
}

// Occupancy reports how many lines clos currently owns.
func (c *Cache) Occupancy(clos int) int {
	if clos < len(c.occupancy) {
		return c.occupancy[clos]
	}
	return 0
}

// Flush invalidates the whole cache and resets statistics and occupancy.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for i := range c.occupancy {
		c.occupancy[i] = 0
	}
	c.ResetStats()
}

// ContiguousMask returns a CBM of n contiguous ways starting at bit lo.
// Intel CAT requires contiguous CBMs; the helper keeps callers honest.
func ContiguousMask(lo, n int) (uint64, error) {
	if n <= 0 || lo < 0 || lo+n > 64 {
		return 0, fmt.Errorf("cachesim: invalid mask range lo=%d n=%d", lo, n)
	}
	return ((uint64(1) << n) - 1) << uint(lo), nil
}
