package cachesim

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// small test geometry: 4 KB, 4 ways, 64 B lines → 16 sets.
var testCfg = Config{SizeBytes: 4096, Ways: 4, LineBytes: 64}

func mustCache(t *testing.T, cfg Config, f PolicyFactory) *Cache {
	t.Helper()
	c, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func access(t *testing.T, c *Cache, clos int, addr, cbm uint64) bool {
	t.Helper()
	hit, err := c.Access(clos, addr, cbm)
	if err != nil {
		t.Fatal(err)
	}
	return hit
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"ok", testCfg, false},
		{"paper geometry", Config{SizeBytes: 22 << 20, Ways: 11, LineBytes: 64}, false},
		{"zero size", Config{0, 4, 64}, true},
		{"line not pow2", Config{4096, 4, 48}, true},
		{"size not divisible", Config{4000, 4, 64}, true},
		{"sets not pow2", Config{4096 * 3, 4, 64}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate(%+v) err=%v wantErr=%v", tt.cfg, err, tt.wantErr)
			}
		})
	}
}

func TestHitAfterFill(t *testing.T) {
	c := mustCache(t, testCfg, nil)
	full := c.FullMask()
	if access(t, c, 0, 0x1000, full) {
		t.Error("first access should miss")
	}
	if !access(t, c, 0, 0x1000, full) {
		t.Error("second access should hit")
	}
	st := c.Stats(0)
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestSameSetDifferentTags(t *testing.T) {
	c := mustCache(t, testCfg, nil)
	full := c.FullMask()
	sets := uint64(testCfg.Sets())
	lineBytes := uint64(testCfg.LineBytes)
	// Four distinct tags mapping to set 0 fill all four ways.
	for i := uint64(0); i < 4; i++ {
		if access(t, c, 0, i*sets*lineBytes, full) {
			t.Errorf("fill %d unexpectedly hit", i)
		}
	}
	// All four now resident.
	for i := uint64(0); i < 4; i++ {
		if !access(t, c, 0, i*sets*lineBytes, full) {
			t.Errorf("tag %d should hit", i)
		}
	}
	// A fifth tag evicts the LRU (tag 0, the least recently touched).
	if access(t, c, 0, 4*sets*lineBytes, full) {
		t.Error("fifth tag should miss")
	}
	if access(t, c, 0, 0, full) {
		t.Error("tag 0 should have been evicted (LRU)")
	}
}

func TestWayMaskRestrictsFills(t *testing.T) {
	c := mustCache(t, testCfg, nil)
	sets := uint64(testCfg.Sets())
	lineBytes := uint64(testCfg.LineBytes)
	mask1, _ := ContiguousMask(0, 1) // only way 0
	// With one way, two alternating tags in the same set always thrash.
	a, b := uint64(0), sets*lineBytes
	access(t, c, 0, a, mask1)
	access(t, c, 0, b, mask1)
	if access(t, c, 0, a, mask1) {
		t.Error("way-restricted fill should have evicted a")
	}
}

func TestLookupIgnoresMask(t *testing.T) {
	c := mustCache(t, testCfg, nil)
	// CLOS 0 fills into way 3 only.
	maskHi, _ := ContiguousMask(3, 1)
	access(t, c, 0, 0x40, maskHi)
	// CLOS 1 with a disjoint mask still hits the line.
	maskLo, _ := ContiguousMask(0, 2)
	if !access(t, c, 1, 0x40, maskLo) {
		t.Error("lookups must probe all ways regardless of CBM")
	}
}

func TestInvalidCBM(t *testing.T) {
	c := mustCache(t, testCfg, nil)
	if _, err := c.Access(0, 0, 0); err == nil {
		t.Error("zero CBM should error")
	}
	if _, err := c.Access(0, 0, 1<<10); err == nil {
		t.Error("out-of-range CBM should error")
	}
}

func TestOccupancyTracking(t *testing.T) {
	c := mustCache(t, testCfg, nil)
	full := c.FullMask()
	for i := uint64(0); i < 8; i++ {
		access(t, c, 2, i*64, full)
	}
	if got := c.Occupancy(2); got != 8 {
		t.Errorf("occupancy=%d want 8", got)
	}
	if got := c.Occupancy(0); got != 0 {
		t.Errorf("occupancy(0)=%d want 0", got)
	}
	c.Flush()
	if got := c.Occupancy(2); got != 0 {
		t.Errorf("occupancy after flush=%d want 0", got)
	}
}

func TestOccupancyTransfersOnEviction(t *testing.T) {
	c := mustCache(t, testCfg, nil)
	mask, _ := ContiguousMask(0, 1)
	sets := uint64(testCfg.Sets())
	access(t, c, 0, 0, mask)
	access(t, c, 1, sets*64, mask) // evicts CLOS 0's line
	if c.Occupancy(0) != 0 || c.Occupancy(1) != 1 {
		t.Errorf("occupancy 0=%d 1=%d, want 0,1", c.Occupancy(0), c.Occupancy(1))
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := mustCache(t, testCfg, nil)
	full := c.FullMask()
	access(t, c, 0, 0x80, full)
	c.ResetStats()
	if !access(t, c, 0, 0x80, full) {
		t.Error("ResetStats must not flush contents")
	}
	st := c.Stats(0)
	if st.Accesses != 1 || st.Hits != 1 {
		t.Errorf("stats after reset %+v", st)
	}
}

func TestMissRatioZeroOnNoAccesses(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Error("empty stats should have 0 miss ratio")
	}
}

func TestContiguousMask(t *testing.T) {
	m, err := ContiguousMask(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0b11100 {
		t.Errorf("mask=%#b want 0b11100", m)
	}
	if _, err := ContiguousMask(0, 0); err == nil {
		t.Error("zero-width mask should error")
	}
	if _, err := ContiguousMask(-1, 2); err == nil {
		t.Error("negative lo should error")
	}
	if _, err := ContiguousMask(60, 10); err == nil {
		t.Error("overflowing mask should error")
	}
}

func TestTreePLRUValidation(t *testing.T) {
	if _, err := NewTreePLRU(16, 11); err == nil {
		t.Error("non-power-of-two ways should error for tree-PLRU")
	}
	if _, err := NewTreePLRU(0, 4); err == nil {
		t.Error("zero sets should error")
	}
}

func TestTreePLRUBasicEviction(t *testing.T) {
	cfg := Config{SizeBytes: 4096, Ways: 4, LineBytes: 64}
	c := mustCache(t, cfg, NewTreePLRU)
	full := c.FullMask()
	sets := uint64(cfg.Sets())
	// Fill all four ways of set 0, then access a fifth tag; PLRU must
	// evict one of the resident lines and the new line must hit next.
	for i := uint64(0); i < 4; i++ {
		access(t, c, 0, i*sets*64, full)
	}
	access(t, c, 0, 4*sets*64, full)
	if !c.Contains(4 * sets * 64) {
		t.Error("newly filled line must be resident")
	}
	resident := 0
	for i := uint64(0); i < 4; i++ {
		if c.Contains(i * sets * 64) {
			resident++
		}
	}
	if resident != 3 {
		t.Errorf("exactly one of the original lines should be evicted; %d resident", resident)
	}
}

func TestTreePLRUMaskedVictim(t *testing.T) {
	pol, err := NewTreePLRU(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Touch everything so bits are in a known state, then demand a victim
	// restricted to ways {5}.
	for w := 0; w < 8; w++ {
		pol.OnAccess(0, w)
	}
	v := pol.Victim(0, 1<<5)
	if v != 5 {
		t.Errorf("masked victim=%d want 5", v)
	}
	if v := pol.Victim(0, 0); v != -1 {
		t.Errorf("empty mask victim=%d want -1", v)
	}
}

func TestLRUVictimPrefersOldest(t *testing.T) {
	pol, err := NewLRU(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	pol.OnAccess(0, 0)
	pol.OnAccess(0, 1)
	pol.OnAccess(0, 2)
	pol.OnAccess(0, 3)
	pol.OnAccess(0, 0) // refresh way 0
	if v := pol.Victim(0, 0b1111); v != 1 {
		t.Errorf("victim=%d want 1 (oldest)", v)
	}
	if v := pol.Victim(0, 0b1000); v != 3 {
		t.Errorf("masked victim=%d want 3", v)
	}
}

// Property: a looping working set that fits in the allocated ways has a
// near-zero steady-state miss ratio; one that exceeds allocated capacity
// under LRU thrashes (miss ratio 1 for a sequential loop).
func TestLRUWorkingSetProperty(t *testing.T) {
	cfg := Config{SizeBytes: 64 * 1024, Ways: 8, LineBytes: 64}
	f := func(waysRaw uint8) bool {
		ways := int(waysRaw)%8 + 1
		cap := ways * cfg.SizeBytes / cfg.Ways
		c, err := New(cfg, nil)
		if err != nil {
			return false
		}
		mask, err := ContiguousMask(0, ways)
		if err != nil {
			return false
		}
		// Working set at half the allocated capacity: must fit.
		g, err := trace.NewLoop(0, uint64(cap/2), 64)
		if err != nil {
			return false
		}
		for i := 0; i < cap; i++ { // warm
			if _, err := c.Access(0, g.Next(), mask); err != nil {
				return false
			}
		}
		c.ResetStats()
		for i := 0; i < cap; i++ {
			if _, err := c.Access(0, g.Next(), mask); err != nil {
				return false
			}
		}
		return c.Stats(0).MissRatio() < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestLRUThrashingLoop(t *testing.T) {
	cfg := Config{SizeBytes: 16 * 1024, Ways: 4, LineBytes: 64}
	c := mustCache(t, cfg, nil)
	mask, _ := ContiguousMask(0, 2)         // 8 KB allocated
	g, err := trace.NewLoop(0, 16*1024, 64) // 16 KB working set
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		access(t, c, 0, g.Next(), mask)
	}
	c.ResetStats()
	for i := 0; i < 4096; i++ {
		access(t, c, 0, g.Next(), mask)
	}
	if mr := c.Stats(0).MissRatio(); mr < 0.99 {
		t.Errorf("sequential loop beyond capacity should thrash under LRU, miss ratio %v", mr)
	}
}

func TestMRCMonotoneForLoop(t *testing.T) {
	cfg := Config{SizeBytes: 32 * 1024, Ways: 8, LineBytes: 64}
	g, err := trace.NewLoop(0, 12*1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	mrc, err := ProfileMRC(cfg, g, nil, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// 12 KB working set, 4 KB per way → misses at ≤2 ways, hits at ≥4.
	if mrc.At(1) < 0.9 {
		t.Errorf("1-way miss ratio %v, want thrash", mrc.At(1))
	}
	if mrc.At(8) > 0.01 {
		t.Errorf("8-way miss ratio %v, want ~0", mrc.At(8))
	}
	if mrc.At(4) > 0.01 {
		t.Errorf("4-way (16KB) should fit 12KB set, miss ratio %v", mrc.At(4))
	}
}

func TestMRCClamping(t *testing.T) {
	m := MRC{Ways: 2, MissRatio: []float64{0.9, 0.1}}
	if m.At(0) != 0.9 {
		t.Errorf("At(0) should clamp to 1 way")
	}
	if m.At(10) != 0.1 {
		t.Errorf("At(10) should clamp to max ways")
	}
	var empty MRC
	if empty.At(3) != 0 {
		t.Error("empty MRC should return 0")
	}
}

func TestProfileMRCValidation(t *testing.T) {
	g, _ := trace.NewLoop(0, 1024, 64)
	if _, err := ProfileMRC(testCfg, g, nil, -1, 10); err == nil {
		t.Error("negative warmup should error")
	}
	if _, err := ProfileMRC(testCfg, g, nil, 0, 0); err == nil {
		t.Error("zero samples should error")
	}
}
