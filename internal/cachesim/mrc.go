package cachesim

import (
	"fmt"

	"repro/internal/trace"
)

// MRC is a miss-ratio curve: MissRatio[w] is the steady-state miss ratio
// with w+1 ways allocated (index 0 → 1 way).
type MRC struct {
	Ways      int
	MissRatio []float64
}

// At returns the miss ratio with the given way count, clamping to the
// profiled range.
func (m MRC) At(ways int) float64 {
	if len(m.MissRatio) == 0 {
		return 0
	}
	if ways < 1 {
		ways = 1
	}
	if ways > len(m.MissRatio) {
		ways = len(m.MissRatio)
	}
	return m.MissRatio[ways-1]
}

// ProfileMRC derives a miss-ratio curve for an access pattern by
// trace-driven simulation: for each way count 1..cfg.Ways it runs the
// generator against a fresh cache restricted to a contiguous mask of that
// many ways, discards warmup accesses, then measures sample accesses.
//
// The curve grounds the analytic working-set models in internal/workloads:
// the ablation bench compares analytic and trace-derived curves.
func ProfileMRC(cfg Config, gen trace.Generator, factory PolicyFactory, warmup, samples int) (MRC, error) {
	if warmup < 0 || samples <= 0 {
		return MRC{}, fmt.Errorf("cachesim: invalid profile sizes warmup=%d samples=%d", warmup, samples)
	}
	mrc := MRC{Ways: cfg.Ways, MissRatio: make([]float64, cfg.Ways)}
	for w := 1; w <= cfg.Ways; w++ {
		cache, err := New(cfg, factory)
		if err != nil {
			return MRC{}, err
		}
		mask, err := ContiguousMask(0, w)
		if err != nil {
			return MRC{}, err
		}
		gen.Reset()
		for i := 0; i < warmup; i++ {
			if _, err := cache.Access(0, gen.Next(), mask); err != nil {
				return MRC{}, err
			}
		}
		cache.ResetStats()
		for i := 0; i < samples; i++ {
			if _, err := cache.Access(0, gen.Next(), mask); err != nil {
				return MRC{}, err
			}
		}
		mrc.MissRatio[w-1] = cache.Stats(0).MissRatio()
	}
	return mrc, nil
}
