package cachesim

import (
	"fmt"
	"math/bits"
)

// lru implements true least-recently-used replacement with per-line
// logical timestamps.
type lru struct {
	ways   int
	stamps []uint64 // sets × ways
	clock  uint64
}

// NewLRU is a PolicyFactory for true LRU.
func NewLRU(sets, ways int) (Policy, error) {
	if sets <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cachesim: invalid LRU geometry sets=%d ways=%d", sets, ways)
	}
	return &lru{ways: ways, stamps: make([]uint64, sets*ways)}, nil
}

func (l *lru) OnAccess(set, way int) {
	l.clock++
	l.stamps[set*l.ways+way] = l.clock
}

func (l *lru) Victim(set int, mask uint64) int {
	best := -1
	var bestStamp uint64
	base := set * l.ways
	for w := 0; w < l.ways; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		s := l.stamps[base+w]
		if best < 0 || s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

// treePLRU implements tree pseudo-LRU. Each set keeps ways−1 direction
// bits arranged as an implicit binary tree: bit i's children are 2i+1 and
// 2i+2; leaves map to ways. A 0 bit means "the LRU side is the left
// subtree". Only power-of-two way counts are supported, matching hardware
// designs.
type treePLRU struct {
	ways int
	bits [][]bool // per set, ways-1 nodes
}

// NewTreePLRU is a PolicyFactory for tree pseudo-LRU. The way count must
// be a power of two.
func NewTreePLRU(sets, ways int) (Policy, error) {
	if sets <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cachesim: invalid PLRU geometry sets=%d ways=%d", sets, ways)
	}
	if ways&(ways-1) != 0 {
		return nil, fmt.Errorf("cachesim: tree-PLRU requires power-of-two ways, got %d", ways)
	}
	b := make([][]bool, sets)
	for i := range b {
		b[i] = make([]bool, ways-1)
	}
	return &treePLRU{ways: ways, bits: b}, nil
}

// OnAccess flips the path bits so they point away from the touched way.
func (p *treePLRU) OnAccess(set, way int) {
	if p.ways == 1 {
		return
	}
	nodes := p.bits[set]
	levels := bits.TrailingZeros(uint(p.ways)) // tree depth
	node := 0
	for level := levels - 1; level >= 0; level-- {
		right := way&(1<<uint(level)) != 0
		// Point the bit at the *other* subtree (it is now the LRU side).
		nodes[node] = !right
		if right {
			node = 2*node + 2
		} else {
			node = 2*node + 1
		}
	}
}

// subtreeMask returns the mask of ways under the subtree rooted at the
// node addressed by (firstWay, width).
func subtreeMask(firstWay, width int) uint64 {
	return ((uint64(1) << width) - 1) << uint(firstWay)
}

// Victim walks the tree following the PLRU bits, but at each node forces
// the walk into a subtree that contains at least one way from mask — the
// standard way-partitioning extension of tree-PLRU.
func (p *treePLRU) Victim(set int, mask uint64) int {
	if p.ways == 1 {
		if mask&1 != 0 {
			return 0
		}
		return -1
	}
	if mask == 0 {
		return -1
	}
	nodes := p.bits[set]
	node, firstWay, width := 0, 0, p.ways
	for width > 1 {
		half := width / 2
		leftMask := subtreeMask(firstWay, half) & mask
		rightMask := subtreeMask(firstWay+half, half) & mask
		goRight := nodes[node] // bit true → LRU side is right
		switch {
		case leftMask == 0 && rightMask == 0:
			return -1
		case leftMask == 0:
			goRight = true
		case rightMask == 0:
			goRight = false
		}
		if goRight {
			node = 2*node + 2
			firstWay += half
		} else {
			node = 2*node + 1
		}
		width = half
	}
	if mask&(1<<uint(firstWay)) == 0 {
		return -1
	}
	return firstWay
}
