package controlplane

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// AppSpec describes an application submitted for runtime admission.
type AppSpec struct {
	// Name identifies the application on the machine. Names are
	// single-use: the machine keeps departed applications' history, so a
	// name cannot be recycled after removal.
	Name string `json:"name"`
	// Benchmark selects the Table 2 workload model; empty means the
	// benchmark named Name.
	Benchmark string `json:"benchmark,omitempty"`
	// Cores overrides the benchmark's dedicated core count; 0 keeps the
	// catalog default. Consolidation mixes divide cores evenly at boot,
	// so late arrivals usually need a smaller footprint than the default.
	Cores int `json:"cores,omitempty"`
	// Weight is the fairness weight: the app's slowdown is divided by it
	// before unfairness is computed, so weight 2 tolerates twice the
	// slowdown. 0 means the default weight 1.
	Weight float64 `json:"weight,omitempty"`
}

func (s AppSpec) validate() *Rejection {
	if s.Name == "" {
		return Reject(http.StatusBadRequest, CodeBadSpec, "app spec needs a non-empty name")
	}
	if strings.ContainsAny(s.Name, "/ \t\n") {
		return Reject(http.StatusBadRequest, CodeBadSpec,
			"app name %q may not contain slashes or whitespace", s.Name)
	}
	if s.Cores < 0 {
		return Reject(http.StatusBadRequest, CodeBadSpec, "cores %d must be >= 0", s.Cores)
	}
	if s.Weight < 0 || (s.Weight != s.Weight) {
		return Reject(http.StatusBadRequest, CodeBadSpec, "weight %v must be a positive number", s.Weight)
	}
	return nil
}

// MachineAdmitter implements Admitter against the simulated machine and
// the CoPart manager. All methods run on the controller goroutine (via
// Plane.Drain), which is the only place the machine and manager may be
// touched; the manager notices membership changes at its next control
// period and re-profiles.
type MachineAdmitter struct {
	M   *machine.Machine
	Mgr *core.Manager
	// MinApps is the smallest consolidation the admitter will leave
	// behind on removal; 0 means 2, the minimum the manager can partition.
	MinApps int
}

func (a *MachineAdmitter) minApps() int {
	if a.MinApps > 0 {
		return a.MinApps
	}
	return 2
}

// AddApp resolves the spec against the workload catalog and launches it.
func (a *MachineAdmitter) AddApp(spec AppSpec) error {
	if rej := spec.validate(); rej != nil {
		return rej
	}
	bench := spec.Benchmark
	if bench == "" {
		bench = spec.Name
	}
	ws, err := workloads.ByName(a.M.Config(), bench)
	if err != nil {
		return Reject(http.StatusBadRequest, CodeBadSpec,
			"unknown benchmark %q (valid: %s)", bench, strings.Join(workloads.Names(), ", "))
	}
	if _, err := a.M.Model(spec.Name); err == nil {
		// The machine knows the name — active or departed, it is taken.
		return Reject(http.StatusConflict, CodeDuplicateApp,
			"app name %q already used (names are single-use; departed apps keep their history)", spec.Name)
	}
	cfg := a.M.Config()
	active := a.M.Apps()
	// Every consolidated app needs at least one exclusive LLC way.
	if len(active)+1 > cfg.LLCWays {
		return Reject(http.StatusConflict, CodeMachineFull,
			"machine full: %d apps consolidated, %d LLC ways (each app needs one exclusive way)",
			len(active), cfg.LLCWays)
	}
	model := ws.Model
	model.Name = spec.Name
	if spec.Cores > 0 {
		model.Cores = spec.Cores
	}
	usedCores := 0
	for _, name := range active {
		m, err := a.M.Model(name)
		if err == nil && m.Socket == model.Socket {
			usedCores += m.Cores
		}
	}
	if usedCores+model.Cores > cfg.Cores {
		return Reject(http.StatusConflict, CodeMachineFull,
			"machine full: %d of %d cores in use on socket %d, app wants %d (pass a smaller \"cores\")",
			usedCores, cfg.Cores, model.Socket, model.Cores)
	}
	if err := a.M.AddApp(model); err != nil {
		// Pre-checks above should have caught everything; whatever is
		// left is a spec problem (e.g. model validation).
		return Reject(http.StatusBadRequest, CodeBadSpec, "machine rejected app: %v", err)
	}
	if spec.Weight > 0 {
		if err := a.Mgr.SetWeight(spec.Name, spec.Weight); err != nil {
			return Reject(http.StatusBadRequest, CodeBadSpec, "weight rejected: %v", err)
		}
	}
	return nil
}

// RemoveApp terminates an application, keeping at least MinApps running.
func (a *MachineAdmitter) RemoveApp(name string) error {
	active := a.M.Apps()
	found := false
	for _, n := range active {
		if n == name {
			found = true
			break
		}
	}
	if !found {
		return Reject(http.StatusNotFound, CodeUnknownApp, "no active app %q", name)
	}
	if len(active) <= a.minApps() {
		return Reject(http.StatusConflict, CodeLastApps,
			"cannot remove %q: %d apps active, minimum consolidation is %d", name, len(active), a.minApps())
	}
	if err := a.M.RemoveApp(name); err != nil {
		return fmt.Errorf("remove %q: %w", name, err)
	}
	a.Mgr.DropWeight(name)
	return nil
}

// Reweight changes an active application's fairness weight.
func (a *MachineAdmitter) Reweight(name string, weight float64) error {
	found := false
	for _, n := range a.M.Apps() {
		if n == name {
			found = true
			break
		}
	}
	if !found {
		return Reject(http.StatusNotFound, CodeUnknownApp, "no active app %q", name)
	}
	if err := a.Mgr.SetWeight(name, weight); err != nil {
		return Reject(http.StatusBadRequest, CodeBadSpec, "weight rejected: %v", err)
	}
	return nil
}

// Snapshot serializes the full manager+machine state as versioned JSON.
func (a *MachineAdmitter) Snapshot() ([]byte, error) {
	snap, err := a.Mgr.Snapshot()
	if err != nil {
		return nil, Reject(http.StatusNotImplemented, CodeUnsupported, "snapshot unavailable: %v", err)
	}
	return snap.Marshal()
}
