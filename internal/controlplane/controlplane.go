// Package controlplane is copartd's embedded serving surface: an
// HTTP/JSON API (stdlib net/http only) for runtime admission — adding,
// removing, and reweighting consolidated applications while the
// controller runs — plus deterministic snapshot export, health and
// readiness probes wired to the resilience watchdog, and Prometheus
// text metrics.
//
// The central design constraint is that the controller is
// single-threaded and deterministic: the manager, the simulated
// machine, and the samplers are owned by the controller goroutine and
// are not safe for concurrent use. The control plane therefore never
// touches them from an HTTP handler. Mutating requests are validated,
// placed on a bounded queue, and applied by the controller itself
// between control periods (Manager.BetweenPeriods → Plane.Drain); the
// handler blocks on a reply channel with a timeout. Read-only surfaces
// (/healthz, /metrics, /apps) serve from a mutex-guarded mirror the
// controller refreshes once per period (Observe / Drain), so they cost
// the control loop nothing and block nobody.
package controlplane

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/eventlog"
)

// Rejection is a typed admission error: an HTTP status, a stable
// machine-readable code, and a human-readable detail. Every error the
// control plane produces on purpose is one of these; anything else
// surfaces as a 500.
type Rejection struct {
	Status int    `json:"-"`
	Code   string `json:"code"`
	Detail string `json:"error"`
}

// Rejection codes. Stable API surface: clients and tests match on
// these, not on detail strings.
const (
	CodeBadSpec      = "bad_spec"      // malformed or invalid request body
	CodeUnknownApp   = "unknown_app"   // app name not consolidated
	CodeDuplicateApp = "duplicate_app" // name already used (names are single-use)
	CodeMachineFull  = "machine_full"  // no way/core capacity for another app
	CodeLastApps     = "last_apps"     // removal would leave fewer than the minimum
	CodeQueueFull    = "queue_full"    // admission queue at capacity
	CodeDraining     = "draining"      // daemon is shutting down
	CodeTimeout      = "timeout"       // control loop did not drain in time
	CodeUnsupported  = "unsupported"   // operation impossible in this configuration
)

// Error implements error.
func (r *Rejection) Error() string { return r.Detail }

// Reject builds a Rejection.
func Reject(status int, code, format string, args ...interface{}) *Rejection {
	return &Rejection{Status: status, Code: code, Detail: fmt.Sprintf(format, args...)}
}

// Admitter applies admission operations to the controlled system. It is
// always called on the controller goroutine (from Plane.Drain), so
// implementations may touch the manager and machine freely.
type Admitter interface {
	// AddApp launches a new application.
	AddApp(spec AppSpec) error
	// RemoveApp terminates an application.
	RemoveApp(name string) error
	// Reweight changes an application's fairness weight.
	Reweight(name string, weight float64) error
	// Snapshot serializes the full controller+machine state.
	Snapshot() ([]byte, error)
}

// StatusSource exposes the controller's health; *core.Manager satisfies
// it. Reads are performed on the controller goroutine only (Drain).
type StatusSource interface {
	Phase() core.Phase
	FailStreak() int
}

// opKind enumerates queued operations.
type opKind int

const (
	opAdd opKind = iota
	opRemove
	opReweight
	opSnapshot
)

func (k opKind) String() string {
	switch k {
	case opAdd:
		return "add"
	case opRemove:
		return "remove"
	case opReweight:
		return "reweight"
	default:
		return "snapshot"
	}
}

// op is one queued admission operation.
type op struct {
	kind   opKind
	spec   AppSpec
	name   string
	weight float64
	reply  chan opResult // nil for fire-and-forget enqueues
}

type opResult struct {
	body []byte // snapshot payload
	err  error
}

// Plane is the control plane: the admission queue, the status mirror,
// and the HTTP surface over both.
type Plane struct {
	adm    Admitter
	src    StatusSource
	events *eventlog.Log
	ops    chan op
	opWait time.Duration

	mu         sync.Mutex
	last       core.PeriodReport
	haveReport bool
	phase      core.Phase
	failStreak int
	degraded   bool
	draining   bool
	profiled   bool // left the initial profiling phase at least once

	periods             uint64
	degradedTransitions uint64
	snapshots           uint64
	admissions          map[string]uint64 // "<op>_<outcome>" → count

	lats    []time.Duration // period wall-latency ring
	latPos  int
	latFull bool
	lastObs time.Time
}

// Option configures a Plane.
type Option func(*Plane)

// WithQueueDepth bounds the admission queue (default 64).
func WithQueueDepth(n int) Option {
	return func(p *Plane) { p.ops = make(chan op, n) }
}

// WithOpTimeout bounds how long an HTTP mutation waits for the control
// loop to drain the queue (default 10s).
func WithOpTimeout(d time.Duration) Option {
	return func(p *Plane) { p.opWait = d }
}

// New builds a control plane over an admitter and a status source.
// events may be nil (the /events endpoint then serves an empty list).
func New(adm Admitter, src StatusSource, events *eventlog.Log, opts ...Option) *Plane {
	p := &Plane{
		adm:        adm,
		src:        src,
		events:     events,
		ops:        make(chan op, 64),
		opWait:     10 * time.Second,
		admissions: make(map[string]uint64),
		lats:       make([]time.Duration, 128),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Observe records one period report into the status mirror. Call it
// from the manager's OnPeriod hook (controller goroutine); readers see
// it through the mutex.
func (p *Plane) Observe(r core.PeriodReport) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.last = r
	p.haveReport = true
	p.periods++
	if !p.lastObs.IsZero() {
		p.lats[p.latPos] = now.Sub(p.lastObs)
		p.latPos = (p.latPos + 1) % len(p.lats)
		if p.latPos == 0 {
			p.latFull = true
		}
	}
	p.lastObs = now
}

// Drain applies every queued admission operation and refreshes the
// health mirror. It MUST run on the controller goroutine — wire it to
// Manager.BetweenPeriods, and call it once more after Run returns to
// answer stragglers (with SetDraining set, they are rejected).
func (p *Plane) Drain() {
	p.syncHealth()
	for {
		select {
		case o := <-p.ops:
			res := p.apply(o)
			if o.reply != nil {
				o.reply <- res
			}
		default:
			return
		}
	}
}

// syncHealth refreshes the mirrored phase and fail streak.
func (p *Plane) syncHealth() {
	if p.src == nil {
		return
	}
	phase, streak := p.src.Phase(), p.src.FailStreak()
	p.mu.Lock()
	defer p.mu.Unlock()
	deg := phase == core.PhaseDegraded
	if deg && !p.degraded {
		p.degradedTransitions++
	}
	if phase != core.PhaseProfile {
		p.profiled = true
	}
	p.degraded = deg
	p.phase = phase
	p.failStreak = streak
}

// apply executes one operation on the controller goroutine.
func (p *Plane) apply(o op) opResult {
	p.mu.Lock()
	draining := p.draining
	p.mu.Unlock()
	if draining && o.kind != opSnapshot {
		// Snapshots stay allowed during drain: flushing state on the way
		// out is the whole point of graceful shutdown.
		err := Reject(http.StatusServiceUnavailable, CodeDraining, "daemon is draining; admission closed")
		p.count(o.kind, err)
		return opResult{err: err}
	}
	var res opResult
	switch o.kind {
	case opAdd:
		res.err = p.adm.AddApp(o.spec)
	case opRemove:
		res.err = p.adm.RemoveApp(o.name)
	case opReweight:
		res.err = p.adm.Reweight(o.name, o.weight)
	case opSnapshot:
		res.body, res.err = p.adm.Snapshot()
		if res.err == nil {
			p.mu.Lock()
			p.snapshots++
			p.mu.Unlock()
		}
	}
	p.count(o.kind, res.err)
	if p.events.Enabled() {
		outcome := "ok"
		if res.err != nil {
			outcome = "rejected: " + res.err.Error()
		}
		t := time.Duration(0)
		p.mu.Lock()
		if p.haveReport {
			t = p.last.Time
		}
		p.mu.Unlock()
		p.events.Appendf(t, eventlog.KindAdmission, o.opTarget(), "%s %s", o.kind, outcome)
	}
	return res
}

// opTarget names the app an operation concerns, for telemetry.
func (o op) opTarget() string {
	if o.kind == opAdd {
		return o.spec.Name
	}
	return o.name
}

// count tallies an operation outcome.
func (p *Plane) count(kind opKind, err error) {
	outcome := "ok"
	if err != nil {
		outcome = "rejected"
	}
	p.mu.Lock()
	p.admissions[kind.String()+"_"+outcome]++
	p.mu.Unlock()
}

// SetDraining closes admission: queued and future mutations are
// rejected with CodeDraining; snapshots still serve. Safe from any
// goroutine.
func (p *Plane) SetDraining() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
}

// submit queues an operation and waits for the controller to apply it.
func (p *Plane) submit(o op) opResult {
	o.reply = make(chan opResult, 1)
	select {
	case p.ops <- o:
	default:
		err := Reject(http.StatusServiceUnavailable, CodeQueueFull,
			"admission queue full (%d pending); retry after the next control period", cap(p.ops))
		p.count(o.kind, err)
		return opResult{err: err}
	}
	timer := time.NewTimer(p.opWait)
	defer timer.Stop()
	select {
	case res := <-o.reply:
		return res
	case <-timer.C:
		// The op stays queued and may still apply later; the client just
		// stops waiting. With the daemon healthy this cannot happen — the
		// queue drains every control period.
		return opResult{err: Reject(http.StatusGatewayTimeout, CodeTimeout,
			"control loop did not drain the queue within %v (daemon stopped?)", p.opWait)}
	}
}

// EnqueueAdd queues an add without waiting for the result — the
// deterministic path for experiment drivers that apply churn from a
// BetweenPeriods hook (enqueue, then Drain, all on one goroutine).
func (p *Plane) EnqueueAdd(spec AppSpec) error {
	return p.enqueue(op{kind: opAdd, spec: spec})
}

// EnqueueRemove queues a removal without waiting.
func (p *Plane) EnqueueRemove(name string) error {
	return p.enqueue(op{kind: opRemove, name: name})
}

// EnqueueReweight queues a weight change without waiting.
func (p *Plane) EnqueueReweight(name string, weight float64) error {
	return p.enqueue(op{kind: opReweight, name: name, weight: weight})
}

func (p *Plane) enqueue(o op) error {
	select {
	case p.ops <- o:
		return nil
	default:
		err := Reject(http.StatusServiceUnavailable, CodeQueueFull,
			"admission queue full (%d pending)", cap(p.ops))
		p.count(o.kind, err)
		return err
	}
}

// Status is the mirrored controller state served by the read endpoints.
type Status struct {
	Phase      string  `json:"phase"`
	Degraded   bool    `json:"degraded"`
	Draining   bool    `json:"draining"`
	FailStreak int     `json:"failStreak"`
	Periods    uint64  `json:"periods"`
	Unfairness float64 `json:"unfairness"`
	Apps       int     `json:"apps"`
}

// Status returns the mirrored state.
func (p *Plane) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Status{
		Phase:      p.phase.String(),
		Degraded:   p.degraded,
		Draining:   p.draining,
		FailStreak: p.failStreak,
		Periods:    p.periods,
		Unfairness: p.last.Unfairness,
		Apps:       len(p.last.Apps),
	}
}

// AdmissionStats reports how many operations were applied and rejected.
func (p *Plane) AdmissionStats() (ok, rejected uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, v := range p.admissions {
		if len(k) > 3 && k[len(k)-3:] == "_ok" {
			ok += v
		} else {
			rejected += v
		}
	}
	return ok, rejected
}
