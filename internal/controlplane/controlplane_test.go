package controlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// liveSetup boots a 3-app consolidation with a running controller whose
// BetweenPeriods hook drains the plane, plus an HTTP test server.
func liveSetup(t *testing.T) (*Plane, *httptest.Server, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HBoth, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	rng, src := core.NewSeededRand(1)
	mgr, err := core.NewManager(m, core.DefaultParams(), ref,
		core.Envelope{LoWay: 0, Ways: cfg.LLCWays}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mgr.SnapshotSource = src

	elog, err := eventlog.New(256)
	if err != nil {
		t.Fatal(err)
	}
	plane := New(&MachineAdmitter{M: m, Mgr: mgr}, mgr, elog)
	mgr.BetweenPeriods = plane.Drain
	mgr.OnPeriod = plane.Observe

	done := make(chan error, 1)
	// The horizon is target time, not wall time: the unpaced loop burns
	// through virtual periods as fast as the CPU allows, so it must be
	// large enough that Run cannot finish under a loaded test host
	// before Stop lands.
	go func() { done <- mgr.Run(10000 * time.Hour) }()
	srv := httptest.NewServer(plane.Handler())
	t.Cleanup(func() {
		srv.Close()
		mgr.Stop()
		if err := <-done; err != nil {
			t.Errorf("controller run: %v", err)
		}
	})
	return plane, srv, m
}

func doReq(t *testing.T, method, url string, body interface{}) (int, map[string]interface{}, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	json.Unmarshal(raw, &decoded) //nolint:errcheck // not all bodies are objects
	return resp.StatusCode, decoded, string(raw)
}

// TestAdmissionLifecycle drives add → reweight → remove through the live
// HTTP API, with the controller applying ops between control periods.
func TestAdmissionLifecycle(t *testing.T) {
	_, srv, m := liveSetup(t)

	if code, _, _ := doReq(t, "GET", srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}

	// Admit a 1-core EP instance under a fresh name.
	code, _, raw := doReq(t, "POST", srv.URL+"/apps",
		AppSpec{Name: "late", Benchmark: "EP", Cores: 1, Weight: 2})
	if code != http.StatusCreated {
		t.Fatalf("admit = %d: %s", code, raw)
	}
	found := false
	for _, n := range m.Apps() {
		if n == "late" {
			found = true
		}
	}
	if !found {
		t.Fatalf("late not on the machine after admission: %v", m.Apps())
	}

	// Duplicate name → 409 duplicate_app.
	code, body, _ := doReq(t, "POST", srv.URL+"/apps",
		AppSpec{Name: "late", Benchmark: "EP", Cores: 1})
	if code != http.StatusConflict || body["code"] != CodeDuplicateApp {
		t.Fatalf("duplicate admit = %d %v", code, body)
	}

	// Unknown benchmark → 400 bad_spec enumerating the catalog.
	code, body, raw = doReq(t, "POST", srv.URL+"/apps",
		AppSpec{Name: "x", Benchmark: "NOPE"})
	if code != http.StatusBadRequest || body["code"] != CodeBadSpec || !strings.Contains(raw, "EP") {
		t.Fatalf("bad benchmark = %d: %s", code, raw)
	}

	// Malformed JSON → 400 bad_spec.
	resp, err := http.Post(srv.URL+"/apps", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", resp.StatusCode)
	}

	// No core capacity left (15 mix + 1 late = 16): machine_full.
	code, body, _ = doReq(t, "POST", srv.URL+"/apps",
		AppSpec{Name: "nofit", Benchmark: "EP", Cores: 1})
	if code != http.StatusConflict || body["code"] != CodeMachineFull {
		t.Fatalf("overcommit admit = %d %v", code, body)
	}

	// Reweight, then reweight a ghost.
	code, _, raw = doReq(t, "PATCH", srv.URL+"/apps/late", map[string]float64{"weight": 1.5})
	if code != http.StatusOK {
		t.Fatalf("reweight = %d: %s", code, raw)
	}
	code, body, _ = doReq(t, "PATCH", srv.URL+"/apps/ghost", map[string]float64{"weight": 2})
	if code != http.StatusNotFound || body["code"] != CodeUnknownApp {
		t.Fatalf("reweight ghost = %d %v", code, body)
	}
	code, body, _ = doReq(t, "PATCH", srv.URL+"/apps/late", map[string]float64{"weight": -1})
	if code != http.StatusBadRequest || body["code"] != CodeBadSpec {
		t.Fatalf("negative weight = %d %v", code, body)
	}

	// Snapshot round-trips through the core parser.
	code, _, raw = doReq(t, "GET", srv.URL+"/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot = %d: %s", code, raw)
	}
	if _, err := core.ParseSnapshot([]byte(raw)); err != nil {
		t.Fatalf("snapshot unparseable: %v", err)
	}

	// Remove, then remove again.
	if code, _, raw = doReq(t, "DELETE", srv.URL+"/apps/late", nil); code != http.StatusOK {
		t.Fatalf("remove = %d: %s", code, raw)
	}
	code, body, _ = doReq(t, "DELETE", srv.URL+"/apps/late", nil)
	if code != http.StatusNotFound || body["code"] != CodeUnknownApp {
		t.Fatalf("double remove = %d %v", code, body)
	}

	// Removing below the minimum consolidation is refused.
	code, body, _ = doReq(t, "DELETE", srv.URL+"/apps/"+m.Apps()[0], nil)
	if code != http.StatusOK {
		t.Fatalf("remove to minimum = %d %v", code, body)
	}
	code, body, _ = doReq(t, "DELETE", srv.URL+"/apps/"+m.Apps()[0], nil)
	if code != http.StatusConflict || body["code"] != CodeLastApps {
		t.Fatalf("remove below minimum = %d %v", code, body)
	}
}

// TestReadSurfaces checks /status, /apps, /metrics, /events against a
// live controller.
func TestReadSurfaces(t *testing.T) {
	_, srv, _ := liveSetup(t)

	// Wait until at least one period has been observed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, body, _ := doReq(t, "GET", srv.URL+"/status", nil); code == http.StatusOK {
			if n, _ := body["periods"].(float64); n > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("controller produced no periods within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}

	code, _, raw := doReq(t, "GET", srv.URL+"/apps", nil)
	if code != http.StatusOK || !strings.Contains(raw, "slowdown") {
		t.Fatalf("apps = %d: %s", code, raw)
	}

	code, _, raw = doReq(t, "GET", srv.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"copart_periods_total", "copart_controller_phase{phase=\"profiling\"}",
		"copart_controller_degraded 0", "# TYPE copart_admission_ops_total counter",
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	code, _, raw = doReq(t, "GET", srv.URL+"/events?n=50", nil)
	if code != http.StatusOK {
		t.Fatalf("events = %d: %s", code, raw)
	}
	if code, _, _ := doReq(t, "GET", srv.URL+"/events?n=bogus", nil); code != http.StatusBadRequest {
		t.Error("bad n should 400")
	}

	// Readiness flips once profiling completes; poll briefly.
	deadline = time.Now().Add(30 * time.Second)
	for {
		code, _, _ := doReq(t, "GET", srv.URL+"/readyz", nil)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fakeStatus is a scriptable StatusSource.
type fakeStatus struct {
	phase  core.Phase
	streak int
}

func (f *fakeStatus) Phase() core.Phase { return f.phase }
func (f *fakeStatus) FailStreak() int   { return f.streak }

// fakeAdmitter counts calls and returns a configured error.
type fakeAdmitter struct {
	err   error
	calls int
}

func (f *fakeAdmitter) AddApp(AppSpec) error           { f.calls++; return f.err }
func (f *fakeAdmitter) RemoveApp(string) error         { f.calls++; return f.err }
func (f *fakeAdmitter) Reweight(string, float64) error { f.calls++; return f.err }
func (f *fakeAdmitter) Snapshot() ([]byte, error)      { f.calls++; return []byte(`{"v":1}`), f.err }

// TestHealthzFlipsWithDegradedPhase is the acceptance contract: /healthz
// is unhealthy exactly while the status source reports PhaseDegraded.
func TestHealthzFlipsWithDegradedPhase(t *testing.T) {
	st := &fakeStatus{phase: core.PhaseIdle}
	p := New(&fakeAdmitter{}, st, nil)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	p.Drain() // sync the healthy state
	if code, _, _ := doReq(t, "GET", srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthy: healthz = %d, want 200", code)
	}

	st.phase, st.streak = core.PhaseDegraded, 5
	p.Drain()
	code, body, _ := doReq(t, "GET", srv.URL+"/healthz", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded: healthz = %d, want 503", code)
	}
	if fs, _ := body["failStreak"].(float64); fs != 5 {
		t.Errorf("degraded healthz failStreak = %v, want 5", body["failStreak"])
	}
	if code, _, _ := doReq(t, "GET", srv.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Error("degraded: readyz should be 503")
	}

	st.phase, st.streak = core.PhaseProfile, 0
	p.Drain()
	if code, _, _ := doReq(t, "GET", srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("recovered: healthz = %d, want 200", code)
	}

	// Exactly one transition counted.
	_, _, raw := doReq(t, "GET", srv.URL+"/metrics", nil)
	if !strings.Contains(raw, "copart_controller_degraded_transitions_total 1") {
		t.Errorf("want exactly one degraded transition:\n%s", raw)
	}
}

// TestQueueBackpressureAndDraining covers the bounded-queue and drain
// rejection paths without a live controller.
func TestQueueBackpressureAndDraining(t *testing.T) {
	p := New(&fakeAdmitter{}, &fakeStatus{}, nil, WithQueueDepth(2), WithOpTimeout(50*time.Millisecond))
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// Nobody drains: an HTTP mutation times out with 504. The op stays
	// queued (one of the two slots).
	code, body, _ := doReq(t, "DELETE", srv.URL+"/apps/whatever", nil)
	if code != http.StatusGatewayTimeout || body["code"] != CodeTimeout {
		t.Fatalf("undrained mutation = %d %v, want 504 timeout", code, body)
	}

	if err := p.EnqueueAdd(AppSpec{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	err := p.EnqueueReweight("c", 2)
	rej, ok := err.(*Rejection)
	if !ok || rej.Code != CodeQueueFull {
		t.Fatalf("enqueue on a full queue = %v, want queue_full", err)
	}

	// Draining: queued mutations are rejected, snapshots still served.
	p.SetDraining()
	p.Drain()
	ok1, rejected := p.AdmissionStats()
	if rejected < 3 {
		t.Errorf("drained queue: ok=%d rejected=%d, want the queued ops plus the overflow rejected", ok1, rejected)
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		p.Drain()
	}()
	code, body, _ = doReq(t, "POST", srv.URL+"/apps", AppSpec{Name: "z2"})
	if code != http.StatusServiceUnavailable || body["code"] != CodeDraining {
		t.Fatalf("draining admit = %d %v, want 503 draining", code, body)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(5 * time.Millisecond)
		p.Drain()
	}()
	code, _, raw := doReq(t, "GET", srv.URL+"/snapshot", nil)
	<-done
	if code != http.StatusOK || !strings.Contains(raw, `"v"`) {
		t.Fatalf("draining snapshot = %d: %s (snapshots must survive drain)", code, raw)
	}
}

// TestRejectionRendering: Rejection implements error and renders with
// its code over HTTP.
func TestRejectionRendering(t *testing.T) {
	rej := Reject(http.StatusConflict, CodeMachineFull, "no room for %q", "x")
	if rej.Error() != `no room for "x"` {
		t.Errorf("Error() = %q", rej.Error())
	}
	rec := httptest.NewRecorder()
	writeErr(rec, rej)
	if rec.Code != http.StatusConflict {
		t.Errorf("status = %d", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["code"] != CodeMachineFull {
		t.Errorf("body = %v", body)
	}

	rec = httptest.NewRecorder()
	writeErr(rec, fmt.Errorf("plain failure"))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("plain error status = %d", rec.Code)
	}
}
