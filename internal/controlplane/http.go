package controlplane

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"repro/internal/eventlog"
)

// maxBodyBytes bounds mutation request bodies; admission specs are tiny.
const maxBodyBytes = 1 << 16

// Handler returns the control plane's HTTP mux:
//
//	GET    /healthz        200 unless the controller is degraded
//	GET    /readyz         200 once profiled, not degraded, not draining
//	GET    /metrics        Prometheus text metrics
//	GET    /status         controller status mirror (JSON)
//	GET    /apps           per-app view of the last control period (JSON)
//	POST   /apps           admit an application (AppSpec body)
//	DELETE /apps/{name}    remove an application
//	PATCH  /apps/{name}    reweight an application ({"weight": W} body)
//	GET    /snapshot       full deterministic state snapshot (JSON)
//	GET    /events?n=N     last N controller events (JSON)
//
// Mutations queue for the controller goroutine and block until the next
// control period drains them; reads serve from the mirror and never
// touch the controller.
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /readyz", p.handleReadyz)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	mux.HandleFunc("GET /status", p.handleStatus)
	mux.HandleFunc("GET /apps", p.handleApps)
	mux.HandleFunc("POST /apps", p.handleAddApp)
	mux.HandleFunc("DELETE /apps/{name}", p.handleRemoveApp)
	mux.HandleFunc("PATCH /apps/{name}", p.handleReweight)
	mux.HandleFunc("GET /snapshot", p.handleSnapshot)
	mux.HandleFunc("GET /events", p.handleEvents)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a dead client
}

// writeErr renders an error: Rejections carry their own status and
// code; anything else is an internal error.
func writeErr(w http.ResponseWriter, err error) {
	var rej *Rejection
	if errors.As(err, &rej) {
		writeJSON(w, rej.Status, rej)
		return
	}
	writeJSON(w, http.StatusInternalServerError, &Rejection{
		Code: "internal", Detail: err.Error(),
	})
}

func (p *Plane) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Health is strictly "is the controller out of degraded mode":
	// PhaseDegraded means the resilience watchdog tripped and the safe EQ
	// allocation is programmed. Draining does NOT fail health — a
	// draining daemon is still healthy, just not ready.
	s := p.Status()
	if s.Degraded {
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"status": "degraded", "failStreak": s.FailStreak,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (p *Plane) handleReadyz(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	degraded, draining, profiled := p.degraded, p.draining, p.profiled
	p.mu.Unlock()
	switch {
	case draining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case degraded:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "degraded"})
	case !profiled:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "profiling"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (p *Plane) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, p.Status())
}

// appView is one row of GET /apps: the mirror of the app's last period.
type appView struct {
	Name     string  `json:"name"`
	Slowdown float64 `json:"slowdown"`
	Ways     int     `json:"ways"`
	MBA      int     `json:"mbaLevel"`
}

func (p *Plane) handleApps(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	views := make([]appView, 0, len(p.last.Apps))
	for i, name := range p.last.Apps {
		v := appView{Name: name}
		if i < len(p.last.Slowdowns) {
			v.Slowdown = p.last.Slowdowns[i]
		}
		if i < len(p.last.State.Ways) {
			v.Ways = p.last.State.Ways[i]
		}
		if i < len(p.last.State.MBA) {
			v.MBA = p.last.State.MBA[i]
		}
		views = append(views, v)
	}
	have := p.haveReport
	p.mu.Unlock()
	if !have {
		writeJSON(w, http.StatusOK, []appView{})
		return
	}
	writeJSON(w, http.StatusOK, views)
}

func (p *Plane) handleAddApp(w http.ResponseWriter, r *http.Request) {
	var spec AppSpec
	if err := decodeBody(r, &spec); err != nil {
		writeErr(w, err)
		return
	}
	res := p.submit(op{kind: opAdd, spec: spec})
	if res.err != nil {
		writeErr(w, res.err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "admitted", "name": spec.Name})
}

func (p *Plane) handleRemoveApp(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	res := p.submit(op{kind: opRemove, name: name})
	if res.err != nil {
		writeErr(w, res.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed", "name": name})
}

func (p *Plane) handleReweight(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var body struct {
		Weight *float64 `json:"weight"`
	}
	if err := decodeBody(r, &body); err != nil {
		writeErr(w, err)
		return
	}
	if body.Weight == nil {
		writeErr(w, Reject(http.StatusBadRequest, CodeBadSpec, `body needs {"weight": W}`))
		return
	}
	res := p.submit(op{kind: opReweight, name: name, weight: *body.Weight})
	if res.err != nil {
		writeErr(w, res.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "reweighted", "name": name, "weight": *body.Weight,
	})
}

func (p *Plane) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	res := p.submit(op{kind: opSnapshot})
	if res.err != nil {
		writeErr(w, res.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(res.body) //nolint:errcheck
}

func (p *Plane) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeErr(w, Reject(http.StatusBadRequest, CodeBadSpec, "n=%q is not a positive integer", q))
			return
		}
		n = v
	}
	events := p.events.Tail(n)
	if events == nil {
		events = []eventlog.Event{}
	}
	writeJSON(w, http.StatusOK, events)
}

// decodeBody strictly decodes a bounded JSON request body into v.
func decodeBody(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return Reject(http.StatusBadRequest, CodeBadSpec, "malformed JSON body: %v", err)
	}
	// Reject trailing garbage so "two specs in one request" fails loudly.
	if dec.More() {
		return Reject(http.StatusBadRequest, CodeBadSpec, "request body has trailing data")
	}
	return nil
}
