package controlplane

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// handleMetrics renders Prometheus text-format metrics. The encoding is
// hand-rolled (stdlib only) and emitted in a fixed order — metric
// families sorted, label sets sorted within a family — so scrapes are
// byte-stable for a given state and trivially diffable in tests.
func (p *Plane) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	var b strings.Builder
	b.Grow(2048)

	writeMetric(&b, "copart_admission_ops_total",
		"counter", "Admission operations by op and outcome.", func(b *strings.Builder) {
			keys := make([]string, 0, len(p.admissions))
			for k := range p.admissions {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				i := strings.LastIndexByte(k, '_')
				fmt.Fprintf(b, "copart_admission_ops_total{op=%q,outcome=%q} %d\n",
					k[:i], k[i+1:], p.admissions[k])
			}
		})

	boolGauge := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	writeMetric(&b, "copart_controller_degraded",
		"gauge", "1 while the resilience watchdog holds the safe EQ allocation.", func(b *strings.Builder) {
			fmt.Fprintf(b, "copart_controller_degraded %d\n", boolGauge(p.degraded))
		})
	writeMetric(&b, "copart_controller_degraded_transitions_total",
		"counter", "Transitions into degraded mode.", func(b *strings.Builder) {
			fmt.Fprintf(b, "copart_controller_degraded_transitions_total %d\n", p.degradedTransitions)
		})
	writeMetric(&b, "copart_controller_draining",
		"gauge", "1 once graceful shutdown has begun.", func(b *strings.Builder) {
			fmt.Fprintf(b, "copart_controller_draining %d\n", boolGauge(p.draining))
		})
	writeMetric(&b, "copart_controller_fail_streak",
		"gauge", "Consecutive failed control periods.", func(b *strings.Builder) {
			fmt.Fprintf(b, "copart_controller_fail_streak %d\n", p.failStreak)
		})
	writeMetric(&b, "copart_controller_phase",
		"gauge", "Controller phase (one-hot across phase labels).", func(b *strings.Builder) {
			cur := p.phase.String()
			for _, ph := range []string{"profiling", "exploration", "idle", "degraded"} {
				fmt.Fprintf(b, "copart_controller_phase{phase=%q} %d\n", ph, boolGauge(ph == cur))
			}
		})
	writeMetric(&b, "copart_periods_total",
		"counter", "Control periods observed by the control plane.", func(b *strings.Builder) {
			fmt.Fprintf(b, "copart_periods_total %d\n", p.periods)
		})

	if p.latFull || p.latPos > 0 {
		n := p.latPos
		if p.latFull {
			n = len(p.lats)
		}
		var sum time.Duration
		max := time.Duration(0)
		for _, d := range p.lats[:n] {
			sum += d
			if d > max {
				max = d
			}
		}
		writeMetric(&b, "copart_period_wall_seconds",
			"gauge", "Wall-clock seconds between recent control periods (mean and max over a 128-period window).",
			func(b *strings.Builder) {
				fmt.Fprintf(b, "copart_period_wall_seconds{stat=\"mean\"} %g\n",
					(sum / time.Duration(n)).Seconds())
				fmt.Fprintf(b, "copart_period_wall_seconds{stat=\"max\"} %g\n", max.Seconds())
			})
	}

	writeMetric(&b, "copart_snapshots_total",
		"counter", "State snapshots served.", func(b *strings.Builder) {
			fmt.Fprintf(b, "copart_snapshots_total %d\n", p.snapshots)
		})

	if p.haveReport {
		writeMetric(&b, "copart_unfairness",
			"gauge", "Unfairness (CoV of weighted slowdowns) at the last control period.", func(b *strings.Builder) {
				fmt.Fprintf(b, "copart_unfairness %g\n", p.last.Unfairness)
			})
		writeMetric(&b, "copart_app_slowdown",
			"gauge", "Per-application slowdown at the last control period.", func(b *strings.Builder) {
				// Report order is the manager's stable app order; keep it.
				for i, name := range p.last.Apps {
					if i < len(p.last.Slowdowns) {
						fmt.Fprintf(b, "copart_app_slowdown{app=%q} %g\n", name, p.last.Slowdowns[i])
					}
				}
			})
		writeMetric(&b, "copart_app_llc_ways",
			"gauge", "LLC ways allocated per application.", func(b *strings.Builder) {
				for i, name := range p.last.Apps {
					if i < len(p.last.State.Ways) {
						fmt.Fprintf(b, "copart_app_llc_ways{app=%q} %d\n", name, p.last.State.Ways[i])
					}
				}
			})
		writeMetric(&b, "copart_app_mba_level",
			"gauge", "MBA throttle level per application.", func(b *strings.Builder) {
				for i, name := range p.last.Apps {
					if i < len(p.last.State.MBA) {
						fmt.Fprintf(b, "copart_app_mba_level{app=%q} %d\n", name, p.last.State.MBA[i])
					}
				}
			})
	}
	p.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String())) //nolint:errcheck
}

// writeMetric emits one metric family: HELP, TYPE, then samples.
func writeMetric(b *strings.Builder, name, typ, help string, samples func(*strings.Builder)) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	samples(b)
}
