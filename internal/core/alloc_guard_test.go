package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// TestManagerPeriodAllocationGuard pins the control-period allocation
// budget (DESIGN.md §8): once the manager's scratch buffers are warm, a
// steady-state exploration period — sample counters, step the machine,
// update the classifiers, run the HR matching, program the next state —
// must not allocate. The machine is built without the solve cache on
// purpose: cache misses store freshly-allocated entries, which is a
// per-machine memoization cost, not a per-period controller cost, and
// would drown the signal this test exists to catch.
func TestManagerPeriodAllocationGuard(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HBoth, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	// An effectively infinite retry budget keeps the manager in the
	// exploration phase for the whole measurement (repeated states perturb
	// instead of going idle), so every measured iteration runs the same path.
	params.Theta = 1 << 30
	mgr, err := NewManager(m, params, ref, Envelope{LoWay: 0, Ways: cfg.LLCWays},
		rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	// The score memo is disabled for the same reason the solve cache is:
	// each newly visited state stores a freshly-allocated rates entry —
	// a per-state memoization cost, not a per-period controller cost —
	// and the infinite retry budget above visits new states constantly.
	mgr.Features.ScoreMemo = false
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	// Warm the per-period scratch, then pre-grow the ExploreTimes journal so
	// its amortized append growth doesn't leak into the measurement.
	for i := 0; i < 8; i++ {
		if _, err := mgr.ExploreStep(); err != nil {
			t.Fatal(err)
		}
	}
	times := make([]time.Duration, len(mgr.ExploreTimes), len(mgr.ExploreTimes)+256)
	copy(times, mgr.ExploreTimes)
	mgr.ExploreTimes = times

	const budget = 2 // slack for the runtime; the period itself must be clean
	avg := testing.AllocsPerRun(100, func() {
		if _, err := mgr.ExploreStep(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Errorf("ExploreStep allocates %.1f times per period, budget is %d", avg, budget)
	}
	if mgr.Phase() != PhaseExplore {
		t.Fatalf("manager left exploration during the guard run: %v", mgr.Phase())
	}
}

// TestGetNextSystemStateAllocationGuard pins the allocator itself: with a
// warm destination state and scratch, one HR matching step over a mix of
// producers, consumers, and dual-resource participants allocates nothing.
func TestGetNextSystemStateAllocationGuard(t *testing.T) {
	cur := AllocState{Ways: []int{4, 3, 2, 2}, MBA: []int{40, 60, 80, 100}}
	apps := []AppInfo{
		{LLCState: Demand, MBAState: Demand, Slowdown: 1.9},
		{LLCState: Supply, MBAState: Supply, Slowdown: 1.1},
		{LLCState: Demand, MBAState: Maintain, Slowdown: 1.6},
		{LLCState: Maintain, MBAState: Supply, Slowdown: 1.2},
	}
	rng := rand.New(rand.NewSource(7))
	var next AllocState
	var sc AllocatorScratch
	if err := GetNextSystemStateInto(&next, cur, apps, 11, rng, &sc); err != nil {
		t.Fatal(err)
	}
	const budget = 2
	avg := testing.AllocsPerRun(100, func() {
		if err := GetNextSystemStateInto(&next, cur, apps, 11, rng, &sc); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Errorf("GetNextSystemStateInto allocates %.1f times per call, budget is %d", avg, budget)
	}
}
