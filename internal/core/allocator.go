package core

import (
	"fmt"
	"math/rand"

	"repro/internal/membw"
)

// AllocState is the controller's view of the system state S = {s_0 … s_n}:
// per-application LLC way counts and MBA levels (§2.3). Way counts are
// converted to contiguous exclusive CBMs only at the actuation boundary.
type AllocState struct {
	Ways []int
	MBA  []int
}

// Clone deep-copies the state.
func (s AllocState) Clone() AllocState {
	w := make([]int, len(s.Ways))
	m := make([]int, len(s.MBA))
	copy(w, s.Ways)
	copy(m, s.MBA)
	return AllocState{Ways: w, MBA: m}
}

// CopyFrom makes s an element-wise copy of o in place, reusing s's
// backing arrays when their capacity suffices. It is the allocation-free
// alternative to Clone for states that live across control periods (the
// manager's current/best/next states are all reused this way).
//
//copart:noalloc
func (s *AllocState) CopyFrom(o AllocState) {
	if cap(s.Ways) < len(o.Ways) {
		s.Ways = make([]int, len(o.Ways))
	}
	s.Ways = s.Ways[:len(o.Ways)]
	copy(s.Ways, o.Ways)
	if cap(s.MBA) < len(o.MBA) {
		s.MBA = make([]int, len(o.MBA))
	}
	s.MBA = s.MBA[:len(o.MBA)]
	copy(s.MBA, o.MBA)
}

// Equal reports whether two states are identical.
func (s AllocState) Equal(o AllocState) bool {
	if len(s.Ways) != len(o.Ways) || len(s.MBA) != len(o.MBA) {
		return false
	}
	for i := range s.Ways {
		if s.Ways[i] != o.Ways[i] {
			return false
		}
	}
	for i := range s.MBA {
		if s.MBA[i] != o.MBA[i] {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: each application holds at least
// one way, way counts sum to at most totalWays, and MBA levels are legal.
func (s AllocState) Validate(totalWays int) error {
	if len(s.Ways) != len(s.MBA) {
		return fmt.Errorf("core: state has %d way entries, %d MBA entries", len(s.Ways), len(s.MBA))
	}
	sum := 0
	for i, w := range s.Ways {
		if w < 1 {
			return fmt.Errorf("core: app %d holds %d ways", i, w)
		}
		sum += w
		if err := membw.ValidateLevel(s.MBA[i]); err != nil {
			return fmt.Errorf("core: app %d: %w", i, err)
		}
	}
	if sum > totalWays {
		return fmt.Errorf("core: %d ways allocated, %d available", sum, totalWays)
	}
	return nil
}

// AppInfo is the classifier output plus the measured slowdown for one
// application, the inputs of Algorithm 2.
type AppInfo struct {
	LLCState State
	MBAState State
	Slowdown float64
}

// resourceType indexes the three "hospitals" of the HR formulation: the
// pools of applications willing to supply LLC ways, MBA steps, or either.
type resourceType int

const (
	resLLC resourceType = iota
	resMBA
	resANY
	numResourceTypes
)

// participant tracks one consumer application through the matching.
// The preference list is a fixed array plus a cursor (never more than
// three entries: a specific pool or two, then ANY), so participants can
// live in a reusable scratch slice without per-consumer allocations.
type participant struct {
	app    int
	prefs  [3]resourceType // preference list, most preferred first
	nprefs int             // number of valid prefs entries
	next   int             // cursor: next preference to try
	// demanded is the consumer's own resource need: resLLC, resMBA, or
	// resANY when it demands both.
	demanded resourceType
}

// AllocatorScratch holds the reusable working set of
// GetNextSystemStateInto: the producer pools, the consumer list, and the
// tentative admissions. A zero value is ready to use; after the first
// few calls the buffers reach steady-state size and every subsequent
// allocation step is allocation-free. A scratch must not be shared
// between concurrent callers.
type AllocatorScratch struct {
	producers [numResourceTypes][]int
	consumers []participant
	admitted  [numResourceTypes][]int // indices into consumers
}

// GetNextSystemState implements Algorithm 2: one step of the
// instability-chaining HR matching between resource producers and
// consumers, returning the next system state.
//
// Producers are applications whose classifier says Supply and that can
// actually give a unit (more than one way; MBA above the minimum).
// Consumers are applications whose classifier says Demand and that can
// absorb a unit. Preference lists follow §5.4.2: a single-resource
// consumer prefers the matching specific pool over the ANY pool (to
// maximize match size); a dual consumer randomizes which specific pool it
// tries first (the paper's deliberate randomness against local optima).
// Hospital preferences are the slowdown order — higher slowdown is served
// first; when a pool is oversubscribed the least-slowed tentative consumer
// is displaced and chains to its next preference.
//
// The returned state is freshly allocated; per-period callers should use
// GetNextSystemStateInto with reused destination and scratch instead.
func GetNextSystemState(cur AllocState, apps []AppInfo, totalWays int, rng *rand.Rand) (AllocState, error) {
	var next AllocState
	var sc AllocatorScratch
	if err := GetNextSystemStateInto(&next, cur, apps, totalWays, rng, &sc); err != nil {
		return AllocState{}, err
	}
	return next, nil
}

// GetNextSystemStateInto is GetNextSystemState writing the next state
// into next (overwritten via CopyFrom, so its backing arrays are reused)
// with all intermediate bookkeeping in sc. It draws from rng in exactly
// the order GetNextSystemState does, so the two are interchangeable
// without disturbing seeded runs. next must not alias cur's slices.
//
//copart:noalloc
func GetNextSystemStateInto(next *AllocState, cur AllocState, apps []AppInfo, totalWays int, rng *rand.Rand, sc *AllocatorScratch) error {
	return getNextSystemStateInto(next, cur, apps, totalWays, rng, sc, false)
}

// getNextSystemStateInto is the matching body with optional input/output
// validation elision. trusted is set only by the manager's period loop,
// where cur is always a state this allocator (or profiling) produced and
// validated already — re-walking every app's way count and MBA level
// twice per control period was measurable at fleet scale. External
// callers stay fully checked.
//
//copart:noalloc
func getNextSystemStateInto(next *AllocState, cur AllocState, apps []AppInfo, totalWays int, rng *rand.Rand, sc *AllocatorScratch, trusted bool) error {
	if len(apps) != len(cur.Ways) {
		return fmt.Errorf("core: %d apps, state for %d", len(apps), len(cur.Ways))
	}
	if !trusted {
		if err := cur.Validate(totalWays); err != nil {
			return err
		}
	}
	if rng == nil {
		return fmt.Errorf("core: nil rng")
	}
	if sc == nil {
		return fmt.Errorf("core: nil allocator scratch")
	}
	next.CopyFrom(cur)
	for t := range sc.producers {
		sc.producers[t] = sc.producers[t][:0]
		sc.admitted[t] = sc.admitted[t][:0]
	}
	sc.consumers = sc.consumers[:0]

	// Build the producer pools (lines 2–5 of Algorithm 2).
	for i, a := range apps {
		canWay := a.LLCState == Supply && cur.Ways[i] > 1
		canMBA := a.MBAState == Supply && cur.MBA[i] > membw.MinLevel
		switch {
		case canWay && canMBA:
			sc.producers[resANY] = append(sc.producers[resANY], i)
		case canWay:
			sc.producers[resLLC] = append(sc.producers[resLLC], i)
		case canMBA:
			sc.producers[resMBA] = append(sc.producers[resMBA], i)
		}
	}

	// Build the consumers with their preference lists (line 6).
	for i, a := range apps {
		wantsLLC := a.LLCState == Demand
		wantsMBA := a.MBAState == Demand && cur.MBA[i] < membw.MaxLevel
		switch {
		case wantsLLC && wantsMBA:
			first, second := resLLC, resMBA
			if rng.Intn(2) == 0 {
				first, second = second, first
			}
			sc.consumers = append(sc.consumers, participant{
				app: i, demanded: resANY,
				prefs: [3]resourceType{first, second, resANY}, nprefs: 3,
			})
		case wantsLLC:
			sc.consumers = append(sc.consumers, participant{
				app: i, demanded: resLLC,
				prefs: [3]resourceType{resLLC, resANY}, nprefs: 2,
			})
		case wantsMBA:
			sc.consumers = append(sc.consumers, participant{
				app: i, demanded: resMBA,
				prefs: [3]resourceType{resMBA, resANY}, nprefs: 2,
			})
		}
	}

	// Step 1 (lines 7–18): tentatively place each consumer, displacing the
	// least-slowed holder when a pool oversubscribes (instability
	// chaining).
	for ci := range sc.consumers {
		cursor := ci
		for {
			c := &sc.consumers[cursor]
			if c.next >= c.nprefs {
				break
			}
			t := c.prefs[c.next]
			c.next++
			sc.admitted[t] = append(sc.admitted[t], cursor)
			if len(sc.admitted[t]) > len(sc.producers[t]) {
				// Displace the tentative consumer with the lowest
				// slowdown — higher slowdowns deserve the resource.
				victimIdx := 0
				for j, cand := range sc.admitted[t] {
					if apps[sc.consumers[cand].app].Slowdown <
						apps[sc.consumers[sc.admitted[t][victimIdx]].app].Slowdown {
						victimIdx = j
					}
				}
				victim := sc.admitted[t][victimIdx]
				sc.admitted[t] = append(sc.admitted[t][:victimIdx], sc.admitted[t][victimIdx+1:]...)
				cursor = victim
				continue
			}
			break
		}
	}

	// Step 2 (lines 19–29): reclaim one unit from the least-slowed
	// producer of each matched pool and grant it to the consumer.
	for t := resLLC; t < numResourceTypes; t++ {
		for _, ci := range sc.admitted[t] {
			c := &sc.consumers[ci]
			var rt resourceType
			switch {
			case t != resANY:
				rt = t
			case c.demanded != resANY:
				rt = c.demanded
			default:
				rt = resLLC
				if rng.Intn(2) == 0 {
					rt = resMBA
				}
			}
			pool := sc.producers[t]
			if len(pool) == 0 {
				// Step 1 guarantees |consumers| ≤ |producers| per pool;
				// an empty pool here is an internal invariant violation.
				return fmt.Errorf("core: pool %d drained with consumers pending", t)
			}
			minIdx := 0
			for j, p := range pool {
				if apps[p].Slowdown < apps[pool[minIdx]].Slowdown {
					minIdx = j
				}
			}
			p := pool[minIdx]
			sc.producers[t] = append(pool[:minIdx], pool[minIdx+1:]...)

			switch rt {
			case resLLC:
				next.Ways[p]--
				next.Ways[c.app]++
			case resMBA:
				next.MBA[p] -= membw.Granularity
				next.MBA[c.app] += membw.Granularity
				if next.MBA[c.app] > membw.MaxLevel {
					next.MBA[c.app] = membw.MaxLevel
				}
			}
		}
	}
	if !trusted {
		// The matching conserves resources by construction (every grant
		// pairs a reclaim, and pool membership enforces the bounds), so
		// the output check is a guard for external callers, not an
		// algorithmic need.
		if err := next.Validate(totalWays); err != nil {
			return fmt.Errorf("core: produced invalid state: %w", err)
		}
	}
	return nil
}

// NeighborState returns a random valid single-unit perturbation of cur:
// either one LLC way moved between two applications or one application's
// MBA level nudged one step. Algorithm 1 uses it to escape repeated
// states (lines 11–14). When no perturbation is possible (single app at
// the boundary), the input state is returned unchanged. The returned
// state is freshly allocated; per-period callers should use
// NeighborStateInto with a reused destination.
func NeighborState(cur AllocState, totalWays int, rng *rand.Rand) (AllocState, error) {
	var next AllocState
	if err := neighborStateInto(&next, cur, totalWays, rng, true, true); err != nil {
		return AllocState{}, err
	}
	return next, nil
}

// NeighborStateInto is NeighborState writing the perturbed state into
// next (overwritten via CopyFrom). It draws from rng in exactly the
// order NeighborState does. next must not alias cur's slices.
//
//copart:noalloc
func NeighborStateInto(next *AllocState, cur AllocState, totalWays int, rng *rand.Rand) error {
	return neighborStateInto(next, cur, totalWays, rng, true, true)
}

// neighborStateInto optionally restricts which resource may be perturbed
// — the CAT-only and MBA-only baselines freeze one axis.
//
//copart:noalloc
func neighborStateInto(next *AllocState, cur AllocState, totalWays int, rng *rand.Rand, allowWays, allowMBA bool) error {
	return neighborStateIntoTrusted(next, cur, totalWays, rng, allowWays, allowMBA, false)
}

// neighborStateIntoTrusted elides the input validation walk for the
// manager's period loop (see getNextSystemStateInto); the perturbation
// itself only ever moves a unit a validated state could spare.
//
//copart:noalloc
func neighborStateIntoTrusted(next *AllocState, cur AllocState, totalWays int, rng *rand.Rand, allowWays, allowMBA, trusted bool) error {
	if !trusted {
		if err := cur.Validate(totalWays); err != nil {
			return err
		}
	}
	if rng == nil {
		return fmt.Errorf("core: nil rng")
	}
	n := len(cur.Ways)
	if n == 0 || (!allowWays && !allowMBA) {
		next.CopyFrom(cur)
		return nil
	}
	const attempts = 64
	for try := 0; try < attempts; try++ {
		move := rng.Intn(3)
		if !allowWays && move == 0 {
			continue
		}
		if !allowMBA && move != 0 {
			continue
		}
		switch move {
		case 0: // move a way
			if n < 2 {
				continue
			}
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to || cur.Ways[from] <= 1 {
				continue
			}
			next.CopyFrom(cur)
			next.Ways[from]--
			next.Ways[to]++
		case 1: // raise an MBA level
			i := rng.Intn(n)
			if cur.MBA[i] >= membw.MaxLevel {
				continue
			}
			next.CopyFrom(cur)
			next.MBA[i] += membw.Granularity
		default: // lower an MBA level
			i := rng.Intn(n)
			if cur.MBA[i] <= membw.MinLevel {
				continue
			}
			next.CopyFrom(cur)
			next.MBA[i] -= membw.Granularity
		}
		return nil
	}
	next.CopyFrom(cur)
	return nil
}
