package core

import (
	"fmt"
	"math/rand"

	"repro/internal/membw"
)

// AllocState is the controller's view of the system state S = {s_0 … s_n}:
// per-application LLC way counts and MBA levels (§2.3). Way counts are
// converted to contiguous exclusive CBMs only at the actuation boundary.
type AllocState struct {
	Ways []int
	MBA  []int
}

// Clone deep-copies the state.
func (s AllocState) Clone() AllocState {
	w := make([]int, len(s.Ways))
	m := make([]int, len(s.MBA))
	copy(w, s.Ways)
	copy(m, s.MBA)
	return AllocState{Ways: w, MBA: m}
}

// Equal reports whether two states are identical.
func (s AllocState) Equal(o AllocState) bool {
	if len(s.Ways) != len(o.Ways) || len(s.MBA) != len(o.MBA) {
		return false
	}
	for i := range s.Ways {
		if s.Ways[i] != o.Ways[i] {
			return false
		}
	}
	for i := range s.MBA {
		if s.MBA[i] != o.MBA[i] {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: each application holds at least
// one way, way counts sum to at most totalWays, and MBA levels are legal.
func (s AllocState) Validate(totalWays int) error {
	if len(s.Ways) != len(s.MBA) {
		return fmt.Errorf("core: state has %d way entries, %d MBA entries", len(s.Ways), len(s.MBA))
	}
	sum := 0
	for i, w := range s.Ways {
		if w < 1 {
			return fmt.Errorf("core: app %d holds %d ways", i, w)
		}
		sum += w
		if err := membw.ValidateLevel(s.MBA[i]); err != nil {
			return fmt.Errorf("core: app %d: %w", i, err)
		}
	}
	if sum > totalWays {
		return fmt.Errorf("core: %d ways allocated, %d available", sum, totalWays)
	}
	return nil
}

// AppInfo is the classifier output plus the measured slowdown for one
// application, the inputs of Algorithm 2.
type AppInfo struct {
	LLCState State
	MBAState State
	Slowdown float64
}

// resourceType indexes the three "hospitals" of the HR formulation: the
// pools of applications willing to supply LLC ways, MBA steps, or either.
type resourceType int

const (
	resLLC resourceType = iota
	resMBA
	resANY
	numResourceTypes
)

// participant tracks one consumer application through the matching.
type participant struct {
	app   int
	prefs []resourceType // remaining preference list, most preferred first
	// demanded is the consumer's own resource need: resLLC, resMBA, or
	// resANY when it demands both.
	demanded resourceType
}

// GetNextSystemState implements Algorithm 2: one step of the
// instability-chaining HR matching between resource producers and
// consumers, returning the next system state.
//
// Producers are applications whose classifier says Supply and that can
// actually give a unit (more than one way; MBA above the minimum).
// Consumers are applications whose classifier says Demand and that can
// absorb a unit. Preference lists follow §5.4.2: a single-resource
// consumer prefers the matching specific pool over the ANY pool (to
// maximize match size); a dual consumer randomizes which specific pool it
// tries first (the paper's deliberate randomness against local optima).
// Hospital preferences are the slowdown order — higher slowdown is served
// first; when a pool is oversubscribed the least-slowed tentative consumer
// is displaced and chains to its next preference.
func GetNextSystemState(cur AllocState, apps []AppInfo, totalWays int, rng *rand.Rand) (AllocState, error) {
	if len(apps) != len(cur.Ways) {
		return AllocState{}, fmt.Errorf("core: %d apps, state for %d", len(apps), len(cur.Ways))
	}
	if err := cur.Validate(totalWays); err != nil {
		return AllocState{}, err
	}
	if rng == nil {
		return AllocState{}, fmt.Errorf("core: nil rng")
	}
	next := cur.Clone()

	// Build the producer pools (lines 2–5 of Algorithm 2).
	producers := make([][]int, numResourceTypes)
	for i, a := range apps {
		canWay := a.LLCState == Supply && cur.Ways[i] > 1
		canMBA := a.MBAState == Supply && cur.MBA[i] > membw.MinLevel
		switch {
		case canWay && canMBA:
			producers[resANY] = append(producers[resANY], i)
		case canWay:
			producers[resLLC] = append(producers[resLLC], i)
		case canMBA:
			producers[resMBA] = append(producers[resMBA], i)
		}
	}

	// Build the consumers with their preference lists (line 6).
	var consumers []*participant
	for i, a := range apps {
		wantsLLC := a.LLCState == Demand
		wantsMBA := a.MBAState == Demand && cur.MBA[i] < membw.MaxLevel
		switch {
		case wantsLLC && wantsMBA:
			first, second := resLLC, resMBA
			if rng.Intn(2) == 0 {
				first, second = second, first
			}
			consumers = append(consumers, &participant{
				app: i, demanded: resANY,
				prefs: []resourceType{first, second, resANY},
			})
		case wantsLLC:
			consumers = append(consumers, &participant{
				app: i, demanded: resLLC,
				prefs: []resourceType{resLLC, resANY},
			})
		case wantsMBA:
			consumers = append(consumers, &participant{
				app: i, demanded: resMBA,
				prefs: []resourceType{resMBA, resANY},
			})
		}
	}

	// Step 1 (lines 7–18): tentatively place each consumer, displacing the
	// least-slowed holder when a pool oversubscribes (instability
	// chaining).
	admitted := make([][]*participant, numResourceTypes)
	for _, c := range consumers {
		consumer := c
		for {
			if len(consumer.prefs) == 0 {
				break
			}
			t := consumer.prefs[0]
			consumer.prefs = consumer.prefs[1:]
			admitted[t] = append(admitted[t], consumer)
			if len(admitted[t]) > len(producers[t]) {
				// Displace the tentative consumer with the lowest
				// slowdown — higher slowdowns deserve the resource.
				victimIdx := 0
				for j, cand := range admitted[t] {
					if apps[cand.app].Slowdown < apps[admitted[t][victimIdx].app].Slowdown {
						victimIdx = j
					}
				}
				victim := admitted[t][victimIdx]
				admitted[t] = append(admitted[t][:victimIdx], admitted[t][victimIdx+1:]...)
				consumer = victim
				continue
			}
			break
		}
	}

	// Step 2 (lines 19–29): reclaim one unit from the least-slowed
	// producer of each matched pool and grant it to the consumer.
	for t := resLLC; t < numResourceTypes; t++ {
		for _, c := range admitted[t] {
			var rt resourceType
			switch {
			case t != resANY:
				rt = t
			case c.demanded != resANY:
				rt = c.demanded
			default:
				rt = resLLC
				if rng.Intn(2) == 0 {
					rt = resMBA
				}
			}
			pool := producers[t]
			if len(pool) == 0 {
				// Step 1 guarantees |consumers| ≤ |producers| per pool;
				// an empty pool here is an internal invariant violation.
				return AllocState{}, fmt.Errorf("core: pool %d drained with consumers pending", t)
			}
			minIdx := 0
			for j, p := range pool {
				if apps[p].Slowdown < apps[pool[minIdx]].Slowdown {
					minIdx = j
				}
			}
			p := pool[minIdx]
			producers[t] = append(pool[:minIdx], pool[minIdx+1:]...)

			switch rt {
			case resLLC:
				next.Ways[p]--
				next.Ways[c.app]++
			case resMBA:
				next.MBA[p] -= membw.Granularity
				next.MBA[c.app] += membw.Granularity
				if next.MBA[c.app] > membw.MaxLevel {
					next.MBA[c.app] = membw.MaxLevel
				}
			}
		}
	}
	if err := next.Validate(totalWays); err != nil {
		return AllocState{}, fmt.Errorf("core: produced invalid state: %w", err)
	}
	return next, nil
}

// NeighborState returns a random valid single-unit perturbation of cur:
// either one LLC way moved between two applications or one application's
// MBA level nudged one step. Algorithm 1 uses it to escape repeated
// states (lines 11–14). When no perturbation is possible (single app at
// the boundary), the input state is returned unchanged.
func NeighborState(cur AllocState, totalWays int, rng *rand.Rand) (AllocState, error) {
	return neighborState(cur, totalWays, rng, true, true)
}

// neighborState optionally restricts which resource may be perturbed —
// the CAT-only and MBA-only baselines freeze one axis.
func neighborState(cur AllocState, totalWays int, rng *rand.Rand, allowWays, allowMBA bool) (AllocState, error) {
	if err := cur.Validate(totalWays); err != nil {
		return AllocState{}, err
	}
	if rng == nil {
		return AllocState{}, fmt.Errorf("core: nil rng")
	}
	n := len(cur.Ways)
	if n == 0 || (!allowWays && !allowMBA) {
		return cur, nil
	}
	const attempts = 64
	for try := 0; try < attempts; try++ {
		next := cur.Clone()
		move := rng.Intn(3)
		if !allowWays && move == 0 {
			continue
		}
		if !allowMBA && move != 0 {
			continue
		}
		switch move {
		case 0: // move a way
			if n < 2 {
				continue
			}
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to || next.Ways[from] <= 1 {
				continue
			}
			next.Ways[from]--
			next.Ways[to]++
		case 1: // raise an MBA level
			i := rng.Intn(n)
			if next.MBA[i] >= membw.MaxLevel {
				continue
			}
			next.MBA[i] += membw.Granularity
		default: // lower an MBA level
			i := rng.Intn(n)
			if next.MBA[i] <= membw.MinLevel {
				continue
			}
			next.MBA[i] -= membw.Granularity
		}
		return next, nil
	}
	return cur, nil
}
