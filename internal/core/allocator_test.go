package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/membw"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestAllocStateValidate(t *testing.T) {
	ok := AllocState{Ways: []int{5, 3, 2, 1}, MBA: []int{100, 50, 20, 10}}
	if err := ok.Validate(11); err != nil {
		t.Fatal(err)
	}
	bads := []struct {
		name string
		st   AllocState
	}{
		{"length mismatch", AllocState{Ways: []int{1}, MBA: []int{10, 10}}},
		{"zero ways", AllocState{Ways: []int{0, 2}, MBA: []int{10, 10}}},
		{"oversubscribed", AllocState{Ways: []int{6, 6}, MBA: []int{10, 10}}},
		{"bad mba", AllocState{Ways: []int{1, 1}, MBA: []int{10, 15}}},
	}
	for _, b := range bads {
		if err := b.st.Validate(11); err == nil {
			t.Errorf("%s: should be invalid", b.name)
		}
	}
}

func TestAllocStateCloneEqual(t *testing.T) {
	a := AllocState{Ways: []int{2, 3}, MBA: []int{40, 60}}
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone should equal original")
	}
	b.Ways[0] = 9
	if a.Ways[0] == 9 {
		t.Error("clone must not share storage")
	}
	if a.Equal(b) {
		t.Error("modified clone should differ")
	}
	if a.Equal(AllocState{Ways: []int{2}, MBA: []int{40}}) {
		t.Error("different lengths should differ")
	}
	c := a.Clone()
	c.MBA[1] = 100
	if a.Equal(c) {
		t.Error("MBA difference should be detected")
	}
}

func TestGetNextSystemStateTransfersWay(t *testing.T) {
	// App 0 supplies LLC, app 1 demands it and is more slowed.
	cur := AllocState{Ways: []int{6, 5}, MBA: []int{50, 50}}
	apps := []AppInfo{
		{LLCState: Supply, MBAState: Maintain, Slowdown: 1.1},
		{LLCState: Demand, MBAState: Maintain, Slowdown: 2.0},
	}
	next, err := GetNextSystemState(cur, apps, 11, rng())
	if err != nil {
		t.Fatal(err)
	}
	if next.Ways[0] != 5 || next.Ways[1] != 6 {
		t.Errorf("expected one way to move 0→1, got %v", next.Ways)
	}
	if next.MBA[0] != 50 || next.MBA[1] != 50 {
		t.Errorf("MBA should be untouched, got %v", next.MBA)
	}
}

func TestGetNextSystemStateTransfersMBA(t *testing.T) {
	cur := AllocState{Ways: []int{6, 5}, MBA: []int{50, 50}}
	apps := []AppInfo{
		{LLCState: Maintain, MBAState: Supply, Slowdown: 1.0},
		{LLCState: Maintain, MBAState: Demand, Slowdown: 1.8},
	}
	next, err := GetNextSystemState(cur, apps, 11, rng())
	if err != nil {
		t.Fatal(err)
	}
	if next.MBA[0] != 40 || next.MBA[1] != 60 {
		t.Errorf("expected one MBA step 0→1, got %v", next.MBA)
	}
	if next.Ways[0] != 6 || next.Ways[1] != 5 {
		t.Errorf("ways should be untouched, got %v", next.Ways)
	}
}

func TestGetNextSystemStateNoProducersNoChange(t *testing.T) {
	cur := AllocState{Ways: []int{6, 5}, MBA: []int{50, 50}}
	apps := []AppInfo{
		{LLCState: Demand, MBAState: Demand, Slowdown: 2.0},
		{LLCState: Demand, MBAState: Demand, Slowdown: 2.1},
	}
	next, err := GetNextSystemState(cur, apps, 11, rng())
	if err != nil {
		t.Fatal(err)
	}
	if !next.Equal(cur) {
		t.Errorf("no producers: state should be unchanged, got %+v", next)
	}
}

func TestGetNextSystemStateLastWayNotSupplied(t *testing.T) {
	// A Supply app holding a single way cannot give it (min 1 way/CLOS).
	cur := AllocState{Ways: []int{1, 10}, MBA: []int{50, 50}}
	apps := []AppInfo{
		{LLCState: Supply, MBAState: Maintain, Slowdown: 1.0},
		{LLCState: Demand, MBAState: Maintain, Slowdown: 2.0},
	}
	next, err := GetNextSystemState(cur, apps, 11, rng())
	if err != nil {
		t.Fatal(err)
	}
	if !next.Equal(cur) {
		t.Errorf("single-way supplier should not yield, got %+v", next)
	}
}

func TestGetNextSystemStateMinMBANotSupplied(t *testing.T) {
	cur := AllocState{Ways: []int{6, 5}, MBA: []int{10, 50}}
	apps := []AppInfo{
		{LLCState: Maintain, MBAState: Supply, Slowdown: 1.0},
		{LLCState: Maintain, MBAState: Demand, Slowdown: 2.0},
	}
	next, err := GetNextSystemState(cur, apps, 11, rng())
	if err != nil {
		t.Fatal(err)
	}
	if !next.Equal(cur) {
		t.Errorf("min-MBA supplier should not yield, got %+v", next)
	}
}

func TestGetNextSystemStateFavorsHighestSlowdown(t *testing.T) {
	// One producer, two LLC demanders: the more slowed one must win.
	cur := AllocState{Ways: []int{5, 3, 3}, MBA: []int{50, 50, 50}}
	apps := []AppInfo{
		{LLCState: Supply, MBAState: Maintain, Slowdown: 1.0},
		{LLCState: Demand, MBAState: Maintain, Slowdown: 1.5},
		{LLCState: Demand, MBAState: Maintain, Slowdown: 3.0},
	}
	next, err := GetNextSystemState(cur, apps, 11, rng())
	if err != nil {
		t.Fatal(err)
	}
	if next.Ways[2] != 4 {
		t.Errorf("most slowed demander should receive the way: %v", next.Ways)
	}
	if next.Ways[1] != 3 {
		t.Errorf("less slowed demander should not: %v", next.Ways)
	}
}

func TestGetNextSystemStateReclaimsFromLeastSlowed(t *testing.T) {
	// Two producers, one consumer: the way comes from the LEAST slowed
	// producer (second step of Algorithm 2).
	cur := AllocState{Ways: []int{4, 4, 3}, MBA: []int{50, 50, 50}}
	apps := []AppInfo{
		{LLCState: Supply, MBAState: Maintain, Slowdown: 1.4},
		{LLCState: Supply, MBAState: Maintain, Slowdown: 1.1},
		{LLCState: Demand, MBAState: Maintain, Slowdown: 2.5},
	}
	next, err := GetNextSystemState(cur, apps, 11, rng())
	if err != nil {
		t.Fatal(err)
	}
	if next.Ways[1] != 3 {
		t.Errorf("least slowed producer should yield: %v", next.Ways)
	}
	if next.Ways[0] != 4 {
		t.Errorf("more slowed producer should keep its ways: %v", next.Ways)
	}
	if next.Ways[2] != 4 {
		t.Errorf("consumer should gain: %v", next.Ways)
	}
}

func TestGetNextSystemStateANYProducerServesEither(t *testing.T) {
	// App 0 supplies both; app 1 demands only MBA. The ANY pool serves it.
	cur := AllocState{Ways: []int{6, 5}, MBA: []int{50, 50}}
	apps := []AppInfo{
		{LLCState: Supply, MBAState: Supply, Slowdown: 1.0},
		{LLCState: Maintain, MBAState: Demand, Slowdown: 2.0},
	}
	next, err := GetNextSystemState(cur, apps, 11, rng())
	if err != nil {
		t.Fatal(err)
	}
	if next.MBA[1] != 60 || next.MBA[0] != 40 {
		t.Errorf("ANY producer should supply the MBA demand: %+v", next)
	}
}

func TestGetNextSystemStateDualConsumer(t *testing.T) {
	// A dual demander against a dual supplier receives exactly one unit
	// (of either kind) per round.
	cur := AllocState{Ways: []int{6, 5}, MBA: []int{50, 50}}
	apps := []AppInfo{
		{LLCState: Supply, MBAState: Supply, Slowdown: 1.0},
		{LLCState: Demand, MBAState: Demand, Slowdown: 2.0},
	}
	next, err := GetNextSystemState(cur, apps, 11, rng())
	if err != nil {
		t.Fatal(err)
	}
	wayMoved := next.Ways[1] == 6 && next.Ways[0] == 5
	mbaMoved := next.MBA[1] == 60 && next.MBA[0] == 40
	if wayMoved == mbaMoved { // exactly one must hold
		t.Errorf("dual consumer should receive exactly one unit: %+v", next)
	}
}

func TestGetNextSystemStateValidation(t *testing.T) {
	cur := AllocState{Ways: []int{6, 5}, MBA: []int{50, 50}}
	if _, err := GetNextSystemState(cur, []AppInfo{{}}, 11, rng()); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := GetNextSystemState(cur, make([]AppInfo, 2), 11, nil); err == nil {
		t.Error("nil rng should error")
	}
	bad := AllocState{Ways: []int{0, 5}, MBA: []int{50, 50}}
	if _, err := GetNextSystemState(bad, make([]AppInfo, 2), 11, rng()); err == nil {
		t.Error("invalid current state should error")
	}
}

// Property: the allocator always returns a valid state that conserves the
// total way count, changes each application's ways by at most 1 and MBA
// by at most one step, and never violates the floors/ceilings.
func TestGetNextSystemStateProperty(t *testing.T) {
	f := func(seed int64, nRaw, statesRaw uint32) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%5 + 2 // 2..6 apps
		totalWays := 11
		// Random valid current state.
		ways := make([]int, n)
		rem := totalWays - n
		for i := range ways {
			ways[i] = 1
		}
		for rem > 0 {
			ways[r.Intn(n)]++
			rem--
		}
		mba := make([]int, n)
		for i := range mba {
			mba[i] = (r.Intn(10) + 1) * 10
		}
		cur := AllocState{Ways: ways, MBA: mba}
		apps := make([]AppInfo, n)
		for i := range apps {
			apps[i] = AppInfo{
				LLCState: State(r.Intn(3)),
				MBAState: State(r.Intn(3)),
				Slowdown: 1 + r.Float64()*3,
			}
		}
		next, err := GetNextSystemState(cur, apps, totalWays, r)
		if err != nil {
			return false
		}
		if err := next.Validate(totalWays); err != nil {
			return false
		}
		sumBefore, sumAfter := 0, 0
		for i := range ways {
			sumBefore += cur.Ways[i]
			sumAfter += next.Ways[i]
			if abs(next.Ways[i]-cur.Ways[i]) > 1 {
				return false
			}
			if abs(next.MBA[i]-cur.MBA[i]) > membw.Granularity {
				return false
			}
			// Supply-side floors.
			if next.Ways[i] < 1 || next.MBA[i] < membw.MinLevel || next.MBA[i] > membw.MaxLevel {
				return false
			}
			// Producers only lose, consumers only gain.
			if next.Ways[i] < cur.Ways[i] && apps[i].LLCState != Supply {
				return false
			}
			if next.Ways[i] > cur.Ways[i] && apps[i].LLCState != Demand {
				return false
			}
			if next.MBA[i] < cur.MBA[i] && apps[i].MBAState != Supply {
				return false
			}
			if next.MBA[i] > cur.MBA[i] && apps[i].MBAState != Demand {
				return false
			}
		}
		return sumBefore == sumAfter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: the most-slowed consumer is never starved — whenever an
// application demands a resource some producer can supply, the demander
// with the highest slowdown receives a unit (Algorithm 2's entire point:
// favor the most slowed).
func TestMostSlowedConsumerNeverStarvedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(5) + 2
		totalWays := 11
		ways := make([]int, n)
		rem := totalWays - n
		for i := range ways {
			ways[i] = 1
		}
		for rem > 0 {
			ways[r.Intn(n)]++
			rem--
		}
		mba := make([]int, n)
		for i := range mba {
			mba[i] = (r.Intn(10) + 1) * 10
		}
		cur := AllocState{Ways: ways, MBA: mba}
		apps := make([]AppInfo, n)
		for i := range apps {
			apps[i] = AppInfo{
				LLCState: State(r.Intn(3)),
				MBAState: State(r.Intn(3)),
				Slowdown: 1 + r.Float64()*3,
			}
		}
		// Find the most-slowed app that demands something suppliable.
		canSupplyLLC, canSupplyMBA := false, false
		for i, a := range apps {
			if a.LLCState == Supply && cur.Ways[i] > 1 {
				canSupplyLLC = true
			}
			if a.MBAState == Supply && cur.MBA[i] > membw.MinLevel {
				canSupplyMBA = true
			}
		}
		best, bestSlow := -1, 0.0
		for i, a := range apps {
			demandsLLC := a.LLCState == Demand && canSupplyLLC
			demandsMBA := a.MBAState == Demand && cur.MBA[i] < membw.MaxLevel && canSupplyMBA
			if (demandsLLC || demandsMBA) && a.Slowdown > bestSlow {
				best, bestSlow = i, a.Slowdown
			}
		}
		next, err := GetNextSystemState(cur, apps, totalWays, r)
		if err != nil {
			return false
		}
		if best < 0 {
			return true // nothing demandable
		}
		return next.Ways[best] > cur.Ways[best] || next.MBA[best] > cur.MBA[best]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestNeighborState(t *testing.T) {
	cur := AllocState{Ways: []int{5, 6}, MBA: []int{50, 50}}
	r := rng()
	distinct := 0
	for i := 0; i < 50; i++ {
		next, err := NeighborState(cur, 11, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := next.Validate(11); err != nil {
			t.Fatalf("neighbor invalid: %v", err)
		}
		if !next.Equal(cur) {
			distinct++
		}
	}
	if distinct < 45 {
		t.Errorf("neighbor rarely differs: %d/50", distinct)
	}
}

func TestNeighborStateSingleAppAtBounds(t *testing.T) {
	// One app holding everything at MBA extremes: only MBA moves remain.
	cur := AllocState{Ways: []int{11}, MBA: []int{100}}
	next, err := NeighborState(cur, 11, rng())
	if err != nil {
		t.Fatal(err)
	}
	if next.Ways[0] != 11 {
		t.Errorf("single app cannot move ways: %v", next.Ways)
	}
	if next.MBA[0] != 90 && next.MBA[0] != 100 {
		t.Errorf("MBA move should stay legal: %v", next.MBA)
	}
}

func TestNeighborStateValidation(t *testing.T) {
	if _, err := NeighborState(AllocState{Ways: []int{0}, MBA: []int{10}}, 11, rng()); err == nil {
		t.Error("invalid state should error")
	}
	if _, err := NeighborState(AllocState{Ways: []int{1}, MBA: []int{10}}, 11, nil); err == nil {
		t.Error("nil rng should error")
	}
	empty, err := NeighborState(AllocState{}, 11, rng())
	if err != nil || len(empty.Ways) != 0 {
		t.Errorf("empty state: %+v, %v", empty, err)
	}
}

func TestEqualMBAShare(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 100}, {2, 50}, {3, 40}, {4, 30}, {5, 20}, {6, 20}, {10, 10}, {20, 10}, {0, 100},
	}
	for _, tt := range tests {
		if got := EqualMBAShare(tt.n); got != tt.want {
			t.Errorf("EqualMBAShare(%d)=%d want %d", tt.n, got, tt.want)
		}
	}
}
