package core

import "fmt"

// State is a classifier FSM state (§5.2): Supply means a unit of the
// resource can be reclaimed without significant performance loss; Demand
// means an additional unit is expected to improve performance
// significantly; Maintain means the current allocation is right.
type State int

const (
	Supply State = iota
	Maintain
	Demand
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case Supply:
		return "Supply"
	case Maintain:
		return "Maintain"
	case Demand:
		return "Demand"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ChangeKind describes the most recent allocation change applied to an
// application, which both FSMs consult when interpreting the subsequent
// performance delta (§5.3 notes the FSMs are designed in awareness of the
// interaction between the two resources).
type ChangeKind int

const (
	// NoChange: the application's allocation was untouched last period.
	NoChange ChangeKind = iota
	// GainedWay / LostWay: an LLC way was granted / reclaimed.
	GainedWay
	LostWay
	// GainedMBA / LostMBA: the MBA level was raised / lowered one step.
	GainedMBA
	LostMBA
)

// String renders the change kind.
func (c ChangeKind) String() string {
	switch c {
	case NoChange:
		return "none"
	case GainedWay:
		return "+way"
	case LostWay:
		return "-way"
	case GainedMBA:
		return "+mba"
	case LostMBA:
		return "-mba"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(c))
	}
}

// Observation carries one control period's measurements for one
// application.
type Observation struct {
	// AccessRate is LLC accesses/s over the period.
	AccessRate float64
	// MissRatio is LLC misses/accesses over the period.
	MissRatio float64
	// TrafficRatio is the application's LLC miss rate divided by the
	// STREAM reference miss rate at the application's current MBA level
	// (§5.3's "memory traffic ratio").
	TrafficRatio float64
	// IPS is the application's measured instructions/s this period.
	IPS float64
	// PerfDelta is the relative IPS change since the previous period,
	// (IPS_now − IPS_prev) / IPS_prev.
	PerfDelta float64
	// LastChange is the allocation change applied at the start of the
	// period.
	LastChange ChangeKind
	// Ways and MBALevel are the application's current allocation, used by
	// the hurt-memory hysteresis below.
	Ways     int
	MBALevel int
}

// Reconstruction notes (shared by both FSMs).
//
// Figures 8 and 9 show the FSM transition diagrams, but their edge labels
// are not present in the paper text we work from; the prose of §5.2/§5.3
// pins down the main transitions, and three mechanisms are added to make
// the reconstructed FSMs well-behaved (each bounded and local — the kind
// of hysteresis any deployed controller needs):
//
//  1. Profiled-demand pinning. The profiling phase directly measures each
//     application's sensitivity (§5.4.1). When it seeds Demand, the
//     absolute rate gates (α/β for the LLC, γ for bandwidth) never demote
//     the application to Supply: a latency-sensitive application can have
//     a low traffic ratio (FT in Table 2: 2×10⁷ misses/s ≈ 6 % of
//     STREAM) yet degrade badly when throttled — the measured
//     degradation, not the proxy ratio, is authoritative.
//
//  2. Hurt memory. When reclaiming a unit costs ≥ δ_P, the classifier
//     records the allocation it was reclaimed FROM as a floor and stops
//     the absolute gates from re-entering Supply at or below that floor.
//     Without it, an application whose working set exactly fits oscillates
//     supply → thrash → demand → fit → supply forever.
//
//  3. Cumulative-drop guard. A sequence of reclaims, each individually
//     under δ_P, can add up (convex MBA latency curves make every single
//     step look cheap). While in Supply the classifier tracks the IPS at
//     state entry and exits to Maintain — recording the hurt floor — once
//     the cumulative drop reaches δ_P.
type LLCClassifier struct {
	params         Params
	features       Features
	state          State
	profiledDemand bool
	hurtWays       int     // do not supply at or below this many ways
	entryIPS       float64 // IPS when the current state was entered
}

// NewLLCClassifier creates the FSM seeded with the initial state chosen by
// the profiling phase (§5.4.1). profiledDemand pins the application as
// LLC-sensitive per reconstruction note 1. All features default to on;
// see UseFeatures.
func NewLLCClassifier(params Params, initial State, profiledDemand bool) *LLCClassifier {
	return &LLCClassifier{
		params: params, features: DefaultFeatures(),
		state: initial, profiledDemand: profiledDemand,
	}
}

// UseFeatures replaces the feature set (ablation support).
func (c *LLCClassifier) UseFeatures(f Features) { c.features = f }

// Reinit re-seeds an existing FSM in place, leaving it exactly as
// NewLLCClassifier would construct it — the re-profiling path reuses
// classifiers instead of reallocating them every epoch.
//
//copart:noalloc
func (c *LLCClassifier) Reinit(params Params, initial State, profiledDemand bool) {
	*c = LLCClassifier{
		params: params, features: DefaultFeatures(),
		state: initial, profiledDemand: profiledDemand,
	}
}

// State returns the current state.
func (c *LLCClassifier) State() State { return c.state }

// setState records state-entry IPS on transitions.
func (c *LLCClassifier) setState(s State, ips float64) State {
	if s != c.state {
		c.state = s
		c.entryIPS = ips
	}
	return c.state
}

// Update advances the FSM with one period's observation and returns the
// new state.
//
// Transitions (reconstructed from §5.2 prose):
//   - any → Supply when the access rate is below α or the miss ratio
//     below β (idle or fully cached), subject to notes 1–3 above;
//   - Demand → Maintain when an added way improved performance by < δ_P;
//   - Maintain → Demand when the miss ratio exceeds Β or a reclaimed way
//     cost ≥ δ_P;
//   - Supply → Demand when the miss ratio exceeds Β; Supply → Maintain
//     when a reclaim hurt (single-step or cumulative) or the miss ratio
//     has risen to β or above.
func (c *LLCClassifier) Update(obs Observation) State {
	p := &c.params // by pointer: Params is period-loop hot and duffcopy-sized
	singleHurt := obs.LastChange == LostWay && obs.PerfDelta <= -p.DeltaPerf
	cumHurt := c.features.CumulativeGuard &&
		c.state == Supply && c.entryIPS > 0 && obs.IPS < c.entryIPS*(1-p.DeltaPerf)
	if (singleHurt || cumHurt) && c.features.HurtMemory {
		if floor := obs.Ways + 1; floor > c.hurtWays {
			c.hurtWays = floor
		}
	}
	pinned := c.profiledDemand && c.features.ProfilePinning
	gatesOpen := !pinned && obs.Ways > c.hurtWays && !singleHurt && !cumHurt
	if gatesOpen && (obs.AccessRate < p.Alpha || obs.MissRatio < p.BetaLow) {
		return c.setState(Supply, obs.IPS)
	}
	switch c.state {
	case Demand:
		if obs.LastChange == GainedWay && obs.PerfDelta < p.DeltaPerf {
			return c.setState(Maintain, obs.IPS)
		}
	case Maintain:
		if obs.MissRatio > p.BetaHigh || singleHurt {
			return c.setState(Demand, obs.IPS)
		}
	case Supply:
		switch {
		case obs.MissRatio > p.BetaHigh:
			return c.setState(Demand, obs.IPS)
		case singleHurt || cumHurt:
			return c.setState(Maintain, obs.IPS)
		case obs.MissRatio >= p.BetaLow && obs.AccessRate >= p.Alpha:
			return c.setState(Maintain, obs.IPS)
		}
	}
	return c.state
}

// MBAClassifier is the per-application FSM of Figure 9, reconstructed from
// the §5.3 prose analogously (see the notes above LLCClassifier):
//   - any → Supply when the memory-traffic ratio falls below γ (subject
//     to notes 1–3);
//   - any → Demand when the memory-traffic ratio exceeds Γ;
//   - Demand → Maintain when a granted MBA step improved performance by
//     less than δ_P — unless the most recently granted resource was an
//     LLC way, in which case the application stays in Demand (§5.3: the
//     marginal improvement reflects low LLC sensitivity, not low
//     bandwidth sensitivity);
//   - Maintain → Demand when a reclaimed MBA step cost ≥ δ_P;
//   - Supply → Maintain when a reclaim hurt (single-step or cumulative)
//     or the traffic ratio has risen to γ or above.
type MBAClassifier struct {
	params         Params
	features       Features
	state          State
	profiledDemand bool
	hurtLevel      int // do not supply at or below this MBA level
	entryIPS       float64
}

// NewMBAClassifier creates the FSM seeded with the profiling phase's
// initial state. All features default to on; see UseFeatures.
func NewMBAClassifier(params Params, initial State, profiledDemand bool) *MBAClassifier {
	return &MBAClassifier{
		params: params, features: DefaultFeatures(),
		state: initial, profiledDemand: profiledDemand,
	}
}

// UseFeatures replaces the feature set (ablation support).
func (c *MBAClassifier) UseFeatures(f Features) { c.features = f }

// Reinit re-seeds an existing FSM in place, leaving it exactly as
// NewMBAClassifier would construct it (see LLCClassifier.Reinit).
//
//copart:noalloc
func (c *MBAClassifier) Reinit(params Params, initial State, profiledDemand bool) {
	*c = MBAClassifier{
		params: params, features: DefaultFeatures(),
		state: initial, profiledDemand: profiledDemand,
	}
}

// State returns the current state.
func (c *MBAClassifier) State() State { return c.state }

func (c *MBAClassifier) setState(s State, ips float64) State {
	if s != c.state {
		c.state = s
		c.entryIPS = ips
	}
	return c.state
}

// Update advances the FSM with one period's observation and returns the
// new state.
func (c *MBAClassifier) Update(obs Observation) State {
	p := &c.params // by pointer: Params is period-loop hot and duffcopy-sized
	singleHurt := obs.LastChange == LostMBA && obs.PerfDelta <= -p.DeltaPerf
	cumHurt := c.features.CumulativeGuard &&
		c.state == Supply && c.entryIPS > 0 && obs.IPS < c.entryIPS*(1-p.DeltaPerf)
	if (singleHurt || cumHurt) && c.features.HurtMemory {
		if floor := obs.MBALevel + 10; floor > c.hurtLevel {
			c.hurtLevel = floor
		}
	}
	pinned := c.profiledDemand && c.features.ProfilePinning
	gatesOpen := !pinned && obs.MBALevel > c.hurtLevel && !singleHurt && !cumHurt
	if gatesOpen && obs.TrafficRatio < p.GammaLow {
		return c.setState(Supply, obs.IPS)
	}
	if obs.TrafficRatio > p.GammaHigh {
		return c.setState(Demand, obs.IPS)
	}
	switch c.state {
	case Demand:
		if obs.LastChange == GainedMBA && obs.PerfDelta < p.DeltaPerf {
			return c.setState(Maintain, obs.IPS)
		}
		// An LLC-way grant with little improvement keeps the application
		// in Demand: the small delta says nothing about bandwidth.
	case Maintain:
		if singleHurt {
			return c.setState(Demand, obs.IPS)
		}
	case Supply:
		switch {
		case singleHurt || cumHurt:
			return c.setState(Maintain, obs.IPS)
		case obs.TrafficRatio >= p.GammaLow:
			return c.setState(Maintain, obs.IPS)
		}
	}
	return c.state
}
