package core

import "testing"

func obs(mods ...func(*Observation)) Observation {
	// A "healthy mid-band" observation: active cache use, moderate miss
	// ratio, moderate traffic, no recent change, flat performance.
	o := Observation{
		AccessRate:   1e8,
		MissRatio:    0.02,
		TrafficRatio: 0.2,
		IPS:          1e9,
		PerfDelta:    0,
		LastChange:   NoChange,
		Ways:         5,
		MBALevel:     50,
	}
	for _, m := range mods {
		m(&o)
	}
	return o
}

func TestStateAndChangeStrings(t *testing.T) {
	if Supply.String() != "Supply" || Maintain.String() != "Maintain" || Demand.String() != "Demand" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" || ChangeKind(9).String() == "" {
		t.Error("unknown values should render")
	}
	for _, c := range []ChangeKind{NoChange, GainedWay, LostWay, GainedMBA, LostMBA} {
		if c.String() == "" {
			t.Errorf("empty name for change %d", int(c))
		}
	}
}

func TestLLCLowAccessRateForcesSupply(t *testing.T) {
	for _, initial := range []State{Supply, Maintain, Demand} {
		c := NewLLCClassifier(DefaultParams(), initial, false)
		got := c.Update(obs(func(o *Observation) { o.AccessRate = 1e5 }))
		if got != Supply {
			t.Errorf("from %v: access rate below α should force Supply, got %v", initial, got)
		}
	}
}

func TestLLCLowMissRatioForcesSupply(t *testing.T) {
	for _, initial := range []State{Maintain, Demand} {
		c := NewLLCClassifier(DefaultParams(), initial, false)
		got := c.Update(obs(func(o *Observation) { o.MissRatio = 0.001 }))
		if got != Supply {
			t.Errorf("from %v: miss ratio below β should force Supply, got %v", initial, got)
		}
	}
}

func TestLLCDemandStaysWhileWaysPay(t *testing.T) {
	c := NewLLCClassifier(DefaultParams(), Demand, false)
	got := c.Update(obs(func(o *Observation) {
		o.LastChange = GainedWay
		o.PerfDelta = 0.10 // way paid off
		o.MissRatio = 0.05
	}))
	if got != Demand {
		t.Errorf("paying way should keep Demand, got %v", got)
	}
}

func TestLLCDemandToMaintainOnMarginalGain(t *testing.T) {
	c := NewLLCClassifier(DefaultParams(), Demand, false)
	got := c.Update(obs(func(o *Observation) {
		o.LastChange = GainedWay
		o.PerfDelta = 0.01 // below δ_P
		o.MissRatio = 0.02 // mid-band: no absolute override
	}))
	if got != Maintain {
		t.Errorf("marginal way should demote to Maintain, got %v", got)
	}
}

func TestLLCMaintainToDemandOnHighMissRatio(t *testing.T) {
	c := NewLLCClassifier(DefaultParams(), Maintain, false)
	got := c.Update(obs(func(o *Observation) { o.MissRatio = 0.08 }))
	if got != Demand {
		t.Errorf("miss ratio above Β should promote to Demand, got %v", got)
	}
}

func TestLLCMaintainToDemandOnCostlyReclaim(t *testing.T) {
	c := NewLLCClassifier(DefaultParams(), Maintain, false)
	got := c.Update(obs(func(o *Observation) {
		o.LastChange = LostWay
		o.PerfDelta = -0.12
	}))
	if got != Demand {
		t.Errorf("costly reclaim should promote to Demand, got %v", got)
	}
}

func TestLLCSupplyToMaintainOnCostlyReclaim(t *testing.T) {
	c := NewLLCClassifier(DefaultParams(), Supply, false)
	got := c.Update(obs(func(o *Observation) {
		o.LastChange = LostWay
		o.PerfDelta = -0.10
		o.MissRatio = 0.02
	}))
	if got != Maintain {
		t.Errorf("costly reclaim from Supply should stop supplying, got %v", got)
	}
}

func TestLLCSupplyToDemandOnHighMissRatio(t *testing.T) {
	c := NewLLCClassifier(DefaultParams(), Supply, false)
	got := c.Update(obs(func(o *Observation) { o.MissRatio = 0.10 }))
	if got != Demand {
		t.Errorf("high miss ratio from Supply should jump to Demand, got %v", got)
	}
}

func TestLLCSupplyPersistsWhileCold(t *testing.T) {
	c := NewLLCClassifier(DefaultParams(), Supply, false)
	got := c.Update(obs(func(o *Observation) { o.MissRatio = 0.001 }))
	if got != Supply {
		t.Errorf("cold app should keep supplying, got %v", got)
	}
}

func TestMBALowTrafficForcesSupply(t *testing.T) {
	for _, initial := range []State{Supply, Maintain, Demand} {
		c := NewMBAClassifier(DefaultParams(), initial, false)
		got := c.Update(obs(func(o *Observation) { o.TrafficRatio = 0.05 }))
		if got != Supply {
			t.Errorf("from %v: traffic below γ should force Supply, got %v", initial, got)
		}
	}
}

func TestMBAHighTrafficForcesDemand(t *testing.T) {
	for _, initial := range []State{Supply, Maintain, Demand} {
		c := NewMBAClassifier(DefaultParams(), initial, false)
		got := c.Update(obs(func(o *Observation) { o.TrafficRatio = 0.5 }))
		if got != Demand {
			t.Errorf("from %v: traffic above Γ should force Demand, got %v", initial, got)
		}
	}
}

func TestMBADemandToMaintainOnMarginalMBAGain(t *testing.T) {
	c := NewMBAClassifier(DefaultParams(), Demand, false)
	got := c.Update(obs(func(o *Observation) {
		o.LastChange = GainedMBA
		o.PerfDelta = 0.01
	}))
	if got != Maintain {
		t.Errorf("marginal MBA step should demote, got %v", got)
	}
}

func TestMBADemandKeptWhenLastResourceWasLLCWay(t *testing.T) {
	// §5.3: small improvement after an LLC-way grant says nothing about
	// bandwidth sensitivity — Demand must persist.
	c := NewMBAClassifier(DefaultParams(), Demand, false)
	got := c.Update(obs(func(o *Observation) {
		o.LastChange = GainedWay
		o.PerfDelta = 0.01
	}))
	if got != Demand {
		t.Errorf("LLC-way grant must not demote MBA Demand, got %v", got)
	}
}

func TestMBAMaintainToDemandOnCostlyReclaim(t *testing.T) {
	c := NewMBAClassifier(DefaultParams(), Maintain, false)
	got := c.Update(obs(func(o *Observation) {
		o.LastChange = LostMBA
		o.PerfDelta = -0.10
	}))
	if got != Demand {
		t.Errorf("costly MBA reclaim should promote, got %v", got)
	}
}

func TestMBASupplyToMaintainWhenTrafficRises(t *testing.T) {
	c := NewMBAClassifier(DefaultParams(), Supply, false)
	got := c.Update(obs(func(o *Observation) { o.TrafficRatio = 0.2 }))
	if got != Maintain {
		t.Errorf("mid-band traffic should move Supply to Maintain, got %v", got)
	}
}

func TestMBASupplyToMaintainOnCostlyReclaim(t *testing.T) {
	c := NewMBAClassifier(DefaultParams(), Supply, false)
	got := c.Update(obs(func(o *Observation) {
		o.LastChange = LostMBA
		o.PerfDelta = -0.2
		o.TrafficRatio = 0.15
	}))
	if got != Maintain {
		t.Errorf("costly reclaim should stop supplying, got %v", got)
	}
}

func TestLLCProfiledDemandPinning(t *testing.T) {
	// Reconstruction note 1: a profiled-Demand application is never
	// demoted to Supply by the absolute gates.
	c := NewLLCClassifier(DefaultParams(), Demand, true)
	got := c.Update(obs(func(o *Observation) { o.MissRatio = 0.001 }))
	if got == Supply {
		t.Error("profiled-Demand app must not be gated into Supply")
	}
}

func TestMBAProfiledDemandPinning(t *testing.T) {
	c := NewMBAClassifier(DefaultParams(), Demand, true)
	got := c.Update(obs(func(o *Observation) { o.TrafficRatio = 0.02 }))
	if got == Supply {
		t.Error("profiled-Demand app must not be gated into Supply")
	}
}

func TestLLCHurtMemoryStopsChurn(t *testing.T) {
	// Reconstruction note 2: after a costly reclaim at W ways, fitting
	// again at W+1 ways must not re-enter Supply (the fit→supply→thrash
	// oscillation).
	c := NewLLCClassifier(DefaultParams(), Supply, false)
	// Lost a way (now at 3, was at 4) and it hurt.
	c.Update(obs(func(o *Observation) {
		o.LastChange = LostWay
		o.PerfDelta = -0.2
		o.MissRatio = 0.2
		o.Ways = 3
	}))
	// Regained the way; working set fits again (miss ratio below β).
	got := c.Update(obs(func(o *Observation) {
		o.LastChange = GainedWay
		o.PerfDelta = 0.25
		o.MissRatio = 0.001
		o.Ways = 4
	}))
	if got == Supply {
		t.Error("hurt memory should block Supply at the hurt floor")
	}
	// With one way of headroom above the floor, supplying is allowed again.
	got = c.Update(obs(func(o *Observation) {
		o.MissRatio = 0.001
		o.Ways = 5
	}))
	if got != Supply {
		t.Errorf("above the hurt floor the gate should reopen, got %v", got)
	}
}

func TestMBACumulativeGuardBoundsSlide(t *testing.T) {
	// Reconstruction note 3: many small reclaims, each under δ_P, must
	// not let a supplier slide unboundedly.
	c := NewMBAClassifier(DefaultParams(), Maintain, false)
	// Enter Supply at full performance.
	st := c.Update(obs(func(o *Observation) {
		o.TrafficRatio = 0.05
		o.IPS = 1e9
		o.MBALevel = 100
	}))
	if st != Supply {
		t.Fatalf("expected Supply, got %v", st)
	}
	// Slide: each step costs 2 % (below δ_P=5 %); cumulatively past 5 %.
	ips := 1e9
	level := 100
	for i := 0; i < 10 && c.State() == Supply; i++ {
		ips *= 0.98
		level -= 10
		c.Update(obs(func(o *Observation) {
			o.TrafficRatio = 0.05
			o.LastChange = LostMBA
			o.PerfDelta = -0.02
			o.IPS = ips
			o.MBALevel = level
		}))
	}
	if c.State() == Supply {
		t.Error("cumulative guard should have exited Supply")
	}
	if ips < 1e9*0.88 {
		t.Errorf("guard fired too late: IPS fell to %.3g", ips)
	}
	// The hurt floor now blocks re-entry at this level.
	got := c.Update(obs(func(o *Observation) {
		o.TrafficRatio = 0.05
		o.IPS = ips
		o.MBALevel = level
	}))
	if got == Supply {
		t.Error("hurt floor should block Supply re-entry after the slide")
	}
}

func TestLLCCumulativeGuard(t *testing.T) {
	c := NewLLCClassifier(DefaultParams(), Maintain, false)
	st := c.Update(obs(func(o *Observation) {
		o.MissRatio = 0.001
		o.IPS = 1e9
		o.Ways = 8
	}))
	if st != Supply {
		t.Fatalf("expected Supply, got %v", st)
	}
	ips := 1e9
	ways := 8
	for i := 0; i < 8 && c.State() == Supply; i++ {
		ips *= 0.98
		ways--
		c.Update(obs(func(o *Observation) {
			o.MissRatio = 0.001
			o.LastChange = LostWay
			o.PerfDelta = -0.02
			o.IPS = ips
			o.Ways = ways
		}))
	}
	if c.State() == Supply {
		t.Error("cumulative guard should have exited Supply")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.Alpha = -1 },
		func(p *Params) { p.BetaLow = -0.1 },
		func(p *Params) { p.BetaHigh = p.BetaLow / 2 },
		func(p *Params) { p.DeltaPerf = 0 },
		func(p *Params) { p.DeltaPerf = 1.5 },
		func(p *Params) { p.GammaHigh = p.GammaLow / 2 },
		func(p *Params) { p.Theta = 0 },
		func(p *Params) { p.ProfileWays = 0 },
		func(p *Params) { p.ProfileMBA = 15 },
		func(p *Params) { p.ProfileDemandThreshold = 0 },
		func(p *Params) { p.ProfileSupplyThreshold = 0.5 },
		func(p *Params) { p.Period = 0 },
		func(p *Params) { p.IdleChangeThreshold = 0 },
	}
	for i, mutate := range mutations {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate params", i)
		}
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.Alpha != 1.5e6 {
		t.Errorf("α=%v want 1.5e6", p.Alpha)
	}
	if p.BetaLow != 0.01 || p.BetaHigh != 0.03 {
		t.Errorf("β=%v Β=%v want 0.01/0.03", p.BetaLow, p.BetaHigh)
	}
	if p.DeltaPerf != 0.05 {
		t.Errorf("δ_P=%v want 0.05", p.DeltaPerf)
	}
	if p.GammaLow != 0.10 || p.GammaHigh != 0.30 {
		t.Errorf("γ=%v Γ=%v want 0.10/0.30", p.GammaLow, p.GammaHigh)
	}
	if p.Theta != 3 {
		t.Errorf("θ=%d want 3", p.Theta)
	}
	if p.ProfileWays != 2 || p.ProfileMBA != 20 {
		t.Errorf("l_P=%d M_P=%d want 2/20", p.ProfileWays, p.ProfileMBA)
	}
	if p.ProfileDemandThreshold != 0.10 {
		t.Errorf("profile threshold %v want 0.10", p.ProfileDemandThreshold)
	}
}
