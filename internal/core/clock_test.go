package core

import (
	"testing"
	"time"

	"repro/internal/workloads"
)

// TestSetClock pins the ExploreTimes telemetry against a scripted
// clock: the solver timing brackets exactly one pair of clock reads per
// explore step, so with a clock that advances one tick per read every
// recorded duration must equal the tick exactly.
func TestSetClock(t *testing.T) {
	_, mgr := testSetup(t, workloads.HLLC, 4)

	const tick = 7 * time.Millisecond
	base := time.Unix(1_700_000_000, 0)
	reads := 0
	mgr.SetClock(func() time.Time {
		reads++
		return base.Add(time.Duration(reads) * tick)
	})

	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for mgr.Phase() == PhaseExplore && steps < 3 {
		if _, err := mgr.ExploreStep(); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if steps == 0 {
		t.Fatal("manager never entered the explore phase")
	}
	if len(mgr.ExploreTimes) != steps {
		t.Fatalf("ExploreTimes has %d entries after %d steps", len(mgr.ExploreTimes), steps)
	}
	for i, d := range mgr.ExploreTimes {
		if d != tick {
			t.Errorf("ExploreTimes[%d] = %v, want exactly %v", i, d, tick)
		}
	}
	if reads != 2*steps {
		t.Errorf("clock reads = %d, want %d (two per explore step)", reads, 2*steps)
	}

	// nil restores the real clock: subsequent steps must not read the
	// script again.
	mgr.SetClock(nil)
	if mgr.Phase() == PhaseExplore {
		before := reads
		if _, err := mgr.ExploreStep(); err != nil {
			t.Fatal(err)
		}
		if reads != before {
			t.Errorf("scripted clock still read %d times after SetClock(nil)", reads-before)
		}
	}
}
