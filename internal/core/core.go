package core
