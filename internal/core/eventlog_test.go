package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/workloads"
)

// TestManagerEmitsTelemetry attaches an event log and checks that a full
// adaptation run leaves an audit trail covering every event kind.
func TestManagerEmitsTelemetry(t *testing.T) {
	m, mgr := testSetup(t, workloads.HLLC, 4)
	log, err := eventlog.New(4096)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Events = log
	runToIdle(t, mgr)

	kinds := map[eventlog.Kind]int{}
	for _, e := range log.Events() {
		kinds[e.Kind]++
	}
	if kinds[eventlog.KindProfile] != 4 {
		t.Errorf("expected one profile event per app, got %d", kinds[eventlog.KindProfile])
	}
	if kinds[eventlog.KindPhase] < 2 {
		t.Errorf("expected profile-done and idle phase events, got %d", kinds[eventlog.KindPhase])
	}
	if kinds[eventlog.KindState] == 0 {
		t.Error("expected resource-transfer events")
	}

	// Change detection is logged too.
	if err := m.RemoveApp(m.Apps()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.IdleStep(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range log.Events() {
		if e.Kind == eventlog.KindChange && strings.Contains(e.Detail, "consolidation changed") {
			found = true
		}
	}
	if !found {
		t.Error("departure should be logged as a change event")
	}

	// The text rendering is consumable.
	var b bytes.Buffer
	if err := log.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ipsFull=") {
		t.Errorf("text log missing profiling detail:\n%s", b.String())
	}
}

// TestManagerWithoutLogIsSilent ensures the nil log path costs nothing
// and crashes nothing.
func TestManagerWithoutLogIsSilent(t *testing.T) {
	_, mgr := testSetup(t, workloads.MBW, 4)
	mgr.Events = nil
	runToIdle(t, mgr)
}
