package core_test

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

func ExampleGetNextSystemState() {
	// App 1 is badly slowed and demands cache; app 0 can supply a way.
	cur := core.AllocState{Ways: []int{6, 5}, MBA: []int{50, 50}}
	apps := []core.AppInfo{
		{LLCState: core.Supply, MBAState: core.Maintain, Slowdown: 1.05},
		{LLCState: core.Demand, MBAState: core.Maintain, Slowdown: 1.80},
	}
	next, _ := core.GetNextSystemState(cur, apps, 11, rand.New(rand.NewSource(1)))
	fmt.Println("ways:", next.Ways, "mba:", next.MBA)
	// Output: ways: [5 6] mba: [50 50]
}
