package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// TestManagerSurvivesDepartureMidExploration injects an application
// departure while the manager is still exploring: the next ExploreStep
// must fall back to profiling instead of erroring on the missing
// counters.
func TestManagerSurvivesDepartureMidExploration(t *testing.T) {
	m, mgr := testSetup(t, workloads.HBoth, 4)
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	// A couple of exploration periods, then the departure.
	for i := 0; i < 2; i++ {
		if _, err := mgr.ExploreStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RemoveApp(m.Apps()[0]); err != nil {
		t.Fatal(err)
	}
	done, err := mgr.ExploreStep()
	if err != nil {
		t.Fatalf("departure mid-exploration must not error: %v", err)
	}
	if done {
		t.Fatal("departure should restart adaptation, not finish it")
	}
	if mgr.Phase() != PhaseProfile {
		t.Fatalf("phase %v, want profiling", mgr.Phase())
	}
	// Full recovery with the remaining applications.
	runToIdle(t, mgr)
}

// flakyTarget wraps a machine target and fails counter reads after a
// fuse burns — modeling a PMC read error (e.g. a perf fd dying with its
// process).
type flakyTarget struct {
	*machine.Machine
	failAfter int
	reads     int
}

func (f *flakyTarget) ReadCounters(name string) (machine.Counters, error) {
	f.reads++
	if f.reads > f.failAfter {
		return machine.Counters{}, errors.New("injected PMC failure")
	}
	return f.Machine.ReadCounters(name)
}

func TestManagerSurfacesCounterFailures(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HLLC, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyTarget{Machine: m, failAfter: 30}
	mgr, err := NewManager(flaky, DefaultParams(), ref,
		Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	err = mgr.Run(120 * time.Second)
	if err == nil {
		t.Fatal("counter failures must surface as errors, not be swallowed")
	}
}

// stuckTarget's Step fails — e.g. the control process lost the ability
// to sleep/schedule.
type stuckTarget struct {
	*machine.Machine
}

func (s *stuckTarget) Step(time.Duration) error {
	return errors.New("injected step failure")
}

func TestManagerSurfacesStepFailures(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HLLC, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(&stuckTarget{Machine: m}, DefaultParams(), ref,
		Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Profile(); err == nil {
		t.Fatal("step failures must surface from profiling")
	}
}
