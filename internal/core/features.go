package core

// Features toggle the reconstruction mechanisms this implementation adds
// on top of the paper's prose (documented at LLCClassifier). All are on
// by default; the ablation harness (internal/experiments/ablation.go,
// cmd/ablate) disables them one at a time to quantify what each
// contributes — the per-design-choice evidence DESIGN.md promises.
type Features struct {
	// ParkOnBest: when exploration ends, settle on the lowest-unfairness
	// state observed instead of the last (possibly randomly perturbed)
	// one.
	ParkOnBest bool
	// ProfilePinning: an application the profiling phase measured as
	// Demand is never demoted to Supply by the absolute rate gates
	// (reconstruction note 1).
	ProfilePinning bool
	// HurtMemory: remember the allocation level a costly reclaim was
	// taken from and refuse to supply at or below it (note 2).
	HurtMemory bool
	// CumulativeGuard: exit Supply when reclaims that were individually
	// cheap add up to δ_P (note 3).
	CumulativeGuard bool
	// ScoreMemo: memoize the measured per-period rates of repeat
	// allocation states during exploration, skipping the two sampler
	// passes when the current state was already measured under the
	// current app set. Only engaged when the target guarantees steady
	// measurements (no noise, no phases — see
	// machine.SteadyMeasurement), so a memoized period equals a
	// re-measured one up to float cancellation in the counter windows
	// (see the exactness caveat on scoreMemo); seeded runs stay fully
	// reproducible either way.
	ScoreMemo bool
	// StreamingFairness: maintain Equation 2 incrementally with
	// fairness.Tracker (O(changed slowdowns) per period) instead of the
	// O(n) batch recompute. The streaming value matches the batch one
	// within the tracker's documented 5e-8 bound but is NOT bit-identical
	// — rounding is rearranged — and even an ulp can flip the manager's
	// exact best-state comparison, so this stays OFF by default here:
	// every published figure uses the batch arm. Fleet runs
	// (internal/fleet) opt in by default — at their scale the per-period
	// scoring cost dominates, and the golden-trajectory migration test
	// (fleet's TestFleetStreamingMigration) pins that the switch leaves
	// their control trajectories unchanged; fleet.Config.BatchFairness
	// opts a run back out (DESIGN.md §13–14).
	StreamingFairness bool
}

// DefaultFeatures enables every mechanism.
func DefaultFeatures() Features {
	return Features{
		ParkOnBest:      true,
		ProfilePinning:  true,
		HurtMemory:      true,
		CumulativeGuard: true,
		ScoreMemo:       true,
	}
}
