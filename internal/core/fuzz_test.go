package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// randomModel generates a structurally valid application model with
// randomized characteristics spanning all four sensitivity classes.
func randomModel(rng *rand.Rand, name string, cores int) machine.AppModel {
	streamFrac := rng.Float64() * 0.95
	hotWeight := 1 - streamFrac
	model := machine.AppModel{
		Name:        name,
		Cores:       cores,
		CPIBase:     0.5 + rng.Float64()*1.5,
		AccPerInstr: math64(rng, 1e-6, 0.05),
		StreamFrac:  streamFrac,
		MLP:         1 + rng.Float64()*11,
	}
	if hotWeight > 0 {
		model.Hot = []machine.WSComponent{{
			Bytes:  math64(rng, 256<<10, 30<<20),
			Weight: hotWeight,
			MLP:    1 + rng.Float64()*3,
		}}
	} else {
		model.StreamFrac = 1
	}
	return model
}

// math64 draws a log-uniform value in [lo, hi].
func math64(rng *rand.Rand, lo, hi float64) float64 {
	return lo * math.Pow(hi/lo, rng.Float64())
}

// TestControllerFuzz runs the full manager on randomized consolidations
// and asserts the invariants that must hold regardless of workload:
// no errors, valid states every period, convergence or bounded
// exploration, and sane slowdowns.
func TestControllerFuzz(t *testing.T) {
	const runs = 25
	for run := 0; run < runs; run++ {
		run := run
		t.Run(fmt.Sprintf("seed=%d", run), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(run)))
			cfg := machine.DefaultConfig()
			m, err := machine.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := 2 + rng.Intn(5) // 2..6 apps
			cores := cfg.Cores / n
			for i := 0; i < n; i++ {
				model := randomModel(rng, fmt.Sprintf("app%d", i), cores)
				if err := model.Validate(); err != nil {
					t.Fatalf("generator produced invalid model: %v", err)
				}
				if err := m.AddApp(model); err != nil {
					t.Fatal(err)
				}
			}
			ref, err := workloads.StreamMissRates(m)
			if err != nil {
				t.Fatal(err)
			}
			mgr, err := NewManager(m, DefaultParams(), ref,
				Envelope{LoWay: 0, Ways: cfg.LLCWays}, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := mgr.Profile(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 150; i++ {
				done, err := mgr.ExploreStep()
				if err != nil {
					t.Fatalf("period %d: %v", i, err)
				}
				if err := mgr.State().Validate(cfg.LLCWays); err != nil {
					t.Fatalf("period %d: invalid state: %v", i, err)
				}
				if done {
					break
				}
			}
			// A few idle periods must also hold the invariants.
			if mgr.Phase() == PhaseIdle {
				for i := 0; i < 3; i++ {
					if _, err := mgr.IdleStep(); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}
