package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/eventlog"
	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/membw"
	"repro/internal/pmc"
)

// Target is the machine the manager controls. *machine.Machine satisfies
// it directly; a production deployment would back it with the resctrl
// client and a PMC reader, with Step implemented as a wall-clock sleep.
type Target interface {
	// Apps lists the consolidated applications.
	Apps() []string
	// ReadCounters returns an application's cumulative PMCs.
	ReadCounters(name string) (machine.Counters, error)
	// SetAllocation programs an application's (CBM, MBA level).
	SetAllocation(name string, a machine.Alloc) error
	// Config describes the hardware.
	Config() machine.Config
	// Now is the target's clock.
	Now() time.Duration
	// Step lets time pass (simulated or real).
	Step(dt time.Duration) error
}

// Envelope is the window of LLC ways the manager may hand to its
// applications. The §6.3 case study shrinks and grows this window as the
// latency-critical workload's reservation changes; stand-alone operation
// uses the full cache.
type Envelope struct {
	LoWay int
	Ways  int
}

// Validate checks the envelope against the hardware and application count.
func (e Envelope) Validate(cfg machine.Config, apps int) error {
	if e.LoWay < 0 || e.Ways < 1 || e.LoWay+e.Ways > cfg.LLCWays {
		return fmt.Errorf("core: envelope [%d,%d) outside %d ways", e.LoWay, e.LoWay+e.Ways, cfg.LLCWays)
	}
	if apps > e.Ways {
		return fmt.Errorf("core: %d apps need at least %d ways, envelope has %d", apps, apps, e.Ways)
	}
	return nil
}

// Phase is the resource manager's execution phase (Figure 10).
type Phase int

const (
	PhaseProfile Phase = iota
	PhaseExplore
	PhaseIdle
	// PhaseDegraded holds the safe EQ allocation after the resilience
	// watchdog tripped; the manager probes for recovery every period.
	PhaseDegraded
)

// String renders the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseProfile:
		return "profiling"
	case PhaseExplore:
		return "exploration"
	case PhaseIdle:
		return "idle"
	case PhaseDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// PeriodReport summarizes one control period for observers (the runtime
// figures are drawn from these).
type PeriodReport struct {
	Time       time.Duration
	Phase      Phase
	Apps       []string
	Slowdowns  []float64
	Unfairness float64
	State      AllocState

	// ScoreHits and ScoreMisses are the manager's cumulative
	// exploration-level score-memo counters (Features.ScoreMemo); both
	// stay zero when the memo is disabled or the target's measurements
	// are not steady.
	ScoreHits   uint64
	ScoreMisses uint64
	// SolveCache snapshots the target's solve-cache counters, when the
	// target exposes them (machine.Machine with WithSolveCache does).
	SolveCache machine.CacheStats
}

// appRT is the manager's per-application runtime state.
type appRT struct {
	name      string
	llc       *LLCClassifier
	mba       *MBAClassifier
	ipsFull   float64 // profiled full-resource IPS (Equation 1 denominator)
	lastIPS   float64
	havePerf  bool
	wayChange ChangeKind // change applied at the start of the period
	mbaChange ChangeKind
	idleIPS   float64 // baseline recorded at idle entry
	weight    float64 // fairness weight (1 = unweighted; see SetWeight)
}

// Manager is CoPart's resource manager.
type Manager struct {
	target    Target
	params    Params
	streamRef map[int]float64 // STREAM miss rate per MBA level (§5.3)
	env       Envelope
	rng       *rand.Rand
	sampler   *pmc.Sampler

	apps  []*appRT
	state AllocState
	phase Phase
	retry int

	// weights holds per-application fairness weights by name (nil or a
	// missing entry means 1). A weight w scales an application's Equation 1
	// slowdown by 1/w before it enters the unfairness objective and the
	// allocator, so w > 1 means "tolerate proportionally more slowdown"
	// and w < 1 means "protect". Weights survive re-profiling (resetApps
	// re-reads them) and are dropped with DropWeight.
	weights map[string]float64

	// Per-period scratch, reused across control periods so that a
	// steady-state period performs no heap allocations (pinned by
	// TestManagerPeriodAllocationGuard; budget in DESIGN.md §8).
	// names is immutable between resets; PeriodReport hands it to
	// observers, who may retain it, so resetApps reallocates it whenever
	// it was exposed (namesExposed) and recycles it otherwise.
	names        []string    // cached Apps() order, immutable between resets
	namesExposed bool        // names was handed to a PeriodReport observer
	rates        []pmc.Rates // measurePeriod output
	infos        []AppInfo   // ExploreStep classifier snapshot
	slowdowns    []float64   // per-period Equation 1 values
	nextState    AllocState  // GetNextSystemStateInto destination
	eq           AllocState  // equalStateInto destination (Profile)
	masks        []uint64    // applyState CBM layout
	targetNames  []string    // targetApps poll buffer
	matchSc      AllocatorScratch

	// bestState is the lowest-unfairness state observed during the
	// current exploration; the manager settles into it when it goes
	// idle. Algorithm 1's random neighbor perturbations mean the *last*
	// explored state can be a perturbed one; parking on the best
	// observed state is the natural refinement (the paper is silent on
	// which state the idle phase holds).
	bestState  AllocState
	bestUnfair float64
	haveBest   bool

	// lastUnfairness is the most recent period's unfairness (exploration
	// or idle), exposed through LastUnfairness so drivers that only need
	// the headline fairness figure — the fleet — avoid the copying
	// PeriodReport observer path.
	lastUnfairness float64

	// scores memoizes measured rates per allocation state (see
	// scoreMemo); memoOK caches whether the memo may engage for the
	// current target and feature set, decided once per Profile.
	scores scoreMemo
	memoOK bool

	// Streaming-fairness state (Features.StreamingFairness): tracker
	// maintains Equation 2 incrementally, prevSlow remembers the
	// slowdowns the tracker currently holds so the next period only
	// pushes the ones that moved, and trackerLive says both are in sync
	// with the current app set. resetApps invalidates it; see
	// streamUnfairness.
	tracker     fairness.Tracker
	prevSlow    []float64
	trackerLive bool

	// anchoredAt/anchorValid record that measurePeriod's closing pass
	// anchored every application's sampling window at that virtual time;
	// while the target clock still reads anchoredAt, the next period's
	// opening pass is a provable no-op and is skipped (see measurePeriod).
	anchoredAt  time.Duration
	anchorValid bool

	envChanged bool

	// Resilience watchdog state: consecutive failed control periods,
	// consecutive healthy degraded periods, whether the EQ fallback has
	// been programmed, and the external stop request.
	failStreak    int
	recoverStreak int
	eqApplied     bool
	stop          atomic.Bool

	// Resilience hardens the control loop against transient substrate
	// failures (see the type's documentation). The zero value disables it,
	// which keeps Run's decisions bit-identical to the fail-fast loop.
	Resilience Resilience

	// Features toggles the reconstruction mechanisms (ablation support);
	// NewManager initializes it to DefaultFeatures. Set before Profile.
	Features Features

	// FreezeLLC and FreezeMBA pin one resource axis: the corresponding
	// classifier is held in Maintain, so the allocator never moves that
	// resource and its allocation stays at the equal split. They
	// implement the paper's CAT-only (FreezeMBA) and MBA-only
	// (FreezeLLC) baselines (§6.1). Set them before Profile.
	FreezeLLC bool
	FreezeMBA bool

	// ExploreTimes records the wall-clock duration of every
	// getNextSystemState invocation (Figure 16's overhead metric).
	ExploreTimes []time.Duration
	// clock is the wall-clock source behind ExploreTimes. It defaults
	// to the real clock and is injectable via SetClock so the overhead
	// telemetry is testable with exact values; nothing else in the
	// manager reads it — control decisions run on virtual time.
	clock func() time.Time
	// OnPeriod, when non-nil, receives a report after every control
	// period in the exploration and idle phases.
	OnPeriod func(PeriodReport)
	// BetweenPeriods, when non-nil, is called by Run at the top of every
	// loop iteration — between control periods, when no phase step is in
	// flight. It is the safe point for runtime admission: the control
	// plane drains queued add/remove/reweight operations here, on the
	// controller goroutine, so they never race a period's target access.
	BetweenPeriods func()
	// SnapshotSource, when non-nil, is the counting source behind rng;
	// it is what lets Snapshot record the RNG stream position. Construct
	// the manager's rng with NewSeededRand and hand the source here.
	SnapshotSource *CountingSource
	// Events, when non-nil, receives structured telemetry: phase
	// transitions, profiling results, resource transfers, classifier
	// decisions, and change detections.
	Events *eventlog.Log
}

// NewManager builds a manager for the target's current applications.
func NewManager(target Target, params Params, streamRef map[int]float64, env Envelope, rng *rand.Rand) (*Manager, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	names := target.Apps()
	if len(names) == 0 {
		return nil, fmt.Errorf("core: no applications to manage")
	}
	if err := env.Validate(target.Config(), len(names)); err != nil {
		return nil, err
	}
	for level := membw.MinLevel; level <= membw.MaxLevel; level += membw.Granularity {
		if streamRef[level] <= 0 {
			return nil, fmt.Errorf("core: missing STREAM reference for MBA level %d", level)
		}
	}
	m := &Manager{
		target:    target,
		params:    params,
		streamRef: streamRef,
		env:       env,
		rng:       rng,
		sampler:   pmc.NewSampler(target),
		phase:     PhaseProfile,
		Features:  DefaultFeatures(),
		clock:     time.Now, //copart:wallclock ExploreTimes telemetry measures real solver latency
	}
	m.resetApps(names)
	return m, nil
}

// Reuse returns the manager to its just-constructed state for the
// target's *current* applications, without reallocating any of its
// runtime machinery: classifier objects, per-period scratch, the
// sampler's snapshots, and the score memo's tables are all recycled.
// A reused manager's control trajectory is bit-identical to a freshly
// constructed one over the same target and RNG stream — the contract
// the fleet's node-runtime pool is built on (DESIGN.md §12).
//
// Publicly settable configuration (Params, Envelope, Resilience,
// Features, Freeze flags, observers, weights are cleared but the map
// kept) is NOT restored to defaults except for the weight table;
// pooled drivers set those fields identically for every tenant anyway.
//
//copart:noalloc
func (m *Manager) Reuse() error {
	names := m.targetApps()
	if len(names) == 0 {
		return fmt.Errorf("core: no applications to manage")
	}
	if err := m.env.Validate(m.target.Config(), len(names)); err != nil {
		return err
	}
	m.phase = PhaseProfile
	m.state.Ways, m.state.MBA = m.state.Ways[:0], m.state.MBA[:0]
	m.bestState.Ways, m.bestState.MBA = m.bestState.Ways[:0], m.bestState.MBA[:0]
	m.bestUnfair = 0
	m.haveBest = false
	m.lastUnfairness = 0
	m.envChanged = false
	m.memoOK = false
	m.failStreak = 0
	m.recoverStreak = 0
	m.eqApplied = false
	m.stop.Store(false)
	m.ExploreTimes = m.ExploreTimes[:0]
	clear(m.weights)
	m.scores.reuse()
	m.resetApps(names) // also resets the sampler, flushes the memo, zeroes retry
	return nil
}

// SetClock replaces the wall-clock source behind the ExploreTimes
// telemetry. Tests inject a scripted clock to pin exact durations; nil
// restores the real clock. Control decisions never read this clock, so
// substituting it cannot perturb a seeded run.
func (m *Manager) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now //copart:wallclock restoring the real telemetry clock
	}
	m.clock = now
}

// resetApps rebuilds runtime state for the given application set (names
// must not alias m.names). appRT slots are recycled beyond len — their
// classifier pointers survive so Profile can Reinit instead of
// reallocate. The cached name slice is recycled only when it was never
// handed to a PeriodReport observer (namesExposed): observers may
// retain it across a re-profile, so an exposed slice is abandoned to
// them and a fresh one allocated.
//
//copart:noalloc
func (m *Manager) resetApps(names []string) {
	m.trackerLive = false // app set changed: streaming fairness must reseed
	n := len(names)
	if cap(m.apps) < n {
		apps := make([]*appRT, n) //copart:allocok first growth to the consolidation size; steady state reuses slots
		copy(apps, m.apps[:cap(m.apps)])
		m.apps = apps
	} else {
		m.apps = m.apps[:n]
	}
	if m.namesExposed || cap(m.names) < n {
		m.names = make([]string, n) //copart:allocok an observer retains the old slice (or first growth)
		m.namesExposed = false
	} else {
		m.names = m.names[:n]
	}
	for i, name := range names {
		a := m.apps[i]
		if a == nil {
			a = &appRT{} //copart:allocok one-time slot construction, recycled forever after
			m.apps[i] = a
		}
		*a = appRT{name: name, weight: m.weightFor(name), llc: a.llc, mba: a.mba}
		m.names[i] = name
	}
	m.sampler.Reset()
	m.anchorValid = false
	m.scores.flush()
	m.retry = 0
}

// targetApps polls the target's application list. When the target
// supports AppsInto (the simulated machine does), the poll reuses a
// manager-owned buffer; the returned slice is valid until the next call.
func (m *Manager) targetApps() []string {
	if t, ok := m.target.(interface{ AppsInto([]string) []string }); ok {
		m.targetNames = t.AppsInto(m.targetNames)
		return m.targetNames
	}
	return m.target.Apps()
}

// Phase returns the manager's current phase.
func (m *Manager) Phase() Phase { return m.phase }

// FailStreak returns the resilience watchdog's count of consecutive
// failed control periods (0 while healthy). Together with Phase it is
// the manager's health surface (/healthz, /readyz, fleet rollups).
func (m *Manager) FailStreak() int { return m.failStreak }

// weightFor resolves an application's fairness weight (default 1).
func (m *Manager) weightFor(name string) float64 {
	if w, ok := m.weights[name]; ok {
		return w
	}
	return 1
}

// SetWeight assigns an application's fairness weight: its slowdown is
// divided by w before entering the unfairness objective, so w > 1 lets
// the application absorb proportionally more slowdown and w < 1
// protects it. The weight takes effect from the next control period and
// survives re-profiling; it must be positive and finite. Callers must
// invoke it from the controller goroutine (e.g. a BetweenPeriods hook).
func (m *Manager) SetWeight(name string, w float64) error {
	if !(w > 0) || math.IsInf(w, 1) {
		return fmt.Errorf("core: weight %v for %s is not a positive finite number", w, name)
	}
	if m.weights == nil {
		m.weights = make(map[string]float64)
	}
	m.weights[name] = w
	for _, a := range m.apps {
		if a.name == name {
			a.weight = w
		}
	}
	return nil
}

// DropWeight removes an application's weight override (back to 1).
func (m *Manager) DropWeight(name string) {
	delete(m.weights, name)
	for _, a := range m.apps {
		if a.name == name {
			a.weight = 1
		}
	}
}

// Weight reports an application's current fairness weight.
func (m *Manager) Weight(name string) float64 { return m.weightFor(name) }

// State returns a copy of the current system state.
func (m *Manager) State() AllocState { return m.state.Clone() }

// StateInto copies the current system state into dst, reusing its
// backing arrays — the allocation-free form of State for drivers that
// provide their own storage (the fleet's per-node result arena).
//
//copart:noalloc
func (m *Manager) StateInto(dst *AllocState) { dst.CopyFrom(m.state) }

// LastUnfairness returns the unfairness measured in the most recent
// exploration or idle period (0 before the first one). It is the
// allocation-free alternative to reading Unfairness off PeriodReport
// when the rest of the report is not needed.
//
//copart:noalloc per-node telemetry readback on the fleet merge path
func (m *Manager) LastUnfairness() float64 { return m.lastUnfairness }

// SetEnvelope changes the way window at runtime (case study). The change
// is detected as a workload change: the manager re-adapts.
func (m *Manager) SetEnvelope(env Envelope) error {
	if err := env.Validate(m.target.Config(), len(m.apps)); err != nil {
		return err
	}
	if env == m.env {
		return nil
	}
	m.env = env
	m.envChanged = true
	// The memo keys on way *counts*; a new envelope maps the same counts
	// to different CBMs, so memoized measurements no longer apply.
	m.scores.flush()
	return nil
}

// equalStateInto writes the equal-split starting state into dst: ways
// divided evenly and every application at the equal MBA share (an equal
// fraction of peak traffic, rounded up to the 10 % granularity —
// matching the EQ baseline; the paper does not specify CoPart's start
// state, and starting from EQ makes the exploration's improvement over
// EQ directly attributable to the controller). dst's backing arrays are
// reused when large enough, so the re-profiling path is allocation-free
// at steady state.
//
//copart:noalloc
func (m *Manager) equalStateInto(dst *AllocState) error {
	n := len(m.apps)
	ways, err := machine.EqualSplitInto(dst.Ways, m.env.Ways, n)
	if err != nil {
		return err
	}
	dst.Ways = ways
	level := EqualMBAShare(n)
	if cap(dst.MBA) < n {
		dst.MBA = make([]int, n) //copart:allocok first call grows the scratch; steady state reuses it
	}
	dst.MBA = dst.MBA[:n]
	for i := range dst.MBA {
		dst.MBA[i] = level
	}
	return nil
}

// EqualMBAShare returns the equal MBA allocation for n applications:
// ceil(100/n) rounded up to the hardware granularity, clamped to the
// legal range.
func EqualMBAShare(n int) int {
	if n < 1 {
		return membw.MaxLevel
	}
	share := (100 + n - 1) / n
	share = ((share + membw.Granularity - 1) / membw.Granularity) * membw.Granularity
	if share < membw.MinLevel {
		share = membw.MinLevel
	}
	if share > membw.MaxLevel {
		share = membw.MaxLevel
	}
	return share
}

// applyState programs the target with st and records per-application
// change kinds relative to the previous state. st may alias the
// manager's own scratch (nextState); the masks buffer and the in-place
// state copy keep the call allocation-free at steady state.
func (m *Manager) applyState(st AllocState) error {
	masks, err := machine.AssignContiguousWaysInto(m.masks, st.Ways, m.env.LoWay, m.env.Ways)
	if err != nil {
		return err
	}
	m.masks = masks
	for i, a := range m.apps {
		if err := m.setAllocation(a.name, machine.Alloc{CBM: masks[i], MBALevel: st.MBA[i]}); err != nil {
			return err
		}
		a.wayChange, a.mbaChange = NoChange, NoChange
		if len(m.state.Ways) == len(st.Ways) {
			switch {
			case st.Ways[i] > m.state.Ways[i]:
				a.wayChange = GainedWay
			case st.Ways[i] < m.state.Ways[i]:
				a.wayChange = LostWay
			}
			switch {
			case st.MBA[i] > m.state.MBA[i]:
				a.mbaChange = GainedMBA
			case st.MBA[i] < m.state.MBA[i]:
				a.mbaChange = LostMBA
			}
			if m.Events.Enabled() && (a.wayChange != NoChange || a.mbaChange != NoChange) {
				m.logf(eventlog.KindState, a.name, "%s %s → ways=%d mba=%d",
					a.wayChange, a.mbaChange, st.Ways[i], st.MBA[i])
			}
		}
	}
	m.state.CopyFrom(st)
	return nil
}

// measurePeriod advances one control period and returns each
// application's windowed counter rates over it. With resilience enabled,
// failed counter reads and a failed period step are retried with backoff
// before the period is declared failed; with it disabled (the default
// and the simulation configuration) the loop calls the sampler and
// target directly, avoiding the retry closures. The returned slice is
// manager-owned scratch, valid until the next period.
func (m *Manager) measurePeriod() ([]pmc.Rates, error) {
	retry := m.Resilience.Enabled
	// The opening pass anchors every application's sampling window at the
	// period start. Its real job is re-anchoring after disruptions — a
	// failed period, a memoized period that stepped time without sampling
	// — and in the steady state it is a no-op: the previous period's
	// closing pass already anchored every app at this exact instant, and
	// re-sampling at a zero-width window changes nothing. anchoredAt
	// tracks that case so the steady path skips the sweep entirely;
	// anchorValid drops at the first sign of trouble (or any partial
	// pass), which routes the next period back through the full sweep.
	// Hardened managers never skip: under resilience the opening reads
	// double as fault probes, and eliding them would change when the
	// watchdog first observes an outage.
	if retry || !(m.anchorValid && m.anchoredAt == m.target.Now()) {
		m.anchorValid = false
		// One clock read anchors the whole sweep: virtual time does not
		// advance between per-app samples, so the hoisted value is what
		// every Now() in the loop would have returned.
		openAt := m.target.Now()
		for _, a := range m.apps {
			var err error
			if retry {
				name := a.name
				err = m.retryOp("counter read", name, func() error {
					_, _, err := m.sampler.Sample(name, openAt)
					return err
				})
			} else {
				_, _, err = m.sampler.Sample(a.name, openAt)
			}
			if err != nil {
				return nil, err
			}
		}
	} else {
		m.anchorValid = false
	}
	var err error
	if retry {
		err = m.retryOp("period step", "", func() error {
			return m.target.Step(m.params.Period)
		})
	} else {
		err = m.target.Step(m.params.Period)
	}
	if err != nil {
		return nil, err
	}
	if cap(m.rates) < len(m.apps) {
		m.rates = make([]pmc.Rates, len(m.apps))
	}
	m.rates = m.rates[:len(m.apps)]
	closeAt := m.target.Now() // hoisted: time is frozen across the closing sweep
	for i, a := range m.apps {
		var (
			r  pmc.Rates
			ok bool
		)
		if retry {
			name := a.name
			err = m.retryOp("counter read", name, func() error {
				var err error
				r, ok, err = m.sampler.Sample(name, closeAt)
				return err
			})
		} else {
			r, ok, err = m.sampler.Sample(a.name, closeAt)
		}
		if err != nil {
			return nil, err
		}
		if !ok {
			// A dropped sample (counter wraparound or reset) fails the
			// period once; the sampler re-anchored its snapshot, so the
			// next period measures cleanly. Not worth retrying: the window
			// is already consumed.
			return nil, fmt.Errorf("core: no sampling window for %s", a.name)
		}
		m.rates[i] = r
	}
	// Every application is now anchored at the period end.
	m.anchorValid = true
	m.anchoredAt = closeAt
	return m.rates, nil
}

// Profile runs the application profiling phase (§5.4.1): it measures each
// application's IPS with the full envelope resources, then at (l_P, 100 %)
// and (L, M_P), and seeds both classifiers from the observed degradations.
// It leaves the system in the equal-split state, ready for exploration.
func (m *Manager) Profile() error {
	names := m.targetApps()
	if len(names) == 0 {
		return fmt.Errorf("core: no applications to profile")
	}
	if err := m.env.Validate(m.target.Config(), len(names)); err != nil {
		return err
	}
	m.resetApps(names)
	if err := m.equalStateInto(&m.eq); err != nil {
		return err
	}
	// Forget change history across re-profiling: truncating to zero length
	// makes applyState record no change kinds (lengths differ), exactly
	// like the zero AllocState, without dropping the scratch capacity.
	m.state.Ways, m.state.MBA = m.state.Ways[:0], m.state.MBA[:0]
	if err := m.applyState(m.eq); err != nil {
		return err
	}

	fullMask, err := windowMask(m.env)
	if err != nil {
		return err
	}
	profileWays := m.params.ProfileWays
	if profileWays > m.env.Ways {
		profileWays = m.env.Ways
	}
	probeMask := (uint64(1)<<profileWays - 1) << uint(m.env.LoWay)

	for i := range m.apps {
		a := m.apps[i]
		// applyState(m.eq) above left the EQ layout in m.masks, and nothing
		// in the probe loop overwrites it — the per-app restore mask is a
		// lookup, not a fresh layout computation.
		restore := machine.Alloc{CBM: m.masks[i], MBALevel: m.eq.MBA[i]}

		ipsFull, err := m.probe(a.name, machine.Alloc{CBM: fullMask, MBALevel: membw.MaxLevel})
		if err != nil {
			return err
		}
		ipsLLC, err := m.probe(a.name, machine.Alloc{CBM: probeMask, MBALevel: membw.MaxLevel})
		if err != nil {
			return err
		}
		ipsMBA, err := m.probe(a.name, machine.Alloc{CBM: fullMask, MBALevel: m.params.ProfileMBA})
		if err != nil {
			return err
		}
		if err := m.setAllocation(a.name, restore); err != nil {
			return err
		}
		if ipsFull <= 0 {
			return fmt.Errorf("core: %s executed no instructions during profiling", a.name)
		}
		a.ipsFull = ipsFull
		llcSeed := m.seedState(1 - ipsLLC/ipsFull)
		mbaSeed := m.seedState(1 - ipsMBA/ipsFull)
		// Enabled-guarded so an unobserved profile pass never boxes the
		// variadic args (the fleet re-profiles thousands of pooled nodes).
		if m.Events.Enabled() {
			m.logf(eventlog.KindProfile, a.name,
				"ipsFull=%.3g llcDeg=%.1f%%→%v mbaDeg=%.1f%%→%v",
				ipsFull, (1-ipsLLC/ipsFull)*100, llcSeed, (1-ipsMBA/ipsFull)*100, mbaSeed)
		}
		if m.FreezeLLC {
			llcSeed = Maintain
		}
		if m.FreezeMBA {
			mbaSeed = Maintain
		}
		if a.llc == nil {
			a.llc = NewLLCClassifier(m.params, llcSeed, llcSeed == Demand)
		} else {
			a.llc.Reinit(m.params, llcSeed, llcSeed == Demand)
		}
		a.llc.UseFeatures(m.Features)
		if a.mba == nil {
			a.mba = NewMBAClassifier(m.params, mbaSeed, mbaSeed == Demand)
		} else {
			a.mba.Reinit(m.params, mbaSeed, mbaSeed == Demand)
		}
		a.mba.UseFeatures(m.Features)
		a.havePerf = false
	}
	m.phase = PhaseExplore
	m.retry = 0
	m.envChanged = false
	m.haveBest = false
	// The score memo is sound only when re-measuring a state reproduces
	// the same rates: steady targets (no noise, no phases), no fault
	// injection between the manager and the counters (resilience off
	// implies none is expected), and the feature enabled.
	m.memoOK = m.Features.ScoreMemo && !m.Resilience.Enabled && steadyTarget(m.target)
	if m.Events.Enabled() {
		m.logf(eventlog.KindPhase, "", "profiling done, exploring %d apps in envelope [%d,%d)",
			len(m.apps), m.env.LoWay, m.env.LoWay+m.env.Ways)
	}
	return nil
}

// probe sets one application's allocation, lets a period pass, and
// returns the application's IPS over it.
func (m *Manager) probe(name string, alloc machine.Alloc) (float64, error) {
	if err := m.setAllocation(name, alloc); err != nil {
		return 0, err
	}
	rates, err := m.measurePeriod()
	if err != nil {
		return 0, err
	}
	for i, a := range m.apps {
		if a.name == name {
			return rates[i].IPS, nil
		}
	}
	return 0, fmt.Errorf("core: app %s vanished during profiling", name)
}

// seedState converts a profiled degradation into an initial FSM state.
func (m *Manager) seedState(degradation float64) State {
	switch {
	case degradation > m.params.ProfileDemandThreshold:
		return Demand
	case degradation < m.params.ProfileSupplyThreshold:
		return Supply
	default:
		return Maintain
	}
}

// windowMask returns the CBM covering the whole envelope.
func windowMask(env Envelope) (uint64, error) {
	if env.Ways < 1 || env.Ways > 63 {
		return 0, fmt.Errorf("core: invalid envelope width %d", env.Ways)
	}
	return (uint64(1)<<env.Ways - 1) << uint(env.LoWay), nil
}

// ExploreStep executes one iteration of Algorithm 1's loop: let a period
// pass under the current state, update the FSMs, and move to the next
// system state. It returns done=true when the manager decides no further
// fairness improvement is expected and transitions to the idle phase.
func (m *Manager) ExploreStep() (bool, error) {
	if m.phase != PhaseExplore {
		return false, fmt.Errorf("core: ExploreStep called in %v phase", m.phase)
	}
	// Consolidation changes can happen mid-exploration too, not only in
	// the idle phase; restarting from profiling keeps every downstream
	// assumption (ipsFull, classifier seeds) coherent.
	if !sameNames(m.targetApps(), m.names) {
		m.phase = PhaseProfile
		return false, nil
	}
	var rates []pmc.Rates
	memoHit := false
	if m.memoOK {
		if r, ok := m.scores.lookup(m.state); ok {
			// The period still passes — only the measurement is skipped.
			// The sampler keeps its last anchor; measurePeriod's first
			// pass re-anchors before the next real measurement, so the
			// following window spans exactly one period either way.
			if err := m.target.Step(m.params.Period); err != nil {
				return false, err
			}
			rates, memoHit = r, true
		}
	}
	if !memoHit {
		var err error
		rates, err = m.measurePeriod()
		if err != nil {
			return false, err
		}
		if m.memoOK {
			m.scores.store(m.state, rates)
		}
	}
	infos, slowdowns := m.growPeriodScratch()
	for i, a := range m.apps {
		var err error
		slowdowns[i], err = fairness.Slowdown(a.ipsFull, rates[i].IPS)
		if err != nil {
			return false, fmt.Errorf("core: %s: %w", a.name, err)
		}
		// The division by the default weight 1 is bit-exact in IEEE 754,
		// so unweighted runs keep their historical trajectories.
		slowdowns[i] /= a.weight
		infos[i] = AppInfo{LLCState: a.llc.State(), MBAState: a.mba.State(), Slowdown: slowdowns[i]}
	}
	for i, a := range m.apps {
		perfDelta := 0.0
		if a.havePerf && a.lastIPS > 0 {
			perfDelta = (rates[i].IPS - a.lastIPS) / a.lastIPS
		}
		a.lastIPS = rates[i].IPS
		a.havePerf = true

		ref := m.streamRef[m.state.MBA[i]]
		obs := Observation{
			AccessRate:   rates[i].AccessRate,
			MissRatio:    rates[i].MissRatio,
			TrafficRatio: rates[i].MissRate / ref,
			IPS:          rates[i].IPS,
			PerfDelta:    perfDelta,
			Ways:         m.state.Ways[i],
			MBALevel:     m.state.MBA[i],
		}
		obs.LastChange = a.wayChange
		if !m.FreezeLLC {
			prev := a.llc.State()
			infos[i].LLCState = a.llc.Update(obs)
			if m.Events.Enabled() && infos[i].LLCState != prev {
				m.logf(eventlog.KindClassify, a.name, "llc %v→%v (missRatio=%.3f Δperf=%+.1f%%)",
					prev, infos[i].LLCState, obs.MissRatio, obs.PerfDelta*100)
			}
		}
		if !m.FreezeMBA {
			mbaObs := obs
			mbaObs.LastChange = a.mbaChange
			if a.mbaChange == NoChange && a.wayChange == GainedWay {
				// §5.3: a marginal improvement after an LLC-way grant must
				// not demote the bandwidth Demand state.
				mbaObs.LastChange = GainedWay
			}
			prev := a.mba.State()
			infos[i].MBAState = a.mba.Update(mbaObs)
			if m.Events.Enabled() && infos[i].MBAState != prev {
				m.logf(eventlog.KindClassify, a.name, "mba %v→%v (traffic=%.3f Δperf=%+.1f%%)",
					prev, infos[i].MBAState, obs.TrafficRatio, obs.PerfDelta*100)
			}
		}
	}

	unf, err := m.unfairness(slowdowns)
	if err != nil {
		return false, err
	}
	if !m.haveBest || unf < m.bestUnfair {
		m.bestState.CopyFrom(m.state)
		m.bestUnfair = unf
		m.haveBest = true
	}
	m.lastUnfairness = unf
	m.report(PhaseExplore, slowdowns, unf)

	start := m.clock()
	err = getNextSystemStateInto(&m.nextState, m.state, infos, m.env.Ways, m.rng, &m.matchSc, true)
	m.ExploreTimes = append(m.ExploreTimes, m.clock().Sub(start))
	if err != nil {
		return false, err
	}
	if m.nextState.Equal(m.state) {
		if m.retry < m.params.Theta {
			if err := neighborStateIntoTrusted(&m.nextState, m.state, m.env.Ways, m.rng, !m.FreezeLLC, !m.FreezeMBA, true); err != nil {
				return false, err
			}
			m.retry++
		} else {
			return true, m.enterIdle()
		}
	} else {
		m.retry = 0
	}
	return false, m.applyState(m.nextState)
}

// growPeriodScratch sizes the per-period classifier and slowdown buffers
// to the current application count.
//
//copart:noalloc
func (m *Manager) growPeriodScratch() ([]AppInfo, []float64) {
	n := len(m.apps)
	if cap(m.infos) < n {
		m.infos = make([]AppInfo, n)
	}
	if cap(m.slowdowns) < n {
		m.slowdowns = make([]float64, n)
	}
	m.infos, m.slowdowns = m.infos[:n], m.slowdowns[:n]
	return m.infos, m.slowdowns
}

// report delivers a PeriodReport to the observer, if any. The report's
// slices are built only when an observer is attached — observers retain
// reports (the runtime figures are drawn from them), so they receive
// copies, and an unobserved control period pays nothing.
func (m *Manager) report(phase Phase, slowdowns []float64, unfairness float64) {
	if m.OnPeriod == nil {
		return
	}
	m.namesExposed = true // the observer may retain rep.Apps; see resetApps
	rep := PeriodReport{
		Time:        m.target.Now(),
		Phase:       phase,
		Apps:        m.names,
		Slowdowns:   append([]float64(nil), slowdowns...),
		Unfairness:  unfairness,
		State:       m.state.Clone(),
		ScoreHits:   m.scores.hits,
		ScoreMisses: m.scores.misses,
	}
	if t, ok := m.target.(interface{ SolveCacheDetail() machine.CacheStats }); ok {
		rep.SolveCache = t.SolveCacheDetail()
	}
	m.OnPeriod(rep)
}

// ScoreMemoStats reports the cumulative score-memo counters (zeroes
// when the memo never engaged).
//
//copart:noalloc per-node telemetry readback on the fleet merge path
func (m *Manager) ScoreMemoStats() (hits, misses uint64) {
	return m.scores.hits, m.scores.misses
}

// steadyTarget reports whether the target certifies steady per-period
// measurements (see machine.Machine.SteadyMeasurement). Targets without
// the method — including fault-injection wrappers — are conservatively
// treated as unsteady.
func steadyTarget(t Target) bool {
	s, ok := t.(interface{ SteadyMeasurement() bool })
	return ok && s.SteadyMeasurement()
}

// logf appends telemetry when an event log is attached.
func (m *Manager) logf(kind eventlog.Kind, app, format string, args ...interface{}) {
	if m.Events != nil {
		m.Events.Appendf(m.target.Now(), kind, app, format, args...)
	}
}

// enterIdle parks the system on the best state observed during
// exploration and switches phase. Idle baselines are re-established on
// the first idle period (the parked state changes every IPS).
func (m *Manager) enterIdle() error {
	if m.Features.ParkOnBest && m.haveBest && !m.bestState.Equal(m.state) {
		if err := m.applyState(m.bestState); err != nil {
			return err
		}
	}
	for _, a := range m.apps {
		a.idleIPS = 0
	}
	m.phase = PhaseIdle
	if m.Events.Enabled() {
		m.logf(eventlog.KindPhase, "", "idle (best unfairness=%.4f)", m.bestUnfair)
	}
	return nil
}

// IdleStep monitors one period in the idle phase (§5.4.3). It returns
// changed=true — and switches back to the profiling phase — when it
// detects a workload change: an application arriving or departing, the
// envelope changing, or an application's IPS drifting beyond the change
// threshold.
func (m *Manager) IdleStep() (bool, error) {
	if m.phase != PhaseIdle {
		return false, fmt.Errorf("core: IdleStep called in %v phase", m.phase)
	}
	names := m.targetApps()
	if !sameNames(names, m.names) || m.envChanged {
		if m.envChanged {
			m.logf(eventlog.KindChange, "", "envelope changed to [%d,%d), re-adapting",
				m.env.LoWay, m.env.LoWay+m.env.Ways)
		} else {
			m.logf(eventlog.KindChange, "", "consolidation changed (%d→%d apps), re-adapting",
				len(m.apps), len(names))
		}
		m.phase = PhaseProfile
		return true, nil
	}
	rates, err := m.measurePeriod()
	if err != nil {
		return false, err
	}
	_, slowdowns := m.growPeriodScratch()
	changed := false
	for i, a := range m.apps {
		slowdowns[i], err = fairness.Slowdown(a.ipsFull, rates[i].IPS)
		if err != nil {
			return false, fmt.Errorf("core: %s: %w", a.name, err)
		}
		slowdowns[i] /= a.weight
		if a.idleIPS > 0 {
			drift := (rates[i].IPS - a.idleIPS) / a.idleIPS
			if drift > m.params.IdleChangeThreshold || drift < -m.params.IdleChangeThreshold {
				changed = true
			}
		} else {
			a.idleIPS = rates[i].IPS // first idle period sets the baseline
		}
	}
	unf, err := m.unfairness(slowdowns)
	if err != nil {
		return false, err
	}
	m.lastUnfairness = unf
	m.report(PhaseIdle, slowdowns, unf)
	if changed {
		m.logf(eventlog.KindChange, "", "IPS drift beyond %.0f%%, re-adapting",
			m.params.IdleChangeThreshold*100)
		m.phase = PhaseProfile
		return true, nil
	}
	return false, nil
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Stop asks Run to return after the current control period. It is safe
// to call from another goroutine (e.g. a signal handler).
func (m *Manager) Stop() { m.stop.Store(true) }

// stepPhase executes one control period in the current phase.
func (m *Manager) stepPhase() error {
	switch m.phase {
	case PhaseProfile:
		return m.Profile()
	case PhaseExplore:
		_, err := m.ExploreStep()
		return err
	case PhaseIdle:
		_, err := m.IdleStep()
		return err
	case PhaseDegraded:
		return m.degradedStep()
	default:
		return fmt.Errorf("core: unknown phase %v", m.phase)
	}
}

// Run drives the manager for a span of target time, cycling through the
// profiling, exploration, and idle phases including re-adaptation on
// detected changes.
//
// Without resilience the first failed period aborts Run with its error.
// With Resilience.Enabled a watchdog counts consecutive failed periods:
// after DegradeAfter of them (θ by default) the manager falls back to
// the degraded EQ allocation, and once counter reads stay healthy it
// re-enters profiling. Run then only returns an error when the target
// clock is wedged — every failed period otherwise just advances time and
// is retried.
func (m *Manager) Run(d time.Duration) error {
	if err := m.Resilience.Validate(); err != nil {
		return err
	}
	// The stop flag is cleared on exit, not entry: a Stop that lands just
	// before Run starts must still take effect.
	defer m.stop.Store(false)
	m.failStreak = 0
	deadline := m.target.Now() + d
	stalls := 0
	for m.target.Now() < deadline && !m.stop.Load() {
		if m.BetweenPeriods != nil {
			m.BetweenPeriods()
		}
		before := m.target.Now()
		err := m.stepPhase()
		if err == nil {
			m.failStreak = 0
			stalls = 0
			continue
		}
		if !m.Resilience.Enabled {
			return err
		}
		m.failStreak++
		m.logf(eventlog.KindFault, "", "control period failed (streak %d): %v", m.failStreak, err)
		if m.phase != PhaseDegraded && m.failStreak >= m.degradeAfter() {
			m.enterDegraded()
		}
		if m.target.Now() > before {
			stalls = 0
			continue
		}
		// The failed period consumed no target time. Burn one period so the
		// loop cannot spin on an instantly-failing operation, and give up
		// when even that cannot advance the clock.
		if serr := m.target.Step(m.params.Period); serr != nil || m.target.Now() == before {
			stalls++
			if stalls >= m.Resilience.MaxClockStalls {
				return fmt.Errorf("core: target clock stalled across %d failed periods: %w", stalls, err)
			}
		} else {
			stalls = 0
		}
	}
	return nil
}
