package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// testSetup builds a machine running the given mix plus the STREAM
// reference table and a manager over the full cache.
func testSetup(t *testing.T, kind workloads.MixKind, n int) (*machine.Machine, *Manager) {
	t.Helper()
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, kind, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(m, DefaultParams(), ref, Envelope{LoWay: 0, Ways: cfg.LLCWays},
		rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	return m, mgr
}

// eqUnfairness computes the unfairness of the EQ allocation for the
// machine's current applications.
func eqUnfairness(t *testing.T, m *machine.Machine) float64 {
	t.Helper()
	cfg := m.Config()
	names := m.Apps()
	counts, err := machine.EqualSplit(cfg.LLCWays, len(names))
	if err != nil {
		t.Fatal(err)
	}
	masks, err := machine.AssignContiguousWays(counts, 0, cfg.LLCWays)
	if err != nil {
		t.Fatal(err)
	}
	level := EqualMBAShare(len(names))
	models := make([]machine.AppModel, len(names))
	allocs := make([]machine.Alloc, len(names))
	for i, name := range names {
		model, err := m.Model(name)
		if err != nil {
			t.Fatal(err)
		}
		models[i] = model
		allocs[i] = machine.Alloc{CBM: masks[i], MBALevel: level}
	}
	perfs, err := m.SolveFor(models, allocs)
	if err != nil {
		t.Fatal(err)
	}
	slowdowns := make([]float64, len(perfs))
	for i, p := range perfs {
		solo, err := m.SoloPerf(models[i])
		if err != nil {
			t.Fatal(err)
		}
		slowdowns[i] = solo.IPS / p.IPS
	}
	u, err := fairness.Unfairness(slowdowns)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// runToIdle profiles and explores until the manager goes idle.
func runToIdle(t *testing.T, mgr *Manager) PeriodReport {
	t.Helper()
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	if mgr.Phase() != PhaseExplore {
		t.Fatalf("after Profile: phase=%v", mgr.Phase())
	}
	var last PeriodReport
	mgr.OnPeriod = func(r PeriodReport) { last = r }
	for i := 0; i < 300; i++ {
		done, err := mgr.ExploreStep()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if mgr.Phase() != PhaseIdle {
				t.Fatalf("done but phase=%v", mgr.Phase())
			}
			return last
		}
	}
	t.Fatal("exploration did not converge within 300 periods")
	return last
}

func TestManagerImprovesFairnessHLLC(t *testing.T) {
	m, mgr := testSetup(t, workloads.HLLC, 4)
	eq := eqUnfairness(t, m)
	final := runToIdle(t, mgr)
	if final.Unfairness >= eq {
		t.Errorf("CoPart unfairness %.4f should beat EQ %.4f on H-LLC", final.Unfairness, eq)
	}
}

func TestManagerImprovesFairnessHBW(t *testing.T) {
	m, mgr := testSetup(t, workloads.HBW, 4)
	eq := eqUnfairness(t, m)
	final := runToIdle(t, mgr)
	if final.Unfairness >= eq {
		t.Errorf("CoPart unfairness %.4f should beat EQ %.4f on H-BW", final.Unfairness, eq)
	}
}

func TestManagerImprovesFairnessHBoth(t *testing.T) {
	m, mgr := testSetup(t, workloads.HBoth, 4)
	eq := eqUnfairness(t, m)
	final := runToIdle(t, mgr)
	if final.Unfairness >= eq {
		t.Errorf("CoPart unfairness %.4f should beat EQ %.4f on H-Both", final.Unfairness, eq)
	}
}

func TestManagerStateStaysValid(t *testing.T) {
	_, mgr := testSetup(t, workloads.HBoth, 4)
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	for i := 0; i < 100; i++ {
		done, err := mgr.ExploreStep()
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.State().Validate(cfg.LLCWays); err != nil {
			t.Fatalf("invalid state after step %d: %v", i, err)
		}
		if done {
			break
		}
	}
}

func TestManagerRecordsExploreTimes(t *testing.T) {
	_, mgr := testSetup(t, workloads.MBoth, 4)
	runToIdle(t, mgr)
	if len(mgr.ExploreTimes) == 0 {
		t.Fatal("no exploration timings recorded")
	}
	for _, d := range mgr.ExploreTimes {
		if d <= 0 || d > time.Second {
			t.Errorf("implausible exploration time %v", d)
		}
	}
}

func TestManagerIdleDetectsAppDeparture(t *testing.T) {
	m, mgr := testSetup(t, workloads.HLLC, 4)
	runToIdle(t, mgr)
	// Steady idle period: no change detected.
	changed, err := mgr.IdleStep()
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("idle phase flagged a change on a steady system")
	}
	// An application departs: the next idle step must trigger
	// re-adaptation.
	if err := m.RemoveApp(m.Apps()[0]); err != nil {
		t.Fatal(err)
	}
	changed, err = mgr.IdleStep()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("idle phase missed an application departure")
	}
	if mgr.Phase() != PhaseProfile {
		t.Fatalf("phase=%v want profiling after change", mgr.Phase())
	}
	// Re-adaptation works with the reduced set.
	runToIdle(t, mgr)
}

func TestManagerEnvelopeChangeTriggersReadaptation(t *testing.T) {
	_, mgr := testSetup(t, workloads.HBoth, 4)
	runToIdle(t, mgr)
	if err := mgr.SetEnvelope(Envelope{LoWay: 0, Ways: 7}); err != nil {
		t.Fatal(err)
	}
	changed, err := mgr.IdleStep()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("envelope change not detected")
	}
	final := runToIdle(t, mgr)
	total := 0
	for _, w := range final.State.Ways {
		total += w
	}
	if total > 7 {
		t.Errorf("state uses %d ways, envelope allows 7", total)
	}
}

func TestManagerSetEnvelopeNoopAndInvalid(t *testing.T) {
	_, mgr := testSetup(t, workloads.HLLC, 4)
	if err := mgr.SetEnvelope(Envelope{LoWay: 0, Ways: 11}); err != nil {
		t.Fatal(err)
	}
	if mgr.envChanged {
		t.Error("identical envelope should be a no-op")
	}
	if err := mgr.SetEnvelope(Envelope{LoWay: 9, Ways: 5}); err == nil {
		t.Error("out-of-range envelope should error")
	}
	if err := mgr.SetEnvelope(Envelope{LoWay: 0, Ways: 2}); err == nil {
		t.Error("envelope smaller than app count should error")
	}
}

func TestManagerRunLifecycle(t *testing.T) {
	m, mgr := testSetup(t, workloads.HLLC, 4)
	phases := map[Phase]bool{}
	mgr.OnPeriod = func(r PeriodReport) { phases[r.Phase] = true }
	if err := mgr.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !phases[PhaseExplore] {
		t.Error("Run never explored")
	}
	if !phases[PhaseIdle] {
		t.Error("Run never reached idle")
	}
	if m.Now() < 90*time.Second {
		t.Errorf("virtual time %v did not advance to the deadline", m.Now())
	}
}

func TestNewManagerValidation(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[int]float64{}
	for l := 10; l <= 100; l += 10 {
		ref[l] = 1e8
	}
	r := rand.New(rand.NewSource(1))
	env := Envelope{LoWay: 0, Ways: cfg.LLCWays}

	if _, err := NewManager(m, DefaultParams(), ref, env, r); err == nil {
		t.Error("manager over an empty machine should error")
	}
	spec, err := workloads.ByName(cfg, "WN")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddApp(spec.Model); err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(m, DefaultParams(), ref, env, nil); err == nil {
		t.Error("nil rng should error")
	}
	bad := DefaultParams()
	bad.Theta = 0
	if _, err := NewManager(m, bad, ref, env, r); err == nil {
		t.Error("invalid params should error")
	}
	incompleteRef := map[int]float64{10: 1e8}
	if _, err := NewManager(m, DefaultParams(), incompleteRef, env, r); err == nil {
		t.Error("incomplete STREAM reference should error")
	}
	if _, err := NewManager(m, DefaultParams(), ref, Envelope{LoWay: 20, Ways: 2}, r); err == nil {
		t.Error("invalid envelope should error")
	}
	if _, err := NewManager(m, DefaultParams(), ref, env, r); err != nil {
		t.Errorf("valid manager rejected: %v", err)
	}
}

func TestPhaseString(t *testing.T) {
	for _, p := range []Phase{PhaseProfile, PhaseExplore, PhaseIdle} {
		if p.String() == "" {
			t.Errorf("empty name for phase %d", int(p))
		}
	}
	if Phase(7).String() == "" {
		t.Error("unknown phase should render")
	}
}

func TestExploreStepWrongPhase(t *testing.T) {
	_, mgr := testSetup(t, workloads.HLLC, 4)
	if _, err := mgr.ExploreStep(); err == nil {
		t.Error("ExploreStep before profiling should error")
	}
	if _, err := mgr.IdleStep(); err == nil {
		t.Error("IdleStep before profiling should error")
	}
}
