package core

import (
	"math/rand"
	"testing"

	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// TestManagerRobustUnderMeasurementNoise runs the full controller against
// jittery PMCs (the regime Figure 11 sweeps) and asserts it still ends in
// a state that clearly beats EQ — noise may slow convergence but must not
// break the outcome.
func TestManagerRobustUnderMeasurementNoise(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.MeasurementNoise = 0.03
	cfg.NoiseSeed = 11
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HLLC, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(m, DefaultParams(), ref,
		Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		done, err := mgr.ExploreStep()
		if err != nil {
			t.Fatalf("period %d: %v", i, err)
		}
		if done {
			break
		}
	}
	// Score the final state noise-free: solve the machine analytically at
	// the allocations the noisy controller chose.
	names := m.Apps()
	slowdowns := make([]float64, len(names))
	perfs, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		model, err := m.Model(name)
		if err != nil {
			t.Fatal(err)
		}
		solo, err := m.SoloPerf(model)
		if err != nil {
			t.Fatal(err)
		}
		slowdowns[i] = solo.IPS / perfs[i].IPS
	}
	got, err := fairness.Unfairness(slowdowns)
	if err != nil {
		t.Fatal(err)
	}
	// EQ on this mix scores ~0.153; the noisy controller must land far
	// below it even if not at the noiseless optimum (~0.004).
	if got > 0.08 {
		t.Errorf("unfairness %.4f under 3%% PMC noise; want well below EQ's 0.153", got)
	}
}
