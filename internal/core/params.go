// Package core implements CoPart: the LLC characteristic classifier
// (Figure 8), the memory-bandwidth characteristic classifier (Figure 9),
// and the resource manager (Figure 10, Algorithms 1 and 2) that
// coordinates LLC-way and memory-bandwidth partitioning to maximize the
// fairness of consolidated applications.
package core

import (
	"fmt"
	"time"
)

// Params holds CoPart's design parameters. Default values are the paper's
// (§5.2, §5.3, §5.4.1, Algorithm 1); §5.5.3 explores their sensitivity,
// which experiments/sensitivity.go reproduces.
type Params struct {
	// Alpha (α) is the LLC access-rate threshold, accesses/s: below it an
	// application barely exercises the cache and supplies capacity.
	Alpha float64
	// BetaLow (β) is the low LLC miss-ratio threshold: below it the
	// working set fits comfortably and the application supplies capacity.
	BetaLow float64
	// BetaHigh (Β) is the high LLC miss-ratio threshold: above it the
	// application demands more capacity.
	BetaHigh float64
	// DeltaPerf (δ_P) is the relative performance-change threshold used
	// by both FSMs to judge whether the last allocation change mattered.
	DeltaPerf float64
	// GammaLow (γ) is the low memory-traffic-ratio threshold: below it
	// the application supplies bandwidth.
	GammaLow float64
	// GammaHigh (Γ) is the high memory-traffic-ratio threshold: above it
	// the application demands bandwidth.
	GammaHigh float64
	// Theta (θ) is the retry budget of the exploration loop: after θ
	// consecutive periods with no state change (each answered with a
	// random neighbor state), the manager transitions to the idle phase.
	Theta int
	// ProfileWays (l_P) and ProfileMBA (M_P) are the constrained
	// allocations used by the profiling phase.
	ProfileWays int
	ProfileMBA  int
	// ProfileDemandThreshold is the degradation above which the profiling
	// phase seeds an FSM in the Demand state (§5.4.1: 10 %).
	ProfileDemandThreshold float64
	// ProfileSupplyThreshold is the degradation below which profiling
	// seeds Supply; between the two thresholds it seeds Maintain. The
	// paper only states the Demand threshold; 3 % is our documented
	// choice for the Supply boundary.
	ProfileSupplyThreshold float64
	// Period is the control period (the paper samples once per second).
	Period time.Duration
	// IdleChangeThreshold is the relative IPS change during the idle
	// phase that is treated as a workload change and triggers
	// re-adaptation (§5.4.3 detects "changes"; the paper does not give
	// the threshold — 20 % is our documented choice).
	IdleChangeThreshold float64
}

// DefaultParams returns the paper's configuration.
func DefaultParams() Params {
	return Params{
		Alpha:                  1.5e6,
		BetaLow:                0.01,
		BetaHigh:               0.03,
		DeltaPerf:              0.05,
		GammaLow:               0.10,
		GammaHigh:              0.30,
		Theta:                  3,
		ProfileWays:            2,
		ProfileMBA:             20,
		ProfileDemandThreshold: 0.10,
		ProfileSupplyThreshold: 0.03,
		Period:                 time.Second,
		IdleChangeThreshold:    0.20,
	}
}

// IsZero reports whether p is the zero value — the "use defaults"
// sentinel the policy layer accepts in place of explicit parameters.
// The fields are compared to literal zero individually rather than
// comparing whole Params values with ==: exact struct equality over
// float fields is the hazard copartlint's floatcmp pass flags, and the
// zero sentinel is the one comparison that is legitimately exact.
func (p Params) IsZero() bool {
	return p.Alpha == 0 && p.BetaLow == 0 && p.BetaHigh == 0 &&
		p.DeltaPerf == 0 && p.GammaLow == 0 && p.GammaHigh == 0 &&
		p.Theta == 0 && p.ProfileWays == 0 && p.ProfileMBA == 0 &&
		p.ProfileDemandThreshold == 0 && p.ProfileSupplyThreshold == 0 &&
		p.Period == 0 && p.IdleChangeThreshold == 0
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	if p.Alpha < 0 {
		return fmt.Errorf("core: negative α %v", p.Alpha)
	}
	if p.BetaLow < 0 || p.BetaLow > 1 || p.BetaHigh < p.BetaLow || p.BetaHigh > 1 {
		return fmt.Errorf("core: invalid miss-ratio thresholds β=%v Β=%v", p.BetaLow, p.BetaHigh)
	}
	if p.DeltaPerf <= 0 || p.DeltaPerf >= 1 {
		return fmt.Errorf("core: invalid δ_P %v", p.DeltaPerf)
	}
	if p.GammaLow < 0 || p.GammaHigh < p.GammaLow {
		return fmt.Errorf("core: invalid traffic-ratio thresholds γ=%v Γ=%v", p.GammaLow, p.GammaHigh)
	}
	if p.Theta < 1 {
		return fmt.Errorf("core: invalid θ %d", p.Theta)
	}
	if p.ProfileWays < 1 {
		return fmt.Errorf("core: invalid l_P %d", p.ProfileWays)
	}
	if p.ProfileMBA < 10 || p.ProfileMBA > 100 || p.ProfileMBA%10 != 0 {
		return fmt.Errorf("core: invalid M_P %d", p.ProfileMBA)
	}
	if p.ProfileDemandThreshold <= 0 || p.ProfileDemandThreshold >= 1 {
		return fmt.Errorf("core: invalid profile demand threshold %v", p.ProfileDemandThreshold)
	}
	if p.ProfileSupplyThreshold < 0 || p.ProfileSupplyThreshold >= p.ProfileDemandThreshold {
		return fmt.Errorf("core: invalid profile supply threshold %v", p.ProfileSupplyThreshold)
	}
	if p.Period <= 0 {
		return fmt.Errorf("core: non-positive period %v", p.Period)
	}
	if p.IdleChangeThreshold <= 0 {
		return fmt.Errorf("core: non-positive idle change threshold %v", p.IdleChangeThreshold)
	}
	return nil
}
