package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// TestManagerReadaptsOnPhaseChange exercises §5.4.3's third change
// trigger: an application whose *behaviour* shifts (not its presence).
// A consolidated application runs quietly, the manager converges and
// idles; then the application enters a memory-hungry phase, its IPS
// drifts past the idle change threshold, and the manager must re-profile
// and re-adapt.
func TestManagerReadaptsOnPhaseChange(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Three steady benchmarks plus one two-phase application that is
	// insensitive for its first 120 s and LLC-hungry afterwards.
	for _, name := range []string{"WN", "CG"} {
		spec, err := workloads.ByName(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		model := spec.Model
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	phased := machine.AppModel{
		Name: "bursty", Cores: 4, CPIBase: 0.8, AccPerInstr: 0.008,
		Hot:        []machine.WSComponent{{Bytes: 1 << 20, Weight: 0.95, MLP: 1}},
		StreamFrac: 0.05,
		MLP:        4,
		Phases: []machine.ModelPhase{
			{Duration: 120 * time.Second},
			{Duration: 600 * time.Second, AccScale: 4, HotScale: 8},
		},
	}
	if err := m.AddApp(phased); err != nil {
		t.Fatal(err)
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(m, DefaultParams(), ref,
		Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}

	profiles := 0
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	profiles++
	for i := 0; i < 100 && mgr.Phase() == PhaseExplore; i++ {
		if _, err := mgr.ExploreStep(); err != nil {
			t.Fatal(err)
		}
	}
	if mgr.Phase() != PhaseIdle {
		t.Fatalf("no convergence in the quiet phase (phase %v)", mgr.Phase())
	}
	if m.Now() >= 120*time.Second {
		t.Fatalf("setup too slow: t=%v already in the hot phase", m.Now())
	}

	// Idle through the phase boundary: the manager must flag the change.
	changed := false
	for i := 0; i < 200 && m.Now() < 200*time.Second; i++ {
		ch, err := mgr.IdleStep()
		if err != nil {
			t.Fatal(err)
		}
		if ch {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("idle phase never detected the behavioural change")
	}
	if mgr.Phase() != PhaseProfile {
		t.Fatalf("phase %v after change detection, want profiling", mgr.Phase())
	}

	// Re-adaptation completes and the hungry app now holds more ways
	// than its quiet-phase allocation.
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && mgr.Phase() == PhaseExplore; i++ {
		if _, err := mgr.ExploreStep(); err != nil {
			t.Fatal(err)
		}
	}
	if mgr.Phase() != PhaseIdle {
		t.Fatalf("no re-convergence after the phase change (phase %v)", mgr.Phase())
	}
	alloc, err := m.Allocation("bursty")
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Ways() < 2 {
		t.Errorf("hungry phase should attract LLC ways, got %d", alloc.Ways())
	}
}
