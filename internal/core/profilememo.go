package core

import (
	"fmt"

	"repro/internal/eventlog"
)

// ProfileMemo captures the measurement outcomes of one Profile pass:
// each application's full-resource IPS and the classifier seed states
// derived from the probe degradations. Everything else Profile does —
// the equal-split start state, the scratch layout, the phase flags —
// is a cheap deterministic recomputation; the probes are the expensive
// part, and they are a pure function of the target's configuration and
// application set whenever the target is noise-free and the manager
// consumes no randomness during profiling (it never does: probes are
// fixed allocations, and the seeds are thresholds over measured ratios).
//
// A memo is therefore reusable across managers driving *identical*
// targets under *identical* manager configuration (Params, Envelope,
// Features, Freeze flags, stream reference). The fleet keys its memo
// registry on exactly that identity (machine fingerprint, mix kind,
// application count) and pairs RestoreProfileMemo with
// machine.RestoreHotState so the combined (machine, manager) state is
// bit-identical to a live Profile — pinned by TestFleetPoolGolden.
type ProfileMemo struct {
	ipsFull  []float64
	llcSeeds []State
	mbaSeeds []State
}

// ExportProfileMemo captures the current profiling outcome. It must be
// called immediately after a successful Profile, before any control
// period: the classifiers are then still in their seed states (the
// Freeze flags, if set, are already folded in — the memo records the
// post-freeze seeds, so it is only valid for managers with the same
// flags). It returns nil when there is nothing exportable.
func (m *Manager) ExportProfileMemo() *ProfileMemo {
	if m.phase != PhaseExplore || len(m.apps) == 0 {
		return nil
	}
	pm := &ProfileMemo{
		ipsFull:  make([]float64, len(m.apps)),
		llcSeeds: make([]State, len(m.apps)),
		mbaSeeds: make([]State, len(m.apps)),
	}
	for i, a := range m.apps {
		if a.llc == nil || a.mba == nil || a.havePerf {
			return nil
		}
		pm.ipsFull[i] = a.ipsFull
		pm.llcSeeds[i] = a.llc.State()
		pm.mbaSeeds[i] = a.mba.State()
	}
	return pm
}

// RestoreProfileMemo re-establishes the post-profiling manager state
// from a memo instead of running the probe periods. The caller must
// first restore the target to the state a live Profile would have left
// it in (machine.RestoreHotState); this method then performs the same
// cheap setup Profile performs — resetApps, the equal-split state,
// applyState — seeds the classifiers from the memo, and re-anchors the
// sampler at the target's current counters, exactly where Profile's
// last probe pass left it. A classifier seeded from a memo is
// bit-identical to one seeded by a live probe (Reinit is exhaustive),
// so the subsequent control trajectory is too.
func (m *Manager) RestoreProfileMemo(pm *ProfileMemo) error {
	names := m.targetApps()
	if len(names) == 0 {
		return fmt.Errorf("core: no applications to profile")
	}
	if len(names) != len(pm.ipsFull) {
		return fmt.Errorf("core: profile memo covers %d apps, target has %d", len(pm.ipsFull), len(names))
	}
	if err := m.env.Validate(m.target.Config(), len(names)); err != nil {
		return err
	}
	m.resetApps(names)
	if err := m.equalStateInto(&m.eq); err != nil {
		return err
	}
	// Forget change history exactly as Profile does (see its comment).
	m.state.Ways, m.state.MBA = m.state.Ways[:0], m.state.MBA[:0]
	if err := m.applyState(m.eq); err != nil {
		return err
	}
	for i := range m.apps {
		a := m.apps[i]
		a.ipsFull = pm.ipsFull[i]
		llcSeed, mbaSeed := pm.llcSeeds[i], pm.mbaSeeds[i]
		if a.llc == nil {
			a.llc = NewLLCClassifier(m.params, llcSeed, llcSeed == Demand)
		} else {
			a.llc.Reinit(m.params, llcSeed, llcSeed == Demand)
		}
		a.llc.UseFeatures(m.Features)
		if a.mba == nil {
			a.mba = NewMBAClassifier(m.params, mbaSeed, mbaSeed == Demand)
		} else {
			a.mba.Reinit(m.params, mbaSeed, mbaSeed == Demand)
		}
		a.mba.UseFeatures(m.Features)
		a.havePerf = false
		// First sighting anchors the sampler at (current counters, now) —
		// the same snapshot Profile's final closing pass leaves behind.
		if _, _, err := m.sampler.Sample(a.name, m.target.Now()); err != nil {
			return err
		}
	}
	// The sightings above anchored every app at the current instant —
	// the same condition a live Profile's final closing pass establishes.
	m.anchorValid = true
	m.anchoredAt = m.target.Now()
	m.phase = PhaseExplore
	m.retry = 0
	m.envChanged = false
	m.haveBest = false
	m.memoOK = m.Features.ScoreMemo && !m.Resilience.Enabled && steadyTarget(m.target)
	if m.Events.Enabled() {
		m.logf(eventlog.KindPhase, "", "profile restored from memo, exploring %d apps in envelope [%d,%d)",
			len(m.apps), m.env.LoWay, m.env.LoWay+m.env.Ways)
	}
	return nil
}
