package core

import (
	"fmt"
	"time"

	"repro/internal/eventlog"
	"repro/internal/machine"
)

// Resilience configures how the manager survives transient substrate
// failures: counter reads that error, schemata writes that hit EBUSY,
// steps that fail. The zero value disables all of it, which preserves
// the original fail-fast behavior (every error surfaces from Run) and
// keeps controller decisions bit-identical to the unhardened loop.
//
// With resilience enabled, failed target operations are retried with a
// bounded linear backoff, a watchdog counts consecutive failed control
// periods, and after DegradeAfter consecutive failures the manager stops
// optimizing and falls back to the safe EQ allocation — equal LLC ways,
// equal MBA shares — where it stays until counter reads succeed again,
// then re-enters profiling from scratch.
type Resilience struct {
	// Enabled turns the hardened control loop on.
	Enabled bool
	// MaxRetries is how many extra attempts a failed counter read,
	// schemata write, or step gets before the period is declared failed.
	MaxRetries int
	// RetryBackoff is the base backoff between attempts, in target time:
	// attempt k waits k×RetryBackoff. Zero retries immediately.
	RetryBackoff time.Duration
	// DegradeAfter is the number of consecutive failed control periods
	// before the EQ fallback; zero means "use Params.Theta", matching the
	// exploration loop's retry budget θ.
	DegradeAfter int
	// RecoverAfter is the number of consecutive healthy degraded periods
	// (step succeeded, every counter readable) before the manager leaves
	// degraded mode and re-enters profiling.
	RecoverAfter int
	// MaxClockStalls bounds how many consecutive failed periods may pass
	// without the target clock advancing before Run gives up. It guards
	// against a permanently wedged Step, which would otherwise spin the
	// control loop forever.
	MaxClockStalls int
}

// DefaultResilience returns the hardened configuration used by copartd
// and the chaos experiments.
func DefaultResilience() Resilience {
	return Resilience{
		Enabled:        true,
		MaxRetries:     2,
		RetryBackoff:   100 * time.Millisecond,
		DegradeAfter:   0, // θ
		RecoverAfter:   2,
		MaxClockStalls: 1000,
	}
}

// Validate checks the configuration; only enabled configurations are
// constrained.
func (r Resilience) Validate() error {
	if !r.Enabled {
		return nil
	}
	if r.MaxRetries < 0 {
		return fmt.Errorf("core: negative retry budget %d", r.MaxRetries)
	}
	if r.RetryBackoff < 0 {
		return fmt.Errorf("core: negative retry backoff %v", r.RetryBackoff)
	}
	if r.DegradeAfter < 0 {
		return fmt.Errorf("core: negative degrade threshold %d", r.DegradeAfter)
	}
	if r.RecoverAfter < 1 {
		return fmt.Errorf("core: recovery threshold %d < 1", r.RecoverAfter)
	}
	if r.MaxClockStalls < 1 {
		return fmt.Errorf("core: clock-stall budget %d < 1", r.MaxClockStalls)
	}
	return nil
}

// degradeAfter resolves the failed-period threshold, defaulting to θ.
func (m *Manager) degradeAfter() int {
	if m.Resilience.DegradeAfter > 0 {
		return m.Resilience.DegradeAfter
	}
	return m.params.Theta
}

// retryOp runs op; when resilience is enabled and op fails with a
// transient error, it is retried up to MaxRetries times with a linear
// target-time backoff. Every retry and recovery is logged. The last
// error is returned when the budget is exhausted.
func (m *Manager) retryOp(what, app string, op func() error) error {
	err := op()
	if err == nil || !m.Resilience.Enabled {
		return err
	}
	for attempt := 1; attempt <= m.Resilience.MaxRetries; attempt++ {
		m.logf(eventlog.KindRetry, app, "%s failed, retrying (%d/%d): %v",
			what, attempt, m.Resilience.MaxRetries, err)
		if m.Resilience.RetryBackoff > 0 {
			if serr := m.target.Step(time.Duration(attempt) * m.Resilience.RetryBackoff); serr != nil {
				m.logf(eventlog.KindFault, app, "backoff step failed: %v", serr)
			}
		}
		if err = op(); err == nil {
			m.logf(eventlog.KindRetry, app, "%s recovered after %d retries", what, attempt)
			return nil
		}
	}
	return err
}

// setAllocation programs one application's allocation, with retries when
// resilience is enabled. The direct call in the disabled case keeps the
// per-period path free of retry-closure allocations.
func (m *Manager) setAllocation(name string, a machine.Alloc) error {
	if !m.Resilience.Enabled {
		return m.target.SetAllocation(name, a)
	}
	return m.retryOp("allocation write", name, func() error {
		return m.target.SetAllocation(name, a)
	})
}

// enterDegraded switches the manager into degraded mode after the
// watchdog tripped.
func (m *Manager) enterDegraded() {
	m.phase = PhaseDegraded
	m.eqApplied = false
	m.recoverStreak = 0
	m.logf(eventlog.KindFallback, "", "degraded mode after %d consecutive failed periods, falling back to EQ",
		m.failStreak)
}

// degradedStep runs one control period in degraded mode: hold (or keep
// trying to apply) the safe EQ allocation, let a period pass, and probe
// whether the substrate has healed. After RecoverAfter consecutive
// healthy periods the manager re-enters profiling.
func (m *Manager) degradedStep() error {
	if !m.eqApplied {
		if err := m.applyDegradedEQ(); err != nil {
			return fmt.Errorf("core: degraded: EQ fallback: %w", err)
		}
		m.eqApplied = true
		m.logf(eventlog.KindFallback, "", "EQ fallback allocation applied to %d apps", len(m.target.Apps()))
	}
	if err := m.target.Step(m.params.Period); err != nil {
		return fmt.Errorf("core: degraded: step: %w", err)
	}
	names := m.target.Apps()
	if len(names) == 0 {
		return fmt.Errorf("core: degraded: no applications")
	}
	for _, name := range names {
		if _, err := m.target.ReadCounters(name); err != nil {
			m.recoverStreak = 0
			return fmt.Errorf("core: degraded: probe %s: %w", name, err)
		}
	}
	m.recoverStreak++
	if m.recoverStreak >= m.Resilience.RecoverAfter {
		m.phase = PhaseProfile
		m.logf(eventlog.KindRecover, "", "counters healthy for %d periods, re-entering profiling",
			m.recoverStreak)
	}
	return nil
}

// DegradedStep runs one control period in degraded mode — the public,
// phase-checked form of the step Run takes internally. External drivers
// that own their period loop (the fleet) call it when Phase reports
// PhaseDegraded, exactly as they call ExploreStep and IdleStep for the
// other phases.
func (m *Manager) DegradedStep() error {
	if m.phase != PhaseDegraded {
		return fmt.Errorf("core: DegradedStep called in %v phase", m.phase)
	}
	return m.degradedStep()
}

// NotePeriod feeds the resilience watchdog from an external period
// loop: drivers that call Profile/ExploreStep/IdleStep/DegradedStep
// themselves (instead of Run) report each period's outcome here to get
// the same degraded-mode entry Run implements inline. A successful
// period clears the failure streak; with resilience enabled, a failed
// one extends it and trips the EQ fallback at the degrade threshold.
func (m *Manager) NotePeriod(failed bool) {
	if !failed {
		m.failStreak = 0
		return
	}
	if !m.Resilience.Enabled {
		return
	}
	m.failStreak++
	m.logf(eventlog.KindFault, "", "control period failed (streak %d)", m.failStreak)
	if m.phase != PhaseDegraded && m.failStreak >= m.degradeAfter() {
		m.enterDegraded()
	}
}

// applyDegradedEQ programs the equal-split allocation directly from the
// target's current application list. It deliberately bypasses the
// manager's runtime state: applications may have arrived or departed
// while periods were failing, and profiling will rebuild all state on
// recovery anyway.
func (m *Manager) applyDegradedEQ() error {
	names := m.target.Apps()
	if len(names) == 0 {
		return fmt.Errorf("core: no applications to manage")
	}
	if err := m.env.Validate(m.target.Config(), len(names)); err != nil {
		return err
	}
	counts, err := machine.EqualSplit(m.env.Ways, len(names))
	if err != nil {
		return err
	}
	masks, err := machine.AssignContiguousWays(counts, m.env.LoWay, m.env.Ways)
	if err != nil {
		return err
	}
	level := EqualMBAShare(len(names))
	for i, name := range names {
		if err := m.setAllocation(name, machine.Alloc{CBM: masks[i], MBALevel: level}); err != nil {
			return err
		}
	}
	return nil
}
