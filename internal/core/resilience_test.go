package core

import (
	"errors"
	"math/bits"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/eventlog"
	"repro/internal/machine"
	"repro/internal/workloads"
)

func TestResilienceValidate(t *testing.T) {
	if err := (Resilience{}).Validate(); err != nil {
		t.Errorf("disabled resilience must validate: %v", err)
	}
	if err := DefaultResilience().Validate(); err != nil {
		t.Errorf("default resilience must validate: %v", err)
	}
	bad := []Resilience{
		{Enabled: true, MaxRetries: -1, RecoverAfter: 1, MaxClockStalls: 1},
		{Enabled: true, RetryBackoff: -time.Second, RecoverAfter: 1, MaxClockStalls: 1},
		{Enabled: true, DegradeAfter: -1, RecoverAfter: 1, MaxClockStalls: 1},
		{Enabled: true, RecoverAfter: 0, MaxClockStalls: 1},
		{Enabled: true, RecoverAfter: 1, MaxClockStalls: 0},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: %+v should not validate", i, r)
		}
	}
}

// TestResilienceBitIdenticalWithoutFaults pins the acceptance criterion
// that enabling resilience on a healthy substrate changes nothing: the
// manager visits the same states at the same times as the fail-fast
// loop.
func TestResilienceBitIdenticalWithoutFaults(t *testing.T) {
	_, plain := testSetup(t, workloads.HBoth, 4)
	_, hard := testSetup(t, workloads.HBoth, 4)
	hard.Resilience = DefaultResilience()

	var plainTrace, hardTrace []PeriodReport
	plain.OnPeriod = func(r PeriodReport) { plainTrace = append(plainTrace, r) }
	hard.OnPeriod = func(r PeriodReport) { hardTrace = append(hardTrace, r) }
	if err := plain.Run(240 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := hard.Run(240 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(plainTrace) == 0 {
		t.Fatal("no control periods observed")
	}
	if len(plainTrace) != len(hardTrace) {
		t.Fatalf("trajectory lengths diverged: %d vs %d", len(plainTrace), len(hardTrace))
	}
	for i := range plainTrace {
		p, h := plainTrace[i], hardTrace[i]
		if p.Time != h.Time || p.Phase != h.Phase || !p.State.Equal(h.State) {
			t.Fatalf("period %d diverged:\n fail-fast: t=%v %v %v\n resilient: t=%v %v %v",
				i, p.Time, p.Phase, p.State, h.Time, h.Phase, h.State)
		}
	}
}

// allocWrite records one SetAllocation call with its target time.
type allocWrite struct {
	at   time.Duration
	name string
	a    machine.Alloc
}

// outageTarget wraps a machine and fails every counter read inside the
// [from, to) window of target time, while recording all allocation
// writes so tests can check what the manager programmed and when.
type outageTarget struct {
	*machine.Machine
	from, to time.Duration
	writes   []allocWrite
}

func (o *outageTarget) ReadCounters(name string) (machine.Counters, error) {
	if t := o.Machine.Now(); t >= o.from && t < o.to {
		return machine.Counters{}, errors.New("injected counter outage")
	}
	return o.Machine.ReadCounters(name)
}

func (o *outageTarget) SetAllocation(name string, a machine.Alloc) error {
	o.writes = append(o.writes, allocWrite{at: o.Machine.Now(), name: name, a: a})
	return o.Machine.SetAllocation(name, a)
}

func newOutageSetup(t *testing.T) (*outageTarget, *Manager, *eventlog.Log) {
	t.Helper()
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HBoth, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	target := &outageTarget{Machine: m}
	mgr, err := NewManager(target, DefaultParams(), ref,
		Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	mgr.Resilience = DefaultResilience()
	log, err := eventlog.New(4096)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Events = log
	return target, mgr, log
}

// TestDegradedModeEntryAndRecovery drives the full watchdog arc: a
// 20-second total counter outage must push the manager into degraded
// mode after exactly θ consecutive failed periods, the EQ fallback must
// be programmed during the outage, and once reads heal the manager must
// re-profile and settle back into idle — with Run returning nil
// throughout.
func TestDegradedModeEntryAndRecovery(t *testing.T) {
	target, mgr, log := newOutageSetup(t)

	// Converge on the healthy substrate first.
	if err := mgr.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if mgr.Phase() != PhaseIdle {
		t.Fatalf("phase %v before outage, want idle", mgr.Phase())
	}

	// Fail every counter read for the next 20 seconds.
	target.from = target.Now()
	target.to = target.from + 20*time.Second
	target.writes = nil
	if err := mgr.Run(150 * time.Second); err != nil {
		t.Fatalf("Run must survive the outage with resilience enabled: %v", err)
	}

	var fallbackAt time.Duration = -1
	var faultsBeforeFallback, fallbacks, recovers int
	for _, e := range log.Events() {
		switch e.Kind {
		case eventlog.KindFallback:
			if strings.Contains(e.Detail, "degraded mode") {
				fallbacks++
				if fallbackAt < 0 {
					fallbackAt = e.Time
				}
			}
		case eventlog.KindRecover:
			recovers++
		case eventlog.KindFault:
			if strings.Contains(e.Detail, "control period failed") &&
				(fallbackAt < 0 || e.Time <= fallbackAt) {
				faultsBeforeFallback++
			}
		}
	}
	if fallbacks != 1 {
		t.Fatalf("%d fallback transitions, want exactly 1", fallbacks)
	}
	if recovers != 1 {
		t.Fatalf("%d recoveries, want exactly 1", recovers)
	}
	theta := DefaultParams().Theta
	if faultsBeforeFallback != theta {
		t.Errorf("%d failed periods before fallback, want θ=%d", faultsBeforeFallback, theta)
	}

	// The EQ allocation — an equal way split (within one way, 11 ways do
	// not divide by 4) at the equal MBA share — must have been written to
	// every app while reads were still failing.
	cfg := target.Config()
	loWays, hiWays := cfg.LLCWays/4, (cfg.LLCWays+3)/4
	wantMBA := EqualMBAShare(4)
	eqApps := make(map[string]bool)
	for _, w := range target.writes {
		ways := bits.OnesCount64(w.a.CBM)
		if w.at >= target.from && w.at < target.to &&
			ways >= loWays && ways <= hiWays && w.a.MBALevel == wantMBA {
			eqApps[w.name] = true
		}
	}
	if len(eqApps) != 4 {
		t.Errorf("EQ allocation written to %d apps during the outage, want all 4", len(eqApps))
	}

	if mgr.Phase() != PhaseIdle {
		t.Errorf("phase %v after recovery window, want idle again", mgr.Phase())
	}
}

// TestRetryRecoversTransientReadError checks that a one-shot read error
// is absorbed by the retry layer without failing the period.
func TestRetryRecoversTransientReadError(t *testing.T) {
	target, mgr, log := newOutageSetup(t)
	if err := mgr.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// An outage shorter than one retry backoff: the first retry already
	// lands outside the window.
	target.from = target.Now()
	target.to = target.from + 50*time.Millisecond
	if err := mgr.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	retried, recovered := 0, 0
	for _, e := range log.Events() {
		if e.Kind != eventlog.KindRetry {
			continue
		}
		if strings.Contains(e.Detail, "retrying") {
			retried++
		}
		if strings.Contains(e.Detail, "recovered") {
			recovered++
		}
	}
	if retried == 0 || recovered == 0 {
		t.Errorf("retry layer saw %d retries / %d recoveries, want both > 0", retried, recovered)
	}
	for _, e := range log.Events() {
		if e.Kind == eventlog.KindFallback {
			t.Errorf("blip should not reach degraded mode: %v", e.Detail)
		}
	}
}

// TestStopHaltsRun checks the cooperative shutdown used by copartd's
// signal handler.
func TestStopHaltsRun(t *testing.T) {
	_, mgr := testSetup(t, workloads.HBoth, 4)
	periods := 0
	mgr.OnPeriod = func(PeriodReport) {
		periods++
		if periods == 3 {
			mgr.Stop()
		}
	}
	if err := mgr.Run(600 * time.Second); err != nil {
		t.Fatal(err)
	}
	if periods > 4 {
		t.Errorf("Run kept going for %d periods after Stop", periods)
	}
}

// TestRunBailsOutWhenClockWedged: when Step permanently fails, no virtual
// time can pass, and Run must give up after MaxClockStalls failed
// periods instead of spinning forever.
func TestRunBailsOutWhenClockWedged(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HLLC, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(&stuckTarget{Machine: m}, DefaultParams(), ref,
		Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	mgr.Resilience = Resilience{Enabled: true, RecoverAfter: 1, MaxClockStalls: 5}
	err = mgr.Run(60 * time.Second)
	if err == nil {
		t.Fatal("a wedged clock must surface as an error")
	}
	if !strings.Contains(err.Error(), "clock stalled") {
		t.Errorf("error %v should name the stalled clock", err)
	}
}
