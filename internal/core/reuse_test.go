package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// periodRec is one control period's observable outcome, recorded by the
// bit-identity tests below.
type periodRec struct {
	phase      Phase
	unfairness float64
	state      AllocState
}

// reuseSetup builds the fleet-shaped substrate: a cached machine with a
// 4-app mix, the STREAM reference, and a manager over a reseedable
// source.
func reuseSetup(t *testing.T) (*machine.Machine, []machine.AppModel, *Manager, rand.Source) {
	t.Helper()
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg, machine.WithSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HBoth, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	// The STREAM reference is measured on a scratch machine, as the fleet
	// does (mix.StreamRef), so the node machine's cache counters reflect
	// only the controller's own solves.
	scratch, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := workloads.StreamMissRates(scratch)
	if err != nil {
		t.Fatal(err)
	}
	src := rand.NewSource(7)
	mgr, err := NewManager(m, DefaultParams(), ref, Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(src))
	if err != nil {
		t.Fatal(err)
	}
	return m, models, mgr, src
}

// runPeriods drives the manager phase-by-phase like the fleet node loop
// and records each period's outcome.
func runPeriods(t *testing.T, mgr *Manager, n int) []periodRec {
	t.Helper()
	recs := make([]periodRec, 0, n)
	for i := 0; i < n; i++ {
		var err error
		switch mgr.Phase() {
		case PhaseExplore:
			_, err = mgr.ExploreStep()
		case PhaseIdle:
			_, err = mgr.IdleStep()
		default:
			t.Fatalf("period %d: unexpected phase %v", i, mgr.Phase())
		}
		if err != nil {
			t.Fatalf("period %d: %v", i, err)
		}
		recs = append(recs, periodRec{
			phase:      mgr.Phase(),
			unfairness: mgr.LastUnfairness(),
			state:      mgr.State(),
		})
	}
	return recs
}

// snapshotSansShared clears the one documented-nondeterministic counter
// (SharedHits depends on what the rest of the process solved first)
// before snapshot comparison.
func snapshotSansShared(m *machine.Machine) machine.Snapshot {
	snap := m.Snapshot()
	if snap.SolveCache != nil {
		snap.SolveCache.SharedHits = 0
	}
	return snap
}

// TestManagerReuseBitIdentical pins the contract the fleet's runtime
// pool is built on, at the core layer: a reused manager over a reset
// machine and a reseeded RNG produces exactly the trajectory a freshly
// constructed one does — every period's phase, unfairness, and
// allocation state, and the machine's final counters.
func TestManagerReuseBitIdentical(t *testing.T) {
	const periods = 30
	m, models, mgr, src := reuseSetup(t)
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	want := runPeriods(t, mgr, periods)
	wantSnap := snapshotSansShared(m)

	m.Reset()
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	src.Seed(7)
	if err := mgr.Reuse(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	got := runPeriods(t, mgr, periods)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("reused manager diverged from the fresh run")
	}
	if gotSnap := snapshotSansShared(m); !reflect.DeepEqual(wantSnap, gotSnap) {
		t.Errorf("reused machine's final snapshot differs from the fresh run's")
	}
}

// TestProfileMemoRestoreBitIdentical pins the profile-memo fast path:
// restoring a machine hot-state checkpoint plus a ProfileMemo leaves
// the (machine, manager) pair bit-identical to a live Profile — the
// same per-period trajectory and the same final machine snapshot. This
// is the per-layer half of the fleet's TestFleetPoolGolden.
func TestProfileMemoRestoreBitIdentical(t *testing.T) {
	const periods = 30
	mA, models, mgrA, _ := reuseSetup(t)
	if err := mgrA.Profile(); err != nil {
		t.Fatal(err)
	}
	hot, err := mA.CaptureHotState()
	if err != nil {
		t.Fatal(err)
	}
	pm := mgrA.ExportProfileMemo()
	if pm == nil {
		t.Fatal("ExportProfileMemo returned nil right after Profile")
	}
	want := runPeriods(t, mgrA, periods)
	wantSnap := snapshotSansShared(mA)

	mB, _, mgrB, _ := reuseSetup(t)
	_ = models
	if err := mB.RestoreHotState(hot); err != nil {
		t.Fatal(err)
	}
	if err := mgrB.RestoreProfileMemo(pm); err != nil {
		t.Fatal(err)
	}
	got := runPeriods(t, mgrB, periods)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("memo-restored manager diverged from the live-profiled run")
	}
	if gotSnap := snapshotSansShared(mB); !reflect.DeepEqual(wantSnap, gotSnap) {
		t.Errorf("memo-restored machine's final snapshot differs from the live-profiled run's")
	}
}

// TestManagerReuseAllocationGuard pins the relaunch cycle's allocation
// budget: once warm, a full pooled-node reinitialization — machine
// Reset, application relaunch, manager Reuse, hot-state restore, and
// profile-memo restore — must not touch the heap.
func TestManagerReuseAllocationGuard(t *testing.T) {
	m, models, mgr, src := reuseSetup(t)
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	hot, err := m.CaptureHotState()
	if err != nil {
		t.Fatal(err)
	}
	pm := mgr.ExportProfileMemo()
	if pm == nil {
		t.Fatal("ExportProfileMemo returned nil right after Profile")
	}
	cycle := func() {
		m.Reset()
		for _, model := range models {
			if err := m.AddApp(model); err != nil {
				t.Fatal(err)
			}
		}
		src.Seed(7)
		if err := mgr.Reuse(); err != nil {
			t.Fatal(err)
		}
		if err := m.RestoreHotState(hot); err != nil {
			t.Fatal(err)
		}
		if err := mgr.RestoreProfileMemo(pm); err != nil {
			t.Fatal(err)
		}
	}
	cycle()          // warm: grow slots, scratch, intern table
	const budget = 2 // slack for the runtime; the cycle itself must be clean
	if avg := testing.AllocsPerRun(100, cycle); avg > budget {
		t.Errorf("pooled relaunch cycle allocates %.1f times, budget is %d", avg, budget)
	}
}
