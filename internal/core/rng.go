package core

import "math/rand"

// CountingSource is a seeded math/rand source that counts how many
// values it has handed out. The count is the RNG's stream position: a
// snapshot records (seed, draws), and RestoreCountingSource re-creates
// the source and burns that many draws, leaving the restored stream
// exactly where the original one was. Every rand.Rand method the
// manager uses (Intn, Float64, Perm, NormFloat64) consumes the source
// through Int63, and each Int63 advances the underlying generator by
// exactly one step, so replaying the draw count reproduces the stream
// bit-for-bit.
//
// CountingSource deliberately implements only rand.Source (not
// Source64): rand.Rand derives every method the controller uses from
// Int63 identically either way, and leaving Uint64 out keeps the
// counted stream position unambiguous.
type CountingSource struct {
	seed  int64
	draws uint64
	src   rand.Source
}

// NewCountingSource returns a counting source seeded like
// rand.NewSource(seed).
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{seed: seed, src: rand.NewSource(seed)}
}

// RestoreCountingSource re-creates a source at a recorded stream
// position by burning draws values.
func RestoreCountingSource(seed int64, draws uint64) *CountingSource {
	s := NewCountingSource(seed)
	for i := uint64(0); i < draws; i++ {
		s.Int63()
	}
	return s
}

// NewSeededRand builds the manager's RNG over a counting source and
// returns both. Constructing the rng this way (and handing the source
// to Manager.SnapshotSource) is what makes Manager.Snapshot possible.
func NewSeededRand(seed int64) (*rand.Rand, *CountingSource) {
	src := NewCountingSource(seed)
	return rand.New(src), src
}

// Int63 draws the next value, counting it.
func (s *CountingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Seed reseeds the source and resets the stream position.
func (s *CountingSource) Seed(seed int64) {
	s.seed, s.draws = seed, 0
	s.src.Seed(seed)
}

// State returns the seed and the number of values drawn so far.
func (s *CountingSource) State() (seed int64, draws uint64) {
	return s.seed, s.draws
}
