package core

import (
	"encoding/binary"

	"repro/internal/pmc"
)

// scoreMemo memoizes the measured per-period rates of allocation states
// the exploration has already visited under the current application
// set. The exploration revisits states constantly — convergence holds
// the same state for θ retry periods, and supply/demand oscillations
// bounce between a small set — and on a steady target (no measurement
// noise, no phases; see machine.SteadyMeasurement) re-measuring a
// visited state yields the same windowed rates, so the manager can skip
// both sampler passes and feed the memoized rates straight into the
// classifier pipeline. Virtual time still advances (the period is
// stepped either way), so Run's clock and period structure are
// unchanged.
//
// Exactness caveat, unlike the solve caches: counters are cumulative
// floats, so a later window of the same state computes (c2−c1)/Δt with
// different low-order cancellation. Memoized rates therefore match
// re-measurement exactly in real arithmetic but can differ in the last
// ULPs in float64 (the memoized first window is the one with the least
// cancellation error). Memoized runs remain fully deterministic —
// repeating a seeded run reproduces bit-identical trajectories — which
// is what fleet determinism verification requires; equivalence with the
// memo disabled holds to ~1e-9 relative on slowdowns (pinned by
// TestScoreMemoIdenticalTrajectory) rather than bit-for-bit.
//
// Entries are flushed whenever their premise breaks: re-profiling, app
// churn (resetApps), and envelope changes (the same way counts map to
// different CBMs). The hit/miss counters are cumulative over the
// manager's lifetime — they survive flushes — so fleet aggregation and
// PeriodReport observers see monotone values.
type scoreMemo struct {
	entries map[string][]pmc.Rates
	key     []byte // scratch for the current key
	hits    uint64
	misses  uint64
}

// scoreMemoMaxEntries bounds the table. Exploration epochs visit at
// most a few hundred distinct states before going idle, so the bound
// exists only to cap pathological runs (e.g. the benchmark's infinite
// retry budget); when it is reached new states are simply not stored,
// which — like every cache decision here — changes speed, never values.
const scoreMemoMaxEntries = 4096

// encodeKey writes the allocation state's exact fingerprint into the
// scratch key. Ways and MBA levels are small non-negative ints; the
// length prefix keeps (Ways, MBA) pairs unambiguous.
//
//copart:noalloc
func (c *scoreMemo) encodeKey(st AllocState) {
	k := c.key[:0]
	k = binary.AppendUvarint(k, uint64(len(st.Ways)))
	for _, w := range st.Ways {
		k = binary.AppendUvarint(k, uint64(w))
	}
	for _, l := range st.MBA {
		k = binary.AppendUvarint(k, uint64(l))
	}
	c.key = k
}

// lookup returns the memoized rates for st, if present. The returned
// slice is the memo's own immutable entry; callers read it and never
// mutate it.
//
//copart:noalloc
func (c *scoreMemo) lookup(st AllocState) ([]pmc.Rates, bool) {
	if len(c.entries) == 0 {
		c.misses++
		return nil, false
	}
	c.encodeKey(st)
	rates, ok := c.entries[string(c.key)]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return rates, true
}

// store memoizes a copy of rates under st.
func (c *scoreMemo) store(st AllocState, rates []pmc.Rates) {
	if c.entries == nil {
		c.entries = make(map[string][]pmc.Rates)
	} else if len(c.entries) >= scoreMemoMaxEntries {
		return
	}
	c.encodeKey(st)
	cp := make([]pmc.Rates, len(rates))
	copy(cp, rates)
	c.entries[string(c.key)] = cp
}

// flush drops every entry, keeping the cumulative counters.
func (c *scoreMemo) flush() {
	if len(c.entries) > 0 {
		clear(c.entries)
	}
}
