package core

import (
	"encoding/binary"

	"repro/internal/pmc"
)

// scoreMemo memoizes the measured per-period rates of allocation states
// the exploration has already visited under the current application
// set. The exploration revisits states constantly — convergence holds
// the same state for θ retry periods, and supply/demand oscillations
// bounce between a small set — and on a steady target (no measurement
// noise, no phases; see machine.SteadyMeasurement) re-measuring a
// visited state yields the same windowed rates, so the manager can skip
// both sampler passes and feed the memoized rates straight into the
// classifier pipeline. Virtual time still advances (the period is
// stepped either way), so Run's clock and period structure are
// unchanged.
//
// Exactness caveat, unlike the solve caches: counters are cumulative
// floats, so a later window of the same state computes (c2−c1)/Δt with
// different low-order cancellation. Memoized rates therefore match
// re-measurement exactly in real arithmetic but can differ in the last
// ULPs in float64 (the memoized first window is the one with the least
// cancellation error). Memoized runs remain fully deterministic —
// repeating a seeded run reproduces bit-identical trajectories — which
// is what fleet determinism verification requires; equivalence with the
// memo disabled holds to ~1e-9 relative on slowdowns (pinned by
// TestScoreMemoIdenticalTrajectory) rather than bit-for-bit.
//
// Entries are flushed whenever their premise breaks: re-profiling, app
// churn (resetApps), and envelope changes (the same way counts map to
// different CBMs). The hit/miss counters are cumulative over the
// manager's lifetime — they survive flushes — so fleet aggregation and
// PeriodReport observers see monotone values.
type scoreMemo struct {
	entries map[string][]pmc.Rates
	key     []byte // scratch for the current key
	hits    uint64
	misses  uint64

	// interned deduplicates key strings (see the solve cache's intern
	// table): a pooled manager re-visits the same small state space every
	// tenant, and without interning each store would materialize the key
	// string afresh. The table survives flushes — it holds keys, not
	// rates, so persistence affects allocations only, never values.
	interned map[string]string
	// free recycles retired rate slices: flush feeds it, store pops it.
	// capHint is the largest rate count ever stored; fresh slices are
	// allocated at that capacity so the freelist converges to slices
	// that fit any tenant (see store).
	free    [][]pmc.Rates
	capHint int
}

// scoreMemoInternMax bounds the intern table; at the bound it is cleared
// wholesale (keeping its buckets) — strictly a memory/alloc trade.
const scoreMemoInternMax = 1 << 14

// intern returns the canonical string for the scratch key.
//
//copart:noalloc
func (c *scoreMemo) intern() string {
	if s, ok := c.interned[string(c.key)]; ok {
		return s
	}
	if c.interned == nil {
		c.interned = make(map[string]string) //copart:allocok lazily built once per manager
	} else if len(c.interned) >= scoreMemoInternMax {
		clear(c.interned)
	}
	s := string(c.key) //copart:allocok first sighting of a state: interned once, reused forever
	c.interned[s] = s
	return s
}

// scoreMemoMaxEntries bounds the table. Exploration epochs visit at
// most a few hundred distinct states before going idle, so the bound
// exists only to cap pathological runs (e.g. the benchmark's infinite
// retry budget); when it is reached new states are simply not stored,
// which — like every cache decision here — changes speed, never values.
const scoreMemoMaxEntries = 4096

// encodeKey writes the allocation state's exact fingerprint into the
// scratch key. Ways and MBA levels are small non-negative ints; the
// length prefix keeps (Ways, MBA) pairs unambiguous.
//
//copart:noalloc
func (c *scoreMemo) encodeKey(st AllocState) {
	k := c.key[:0]
	k = binary.AppendUvarint(k, uint64(len(st.Ways)))
	for _, w := range st.Ways {
		k = binary.AppendUvarint(k, uint64(w))
	}
	for _, l := range st.MBA {
		k = binary.AppendUvarint(k, uint64(l))
	}
	c.key = k
}

// lookup returns the memoized rates for st, if present. The returned
// slice is the memo's own immutable entry; callers read it and never
// mutate it.
//
//copart:noalloc
func (c *scoreMemo) lookup(st AllocState) ([]pmc.Rates, bool) {
	if len(c.entries) == 0 {
		c.misses++
		return nil, false
	}
	c.encodeKey(st)
	rates, ok := c.entries[string(c.key)]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return rates, true
}

// store memoizes a copy of rates under st, reusing a recycled slice
// from the freelist when one is large enough. Undersized recycled
// slices are dropped, not skipped: flush refills the freelist in map
// order, so under mixed-shape churn (a 6-app tenant pooled after a
// 3-app one) a keep-but-skip policy would keep landing small slices on
// top of the stack and allocate forever. Dropping them and allocating
// replacements at capHint makes the freelist converge to slices that
// fit any tenant, restoring zero-alloc steady state.
//
//copart:noalloc
func (c *scoreMemo) store(st AllocState, rates []pmc.Rates) {
	if c.entries == nil {
		c.entries = make(map[string][]pmc.Rates) //copart:allocok lazily built once per manager
	} else if len(c.entries) >= scoreMemoMaxEntries {
		return
	}
	c.encodeKey(st)
	var cp []pmc.Rates
	for n := len(c.free); n > 0; n-- {
		top := c.free[n-1]
		c.free[n-1], c.free = nil, c.free[:n-1]
		if cap(top) >= len(rates) {
			cp = top[:len(rates)]
			break
		}
	}
	if cp == nil {
		if len(rates) > c.capHint {
			c.capHint = len(rates)
		}
		cp = make([]pmc.Rates, len(rates), c.capHint) //copart:allocok freelist convergence: replaces dropped undersized slices at max capacity
	}
	copy(cp, rates)
	c.entries[c.intern()] = cp
}

// flush drops every entry, keeping the cumulative counters and feeding
// the retired rate slices to the freelist for the next epoch's stores.
//
//copart:noalloc
func (c *scoreMemo) flush() {
	for k, rates := range c.entries {
		c.free = append(c.free, rates) //copart:allocok amortized append growth; capacity is retained across flushes
		delete(c.entries, k)
	}
}

// reuse returns the memo to its just-constructed state for a new tenant:
// entries flushed into the freelist, counters zeroed. The intern table
// and freelist persist — they are exactly what makes the next tenant's
// exploration allocation-free.
//
//copart:noalloc
func (c *scoreMemo) reuse() {
	c.flush()
	c.hits, c.misses = 0, 0
}
