package core

import (
	"bytes"
	"encoding/binary"

	"repro/internal/pmc"
)

// scoreMemo memoizes the measured per-period rates of allocation states
// the exploration has already visited under the current application
// set. The exploration revisits states constantly — convergence holds
// the same state for θ retry periods, and supply/demand oscillations
// bounce between a small set — and on a steady target (no measurement
// noise, no phases; see machine.SteadyMeasurement) re-measuring a
// visited state yields the same windowed rates, so the manager can skip
// both sampler passes and feed the memoized rates straight into the
// classifier pipeline. Virtual time still advances (the period is
// stepped either way), so Run's clock and period structure are
// unchanged.
//
// Exactness caveat, unlike the solve caches: counters are cumulative
// floats, so a later window of the same state computes (c2−c1)/Δt with
// different low-order cancellation. Memoized rates therefore match
// re-measurement exactly in real arithmetic but can differ in the last
// ULPs in float64 (the memoized first window is the one with the least
// cancellation error). Memoized runs remain fully deterministic —
// repeating a seeded run reproduces bit-identical trajectories — which
// is what fleet determinism verification requires; equivalence with the
// memo disabled holds to ~1e-9 relative on slowdowns (pinned by
// TestScoreMemoIdenticalTrajectory) rather than bit-for-bit.
//
// Representation: an open-addressed index over dense parallel slices
// instead of a Go map keyed by strings. The memo sits on the fleet's
// per-period critical path — every exploration period does one lookup
// and every miss one store — and the previous map spent its time
// hashing variable-length key strings and interning them to keep
// stores allocation-free. Here the key bytes live in one arena, the
// index holds dense-slot references probed by a 64-bit FNV-1a
// fingerprint, and a lookup is one fingerprint pass plus (on a hit)
// one byte comparison to rule out collisions exactly. Entries are
// append-only between flushes, so the dense slices double as the
// snapshot iteration order.
//
// Entries are flushed whenever their premise breaks: re-profiling, app
// churn (resetApps), and envelope changes (the same way counts map to
// different CBMs). The hit/miss counters are cumulative over the
// manager's lifetime — they survive flushes — so fleet aggregation and
// PeriodReport observers see monotone values.
type scoreMemo struct {
	// idx is the open-addressed probe table: idx[i] holds 1+slot for a
	// dense entry, 0 for empty. Its length is a power of two kept at
	// ≤75% load; flush clears it in place, so steady-state epochs never
	// reallocate it.
	idx []int32
	// Dense entry storage, parallel by slot. entryKey(i) is
	// keyArena[keyEnd[i-1]:keyEnd[i]].
	fps      []uint64
	keyEnd   []int32
	rates    [][]pmc.Rates
	keyArena []byte

	key    []byte // scratch for the current key
	hits   uint64
	misses uint64

	// free recycles retired rate slices: flush feeds it, store pops it.
	// capHint is the largest rate count ever stored; fresh slices are
	// allocated at that capacity so the freelist converges to slices
	// that fit any tenant (see store).
	free    [][]pmc.Rates
	capHint int
}

// scoreMemoMaxEntries bounds the table. Exploration epochs visit at
// most a few hundred distinct states before going idle, so the bound
// exists only to cap pathological runs (e.g. the benchmark's infinite
// retry budget); when it is reached new states are simply not stored,
// which — like every cache decision here — changes speed, never values.
const scoreMemoMaxEntries = 4096

// scoreMemoFNV fingerprints the scratch key: FNV-1a 64, the same
// function behind the machine digests. Collisions are ruled out by the
// exact byte comparison in find, so the fingerprint affects speed only.
//
//copart:noalloc
func scoreMemoFNV(b []byte) uint64 {
	const offset, prime = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset)
	for _, x := range b {
		h = (h ^ uint64(x)) * prime
	}
	return h
}

// size reports the number of memoized entries.
func (c *scoreMemo) size() int { return len(c.fps) }

// entryKey returns slot i's key bytes (a view into the arena).
//
//copart:noalloc
func (c *scoreMemo) entryKey(i int) []byte {
	start := int32(0)
	if i > 0 {
		start = c.keyEnd[i-1]
	}
	return c.keyArena[start:c.keyEnd[i]]
}

// encodeKey writes the allocation state's exact fingerprint into the
// scratch key. Ways and MBA levels are small non-negative ints; the
// length prefix keeps (Ways, MBA) pairs unambiguous.
//
//copart:noalloc
func (c *scoreMemo) encodeKey(st AllocState) {
	k := c.key[:0]
	k = binary.AppendUvarint(k, uint64(len(st.Ways)))
	for _, w := range st.Ways {
		k = binary.AppendUvarint(k, uint64(w))
	}
	for _, l := range st.MBA {
		k = binary.AppendUvarint(k, uint64(l))
	}
	c.key = k
}

// find probes the index for the scratch key with the given fingerprint
// and returns its dense slot. Linear probing; the load factor bound in
// grow guarantees an empty slot terminates every probe chain.
//
//copart:noalloc
func (c *scoreMemo) find(fp uint64) (int, bool) {
	if len(c.idx) == 0 {
		return 0, false
	}
	mask := uint64(len(c.idx) - 1)
	for i := fp & mask; ; i = (i + 1) & mask {
		s := c.idx[i]
		if s == 0 {
			return 0, false
		}
		slot := int(s - 1)
		if c.fps[slot] == fp && bytes.Equal(c.entryKey(slot), c.key) {
			return slot, true
		}
	}
}

// grow (re)builds the probe table at the next power-of-two size that
// keeps the load factor under 75% after one more insert, re-indexing
// the dense entries. Amortized across an epoch; flush keeps the table's
// capacity, so steady-state epochs after the first never grow.
func (c *scoreMemo) grow() {
	n := len(c.idx) * 2
	if n < 64 {
		n = 64
	}
	c.idx = make([]int32, n) //copart:allocok amortized index doubling; flush retains capacity
	mask := uint64(n - 1)
	for slot, fp := range c.fps {
		i := fp & mask
		for c.idx[i] != 0 {
			i = (i + 1) & mask
		}
		c.idx[i] = int32(slot + 1)
	}
}

// insert appends a dense entry for key (with fingerprint fp) owning the
// given rates slice, and indexes it. The caller has verified the key is
// absent.
//
//copart:noalloc
func (c *scoreMemo) insert(fp uint64, key []byte, rates []pmc.Rates) {
	if (len(c.fps)+1)*4 > len(c.idx)*3 {
		c.grow()
	}
	slot := len(c.fps)
	c.fps = append(c.fps, fp)                           //copart:allocok amortized dense growth; flush retains capacity
	c.keyArena = append(c.keyArena, key...)             //copart:allocok amortized arena growth; flush retains capacity
	c.keyEnd = append(c.keyEnd, int32(len(c.keyArena))) //copart:allocok amortized dense growth; flush retains capacity
	c.rates = append(c.rates, rates)                    //copart:allocok amortized dense growth; flush retains capacity
	mask := uint64(len(c.idx) - 1)
	i := fp & mask
	for c.idx[i] != 0 {
		i = (i + 1) & mask
	}
	c.idx[i] = int32(slot + 1)
}

// lookup returns the memoized rates for st, if present. The returned
// slice is the memo's own immutable entry; callers read it and never
// mutate it.
//
//copart:noalloc
func (c *scoreMemo) lookup(st AllocState) ([]pmc.Rates, bool) {
	if len(c.fps) == 0 {
		c.misses++
		return nil, false
	}
	c.encodeKey(st)
	if slot, ok := c.find(scoreMemoFNV(c.key)); ok {
		c.hits++
		return c.rates[slot], true
	}
	c.misses++
	return nil, false
}

// store memoizes a copy of rates under st, reusing a recycled slice
// from the freelist when one is large enough. Undersized recycled
// slices are dropped, not skipped: flush refills the freelist in entry
// order, so under mixed-shape churn (a 6-app tenant pooled after a
// 3-app one) a keep-but-skip policy would keep landing small slices on
// top of the stack and allocate forever. Dropping them and allocating
// replacements at capHint makes the freelist converge to slices that
// fit any tenant, restoring zero-alloc steady state.
//
//copart:noalloc
func (c *scoreMemo) store(st AllocState, rates []pmc.Rates) {
	if len(c.fps) >= scoreMemoMaxEntries {
		return
	}
	c.encodeKey(st)
	fp := scoreMemoFNV(c.key)
	if slot, ok := c.find(fp); ok {
		// Already memoized (store always follows a lookup miss of the same
		// state, so this is unreachable in the manager's flow; kept for the
		// map-assign semantics the previous representation had).
		if cap(c.rates[slot]) >= len(rates) {
			c.rates[slot] = c.rates[slot][:len(rates)]
			copy(c.rates[slot], rates)
		}
		return
	}
	var cp []pmc.Rates
	for n := len(c.free); n > 0; n-- {
		top := c.free[n-1]
		c.free[n-1], c.free = nil, c.free[:n-1]
		if cap(top) >= len(rates) {
			cp = top[:len(rates)]
			break
		}
	}
	if cp == nil {
		if len(rates) > c.capHint {
			c.capHint = len(rates)
		}
		cp = make([]pmc.Rates, len(rates), c.capHint) //copart:allocok freelist convergence: replaces dropped undersized slices at max capacity
	}
	copy(cp, rates)
	c.insert(fp, c.key, cp)
}

// flush drops every entry, keeping the cumulative counters and feeding
// the retired rate slices to the freelist for the next epoch's stores.
// Every backing slice keeps its capacity — the dense slices truncate,
// the arena truncates, the index clears in place — so the epoch after a
// flush stores allocation-free.
//
//copart:noalloc
func (c *scoreMemo) flush() {
	for i := range c.rates {
		c.free = append(c.free, c.rates[i]) //copart:allocok amortized append growth; capacity is retained across flushes
		c.rates[i] = nil
	}
	c.fps = c.fps[:0]
	c.keyEnd = c.keyEnd[:0]
	c.rates = c.rates[:0]
	c.keyArena = c.keyArena[:0]
	clear(c.idx)
}

// reuse returns the memo to its just-constructed state for a new tenant:
// entries flushed into the freelist, counters zeroed. The index, arena,
// and freelist keep their capacity — they are exactly what makes the
// next tenant's exploration allocation-free.
//
//copart:noalloc
func (c *scoreMemo) reuse() {
	c.flush()
	c.hits, c.misses = 0, 0
}
