package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// periodTrace is the physical trajectory of one manager run: everything
// a PeriodReport carries except the cache counters themselves.
type periodTrace struct {
	Time       time.Duration
	Phase      Phase
	Slowdowns  []float64
	Unfairness float64
	State      AllocState
}

func traceRun(t *testing.T, memo bool, d time.Duration) ([]periodTrace, uint64) {
	t.Helper()
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HBoth, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	// Seed 7's exploration path revisits states (verified empirically),
	// so the memoized run actually exercises the hit path.
	mgr, err := NewManager(m, DefaultParams(), ref, Envelope{LoWay: 0, Ways: cfg.LLCWays},
		rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	mgr.Features.ScoreMemo = memo
	var trace []periodTrace
	mgr.OnPeriod = func(rep PeriodReport) {
		trace = append(trace, periodTrace{
			Time:       rep.Time,
			Phase:      rep.Phase,
			Slowdowns:  append([]float64(nil), rep.Slowdowns...),
			Unfairness: rep.Unfairness,
			State:      rep.State.Clone(),
		})
	}
	if err := mgr.Run(d); err != nil {
		t.Fatal(err)
	}
	hits, _ := mgr.ScoreMemoStats()
	return trace, hits
}

// TestScoreMemoIdenticalTrajectory pins the memo's contract on a steady
// target: the discrete control trajectory — virtual time, phases,
// allocation states — matches the unmemoized run exactly, slowdowns and
// unfairness agree to within float cancellation noise (see the
// exactness caveat on scoreMemo), repeated memoized runs are
// bit-identical, and the memo actually gets hits.
func TestScoreMemoIdenticalTrajectory(t *testing.T) {
	const d = 120 * time.Second
	plain, plainHits := traceRun(t, false, d)
	memo, memoHits := traceRun(t, true, d)
	memo2, _ := traceRun(t, true, d)
	if plainHits != 0 {
		t.Fatalf("disabled memo recorded %d hits", plainHits)
	}
	if memoHits == 0 {
		t.Fatal("enabled memo never hit; convergence retries should revisit states")
	}
	if !reflect.DeepEqual(memo, memo2) {
		t.Fatal("memoized runs are not reproducible (determinism broken)")
	}
	if len(plain) != len(memo) {
		t.Fatalf("period counts differ: %d plain vs %d memoized", len(plain), len(memo))
	}
	const relTol = 1e-9
	within := func(a, b float64) bool {
		diff := math.Abs(a - b)
		return diff <= relTol*math.Max(math.Abs(a), math.Abs(b))
	}
	for i := range plain {
		p, q := plain[i], memo[i]
		if p.Time != q.Time || p.Phase != q.Phase || !p.State.Equal(q.State) {
			t.Fatalf("period %d: discrete trajectory differs:\nplain: %+v\nmemo:  %+v", i, p, q)
		}
		if !within(p.Unfairness, q.Unfairness) {
			t.Fatalf("period %d: unfairness diverged beyond tolerance: %v vs %v", i, p.Unfairness, q.Unfairness)
		}
		if len(p.Slowdowns) != len(q.Slowdowns) {
			t.Fatalf("period %d: slowdown counts differ", i)
		}
		for j := range p.Slowdowns {
			if !within(p.Slowdowns[j], q.Slowdowns[j]) {
				t.Fatalf("period %d app %d: slowdown diverged beyond tolerance: %v vs %v",
					i, j, p.Slowdowns[j], q.Slowdowns[j])
			}
		}
	}
}

// TestScoreMemoFlush pins the invalidation points: re-profiling and
// envelope changes must drop memoized measurements (their premise — same
// state, same measurement — no longer holds), while the cumulative
// counters survive so observers see monotone values.
func TestScoreMemoFlush(t *testing.T) {
	_, mgr := testSetup(t, workloads.HBoth, 4)
	explore := func() {
		t.Helper()
		if err := mgr.Profile(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10 && mgr.Phase() == PhaseExplore; i++ {
			if done, err := mgr.ExploreStep(); err != nil {
				t.Fatal(err)
			} else if done {
				break
			}
		}
		if mgr.scores.size() == 0 {
			t.Fatal("exploration stored nothing in the score memo")
		}
	}
	explore()
	hits, misses := mgr.ScoreMemoStats()
	cfg := mgr.target.Config()
	if err := mgr.SetEnvelope(Envelope{LoWay: 1, Ways: cfg.LLCWays - 1}); err != nil {
		t.Fatal(err)
	}
	if mgr.scores.size() != 0 {
		t.Fatalf("envelope change left %d memo entries", mgr.scores.size())
	}
	if h2, m2 := mgr.ScoreMemoStats(); h2 != hits || m2 != misses {
		t.Fatalf("flush reset the cumulative counters: %d/%d → %d/%d", hits, misses, h2, m2)
	}
	explore() // repopulates under the new envelope
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	if mgr.scores.size() != 0 {
		t.Fatalf("re-profiling left %d memo entries", mgr.scores.size())
	}
}

// TestScoreMemoGating pins when the memo may engage: only when the
// feature is on, resilience is off, and the target certifies steady
// measurements. A noisy or phased target re-measures every period.
func TestScoreMemoGating(t *testing.T) {
	_, mgr := testSetup(t, workloads.HBoth, 4)
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	if !mgr.memoOK {
		t.Fatal("memo gated off on a steady default setup")
	}

	_, mgr = testSetup(t, workloads.HBoth, 4)
	mgr.Features.ScoreMemo = false
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	if mgr.memoOK {
		t.Fatal("memo engaged with Features.ScoreMemo disabled")
	}

	_, mgr = testSetup(t, workloads.HBoth, 4)
	mgr.Resilience = Resilience{Enabled: true, RecoverAfter: 1, MaxClockStalls: 5}
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	if mgr.memoOK {
		t.Fatal("memo engaged under the resilience watchdog")
	}

	// A noisy machine does not certify steady measurements.
	cfg := machine.DefaultConfig()
	cfg.MeasurementNoise = 0.01
	cfg.NoiseSeed = 9
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HBoth, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := NewManager(m, DefaultParams(), ref, Envelope{LoWay: 0, Ways: cfg.LLCWays},
		rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if err := noisy.Profile(); err != nil {
		t.Fatal(err)
	}
	if noisy.memoOK {
		t.Fatal("memo engaged on a target with measurement noise")
	}
}
