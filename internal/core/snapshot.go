package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/machine"
	"repro/internal/membw"
	"repro/internal/pmc"
)

// SnapshotVersion identifies the snapshot wire format. Restore rejects
// blobs with a different version: the format is an exact serialization
// of internal state, so cross-version compatibility would be a silent
// determinism break, not a convenience.
const SnapshotVersion = 1

// Snapshot is the complete serializable state of a manager and its
// simulated machine at a between-periods boundary. Restoring it and
// running for a span of target time produces bit-identical
// PeriodReports to the uninterrupted original run (pinned by
// TestSnapshotRestoreBitIdentity and the CI smoke job) — which is what
// turns a production incident into a replayable regression test.
type Snapshot struct {
	Version int              `json:"version"`
	Taken   int64            `json:"takenNs"` // target time at capture, nanoseconds
	Machine machine.Snapshot `json:"machine"`
	Manager ManagerSnapshot  `json:"manager"`
}

// ManagerSnapshot serializes the Manager's control state.
type ManagerSnapshot struct {
	Params    Params             `json:"params"`
	StreamRef map[int]float64    `json:"streamRef"`
	Env       Envelope           `json:"env"`
	Phase     Phase              `json:"phase"`
	Retry     int                `json:"retry"`
	Apps      []AppStateSnapshot `json:"apps"`

	State      AllocState `json:"state"`
	BestState  AllocState `json:"bestState"`
	BestUnfair float64    `json:"bestUnfair"`
	HaveBest   bool       `json:"haveBest"`
	EnvChanged bool       `json:"envChanged,omitempty"`

	FailStreak    int  `json:"failStreak,omitempty"`
	RecoverStreak int  `json:"recoverStreak,omitempty"`
	EqApplied     bool `json:"eqApplied,omitempty"`

	Resilience Resilience `json:"resilience"`
	Features   Features   `json:"features"`
	FreezeLLC  bool       `json:"freezeLLC,omitempty"`
	FreezeMBA  bool       `json:"freezeMBA,omitempty"`

	MemoOK    bool                `json:"memoOK,omitempty"`
	ScoreMemo []ScoreMemoEntry    `json:"scoreMemo,omitempty"`
	ScoreHits uint64              `json:"scoreHits,omitempty"`
	ScoreMiss uint64              `json:"scoreMisses,omitempty"`
	Sampler   pmc.SamplerSnapshot `json:"sampler"`
	RNGSeed   int64               `json:"rngSeed"`
	RNGDraws  uint64              `json:"rngDraws"`
	Weights   map[string]float64  `json:"weights,omitempty"`
}

// AppStateSnapshot is one application's manager-side runtime state.
type AppStateSnapshot struct {
	Name      string             `json:"name"`
	LLC       ClassifierSnapshot `json:"llc"`
	MBA       ClassifierSnapshot `json:"mba"`
	IPSFull   float64            `json:"ipsFull"`
	LastIPS   float64            `json:"lastIPS"`
	HavePerf  bool               `json:"havePerf"`
	WayChange ChangeKind         `json:"wayChange"`
	MBAChange ChangeKind         `json:"mbaChange"`
	IdleIPS   float64            `json:"idleIPS"`
	Weight    float64            `json:"weight"`
}

// ClassifierSnapshot serializes one per-application FSM. Present is
// false before the first profiling pass has built the classifier.
type ClassifierSnapshot struct {
	Present        bool    `json:"present"`
	State          State   `json:"state"`
	ProfiledDemand bool    `json:"profiledDemand,omitempty"`
	Hurt           int     `json:"hurt,omitempty"` // hurtWays / hurtLevel floor
	EntryIPS       float64 `json:"entryIPS,omitempty"`
}

// ScoreMemoEntry is one memoized (allocation state → rates) pair; the
// key is the memo's binary state fingerprint. Entries are sorted by key
// so the snapshot bytes are deterministic.
type ScoreMemoEntry struct {
	Key   []byte      `json:"key"`
	Rates []pmc.Rates `json:"rates"`
}

// Snapshot captures the manager's and its target machine's full state.
// It requires SnapshotSource (the RNG stream position must be
// recordable) and a target that exports machine state — the bare
// *machine.Machine does; fault-injection wrappers do not, so a run
// under -faults cannot be snapshotted (the injector's probabilistic
// stream has no export surface), and the error says so.
//
// Call it only between control periods (e.g. from a BetweenPeriods
// hook, or with Run stopped): mid-period state lives in scratch buffers
// the snapshot does not cover.
func (m *Manager) Snapshot() (*Snapshot, error) {
	if m.SnapshotSource == nil {
		return nil, fmt.Errorf("core: snapshot: manager has no SnapshotSource (construct the rng with core.NewSeededRand)")
	}
	exp, ok := m.target.(interface{ Snapshot() machine.Snapshot })
	if !ok {
		return nil, fmt.Errorf("core: snapshot: target %T does not export machine state (fault-injection wrappers cannot be snapshotted)", m.target)
	}
	msnap := exp.Snapshot()
	if msnap.Config.BW.Curve != nil {
		return nil, fmt.Errorf("core: snapshot: machine uses a custom MBA curve, which cannot be serialized")
	}
	seed, draws := m.SnapshotSource.State()
	ms := ManagerSnapshot{
		Params:        m.params,
		StreamRef:     m.streamRef,
		Env:           m.env,
		Phase:         m.phase,
		Retry:         m.retry,
		Apps:          make([]AppStateSnapshot, len(m.apps)),
		State:         m.state.Clone(),
		BestState:     m.bestState.Clone(),
		BestUnfair:    m.bestUnfair,
		HaveBest:      m.haveBest,
		EnvChanged:    m.envChanged,
		FailStreak:    m.failStreak,
		RecoverStreak: m.recoverStreak,
		EqApplied:     m.eqApplied,
		Resilience:    m.Resilience,
		Features:      m.Features,
		FreezeLLC:     m.FreezeLLC,
		FreezeMBA:     m.FreezeMBA,
		MemoOK:        m.memoOK,
		ScoreMemo:     m.scores.snapshot(),
		ScoreHits:     m.scores.hits,
		ScoreMiss:     m.scores.misses,
		Sampler:       m.sampler.Snapshot(),
		RNGSeed:       seed,
		RNGDraws:      draws,
		Weights:       m.weights,
	}
	for i, a := range m.apps {
		ms.Apps[i] = AppStateSnapshot{
			Name:      a.name,
			LLC:       snapshotLLC(a.llc),
			MBA:       snapshotMBA(a.mba),
			IPSFull:   a.ipsFull,
			LastIPS:   a.lastIPS,
			HavePerf:  a.havePerf,
			WayChange: a.wayChange,
			MBAChange: a.mbaChange,
			IdleIPS:   a.idleIPS,
			Weight:    a.weight,
		}
	}
	return &Snapshot{
		Version: SnapshotVersion,
		Taken:   int64(m.target.Now()),
		Machine: msnap,
		Manager: ms,
	}, nil
}

func snapshotLLC(c *LLCClassifier) ClassifierSnapshot {
	if c == nil {
		return ClassifierSnapshot{}
	}
	return ClassifierSnapshot{
		Present:        true,
		State:          c.state,
		ProfiledDemand: c.profiledDemand,
		Hurt:           c.hurtWays,
		EntryIPS:       c.entryIPS,
	}
}

func snapshotMBA(c *MBAClassifier) ClassifierSnapshot {
	if c == nil {
		return ClassifierSnapshot{}
	}
	return ClassifierSnapshot{
		Present:        true,
		State:          c.state,
		ProfiledDemand: c.profiledDemand,
		Hurt:           c.hurtLevel,
		EntryIPS:       c.entryIPS,
	}
}

// snapshot exports the memo's entries sorted by key, plus nothing else
// (the cumulative counters are serialized by the caller). The sort
// keeps the serialized form identical to the previous map-backed
// representation's (whose string keys sorted in the same byte order),
// so snapshots round-trip across the representations.
func (c *scoreMemo) snapshot() []ScoreMemoEntry {
	n := c.size()
	if n == 0 {
		return nil
	}
	out := make([]ScoreMemoEntry, n)
	for i := 0; i < n; i++ {
		k := c.entryKey(i)
		out[i] = ScoreMemoEntry{Key: append([]byte(nil), k...), Rates: c.rates[i]}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	return out
}

// restore replaces the memo's contents and counters.
func (c *scoreMemo) restore(entries []ScoreMemoEntry, hits, misses uint64) {
	c.flush()
	c.free = c.free[:0] // restored entries own fresh slices; drop the retired ones
	for _, e := range entries {
		rates := make([]pmc.Rates, len(e.Rates))
		copy(rates, e.Rates)
		c.insert(scoreMemoFNV(e.Key), e.Key, rates)
	}
	c.hits, c.misses = hits, misses
}

// Marshal encodes the snapshot as deterministic, versioned JSON:
// encoding/json emits map keys sorted and float64 values in their
// shortest exact representation, so the same state always produces the
// same bytes and a JSON round-trip reproduces every float bit-for-bit.
func (s *Snapshot) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", " ")
}

// ParseSnapshot decodes and version-checks a snapshot blob.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, this build reads version %d", s.Version, SnapshotVersion)
	}
	return &s, nil
}

// RestoreSnapshot rebuilds the machine and the manager from a snapshot.
// The machine gets its solve cache back when the snapshot recorded one.
// The restored manager owns a fresh CountingSource advanced to the
// recorded stream position, so its future decisions are bit-identical
// to the original manager's.
func RestoreSnapshot(snap *Snapshot) (*Manager, *machine.Machine, error) {
	if snap.Version != SnapshotVersion {
		return nil, nil, fmt.Errorf("core: snapshot version %d, this build reads version %d", snap.Version, SnapshotVersion)
	}
	var opts []machine.Option
	if snap.Machine.SolveCache != nil {
		opts = append(opts, machine.WithSolveCache())
	}
	mach, err := machine.RestoreSnapshot(snap.Machine, opts...)
	if err != nil {
		return nil, nil, err
	}
	ms := &snap.Manager
	if err := ms.Params.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: snapshot: %w", err)
	}
	if err := ms.Resilience.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: snapshot: %w", err)
	}
	cfg := mach.Config()
	if ms.Env.LoWay < 0 || ms.Env.Ways < 1 || ms.Env.LoWay+ms.Env.Ways > cfg.LLCWays {
		return nil, nil, fmt.Errorf("core: snapshot: envelope [%d,%d) outside %d ways",
			ms.Env.LoWay, ms.Env.LoWay+ms.Env.Ways, cfg.LLCWays)
	}
	for level := membw.MinLevel; level <= membw.MaxLevel; level += membw.Granularity {
		if ms.StreamRef[level] <= 0 {
			return nil, nil, fmt.Errorf("core: snapshot: missing STREAM reference for MBA level %d", level)
		}
	}
	if ms.Phase < PhaseProfile || ms.Phase > PhaseDegraded {
		return nil, nil, fmt.Errorf("core: snapshot: unknown phase %d", int(ms.Phase))
	}
	src := RestoreCountingSource(ms.RNGSeed, ms.RNGDraws)
	m := &Manager{
		target:         mach,
		params:         ms.Params,
		streamRef:      ms.StreamRef,
		env:            ms.Env,
		rng:            rand.New(src),
		sampler:        pmc.NewSampler(mach),
		phase:          ms.Phase,
		retry:          ms.Retry,
		bestUnfair:     ms.BestUnfair,
		haveBest:       ms.HaveBest,
		envChanged:     ms.EnvChanged,
		failStreak:     ms.FailStreak,
		recoverStreak:  ms.RecoverStreak,
		eqApplied:      ms.EqApplied,
		memoOK:         ms.MemoOK,
		Resilience:     ms.Resilience,
		Features:       ms.Features,
		FreezeLLC:      ms.FreezeLLC,
		FreezeMBA:      ms.FreezeMBA,
		clock:          time.Now, //copart:wallclock ExploreTimes telemetry measures real solver latency
		SnapshotSource: src,
	}
	m.state.CopyFrom(ms.State)
	m.bestState.CopyFrom(ms.BestState)
	m.scores.restore(ms.ScoreMemo, ms.ScoreHits, ms.ScoreMiss)
	m.sampler.RestoreSnapshot(ms.Sampler)
	if len(ms.Weights) > 0 {
		m.weights = make(map[string]float64, len(ms.Weights))
		for name, w := range ms.Weights {
			if !(w > 0) || math.IsInf(w, 1) {
				return nil, nil, fmt.Errorf("core: snapshot: weight %v for %s is not a positive finite number", w, name)
			}
			m.weights[name] = w
		}
	}
	m.apps = make([]*appRT, len(ms.Apps))
	m.names = make([]string, len(ms.Apps))
	for i, as := range ms.Apps {
		if as.Name == "" {
			return nil, nil, fmt.Errorf("core: snapshot: app %d has no name", i)
		}
		if !(as.Weight > 0) || math.IsInf(as.Weight, 1) {
			return nil, nil, fmt.Errorf("core: snapshot: app %q weight %v is not a positive finite number", as.Name, as.Weight)
		}
		m.apps[i] = &appRT{
			name:      as.Name,
			llc:       restoreLLC(ms.Params, ms.Features, as.LLC),
			mba:       restoreMBA(ms.Params, ms.Features, as.MBA),
			ipsFull:   as.IPSFull,
			lastIPS:   as.LastIPS,
			havePerf:  as.HavePerf,
			wayChange: as.WayChange,
			mbaChange: as.MBAChange,
			idleIPS:   as.IdleIPS,
			weight:    as.Weight,
		}
		m.names[i] = as.Name
	}
	if m.phase == PhaseExplore || m.phase == PhaseIdle {
		if err := m.state.Validate(m.env.Ways); err != nil {
			return nil, nil, fmt.Errorf("core: snapshot: %w", err)
		}
		if len(m.state.Ways) != len(m.apps) {
			return nil, nil, fmt.Errorf("core: snapshot: state covers %d apps, manager has %d",
				len(m.state.Ways), len(m.apps))
		}
		for _, a := range m.apps {
			if a.llc == nil || a.mba == nil {
				return nil, nil, fmt.Errorf("core: snapshot: app %q in phase %v without classifiers", a.name, m.phase)
			}
		}
	}
	return m, mach, nil
}

func restoreLLC(params Params, f Features, cs ClassifierSnapshot) *LLCClassifier {
	if !cs.Present {
		return nil
	}
	c := NewLLCClassifier(params, cs.State, cs.ProfiledDemand)
	c.UseFeatures(f)
	c.hurtWays = cs.Hurt
	c.entryIPS = cs.EntryIPS
	return c
}

func restoreMBA(params Params, f Features, cs ClassifierSnapshot) *MBAClassifier {
	if !cs.Present {
		return nil
	}
	c := NewMBAClassifier(params, cs.State, cs.ProfiledDemand)
	c.UseFeatures(f)
	c.hurtLevel = cs.Hurt
	c.entryIPS = cs.EntryIPS
	return c
}

// ReplaySnapshot restores a snapshot and runs the manager for d of
// target time, returning the period reports — the primitive behind
// copartd -restore and cmd/snap2test.
func ReplaySnapshot(snap *Snapshot, d time.Duration) ([]PeriodReport, error) {
	mgr, _, err := RestoreSnapshot(snap)
	if err != nil {
		return nil, err
	}
	var reports []PeriodReport
	mgr.OnPeriod = func(r PeriodReport) { reports = append(reports, r) }
	if err := mgr.Run(d); err != nil {
		return reports, err
	}
	return reports, nil
}

// ReportsEqual reports whether two report sequences are bit-identical:
// every float is compared by its IEEE 754 bit pattern, so even
// sub-ULP divergence (a determinism break) is caught.
func ReportsEqual(a, b []PeriodReport) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reportEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func reportEqual(a, b PeriodReport) bool {
	if a.Time != b.Time || a.Phase != b.Phase ||
		len(a.Apps) != len(b.Apps) || len(a.Slowdowns) != len(b.Slowdowns) {
		return false
	}
	for i := range a.Apps {
		if a.Apps[i] != b.Apps[i] {
			return false
		}
	}
	for i := range a.Slowdowns {
		if math.Float64bits(a.Slowdowns[i]) != math.Float64bits(b.Slowdowns[i]) {
			return false
		}
	}
	if math.Float64bits(a.Unfairness) != math.Float64bits(b.Unfairness) {
		return false
	}
	return a.State.Equal(b.State)
}

// ReportsDigest hashes a report sequence (FNV-1a over an exact binary
// encoding of times, phases, apps, slowdown bits, unfairness bits, and
// states). Two sequences digest equal iff ReportsEqual would accept
// them, which lets generated regression tests embed one uint64 instead
// of the full report dump. Cache counters are excluded: they depend on
// where in the run the snapshot was cut, not on the trajectory.
func ReportsDigest(reports []PeriodReport) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wu(uint64(len(reports)))
	for _, r := range reports {
		wu(uint64(r.Time))
		wu(uint64(r.Phase))
		wu(uint64(len(r.Apps)))
		for _, app := range r.Apps {
			h.Write([]byte(app))
			h.Write([]byte{0})
		}
		for _, s := range r.Slowdowns {
			wu(math.Float64bits(s))
		}
		wu(math.Float64bits(r.Unfairness))
		for _, w := range r.State.Ways {
			wu(uint64(w))
		}
		for _, l := range r.State.MBA {
			wu(uint64(l))
		}
	}
	return h.Sum64()
}
