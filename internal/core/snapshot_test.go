package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// snapSetup builds a machine + manager pair with a snapshot-capable RNG.
func snapSetup(t *testing.T, seed int64, noise float64, opts ...machine.Option) (*Manager, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.MeasurementNoise = noise
	cfg.NoiseSeed = seed + 100
	m, err := machine.New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HBoth, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	rng, src := NewSeededRand(seed)
	mgr, err := NewManager(m, DefaultParams(), ref, Envelope{LoWay: 0, Ways: cfg.LLCWays}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mgr.SnapshotSource = src
	return mgr, m
}

// cloneReport deep-copies a report so retained slices cannot alias the
// manager's buffers across membership changes.
func cloneReport(r PeriodReport) PeriodReport {
	r.Apps = append([]string(nil), r.Apps...)
	r.Slowdowns = append([]float64(nil), r.Slowdowns...)
	r.State = r.State.Clone()
	return r
}

func collect(mgr *Manager, into *[]PeriodReport) {
	mgr.OnPeriod = func(r PeriodReport) { *into = append(*into, cloneReport(r)) }
}

// TestSnapshotBitIdentity is the core crash-safety contract: running T1,
// snapshotting, JSON round-tripping the snapshot, restoring, and running
// T2 must produce bit-identical period reports to the same T1+T2 run
// snapshotted at the same boundary but never serialized. Verified
// noise-free at two seeds and with measurement noise (which exercises
// the noise-RNG replay) at a third.
func TestSnapshotBitIdentity(t *testing.T) {
	const (
		t1 = 40 * time.Second
		t2 = 60 * time.Second
	)
	cases := []struct {
		seed  int64
		noise float64
		cache bool
	}{
		{seed: 1, noise: 0, cache: false},
		{seed: 2, noise: 0, cache: true},
		{seed: 3, noise: 0.02, cache: false},
	}
	for _, tc := range cases {
		var opts []machine.Option
		if tc.cache {
			opts = append(opts, machine.WithSolveCache())
		}

		// Reference leg: run T1, then keep going for T2 uninterrupted.
		ref, _ := snapSetup(t, tc.seed, tc.noise, opts...)
		var refReports []PeriodReport
		if err := ref.Run(t1); err != nil {
			t.Fatalf("seed %d: reference T1: %v", tc.seed, err)
		}
		collect(ref, &refReports)
		if err := ref.Run(t2); err != nil {
			t.Fatalf("seed %d: reference T2: %v", tc.seed, err)
		}
		if len(refReports) == 0 {
			t.Fatalf("seed %d: reference run produced no reports", tc.seed)
		}

		// Snapshot leg: identical run to T1, snapshot, serialize, parse,
		// restore, resume for T2.
		mgr, _ := snapSetup(t, tc.seed, tc.noise, opts...)
		if err := mgr.Run(t1); err != nil {
			t.Fatalf("seed %d: T1: %v", tc.seed, err)
		}
		snap, err := mgr.Snapshot()
		if err != nil {
			t.Fatalf("seed %d: snapshot: %v", tc.seed, err)
		}
		data, err := snap.Marshal()
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", tc.seed, err)
		}
		parsed, err := ParseSnapshot(data)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", tc.seed, err)
		}
		restored, _, err := RestoreSnapshot(parsed)
		if err != nil {
			t.Fatalf("seed %d: restore: %v", tc.seed, err)
		}
		var resumed []PeriodReport
		collect(restored, &resumed)
		if err := restored.Run(t2); err != nil {
			t.Fatalf("seed %d: resumed T2: %v", tc.seed, err)
		}

		if !ReportsEqual(refReports, resumed) {
			t.Errorf("seed %d (noise=%v cache=%v): restored run diverged from uninterrupted run (%d vs %d reports)",
				tc.seed, tc.noise, tc.cache, len(refReports), len(resumed))
			for i := range refReports {
				if i < len(resumed) && !reportEqual(refReports[i], resumed[i]) {
					t.Errorf("  first divergence at report %d: t=%v vs t=%v, unfairness %v vs %v",
						i, refReports[i].Time, resumed[i].Time, refReports[i].Unfairness, resumed[i].Unfairness)
					break
				}
			}
		}
		if dr, ds := ReportsDigest(refReports), ReportsDigest(resumed); dr != ds {
			t.Errorf("seed %d: report digests differ: %#x vs %#x", tc.seed, dr, ds)
		}

		// Serialization itself must be deterministic: same state, same bytes.
		data2, err := mgr.Snapshot()
		if err != nil {
			t.Fatalf("seed %d: re-snapshot: %v", tc.seed, err)
		}
		b2, err := data2.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(b2) {
			t.Errorf("seed %d: snapshotting the same state twice produced different bytes", tc.seed)
		}
	}
}

// TestSnapshotReplayHelper: ReplaySnapshot must equal driving the
// restored manager by hand.
func TestSnapshotReplayHelper(t *testing.T) {
	mgr, _ := snapSetup(t, 7, 0)
	if err := mgr.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap, err := mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ReplaySnapshot(snap, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplaySnapshot(snap, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !ReportsEqual(a, b) {
		t.Fatalf("replay not deterministic: %d vs %d reports", len(a), len(b))
	}
}

// TestSnapshotRequiresSource: a manager built with a plain rand.Rand
// cannot be snapshotted, and says why.
func TestSnapshotRequiresSource(t *testing.T) {
	mgr, _ := snapSetup(t, 1, 0)
	mgr.SnapshotSource = nil
	if _, err := mgr.Snapshot(); err == nil || !strings.Contains(err.Error(), "SnapshotSource") {
		t.Fatalf("want SnapshotSource error, got %v", err)
	}
}

// TestSnapshotVersionAndTamper: version mismatches and config tampering
// are rejected at parse/restore time.
func TestSnapshotVersionAndTamper(t *testing.T) {
	mgr, _ := snapSetup(t, 1, 0)
	if err := mgr.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap, err := mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	bad := *snap
	bad.Version = SnapshotVersion + 1
	data, err := bad.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSnapshot(data); err == nil {
		t.Error("future snapshot version should be rejected")
	}

	tampered := *snap
	tampered.Machine.Config.LLCWays++ // digest no longer matches
	if _, _, err := RestoreSnapshot(&tampered); err == nil {
		t.Error("config/digest mismatch should be rejected")
	}

	if _, err := ParseSnapshot([]byte("not json")); err == nil {
		t.Error("garbage should be rejected")
	}
}

// TestSnapshotWeightsSurvive: weights set at runtime are carried through
// a snapshot/restore cycle.
func TestSnapshotWeightsSurvive(t *testing.T) {
	mgr, m := snapSetup(t, 1, 0)
	apps := m.Apps()
	if err := mgr.SetWeight(apps[0], 2); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap, err := mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, _, err := RestoreSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if w := restored.Weight(apps[0]); w != 2 {
		t.Fatalf("restored weight = %v, want 2", w)
	}
	if w := restored.Weight(apps[1]); w != 1 {
		t.Fatalf("restored default weight = %v, want 1", w)
	}
}
