package core

import "repro/internal/fairness"

// unfairness computes Equation 2 over the period's slowdowns, dispatching
// between the batch recompute (the default, used by every published
// experiment) and the incremental fairness.Tracker when
// Features.StreamingFairness is set. Both arms agree within the
// tracker's documented 5e-8 bound (pinned by TestManagerStreamingFairness);
// they are not bit-identical, which is why streaming is opt-in.
func (m *Manager) unfairness(slowdowns []float64) (float64, error) {
	if !m.Features.StreamingFairness {
		return fairness.Unfairness(slowdowns)
	}
	return m.streamUnfairness(slowdowns)
}

// streamUnfairness maintains the tracker across periods. On the first
// period after (re)profiling — or after any app-set change, which
// resetApps signals by clearing trackerLive — it seeds the tracker with
// the full slowdown vector; every later period pushes only the
// slowdowns that changed bit-for-bit since the previous one, which in a
// converged idle phase is none. Any tracker error drops back to a
// reseed on the next period rather than leaving stale sums behind.
//
//copart:noalloc
func (m *Manager) streamUnfairness(slowdowns []float64) (float64, error) {
	if !m.trackerLive || len(slowdowns) != len(m.prevSlow) {
		m.tracker.Reset()
		if cap(m.prevSlow) < len(slowdowns) {
			m.prevSlow = make([]float64, len(slowdowns)) //copart:allocok first growth to the consolidation size
		}
		m.prevSlow = m.prevSlow[:len(slowdowns)]
		for i, s := range slowdowns {
			if err := m.tracker.Add(s); err != nil {
				m.trackerLive = false
				return 0, err
			}
			m.prevSlow[i] = s
		}
		m.trackerLive = true
	} else {
		for i, s := range slowdowns {
			if s == m.prevSlow[i] { //copart:floateq exact-bit skip: any ulp of movement must reach the tracker
				continue
			}
			if err := m.tracker.Update(m.prevSlow[i], s); err != nil {
				m.trackerLive = false
				return 0, err
			}
			m.prevSlow[i] = s
		}
	}
	u, err := m.tracker.Unfairness()
	if err != nil {
		m.trackerLive = false
		return 0, err
	}
	return u, nil
}
