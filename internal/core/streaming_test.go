package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// streamingSetup builds a noisy machine (so slowdowns keep moving and
// the tracker's Update path is exercised every period, not just the
// reseed) and a manager with StreamingFairness on.
func streamingSetup(t *testing.T, seed int64, noise float64) *Manager {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.MeasurementNoise = noise
	cfg.NoiseSeed = seed
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HBoth, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(m, DefaultParams(), ref, Envelope{LoWay: 0, Ways: cfg.LLCWays},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	mgr.Features.StreamingFairness = true
	return mgr
}

// TestManagerStreamingFairness is the manager-level golden equivalence
// test: with StreamingFairness on, every period's reported unfairness
// must match a batch recompute of that period's slowdown vector within
// the tracker's documented 5e-8 bound — across profiling resets,
// exploration, idle, and a mid-run re-profile (which exercises the
// trackerLive invalidation in resetApps). 3 seeds, noisy measurements
// so the incremental Update path does real work.
func TestManagerStreamingFairness(t *testing.T) {
	for _, seed := range []int64{1, 42, 1234} {
		mgr := streamingSetup(t, seed, 0.02)
		periods := 0
		mgr.OnPeriod = func(r PeriodReport) {
			periods++
			batch, err := fairness.Unfairness(r.Slowdowns)
			if err != nil {
				t.Fatalf("seed %d: batch recompute: %v", seed, err)
			}
			if diff := math.Abs(r.Unfairness - batch); diff > 5e-8 {
				t.Fatalf("seed %d period %d (%v): streaming %v vs batch %v differ by %g",
					seed, periods, r.Phase, r.Unfairness, batch, diff)
			}
		}
		for round := 0; round < 2; round++ {
			if err := mgr.Profile(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for i := 0; i < 300 && mgr.Phase() == PhaseExplore; i++ {
				if _, err := mgr.ExploreStep(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			for i := 0; i < 10 && mgr.Phase() == PhaseIdle; i++ {
				if _, err := mgr.IdleStep(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}
		if periods < 20 {
			t.Fatalf("seed %d: only %d periods observed — test did not exercise the tracker", seed, periods)
		}
	}
}

// TestStreamingFairnessOffIsBatch pins that with the gate off (the
// default) the dispatcher IS the batch path: a full run with
// DefaultFeatures must be bit-identical to one predating the gate, which
// we assert by recomputing batch unfairness and requiring exact
// equality.
func TestStreamingFairnessOffIsBatch(t *testing.T) {
	mgr := streamingSetup(t, 7, 0.02)
	mgr.Features.StreamingFairness = false
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	mgr.OnPeriod = func(r PeriodReport) {
		batch, err := fairness.Unfairness(r.Slowdowns)
		if err != nil {
			t.Fatal(err)
		}
		if r.Unfairness != batch { //copart:floateq bit-identity is the contract under test
			t.Fatalf("batch arm not bit-identical: %v vs %v", r.Unfairness, batch)
		}
	}
	for i := 0; i < 50 && mgr.Phase() == PhaseExplore; i++ {
		if _, err := mgr.ExploreStep(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamingFairnessSteadyAllocs pins the streaming path's steady
// state at zero allocations once the prevSlow scratch has grown.
func TestStreamingFairnessSteadyAllocs(t *testing.T) {
	mgr := streamingSetup(t, 3, 0)
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	slow := []float64{1.5, 2.5, 3.5, 4.5}
	if _, err := mgr.streamUnfairness(slow); err != nil { // seed prevSlow + tracker
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	avg := testing.AllocsPerRun(200, func() {
		slow[rng.Intn(len(slow))] = 1 + 5*rng.Float64()
		if _, err := mgr.streamUnfairness(slow); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("streamUnfairness allocates %.1f times in steady state, want 0", avg)
	}
}
