// Package eventlog provides bounded structured telemetry for the
// controller: what the manager decided, when, and why. Production
// resource managers live or die by this kind of audit trail — "why did
// app X lose a way at t=217s" must be answerable after the fact.
//
// The log is a fixed-capacity ring: appending never allocates once warm
// and never blocks the control loop; old events fall off the end. Events
// render as text lines or JSON-lines for external tooling.
package eventlog

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind int

const (
	// KindPhase: the manager changed phase (profile/explore/idle).
	KindPhase Kind = iota
	// KindProfile: one application's profiling finished.
	KindProfile
	// KindState: a new system state was applied.
	KindState
	// KindClassify: a classifier changed an application's state.
	KindClassify
	// KindChange: the idle phase detected a workload change.
	KindChange
	// KindFault: a target operation or control period failed.
	KindFault
	// KindRetry: a failed target operation was retried.
	KindRetry
	// KindFallback: the manager fell back to the degraded EQ allocation.
	KindFallback
	// KindRecover: the manager left degraded mode and re-entered profiling.
	KindRecover
	// KindAdmission: the control plane applied or rejected a runtime
	// admission operation (add/remove/reweight/snapshot).
	KindAdmission
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPhase:
		return "phase"
	case KindProfile:
		return "profile"
	case KindState:
		return "state"
	case KindClassify:
		return "classify"
	case KindChange:
		return "change"
	case KindFault:
		return "fault"
	case KindRetry:
		return "retry"
	case KindFallback:
		return "fallback"
	case KindRecover:
		return "recover"
	case KindAdmission:
		return "admission"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one telemetry record.
type Event struct {
	Time   time.Duration `json:"t"`
	Kind   Kind          `json:"kind"`
	App    string        `json:"app,omitempty"`
	Detail string        `json:"detail"`
}

// Log is a bounded, concurrency-safe event ring.
type Log struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	count int
	total int
}

// New creates a log holding up to capacity events.
func New(capacity int) (*Log, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("eventlog: capacity %d < 1", capacity)
	}
	return &Log{ring: make([]Event, capacity)}, nil
}

// Enabled reports whether the log is attached (non-nil). It is the
// hot-path guard for telemetry producers: formatting an event's detail
// string costs allocations (fmt boxing and the formatted string), so
// callers on a control-period path must skip the whole Appendf call —
// arguments included — when Enabled is false. The method is safe on a
// nil receiver precisely so that the guard stays a single branch.
func (l *Log) Enabled() bool { return l != nil }

// Append records an event, evicting the oldest when full.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.count < len(l.ring) {
		l.count++
	}
	l.total++
}

// Appendf formats and records an event.
func (l *Log) Appendf(t time.Duration, kind Kind, app, format string, args ...interface{}) {
	l.Append(Event{Time: t, Kind: kind, App: app, Detail: fmt.Sprintf(format, args...)})
}

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.count)
	start := l.next - l.count
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.count; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Tail returns the most recent n retained events, oldest first. n < 1
// or n > Len returns everything retained. Safe on a nil receiver
// (returns nil), so HTTP handlers can serve it without a log attached.
func (l *Log) Tail(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 1 || n > l.count {
		n = l.count
	}
	out := make([]Event, 0, n)
	start := l.next - n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Total reports how many events were ever appended (including evicted).
func (l *Log) Total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Len reports how many events are retained.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// WriteText renders the retained events as human-readable lines.
func (l *Log) WriteText(w io.Writer) error {
	for _, e := range l.Events() {
		app := e.App
		if app == "" {
			app = "-"
		}
		if _, err := fmt.Fprintf(w, "%9.1fs %-8s %-10s %s\n",
			e.Time.Seconds(), e.Kind, app, e.Detail); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL renders the retained events as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
