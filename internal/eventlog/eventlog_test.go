package eventlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero capacity should error")
	}
	if _, err := New(-3); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestAppendAndOrder(t *testing.T) {
	l, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l.Appendf(time.Duration(i)*time.Second, KindState, "", "event %d", i)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("len=%d", len(evs))
	}
	for i, e := range evs {
		if e.Detail != "event "+string(rune('0'+i)) {
			t.Errorf("event %d = %q", i, e.Detail)
		}
	}
	if l.Total() != 3 || l.Len() != 3 {
		t.Errorf("Total=%d Len=%d", l.Total(), l.Len())
	}
}

func TestRingEviction(t *testing.T) {
	l, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		l.Appendf(0, KindPhase, "", "e%d", i)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	want := []string{"e4", "e5", "e6"}
	for i, e := range evs {
		if e.Detail != want[i] {
			t.Errorf("event %d = %q want %q", i, e.Detail, want[i])
		}
	}
	if l.Total() != 7 {
		t.Errorf("Total=%d want 7", l.Total())
	}
	if l.Len() != 3 {
		t.Errorf("Len=%d want 3", l.Len())
	}
}

func TestWriteText(t *testing.T) {
	l, _ := New(4)
	l.Append(Event{Time: 2 * time.Second, Kind: KindClassify, App: "WN", Detail: "llc Demand→Maintain"})
	l.Append(Event{Time: 3 * time.Second, Kind: KindChange, Detail: "app departed"})
	var b bytes.Buffer
	if err := l.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "WN") || !strings.Contains(out, "llc Demand→Maintain") {
		t.Errorf("text output missing fields:\n%s", out)
	}
	if !strings.Contains(out, " - ") && !strings.Contains(out, " -") {
		t.Errorf("empty app should render as '-':\n%s", out)
	}
}

func TestWriteJSONL(t *testing.T) {
	l, _ := New(4)
	l.Append(Event{Time: time.Second, Kind: KindState, App: "a", Detail: "d"})
	var b bytes.Buffer
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal(b.Bytes(), &e); err != nil {
		t.Fatalf("invalid JSONL: %v", err)
	}
	if e.App != "a" || e.Kind != KindState || e.Time != time.Second {
		t.Errorf("round trip %+v", e)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindPhase, KindProfile, KindState, KindClassify, KindChange,
		KindFault, KindRetry, KindFallback, KindRecover} {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", int(k))
		}
		if k.String() == fmt.Sprintf("Kind(%d)", int(k)) {
			t.Errorf("kind %d has no dedicated name", int(k))
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestConcurrentAppend(t *testing.T) {
	l, _ := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Appendf(0, KindState, "x", "e")
				_ = l.Events()
			}
		}()
	}
	wg.Wait()
	if l.Total() != 800 {
		t.Errorf("Total=%d want 800", l.Total())
	}
}
