package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/policies"
	"repro/internal/texttab"
	"repro/internal/workloads"
)

// AblationRow is one controller variant's aggregate outcome.
type AblationRow struct {
	Name string
	// Unfairness is the geomean unfairness across the sensitive mixes,
	// normalized to the all-features controller.
	Unfairness float64
	// Raw is the unnormalized geomean.
	Raw float64
}

// AblationResult quantifies what each reconstruction mechanism
// contributes (DESIGN.md's per-design-choice evidence): the full
// controller versus variants with one feature disabled at a time, plus
// the everything-off variant (the paper's prose transitions alone).
type AblationResult struct {
	Rows []AblationRow
}

// ablationVariants lists the variants in presentation order.
func ablationVariants() []struct {
	name   string
	mutate func(*core.Features)
} {
	return []struct {
		name   string
		mutate func(*core.Features)
	}{
		{"all features (default)", func(*core.Features) {}},
		{"- park-on-best", func(f *core.Features) { f.ParkOnBest = false }},
		{"- profile pinning", func(f *core.Features) { f.ProfilePinning = false }},
		{"- hurt memory", func(f *core.Features) { f.HurtMemory = false }},
		{"- cumulative guard", func(f *core.Features) { f.CumulativeGuard = false }},
		{"prose-only FSMs", func(f *core.Features) {
			f.ParkOnBest = false
			f.ProfilePinning = false
			f.HurtMemory = false
			f.CumulativeGuard = false
		}},
	}
}

// Ablations runs CoPart with each feature variant across the sensitive
// 4-application mixes and reports geomean unfairness normalized to the
// full controller.
func Ablations(cfg machine.Config, seed int64) (AblationResult, *texttab.Table, error) {
	kinds := []workloads.MixKind{
		workloads.HLLC, workloads.HBW, workloads.HBoth,
		workloads.MLLC, workloads.MBW, workloads.MBoth,
	}
	// The (variant × mix) grid cells are independent controller runs;
	// fan them out. Each cell copies its feature set and builds its own
	// machine and RNG inside Dynamic.Run.
	variants := ablationVariants()
	cells := make([][]float64, len(variants))
	for i := range cells {
		cells[i] = make([]float64, len(kinds))
	}
	err := parallel.ForEach(len(variants)*len(kinds), func(k int) error {
		vi, ki := k/len(kinds), k%len(kinds)
		f := core.DefaultFeatures()
		variants[vi].mutate(&f)
		models, err := workloads.Mix(cfg, kinds[ki], 4)
		if err != nil {
			return err
		}
		pol := &policies.Dynamic{Label: "CoPart", Features: &f, Seed: seed}
		out, err := pol.Run(cfg, models)
		if err != nil {
			return fmt.Errorf("experiments: ablation %q: %w", variants[vi].name, err)
		}
		u := out.Unfairness
		if u < 1e-4 {
			u = 1e-4
		}
		cells[vi][ki] = u
		return nil
	})
	if err != nil {
		return AblationResult{}, nil, err
	}

	var res AblationResult
	var base float64
	for i, v := range variants {
		raw, err := fairness.GeoMean(cells[i])
		if err != nil {
			return AblationResult{}, nil, fmt.Errorf("experiments: ablation %q: %w", v.name, err)
		}
		if i == 0 {
			base = raw
		}
		res.Rows = append(res.Rows, AblationRow{
			Name:       v.name,
			Raw:        raw,
			Unfairness: raw / base,
		})
	}

	tab := texttab.New(
		"Ablation. Controller variants, geomean unfairness over the sensitive mixes (normalized to the full controller)",
		"variant", "normalized unfairness", "raw")
	for _, r := range res.Rows {
		tab.AddRow(r.Name, fmt.Sprintf("%.3f", r.Unfairness), fmt.Sprintf("%.4f", r.Raw))
	}
	return res, tab, nil
}
