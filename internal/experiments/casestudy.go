package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/membw"
	"repro/internal/texttab"
	"repro/internal/workloads"
)

// scopedTarget restricts a machine to a subset of its applications so the
// CoPart manager only governs the batch workloads while the envelope
// manager owns the latency-critical reservation (§6.3).
type scopedTarget struct {
	m     *machine.Machine
	names []string
}

func (s scopedTarget) Apps() []string { return append([]string(nil), s.names...) }

func (s scopedTarget) ReadCounters(name string) (machine.Counters, error) {
	return s.m.ReadCounters(name)
}

func (s scopedTarget) SetAllocation(name string, a machine.Alloc) error {
	for _, n := range s.names {
		if n == name {
			return s.m.SetAllocation(name, a)
		}
	}
	return fmt.Errorf("experiments: app %q outside the managed scope", name)
}

func (s scopedTarget) Config() machine.Config { return s.m.Config() }
func (s scopedTarget) Now() time.Duration     { return s.m.Now() }
func (s scopedTarget) Step(dt time.Duration) error {
	return s.m.Step(dt)
}

// LoadPhase is one segment of the case study's load trace.
type LoadPhase struct {
	Until time.Duration // phase is active while now < Until
	RPS   float64
}

// DefaultLoadTrace reproduces Figure 15's load steps: low load, a surge
// at t≈99.4 s, and a return to low load at t≈299.4 s.
func DefaultLoadTrace() []LoadPhase {
	return []LoadPhase{
		{Until: 99*time.Second + 400*time.Millisecond, RPS: 75_000},
		{Until: 299*time.Second + 400*time.Millisecond, RPS: 150_000},
		{Until: 400 * time.Second, RPS: 75_000},
	}
}

// CaseStudySample is one control period of the Figure 15 timeline.
type CaseStudySample struct {
	Time         time.Duration
	LoadRPS      float64
	LCWays       int
	LCMBALevel   int
	P95          time.Duration
	Unfairness   float64 // CoPart across the batch workloads
	EQUnfairness float64 // equal allocation within the same envelope
	Phase        core.Phase
}

// CaseStudyResult is the full Figure 15 run.
type CaseStudyResult struct {
	Samples []CaseStudySample
	// SLOViolations counts periods where the LC workload missed its SLO.
	SLOViolations int
}

// sizeLCReservation finds the cheapest (ways, MBA) allocation whose solo
// performance fraction meets need (with a small headroom), preferring
// fewer ways, then a lower MBA level — the dynamic server resource
// manager of §6.3 (in the style of Heracles).
func sizeLCReservation(m *machine.Machine, lc workloads.LatencyCritical, need float64) (int, int, error) {
	cfg := m.Config()
	solo, err := m.SoloPerf(lc.Model)
	if err != nil {
		return 0, 0, err
	}
	target := need * 1.05 // headroom against interference
	if target > 1 {
		target = 1
	}
	for ways := 1; ways <= cfg.LLCWays; ways++ {
		for level := membw.MinLevel; level <= membw.MaxLevel; level += membw.Granularity {
			cbm := ((uint64(1) << ways) - 1) << uint(cfg.LLCWays-ways)
			perf, err := m.SoloPerfAt(lc.Model, machine.Alloc{CBM: cbm, MBALevel: level})
			if err != nil {
				return 0, 0, err
			}
			if perf.IPS/solo.IPS >= target {
				return ways, level, nil
			}
		}
	}
	return cfg.LLCWays, membw.MaxLevel, nil
}

// CaseStudy runs Figure 15: memcached under a stepped load trace,
// consolidated with the Word Count and Kmeans batch models; a dynamic
// envelope manager sizes the LC reservation per load phase and CoPart
// re-partitions the remainder across the batch workloads.
func CaseStudy(cfg machine.Config, trace []LoadPhase, seed int64) (CaseStudyResult, error) {
	if len(trace) == 0 {
		return CaseStudyResult{}, fmt.Errorf("experiments: empty load trace")
	}
	m, err := machine.New(cfg)
	if err != nil {
		return CaseStudyResult{}, err
	}
	lc := workloads.Memcached(cfg)
	batch := []machine.AppModel{workloads.WordCount(cfg), workloads.Kmeans(cfg)}
	if err := m.AddApp(lc.Model); err != nil {
		return CaseStudyResult{}, err
	}
	batchNames := make([]string, len(batch))
	soloBatch := make([]float64, len(batch))
	for i, b := range batch {
		if err := m.AddApp(b); err != nil {
			return CaseStudyResult{}, err
		}
		batchNames[i] = b.Name
		solo, err := m.SoloPerf(b)
		if err != nil {
			return CaseStudyResult{}, err
		}
		soloBatch[i] = solo.IPS
	}
	lcSolo, err := m.SoloPerf(lc.Model)
	if err != nil {
		return CaseStudyResult{}, err
	}

	target := scopedTarget{m: m, names: batchNames}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		return CaseStudyResult{}, err
	}

	applyEnvelope := func(rps float64) (core.Envelope, int, int, error) {
		need, err := lc.MinPerfFraction(rps)
		if err != nil {
			return core.Envelope{}, 0, 0, err
		}
		lcWays, lcLevel, err := sizeLCReservation(m, lc, need)
		if err != nil {
			return core.Envelope{}, 0, 0, err
		}
		if lcWays >= cfg.LLCWays-len(batch) {
			// Keep one way per batch application.
			lcWays = cfg.LLCWays - len(batch)
		}
		cbm := ((uint64(1) << lcWays) - 1) << uint(cfg.LLCWays-lcWays)
		if err := m.SetAllocation(lc.Model.Name, machine.Alloc{CBM: cbm, MBALevel: lcLevel}); err != nil {
			return core.Envelope{}, 0, 0, err
		}
		return core.Envelope{LoWay: 0, Ways: cfg.LLCWays - lcWays}, lcWays, lcLevel, nil
	}

	curLoad := trace[0].RPS
	env, lcWays, lcLevel, err := applyEnvelope(curLoad)
	if err != nil {
		return CaseStudyResult{}, err
	}
	mgr, err := core.NewManager(target, core.DefaultParams(), ref, env,
		rand.New(rand.NewSource(seed)))
	if err != nil {
		return CaseStudyResult{}, err
	}
	if err := mgr.Profile(); err != nil {
		return CaseStudyResult{}, err
	}

	loadAt := func(now time.Duration) float64 {
		for _, ph := range trace {
			if now < ph.Until {
				return ph.RPS
			}
		}
		return trace[len(trace)-1].RPS
	}
	end := trace[len(trace)-1].Until

	var res CaseStudyResult
	for m.Now() < end {
		if rps := loadAt(m.Now()); rps != curLoad {
			curLoad = rps
			env, lcWays, lcLevel, err = applyEnvelope(curLoad)
			if err != nil {
				return CaseStudyResult{}, err
			}
			if err := mgr.SetEnvelope(env); err != nil {
				return CaseStudyResult{}, err
			}
		}
		// Drive one manager step (each advances one control period,
		// except profiling, which runs its probes back to back).
		switch mgr.Phase() {
		case core.PhaseProfile:
			if err := mgr.Profile(); err != nil {
				return CaseStudyResult{}, err
			}
			continue // profiling advanced time; sample on the next loop
		case core.PhaseExplore:
			if _, err := mgr.ExploreStep(); err != nil {
				return CaseStudyResult{}, err
			}
		case core.PhaseIdle:
			if _, err := mgr.IdleStep(); err != nil {
				return CaseStudyResult{}, err
			}
		}

		// Sample the system state at the end of the period.
		perfs, err := m.Solve()
		if err != nil {
			return CaseStudyResult{}, err
		}
		names := m.Apps()
		var lcIPS float64
		slowdowns := make([]float64, 0, len(batch))
		for i, name := range names {
			if name == lc.Model.Name {
				lcIPS = perfs[i].IPS
				continue
			}
			for b, bn := range batchNames {
				if bn == name {
					slowdowns = append(slowdowns, soloBatch[b]/perfs[i].IPS)
				}
			}
		}
		unf, err := fairness.Unfairness(slowdowns)
		if err != nil {
			return CaseStudyResult{}, err
		}
		eqUnf, err := eqWithinEnvelope(m, batch, soloBatch, env, lc.Model, lcWays, lcLevel)
		if err != nil {
			return CaseStudyResult{}, err
		}
		p95 := lc.P95(lcIPS/lcSolo.IPS, curLoad)
		if p95 > lc.SLO {
			res.SLOViolations++
		}
		res.Samples = append(res.Samples, CaseStudySample{
			Time:         m.Now(),
			LoadRPS:      curLoad,
			LCWays:       lcWays,
			LCMBALevel:   lcLevel,
			P95:          p95,
			Unfairness:   unf,
			EQUnfairness: eqUnf,
			Phase:        mgr.Phase(),
		})
	}
	return res, nil
}

// eqWithinEnvelope computes the unfairness the EQ policy would achieve
// for the batch workloads inside the current envelope, with the LC
// reservation in place — Figure 15's comparison line.
func eqWithinEnvelope(m *machine.Machine, batch []machine.AppModel, soloBatch []float64,
	env core.Envelope, lcModel machine.AppModel, lcWays, lcLevel int) (float64, error) {
	cfg := m.Config()
	counts, err := machine.EqualSplit(env.Ways, len(batch))
	if err != nil {
		return 0, err
	}
	masks, err := machine.AssignContiguousWays(counts, env.LoWay, env.Ways)
	if err != nil {
		return 0, err
	}
	level := core.EqualMBAShare(len(batch) + 1)
	models := append([]machine.AppModel{lcModel}, batch...)
	lcCBM := ((uint64(1) << lcWays) - 1) << uint(cfg.LLCWays-lcWays)
	allocs := []machine.Alloc{{CBM: lcCBM, MBALevel: lcLevel}}
	for i := range batch {
		allocs = append(allocs, machine.Alloc{CBM: masks[i], MBALevel: level})
	}
	perfs, err := m.SolveFor(models, allocs)
	if err != nil {
		return 0, err
	}
	slowdowns := make([]float64, len(batch))
	for i := range batch {
		slowdowns[i] = soloBatch[i] / perfs[i+1].IPS
	}
	return fairness.Unfairness(slowdowns)
}

// WriteCaseStudyCSV exports the full timeline as CSV for external
// plotting (Figure 15 is a time-series plot in the paper).
func WriteCaseStudyCSV(w io.Writer, res CaseStudyResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"t_seconds", "load_rps", "lc_ways", "lc_mba",
		"p95_ms", "unfairness", "eq_unfairness", "phase",
	}); err != nil {
		return err
	}
	for _, s := range res.Samples {
		rec := []string{
			strconv.FormatFloat(s.Time.Seconds(), 'f', 1, 64),
			strconv.FormatFloat(s.LoadRPS, 'f', 0, 64),
			strconv.Itoa(s.LCWays),
			strconv.Itoa(s.LCMBALevel),
			strconv.FormatFloat(float64(s.P95.Microseconds())/1000, 'f', 3, 64),
			strconv.FormatFloat(s.Unfairness, 'f', 6, 64),
			strconv.FormatFloat(s.EQUnfairness, 'f', 6, 64),
			s.Phase.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderCaseStudy formats the timeline, downsampled to every nth sample.
func RenderCaseStudy(res CaseStudyResult, every int) *texttab.Table {
	if every < 1 {
		every = 1
	}
	tab := texttab.New("Figure 15. Runtime behavior of CoPart (case study)",
		"t(s)", "load(RPS)", "LC ways", "LC MBA", "p95(ms)", "unfairness", "EQ unfairness", "phase")
	for i, s := range res.Samples {
		if i%every != 0 && i != len(res.Samples)-1 {
			continue
		}
		tab.AddRow(
			fmt.Sprintf("%.1f", s.Time.Seconds()),
			fmt.Sprintf("%.0f", s.LoadRPS),
			fmt.Sprintf("%d", s.LCWays),
			fmt.Sprintf("%d", s.LCMBALevel),
			fmt.Sprintf("%.3f", float64(s.P95.Microseconds())/1000),
			fmt.Sprintf("%.4f", s.Unfairness),
			fmt.Sprintf("%.4f", s.EQUnfairness),
			s.Phase.String(),
		)
	}
	return tab
}
