package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/texttab"
	"repro/internal/workloads"
)

// ChaosResult compares the resilient controller's fairness with and
// without an injected fault schedule. The paper evaluates CoPart on a
// healthy testbed; this experiment asks the deployment question instead:
// when the substrate misbehaves — counter reads failing, schemata writes
// bouncing with EBUSY, counters wrapping, periods overrunning — does the
// hardened control loop keep unfairness close to the fault-free run, and
// how quickly does it re-converge once the faults clear?
type ChaosResult struct {
	Mix      workloads.MixKind
	Apps     int
	Duration time.Duration

	// FaultFree and UnderChaos are the mean per-period unfairness of the
	// two runs; Ratio is UnderChaos/FaultFree (1.0 = no degradation).
	FaultFree  float64
	UnderChaos float64
	Ratio      float64

	// Injected counts the faults the scenario actually delivered.
	Injected faultinject.Stats
	// Fallbacks and Recoveries count degraded-mode entries and exits.
	Fallbacks  int
	Recoveries int
	// Recovered reports whether the controller reached the idle phase
	// again after the last injected fault; RecoveryTime is how much
	// target time that took.
	Recovered    bool
	RecoveryTime time.Duration
}

// chaosLeg is one controller run (fault-free or injected) of the chaos
// experiment.
type chaosLeg struct {
	meanUnfairness float64
	periods        int
	fallbacks      int
	recoveries     int
	stats          faultinject.Stats
	recovered      bool
	recoveryTime   time.Duration
}

func runChaosLeg(cfg machine.Config, kind workloads.MixKind, apps int,
	sc faultinject.Scenario, seed int64, duration time.Duration) (chaosLeg, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return chaosLeg{}, err
	}
	models, err := workloads.Mix(cfg, kind, apps)
	if err != nil {
		return chaosLeg{}, err
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			return chaosLeg{}, err
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		return chaosLeg{}, err
	}
	elog, err := eventlog.New(1 << 15)
	if err != nil {
		return chaosLeg{}, err
	}
	var (
		target core.Target = m
		inj    *faultinject.Injector
	)
	if !sc.Empty() {
		wrapped, err := faultinject.WrapTarget(m, sc, elog)
		if err != nil {
			return chaosLeg{}, err
		}
		target = wrapped
		inj = wrapped.Injector()
	}
	mgr, err := core.NewManager(target, core.DefaultParams(), ref,
		core.Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return chaosLeg{}, err
	}
	mgr.Resilience = core.DefaultResilience()
	mgr.Events = elog

	var reports []core.PeriodReport
	mgr.OnPeriod = func(r core.PeriodReport) { reports = append(reports, r) }
	if err := mgr.Run(duration); err != nil {
		return chaosLeg{}, fmt.Errorf("experiments: chaos run: %w", err)
	}

	var leg chaosLeg
	for _, r := range reports {
		leg.meanUnfairness += r.Unfairness
	}
	leg.periods = len(reports)
	if leg.periods == 0 {
		return chaosLeg{}, fmt.Errorf("experiments: chaos run reported no periods")
	}
	leg.meanUnfairness /= float64(leg.periods)
	for _, e := range elog.Events() {
		switch e.Kind {
		case eventlog.KindFallback:
			// enterDegraded logs one "degraded mode" line per entry plus
			// one "EQ fallback ... applied" line; count entries only.
			if len(e.Detail) >= 8 && e.Detail[:8] == "degraded" {
				leg.fallbacks++
			}
		case eventlog.KindRecover:
			leg.recoveries++
		}
	}
	if inj != nil {
		leg.stats = inj.Stats()
		if last := inj.LastFault(); last >= 0 {
			for _, r := range reports {
				if r.Phase == core.PhaseIdle && r.Time >= last {
					leg.recovered = true
					leg.recoveryTime = r.Time - last
					break
				}
			}
		}
	}
	return leg, nil
}

// Chaos runs the resilient controller on one mix twice — fault-free and
// under the given scenario — and reports the fairness cost of the fault
// schedule plus the recovery behavior. Both legs run with the default
// resilience configuration so the comparison isolates the faults, not
// the hardening.
func Chaos(cfg machine.Config, sc faultinject.Scenario, seed int64,
	duration time.Duration) (ChaosResult, *texttab.Table, error) {
	const (
		kind = workloads.HBoth
		apps = 4
	)
	if sc.Empty() {
		return ChaosResult{}, nil, fmt.Errorf("experiments: chaos scenario injects nothing")
	}
	clean, err := runChaosLeg(cfg, kind, apps, faultinject.Scenario{}, seed, duration)
	if err != nil {
		return ChaosResult{}, nil, err
	}
	chaotic, err := runChaosLeg(cfg, kind, apps, sc, seed, duration)
	if err != nil {
		return ChaosResult{}, nil, err
	}
	res := ChaosResult{
		Mix:          kind,
		Apps:         apps,
		Duration:     duration,
		FaultFree:    clean.meanUnfairness,
		UnderChaos:   chaotic.meanUnfairness,
		Injected:     chaotic.stats,
		Fallbacks:    chaotic.fallbacks,
		Recoveries:   chaotic.recoveries,
		Recovered:    chaotic.recovered,
		RecoveryTime: chaotic.recoveryTime,
	}
	// Guard the ratio against a (near-)perfectly fair baseline.
	const fairFloor = 1e-9
	base := clean.meanUnfairness
	if base < fairFloor {
		base = fairFloor
	}
	res.Ratio = chaotic.meanUnfairness / base

	tab := texttab.New(
		fmt.Sprintf("Chaos soak. %s, %d apps, %v under fault injection", kind, apps, duration),
		"Metric", "Value")
	tab.AddRow("mean unfairness (fault-free)", fmt.Sprintf("%.4f", res.FaultFree))
	tab.AddRow("mean unfairness (chaos)", fmt.Sprintf("%.4f", res.UnderChaos))
	tab.AddRow("ratio", fmt.Sprintf("%.3f", res.Ratio))
	tab.AddRow("injected faults", fmt.Sprintf("%d", res.Injected.Total()))
	tab.AddRow("  read errors", fmt.Sprintf("%d", res.Injected.ReadErrors))
	tab.AddRow("  write errors", fmt.Sprintf("%d", res.Injected.WriteErrors))
	tab.AddRow("  overruns", fmt.Sprintf("%d", res.Injected.Overruns))
	tab.AddRow("  wraps", fmt.Sprintf("%d", res.Injected.Wraps))
	tab.AddRow("  stuck reads", fmt.Sprintf("%d", res.Injected.StuckReads))
	tab.AddRow("degraded-mode entries", fmt.Sprintf("%d", res.Fallbacks))
	tab.AddRow("recoveries", fmt.Sprintf("%d", res.Recoveries))
	if res.Recovered {
		tab.AddRow("recovery time after last fault", res.RecoveryTime.String())
	} else {
		tab.AddRow("recovery time after last fault", "did not recover")
	}
	return res, tab, nil
}
