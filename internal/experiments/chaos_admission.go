package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/texttab"
	"repro/internal/workloads"
)

// ChurnOp is one scheduled admission-API operation, applied between
// control periods once target time reaches At — the same path a curl
// against a live copartd takes, minus the HTTP layer.
type ChurnOp struct {
	At   time.Duration
	Kind string // "add", "remove", or "reweight"
	// Spec carries the app for "add"; only Spec.Name is read for
	// "remove" and "reweight".
	Spec   controlplane.AppSpec
	Weight float64 // for "reweight"
}

// DefaultChurn is the admission schedule the soak test uses: an app
// arrives mid-fault-storm, gets reweighted, departs, and a second app
// cycles through after the storm clears. The single spare core on the
// default machine under a 3-app H-Both mix is exactly enough for one
// 1-core guest at a time.
func DefaultChurn() []ChurnOp {
	return []ChurnOp{
		{At: 60 * time.Second, Kind: "add",
			Spec: controlplane.AppSpec{Name: "churn-a", Benchmark: "EP", Cores: 1}},
		{At: 110 * time.Second, Kind: "reweight",
			Spec: controlplane.AppSpec{Name: "churn-a"}, Weight: 2},
		{At: 150 * time.Second, Kind: "remove",
			Spec: controlplane.AppSpec{Name: "churn-a"}},
		{At: 180 * time.Second, Kind: "add",
			Spec: controlplane.AppSpec{Name: "churn-b", Benchmark: "EP", Cores: 1}},
		{At: 215 * time.Second, Kind: "remove",
			Spec: controlplane.AppSpec{Name: "churn-b"}},
	}
}

// ChaosAdmissionResult extends the chaos comparison with admission
// churn: both legs replay the identical ChurnOp schedule, so Ratio
// still isolates the cost of the faults — now measured while the
// control plane is admitting and evicting apps through the same
// between-periods path copartd uses.
type ChaosAdmissionResult struct {
	Mix      workloads.MixKind
	Apps     int
	Duration time.Duration

	FaultFree  float64
	UnderChaos float64
	Ratio      float64

	Injected   faultinject.Stats
	Fallbacks  int
	Recoveries int
	Recovered  bool

	// ChurnOps is the schedule length; ChurnApplied/ChurnRejected split
	// the chaotic leg's admission-op outcomes. A correct run applies
	// every op: the fault storm may degrade the controller but must
	// never lose or reject a valid admission.
	ChurnOps      int
	ChurnApplied  uint64
	ChurnRejected uint64
	// FinalApps is the chaotic leg's app count after the last departure.
	FinalApps int
}

// churnLegOut is one churn-soak leg plus the live objects the
// allocation-guard test pokes at after the run.
type churnLegOut struct {
	chaosLeg
	plane *controlplane.Plane
	m     *machine.Machine
}

// runChurnLeg runs one chaos leg with the admission schedule applied
// through a control plane between periods, exactly as copartd drains
// its HTTP queue.
func runChurnLeg(cfg machine.Config, kind workloads.MixKind, apps int,
	sc faultinject.Scenario, churn []ChurnOp, seed int64,
	duration time.Duration) (churnLegOut, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return churnLegOut{}, err
	}
	models, err := workloads.Mix(cfg, kind, apps)
	if err != nil {
		return churnLegOut{}, err
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			return churnLegOut{}, err
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		return churnLegOut{}, err
	}
	elog, err := eventlog.New(1 << 15)
	if err != nil {
		return churnLegOut{}, err
	}
	var (
		target core.Target = m
		inj    *faultinject.Injector
	)
	if !sc.Empty() {
		wrapped, err := faultinject.WrapTarget(m, sc, elog)
		if err != nil {
			return churnLegOut{}, err
		}
		target = wrapped
		inj = wrapped.Injector()
	}
	mgr, err := core.NewManager(target, core.DefaultParams(), ref,
		core.Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return churnLegOut{}, err
	}
	mgr.Resilience = core.DefaultResilience()
	mgr.Events = elog

	plane := controlplane.New(&controlplane.MachineAdmitter{M: m, Mgr: mgr}, mgr, elog)
	var (
		reports  []core.PeriodReport
		now      time.Duration
		churnErr error
	)
	mgr.OnPeriod = func(r core.PeriodReport) {
		now = r.Time
		reports = append(reports, r)
	}
	next := 0
	mgr.BetweenPeriods = func() {
		for next < len(churn) && churn[next].At <= now {
			op := churn[next]
			next++
			var err error
			switch op.Kind {
			case "add":
				err = plane.EnqueueAdd(op.Spec)
			case "remove":
				err = plane.EnqueueRemove(op.Spec.Name)
			case "reweight":
				err = plane.EnqueueReweight(op.Spec.Name, op.Weight)
			default:
				err = fmt.Errorf("experiments: unknown churn op %q", op.Kind)
			}
			if err != nil && churnErr == nil {
				churnErr = fmt.Errorf("experiments: churn op %d (%s %s): %w",
					next-1, op.Kind, op.Spec.Name, err)
			}
		}
		plane.Drain()
	}
	if err := mgr.Run(duration); err != nil {
		return churnLegOut{}, fmt.Errorf("experiments: churn soak run: %w", err)
	}
	if churnErr != nil {
		return churnLegOut{}, churnErr
	}
	if next != len(churn) {
		return churnLegOut{}, fmt.Errorf("experiments: only %d of %d churn ops were due within %v",
			next, len(churn), duration)
	}

	out := churnLegOut{plane: plane, m: m}
	for _, r := range reports {
		out.meanUnfairness += r.Unfairness
	}
	out.periods = len(reports)
	if out.periods == 0 {
		return churnLegOut{}, fmt.Errorf("experiments: churn soak reported no periods")
	}
	out.meanUnfairness /= float64(out.periods)
	for _, e := range elog.Events() {
		switch e.Kind {
		case eventlog.KindFallback:
			if len(e.Detail) >= 8 && e.Detail[:8] == "degraded" {
				out.fallbacks++
			}
		case eventlog.KindRecover:
			out.recoveries++
		}
	}
	if inj != nil {
		out.stats = inj.Stats()
		if last := inj.LastFault(); last >= 0 {
			for _, r := range reports {
				if r.Phase == core.PhaseIdle && r.Time >= last {
					out.recovered = true
					out.recoveryTime = r.Time - last
					break
				}
			}
		}
	}
	return out, nil
}

// ChaosAdmission runs the chaos soak with live admission churn: both
// legs (fault-free and under the scenario) replay the same ChurnOp
// schedule through a control plane, so the reported ratio is the
// fairness cost of the faults while the membership is in motion.
func ChaosAdmission(cfg machine.Config, sc faultinject.Scenario, churn []ChurnOp,
	seed int64, duration time.Duration) (ChaosAdmissionResult, *texttab.Table, error) {
	const (
		// Three H-Both apps leave one core of headroom on the default
		// machine — enough for the schedule's 1-core guests.
		kind = workloads.HBoth
		apps = 3
	)
	if sc.Empty() {
		return ChaosAdmissionResult{}, nil, fmt.Errorf("experiments: chaos scenario injects nothing")
	}
	if len(churn) == 0 {
		return ChaosAdmissionResult{}, nil, fmt.Errorf("experiments: churn schedule is empty")
	}
	for i := 1; i < len(churn); i++ {
		if churn[i].At < churn[i-1].At {
			return ChaosAdmissionResult{}, nil, fmt.Errorf("experiments: churn schedule out of order at op %d", i)
		}
	}
	if last := churn[len(churn)-1].At; last >= duration {
		return ChaosAdmissionResult{}, nil, fmt.Errorf("experiments: churn op at %v is outside the %v soak", last, duration)
	}

	clean, err := runChurnLeg(cfg, kind, apps, faultinject.Scenario{}, churn, seed, duration)
	if err != nil {
		return ChaosAdmissionResult{}, nil, err
	}
	chaotic, err := runChurnLeg(cfg, kind, apps, sc, churn, seed, duration)
	if err != nil {
		return ChaosAdmissionResult{}, nil, err
	}
	applied, rejected := chaotic.plane.AdmissionStats()
	res := ChaosAdmissionResult{
		Mix:           kind,
		Apps:          apps,
		Duration:      duration,
		FaultFree:     clean.meanUnfairness,
		UnderChaos:    chaotic.meanUnfairness,
		Injected:      chaotic.stats,
		Fallbacks:     chaotic.fallbacks,
		Recoveries:    chaotic.recoveries,
		Recovered:     chaotic.recovered,
		ChurnOps:      len(churn),
		ChurnApplied:  applied,
		ChurnRejected: rejected,
		FinalApps:     len(chaotic.m.Apps()),
	}
	const fairFloor = 1e-9
	base := clean.meanUnfairness
	if base < fairFloor {
		base = fairFloor
	}
	res.Ratio = chaotic.meanUnfairness / base

	tab := texttab.New(
		fmt.Sprintf("Chaos + admission churn. %s, %d apps, %d churn ops, %v under fault injection",
			kind, apps, len(churn), duration),
		"Metric", "Value")
	tab.AddRow("mean unfairness (fault-free)", fmt.Sprintf("%.4f", res.FaultFree))
	tab.AddRow("mean unfairness (chaos)", fmt.Sprintf("%.4f", res.UnderChaos))
	tab.AddRow("ratio", fmt.Sprintf("%.3f", res.Ratio))
	tab.AddRow("injected faults", fmt.Sprintf("%d", res.Injected.Total()))
	tab.AddRow("churn ops applied", fmt.Sprintf("%d of %d", res.ChurnApplied, res.ChurnOps))
	tab.AddRow("churn ops rejected", fmt.Sprintf("%d", res.ChurnRejected))
	tab.AddRow("degraded-mode entries", fmt.Sprintf("%d", res.Fallbacks))
	tab.AddRow("recoveries", fmt.Sprintf("%d", res.Recoveries))
	tab.AddRow("final app count", fmt.Sprintf("%d", res.FinalApps))
	return res, tab, nil
}
