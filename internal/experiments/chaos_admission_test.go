package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// TestChaosAdmissionSoak: the controller rides out the standard fault
// schedule while the control plane admits, reweights, and evicts apps
// between periods. Every churn op must land (the storm may degrade the
// controller but never lose an admission), the membership must end
// where the schedule leaves it, and the fairness cost of the faults
// stays within the same 1.5x budget as the churn-free soak.
func TestChaosAdmissionSoak(t *testing.T) {
	cfg := machine.DefaultConfig()
	res, tab, err := ChaosAdmission(cfg, faultinject.Standard(), DefaultChurn(), 1, 240*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected.Total() == 0 {
		t.Fatal("the standard scenario must inject faults")
	}
	if res.ChurnApplied != uint64(res.ChurnOps) || res.ChurnRejected != 0 {
		t.Errorf("churn: %d of %d applied, %d rejected — every scheduled op must land",
			res.ChurnApplied, res.ChurnOps, res.ChurnRejected)
	}
	if res.FinalApps != res.Apps {
		t.Errorf("final app count %d, want %d (both churn guests departed)", res.FinalApps, res.Apps)
	}
	if res.Fallbacks == 0 {
		t.Error("the 10s read outage must push the controller into degraded mode")
	}
	if !res.Recovered {
		t.Error("controller must re-reach idle after the last injected fault")
	}
	if res.Ratio > 1.5 {
		t.Errorf("chaos unfairness ratio %.3f exceeds the 1.5x budget (fault-free %.4f, chaos %.4f)",
			res.Ratio, res.FaultFree, res.UnderChaos)
	}
	text := tab.String()
	for _, want := range []string{"churn ops applied", "ratio", "final app count"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
}

// TestChaosAdmissionSteadyStateAllocs: once the churn schedule is spent,
// the between-periods drain — the code that runs on every single control
// period of a live copartd — must not allocate. A per-period leak in the
// drain path would grow the daemon's heap without bound.
func TestChaosAdmissionSteadyStateAllocs(t *testing.T) {
	leg, err := runChurnLeg(machine.DefaultConfig(), workloads.HBoth, 3,
		faultinject.Standard(), DefaultChurn(), 1, 240*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, leg.plane.Drain); avg > 0 {
		t.Errorf("empty-queue Drain allocates %.1f times per period, want 0", avg)
	}
}

// TestChaosAdmissionValidation pins the guards on degenerate inputs.
func TestChaosAdmissionValidation(t *testing.T) {
	cfg := machine.DefaultConfig()
	if _, _, err := ChaosAdmission(cfg, faultinject.Scenario{}, DefaultChurn(), 1, time.Minute); err == nil {
		t.Error("empty scenario accepted")
	}
	if _, _, err := ChaosAdmission(cfg, faultinject.Standard(), nil, 1, time.Minute); err == nil {
		t.Error("empty churn schedule accepted")
	}
	out := []ChurnOp{
		{At: 20 * time.Second, Kind: "add", Spec: controlplane.AppSpec{Name: "x", Cores: 1}},
		{At: 10 * time.Second, Kind: "remove", Spec: controlplane.AppSpec{Name: "x"}},
	}
	if _, _, err := ChaosAdmission(cfg, faultinject.Standard(), out, 1, time.Minute); err == nil {
		t.Error("out-of-order schedule accepted")
	}
	late := []ChurnOp{{At: 2 * time.Minute, Kind: "add", Spec: controlplane.AppSpec{Name: "x", Cores: 1}}}
	if _, _, err := ChaosAdmission(cfg, faultinject.Standard(), late, 1, time.Minute); err == nil {
		t.Error("churn op beyond the soak accepted")
	}
}
