package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/machine"
)

// TestChaosStandardScenario is the chaos soak: the resilient controller
// rides out the standard fault schedule without Run erroring, falls back
// to EQ at least once, recovers to idle after the faults clear, and its
// mean unfairness stays within 1.5x of the fault-free run.
func TestChaosStandardScenario(t *testing.T) {
	cfg := machine.DefaultConfig()
	res, tab, err := Chaos(cfg, faultinject.Standard(), 1, 240*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected.Total() == 0 {
		t.Fatal("the standard scenario must inject faults")
	}
	if res.Injected.ReadErrors == 0 || res.Injected.WriteErrors == 0 ||
		res.Injected.Wraps == 0 || res.Injected.StuckReads == 0 {
		t.Errorf("standard scenario should exercise every fault class: %+v", res.Injected)
	}
	if res.Fallbacks == 0 {
		t.Error("the 10s read outage must push the controller into degraded mode")
	}
	if res.Recoveries < res.Fallbacks {
		t.Errorf("%d fallbacks but only %d recoveries", res.Fallbacks, res.Recoveries)
	}
	if !res.Recovered {
		t.Error("controller must re-reach idle after the last injected fault")
	}
	if res.Ratio > 1.5 {
		t.Errorf("chaos unfairness ratio %.3f exceeds the 1.5x budget (fault-free %.4f, chaos %.4f)",
			res.Ratio, res.FaultFree, res.UnderChaos)
	}
	text := tab.String()
	for _, want := range []string{"ratio", "degraded-mode entries", "recovery time"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
}

// TestChaosRejectsEmptyScenario pins the guard against a meaningless
// comparison.
func TestChaosRejectsEmptyScenario(t *testing.T) {
	if _, _, err := Chaos(machine.DefaultConfig(), faultinject.Scenario{}, 1, time.Minute); err == nil {
		t.Fatal("an empty scenario must be rejected")
	}
}
