package experiments

import (
	"fmt"

	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/membw"
	"repro/internal/parallel"
	"repro/internal/texttab"
	"repro/internal/workloads"
)

// mbaLevels lists the sweep points of the characterization figures.
func mbaLevels() []int {
	levels := make([]int, 0, 10)
	for l := membw.MinLevel; l <= membw.MaxLevel; l += membw.Granularity {
		levels = append(levels, l)
	}
	return levels
}

// PerfGrid is one benchmark's normalized-performance surface: rows are
// way counts 1..Ways, columns MBA levels 10..100.
type PerfGrid struct {
	Bench  string
	Ways   []int
	Levels []int
	// Norm[w][l] is IPS at (Ways[w], Levels[l]) divided by the best IPS
	// on the grid — exactly the tiles of Figures 1–3.
	Norm [][]float64
}

// PerfHeatmap sweeps one benchmark solo over the full (ways × MBA) grid,
// reproducing its tile from Figures 1–3. The grid cells are independent
// solves, so they fan out across the worker pool; each cell builds its
// own Machine (Machines are not concurrency-safe), which keeps the
// results bit-identical to a sequential sweep.
func PerfHeatmap(cfg machine.Config, bench string) (PerfGrid, *texttab.Heatmap, error) {
	spec, err := workloads.ByName(cfg, bench)
	if err != nil {
		return PerfGrid{}, nil, err
	}
	levels := mbaLevels()
	grid := PerfGrid{Bench: bench, Levels: levels}
	for w := 1; w <= cfg.LLCWays; w++ {
		grid.Ways = append(grid.Ways, w)
	}
	raw := make([][]float64, len(grid.Ways))
	for i := range raw {
		raw[i] = make([]float64, len(levels))
	}
	err = parallel.ForEach(len(grid.Ways)*len(levels), func(k int) error {
		i, j := k/len(levels), k%len(levels)
		m, err := machine.New(cfg)
		if err != nil {
			return err
		}
		cbm := (uint64(1) << grid.Ways[i]) - 1
		perf, err := m.SoloPerfAt(spec.Model, machine.Alloc{CBM: cbm, MBALevel: levels[j]})
		if err != nil {
			return err
		}
		raw[i][j] = perf.IPS
		return nil
	})
	if err != nil {
		return PerfGrid{}, nil, err
	}
	best := 0.0
	for i := range raw {
		for j := range raw[i] {
			if raw[i][j] > best {
				best = raw[i][j]
			}
		}
	}
	grid.Norm = make([][]float64, len(raw))
	xticks := make([]string, len(levels))
	for j, l := range levels {
		xticks[j] = fmt.Sprintf("%d", l)
	}
	yticks := make([]string, len(grid.Ways))
	hm := texttab.NewHeatmap(
		fmt.Sprintf("Normalized performance of %s (Figures 1-3 tile)", bench),
		xticks, yticks)
	hm.XLabel = "MBA level (%)"
	hm.YLabel = "LLC ways"
	hm.Format = "%.2f"
	for i := range raw {
		grid.Norm[i] = make([]float64, len(raw[i]))
		yticks[i] = fmt.Sprintf("%d", grid.Ways[i])
		for j := range raw[i] {
			grid.Norm[i][j] = raw[i][j] / best
			hm.Set(i, j, grid.Norm[i][j])
		}
	}
	hm.YTicks = yticks
	return grid, hm, nil
}

// FigureBenches maps each characterization figure to its benchmarks.
func FigureBenches(fig int) ([]string, error) {
	switch fig {
	case 1:
		return []string{"WN", "WS", "RT"}, nil
	case 2:
		return []string{"OC", "CG", "FT"}, nil
	case 3:
		return []string{"SP", "ON", "FMM"}, nil
	default:
		return nil, fmt.Errorf("experiments: no characterization figure %d", fig)
	}
}

// FairGrid is the unfairness surface of Figures 4–6: one workload mix
// under a set of LLC partitionings (rows) × MBA partitionings (columns),
// normalized to the unpartitioned run.
type FairGrid struct {
	Mix        []string
	LLCParts   [][]int // way tuples, one per row
	MBAParts   [][]int // level tuples, one per column
	NoneUnfair float64
	// Norm[r][c] = unfairness(LLCParts[r], MBAParts[c]) / NoneUnfair.
	Norm [][]float64
}

// fairMixBenches maps each fairness figure to its mix (§4.2).
func fairMixBenches(fig int) ([]string, error) {
	switch fig {
	case 4:
		return []string{"WN", "WS", "RT", "SW"}, nil
	case 5:
		return []string{"OC", "CG", "FT", "SW"}, nil
	case 6:
		return []string{"SP", "ON", "FMM", "SW"}, nil
	default:
		return nil, fmt.Errorf("experiments: no fairness figure %d", fig)
	}
}

// fairLLCPartitions are the way tuples swept on the Y axis. They include
// the tuples the paper calls out — (5,3,2,1) for Figure 4 — plus equal
// and skewed splits.
func fairLLCPartitions() [][]int {
	return [][]int{
		{3, 3, 3, 2},
		{5, 3, 2, 1},
		{2, 3, 5, 1},
		{1, 2, 3, 5},
		{8, 1, 1, 1},
		{2, 2, 2, 5},
	}
}

// fairMBAPartitions are the MBA tuples swept on the X axis, including the
// paper's (20,10,100,10) example.
func fairMBAPartitions() [][]int {
	return [][]int{
		{100, 100, 100, 100},
		{30, 30, 30, 30},
		{10, 10, 10, 10},
		{20, 10, 100, 10},
		{40, 30, 20, 10},
		{10, 20, 30, 40},
	}
}

// FairnessHeatmap reproduces Figure fig (4, 5, or 6): unfairness of the
// mix under each (LLC partitioning, MBA partitioning) pair, normalized to
// running the mix with no partitioning at all.
func FairnessHeatmap(cfg machine.Config, fig int) (FairGrid, *texttab.Heatmap, error) {
	names, err := fairMixBenches(fig)
	if err != nil {
		return FairGrid{}, nil, err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return FairGrid{}, nil, err
	}
	models := make([]machine.AppModel, len(names))
	solo := make([]float64, len(names))
	for i, n := range names {
		spec, err := workloads.ByName(cfg, n)
		if err != nil {
			return FairGrid{}, nil, err
		}
		models[i] = spec.Model
		p, err := m.SoloPerf(spec.Model)
		if err != nil {
			return FairGrid{}, nil, err
		}
		solo[i] = p.IPS
	}

	unfairnessOf := func(m *machine.Machine, allocs []machine.Alloc) (float64, error) {
		perfs, err := m.SolveFor(models, allocs)
		if err != nil {
			return 0, err
		}
		slowdowns := make([]float64, len(perfs))
		for i, p := range perfs {
			slowdowns[i] = solo[i] / p.IPS
		}
		return fairness.Unfairness(slowdowns)
	}

	noneAllocs := make([]machine.Alloc, len(models))
	for i := range noneAllocs {
		noneAllocs[i] = machine.Alloc{CBM: cfg.FullMask(), MBALevel: membw.MaxLevel}
	}
	noneU, err := unfairnessOf(m, noneAllocs)
	if err != nil {
		return FairGrid{}, nil, err
	}
	if noneU <= 0 {
		// A perfectly fair unpartitioned run would make normalization
		// meaningless; guard against a degenerate model.
		return FairGrid{}, nil, fmt.Errorf("experiments: unpartitioned unfairness is %v", noneU)
	}

	grid := FairGrid{
		Mix:        names,
		LLCParts:   fairLLCPartitions(),
		MBAParts:   fairMBAPartitions(),
		NoneUnfair: noneU,
	}
	xticks := make([]string, len(grid.MBAParts))
	for j, p := range grid.MBAParts {
		xticks[j] = tupleLabel(p)
	}
	yticks := make([]string, len(grid.LLCParts))
	for i, p := range grid.LLCParts {
		yticks[i] = tupleLabel(p)
	}
	hm := texttab.NewHeatmap(
		fmt.Sprintf("Figure %d. Unfairness of %v normalized to no partitioning", fig, names),
		xticks, yticks)
	hm.XLabel = "MBA partitioning"
	hm.YLabel = "LLC partitioning"
	hm.Format = "%.2f"

	grid.Norm = make([][]float64, len(grid.LLCParts))
	for r := range grid.Norm {
		grid.Norm[r] = make([]float64, len(grid.MBAParts))
	}
	// Every (LLC partitioning, MBA partitioning) cell is an independent
	// solve on a fresh machine; fan them out across the worker pool.
	nc := len(grid.MBAParts)
	err = parallel.ForEach(len(grid.LLCParts)*nc, func(k int) error {
		r, c := k/nc, k%nc
		masks, err := machine.AssignContiguousWays(grid.LLCParts[r], 0, cfg.LLCWays)
		if err != nil {
			return err
		}
		cm, err := machine.New(cfg)
		if err != nil {
			return err
		}
		allocs := make([]machine.Alloc, len(models))
		for i := range allocs {
			allocs[i] = machine.Alloc{CBM: masks[i], MBALevel: grid.MBAParts[c][i]}
		}
		u, err := unfairnessOf(cm, allocs)
		if err != nil {
			return err
		}
		grid.Norm[r][c] = u / noneU
		return nil
	})
	if err != nil {
		return FairGrid{}, nil, err
	}
	for r := range grid.Norm {
		for c := range grid.Norm[r] {
			hm.Set(r, c, grid.Norm[r][c])
		}
	}
	return grid, hm, nil
}

func tupleLabel(t []int) string {
	s := "("
	for i, v := range t {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", v)
	}
	return s + ")"
}
