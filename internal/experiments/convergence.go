package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/texttab"
	"repro/internal/workloads"
)

// ConvergenceCell records how long one adaptation took.
type ConvergenceCell struct {
	// ProfilePeriods is the number of control periods spent profiling
	// (three probes per application, §5.4.1).
	ProfilePeriods int
	// ExplorePeriods is the number of exploration periods until the
	// manager went idle.
	ExplorePeriods int
	// Converged is false when the exploration cap was hit first.
	Converged bool
}

// Total returns the end-to-end adaptation time in periods.
func (c ConvergenceCell) Total() int { return c.ProfilePeriods + c.ExplorePeriods }

// ConvergenceResult maps mixes × application counts to adaptation times —
// the transient the paper's Figure 15 shows after each load change.
type ConvergenceResult struct {
	Mixes  []workloads.MixKind
	Counts []int
	Cells  [][]ConvergenceCell // [mix][count]
}

// Convergence measures adaptation latency for every mix at application
// counts 3–6.
func Convergence(cfg machine.Config, seed int64) (ConvergenceResult, *texttab.Table, error) {
	res := ConvergenceResult{
		Mixes:  workloads.MixKinds(),
		Counts: []int{3, 4, 5, 6},
	}
	const maxExplore = 300
	for _, kind := range res.Mixes {
		row := make([]ConvergenceCell, 0, len(res.Counts))
		for _, n := range res.Counts {
			models, err := workloads.Mix(cfg, kind, n)
			if err != nil {
				return ConvergenceResult{}, nil, err
			}
			m, err := machine.New(cfg)
			if err != nil {
				return ConvergenceResult{}, nil, err
			}
			for _, model := range models {
				if err := m.AddApp(model); err != nil {
					return ConvergenceResult{}, nil, err
				}
			}
			ref, err := workloads.StreamMissRates(m)
			if err != nil {
				return ConvergenceResult{}, nil, err
			}
			mgr, err := core.NewManager(m, core.DefaultParams(), ref,
				core.Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(seed)))
			if err != nil {
				return ConvergenceResult{}, nil, err
			}
			before := m.Now()
			if err := mgr.Profile(); err != nil {
				return ConvergenceResult{}, nil, err
			}
			cell := ConvergenceCell{
				ProfilePeriods: int((m.Now() - before) / core.DefaultParams().Period),
			}
			for i := 0; i < maxExplore; i++ {
				done, err := mgr.ExploreStep()
				if err != nil {
					return ConvergenceResult{}, nil, err
				}
				cell.ExplorePeriods++
				if done {
					cell.Converged = true
					break
				}
			}
			row = append(row, cell)
		}
		res.Cells = append(res.Cells, row)
	}

	headers := []string{"Mix"}
	for _, n := range res.Counts {
		headers = append(headers, fmt.Sprintf("apps=%d", n))
	}
	tab := texttab.New(
		"Convergence. Adaptation time in 1s control periods (profile+explore; * = cap hit)",
		headers...)
	for mi, kind := range res.Mixes {
		row := []string{kind.String()}
		for ci := range res.Counts {
			c := res.Cells[mi][ci]
			mark := ""
			if !c.Converged {
				mark = "*"
			}
			row = append(row, fmt.Sprintf("%d%s", c.Total(), mark))
		}
		tab.AddRow(row...)
	}
	return res, tab, nil
}
