package experiments

import (
	"reflect"
	"testing"

	"repro/internal/parallel"
)

// atWorkers runs fn with the worker pool pinned to n and restores the
// all-cores default afterwards.
func atWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	fn()
}

// TestParallelDeterminism pins the engine's core contract: fanning the
// experiment grids across workers must not change a single bit of the
// output, because every cell builds its own machine and RNG and the pool
// only decides when — not how — a cell runs. Each experiment is rendered
// to text and compared byte for byte between one worker and several.
func TestParallelDeterminism(t *testing.T) {
	type run struct {
		rendered string
		result   any
	}
	cases := []struct {
		name string
		fn   func(t *testing.T) run
	}{
		{"Figure12", func(t *testing.T) run {
			res, tab, err := Figure12(cfg(), 1)
			if err != nil {
				t.Fatal(err)
			}
			return run{tab.String(), res}
		}},
		{"PerfHeatmap", func(t *testing.T) run {
			grid, hm, err := PerfHeatmap(cfg(), "CG")
			if err != nil {
				t.Fatal(err)
			}
			return run{hm.String(), grid}
		}},
		{"Figure11", func(t *testing.T) run {
			res, tab, err := Figure11(cfg(), SensTraffic, 1)
			if err != nil {
				t.Fatal(err)
			}
			return run{tab.String(), res}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var seq, par run
			atWorkers(t, 1, func() { seq = tc.fn(t) })
			atWorkers(t, 8, func() { par = tc.fn(t) })
			if seq.rendered != par.rendered {
				t.Errorf("rendered output differs between 1 and 8 workers:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					seq.rendered, par.rendered)
			}
			if !reflect.DeepEqual(seq.result, par.result) {
				t.Errorf("result structs differ between 1 and 8 workers:\nseq: %+v\npar: %+v",
					seq.result, par.result)
			}
		})
	}
}
