package experiments

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/parallel"
)

// atWorkers runs fn with the worker pool pinned to n and restores the
// all-cores default afterwards.
func atWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	fn()
}

// TestParallelDeterminism pins the engine's core contract: fanning the
// experiment grids across workers must not change a single bit of the
// output, because every cell builds its own machine and RNG and the pool
// only decides when — not how — a cell runs. Each experiment is rendered
// to text and compared byte for byte between one worker and several.
func TestParallelDeterminism(t *testing.T) {
	type run struct {
		rendered string
		result   any
	}
	cases := []struct {
		name string
		fn   func(t *testing.T) run
	}{
		{"Figure12", func(t *testing.T) run {
			res, tab, err := Figure12(cfg(), 1)
			if err != nil {
				t.Fatal(err)
			}
			return run{tab.String(), res}
		}},
		{"PerfHeatmap", func(t *testing.T) run {
			grid, hm, err := PerfHeatmap(cfg(), "CG")
			if err != nil {
				t.Fatal(err)
			}
			return run{hm.String(), grid}
		}},
		{"Figure11", func(t *testing.T) run {
			res, tab, err := Figure11(cfg(), SensTraffic, 1)
			if err != nil {
				t.Fatal(err)
			}
			return run{tab.String(), res}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var seq, par run
			atWorkers(t, 1, func() { seq = tc.fn(t) })
			atWorkers(t, 8, func() { par = tc.fn(t) })
			if seq.rendered != par.rendered {
				t.Errorf("rendered output differs between 1 and 8 workers:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					seq.rendered, par.rendered)
			}
			if !reflect.DeepEqual(seq.result, par.result) {
				t.Errorf("result structs differ between 1 and 8 workers:\nseq: %+v\npar: %+v",
					seq.result, par.result)
			}
		})
	}
}

// TestSharedCacheDeterminism pins the L2 contract at the experiment
// level: the process-wide shared solve cache is an exact memo, so
// toggling it — with a warm table left over from other tests, and at
// several worker counts — must not change a single bit of Figure 12.
func TestSharedCacheDeterminism(t *testing.T) {
	figure12 := func() (Fig12Result, string) {
		res, tab, err := Figure12(cfg(), 1)
		if err != nil {
			t.Fatal(err)
		}
		return res, tab.String()
	}
	prev := machine.SharedSolveCacheEnabled()
	defer machine.SetSharedSolveCache(prev)

	machine.SetSharedSolveCache(false)
	baseRes, baseTab := figure12()
	machine.SetSharedSolveCache(true)
	for _, workers := range []int{1, 4} {
		var res Fig12Result
		var tab string
		atWorkers(t, workers, func() { res, tab = figure12() })
		if tab != baseTab {
			t.Errorf("workers=%d: rendered output differs with the shared cache on:\n--- off ---\n%s\n--- on ---\n%s",
				workers, baseTab, tab)
		}
		if !reflect.DeepEqual(res, baseRes) {
			t.Errorf("workers=%d: results differ with the shared cache on", workers)
		}
	}
}
