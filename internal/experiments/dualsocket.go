package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/texttab"
	"repro/internal/workloads"
)

// DualSocketResult is the outcome of the two-socket extension experiment:
// one CoPart manager per socket, each converging independently on its own
// LLC and bandwidth domain.
type DualSocketResult struct {
	// Unfairness[socket] is the converged per-socket unfairness.
	Unfairness []float64
	// EQUnfairness[socket] is the equal-allocation comparison.
	EQUnfairness []float64
	// Mix[socket] names the workload mix run on each socket.
	Mix []workloads.MixKind
}

// DualSocket consolidates a different workload mix on each socket of a
// two-socket machine and runs one CoPart manager per socket — the
// deployment shape for multi-socket servers (each socket is an
// independent CAT/MBA domain in resctrl, so controllers do not interact).
func DualSocket(cfg machine.Config, seed int64) (DualSocketResult, *texttab.Table, error) {
	cfg.Sockets = 2
	m, err := machine.New(cfg)
	if err != nil {
		return DualSocketResult{}, nil, err
	}
	res := DualSocketResult{
		Mix: []workloads.MixKind{workloads.HLLC, workloads.HBW},
	}
	var perSocket [][]string
	solo := map[string]float64{}
	for socket, kind := range res.Mix {
		models, err := workloads.Mix(cfg, kind, 4)
		if err != nil {
			return DualSocketResult{}, nil, err
		}
		var names []string
		for _, model := range models {
			model.Socket = socket
			model.Name = fmt.Sprintf("s%d/%s", socket, model.Name)
			if err := m.AddApp(model); err != nil {
				return DualSocketResult{}, nil, err
			}
			p, err := m.SoloPerf(model)
			if err != nil {
				return DualSocketResult{}, nil, err
			}
			solo[model.Name] = p.IPS
			names = append(names, model.Name)
		}
		perSocket = append(perSocket, names)
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		return DualSocketResult{}, nil, err
	}

	// One manager per socket over a scoped view of the machine. The
	// managers interleave: each drives its own control periods, and the
	// other socket's applications simply keep running (time is global).
	managers := make([]*core.Manager, len(perSocket))
	for socket, names := range perSocket {
		mgr, err := core.NewManager(
			scopedTarget{m: m, names: names},
			core.DefaultParams(), ref,
			core.Envelope{LoWay: 0, Ways: cfg.LLCWays},
			rand.New(rand.NewSource(seed+int64(socket))),
		)
		if err != nil {
			return DualSocketResult{}, nil, err
		}
		managers[socket] = mgr
		if err := mgr.Profile(); err != nil {
			return DualSocketResult{}, nil, err
		}
	}
	// Round-robin the exploration (in production each manager has its own
	// control thread; virtual time is shared here, which only means each
	// sees the other's periods pass — harmless, as the domains are
	// isolated).
	for iter := 0; iter < 300; iter++ {
		allIdle := true
		for _, mgr := range managers {
			if mgr.Phase() != core.PhaseExplore {
				continue
			}
			allIdle = false
			if _, err := mgr.ExploreStep(); err != nil {
				return DualSocketResult{}, nil, err
			}
		}
		if allIdle {
			break
		}
	}

	// Score each socket at its converged allocation.
	perfs, err := m.Solve()
	if err != nil {
		return DualSocketResult{}, nil, err
	}
	byName := map[string]machine.Perf{}
	for i, name := range m.Apps() {
		byName[name] = perfs[i]
	}
	tab := texttab.New("Dual-socket extension: per-socket CoPart controllers",
		"socket", "mix", "CoPart unfairness", "EQ unfairness", "converged")
	for socket, names := range perSocket {
		slowdowns := make([]float64, len(names))
		for i, n := range names {
			slowdowns[i] = solo[n] / byName[n].IPS
		}
		u, err := fairness.Unfairness(slowdowns)
		if err != nil {
			return DualSocketResult{}, nil, err
		}
		res.Unfairness = append(res.Unfairness, u)
		eqU, err := dualSocketEQ(m, cfg, names, solo)
		if err != nil {
			return DualSocketResult{}, nil, err
		}
		res.EQUnfairness = append(res.EQUnfairness, eqU)
		tab.AddRow(fmt.Sprintf("%d", socket), res.Mix[socket].String(),
			fmt.Sprintf("%.4f", u), fmt.Sprintf("%.4f", eqU),
			fmt.Sprintf("%v", managers[socket].Phase() == core.PhaseIdle))
	}
	return res, tab, nil
}

// dualSocketEQ computes the EQ outcome for one socket's applications with
// the other socket left at its converged allocation.
func dualSocketEQ(m *machine.Machine, cfg machine.Config, names []string, solo map[string]float64) (float64, error) {
	counts, err := machine.EqualSplit(cfg.LLCWays, len(names))
	if err != nil {
		return 0, err
	}
	masks, err := machine.AssignContiguousWays(counts, 0, cfg.LLCWays)
	if err != nil {
		return 0, err
	}
	level := core.EqualMBAShare(len(names))
	var models []machine.AppModel
	var allocs []machine.Alloc
	for i, n := range names {
		model, err := m.Model(n)
		if err != nil {
			return 0, err
		}
		models = append(models, model)
		allocs = append(allocs, machine.Alloc{CBM: masks[i], MBALevel: level})
	}
	perfs, err := m.SolveFor(models, allocs)
	if err != nil {
		return 0, err
	}
	slowdowns := make([]float64, len(names))
	for i, n := range names {
		slowdowns[i] = solo[n] / perfs[i].IPS
	}
	return fairness.Unfairness(slowdowns)
}
