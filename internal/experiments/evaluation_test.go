package experiments

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/policies"
	"repro/internal/workloads"
)

// The evaluation-figure harnesses are integration tests over the whole
// stack; they assert the qualitative findings the paper reports for each
// figure.

func TestFigure12Shapes(t *testing.T) {
	res, tab, err := Figure12(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5 {
		t.Fatalf("table rows %d", tab.NumRows())
	}
	idx := map[string]int{}
	for i, p := range res.Policies {
		idx[p] = i
	}
	geo := func(name string) float64 { return res.GeoMean[idx[name]] }

	// Headline: CoPart substantially fairer than EQ, CAT-only, and
	// MBA-only on geomean (paper: 57.3 %, 28.6 %, 56.4 %).
	if geo("CoPart") > 0.8*geo("EQ") {
		t.Errorf("CoPart %.3f should be well below EQ %.3f", geo("CoPart"), geo("EQ"))
	}
	if geo("CoPart") >= geo("CAT-only") {
		t.Errorf("CoPart %.3f should beat CAT-only %.3f", geo("CoPart"), geo("CAT-only"))
	}
	if geo("CoPart") >= geo("MBA-only") {
		t.Errorf("CoPart %.3f should beat MBA-only %.3f", geo("CoPart"), geo("MBA-only"))
	}
	// CAT-only cannot help the BW-sensitive mixes (it is EQ there).
	mixIdx := map[workloads.MixKind]int{}
	for i, k := range res.Mixes {
		mixIdx[k] = i
	}
	cat := res.Norm[idx["CAT-only"]]
	if cat[mixIdx[workloads.HBW]] < 0.95 {
		t.Errorf("CAT-only on H-BW should be ~EQ, got %.3f", cat[mixIdx[workloads.HBW]])
	}
	// MBA-only cannot help the LLC-sensitive mixes.
	mba := res.Norm[idx["MBA-only"]]
	if mba[mixIdx[workloads.HLLC]] < 0.95 {
		t.Errorf("MBA-only on H-LLC should be ~EQ, got %.3f", mba[mixIdx[workloads.HLLC]])
	}
	// CoPart helps both of those mixes.
	cp := res.Norm[idx["CoPart"]]
	if cp[mixIdx[workloads.HLLC]] > 0.5 {
		t.Errorf("CoPart on H-LLC should improve strongly, got %.3f", cp[mixIdx[workloads.HLLC]])
	}
	if cp[mixIdx[workloads.HBW]] > 0.9 {
		t.Errorf("CoPart on H-BW should improve, got %.3f", cp[mixIdx[workloads.HBW]])
	}
	// The IS mix is reported at parity.
	if cp[mixIdx[workloads.IS]] != 1.0 {
		t.Errorf("IS mix should report parity, got %.3f", cp[mixIdx[workloads.IS]])
	}
	// The ST oracle is a lower bound for every policy's geomean.
	for _, name := range res.Policies {
		if name == "ST" {
			continue
		}
		if geo("ST") > geo(name)+1e-9 {
			t.Errorf("ST oracle %.3f should lower-bound %s %.3f", geo("ST"), name, geo(name))
		}
	}
}

func TestFigure13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute sweep")
	}
	res, tab, err := Figure13(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5 || len(res.Points) != 4 {
		t.Fatalf("unexpected result shape")
	}
	idx := map[string]int{}
	for i, p := range res.Policies {
		idx[p] = i
	}
	// CoPart beats EQ, CAT-only, and MBA-only at every application count.
	for xi, n := range res.Points {
		cp := res.Value[idx["CoPart"]][xi]
		if cp >= 1.0 {
			t.Errorf("apps=%d: CoPart %.3f should beat EQ", n, cp)
		}
		if cp > res.Value[idx["CAT-only"]][xi]+1e-9 {
			t.Errorf("apps=%d: CoPart %.3f vs CAT-only %.3f", n, cp, res.Value[idx["CAT-only"]][xi])
		}
		if cp > res.Value[idx["MBA-only"]][xi]+1e-9 {
			t.Errorf("apps=%d: CoPart %.3f vs MBA-only %.3f", n, cp, res.Value[idx["MBA-only"]][xi])
		}
	}
}

func TestFigure14Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	res, _, err := Figure14(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, p := range res.Policies {
		idx[p] = i
	}
	// Robustness across cache sizes: CoPart below EQ at every size.
	for xi, ways := range res.Points {
		cp := res.Value[idx["CoPart"]][xi]
		if cp >= 1.0 {
			t.Errorf("ways=%d: CoPart %.3f should beat EQ", ways, cp)
		}
	}
}

func TestFigure17Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	res, _, err := Figure17(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, p := range res.Policies {
		idx[p] = i
	}
	// CoPart achieves comparable or better throughput than EQ (paper:
	// "comparable or slightly higher").
	for xi, n := range res.Points {
		cp := res.Value[idx["CoPart"]][xi]
		if cp < 0.95 {
			t.Errorf("apps=%d: CoPart throughput %.3f should be ≥ ~EQ", n, cp)
		}
	}
}

func TestFigure11Sensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter sweep")
	}
	for _, param := range []SensitivityParam{SensPerf, SensMissRatio, SensTraffic} {
		res, tab, err := Figure11(cfg(), param, 1)
		if err != nil {
			t.Fatalf("%v: %v", param, err)
		}
		if tab.NumRows() != len(res.Values) {
			t.Fatalf("%v: table rows", param)
		}
		// The default value's normalized unfairness is exactly 1.
		found := false
		for i, v := range res.Values {
			if v == res.Default {
				found = true
				if res.Norm[i] != 1.0 {
					t.Errorf("%v: default point normalized to %.3f", param, res.Norm[i])
				}
			}
			if res.Norm[i] <= 0 {
				t.Errorf("%v: non-positive normalized unfairness at %v", param, res.Values[i])
			}
		}
		if !found {
			t.Errorf("%v: default value missing from sweep", param)
		}
	}
}

func TestSensitivityParamValidation(t *testing.T) {
	if _, _, err := Figure11(cfg(), SensitivityParam(9), 1); err == nil {
		t.Error("unknown parameter should error")
	}
	if SensitivityParam(9).String() == "" {
		t.Error("unknown parameter should render")
	}
	for _, p := range []SensitivityParam{SensPerf, SensMissRatio, SensTraffic} {
		if p.String() == "" {
			t.Errorf("empty name for %d", int(p))
		}
	}
}

func TestFigure16Overhead(t *testing.T) {
	res, tab, err := Figure16(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Fatalf("table rows %d", tab.NumRows())
	}
	for i, n := range res.Apps {
		// "Small overhead": well under a millisecond per decision and a
		// vanishing share of the control period (paper: 10–15 µs,
		// ~1e-4 %).
		if res.Mean[i] <= 0 || res.Mean[i] > time.Millisecond {
			t.Errorf("apps=%d: exploration time %v implausible", n, res.Mean[i])
		}
		if res.Share[i] > 1e-3 {
			t.Errorf("apps=%d: share %.2e of the period too large", n, res.Share[i])
		}
	}
}

func TestCaseStudyTimeline(t *testing.T) {
	res, err := CaseStudy(cfg(), DefaultLoadTrace(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 300 {
		t.Fatalf("timeline too short: %d samples", len(res.Samples))
	}
	// The envelope must shrink during the high-load phase.
	var lowWays, highWays int
	for _, s := range res.Samples {
		if s.LoadRPS == 75_000 && lowWays == 0 {
			lowWays = s.LCWays
		}
		if s.LoadRPS == 150_000 && highWays == 0 {
			highWays = s.LCWays
		}
	}
	if highWays <= lowWays {
		t.Errorf("high load should reserve more LC ways: %d vs %d", highWays, lowWays)
	}
	// SLO violations should be rare (transients only).
	if res.SLOViolations > len(res.Samples)/10 {
		t.Errorf("%d SLO violations over %d samples", res.SLOViolations, len(res.Samples))
	}
	// CoPart's steady-state fairness should beat the EQ line at the end
	// of each load phase (after re-adaptation transients).
	last := res.Samples[len(res.Samples)-1]
	if last.Unfairness > last.EQUnfairness+1e-9 {
		t.Errorf("final unfairness %.4f should beat EQ %.4f", last.Unfairness, last.EQUnfairness)
	}
	// Rendering works and is downsampled.
	tab := RenderCaseStudy(res, 20)
	if tab.NumRows() == 0 || tab.NumRows() > len(res.Samples) {
		t.Errorf("render rows %d", tab.NumRows())
	}
	if RenderCaseStudy(res, 0).NumRows() != len(res.Samples) {
		t.Error("every=0 should clamp to 1")
	}
}

func TestAblations(t *testing.T) {
	res, tab, err := Ablations(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 || tab.NumRows() != 6 {
		t.Fatalf("expected 6 variants, got %d", len(res.Rows))
	}
	if res.Rows[0].Unfairness != 1.0 {
		t.Errorf("baseline row should normalize to 1, got %.3f", res.Rows[0].Unfairness)
	}
	// No single-feature removal should *improve* fairness materially,
	// and stripping everything must cost the most.
	worst := 0.0
	for _, r := range res.Rows[1:] {
		if r.Unfairness < 0.9 {
			t.Errorf("removing %q should not improve fairness: %.3f", r.Name, r.Unfairness)
		}
		if r.Unfairness > worst {
			worst = r.Unfairness
		}
	}
	proseOnly := res.Rows[len(res.Rows)-1]
	if proseOnly.Unfairness < worst-1e-9 {
		t.Errorf("prose-only variant (%.3f) should be at least as bad as any single removal (%.3f)",
			proseOnly.Unfairness, worst)
	}
	if proseOnly.Unfairness < 1.05 {
		t.Errorf("the reconstruction mechanisms should matter: prose-only at %.3f", proseOnly.Unfairness)
	}
}

func TestFeatureVariantsStayFunctional(t *testing.T) {
	// Every ablated controller must still run to completion (robustness,
	// not just score).
	f := core.DefaultFeatures()
	f.ParkOnBest = false
	f.ProfilePinning = false
	f.HurtMemory = false
	f.CumulativeGuard = false
	models, err := workloads.Mix(cfg(), workloads.HBoth, 4)
	if err != nil {
		t.Fatal(err)
	}
	pol := &policies.Dynamic{Label: "CoPart", Features: &f, Seed: 2}
	if _, err := pol.Run(cfg(), models); err != nil {
		t.Fatal(err)
	}
}

func TestConvergence(t *testing.T) {
	res, tab, err := Convergence(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 7 || len(res.Cells) != 7 {
		t.Fatalf("expected 7 mixes, got %d", len(res.Cells))
	}
	for mi, row := range res.Cells {
		for ci, c := range row {
			if !c.Converged {
				t.Errorf("%v apps=%d did not converge", res.Mixes[mi], res.Counts[ci])
			}
			// Profiling costs 3 periods per application.
			wantProfile := 3 * res.Counts[ci]
			if c.ProfilePeriods != wantProfile {
				t.Errorf("%v apps=%d: %d profile periods, want %d",
					res.Mixes[mi], res.Counts[ci], c.ProfilePeriods, wantProfile)
			}
			// Adaptation should complete within tens of seconds, as the
			// Figure 15 transients show.
			if c.Total() > 120 {
				t.Errorf("%v apps=%d: %d periods to adapt", res.Mixes[mi], res.Counts[ci], c.Total())
			}
			if c.ExplorePeriods < 1 {
				t.Errorf("%v apps=%d: no exploration at all", res.Mixes[mi], res.Counts[ci])
			}
		}
	}
}

func TestFigure12Extended(t *testing.T) {
	res, tab, err := Figure12Extended(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 7 || tab.NumRows() != 7 {
		t.Fatalf("extended set should have 7 policies, got %d", len(res.Policies))
	}
	names := map[string]bool{}
	for _, p := range res.Policies {
		names[p] = true
	}
	if !names["None"] || !names["UCP"] {
		t.Errorf("extension rows missing: %v", res.Policies)
	}
}

func TestDualSocket(t *testing.T) {
	res, tab, err := DualSocket(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unfairness) != 2 || tab.NumRows() != 2 {
		t.Fatalf("expected 2 sockets, got %d", len(res.Unfairness))
	}
	for socket, u := range res.Unfairness {
		if u >= res.EQUnfairness[socket] {
			t.Errorf("socket %d: CoPart %.4f should beat EQ %.4f",
				socket, u, res.EQUnfairness[socket])
		}
	}
}

// TestCoPartSeedStability: the controller's randomized pieces (ANY-pool
// tie breaks, neighbor perturbations) must not make the headline result
// fragile — CoPart beats EQ on the sensitive mixes for every seed.
func TestCoPartSeedStability(t *testing.T) {
	kinds := []workloads.MixKind{workloads.HLLC, workloads.HBW, workloads.HBoth}
	for seed := int64(1); seed <= 5; seed++ {
		for _, kind := range kinds {
			models, err := workloads.Mix(cfg(), kind, 4)
			if err != nil {
				t.Fatal(err)
			}
			eq, err := policies.EQ{}.Run(cfg(), models)
			if err != nil {
				t.Fatal(err)
			}
			cp, err := policies.CoPart(seed).Run(cfg(), models)
			if err != nil {
				t.Fatal(err)
			}
			if cp.Unfairness >= eq.Unfairness {
				t.Errorf("seed %d %v: CoPart %.4f vs EQ %.4f", seed, kind,
					cp.Unfairness, eq.Unfairness)
			}
		}
	}
}

// TestHeadlineRegression pins the paper's headline comparison inside
// generous bands so refactors cannot silently regress it. The paper
// measures 57.3 % / 28.6 % / 56.4 % improvement over EQ / CAT-only /
// MBA-only; this reproduction currently lands at 78 % / 29 % / 67 %.
func TestHeadlineRegression(t *testing.T) {
	res, _, err := Figure12(cfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, p := range res.Policies {
		idx[p] = i
	}
	improvement := func(base string) float64 {
		b := res.GeoMean[idx[base]]
		return (b - res.GeoMean[idx["CoPart"]]) / b * 100
	}
	checks := []struct {
		base   string
		lo, hi float64
	}{
		{"EQ", 50, 95},
		{"CAT-only", 10, 60},
		{"MBA-only", 40, 90},
	}
	for _, c := range checks {
		got := improvement(c.base)
		if got < c.lo || got > c.hi {
			t.Errorf("CoPart improvement over %s = %.1f%%, outside the pinned band [%g, %g]",
				c.base, got, c.lo, c.hi)
		}
	}
}

func TestCaseStudyValidation(t *testing.T) {
	if _, err := CaseStudy(cfg(), nil, 1); err == nil {
		t.Error("empty trace should error")
	}
}
