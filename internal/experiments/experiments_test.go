package experiments

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func cfg() machine.Config { return machine.DefaultConfig() }

func TestTable1(t *testing.T) {
	tab := Table1(cfg())
	out := tab.String()
	for _, want := range []string{"16 cores", "22MB", "11 ways", "28GB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	rows, tab, err := Table2(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11", len(rows))
	}
	if tab.NumRows() != 11 {
		t.Fatalf("table has %d rows", tab.NumRows())
	}
	for _, r := range rows {
		if r.AccRate <= 0 || r.MissRate < 0 {
			t.Errorf("%s: non-positive rates %v/%v", r.Name, r.AccRate, r.MissRate)
		}
		if r.MissRate > r.AccRate {
			t.Errorf("%s: more misses than accesses", r.Name)
		}
	}
}

func TestFigureBenches(t *testing.T) {
	for fig := 1; fig <= 3; fig++ {
		names, err := FigureBenches(fig)
		if err != nil || len(names) != 3 {
			t.Errorf("FigureBenches(%d)=%v,%v", fig, names, err)
		}
	}
	if _, err := FigureBenches(9); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestPerfHeatmapShapes(t *testing.T) {
	// Figure 1 shape for WN: strong ways gradient, flat MBA gradient at
	// full ways. Figure 2 shape for CG: the reverse.
	gridWN, hm, err := PerfHeatmap(cfg(), "WN")
	if err != nil {
		t.Fatal(err)
	}
	if hm.String() == "" {
		t.Error("empty heatmap rendering")
	}
	nW := len(gridWN.Ways)
	nL := len(gridWN.Levels)
	if gridWN.Norm[0][nL-1] > 0.85*gridWN.Norm[nW-1][nL-1] {
		t.Errorf("WN should lose >15%% from 11→1 ways: %v vs %v",
			gridWN.Norm[0][nL-1], gridWN.Norm[nW-1][nL-1])
	}
	if gridWN.Norm[nW-1][0] < 0.99*gridWN.Norm[nW-1][nL-1] {
		t.Errorf("WN at full ways should be MBA-insensitive: %v vs %v",
			gridWN.Norm[nW-1][0], gridWN.Norm[nW-1][nL-1])
	}

	gridCG, _, err := PerfHeatmap(cfg(), "CG")
	if err != nil {
		t.Fatal(err)
	}
	if gridCG.Norm[nW-1][0] > 0.85*gridCG.Norm[nW-1][nL-1] {
		t.Errorf("CG should lose >15%% from MBA 100→10: %v vs %v",
			gridCG.Norm[nW-1][0], gridCG.Norm[nW-1][nL-1])
	}
	if gridCG.Norm[0][nL-1] < 0.85*gridCG.Norm[nW-1][nL-1] {
		t.Errorf("CG should be nearly ways-insensitive: %v vs %v",
			gridCG.Norm[0][nL-1], gridCG.Norm[nW-1][nL-1])
	}
	// All tiles normalized into (0, 1].
	for _, grid := range []PerfGrid{gridWN, gridCG} {
		for i := range grid.Norm {
			for j := range grid.Norm[i] {
				v := grid.Norm[i][j]
				if v <= 0 || v > 1+1e-9 {
					t.Fatalf("tile (%d,%d)=%v out of range", i, j, v)
				}
			}
		}
	}
}

func TestPerfHeatmapUnknownBench(t *testing.T) {
	if _, _, err := PerfHeatmap(cfg(), "nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestFairnessHeatmapFig4(t *testing.T) {
	grid, hm, err := FairnessHeatmap(cfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if hm.String() == "" {
		t.Error("empty rendering")
	}
	if grid.NoneUnfair <= 0 {
		t.Fatalf("unpartitioned unfairness %v", grid.NoneUnfair)
	}
	// The paper's headline observation: for the LLC-sensitive mix, a
	// partitioning that matches the working sets — (5,3,2,1) — beats a
	// severely skewed one like (1,2,3,5) at full MBA.
	var good, bad float64 = -1, -1
	for r, ways := range grid.LLCParts {
		label := tupleLabel(ways)
		if label == "(5,3,2,1)" {
			good = grid.Norm[r][0]
		}
		if label == "(1,2,3,5)" {
			bad = grid.Norm[r][0]
		}
	}
	if good < 0 || bad < 0 {
		t.Fatal("expected partitions missing from the grid")
	}
	if good >= bad {
		t.Errorf("(5,3,2,1) should be fairer than (1,2,3,5): %v vs %v", good, bad)
	}
}

func TestFairnessHeatmapFig5BWDominated(t *testing.T) {
	grid, _, err := FairnessHeatmap(cfg(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// For the BW-sensitive mix, at the equal LLC split, throttling the
	// two most BW-hungry apps to 10 % — column (10,10,10,10) vs
	// (100,100,100,100) — must hurt fairness.
	row := 0 // (3,3,3,2) equal split
	colFree, colStarved := -1, -1
	for c, mba := range grid.MBAParts {
		switch tupleLabel(mba) {
		case "(100,100,100,100)":
			colFree = c
		case "(10,10,10,10)":
			colStarved = c
		}
	}
	if colFree < 0 || colStarved < 0 {
		t.Fatal("expected MBA columns missing")
	}
	if grid.Norm[row][colStarved] <= grid.Norm[row][colFree] {
		t.Errorf("starving BW-sensitive apps should raise unfairness: %v vs %v",
			grid.Norm[row][colStarved], grid.Norm[row][colFree])
	}
}

func TestFairnessHeatmapUnknownFig(t *testing.T) {
	if _, _, err := FairnessHeatmap(cfg(), 12); err == nil {
		t.Error("unknown figure should error")
	}
}
