package experiments

import (
	"fmt"

	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/policies"
	"repro/internal/texttab"
	"repro/internal/workloads"
)

// PolicySet returns the five policies of Figure 12, in the paper's order.
func PolicySet(seed int64) []policies.Policy {
	return []policies.Policy{
		policies.EQ{},
		policies.ST{},
		policies.CATOnly(seed),
		policies.MBAOnly(seed),
		policies.CoPart(seed),
	}
}

// Fig12Result holds Figure 12's matrix: normalized unfairness per policy
// per mix, plus the geometric means.
type Fig12Result struct {
	Mixes    []workloads.MixKind
	Policies []string
	// Norm[p][m] is policy p's unfairness on mix m divided by EQ's.
	Norm [][]float64
	// GeoMean[p] aggregates policy p across the mixes.
	GeoMean []float64
	// Raw[p][m] is the unnormalized unfairness.
	Raw [][]float64
}

// ExtendedPolicySet adds the baselines beyond the paper's comparison:
// the unpartitioned run and utility-based cache partitioning (UCP,
// fairness-oblivious, the paper's reference [34]).
func ExtendedPolicySet(seed int64) []policies.Policy {
	return append(PolicySet(seed), policies.None{}, policies.UCP{})
}

// Figure12 runs every policy on every 4-application workload mix and
// normalizes to EQ, reproducing Figure 12.
func Figure12(cfg machine.Config, seed int64) (Fig12Result, *texttab.Table, error) {
	return fairnessMatrixWith(cfg, PolicySet(seed), 4)
}

// Figure12Extended is Figure 12 with the None and UCP extension rows.
func Figure12Extended(cfg machine.Config, seed int64) (Fig12Result, *texttab.Table, error) {
	return fairnessMatrixWith(cfg, ExtendedPolicySet(seed), 4)
}

// fairnessMatrix is the shared engine of Figures 12–14: policies × mixes
// at a fixed application count on a given machine configuration.
func fairnessMatrix(cfg machine.Config, seed int64, apps int) (Fig12Result, *texttab.Table, error) {
	return fairnessMatrixWith(cfg, PolicySet(seed), apps)
}

// fairnessMatrixWith runs an explicit policy list; the first policy must
// be the normalization baseline (EQ).
func fairnessMatrixWith(cfg machine.Config, pols []policies.Policy, apps int) (Fig12Result, *texttab.Table, error) {
	res := Fig12Result{Mixes: workloads.MixKinds()}
	for _, p := range pols {
		res.Policies = append(res.Policies, p.Name())
	}
	res.Norm = make([][]float64, len(pols))
	res.Raw = make([][]float64, len(pols))
	for p := range pols {
		res.Norm[p] = make([]float64, len(res.Mixes))
		res.Raw[p] = make([]float64, len(res.Mixes))
	}
	// Build each mix once, then fan the independent (mix × policy) cells
	// across the worker pool. Every Policy.Run builds its own machine
	// and seeds its own RNG from the policy's fixed seed, so the matrix
	// is bit-identical at any worker count.
	mixModels := make([][]machine.AppModel, len(res.Mixes))
	for mi, kind := range res.Mixes {
		models, err := workloads.Mix(cfg, kind, apps)
		if err != nil {
			return Fig12Result{}, nil, err
		}
		mixModels[mi] = models
	}
	err := parallel.ForEach(len(res.Mixes)*len(pols), func(k int) error {
		mi, pi := k/len(pols), k%len(pols)
		out, err := pols[pi].Run(cfg, mixModels[mi])
		if err != nil {
			return fmt.Errorf("experiments: %s on %v: %w", pols[pi].Name(), res.Mixes[mi], err)
		}
		res.Raw[pi][mi] = out.Unfairness
		return nil
	})
	if err != nil {
		return Fig12Result{}, nil, err
	}
	for mi := range res.Mixes {
		eqU := res.Raw[0][mi]
		for pi := range pols {
			// Normalization guard: on mixes where both policies are
			// essentially perfectly fair (the IS mix sits near zero for
			// everyone), the ratio of two near-zero numbers is noise;
			// report parity instead, as the paper's bars do.
			const fairFloor = 0.01
			if eqU < fairFloor && res.Raw[pi][mi] < fairFloor {
				res.Norm[pi][mi] = 1
			} else if eqU > 1e-9 {
				res.Norm[pi][mi] = res.Raw[pi][mi] / eqU
			} else {
				res.Norm[pi][mi] = 1
			}
		}
	}
	res.GeoMean = make([]float64, len(pols))
	for pi := range pols {
		// The geometric mean needs positive inputs; clamp (near-)zero
		// outcomes — the ST oracle can reach exactly-zero unfairness on
		// LLC-dominated mixes in the analytic model — to 0.01.
		vals := make([]float64, len(res.Mixes))
		for mi := range res.Mixes {
			vals[mi] = res.Norm[pi][mi]
			if vals[mi] < 0.01 {
				vals[mi] = 0.01
			}
		}
		g, err := fairness.GeoMean(vals)
		if err != nil {
			return Fig12Result{}, nil, err
		}
		res.GeoMean[pi] = g
	}

	headers := []string{"Policy"}
	for _, k := range res.Mixes {
		headers = append(headers, k.String())
	}
	headers = append(headers, "GeoMean")
	tab := texttab.New(
		fmt.Sprintf("Figure 12. Unfairness normalized to EQ (%d apps, lower is better)", apps),
		headers...)
	for pi, name := range res.Policies {
		row := []string{name}
		for mi := range res.Mixes {
			row = append(row, fmt.Sprintf("%.3f", res.Norm[pi][mi]))
		}
		row = append(row, fmt.Sprintf("%.3f", res.GeoMean[pi]))
		tab.AddRow(row...)
	}
	return res, tab, nil
}

// SweepResult holds Figures 13, 14, and 17: one aggregated value per
// policy per sweep point.
type SweepResult struct {
	Label    string
	Points   []int // application counts (Fig 13/17) or total ways (Fig 14)
	Policies []string
	// Value[p][x] is the geomean-normalized metric at sweep point x.
	Value [][]float64
}

// Figure13 sweeps the application count from 3 to 6 and reports each
// policy's geomean unfairness normalized to EQ.
func Figure13(cfg machine.Config, seed int64) (SweepResult, *texttab.Table, error) {
	res := SweepResult{Label: "unfairness", Points: []int{3, 4, 5, 6}}
	for _, p := range PolicySet(seed) {
		res.Policies = append(res.Policies, p.Name())
	}
	res.Value = make([][]float64, len(res.Policies))
	for p := range res.Value {
		res.Value[p] = make([]float64, len(res.Points))
	}
	// Sweep points are independent; fan them out (the per-point matrix
	// fans out further — the pool bounds total concurrency globally).
	err := parallel.ForEach(len(res.Points), func(xi int) error {
		matrix, _, err := fairnessMatrix(cfg, seed, res.Points[xi])
		if err != nil {
			return err
		}
		for pi := range res.Policies {
			res.Value[pi][xi] = matrix.GeoMean[pi]
		}
		return nil
	})
	if err != nil {
		return SweepResult{}, nil, err
	}
	tab := sweepTable("Figure 13. Unfairness vs application count (normalized to EQ)",
		"apps", res)
	return res, tab, nil
}

// Figure14 sweeps the total LLC capacity from 7 to 11 ways at 4
// applications and reports geomean unfairness normalized to EQ. Each
// sweep point is a machine with a smaller LLC; the benchmark models are
// recalibrated against that machine, as the paper re-runs on the
// restricted cache.
func Figure14(cfg machine.Config, seed int64) (SweepResult, *texttab.Table, error) {
	res := SweepResult{Label: "unfairness", Points: []int{7, 8, 9, 10, 11}}
	for _, p := range PolicySet(seed) {
		res.Policies = append(res.Policies, p.Name())
	}
	res.Value = make([][]float64, len(res.Policies))
	for p := range res.Value {
		res.Value[p] = make([]float64, len(res.Points))
	}
	err := parallel.ForEach(len(res.Points), func(xi int) error {
		small := cfg
		small.LLCWays = res.Points[xi]
		matrix, _, err := fairnessMatrix(small, seed, 4)
		if err != nil {
			return err
		}
		for pi := range res.Policies {
			res.Value[pi][xi] = matrix.GeoMean[pi]
		}
		return nil
	})
	if err != nil {
		return SweepResult{}, nil, err
	}
	tab := sweepTable("Figure 14. Unfairness vs total LLC ways (normalized to EQ)",
		"ways", res)
	return res, tab, nil
}

// Figure17 sweeps the application count and reports each policy's geomean
// throughput (geometric-mean IPS across applications and mixes),
// normalized to EQ.
func Figure17(cfg machine.Config, seed int64) (SweepResult, *texttab.Table, error) {
	res := SweepResult{Label: "throughput", Points: []int{3, 4, 5, 6}}
	pols := PolicySet(seed)
	for _, p := range pols {
		res.Policies = append(res.Policies, p.Name())
	}
	res.Value = make([][]float64, len(res.Policies))
	for p := range res.Value {
		res.Value[p] = make([]float64, len(res.Points))
	}
	err := parallel.ForEach(len(res.Points), func(xi int) error {
		n := res.Points[xi]
		kinds := workloads.MixKinds()
		// Build each mix once per sweep point and share it across the
		// policies (the mix does not depend on the policy).
		mixModels := make([][]machine.AppModel, len(kinds))
		for ki, kind := range kinds {
			models, err := workloads.Mix(cfg, kind, n)
			if err != nil {
				return err
			}
			mixModels[ki] = models
		}
		perPolicy := make([][]float64, len(pols))
		for pi := range perPolicy {
			perPolicy[pi] = make([]float64, len(kinds))
		}
		err := parallel.ForEach(len(pols)*len(kinds), func(k int) error {
			pi, ki := k/len(kinds), k%len(kinds)
			out, err := pols[pi].Run(cfg, mixModels[ki])
			if err != nil {
				return err
			}
			perPolicy[pi][ki] = out.Throughput
			return nil
		})
		if err != nil {
			return err
		}
		eqTP := perPolicy[0]
		for pi := range pols {
			normed := make([]float64, len(perPolicy[pi]))
			for k := range normed {
				normed[k] = perPolicy[pi][k] / eqTP[k]
			}
			g, err := fairness.GeoMean(normed)
			if err != nil {
				return err
			}
			res.Value[pi][xi] = g
		}
		return nil
	})
	if err != nil {
		return SweepResult{}, nil, err
	}
	tab := sweepTable("Figure 17. Throughput vs application count (normalized to EQ, higher is better)",
		"apps", res)
	return res, tab, nil
}

func sweepTable(title, xName string, res SweepResult) *texttab.Table {
	headers := []string{"Policy"}
	for _, x := range res.Points {
		headers = append(headers, fmt.Sprintf("%s=%d", xName, x))
	}
	tab := texttab.New(title, headers...)
	for pi, name := range res.Policies {
		row := []string{name}
		for xi := range res.Points {
			row = append(row, fmt.Sprintf("%.3f", res.Value[pi][xi]))
		}
		tab.AddRow(row...)
	}
	return tab
}
