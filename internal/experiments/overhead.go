package experiments

import (
	"fmt"
	"time"

	"repro/internal/machine"
	"repro/internal/policies"
	"repro/internal/texttab"
	"repro/internal/workloads"
)

// OverheadResult is Figure 16: the mean system-state-space exploration
// time per application count, and its share of a control period.
type OverheadResult struct {
	Apps []int
	// Mean[i] is the mean getNextSystemState wall-clock duration.
	Mean []time.Duration
	// Share[i] is Mean[i] as a fraction of the 1 s control period.
	Share []float64
}

// Figure16 measures the wall-clock cost of the exploration step across
// application counts 3–6, averaged over the workload mixes.
func Figure16(cfg machine.Config, seed int64) (OverheadResult, *texttab.Table, error) {
	res := OverheadResult{Apps: []int{3, 4, 5, 6}}
	period := time.Second
	for _, n := range res.Apps {
		var total time.Duration
		var count int
		for _, kind := range workloads.MixKinds() {
			models, err := workloads.Mix(cfg, kind, n)
			if err != nil {
				return OverheadResult{}, nil, err
			}
			d, err := policies.CoPart(seed).ExploreTime(cfg, models)
			if err != nil {
				return OverheadResult{}, nil, err
			}
			total += d
			count++
		}
		mean := total / time.Duration(count)
		res.Mean = append(res.Mean, mean)
		res.Share = append(res.Share, float64(mean)/float64(period))
	}
	tab := texttab.New("Figure 16. System state space exploration time",
		"apps", "mean time (µs)", "share of 1s period")
	for i, n := range res.Apps {
		tab.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", float64(res.Mean[i].Nanoseconds())/1e3),
			fmt.Sprintf("%.2e", res.Share[i]))
	}
	return res, tab, nil
}
