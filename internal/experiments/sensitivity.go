package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/policies"
	"repro/internal/texttab"
	"repro/internal/workloads"
)

// SensitivityParam selects which design parameter Figure 11 sweeps.
type SensitivityParam int

const (
	// SensPerf sweeps δ_P, the performance threshold (Figure 11a).
	SensPerf SensitivityParam = iota
	// SensMissRatio sweeps Β, the LLC miss-ratio threshold (Figure 11b).
	SensMissRatio
	// SensTraffic sweeps Γ, the memory-traffic-ratio threshold
	// (Figure 11c).
	SensTraffic
)

// String names the parameter.
func (s SensitivityParam) String() string {
	switch s {
	case SensPerf:
		return "performance threshold (δ_P)"
	case SensMissRatio:
		return "LLC miss ratio threshold (Β)"
	case SensTraffic:
		return "memory traffic ratio threshold (Γ)"
	default:
		return fmt.Sprintf("SensitivityParam(%d)", int(s))
	}
}

// SensitivityResult is one Figure 11 panel: unfairness at each parameter
// value, normalized to the paper's default value.
type SensitivityResult struct {
	Param   SensitivityParam
	Values  []float64
	Default float64
	// Norm[i] is the geomean unfairness at Values[i] over the mixes,
	// divided by the geomean at Default.
	Norm []float64
}

// sweepValues returns the sweep points and the paper default for a
// parameter.
func sweepValues(p SensitivityParam) ([]float64, float64, error) {
	switch p {
	case SensPerf:
		return []float64{0.01, 0.03, 0.05, 0.07, 0.09, 0.13}, 0.05, nil
	case SensMissRatio:
		return []float64{0.01, 0.02, 0.03, 0.05, 0.07}, 0.03, nil
	case SensTraffic:
		return []float64{0.10, 0.20, 0.30, 0.40, 0.50}, 0.30, nil
	default:
		return nil, 0, fmt.Errorf("experiments: unknown sensitivity parameter %d", int(p))
	}
}

// applyParam returns the paper-default parameters with one value replaced.
func applyParam(p SensitivityParam, v float64) (core.Params, error) {
	params := core.DefaultParams()
	switch p {
	case SensPerf:
		params.DeltaPerf = v
	case SensMissRatio:
		params.BetaHigh = v
		if params.BetaLow > v {
			params.BetaLow = v
		}
	case SensTraffic:
		params.GammaHigh = v
		if params.GammaLow > v {
			params.GammaLow = v
		}
	default:
		return core.Params{}, fmt.Errorf("experiments: unknown sensitivity parameter %d", int(p))
	}
	return params, params.Validate()
}

// Figure11 sweeps one design parameter across its range and reports
// CoPart's geomean unfairness over the sensitive 4-application mixes,
// normalized to the default setting (§5.5.3).
func Figure11(cfg machine.Config, param SensitivityParam, seed int64) (SensitivityResult, *texttab.Table, error) {
	values, def, err := sweepValues(param)
	if err != nil {
		return SensitivityResult{}, nil, err
	}
	// The threshold trade-off only exists under measurement noise (the
	// §5.5.3 discussion is about reacting to noise vs. missing signal);
	// the sweep therefore runs with realistic PMC jitter unless the
	// caller configured its own.
	if cfg.MeasurementNoise == 0 {
		cfg.MeasurementNoise = 0.02
	}
	// The sensitive mixes are the ones the thresholds act on; the IS mix
	// only adds noise at zero unfairness.
	kinds := []workloads.MixKind{
		workloads.HLLC, workloads.HBW, workloads.HBoth,
		workloads.MLLC, workloads.MBW, workloads.MBoth,
	}
	// Sweep points (including the normalization default, appended as a
	// hidden point when absent from the list) crossed with the mixes are
	// independent controller runs; fan every (value, mix) cell out. Each
	// cell builds its own machine and RNG inside Dynamic.Run, seeded
	// only by the policy seed, so the panel is bit-identical at any
	// worker count.
	points := values
	defIdx := -1
	for i, v := range values {
		if v == def {
			defIdx = i
		}
	}
	if defIdx < 0 {
		points = append(append([]float64(nil), values...), def)
		defIdx = len(points) - 1
	}
	cells := make([][]float64, len(points))
	for vi := range cells {
		cells[vi] = make([]float64, len(kinds))
	}
	err = parallel.ForEach(len(points)*len(kinds), func(k int) error {
		vi, ki := k/len(kinds), k%len(kinds)
		params, err := applyParam(param, points[vi])
		if err != nil {
			return err
		}
		models, err := workloads.Mix(cfg, kinds[ki], 4)
		if err != nil {
			return err
		}
		pol := &policies.Dynamic{Label: "CoPart", Params: params, Seed: seed}
		out, err := pol.Run(cfg, models)
		if err != nil {
			return err
		}
		u := out.Unfairness
		if u <= 0 {
			u = 1e-4
		}
		cells[vi][ki] = u
		return nil
	})
	if err != nil {
		return SensitivityResult{}, nil, err
	}
	geo := make([]float64, len(points))
	for vi := range points {
		g, err := fairness.GeoMean(cells[vi])
		if err != nil {
			return SensitivityResult{}, nil, err
		}
		geo[vi] = g
	}
	base := geo[defIdx]
	res := SensitivityResult{Param: param, Values: values, Default: def}
	tab := texttab.New(
		fmt.Sprintf("Figure 11. Sensitivity to the %s (normalized to default %.2f)", param, def),
		"value", "normalized unfairness")
	for vi, v := range values {
		u := geo[vi]
		res.Norm = append(res.Norm, u/base)
		tab.AddRow(fmt.Sprintf("%.2f", v), fmt.Sprintf("%.3f", u/base))
	}
	return res, tab, nil
}
