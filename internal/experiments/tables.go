// Package experiments contains one harness per table and figure of the
// paper's evaluation, each returning both raw series (for tests and
// benches) and rendered text output (for the cmd tools). DESIGN.md §4
// maps every experiment to its harness.
package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/texttab"
	"repro/internal/workloads"
)

// Table1 renders the system configuration (Table 1 of the paper) as
// implemented by the simulated machine.
func Table1(cfg machine.Config) *texttab.Table {
	t := texttab.New("Table 1. System configuration (simulated)", "Component", "Description")
	t.AddRow("Processor", fmt.Sprintf("simulated x86-64 CPU @ %.1fGHz, %d cores",
		cfg.FreqHz/1e9, cfg.Cores))
	t.AddRow("L3 cache", fmt.Sprintf("Shared, %dMB, %d ways (CAT way-partitioned)",
		int(cfg.WayBytes)*cfg.LLCWays>>20, cfg.LLCWays))
	t.AddRow("Memory", fmt.Sprintf("%.0fGB/s DRAM budget, MBA 10-100%% in steps of 10",
		cfg.BW.TotalBandwidth/1e9))
	t.AddRow("Interface", "simulated resctrl tree + simulated PMCs")
	return t
}

// Table2Row is one benchmark's measured characteristics.
type Table2Row struct {
	Name      string
	Category  workloads.Category
	AccRate   float64 // measured LLC accesses/s (solo, full resources)
	MissRate  float64 // measured LLC misses/s
	PaperAcc  float64 // Table 2 reference
	PaperMiss float64
}

// Table2 regenerates Table 2: each benchmark's solo full-resource LLC
// access and miss rates next to the paper's values.
func Table2(cfg machine.Config) ([]Table2Row, *texttab.Table, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	specs, err := workloads.Catalog(cfg)
	if err != nil {
		return nil, nil, err
	}
	rows := make([]Table2Row, 0, len(specs))
	tab := texttab.New("Table 2. Evaluated benchmarks and their characteristics",
		"Benchmark", "Category", "LLC acc/s", "paper", "LLC miss/s", "paper")
	for _, s := range specs {
		perf, err := m.SoloPerf(s.Model)
		if err != nil {
			return nil, nil, err
		}
		row := Table2Row{
			Name:      s.Model.Name,
			Category:  s.Category,
			AccRate:   perf.AccessRate,
			MissRate:  perf.MissRate,
			PaperAcc:  s.Table2AccRate,
			PaperMiss: s.Table2MissRate,
		}
		rows = append(rows, row)
		tab.AddRow(row.Name, row.Category.String(),
			fmt.Sprintf("%.2e", row.AccRate), fmt.Sprintf("%.2e", row.PaperAcc),
			fmt.Sprintf("%.2e", row.MissRate), fmt.Sprintf("%.2e", row.PaperMiss))
	}
	return rows, tab, nil
}
