package fairness_test

import (
	"fmt"

	"repro/internal/fairness"
)

func ExampleSlowdown() {
	// An application at 6.2 GIPS consolidated vs 8.4 GIPS alone.
	s, _ := fairness.Slowdown(8.4e9, 6.2e9)
	fmt.Printf("%.2f\n", s)
	// Output: 1.35
}

func ExampleUnfairness() {
	// Equal slowdowns are perfectly fair; skewed ones are not.
	fair, _ := fairness.Unfairness([]float64{1.3, 1.3, 1.3})
	skewed, _ := fairness.Unfairness([]float64{1.0, 1.0, 2.0})
	fmt.Printf("%.2f %.2f\n", fair, skewed)
	// Output: 0.00 0.35
}

func ExampleImprovement() {
	// The paper's headline: 57.3% higher fairness than EQ.
	imp, _ := fairness.Improvement(1.0, 0.427)
	fmt.Printf("%.1f%%\n", imp)
	// Output: 57.3%
}
