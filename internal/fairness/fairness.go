// Package fairness implements the performance and fairness metrics used
// throughout the CoPart reproduction.
//
// The definitions follow §2.3 of the paper:
//
//   - The slowdown of application i under resource-allocation state s_i is
//     Slowdown_i = IPS_{i,full} / IPS_{i,s_i}   (Equation 1),
//     i.e. how many times slower the application runs compared to having
//     the full machine resources. A slowdown of 1.0 means no degradation;
//     larger is worse.
//
//   - The unfairness of a set of consolidated applications is the
//     coefficient of variation of their slowdowns,
//     Unfairness = σ / μ                        (Equation 2),
//     where μ is the mean slowdown and σ the (population) standard
//     deviation. Lower is better; 0 means perfectly equal slowdowns.
//
// The package also provides the geometric-mean helpers used by the
// evaluation section (Figures 12–14 and 17 aggregate per-mix results with
// geometric means).
package fairness

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoSamples is returned by aggregate functions invoked on empty input.
var ErrNoSamples = errors.New("fairness: no samples")

// Slowdown computes Equation 1 of the paper: ipsFull / ips.
//
// It returns an error when ips is not strictly positive or ipsFull is
// negative, which would make the metric meaningless. An application that
// executes no instructions in a window has no defined slowdown; callers
// should skip such windows rather than feed zeros here.
func Slowdown(ipsFull, ips float64) (float64, error) {
	if ips <= 0 {
		return 0, fmt.Errorf("fairness: non-positive IPS %v", ips)
	}
	if ipsFull < 0 {
		return 0, fmt.Errorf("fairness: negative full-resource IPS %v", ipsFull)
	}
	return ipsFull / ips, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoSamples
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs (the paper's σ).
//
// The population form (divide by n, not n−1) matches the metric's use as a
// descriptive statistic over the complete set of consolidated applications
// rather than a sample estimate.
func StdDev(xs []float64) (float64, error) {
	mu, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	varSum := 0.0
	for _, x := range xs {
		d := x - mu
		varSum += d * d
	}
	return math.Sqrt(varSum / float64(len(xs))), nil
}

// Unfairness computes Equation 2 of the paper: σ/μ over the slowdowns.
//
// A single application is perfectly fair by definition (returns 0).
func Unfairness(slowdowns []float64) (float64, error) {
	if len(slowdowns) == 0 {
		return 0, ErrNoSamples
	}
	for i, s := range slowdowns {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return 0, fmt.Errorf("fairness: invalid slowdown %v at index %d", s, i)
		}
	}
	mu, err := Mean(slowdowns)
	if err != nil {
		return 0, err
	}
	sigma, err := StdDev(slowdowns)
	if err != nil {
		return 0, err
	}
	if mu == 0 {
		return 0, errors.New("fairness: zero mean slowdown")
	}
	return sigma / mu, nil
}

// GeoMean returns the geometric mean of xs. All inputs must be strictly
// positive. It is computed in log space to avoid overflow on long inputs.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoSamples
	}
	logSum := 0.0
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("fairness: non-positive value %v at index %d", x, i)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Throughput returns the geometric mean of the per-application IPS values,
// the aggregate performance metric of Figure 17.
func Throughput(ips []float64) (float64, error) {
	return GeoMean(ips)
}

// Summary aggregates the fairness statistics of one consolidated run.
type Summary struct {
	Slowdowns  []float64 // per-application slowdowns (Equation 1)
	Mean       float64   // μ
	StdDev     float64   // σ
	Unfairness float64   // σ/μ (Equation 2)
}

// Summarize computes a Summary from per-application slowdowns. The input
// slice is copied; the caller retains ownership.
func Summarize(slowdowns []float64) (Summary, error) {
	u, err := Unfairness(slowdowns)
	if err != nil {
		return Summary{}, err
	}
	mu, err := Mean(slowdowns)
	if err != nil {
		return Summary{}, err
	}
	sigma, err := StdDev(slowdowns)
	if err != nil {
		return Summary{}, err
	}
	cp := make([]float64, len(slowdowns))
	copy(cp, slowdowns)
	return Summary{Slowdowns: cp, Mean: mu, StdDev: sigma, Unfairness: u}, nil
}

// String renders the summary compactly, e.g. for log lines.
func (s Summary) String() string {
	return fmt.Sprintf("unfairness=%.4f mean=%.3f sd=%.3f n=%d",
		s.Unfairness, s.Mean, s.StdDev, len(s.Slowdowns))
}

// Normalize divides each element of xs by base, returning a new slice.
// The evaluation figures normalize every policy's unfairness to the EQ
// policy (Figures 12–14, 17) or to the unpartitioned run (Figures 4–6).
func Normalize(xs []float64, base float64) ([]float64, error) {
	if base <= 0 || math.IsNaN(base) || math.IsInf(base, 0) {
		return nil, fmt.Errorf("fairness: invalid normalization base %v", base)
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out, nil
}

// Improvement returns the paper-style "X% higher fairness" figure of merit
// for a policy with unfairness u against a baseline with unfairness base:
// the relative reduction in unfairness, in percent.
//
// Example: base=1.0, u=0.427 → 57.3 (the paper's headline number vs. EQ).
func Improvement(base, u float64) (float64, error) {
	if base <= 0 {
		return 0, fmt.Errorf("fairness: invalid baseline unfairness %v", base)
	}
	return (base - u) / base * 100, nil
}
