package fairness

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSlowdown(t *testing.T) {
	tests := []struct {
		name         string
		ipsFull, ips float64
		want         float64
		wantErr      bool
	}{
		{"no degradation", 100, 100, 1.0, false},
		{"2x slowdown", 200, 100, 2.0, false},
		{"speedup clamps nothing", 100, 200, 0.5, false},
		{"zero ips", 100, 0, 0, true},
		{"negative ips", 100, -1, 0, true},
		{"negative full", -1, 100, 0, true},
		{"zero full is zero slowdown", 0, 100, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Slowdown(tt.ipsFull, tt.ips)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Slowdown(%v,%v) err=%v wantErr=%v", tt.ipsFull, tt.ips, err, tt.wantErr)
			}
			if err == nil && !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Slowdown(%v,%v)=%v want %v", tt.ipsFull, tt.ips, got, tt.want)
			}
		})
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	mu, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mu, 5, 1e-12) {
		t.Errorf("Mean=%v want 5", mu)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sd, 2, 1e-12) {
		t.Errorf("StdDev=%v want 2 (population form)", sd)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrNoSamples {
		t.Errorf("Mean(nil) err=%v want ErrNoSamples", err)
	}
	if _, err := StdDev(nil); err != ErrNoSamples {
		t.Errorf("StdDev(nil) err=%v want ErrNoSamples", err)
	}
	if _, err := Unfairness(nil); err != ErrNoSamples {
		t.Errorf("Unfairness(nil) err=%v want ErrNoSamples", err)
	}
	if _, err := GeoMean(nil); err != ErrNoSamples {
		t.Errorf("GeoMean(nil) err=%v want ErrNoSamples", err)
	}
}

func TestUnfairnessEqualSlowdowns(t *testing.T) {
	u, err := Unfairness([]float64{1.7, 1.7, 1.7, 1.7})
	if err != nil {
		t.Fatal(err)
	}
	if u != 0 {
		t.Errorf("equal slowdowns should be perfectly fair, got %v", u)
	}
}

func TestUnfairnessSingleApp(t *testing.T) {
	u, err := Unfairness([]float64{3.2})
	if err != nil {
		t.Fatal(err)
	}
	if u != 0 {
		t.Errorf("single app unfairness=%v want 0", u)
	}
}

func TestUnfairnessKnownValue(t *testing.T) {
	// slowdowns 1 and 3: μ=2, σ=1 → unfairness 0.5.
	u, err := Unfairness([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(u, 0.5, 1e-12) {
		t.Errorf("Unfairness=%v want 0.5", u)
	}
}

func TestUnfairnessRejectsInvalid(t *testing.T) {
	for _, bad := range [][]float64{
		{1, 0},
		{1, -2},
		{1, math.NaN()},
		{1, math.Inf(1)},
	} {
		if _, err := Unfairness(bad); err == nil {
			t.Errorf("Unfairness(%v) expected error", bad)
		}
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g, 4, 1e-9) {
		t.Errorf("GeoMean=%v want 4", g)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero should error")
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 4, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d]=%v want %v", i, out[i], want[i])
		}
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Error("Normalize by 0 should error")
	}
	if _, err := Normalize([]float64{1}, math.NaN()); err == nil {
		t.Error("Normalize by NaN should error")
	}
}

func TestImprovement(t *testing.T) {
	imp, err := Improvement(1.0, 0.427)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(imp, 57.3, 1e-9) {
		t.Errorf("Improvement=%v want 57.3", imp)
	}
	if _, err := Improvement(0, 1); err == nil {
		t.Error("Improvement with zero base should error")
	}
}

func TestSummarize(t *testing.T) {
	in := []float64{1, 2, 3}
	s, err := Summarize(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Mean, 2, 1e-12) {
		t.Errorf("Mean=%v", s.Mean)
	}
	// Ensure the summary copied its input.
	in[0] = 99
	if s.Slowdowns[0] == 99 {
		t.Error("Summarize must copy its input slice")
	}
	if s.String() == "" {
		t.Error("String() should be non-empty")
	}
}

// Property: unfairness is scale-invariant — multiplying all slowdowns by a
// positive constant leaves σ/μ unchanged.
func TestUnfairnessScaleInvariantProperty(t *testing.T) {
	f := func(raw []uint16, scaleRaw uint16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, 1+float64(r)/1000) // in [1, ~66.5]
		}
		scale := 0.5 + float64(scaleRaw)/65535*10
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x * scale
		}
		u1, err1 := Unfairness(xs)
		u2, err2 := Unfairness(scaled)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(u1, u2, 1e-9*(1+u1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: unfairness is non-negative and zero iff all slowdowns equal.
func TestUnfairnessNonNegativeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		allEqual := true
		for _, r := range raw {
			xs = append(xs, 1+float64(r))
			if r != raw[0] {
				allEqual = false
			}
		}
		u, err := Unfairness(xs)
		if err != nil {
			return false
		}
		if u < 0 {
			return false
		}
		if allEqual && u > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: geometric mean lies between min and max.
func TestGeoMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := 1 + float64(r)
			xs = append(xs, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
