package fairness

import (
	"fmt"
	"math"
)

// Tracker maintains Equation 2 — the coefficient of variation of the
// tracked slowdowns — incrementally: O(1) per slowdown change and O(1)
// per application add/remove, instead of the O(n) multi-pass recompute
// Unfairness performs. A control loop that changes at most one
// allocation per period (CoPart's, and the fairness-oriented clustering
// loops of LFOC/LFOC+) pays only for the slowdowns that actually moved;
// a steady idle period pays nothing but the final σ/μ division.
//
// Internally the tracker keeps Neumaier-compensated running sums of
// d = x − K and d², where K is the first slowdown seen after the
// tracker was (re)started, and derives the population variance in the
// shifted form E[d²] − E[d]². The shift keeps both terms near the
// magnitude of the spread rather than the magnitude of μ², which is
// what makes the subtraction stable when slowdowns cluster; the
// compensation bounds each running sum's error to one ulp of its true
// value independent of the add/remove/update history. The result is
// NOT bit-identical to Unfairness's two-pass Σ(x−μ)²/n: the two differ
// by floating-point rearrangement.
//
// Equivalence contract (pinned by TestTrackerMatchesBatch and
// TestManagerStreamingFairness): for slowdowns in [1, 100] and
// populations up to 64 — the whole operating range of the repo, where
// slowdowns are ≥ 1 by Equation 1 and consolidations are small —
//
//	|Tracker.Unfairness() − Unfairness(xs)| ≤ 5e-8
//
// absolutely, across any sequence of Add/Remove/Update operations
// reaching that multiset. The bound is the σ ≈ 0 worst case, where the
// variance subtraction cancels down to rounding noise and the square
// root amplifies it to ~√ε; away from that degenerate point the
// difference is ulp-level. Because even an ulp can flip an exact
// comparison (e.g. the manager's best-state tie-break), the batch path
// remains the default for every published experiment; the streaming
// path is opt-in via core.Features.StreamingFairness.
//
// The zero value is an empty tracker, ready for use. Tracker is not
// safe for concurrent use.
type Tracker struct {
	n int
	// k is the shift: the first slowdown seen after the tracker was
	// (re)started. Every sum below is over d = x − k.
	k float64
	// sum/sumC and sumSq/sumSqC are Neumaier pairs: the running value
	// and its accumulated compensation. The true sum is sum + sumC.
	sum, sumC     float64 // Σd
	sumSq, sumSqC float64 // Σd²
}

// neumaierAdd adds x to the compensated pair (sum, comp), returning the
// updated pair. Unlike plain Kahan summation, Neumaier's variant also
// compensates when the addend exceeds the running sum in magnitude,
// which removals (adding a negative term that may dwarf the remainder)
// require.
//
//copart:noalloc
func neumaierAdd(sum, comp, x float64) (float64, float64) {
	t := sum + x
	if math.Abs(sum) >= math.Abs(x) {
		comp += (sum - t) + x
	} else {
		comp += (x - t) + sum
	}
	return t, comp
}

// Reset empties the tracker.
//
//copart:noalloc
func (t *Tracker) Reset() { *t = Tracker{} }

// Len reports the number of tracked slowdowns.
func (t *Tracker) Len() int { return t.n }

// validSlowdown mirrors Unfairness's per-element validation.
func validSlowdown(s float64) error {
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return fmt.Errorf("fairness: invalid slowdown %v", s)
	}
	return nil
}

// Add tracks a new application's slowdown. O(1).
//
//copart:noalloc
func (t *Tracker) Add(x float64) error {
	if err := validSlowdown(x); err != nil {
		return err
	}
	if t.n == 0 {
		t.k = x
	}
	d := x - t.k
	t.sum, t.sumC = neumaierAdd(t.sum, t.sumC, d)
	t.sumSq, t.sumSqC = neumaierAdd(t.sumSq, t.sumSqC, d*d)
	t.n++
	return nil
}

// Remove untracks a departing application's slowdown, which must be a
// value previously Added (the tracker cannot verify membership; an
// unmatched Remove silently corrupts the sums). O(1).
//
//copart:noalloc
func (t *Tracker) Remove(x float64) error {
	if err := validSlowdown(x); err != nil {
		return err
	}
	if t.n == 0 {
		return ErrNoSamples
	}
	d := x - t.k
	t.sum, t.sumC = neumaierAdd(t.sum, t.sumC, -d)
	t.sumSq, t.sumSqC = neumaierAdd(t.sumSq, t.sumSqC, -(d * d))
	t.n--
	if t.n == 0 {
		// Drop any residual compensation so an emptied tracker is
		// exactly the zero tracker.
		*t = Tracker{}
	}
	return nil
}

// Update replaces one tracked slowdown with a new value — the per-period
// operation for an application whose measured IPS changed. O(1).
//
//copart:noalloc
func (t *Tracker) Update(old, new float64) error {
	if err := validSlowdown(old); err != nil {
		return err
	}
	if err := validSlowdown(new); err != nil {
		return err
	}
	if t.n == 0 {
		return ErrNoSamples
	}
	dOld, dNew := old-t.k, new-t.k
	t.sum, t.sumC = neumaierAdd(t.sum, t.sumC, dNew-dOld)
	t.sumSq, t.sumSqC = neumaierAdd(t.sumSq, t.sumSqC, dNew*dNew-dOld*dOld)
	return nil
}

// Unfairness returns Equation 2 (σ/μ) over the tracked slowdowns. A
// single application is perfectly fair (0); an empty tracker returns
// ErrNoSamples, matching the batch function.
//
//copart:noalloc
func (t *Tracker) Unfairness() (float64, error) {
	if t.n == 0 {
		return 0, ErrNoSamples
	}
	if t.n == 1 {
		// A single application is perfectly fair by definition — exact
		// 0, like the batch path, regardless of any rounding residue
		// the operation history left in the sums.
		return 0, nil
	}
	n := float64(t.n)
	muD := (t.sum + t.sumC) / n // mean of the shifted values
	mu := t.k + muD             // true mean slowdown
	if mu <= 0 {
		// Every tracked value was positive, so a non-positive mean can
		// only arise from unmatched Removes corrupting the sums.
		return 0, fmt.Errorf("fairness: tracker mean %v not positive (unmatched Remove?)", mu)
	}
	// Shift-invariant population variance: Var(x) = E[d²] − E[d]².
	variance := (t.sumSq+t.sumSqC)/n - muD*muD
	if variance < 0 {
		// E[x²] − μ² can round fractionally below zero when the true
		// variance is ~0 (all slowdowns equal); clamp like the batch
		// path's exact 0.
		variance = 0
	}
	return math.Sqrt(variance) / mu, nil
}
