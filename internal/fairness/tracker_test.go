package fairness

import (
	"math"
	"math/rand"
	"testing"
)

// trackerBound is the documented equivalence bound between the
// streaming tracker and the batch Unfairness recompute: 5e-8 absolute,
// for slowdowns in [1, 100] and populations up to 64 (see Tracker).
const trackerBound = 5e-8

// checkAgainstBatch asserts the tracker's unfairness matches the batch
// recompute of xs within the documented bound.
func checkAgainstBatch(t *testing.T, tr *Tracker, xs []float64, step int) {
	t.Helper()
	got, err := tr.Unfairness()
	if err != nil {
		t.Fatalf("step %d: tracker: %v", step, err)
	}
	want, err := Unfairness(xs)
	if err != nil {
		t.Fatalf("step %d: batch: %v", step, err)
	}
	if diff := math.Abs(got - want); diff > trackerBound {
		t.Fatalf("step %d: streaming %v vs batch %v differ by %g (> %g) over %d slowdowns",
			step, got, want, diff, trackerBound, len(xs))
	}
}

// TestTrackerMatchesBatch is the 3-seed golden equivalence test: a long
// random walk of adds, removes, and updates over a churning population,
// checked against the batch recompute at every step. It pins the
// documented ULP-level bound the manager's streaming gate relies on.
func TestTrackerMatchesBatch(t *testing.T) {
	for _, seed := range []int64{1, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		var tr Tracker
		var xs []float64
		draw := func() float64 { return 1 + 99*rng.Float64() } // slowdowns in [1, 100)
		for step := 0; step < 4000; step++ {
			switch op := rng.Intn(10); {
			case op == 0 && len(xs) > 1: // remove a random element
				i := rng.Intn(len(xs))
				if err := tr.Remove(xs[i]); err != nil {
					t.Fatal(err)
				}
				xs[i] = xs[len(xs)-1]
				xs = xs[:len(xs)-1]
			case op <= 2 && len(xs) < 64: // add
				x := draw()
				if err := tr.Add(x); err != nil {
					t.Fatal(err)
				}
				xs = append(xs, x)
			case len(xs) > 0: // update one element in place
				i := rng.Intn(len(xs))
				x := draw()
				if err := tr.Update(xs[i], x); err != nil {
					t.Fatal(err)
				}
				xs[i] = x
			default:
				x := draw()
				if err := tr.Add(x); err != nil {
					t.Fatal(err)
				}
				xs = append(xs, x)
			}
			if len(xs) > 0 {
				checkAgainstBatch(t, &tr, xs, step)
			}
		}
	}
}

// TestTrackerNearEqualSlowdowns drives the cancellation-hostile case —
// all slowdowns within a hair of each other, true variance ~0 — where
// E[x²]−μ² loses the most precision, and checks the bound still holds.
func TestTrackerNearEqualSlowdowns(t *testing.T) {
	for _, seed := range []int64{7, 99, 2026} {
		rng := rand.New(rand.NewSource(seed))
		var tr Tracker
		xs := make([]float64, 6)
		for i := range xs {
			xs[i] = 3 + 1e-12*rng.Float64()
			if err := tr.Add(xs[i]); err != nil {
				t.Fatal(err)
			}
		}
		for step := 0; step < 500; step++ {
			i := rng.Intn(len(xs))
			x := 3 + 1e-12*rng.Float64()
			if err := tr.Update(xs[i], x); err != nil {
				t.Fatal(err)
			}
			xs[i] = x
			checkAgainstBatch(t, &tr, xs, step)
		}
	}
}

func TestTrackerEmptyAndSingle(t *testing.T) {
	var tr Tracker
	if _, err := tr.Unfairness(); err != ErrNoSamples {
		t.Errorf("empty tracker: err = %v, want ErrNoSamples", err)
	}
	if err := tr.Add(2.5); err != nil {
		t.Fatal(err)
	}
	u, err := tr.Unfairness()
	if err != nil {
		t.Fatal(err)
	}
	if u != 0 {
		t.Errorf("single slowdown unfairness = %v, want 0", u)
	}
	if err := tr.Remove(2.5); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after removing last, want 0", tr.Len())
	}
	if (tr != Tracker{}) {
		t.Errorf("emptied tracker %+v not the zero tracker", tr)
	}
	if _, err := tr.Unfairness(); err != ErrNoSamples {
		t.Errorf("emptied tracker: err = %v, want ErrNoSamples", err)
	}
}

func TestTrackerValidation(t *testing.T) {
	var tr Tracker
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := tr.Add(bad); err == nil {
			t.Errorf("Add(%v) accepted", bad)
		}
	}
	if err := tr.Remove(1.5); err != ErrNoSamples {
		t.Errorf("Remove on empty tracker: err = %v, want ErrNoSamples", err)
	}
	if err := tr.Update(1.5, 2.0); err != ErrNoSamples {
		t.Errorf("Update on empty tracker: err = %v, want ErrNoSamples", err)
	}
	if err := tr.Add(2.0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(2.0, math.NaN()); err == nil {
		t.Error("Update to NaN accepted")
	}
	if err := tr.Update(math.Inf(1), 2.0); err == nil {
		t.Error("Update from +Inf accepted")
	}
}

// TestTrackerReset checks Reset returns the tracker to a state
// indistinguishable from a fresh one.
func TestTrackerReset(t *testing.T) {
	var tr Tracker
	for _, x := range []float64{1.2, 3.4, 5.6} {
		if err := tr.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	tr.Reset()
	if (tr != Tracker{}) {
		t.Errorf("reset tracker %+v not the zero tracker", tr)
	}
	xs := []float64{2, 4}
	for _, x := range xs {
		if err := tr.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	checkAgainstBatch(t, &tr, xs, 0)
}

// TestTrackerAllocFree pins the O(1) operations at zero allocations.
func TestTrackerAllocFree(t *testing.T) {
	var tr Tracker
	if err := tr.Add(1.5); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := tr.Add(2.5); err != nil {
			t.Fatal(err)
		}
		if err := tr.Update(2.5, 3.5); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Unfairness(); err != nil {
			t.Fatal(err)
		}
		if err := tr.Remove(3.5); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("tracker ops allocate %.1f times, want 0", avg)
	}
}
