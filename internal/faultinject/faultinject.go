// Package faultinject injects faults into the controller's substrate so
// the control loop's resilience can be tested and soaked without real
// flaky hardware.
//
// On a production host every control period does perf-counter reads and
// resctrl schemata writes, and either can fail transiently: perf fds die
// with their process, schemata writes hit EBUSY, counters wrap around or
// freeze, the control process oversleeps its period, and applications
// arrive and depart mid-phase. A Scenario describes such a fault schedule
// declaratively — probabilistic error rates, deterministic burst windows,
// counter wraparound and stuck-counter windows, period overruns, and
// workload churn — and the wrappers in this package replay it,
// deterministically for a given seed, around a core.Target, a counter
// source, or a resctrl tree.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/machine"
)

// ErrInjected is the sentinel wrapped by every injected fault, so tests
// and callers can distinguish injected faults from real ones.
var ErrInjected = errors.New("injected fault")

// Window is a half-open interval of target time [From, To).
type Window struct {
	From time.Duration
	To   time.Duration
}

// Contains reports whether t lies inside the window.
func (w Window) Contains(t time.Duration) bool { return t >= w.From && t < w.To }

func (w Window) validate(what string) error {
	if w.From < 0 || w.To <= w.From {
		return fmt.Errorf("faultinject: invalid %s window [%v,%v)", what, w.From, w.To)
	}
	return nil
}

// ChurnEvent schedules an application arrival or departure at a point of
// target time. A departure names the application to remove (empty means
// the first currently-consolidated one). An arrival carries the model to
// launch; scenarios parsed from text carry only the Name, and the caller
// resolves Model before building an injector.
type ChurnEvent struct {
	At     time.Duration
	Arrive bool
	Name   string
	Model  *machine.AppModel
}

// Scenario is a declarative fault schedule. The zero value injects
// nothing.
type Scenario struct {
	// Seed drives the probabilistic injections. The same seed and call
	// sequence reproduce the same faults.
	Seed int64

	// ReadErrProb is the per-read probability of a counter-read error.
	ReadErrProb float64
	// WriteErrProb is the per-write probability that a schemata write
	// fails with an EBUSY-like error.
	WriteErrProb float64
	// OverrunProb is the per-step probability that the control period
	// overruns: the step takes OverrunFactor times the requested time.
	OverrunProb float64
	// OverrunFactor stretches an overrunning step (must be > 1 when
	// OverrunProb > 0).
	OverrunFactor float64
	// ProbUntil stops all probabilistic injections after this target
	// time; zero means they never stop. Deterministic windows and events
	// are unaffected. A finite horizon gives soak tests a clean
	// "faults cleared" boundary to measure recovery against.
	ProbUntil time.Duration

	// ReadBursts are windows during which every counter read fails.
	ReadBursts []Window
	// WriteBursts are windows during which every schemata write fails.
	WriteBursts []Window
	// WrapAt lists target times at which every application's counters
	// wrap around: cumulative values restart near zero, as a 32-bit PMC
	// overflow or a reopened perf fd produces.
	WrapAt []time.Duration
	// StuckWindows are windows during which counters freeze at their
	// last value (reads succeed but deltas are zero).
	StuckWindows []Window
	// Churn schedules application arrivals and departures.
	Churn []ChurnEvent
}

// Empty reports whether the scenario injects nothing.
func (s Scenario) Empty() bool {
	return s.ReadErrProb == 0 && s.WriteErrProb == 0 && s.OverrunProb == 0 &&
		len(s.ReadBursts) == 0 && len(s.WriteBursts) == 0 &&
		len(s.WrapAt) == 0 && len(s.StuckWindows) == 0 && len(s.Churn) == 0
}

// Validate checks the scenario for internal consistency. Arrivals must
// have a resolved Model: Parse leaves only the name, and the caller is
// expected to resolve it (e.g. from the workload catalog) before use.
func (s Scenario) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"readerr", s.ReadErrProb}, {"writeerr", s.WriteErrProb}, {"overrun", s.OverrunProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultinject: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if s.OverrunProb > 0 && s.OverrunFactor <= 1 {
		return fmt.Errorf("faultinject: overrun factor %v must exceed 1", s.OverrunFactor)
	}
	if s.ProbUntil < 0 {
		return fmt.Errorf("faultinject: negative probabilistic horizon %v", s.ProbUntil)
	}
	for _, w := range s.ReadBursts {
		if err := w.validate("read burst"); err != nil {
			return err
		}
	}
	for _, w := range s.WriteBursts {
		if err := w.validate("write burst"); err != nil {
			return err
		}
	}
	for _, w := range s.StuckWindows {
		if err := w.validate("stuck counter"); err != nil {
			return err
		}
	}
	for _, at := range s.WrapAt {
		if at < 0 {
			return fmt.Errorf("faultinject: negative wrap time %v", at)
		}
	}
	for _, c := range s.Churn {
		if c.At < 0 {
			return fmt.Errorf("faultinject: negative churn time %v", c.At)
		}
		if c.Arrive {
			if c.Model == nil {
				return fmt.Errorf("faultinject: arrival of %q at %v has no resolved model", c.Name, c.At)
			}
		}
	}
	return nil
}

// Standard returns the standard chaos schedule used by the chaos
// experiment and the CI soak: background 5 % read/write error rates and
// 5 % period overruns until t=160s, a total counter-read outage at
// 60–70s, a schemata-write outage at 90–95s, a counter wraparound at
// 120s, and stuck counters at 140–145s. After 160s the system is
// fault-free, which is the boundary recovery time is measured from.
func Standard() Scenario {
	return Scenario{
		Seed:          1,
		ReadErrProb:   0.05,
		WriteErrProb:  0.05,
		OverrunProb:   0.05,
		OverrunFactor: 3,
		ProbUntil:     160 * time.Second,
		ReadBursts:    []Window{{From: 60 * time.Second, To: 70 * time.Second}},
		WriteBursts:   []Window{{From: 90 * time.Second, To: 95 * time.Second}},
		WrapAt:        []time.Duration{120 * time.Second},
		StuckWindows:  []Window{{From: 140 * time.Second, To: 145 * time.Second}},
	}
}

// Parse builds a scenario from a compact textual spec: whitespace- or
// comma-separated tokens, each one of
//
//	standard                merge the Standard() schedule
//	seed=N                  probabilistic seed
//	readerr=P writeerr=P    per-op error probabilities in [0,1]
//	overrun=PxF             period overruns: probability P, factor F
//	until=D                 stop probabilistic faults after duration D
//	readburst=F-T           all counter reads fail in [F,T)
//	writeburst=F-T          all schemata writes fail in [F,T)
//	wrap=T                  counters wrap around at T
//	stuck=F-T               counters freeze in [F,T)
//	depart=NAME@T           application NAME departs at T ("" = first)
//	arrive=NAME@T           application NAME arrives at T (the caller
//	                        must resolve NAME to a model)
//
// Durations use Go syntax ("90s", "2m30s"). "none" or the empty string
// yield the zero scenario.
//
// A spec with several invalid tokens reports them all in one error
// (joined with errors.Join), so a long -faults flag can be fixed in
// one pass instead of one failure at a time.
func Parse(spec string) (Scenario, error) {
	var sc Scenario
	var errs []error
	fields := strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' || r == '\n' })
	for _, tok := range fields {
		switch tok {
		case "", "none":
			continue
		case "standard":
			// "standard" is a base schedule: put it first and override or
			// extend with further tokens. Churn parsed before it survives.
			churn := sc.Churn
			sc = Standard()
			sc.Churn = append(sc.Churn, churn...)
			continue
		}
		key, val, found := strings.Cut(tok, "=")
		if !found {
			errs = append(errs, fmt.Errorf("token %q is not key=value", tok))
			continue
		}
		var err error
		switch key {
		case "seed":
			sc.Seed, err = strconv.ParseInt(val, 10, 64)
		case "readerr":
			sc.ReadErrProb, err = strconv.ParseFloat(val, 64)
		case "writeerr":
			sc.WriteErrProb, err = strconv.ParseFloat(val, 64)
		case "overrun":
			p, f, ok := strings.Cut(val, "x")
			if !ok {
				err = fmt.Errorf("overrun %q wants PROBxFACTOR", val)
				break
			}
			if sc.OverrunProb, err = strconv.ParseFloat(p, 64); err == nil {
				sc.OverrunFactor, err = strconv.ParseFloat(f, 64)
			}
		case "until":
			sc.ProbUntil, err = time.ParseDuration(val)
		case "readburst", "writeburst", "stuck":
			var w Window
			if w, err = parseWindow(val); err == nil {
				switch key {
				case "readburst":
					sc.ReadBursts = append(sc.ReadBursts, w)
				case "writeburst":
					sc.WriteBursts = append(sc.WriteBursts, w)
				default:
					sc.StuckWindows = append(sc.StuckWindows, w)
				}
			}
		case "wrap":
			var at time.Duration
			if at, err = time.ParseDuration(val); err == nil {
				sc.WrapAt = append(sc.WrapAt, at)
			}
		case "depart", "arrive":
			name, atStr, ok := strings.Cut(val, "@")
			if !ok {
				err = fmt.Errorf("%s %q wants NAME@TIME", key, val)
				break
			}
			var at time.Duration
			if at, err = time.ParseDuration(atStr); err == nil {
				sc.Churn = append(sc.Churn, ChurnEvent{At: at, Arrive: key == "arrive", Name: name})
			}
		default:
			err = fmt.Errorf("unknown key %q (valid: standard, none, seed, readerr, writeerr, overrun, until, readburst, writeburst, wrap, stuck, depart, arrive)", key)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("token %q: %v", tok, err))
		}
	}
	switch len(errs) {
	case 0:
	case 1:
		return Scenario{}, fmt.Errorf("faultinject: %w", errs[0])
	default:
		return Scenario{}, fmt.Errorf("faultinject: %d invalid tokens:\n%w", len(errs), errors.Join(errs...))
	}
	// Churn is replayed in time order regardless of spec order.
	sortChurn(sc.Churn)
	return sc, nil
}

func parseWindow(val string) (Window, error) {
	from, to, ok := strings.Cut(val, "-")
	if !ok {
		return Window{}, fmt.Errorf("window %q wants FROM-TO", val)
	}
	f, err := time.ParseDuration(from)
	if err != nil {
		return Window{}, err
	}
	t, err := time.ParseDuration(to)
	if err != nil {
		return Window{}, err
	}
	return Window{From: f, To: t}, nil
}

func sortChurn(churn []ChurnEvent) {
	for i := 1; i < len(churn); i++ {
		for j := i; j > 0 && churn[j].At < churn[j-1].At; j-- {
			churn[j], churn[j-1] = churn[j-1], churn[j]
		}
	}
}
