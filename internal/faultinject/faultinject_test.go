package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/resctrl"
	"repro/internal/workloads"
)

func newMachine(t *testing.T, apps int) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := workloads.Mix(cfg, workloads.HBoth, apps)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestParseRoundTrip(t *testing.T) {
	sc, err := Parse("seed=7 readerr=0.1 writeerr=0.2 overrun=0.05x3 until=90s " +
		"readburst=10s-20s writeburst=30s-35s wrap=40s stuck=50s-55s depart=a@60s arrive=b@70s")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 7 || sc.ReadErrProb != 0.1 || sc.WriteErrProb != 0.2 {
		t.Errorf("probabilities: %+v", sc)
	}
	if sc.OverrunProb != 0.05 || sc.OverrunFactor != 3 || sc.ProbUntil != 90*time.Second {
		t.Errorf("overrun/until: %+v", sc)
	}
	if len(sc.ReadBursts) != 1 || sc.ReadBursts[0] != (Window{10 * time.Second, 20 * time.Second}) {
		t.Errorf("read bursts: %+v", sc.ReadBursts)
	}
	if len(sc.WrapAt) != 1 || sc.WrapAt[0] != 40*time.Second {
		t.Errorf("wrap: %+v", sc.WrapAt)
	}
	if len(sc.Churn) != 2 || sc.Churn[0].Name != "a" || sc.Churn[0].Arrive ||
		!sc.Churn[1].Arrive || sc.Churn[1].Name != "b" {
		t.Errorf("churn: %+v", sc.Churn)
	}
}

func TestParseStandardAndOverrides(t *testing.T) {
	sc, err := Parse("standard seed=9")
	if err != nil {
		t.Fatal(err)
	}
	std := Standard()
	if sc.Seed != 9 {
		t.Errorf("seed=%d, override lost", sc.Seed)
	}
	if sc.ReadErrProb != std.ReadErrProb || len(sc.ReadBursts) != len(std.ReadBursts) {
		t.Errorf("standard schedule lost: %+v", sc)
	}
	if err := std.Validate(); err != nil {
		t.Errorf("Standard() must validate: %v", err)
	}
	if std.Empty() {
		t.Error("Standard() should not be empty")
	}
	if sc, err := Parse(""); err != nil || !sc.Empty() {
		t.Errorf("empty spec: %+v, %v", sc, err)
	}
	if sc, err := Parse("none"); err != nil || !sc.Empty() {
		t.Errorf("none spec: %+v, %v", sc, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus", "bogus=1", "overrun=0.1", "readburst=10s",
		"readburst=xx-20s", "wrap=later", "depart=a",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should error", spec)
		}
	}
}

// TestParseReportsAllInvalidTokens: a spec with several broken tokens
// reports every one of them in a single error, so a long -faults flag
// is fixable in one pass.
func TestParseReportsAllInvalidTokens(t *testing.T) {
	cases := []struct {
		spec string
		want []string // substrings that must all appear in the error
	}{
		{
			spec: "bogus=1,readerr=nope,wrap=later",
			want: []string{`"bogus=1"`, `"readerr=nope"`, `"wrap=later"`, "3 invalid tokens"},
		},
		{
			spec: "overrun=0.1 depart=a keyonly",
			want: []string{`"overrun=0.1"`, "PROBxFACTOR", `"depart=a"`, "NAME@TIME", `"keyonly"`, "not key=value"},
		},
		{
			// One bad token: no count prefix, but still the token context.
			spec: "readerr=0.1,writeerr=2x",
			want: []string{`"writeerr=2x"`},
		},
		{
			// Unknown keys enumerate the valid vocabulary.
			spec: "frobnicate=1",
			want: []string{`unknown key "frobnicate"`, "standard", "readburst", "arrive"},
		},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q) should error", tc.spec)
			continue
		}
		for _, w := range tc.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("Parse(%q) error missing %q:\n%v", tc.spec, w, err)
			}
		}
	}
	// Valid tokens next to broken ones must not mask the failure.
	if _, err := Parse("seed=3,bogus,readerr=0.1"); err == nil {
		t.Error("mixed valid/invalid spec should error")
	}
}

func TestValidateRejectsBadScenarios(t *testing.T) {
	bad := []Scenario{
		{ReadErrProb: 1.5},
		{WriteErrProb: -0.1},
		{OverrunProb: 0.5, OverrunFactor: 0.9},
		{ReadBursts: []Window{{From: 5 * time.Second, To: time.Second}}},
		{WrapAt: []time.Duration{-time.Second}},
		{Churn: []ChurnEvent{{At: time.Second, Arrive: true, Name: "x"}}}, // no model
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("scenario %d should fail validation: %+v", i, sc)
		}
	}
}

func TestReadBurstFailsEveryRead(t *testing.T) {
	m := newMachine(t, 4)
	tgt, err := WrapTarget(m, Scenario{
		ReadBursts: []Window{{From: 2 * time.Second, To: 4 * time.Second}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	app := m.Apps()[0]
	if _, err := tgt.ReadCounters(app); err != nil {
		t.Fatalf("read before the burst must succeed: %v", err)
	}
	if err := tgt.Step(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.ReadCounters(app); !errors.Is(err, ErrInjected) {
		t.Fatalf("read inside the burst must fail with ErrInjected, got %v", err)
	}
	if err := tgt.Step(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.ReadCounters(app); err != nil {
		t.Fatalf("read after the burst must succeed: %v", err)
	}
	if tgt.Injector().Stats().ReadErrors != 1 {
		t.Errorf("stats: %+v", tgt.Injector().Stats())
	}
}

func TestWraparoundMakesCountersRestart(t *testing.T) {
	m := newMachine(t, 4)
	tgt, err := WrapTarget(m, Scenario{WrapAt: []time.Duration{5 * time.Second}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	app := m.Apps()[0]
	if err := tgt.Step(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	before, err := tgt.ReadCounters(app)
	if err != nil {
		t.Fatal(err)
	}
	if before.Instructions <= 0 {
		t.Fatal("expected progress before the wrap")
	}
	if err := tgt.Step(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	after, err := tgt.ReadCounters(app)
	if err != nil {
		t.Fatal(err)
	}
	if after.Instructions >= before.Instructions {
		t.Errorf("counters did not wrap: before=%v after=%v", before.Instructions, after.Instructions)
	}
	if after.Instructions < 0 {
		t.Errorf("wrapped counters must restart near zero, got %v", after.Instructions)
	}
	// After the wrap the counters increase monotonically again.
	if err := tgt.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	later, err := tgt.ReadCounters(app)
	if err != nil {
		t.Fatal(err)
	}
	if later.Instructions <= after.Instructions {
		t.Errorf("post-wrap counters must advance: %v then %v", after.Instructions, later.Instructions)
	}
}

func TestStuckCountersFreeze(t *testing.T) {
	m := newMachine(t, 4)
	tgt, err := WrapTarget(m, Scenario{
		StuckWindows: []Window{{From: 1 * time.Second, To: 10 * time.Second}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	app := m.Apps()[0]
	if err := tgt.Step(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	first, err := tgt.ReadCounters(app)
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.Step(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	second, err := tgt.ReadCounters(app)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Errorf("counters must freeze inside the window: %+v vs %+v", first, second)
	}
	if err := tgt.Step(6 * time.Second); err != nil { // leaves the window
		t.Fatal(err)
	}
	third, err := tgt.ReadCounters(app)
	if err != nil {
		t.Fatal(err)
	}
	if third.Instructions <= second.Instructions {
		t.Error("counters must advance again after the window")
	}
}

func TestOverrunStretchesStep(t *testing.T) {
	m := newMachine(t, 4)
	tgt, err := WrapTarget(m, Scenario{Seed: 3, OverrunProb: 1, OverrunFactor: 2.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.Step(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := m.Now(); got != 5*time.Second {
		t.Errorf("Now()=%v, want the 2s step stretched to 5s", got)
	}
	if tgt.Injector().Stats().Overruns != 1 {
		t.Errorf("stats: %+v", tgt.Injector().Stats())
	}
}

func TestChurnReplaysArrivalsAndDepartures(t *testing.T) {
	m := newMachine(t, 4)
	first := m.Apps()[0]
	spec, err := workloads.ByName(m.Config(), "WN")
	if err != nil {
		t.Fatal(err)
	}
	model := spec.Model
	model.Name = "late"
	tgt, err := WrapTarget(m, Scenario{Churn: []ChurnEvent{
		{At: 2 * time.Second},                              // depart the first app
		{At: 4 * time.Second, Arrive: true, Model: &model}, // arrive a new one
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.Step(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, name := range tgt.Apps() {
		if name == first {
			t.Fatalf("%s should have departed", first)
		}
	}
	if err := tgt.Step(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range tgt.Apps() {
		if name == "late" {
			found = true
		}
	}
	if !found {
		t.Fatalf("late arrival missing from %v", tgt.Apps())
	}
	st := tgt.Injector().Stats()
	if st.Departures != 1 || st.Arrivals != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestProbabilisticFaultsAreDeterministicAndBounded(t *testing.T) {
	counts := func() Stats {
		m := newMachine(t, 4)
		tgt, err := WrapTarget(m, Scenario{
			Seed: 11, ReadErrProb: 0.3, WriteErrProb: 0.3, ProbUntil: 5 * time.Second,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		app := m.Apps()[0]
		for i := 0; i < 10; i++ {
			tgt.ReadCounters(app)
			tgt.SetAllocation(app, machine.Alloc{CBM: 0x7ff, MBALevel: 100})
			if err := tgt.Step(time.Second); err != nil {
				t.Fatal(err)
			}
		}
		return tgt.Injector().Stats()
	}
	a, b := counts(), counts()
	if a != b {
		t.Errorf("same seed, same call sequence, different faults: %+v vs %+v", a, b)
	}
	if a.ReadErrors == 0 && a.WriteErrors == 0 {
		t.Error("30% error rates over 10 periods should inject something")
	}
	// After ProbUntil (5s) the probabilistic stream is off: replay with a
	// clock already past the horizon and expect silence.
	m := newMachine(t, 4)
	if err := m.Step(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	tgt, err := WrapTarget(m, Scenario{Seed: 11, ReadErrProb: 1, ProbUntil: 5 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.ReadCounters(m.Apps()[0]); err != nil {
		t.Errorf("probabilistic faults must stop after the horizon: %v", err)
	}
}

func TestWrapTreeInjectsWriteFaults(t *testing.T) {
	cfg := machine.DefaultConfig()
	client, err := resctrl.NewSimTree(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.CreateGroup("app"); err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	tree, err := WrapTree(client, Scenario{
		WriteBursts: []Window{{From: 0, To: time.Second}},
	}, func() time.Duration { return now }, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := resctrl.Schemata{MB: map[int]int{0: 50}}
	if err := tree.WriteSchemata("app", s); !errors.Is(err, ErrInjected) {
		t.Fatalf("write inside the burst must fail with ErrInjected, got %v", err)
	}
	now = 2 * time.Second
	if err := tree.WriteSchemata("app", s); err != nil {
		t.Fatalf("write after the burst must pass through: %v", err)
	}
	// Reads and group management pass through untouched.
	if _, err := tree.Groups(); err != nil {
		t.Fatal(err)
	}
	got, err := client.ReadSchemata("app")
	if err != nil {
		t.Fatal(err)
	}
	if got.MB[0] != 50 {
		t.Errorf("schemata not written: %+v", got)
	}
}

func TestWrapCountersInjectsReadFaults(t *testing.T) {
	m := newMachine(t, 4)
	src, err := WrapCounters(m, Scenario{ReadErrProb: 1}, m.Now, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.ReadCounters(m.Apps()[0]); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
}

func TestWrapTargetRejectsChurnOnIncapableTarget(t *testing.T) {
	m := newMachine(t, 4)
	// A bare core.Target view without AddApp/RemoveApp.
	var narrow narrowTarget = narrowTarget{m}
	_, err := WrapTarget(&narrow, Scenario{Churn: []ChurnEvent{{At: time.Second}}}, nil)
	if err == nil {
		t.Error("churn on a target without app management must be rejected at construction")
	}
}

// narrowTarget hides the machine's AddApp/RemoveApp.
type narrowTarget struct{ m *machine.Machine }

func (n *narrowTarget) Apps() []string { return n.m.Apps() }
func (n *narrowTarget) ReadCounters(name string) (machine.Counters, error) {
	return n.m.ReadCounters(name)
}
func (n *narrowTarget) SetAllocation(name string, a machine.Alloc) error {
	return n.m.SetAllocation(name, a)
}
func (n *narrowTarget) Config() machine.Config      { return n.m.Config() }
func (n *narrowTarget) Now() time.Duration          { return n.m.Now() }
func (n *narrowTarget) Step(dt time.Duration) error { return n.m.Step(dt) }
