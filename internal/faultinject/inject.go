package faultinject

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/hosttarget"
	"repro/internal/machine"
	"repro/internal/resctrl"
)

// Stats counts the faults an injector has actually delivered.
type Stats struct {
	ReadErrors  int
	WriteErrors int
	Overruns    int
	Wraps       int
	StuckReads  int
	Departures  int
	Arrivals    int
}

// Total sums all injected faults.
func (s Stats) Total() int {
	return s.ReadErrors + s.WriteErrors + s.Overruns + s.Wraps +
		s.StuckReads + s.Departures + s.Arrivals
}

// Injector replays a Scenario. It is the shared engine behind the
// Target, Counters, and Tree wrappers; wrappers built from the same
// injector share one fault stream and one Stats.
type Injector struct {
	sc  Scenario
	rng *rand.Rand
	now func() time.Duration
	log *eventlog.Log

	stats     Stats
	lastFault time.Duration
	frozen    map[string]machine.Counters // snapshot held during stuck windows
	wrapBase  map[string][]machine.Counters
	churnIdx  int
}

// NewInjector validates the scenario and builds its injector. The clock
// must be the wrapped substrate's clock; log may be nil.
func NewInjector(sc Scenario, now func() time.Duration, log *eventlog.Log) (*Injector, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if now == nil {
		return nil, fmt.Errorf("faultinject: nil clock")
	}
	return &Injector{
		sc:       sc,
		rng:      rand.New(rand.NewSource(sc.Seed)),
		now:      now,
		log:      log,
		frozen:   make(map[string]machine.Counters),
		wrapBase: make(map[string][]machine.Counters),
	}, nil
}

// Stats returns the faults delivered so far.
func (inj *Injector) Stats() Stats { return inj.stats }

// LastFault returns the target time of the most recent injected fault,
// or a negative duration when nothing was injected yet. Soak tests use
// it as the start of the recovery clock.
func (inj *Injector) LastFault() time.Duration {
	if inj.stats.Total() == 0 {
		return -1
	}
	return inj.lastFault
}

func (inj *Injector) record(kind, app, detail string) {
	inj.lastFault = inj.now()
	if inj.log != nil {
		inj.log.Appendf(inj.lastFault, eventlog.KindFault, app, "inject %s: %s", kind, detail)
	}
}

// probActive reports whether probabilistic injections are still live.
func (inj *Injector) probActive() bool {
	return inj.sc.ProbUntil == 0 || inj.now() < inj.sc.ProbUntil
}

func inWindow(ws []Window, t time.Duration) bool {
	for _, w := range ws {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// readFault returns a non-nil error when the current counter read should
// fail.
func (inj *Injector) readFault(app string) error {
	t := inj.now()
	if inWindow(inj.sc.ReadBursts, t) {
		inj.stats.ReadErrors++
		inj.record("read-burst", app, "counter read failed")
		return fmt.Errorf("faultinject: counter read for %s: %w", app, ErrInjected)
	}
	if inj.sc.ReadErrProb > 0 && inj.probActive() && inj.rng.Float64() < inj.sc.ReadErrProb {
		inj.stats.ReadErrors++
		inj.record("read-error", app, "counter read failed")
		return fmt.Errorf("faultinject: counter read for %s: %w", app, ErrInjected)
	}
	return nil
}

// writeFault returns a non-nil error when the current schemata write
// should fail with the EBUSY the kernel produces under contention.
func (inj *Injector) writeFault(app string) error {
	t := inj.now()
	if inWindow(inj.sc.WriteBursts, t) {
		inj.stats.WriteErrors++
		inj.record("write-burst", app, "schemata write EBUSY")
		return fmt.Errorf("faultinject: schemata write for %s: device or resource busy: %w", app, ErrInjected)
	}
	if inj.sc.WriteErrProb > 0 && inj.probActive() && inj.rng.Float64() < inj.sc.WriteErrProb {
		inj.stats.WriteErrors++
		inj.record("write-error", app, "schemata write EBUSY")
		return fmt.Errorf("faultinject: schemata write for %s: device or resource busy: %w", app, ErrInjected)
	}
	return nil
}

// transformCounters applies wraparound and stuck-counter faults to a
// successful read.
func (inj *Injector) transformCounters(app string, cur machine.Counters) machine.Counters {
	t := inj.now()
	// Wraparound: at the first read after each scheduled wrap time the
	// cumulative counters restart from zero — emulated by subtracting the
	// values at the wrap point from every later read.
	fired := inj.wrapBase[app]
	for i, at := range inj.sc.WrapAt {
		if t >= at && i >= len(fired) {
			fired = append(fired, cur)
			inj.stats.Wraps++
			inj.record("wrap", app, fmt.Sprintf("counters wrapped at %v", at))
		}
	}
	inj.wrapBase[app] = fired
	if n := len(fired); n > 0 {
		base := fired[n-1]
		cur.Instructions -= base.Instructions
		cur.LLCAccesses -= base.LLCAccesses
		cur.LLCMisses -= base.LLCMisses
		cur.MemoryBytes -= base.MemoryBytes
	}
	// Stuck counters: freeze at the first value read inside the window.
	if inWindow(inj.sc.StuckWindows, t) {
		if frozen, ok := inj.frozen[app]; ok {
			inj.stats.StuckReads++
			inj.record("stuck", app, "counters frozen")
			return frozen
		}
		inj.frozen[app] = cur
		return cur
	}
	delete(inj.frozen, app)
	return cur
}

// readCounters runs one counter read through the full fault pipeline.
func (inj *Injector) readCounters(app string, read func(string) (machine.Counters, error)) (machine.Counters, error) {
	if err := inj.readFault(app); err != nil {
		return machine.Counters{}, err
	}
	cur, err := read(app)
	if err != nil {
		return machine.Counters{}, err
	}
	return inj.transformCounters(app, cur), nil
}

// stepDuration stretches dt when the period overruns.
func (inj *Injector) stepDuration(dt time.Duration) time.Duration {
	if inj.sc.OverrunProb > 0 && inj.probActive() && inj.rng.Float64() < inj.sc.OverrunProb {
		inj.stats.Overruns++
		stretched := time.Duration(float64(dt) * inj.sc.OverrunFactor)
		inj.record("overrun", "", fmt.Sprintf("step %v stretched to %v", dt, stretched))
		return stretched
	}
	return dt
}

// churnSink is what the injector needs from a target to replay churn.
// *machine.Machine satisfies it.
type churnSink interface {
	Apps() []string
	RemoveApp(name string) error
	AddApp(model machine.AppModel) error
}

// applyChurn fires every scheduled churn event whose time has passed.
func (inj *Injector) applyChurn(sink churnSink) error {
	t := inj.now()
	for inj.churnIdx < len(inj.sc.Churn) && inj.sc.Churn[inj.churnIdx].At <= t {
		ev := inj.sc.Churn[inj.churnIdx]
		inj.churnIdx++
		if ev.Arrive {
			if err := sink.AddApp(*ev.Model); err != nil {
				return fmt.Errorf("faultinject: arrival of %s: %w", ev.Model.Name, err)
			}
			inj.stats.Arrivals++
			inj.record("arrive", ev.Model.Name, "application arrived")
			continue
		}
		name := ev.Name
		if name == "" {
			apps := sink.Apps()
			if len(apps) == 0 {
				return fmt.Errorf("faultinject: departure at %v: no applications", ev.At)
			}
			name = apps[0]
		}
		if err := sink.RemoveApp(name); err != nil {
			return fmt.Errorf("faultinject: departure of %s: %w", name, err)
		}
		inj.stats.Departures++
		inj.record("depart", name, "application departed")
	}
	return nil
}

// Target wraps a core.Target with fault injection. Counter reads,
// schemata writes, and time steps all pass through the injector; churn
// events are replayed at step boundaries.
type Target struct {
	inner core.Target
	inj   *Injector
}

// WrapTarget builds an injecting wrapper around t. When the scenario
// schedules churn, the target must also support adding and removing
// applications (*machine.Machine does). The log may be nil.
func WrapTarget(t core.Target, sc Scenario, log *eventlog.Log) (*Target, error) {
	inj, err := NewInjector(sc, t.Now, log)
	if err != nil {
		return nil, err
	}
	if len(sc.Churn) > 0 {
		if _, ok := t.(churnSink); !ok {
			return nil, fmt.Errorf("faultinject: scenario schedules churn but target %T cannot add/remove apps", t)
		}
	}
	return &Target{inner: t, inj: inj}, nil
}

// Injector exposes the wrapper's engine for stats and recovery clocks.
func (t *Target) Injector() *Injector { return t.inj }

// Apps implements core.Target.
func (t *Target) Apps() []string { return t.inner.Apps() }

// ReadCounters implements core.Target with read faults, wraparound, and
// stuck counters applied.
func (t *Target) ReadCounters(name string) (machine.Counters, error) {
	return t.inj.readCounters(name, t.inner.ReadCounters)
}

// SetAllocation implements core.Target with write faults applied.
func (t *Target) SetAllocation(name string, a machine.Alloc) error {
	if err := t.inj.writeFault(name); err != nil {
		return err
	}
	return t.inner.SetAllocation(name, a)
}

// Config implements core.Target.
func (t *Target) Config() machine.Config { return t.inner.Config() }

// Now implements core.Target.
func (t *Target) Now() time.Duration { return t.inner.Now() }

// Step implements core.Target: the step may overrun, and scheduled churn
// fires once the clock has advanced.
func (t *Target) Step(dt time.Duration) error {
	if err := t.inner.Step(t.inj.stepDuration(dt)); err != nil {
		return err
	}
	if sink, ok := t.inner.(churnSink); ok {
		return t.inj.applyChurn(sink)
	}
	return nil
}

// Counters wraps a counter source (hosttarget.CounterSource) with the
// read-side faults of a scenario: read errors, wraparound, and stuck
// counters.
type Counters struct {
	inner hosttarget.CounterSource
	inj   *Injector
}

// WrapCounters builds an injecting wrapper around src using the given
// clock. The log may be nil.
func WrapCounters(src hosttarget.CounterSource, sc Scenario, now func() time.Duration, log *eventlog.Log) (*Counters, error) {
	inj, err := NewInjector(sc, now, log)
	if err != nil {
		return nil, err
	}
	return &Counters{inner: src, inj: inj}, nil
}

// Injector exposes the wrapper's engine.
func (c *Counters) Injector() *Injector { return c.inj }

// ReadCounters implements hosttarget.CounterSource.
func (c *Counters) ReadCounters(app string) (machine.Counters, error) {
	return c.inj.readCounters(app, c.inner.ReadCounters)
}

// Tree wraps a resctrl tree (hosttarget.Tree) with the write-side faults
// of a scenario: schemata writes fail probabilistically and during write
// bursts, exactly as a contended kernel interface returns EBUSY.
type Tree struct {
	hosttarget.Tree
	inj *Injector
}

// WrapTree builds an injecting wrapper around tr using the given clock.
// The log may be nil.
func WrapTree(tr hosttarget.Tree, sc Scenario, now func() time.Duration, log *eventlog.Log) (*Tree, error) {
	inj, err := NewInjector(sc, now, log)
	if err != nil {
		return nil, err
	}
	return &Tree{Tree: tr, inj: inj}, nil
}

// Injector exposes the wrapper's engine.
func (t *Tree) Injector() *Injector { return t.inj }

// WriteSchemata implements hosttarget.Tree with write faults applied.
func (t *Tree) WriteSchemata(group string, s resctrl.Schemata) error {
	if err := t.inj.writeFault(group); err != nil {
		return err
	}
	return t.Tree.WriteSchemata(group, s)
}
