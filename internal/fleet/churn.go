package fleet

import (
	"fmt"
	"slices"

	"repro/internal/machine"
	"repro/internal/trace"
)

// Fleet-over-trace: instead of a fixed population running a fixed
// number of periods, RunChurn drives a *churning* population from
// internal/trace temporal processes — Poisson arrivals, exponential
// lifetimes. Each arriving node draws its own mix (possibly a different
// app count than the runtime it inherits), runs for its drawn lifetime,
// and returns its runtime to the pool for the next arrival to Reuse.
// This is the pool's hostile case: under a fixed fleet every reuse
// pairs identical shapes; under churn a 3-app node's runtime is
// relaunched as a 6-app node and vice versa, which is exactly what
// machine.Reset + Manager.Reuse were built to absorb (pool keyed by
// config fingerprint only — never by mix shape — with per-mix hot-state
// restore via the profile memos preserved).
//
// Determinism: the whole schedule (arrival times, lifetimes) is drawn
// up front from seeded processes, so node i's outcome stays a pure
// function of (ChurnConfig, i) and the deterministic results are
// bit-identical at any worker count and with the pool on or off —
// pinned by TestFleetChurnGolden. The virtual schedule orders the fan
// out (nodes launch in arrival order); wall-clock execution may overlap
// them freely.

// ChurnConfig sizes a churning fleet run.
type ChurnConfig struct {
	// Arrivals is the total number of nodes that arrive over the run.
	Arrivals int
	// Rate is the Poisson arrival rate in nodes per period of virtual
	// time; 0 selects 1.0.
	Rate float64
	// MeanLife is the mean node lifetime in control periods; 0 selects
	// 20. Lifetimes clamp to [MinLife, MaxLife] (defaults 1 and 10×
	// MeanLife).
	MeanLife float64
	MinLife  int
	MaxLife  int
	// Seed derives the arrival/lifetime schedule and every node's
	// workload mix and manager RNG.
	Seed int64
	// Machine configures each node's hardware; the zero value selects
	// machine.DefaultConfig().
	Machine machine.Config
	// NoPool disables the runtime pool (see Config.NoPool).
	NoPool bool
	// Block, LatSamples, and BatchFairness pass through to the fleet
	// engine (see the Config fields of the same names).
	Block         int
	LatSamples    int
	BatchFairness bool
}

// ChurnStats summarizes the virtual schedule (deterministic).
type ChurnStats struct {
	// PeakLive is the maximum number of simultaneously live nodes in
	// virtual time; MeanLive the time-weighted average over the span
	// from first arrival to last departure.
	PeakLive int
	MeanLive float64
}

// withDefaults resolves the zero-value knobs.
func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Rate == 0 {
		c.Rate = 1
	}
	if c.MeanLife == 0 {
		c.MeanLife = 20
	}
	if c.MinLife == 0 {
		c.MinLife = 1
	}
	if c.MaxLife == 0 {
		c.MaxLife = int(10 * c.MeanLife)
	}
	return c
}

// Validate checks the configuration (after defaulting).
func (c ChurnConfig) Validate() error {
	if c.Arrivals < 1 {
		return fmt.Errorf("fleet: %d arrivals", c.Arrivals)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("fleet: arrival rate %v", c.Rate)
	}
	if c.MeanLife <= 0 {
		return fmt.Errorf("fleet: mean lifetime %v", c.MeanLife)
	}
	if c.MinLife < 1 || c.MinLife > c.MaxLife {
		return fmt.Errorf("fleet: lifetime clamp [%d, %d]", c.MinLife, c.MaxLife)
	}
	return nil
}

// churnScratch holds the schedule buffers, reused across RunChurn calls
// (serialized like the telemetry stripes — see stripe.go) so a
// steady-state churn run allocates nothing.
var churnScratch struct {
	arrival []float64
	life    []int
	depart  []float64 // sorted departure times for the live-count sweep

	// Cached temporal processes: constructing a process allocates (the
	// struct, its rand.Rand, its source), so repeated runs with the same
	// schedule parameters Reset the cached pair — allocation-free and,
	// because Reset re-seeds, bit-identical to fresh construction.
	ap    *trace.ArrivalProcess
	lp    *trace.LifetimeProcess
	apKey arrivalKey
	lpKey lifetimeKey
}

type arrivalKey struct {
	rate float64
	seed int64
}

type lifetimeKey struct {
	mean     float64
	min, max int
	seed     int64
}

// churnSchedule draws the full arrival/lifetime schedule into the
// reusable scratch. The processes are re-seeded per run (rebuilt only
// when the schedule parameters change), so the schedule is a pure
// function of the config.
func churnSchedule(cfg ChurnConfig) error {
	s := &churnScratch
	// Offset lifetime seed so the two processes never share a stream.
	lseed := cfg.Seed ^ i64(0xA5A5A5A5A5A5A5A5)
	ak := arrivalKey{rate: cfg.Rate, seed: cfg.Seed}
	lk := lifetimeKey{mean: cfg.MeanLife, min: cfg.MinLife, max: cfg.MaxLife, seed: lseed}
	if s.ap == nil || s.apKey != ak {
		ap, err := trace.NewArrivalProcess(cfg.Rate, cfg.Seed)
		if err != nil {
			return err
		}
		s.ap, s.apKey = ap, ak
	} else {
		s.ap.Reset()
	}
	if s.lp == nil || s.lpKey != lk {
		lp, err := trace.NewLifetimeProcess(cfg.MeanLife, cfg.MinLife, cfg.MaxLife, lseed)
		if err != nil {
			return err
		}
		s.lp, s.lpKey = lp, lk
	} else {
		s.lp.Reset()
	}
	ap, lp := s.ap, s.lp
	if cap(s.arrival) < cfg.Arrivals {
		s.arrival = make([]float64, cfg.Arrivals) //copart:allocok amortized schedule growth; steady state reuses capacity
		s.life = make([]int, cfg.Arrivals)        //copart:allocok amortized schedule growth; steady state reuses capacity
		s.depart = make([]float64, cfg.Arrivals)  //copart:allocok amortized schedule growth; steady state reuses capacity
	}
	s.arrival = s.arrival[:cfg.Arrivals]
	s.life = s.life[:cfg.Arrivals]
	s.depart = s.depart[:cfg.Arrivals]
	for i := 0; i < cfg.Arrivals; i++ {
		s.arrival[i] = ap.Next()
		s.life[i] = lp.Next()
		s.depart[i] = s.arrival[i] + float64(s.life[i])
	}
	return nil
}

// churnStats sweeps the virtual schedule for the live-population
// figures. One period of lifetime spans one unit of arrival time, so
// the two processes share a clock.
func churnStats() ChurnStats {
	s := &churnScratch
	n := len(s.arrival)
	if n == 0 {
		return ChurnStats{}
	}
	slices.Sort(s.depart) // arrivals are already sorted (Poisson clock)
	var st ChurnStats
	live := 0
	prev := s.arrival[0]
	var area float64
	ai, di := 0, 0
	for di < n {
		// Next event: arrival ai or departure di, arrivals first on ties
		// (a node that departs exactly when another arrives overlaps it
		// for zero time either way).
		var t float64
		arrive := ai < n && s.arrival[ai] <= s.depart[di]
		if arrive {
			t = s.arrival[ai]
		} else {
			t = s.depart[di]
		}
		area += float64(live) * (t - prev)
		prev = t
		if arrive {
			live++
			ai++
			if live > st.PeakLive {
				st.PeakLive = live
			}
		} else {
			live--
			di++
		}
	}
	if span := prev - s.arrival[0]; span > 0 {
		st.MeanLive = area / span
	}
	return st
}

// RunChurnInto executes a churning fleet into res: cfg.Arrivals nodes
// arrive on the Poisson schedule, each living for its drawn lifetime in
// control periods. Nodes launch in arrival order; a departing node's
// runtime carries to the next arrival in its dispatch block or returns
// to the pool, and the successor reinitializes it in place, whatever
// mix shape it previously ran. A Result passed back in is reused like
// RunInto's, making a steady-state churn driver allocation-free.
func RunChurnInto(cfg ChurnConfig, res *Result) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := churnSchedule(cfg); err != nil {
		return err
	}
	// Nodes draw mixes and manager RNG streams exactly like a fixed
	// fleet with the same seed: runNode only needs the per-node period
	// count to differ, and blockRun reads that from the drawn schedule.
	ncfg := Config{
		Nodes: cfg.Arrivals, Periods: 1, Seed: cfg.Seed, Machine: cfg.Machine,
		NoPool: cfg.NoPool, Block: cfg.Block, LatSamples: cfg.LatSamples,
		BatchFairness: cfg.BatchFairness,
	}
	if err := runFleet(ncfg, true, res); err != nil {
		return err
	}
	res.Churn = churnStats()
	return nil
}

// RunChurn executes a churning fleet into a fresh Result; see
// RunChurnInto for the reusable-Result form.
func RunChurn(cfg ChurnConfig) (Result, error) {
	var res Result
	if err := RunChurnInto(cfg, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}
