package fleet

import (
	"reflect"
	"testing"

	"repro/internal/parallel"
)

// runChurnAtWorkers mirrors runAtWorkers for the churn driver.
func runChurnAtWorkers(t *testing.T, workers int, cfg ChurnConfig) Result {
	t.Helper()
	parallel.SetWorkers(workers)
	defer parallel.SetWorkers(0)
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFleetChurnGolden pins the pool's exactness contract under churn:
// arriving nodes reuse runtimes departing nodes of *different* mix
// shapes returned, and every NodeResult must still be bit-identical to
// the NoPool reference — across seeds, with a warm pool, and at
// different worker counts.
func TestFleetChurnGolden(t *testing.T) {
	for _, seed := range []int64{1, 42, 1234} {
		cfg := ChurnConfig{Arrivals: 12, MeanLife: 6, MaxLife: 12, Seed: seed}
		pooled := runChurnAtWorkers(t, 2, cfg)
		warm := runChurnAtWorkers(t, 1, cfg)
		cfg.NoPool = true
		fresh := runChurnAtWorkers(t, 4, cfg)
		if !reflect.DeepEqual(pooled.Nodes, fresh.Nodes) {
			t.Fatalf("seed %d: pooled churn nodes differ from NoPool nodes:\npooled: %+v\nfresh:  %+v",
				seed, pooled.Nodes, fresh.Nodes)
		}
		if !reflect.DeepEqual(warm.Nodes, fresh.Nodes) {
			t.Fatalf("seed %d: warm pooled churn nodes differ from NoPool nodes:\nwarm:  %+v\nfresh: %+v",
				seed, warm.Nodes, fresh.Nodes)
		}
		if !reflect.DeepEqual(pooled.Churn, fresh.Churn) {
			t.Fatalf("seed %d: churn stats differ: %+v vs %+v", seed, pooled.Churn, fresh.Churn)
		}
	}
}

// TestChurnSchedule sanity-checks the deterministic schedule outputs:
// arrivals strictly increase, lifetimes honour the clamp and land in
// the NodeResults, and the live-population sweep is coherent.
func TestChurnSchedule(t *testing.T) {
	cfg := ChurnConfig{Arrivals: 40, Rate: 2, MeanLife: 5, MinLife: 2, MaxLife: 9, Seed: 7}
	res := runChurnAtWorkers(t, 2, cfg)
	prev := 0.0
	for i, nr := range res.Nodes {
		if nr.Arrival <= prev {
			t.Fatalf("node %d: arrival %v not after %v", i, nr.Arrival, prev)
		}
		prev = nr.Arrival
		if nr.Lifetime < cfg.MinLife || nr.Lifetime > cfg.MaxLife {
			t.Fatalf("node %d: lifetime %d outside [%d, %d]", i, nr.Lifetime, cfg.MinLife, cfg.MaxLife)
		}
		if nr.Periods != nr.Lifetime {
			t.Fatalf("node %d: executed %d periods, lifetime %d", i, nr.Periods, nr.Lifetime)
		}
	}
	if res.Churn.PeakLive < 1 || res.Churn.PeakLive > cfg.Arrivals {
		t.Fatalf("peak live %d outside [1, %d]", res.Churn.PeakLive, cfg.Arrivals)
	}
	if res.Churn.MeanLive <= 0 || res.Churn.MeanLive > float64(res.Churn.PeakLive) {
		t.Fatalf("mean live %v not in (0, peak %d]", res.Churn.MeanLive, res.Churn.PeakLive)
	}
	if res.TotalPeriods == 0 || res.P99 < res.P50 {
		t.Fatalf("implausible run: %d periods, p50 %v, p99 %v", res.TotalPeriods, res.P50, res.P99)
	}
}

// TestChurnPoolCounters pins that the pool actually cycles under
// sequential churn: after a cold run warms it, every arrival of a
// second run reuses a warm runtime — either popped from the pool (a
// hit, one per dispatch block) or handed over inside its block (a
// carry). The explicit Block exercises both legs.
func TestChurnPoolCounters(t *testing.T) {
	cfg := ChurnConfig{Arrivals: 10, MeanLife: 4, MaxLife: 8, Seed: 11, Block: 5}
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	if _, err := RunChurn(cfg); err != nil { // warm the pool
		t.Fatal(err)
	}
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pool.Hits+res.Pool.Carries != uint64(cfg.Arrivals) {
		t.Errorf("warm sequential churn: %d hits + %d carries, want %d total (misses %d, evictions %d)",
			res.Pool.Hits, res.Pool.Carries, cfg.Arrivals, res.Pool.Misses, res.Pool.Evictions)
	}
	// 2 blocks of 5 → one pool pop per block, the other 4 nodes carry.
	if res.Pool.Carries != 8 {
		t.Errorf("warm sequential churn: %d carries, want 8", res.Pool.Carries)
	}
	if res.Pool.Free < 1 {
		t.Errorf("pool free list empty after churn run")
	}

	cfg.NoPool = true
	res, err = RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pool.Hits != 0 || res.Pool.Misses != 0 || res.Pool.Carries != 0 {
		t.Errorf("NoPool churn touched the pool: %+v", res.Pool)
	}
}

// TestChurnValidation covers the config error paths.
func TestChurnValidation(t *testing.T) {
	for _, cfg := range []ChurnConfig{
		{Arrivals: 0},
		{Arrivals: 4, Rate: -1},
		{Arrivals: 4, MeanLife: -2},
		{Arrivals: 4, MinLife: 5, MaxLife: 3},
	} {
		if _, err := RunChurn(cfg); err == nil {
			t.Errorf("RunChurn(%+v) accepted", cfg)
		}
	}
}

// TestChurnSteadyStateAllocs pins the tentpole acceptance target: zero
// allocations per churn run once the pool, schedule scratch, stripes,
// cache tiers, and a reused Result are warm — independent of
// arrivals × periods.
func TestChurnSteadyStateAllocs(t *testing.T) {
	cfg := ChurnConfig{Arrivals: 8, MeanLife: 5, MaxLife: 10, Seed: 3}
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	var res Result
	for i := 0; i < 2; i++ { // warm every tier
		if err := RunChurnInto(cfg, &res); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(5, func() {
		if err := RunChurnInto(cfg, &res); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state churn run allocates %.1f times, want 0", avg)
	}
}
