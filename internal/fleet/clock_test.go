package fleet

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/parallel"
)

// TestScriptedClock swaps fleetClock for a deterministic script: every
// read advances time by exactly one tick. With a single worker the
// clock-read order is fixed — Run reads once before and once after the
// fan-out, every sampled period reads twice (at this size the samplers
// never compact, so every period is sampled), and the stripe merge
// reads twice — so the throughput and latency figures stop being
// nondeterministic and can be asserted exactly.
func TestScriptedClock(t *testing.T) {
	const tick = 3 * time.Millisecond
	base := time.Unix(1_700_000_000, 0)
	var reads atomic.Int64
	orig := fleetClock
	fleetClock = func() time.Time {
		n := reads.Add(1)
		return base.Add(time.Duration(n) * tick)
	}
	parallel.SetWorkers(1)
	defer func() {
		fleetClock = orig
		parallel.SetWorkers(0)
	}()

	cfg := Config{Nodes: 3, Periods: 5, Seed: 11}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// 2 run-bracket reads + 2 per period + 2 bracketing the stripe merge.
	wantReads := int64(2 + 2*cfg.Nodes*cfg.Periods + 2)
	if got := reads.Load(); got != wantReads {
		t.Errorf("clock reads = %d, want %d", got, wantReads)
	}
	// Each period spans exactly one tick between its two reads.
	if res.P50 != tick || res.P99 != tick {
		t.Errorf("P50/P99 = %v/%v, want both %v", res.P50, res.P99, tick)
	}
	// Elapsed spans every read between Run's first read and the read
	// immediately after the fan-out; the merge reads come later.
	wantElapsed := time.Duration(2*cfg.Nodes*cfg.Periods+1) * tick
	if res.Elapsed != wantElapsed {
		t.Errorf("Elapsed = %v, want %v", res.Elapsed, wantElapsed)
	}
	// The merge's two reads bracket exactly one tick.
	if res.StripeMerge != tick {
		t.Errorf("StripeMerge = %v, want %v", res.StripeMerge, tick)
	}
	wantPeriods := cfg.Nodes * cfg.Periods
	if res.TotalPeriods != wantPeriods {
		t.Errorf("TotalPeriods = %d, want %d", res.TotalPeriods, wantPeriods)
	}
	wantRate := float64(wantPeriods) / wantElapsed.Seconds()
	if res.PeriodsPerSec != wantRate {
		t.Errorf("PeriodsPerSec = %v, want %v", res.PeriodsPerSec, wantRate)
	}
}
