// Package fleet drives many independent simulated CoPart nodes
// concurrently — the fleet-scale benchmark behind cmd/fleetbench.
//
// Each node is a self-contained consolidation scenario: its own
// simulated machine (with the solve cache), its own workload mix drawn
// deterministically from the fleet seed, and its own resource manager.
// Nodes share nothing, so the fleet fans out over internal/parallel
// under its determinism contract: node i's outcome is a pure function
// of (Config, i), results land by index, and the deterministic part of
// the result — everything in NodeResult — is bit-identical at any
// worker count. Wall-clock figures (throughput, period-latency
// percentiles) are reported separately and are the only nondeterministic
// outputs.
package fleet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/workloads"
)

// Config sizes the fleet.
type Config struct {
	// Nodes is the number of simulated nodes.
	Nodes int
	// Periods is the number of control periods each node executes after
	// its initial profiling phase.
	Periods int
	// Seed derives every node's workload mix and manager RNG; two runs
	// with the same Config produce identical NodeResults.
	Seed int64
	// Machine configures each node's hardware; the zero value selects
	// machine.DefaultConfig().
	Machine machine.Config
}

// NodeResult is one node's deterministic outcome.
type NodeResult struct {
	// Node is the node index.
	Node int
	// Mix and Apps describe the workload drawn for the node.
	Mix  string
	Apps int
	// Periods is the number of control periods executed; Reprofiles
	// counts re-entries into the profiling phase (change detections).
	Periods    int
	Reprofiles int
	// Unfairness is Equation 2 at the last reported period.
	Unfairness float64
	// Ways and MBA are the final allocation state.
	Ways []int
	MBA  []int
	// CacheHits/CacheMisses/CacheEvictions are the node machine's L1
	// solve-cache counters and ScoreHits/ScoreMisses the manager's score
	// memo counters. All are deterministic — an L2 hit is adopted into
	// the L1 exactly like a fresh solve, so these values are identical
	// with the shared cache enabled or disabled, at any worker count
	// (the L2's own hit/miss split is timing-dependent and lives in
	// Result.Shared instead).
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	ScoreHits      uint64
	ScoreMisses    uint64
	// Phase is the controller's phase name after the last period and
	// FailStreak its consecutive-failure count — both deterministic, and
	// both all-healthy ("idle"/"exploration", streak 0) in a fault-free
	// fleet. They exist so a fleet driver can roll node health up the
	// same way copartd's /healthz reports it.
	Phase      string
	FailStreak int
}

// HealthRollup counts nodes by controller condition at run end.
type HealthRollup struct {
	// Healthy counts nodes that finished outside the degraded phase;
	// Degraded counts the rest. MaxFailStreak is the worst node's
	// consecutive-failure count.
	Healthy       int
	Degraded      int
	MaxFailStreak int
}

// Result aggregates the fleet run.
type Result struct {
	// Nodes holds per-node outcomes, by node index. This is the
	// deterministic part of the result.
	Nodes []NodeResult
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
	// TotalPeriods is the number of control periods executed fleet-wide;
	// PeriodsPerSec is TotalPeriods/Elapsed (node-periods per second).
	TotalPeriods  int
	PeriodsPerSec float64
	// P50 and P99 are percentiles of the per-period wall-clock latency
	// across every node's post-profiling control periods.
	P50, P99 time.Duration
	// CacheHits/CacheMisses/CacheEvictions and ScoreHits/ScoreMisses sum
	// the per-node counters (deterministic). Shared is the process-wide
	// L2 delta over this run: its hit/miss split depends on which node
	// solved a state first and is the one nondeterministic cache figure.
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	ScoreHits      uint64
	ScoreMisses    uint64
	Shared         machine.SharedCacheStats
	// Health rolls node conditions up (deterministic).
	Health HealthRollup
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("fleet: %d nodes", c.Nodes)
	}
	if c.Periods < 1 {
		return fmt.Errorf("fleet: %d periods per node", c.Periods)
	}
	return nil
}

// fleetClock is the wall-clock source behind the fleet's throughput
// and latency figures — the one intentionally nondeterministic input.
// It is a package variable so tests can substitute a scripted clock
// and assert exact percentile values (see clock_test.go); production
// always reads the real monotonic clock.
//
//copart:wallclock fleet throughput and latency percentiles measure real elapsed time
var fleetClock = time.Now

// nodeSeed derives node i's RNG seed from the fleet seed. The golden-ratio
// stride keeps neighboring nodes' streams uncorrelated.
func (c Config) nodeSeed(i int) int64 {
	return c.Seed + i64(0x9E3779B97F4A7C15)*int64(i)
}

// i64 reinterprets an unsigned 64-bit constant as int64.
func i64(u uint64) int64 { return int64(u) }

// runNode executes one node end to end and writes its per-period
// wall-clock latencies into lat (len == cfg.Periods).
func runNode(cfg Config, node int, lat []time.Duration) (NodeResult, error) {
	mcfg := cfg.Machine
	if mcfg.LLCWays == 0 {
		mcfg = machine.DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.nodeSeed(node)))
	kinds := workloads.MixKinds()
	kind := kinds[rng.Intn(len(kinds))]
	maxApps := mcfg.LLCWays
	if mcfg.Cores < maxApps {
		maxApps = mcfg.Cores
	}
	if maxApps > 6 {
		maxApps = 6
	}
	if maxApps < 3 {
		return NodeResult{}, fmt.Errorf("fleet: machine too small for a mix (max %d apps)", maxApps)
	}
	nApps := 3 + rng.Intn(maxApps-2) // 3..maxApps

	m, err := machine.New(mcfg, machine.WithSolveCache())
	if err != nil {
		return NodeResult{}, err
	}
	models, err := workloads.Mix(mcfg, kind, nApps)
	if err != nil {
		return NodeResult{}, err
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			return NodeResult{}, err
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		return NodeResult{}, err
	}
	mgr, err := core.NewManager(m, core.DefaultParams(), ref,
		core.Envelope{LoWay: 0, Ways: mcfg.LLCWays}, rng)
	if err != nil {
		return NodeResult{}, err
	}
	res := NodeResult{Node: node, Mix: kind.String(), Apps: nApps}
	mgr.OnPeriod = func(r core.PeriodReport) { res.Unfairness = r.Unfairness }

	if err := mgr.Profile(); err != nil {
		return NodeResult{}, err
	}
	for p := 0; p < cfg.Periods; p++ {
		start := fleetClock()
		switch mgr.Phase() {
		case core.PhaseExplore:
			_, err = mgr.ExploreStep()
		case core.PhaseIdle:
			_, err = mgr.IdleStep()
		default:
			err = fmt.Errorf("fleet: node %d in unexpected phase %v", node, mgr.Phase())
		}
		lat[p] = fleetClock().Sub(start)
		if err != nil {
			return NodeResult{}, err
		}
		res.Periods++
		if mgr.Phase() == core.PhaseProfile {
			// A change detection sends the manager back to profiling;
			// re-profile outside the latency measurement (it spans many
			// probe periods, not one control period).
			res.Reprofiles++
			if err := mgr.Profile(); err != nil {
				return NodeResult{}, err
			}
		}
	}
	final := mgr.State()
	res.Ways, res.MBA = final.Ways, final.MBA
	cs := m.SolveCacheDetail()
	res.CacheHits, res.CacheMisses, res.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
	res.ScoreHits, res.ScoreMisses = mgr.ScoreMemoStats()
	res.Phase = mgr.Phase().String()
	res.FailStreak = mgr.FailStreak()
	return res, nil
}

// Run executes the fleet, fanning nodes across the parallel worker pool.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Nodes: make([]NodeResult, cfg.Nodes)}
	// One flat latency buffer, pre-sliced per node, keeps the recording
	// race-free under ForEach without locks.
	lats := make([]time.Duration, cfg.Nodes*cfg.Periods)
	sharedBefore := machine.SharedSolveCacheStats()
	start := fleetClock()
	err := parallel.ForEach(cfg.Nodes, func(i int) error {
		nr, err := runNode(cfg, i, lats[i*cfg.Periods:(i+1)*cfg.Periods])
		if err != nil {
			return fmt.Errorf("fleet: node %d: %w", i, err)
		}
		res.Nodes[i] = nr
		return nil
	})
	res.Elapsed = fleetClock().Sub(start)
	if err != nil {
		return Result{}, err
	}
	sharedAfter := machine.SharedSolveCacheStats()
	res.Shared = machine.SharedCacheStats{
		Hits:      sharedAfter.Hits - sharedBefore.Hits,
		Misses:    sharedAfter.Misses - sharedBefore.Misses,
		Evictions: sharedAfter.Evictions - sharedBefore.Evictions,
		Entries:   sharedAfter.Entries,
	}
	for _, nr := range res.Nodes {
		res.TotalPeriods += nr.Periods
		res.CacheHits += nr.CacheHits
		res.CacheMisses += nr.CacheMisses
		res.CacheEvictions += nr.CacheEvictions
		res.ScoreHits += nr.ScoreHits
		res.ScoreMisses += nr.ScoreMisses
		if nr.Phase == core.PhaseDegraded.String() {
			res.Health.Degraded++
		} else {
			res.Health.Healthy++
		}
		if nr.FailStreak > res.Health.MaxFailStreak {
			res.Health.MaxFailStreak = nr.FailStreak
		}
	}
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.PeriodsPerSec = float64(res.TotalPeriods) / secs
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.P50 = percentile(lats, 50)
	res.P99 = percentile(lats, 99)
	return res, nil
}

// percentile reads the p-th percentile from sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
