// Package fleet drives many independent simulated CoPart nodes
// concurrently — the fleet-scale benchmark behind cmd/fleetbench.
//
// Each node is a self-contained consolidation scenario: its own
// simulated machine (with the solve cache), its own workload mix drawn
// deterministically from the fleet seed, and its own resource manager.
// Nodes share nothing mutable, so the fleet fans out over
// internal/parallel under its determinism contract: node i's outcome is
// a pure function of (Config, i), results land by index, and the
// deterministic part of the result — everything in NodeResult, plus the
// structural per-block figures — is bit-identical at any worker count.
// Wall-clock figures (throughput, period-latency percentiles) are
// reported separately and are the only nondeterministic outputs.
//
// Dispatch is block-batched: nodes are partitioned into fixed-size
// contiguous blocks (a pure function of Config — never of the worker
// count) and parallel.ForEachBlock fans the blocks out. Each block owns
// a private telemetry stripe (stripe.go) — its latency sampler and its
// share of every fleet counter — written with plain stores and merged
// deterministically in block order at run end, and a block hands its
// node runtime directly from a departing node to the next arrival
// without a pool round-trip. Batching is what makes the steady-state
// run allocation-free end to end: the sequential dispatch path invokes
// a package-level function (no closure), the stripes and result slices
// are reused via RunInto, and the per-node period loop was already
// allocation-free.
//
// Two read-only structures ARE shared, because they are pure functions
// of the machine configuration: the process-wide L2 solve cache (whose
// entries are exact, so sharing shifts timing but never values) and a
// per-configuration workloads.MixCache of precomputed mixes and STREAM
// reference rates.
//
// Node substrates are pooled: a finished node's machine, manager, and
// RNG go back to a free list (or carry over within a block), and the
// next node reinitializes them in place (machine.Reset,
// core.Manager.Reuse, Source.Seed) instead of allocating fresh ones.
// Reinitialization is exact — a pooled node's NodeResult is
// bit-identical to an unpooled one's, pinned by TestFleetPoolGolden —
// so pooling, like the caches, trades allocation for nothing.
// Config.NoPool opts a run out (fresh substrates per node through the
// same code path) for A/B verification.
//
// Fleet managers score fairness with the streaming Equation-2 tracker
// (core.Features.StreamingFairness): at fleet scale the per-period
// batch recompute is measurable, and the golden-trajectory migration
// test (TestFleetStreamingMigration) pins that the fleet's control
// trajectories are unchanged by the switch. Config.BatchFairness opts
// a run back into the batch arm — the published-figures reference —
// for A/B verification.
package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/workloads"
)

// Config sizes the fleet.
type Config struct {
	// Nodes is the number of simulated nodes.
	Nodes int
	// Periods is the number of control periods each node executes after
	// its initial profiling phase.
	Periods int
	// Seed derives every node's workload mix and manager RNG; two runs
	// with the same Config produce identical NodeResults.
	Seed int64
	// Machine configures each node's hardware; the zero value selects
	// machine.DefaultConfig().
	Machine machine.Config
	// NoPool disables the node-runtime pool: every node builds a fresh
	// machine, manager, and RNG instead of reinitializing a pooled one.
	// NodeResults are identical either way (TestFleetPoolGolden); the
	// switch exists for that A/B check and for callers that prefer not
	// to retain pooled substrates between runs.
	NoPool bool
	// Block is the dispatch block size: nodes are executed in contiguous
	// blocks of this many, each block one schedulable unit with its own
	// telemetry stripe. 0 selects the default, Nodes/32 clamped to
	// [1, 64]. The block size is deliberately a function of the Config
	// alone — never of the worker count — so the stripe structure, the
	// sampled latency population, and every per-block figure are
	// identical at any -parallel setting.
	Block int
	// LatSamples bounds the number of period-latency samples the run
	// keeps, fleet-wide; 0 selects 16384 (defaultLatSamples, which also
	// documents why that resolution suffices). The budget is split evenly
	// across blocks, and each block keeps a deterministic systematic
	// sample of its periods — every stride-th, the stride doubling when
	// the block's share fills — so the kept samples always span the
	// whole run uniformly regardless of Nodes×Periods (see stripe.go
	// for the exact semantics).
	LatSamples int
	// BatchFairness opts the fleet's managers back into the batch
	// Equation-2 recompute. Fleet runs default to the streaming tracker
	// (core.Features.StreamingFairness), which is O(1) per period
	// instead of O(apps); the migration is pinned by
	// TestFleetStreamingMigration, and this switch is its A/B arm.
	BatchFairness bool
}

// maxMixApps caps the per-node consolidation size (the paper evaluates
// mixes of up to 6 applications). It also sizes the per-node slots of
// Run's allocation arena.
const maxMixApps = 6

// blockSize resolves the dispatch block size (see Config.Block).
func (c Config) blockSize() int {
	if c.Block > 0 {
		if c.Block > c.Nodes {
			return c.Nodes
		}
		return c.Block
	}
	b := c.Nodes / 32
	if b < 1 {
		b = 1
	}
	if b > 64 {
		b = 64
	}
	return b
}

// perStripeCap splits the fleet-wide latency sample budget across nb
// stripes.
func perStripeCap(latSamples, nb int) int {
	if latSamples <= 0 {
		latSamples = defaultLatSamples
	}
	per := (latSamples + nb - 1) / nb
	if per < 2 {
		per = 2
	}
	return per
}

// NodeResult is one node's deterministic outcome.
type NodeResult struct {
	// Node is the node index.
	Node int
	// Mix and Apps describe the workload drawn for the node.
	Mix  string
	Apps int
	// Periods is the number of control periods executed; Reprofiles
	// counts re-entries into the profiling phase (change detections).
	Periods    int
	Reprofiles int
	// Unfairness is Equation 2 at the last reported period.
	Unfairness float64
	// Ways and MBA are the final allocation state.
	Ways []int
	MBA  []int
	// CacheHits/CacheMisses/CacheEvictions are the node machine's L1
	// solve-cache counters and ScoreHits/ScoreMisses the manager's score
	// memo counters. All are deterministic — an L2 hit is adopted into
	// the L1 exactly like a fresh solve, so these values are identical
	// with the shared cache enabled or disabled, at any worker count
	// (the L2's own hit/miss split is timing-dependent and lives in
	// Result.Shared instead).
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	ScoreHits      uint64
	ScoreMisses    uint64
	// Phase is the controller's phase name after the last period and
	// FailStreak its consecutive-failure count — both deterministic, and
	// both all-healthy ("idle"/"exploration", streak 0) in a fault-free
	// fleet. They exist so a fleet driver can roll node health up the
	// same way copartd's /healthz reports it.
	Phase      string
	FailStreak int
	// Arrival and Lifetime are the node's virtual arrival time and drawn
	// lifetime (in periods) under RunChurn — deterministic, drawn from
	// the trace processes before any node executes. A fixed-fleet Run
	// reports Arrival 0 and Lifetime == Config.Periods.
	Arrival  float64
	Lifetime int
}

// HealthRollup counts nodes by controller condition at run end.
type HealthRollup struct {
	// Healthy counts nodes that finished outside the degraded phase;
	// Degraded counts the rest. MaxFailStreak is the worst node's
	// consecutive-failure count.
	Healthy       int
	Degraded      int
	MaxFailStreak int
}

// BlockStats is one dispatch block's telemetry, reported so regressions
// localize: a latency shift confined to a few blocks points at their
// workloads (dispatch), a uniform shift at the period loop (solve), and
// a growing Result.StripeMerge at the telemetry merge itself. Lo, Hi,
// Periods, Samples, and Stride are deterministic (identical at any
// worker count); P50 and P99 are wall-clock figures over the block's
// kept samples.
type BlockStats struct {
	// Lo and Hi bound the block's node range [Lo, Hi).
	Lo, Hi int
	// Periods counts the block's post-profiling control periods; Samples
	// of them were kept, every Stride-th (see stripe.go).
	Periods int
	Samples int
	Stride  int
	// P50 and P99 are nearest-rank percentiles of the block's kept
	// period latencies.
	P50, P99 time.Duration
}

// Result aggregates the fleet run.
type Result struct {
	// Nodes holds per-node outcomes, by node index. This is the
	// deterministic part of the result.
	Nodes []NodeResult
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
	// TotalPeriods is the number of control periods executed fleet-wide;
	// PeriodsPerSec is TotalPeriods/Elapsed (node-periods per second).
	TotalPeriods  int
	PeriodsPerSec float64
	// P50 and P99 are percentiles of the per-period wall-clock latency
	// across every node's post-profiling control periods, computed over
	// the stripes' systematic samples with each sample weighted by its
	// stripe's stride (stripe.go documents the sampling semantics).
	P50, P99 time.Duration
	// Block is the resolved dispatch block size and Blocks the per-block
	// telemetry, in block order. StripeMerge is the wall-clock cost of
	// folding the stripes into this Result at run end.
	Block       int
	Blocks      []BlockStats
	StripeMerge time.Duration
	// CacheHits/CacheMisses/CacheEvictions and ScoreHits/ScoreMisses sum
	// the per-node counters (deterministic). Shared is the process-wide
	// L2 delta over this run: its hit/miss split depends on which node
	// solved a state first and is the one nondeterministic cache figure.
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	ScoreHits      uint64
	ScoreMisses    uint64
	Shared         machine.SharedCacheStats
	// Pool is the runtime pool's activity over this run. The hit/miss
	// split is timing-dependent under parallel execution (whichever node
	// finishes first donates its runtime), so it is reported here rather
	// than per node; Carries, by contrast, is deterministic (in-block
	// handoffs follow the fixed block structure).
	Pool PoolStats
	// Health rolls node conditions up (deterministic).
	Health HealthRollup
	// Churn describes the virtual arrival/departure schedule when the
	// run came from RunChurn (deterministic); zero for a fixed fleet.
	Churn ChurnStats

	// arena backs every node's Ways/MBA slices, one flat allocation
	// pre-sliced per node, reused across RunInto calls on the same
	// Result.
	arena []int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("fleet: %d nodes", c.Nodes)
	}
	if c.Periods < 1 {
		return fmt.Errorf("fleet: %d periods per node", c.Periods)
	}
	return nil
}

// fleetClock is the wall-clock source behind the fleet's throughput
// and latency figures — the one intentionally nondeterministic input.
// It is a package variable so tests can substitute a scripted clock
// and assert exact percentile values (see clock_test.go); production
// always reads the real monotonic clock.
//
//copart:wallclock fleet throughput and latency percentiles measure real elapsed time
var fleetClock = time.Now

// nodeSeed derives node i's RNG seed from the fleet seed. The golden-ratio
// stride keeps neighboring nodes' streams uncorrelated.
func (c Config) nodeSeed(i int) int64 {
	return c.Seed + i64(0x9E3779B97F4A7C15)*int64(i)
}

// i64 reinterprets an unsigned 64-bit constant as int64.
func i64(u uint64) int64 { return int64(u) }

// mixKinds is the mix-kind table, hoisted so node setup does not rebuild
// the slice per node.
var mixKinds = workloads.MixKinds()

// phaseDegradedName is core.PhaseDegraded.String(), hoisted off the
// per-node accumulate path.
var phaseDegradedName = core.PhaseDegraded.String()

// testNodeTarget, when non-nil, supplies a node's control target (tests
// wrap the machine with fault injection here) and the resilience policy
// for its manager. A non-nil hook forces every node down the unpooled
// path: wrapped targets carry per-node fault state the pool cannot
// reinitialize.
var testNodeTarget func(node int, m *machine.Machine) (core.Target, core.Resilience)

// nodeRuntime is one node's reusable substrate: the seeded RNG, the
// simulated machine, the resource manager, and the mix cache it draws
// workloads from. Pooled runtimes keep all of it warm between nodes;
// runNode reinitializes each piece in place, which is exact (see the
// package comment) and allocation-free at steady state.
type nodeRuntime struct {
	key uint64 // poolKey of the machine configuration it was built for
	src rand.Source
	rng *rand.Rand
	m   *machine.Machine
	mgr *core.Manager
	mix *workloads.MixCache
}

// poolKey fingerprints a machine configuration for the runtime pool and
// the mix-cache registry. Config.Digest covers the solver-visible
// fields; the measurement-noise parameters are folded in on top because
// two configs differing only in noise produce different counter streams
// and must never share runtimes. Configs with a custom BW.Curve are not
// fingerprintable (a func value has no digest) and bypass both caches.
func poolKey(c machine.Config) uint64 {
	const prime = 0x100000001b3
	h := c.Digest()
	h = (h ^ math.Float64bits(c.MeasurementNoise)) * prime
	h = (h ^ uint64(c.NoiseSeed)) * prime
	return h
}

// poolMaxFree caps the free list. Under churn the live population can
// spike and then drain; the cap bounds how many idle runtimes (each a
// full machine + manager) the pool retains from such a spike. At the
// default ~20-runtime working set of a 1-config fleet the cap is never
// reached; it exists so a pathological churn schedule cannot pin
// unbounded memory.
const poolMaxFree = 512

// runtimePool holds idle node runtimes, keyed by machine-config
// fingerprint. It survives across Run calls on purpose: a warm
// benchmark iteration reuses the previous iteration's substrates, which
// is what makes the steady-state fleet period allocation-free. The
// hit/miss/eviction counters accumulate process-wide; Run and RunChurn
// report per-run deltas (Result.Pool).
var runtimePool struct {
	sync.Mutex
	free      []*nodeRuntime
	hits      uint64
	misses    uint64
	evictions uint64
}

// PoolStats reports the runtime pool's activity over one run. Hits are
// nodes that popped a pooled runtime, Misses nodes that built fresh
// substrates on the poolable path, Evictions runtimes dropped because
// the free list was at capacity. Carries counts block-local handoffs —
// a runtime passed directly from a departing node to the next node of
// the same dispatch block, skipping the pool lock entirely — so
// Hits+Carries is the total number of nodes that reused a warm
// runtime. Free is the free-list size after the run. The hit/miss
// split is timing-dependent under parallel execution (which block
// finishes first determines who hits), so it lives on Result, not in
// the deterministic NodeResults; Carries follows the fixed block
// structure and is deterministic.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Carries   uint64
	Free      int
}

// poolSnapshot reads the cumulative pool counters.
func poolSnapshot() PoolStats {
	p := &runtimePool
	p.Lock()
	defer p.Unlock()
	return PoolStats{Hits: p.hits, Misses: p.misses, Evictions: p.evictions, Free: len(p.free)}
}

// poolDelta subtracts a snapshot taken at run start from the current
// counters, keeping the end-of-run free-list size.
func poolDelta(before PoolStats) PoolStats {
	now := poolSnapshot()
	return PoolStats{
		Hits:      now.Hits - before.Hits,
		Misses:    now.Misses - before.Misses,
		Evictions: now.Evictions - before.Evictions,
		Free:      now.Free,
	}
}

// getRuntime pops a pooled runtime built for the given configuration,
// or returns nil when none is available.
//
//copart:noalloc
func getRuntime(key uint64) *nodeRuntime {
	p := &runtimePool
	p.Lock()
	defer p.Unlock()
	for i := len(p.free) - 1; i >= 0; i-- {
		if p.free[i].key != key {
			continue
		}
		rt := p.free[i]
		last := len(p.free) - 1
		p.free[i] = p.free[last]
		p.free[last] = nil
		p.free = p.free[:last]
		p.hits++
		return rt
	}
	p.misses++
	return nil
}

// putRuntime returns a runtime to the pool. Only runtimes that finished
// their node cleanly come back; error paths drop theirs, so a runtime
// wedged by a failure can never leak state into a later node. A full
// free list (poolMaxFree) drops the runtime instead — counted as an
// eviction.
//
//copart:noalloc
func putRuntime(rt *nodeRuntime) {
	p := &runtimePool
	p.Lock()
	if len(p.free) >= poolMaxFree {
		p.evictions++
	} else {
		p.free = append(p.free, rt) //copart:allocok amortized free-list growth; steady state reuses capacity
	}
	p.Unlock()
}

// profileKey identifies one profiling outcome: everything a node's
// profiling phase depends on. The machine fingerprint (poolKey) pins
// the hardware, solver constants, and noise parameters; the mix kind
// and application count pin the exact workload models (the mix cache is
// deterministic); and every fleet manager is configured identically
// (DefaultParams, full-LLC envelope). Profiling consumes no RNG, so the
// node seed does not enter the key; it computes no fairness score, so
// the streaming-fairness arm does not either (a memo captured under one
// arm restores bit-identically under the other — core.ProfileMemo holds
// only probe IPS values and classifier seeds).
type profileKey struct {
	mach  uint64
	kind  workloads.MixKind
	nApps int
}

// profileEntry pairs the machine checkpoint with the manager memo; the
// two restore together or not at all.
type profileEntry struct {
	hot machine.HotState
	pm  *core.ProfileMemo
}

// profileMap is the immutable registry snapshot getProfileMemo reads.
type profileMap = map[profileKey]*profileEntry

// profileMemos is the process-wide registry of profiling outcomes.
// Profiling is the most expensive phase of a node's life — 3 probe
// periods per application, each a full solve-and-sample pass — and a
// fleet draws the same few dozen (kind, nApps) combinations thousands
// of times. The first node to profile a combination runs it live and
// checkpoints the result; every later node restores the checkpoint,
// bit-identically (profiling is RNG-free and, noise-free, every Step
// is deterministic — see core.ProfileMemo).
//
// The registry is copy-on-write: reads (once per node) load an
// immutable map snapshot with a single atomic, and the rare writes (a
// few dozen per machine configuration, ever) copy the map under the
// mutex and publish the successor. The previous mutex-per-read design
// cost a lock round-trip per node and serialized every worker through
// one cache line. Entries are immutable once stored; a concurrent
// double-compute publishes identical values twice.
var profileMemos struct {
	sync.Mutex // serializes writers
	snap       atomic.Pointer[profileMap]
}

// getProfileMemo returns the memoized profiling outcome, or nil.
//
//copart:noalloc
func getProfileMemo(k profileKey) *profileEntry {
	m := profileMemos.snap.Load()
	if m == nil {
		return nil
	}
	return (*m)[k]
}

// putProfileMemo publishes a profiling outcome.
func putProfileMemo(k profileKey, e *profileEntry) {
	r := &profileMemos
	r.Lock()
	defer r.Unlock()
	next := make(profileMap)
	if cur := r.snap.Load(); cur != nil {
		for ck, cv := range *cur {
			next[ck] = cv
		}
	}
	next[k] = e
	r.snap.Store(&next)
}

// mixCaches shares one immutable workloads.MixCache per machine
// configuration across all nodes, runs, and pool entries. The cache is
// read-only after construction, so sharing it cannot couple nodes.
var mixCaches struct {
	sync.Mutex
	byKey map[uint64]*workloads.MixCache
}

// mixCacheFor returns the shared mix cache for a configuration,
// building it on first sight. Construction holds the registry lock, so
// concurrent first nodes serialize instead of racing duplicate builds.
func mixCacheFor(mcfg machine.Config, key uint64) (*workloads.MixCache, error) {
	c := &mixCaches
	c.Lock()
	defer c.Unlock()
	if mc, ok := c.byKey[key]; ok {
		return mc, nil
	}
	mc, err := workloads.NewMixCache(mcfg)
	if err != nil {
		return nil, err
	}
	if c.byKey == nil {
		c.byKey = make(map[uint64]*workloads.MixCache)
	}
	c.byKey[key] = mc
	return mc, nil
}

// runNode executes one node end to end — periods control periods after
// profiling (cfg.Periods for a fixed fleet, the node's drawn lifetime
// under churn) — pushing its per-period wall-clock latencies into the
// block's stripe and writing its final allocation into the
// caller-provided ways/mba storage (cap ≥ maxMixApps slices of the
// caller's arena). carry, when non-nil, is the previous in-block node's
// runtime, reused directly when this node is poolable for the same
// configuration. On success the node's runtime is returned for the next
// in-block node to carry (nil on the unpoolable paths); error paths
// drop it.
func runNode(cfg Config, node, periods int, ways, mba []int, carry *nodeRuntime, st *blockStripe) (NodeResult, *nodeRuntime, error) {
	mcfg := cfg.Machine
	if mcfg.LLCWays == 0 {
		mcfg = machine.DefaultConfig()
	}
	maxApps := mcfg.LLCWays
	if mcfg.Cores < maxApps {
		maxApps = mcfg.Cores
	}
	if maxApps > maxMixApps {
		maxApps = maxMixApps
	}
	if maxApps < 3 {
		return NodeResult{}, nil, fmt.Errorf("fleet: machine too small for a mix (max %d apps)", maxApps)
	}

	fingerprintable := mcfg.BW.Curve == nil
	poolable := fingerprintable && !cfg.NoPool && testNodeTarget == nil
	key := uint64(0)
	if fingerprintable {
		key = poolKey(mcfg)
	}
	var rt *nodeRuntime
	if carry != nil {
		if poolable && carry.key == key {
			rt = carry
			st.poolCarries++
		} else {
			// A carried runtime this node cannot use (unreachable within one
			// run — blocks share a Config — but never leak it).
			putRuntime(carry)
		}
	}
	if rt == nil && poolable {
		rt = getRuntime(key)
	}
	if rt == nil {
		rt = &nodeRuntime{key: key}
	}

	seed := cfg.nodeSeed(node)
	if rt.src == nil {
		rt.src = &nodeSource{}
		rt.rng = rand.New(rt.src)
	}
	// Reseeding the retained source reproduces exactly the stream a
	// freshly constructed one would emit: a nodeSource's whole state is
	// the one word Seed stores (see rng.go).
	rt.src.Seed(seed)
	kind := mixKinds[rt.rng.Intn(len(mixKinds))]
	nApps := 3 + rt.rng.Intn(maxApps-2) // 3..maxApps

	var err error
	if rt.m == nil {
		if rt.m, err = machine.New(mcfg, machine.WithSolveCache()); err != nil {
			return NodeResult{}, nil, err
		}
	} else {
		rt.m.Reset()
	}
	if rt.mix == nil {
		if fingerprintable {
			rt.mix, err = mixCacheFor(mcfg, key)
		} else {
			rt.mix, err = workloads.NewMixCache(mcfg)
		}
		if err != nil {
			return NodeResult{}, nil, err
		}
	}
	models, err := rt.mix.Mix(kind, nApps)
	if err != nil {
		return NodeResult{}, nil, err
	}
	for _, model := range models {
		if err := rt.m.AddApp(model); err != nil {
			return NodeResult{}, nil, err
		}
	}
	if rt.mgr == nil {
		target := core.Target(rt.m)
		var resil core.Resilience
		if testNodeTarget != nil {
			target, resil = testNodeTarget(node, rt.m)
		}
		if rt.mgr, err = core.NewManager(target, core.DefaultParams(), rt.mix.StreamRef(),
			core.Envelope{LoWay: 0, Ways: mcfg.LLCWays}, rt.rng); err != nil {
			return NodeResult{}, nil, err
		}
		rt.mgr.Resilience = resil
		// The fleet measures per-node latency with its own clock
		// (fleetClock, above) and never reads the manager's ExploreTimes
		// journal, so the per-step wall-clock telemetry reads would be
		// pure overhead — two syscall-backed time.Now calls per explored
		// period across every node. A frozen clock keeps the journal's
		// shape (one entry per explore step) at zero cost.
		rt.mgr.SetClock(func() time.Time { return time.Time{} })
	} else if err := rt.mgr.Reuse(); err != nil {
		return NodeResult{}, nil, err
	}
	mgr := rt.mgr
	// Fleet managers score fairness with the streaming tracker unless
	// the run opted back into the batch arm (see Config.BatchFairness).
	// Assigned on both the fresh and the reused path, before profiling,
	// so pooled runtimes cannot leak the previous run's arm.
	feats := core.DefaultFeatures()
	feats.StreamingFairness = !cfg.BatchFairness
	mgr.Features = feats

	res := NodeResult{Node: node, Mix: kind.String(), Apps: nApps, Lifetime: periods}
	// Memoized profiling: a poolable, noise-free node's whole profiling
	// phase is a pure function of (machine config, mix kind, app count),
	// so the first node to run it checkpoints the outcome and every later
	// node restores it in place — bit-identical (the golden test runs the
	// NoPool reference down the live path below) and orders of magnitude
	// cheaper than the 3·apps probe periods. NoPool and fault-injected
	// nodes always profile live.
	memoable := poolable && mcfg.MeasurementNoise == 0
	var pKey profileKey
	var pe *profileEntry
	if memoable {
		pKey = profileKey{mach: key, kind: kind, nApps: nApps}
		pe = getProfileMemo(pKey)
	}
	if pe != nil {
		if err := rt.m.RestoreHotState(pe.hot); err != nil {
			return NodeResult{}, nil, err
		}
		if err := mgr.RestoreProfileMemo(pe.pm); err != nil {
			return NodeResult{}, nil, err
		}
	} else {
		if err := mgr.Profile(); err != nil {
			return NodeResult{}, nil, err
		}
		if memoable {
			if hot, err := rt.m.CaptureHotState(); err == nil {
				if pm := mgr.ExportProfileMemo(); pm != nil {
					putProfileMemo(pKey, &profileEntry{hot: hot, pm: pm})
				}
			}
		}
	}
	for p := 0; p < periods; p++ {
		// Periods the stripe's sampler would discard skip both clock
		// reads — the sampler's keep/skip schedule is deterministic
		// (stripe.go), so the skipped reads are too.
		timed := st.lat.due()
		var start time.Time
		if timed {
			start = fleetClock()
		}
		switch mgr.Phase() {
		case core.PhaseExplore:
			_, err = mgr.ExploreStep()
		case core.PhaseIdle:
			_, err = mgr.IdleStep()
		case core.PhaseDegraded:
			err = mgr.DegradedStep()
		default:
			err = fmt.Errorf("fleet: node %d in unexpected phase %v", node, mgr.Phase())
		}
		if timed {
			st.lat.push(fleetClock().Sub(start))
		} else {
			st.lat.skip()
		}
		res.Periods++
		if err != nil {
			if !mgr.Resilience.Enabled {
				return NodeResult{}, nil, err
			}
			// A hardened node absorbs the failed period: the watchdog
			// counts it and trips the EQ fallback at the degrade
			// threshold, exactly as Manager.Run does inline.
			mgr.NotePeriod(true)
			continue
		}
		mgr.NotePeriod(false)
		if mgr.Phase() == core.PhaseProfile {
			// A change detection sends the manager back to profiling;
			// re-profile outside the latency measurement (it spans many
			// probe periods, not one control period).
			res.Reprofiles++
			if err := mgr.Profile(); err != nil {
				if !mgr.Resilience.Enabled {
					return NodeResult{}, nil, err
				}
				mgr.NotePeriod(true)
			}
		}
	}
	res.Unfairness = mgr.LastUnfairness()
	st2 := core.AllocState{Ways: ways, MBA: mba}
	mgr.StateInto(&st2)
	res.Ways, res.MBA = st2.Ways, st2.MBA
	cs := rt.m.SolveCacheDetail()
	res.CacheHits, res.CacheMisses, res.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
	res.ScoreHits, res.ScoreMisses = mgr.ScoreMemoStats()
	res.Phase = mgr.Phase().String()
	res.FailStreak = mgr.FailStreak()
	if poolable {
		return res, rt, nil
	}
	return res, nil, nil
}

// runScratch carries the in-flight run's parameters to blockRun, which
// must be a package-level function (not a closure) so the sequential
// dispatch path allocates nothing. Owned by the single in-flight
// Run/RunChurn (see stripe.go on serialization).
var runScratch struct {
	cfg   Config
	churn bool
	res   *Result
	block int
}

// blockRun executes one dispatch block: its nodes in index order, a
// single runtime carried node to node, every outcome folded into the
// block's stripe. It is the unit parallel.ForEachBlock schedules.
//
//copart:noalloc steady-state dispatch path; pool misses amortize (BenchmarkFleet65536 pins 0 allocs/op)
func blockRun(lo, hi int) error {
	sc := &runScratch
	cfg, res := sc.cfg, sc.res
	st := &stripes[lo/sc.block]
	var carry *nodeRuntime
	for i := lo; i < hi; i++ {
		periods := cfg.Periods
		if sc.churn {
			periods = churnScratch.life[i]
		}
		off := i * 2 * maxMixApps
		//copart:allocok runNode's construction/profiling allocations amortize across the runtime pool; warm blocks run allocation-free
		nr, rt, err := runNode(cfg, i, periods,
			res.arena[off:off:off+maxMixApps],
			res.arena[off+maxMixApps:off+maxMixApps:off+2*maxMixApps],
			carry, st)
		carry = rt
		if err != nil {
			if sc.churn {
				return fmt.Errorf("fleet: churn node %d: %w", i, err)
			}
			return fmt.Errorf("fleet: node %d: %w", i, err)
		}
		if sc.churn {
			nr.Arrival = churnScratch.arrival[i]
		}
		res.Nodes[i] = nr
		st.accumulate(&nr)
	}
	if carry != nil {
		putRuntime(carry)
	}
	return nil
}

// reset prepares a Result for reuse: the backing slices keep their
// capacity (grown as needed), everything else zeroes.
func (res *Result) reset(nodes, nb, block int) {
	ns, arena, blocks := res.Nodes, res.arena, res.Blocks
	if cap(ns) < nodes {
		ns = make([]NodeResult, nodes) //copart:allocok amortized result growth; RunInto steady state reuses capacity
	}
	need := nodes * 2 * maxMixApps
	if cap(arena) < need {
		arena = make([]int, need) //copart:allocok amortized arena growth; RunInto steady state reuses capacity
	}
	if cap(blocks) < nb {
		blocks = make([]BlockStats, nb) //copart:allocok amortized block-stats growth; RunInto steady state reuses capacity
	}
	*res = Result{
		Nodes:  ns[:nodes],
		Blocks: blocks[:nb],
		Block:  block,
		arena:  arena[:need],
	}
}

// runFleet is the engine behind Run and RunChurn: block-batched
// dispatch over a validated fixed-fleet Config (churn synthesizes one
// and supplies per-node periods from the drawn schedule).
func runFleet(cfg Config, churn bool, res *Result) error {
	block := cfg.blockSize()
	nb := (cfg.Nodes + block - 1) / block
	perCap := perStripeCap(cfg.LatSamples, nb)
	res.reset(cfg.Nodes, nb, block)
	growStripes(nb)
	for b := 0; b < nb; b++ {
		lo := b * block
		hi := lo + block
		if hi > cfg.Nodes {
			hi = cfg.Nodes
		}
		stripes[b].reset(lo, hi, perCap)
	}
	runScratch.cfg = cfg
	runScratch.churn = churn
	runScratch.res = res
	runScratch.block = block
	sharedBefore := machine.SharedSolveCacheStats()
	poolBefore := poolSnapshot()
	start := fleetClock()
	err := parallel.ForEachBlock(cfg.Nodes, block, blockRun)
	res.Elapsed = fleetClock().Sub(start)
	runScratch.res = nil
	if err != nil {
		return err
	}
	res.Pool = poolDelta(poolBefore)
	res.aggregate(sharedBefore, nb)
	return nil
}

// RunInto executes the fleet, fanning node blocks across the parallel
// worker pool and writing the outcome into res. A Result passed back
// in is reused in place — its node, block, and arena storage keep
// their capacity — which is what makes a steady-state driver loop
// allocation-free; pass a zero Result to start. On error res holds
// partial state and should not be read.
func RunInto(cfg Config, res *Result) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	return runFleet(cfg, false, res)
}

// Run executes the fleet into a fresh Result. Callers that re-run
// fleets (benchmark loops, long-lived drivers) should hold a Result
// and use RunInto instead to skip the per-run allocations.
func Run(cfg Config) (Result, error) {
	var res Result
	if err := RunInto(cfg, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// aggregate folds the stripes — counters, health, latency samples —
// and the shared-cache delta into the run totals, in deterministic
// block order; common to Run and RunChurn. The integer aggregates are
// sums and maxes of per-block values that are themselves worker-count
// invariant, so they are bit-identical at any worker count (pinned by
// TestShardedAggregationMatchesUnsharded); the latency figures are
// wall-clock. The merge itself is timed into Result.StripeMerge.
//
//copart:noalloc telemetry merge runs once per fleet run over every stripe; scratch reuse keeps it flat
func (res *Result) aggregate(sharedBefore machine.SharedCacheStats, nb int) {
	sharedAfter := machine.SharedSolveCacheStats()
	res.Shared = machine.SharedCacheStats{
		Hits:      sharedAfter.Hits - sharedBefore.Hits,
		Misses:    sharedAfter.Misses - sharedBefore.Misses,
		Evictions: sharedAfter.Evictions - sharedBefore.Evictions,
		Entries:   sharedAfter.Entries,
	}
	mergeStart := fleetClock()
	merged := latMergeScratch[:0]
	var totalW int64
	for b := 0; b < nb; b++ {
		st := &stripes[b]
		res.TotalPeriods += st.periods
		res.CacheHits += st.cacheHits
		res.CacheMisses += st.cacheMisses
		res.CacheEvictions += st.cacheEvictions
		res.ScoreHits += st.scoreHits
		res.ScoreMisses += st.scoreMisses
		res.Health.Healthy += st.healthy
		res.Health.Degraded += st.degraded
		if st.maxFailStreak > res.Health.MaxFailStreak {
			res.Health.MaxFailStreak = st.maxFailStreak
		}
		res.Pool.Carries += st.poolCarries
		// The sampler is done pushing; sorting its buffer in place is fine
		// and gives the per-block percentiles directly.
		buf := st.lat.buf
		sortDurations(buf)
		w := int64(st.lat.stride)
		res.Blocks[b] = BlockStats{
			Lo:      st.lo,
			Hi:      st.hi,
			Periods: int(st.lat.seen),
			Samples: len(buf),
			Stride:  int(st.lat.stride),
			P50:     percentile(buf, 50),
			P99:     percentile(buf, 99),
		}
		for _, v := range buf {
			merged = append(merged, latSample{v: v, w: w}) //copart:allocok amortized merge-scratch growth; steady state reuses capacity
		}
		totalW += int64(len(buf)) * w
	}
	latMergeScratch = merged
	sortLatSamples(merged)
	res.P50 = weightedPercentile(merged, totalW, 50)
	res.P99 = weightedPercentile(merged, totalW, 99)
	res.StripeMerge = fleetClock().Sub(mergeStart)
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.PeriodsPerSec = float64(res.TotalPeriods) / secs
	}
}

// percentile reads the p-th percentile from sorted latencies: the
// nearest-rank definition, sorted[⌈p/100·n⌉−1] (1-indexed rank rounded
// up), so p50 of [a,b] is a and p100 of any sample is the maximum.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted)+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
