package fleet

import (
	"reflect"
	"testing"

	"repro/internal/parallel"
)

// runAtWorkers runs the fleet under a fixed worker count, restoring the
// pool afterwards.
func runAtWorkers(t *testing.T, workers int, cfg Config) Result {
	t.Helper()
	parallel.SetWorkers(workers)
	defer parallel.SetWorkers(0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFleetDeterminism pins the determinism contract: the per-node
// outcomes are a pure function of (Config, node index), so the fleet
// produces bit-identical NodeResults at any worker count. Only the
// wall-clock aggregates (Elapsed, PeriodsPerSec, P50/P99) may differ.
func TestFleetDeterminism(t *testing.T) {
	cfg := Config{Nodes: 12, Periods: 20, Seed: 42}
	seq := runAtWorkers(t, 1, cfg)
	par := runAtWorkers(t, 8, cfg)
	if !reflect.DeepEqual(seq.Nodes, par.Nodes) {
		t.Fatalf("node results differ between 1 and 8 workers:\nseq: %+v\npar: %+v",
			seq.Nodes, par.Nodes)
	}
	again := runAtWorkers(t, 8, cfg)
	if !reflect.DeepEqual(par.Nodes, again.Nodes) {
		t.Fatal("node results differ between identical parallel runs")
	}
}

// TestFleetRun sanity-checks the aggregates on a small fleet.
func TestFleetRun(t *testing.T) {
	res, err := Run(Config{Nodes: 4, Periods: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 4 {
		t.Fatalf("got %d node results, want 4", len(res.Nodes))
	}
	if res.TotalPeriods != 40 {
		t.Fatalf("got %d total periods, want 40", res.TotalPeriods)
	}
	if res.PeriodsPerSec <= 0 {
		t.Fatalf("nonpositive throughput %f", res.PeriodsPerSec)
	}
	if res.P99 < res.P50 {
		t.Fatalf("p99 %v below p50 %v", res.P99, res.P50)
	}
	for _, nr := range res.Nodes {
		if nr.Apps < 3 || nr.Apps > 6 {
			t.Errorf("node %d has %d apps, want 3..6", nr.Node, nr.Apps)
		}
		if nr.Unfairness <= 0 {
			t.Errorf("node %d reported no unfairness", nr.Node)
		}
		if len(nr.Ways) != nr.Apps || len(nr.MBA) != nr.Apps {
			t.Errorf("node %d final state sized %d/%d for %d apps",
				nr.Node, len(nr.Ways), len(nr.MBA), nr.Apps)
		}
		if nr.Phase == "" || nr.Phase == "degraded" || nr.FailStreak != 0 {
			t.Errorf("node %d health = %q streak %d, want healthy in a fault-free fleet",
				nr.Node, nr.Phase, nr.FailStreak)
		}
	}
	if res.Health.Healthy != 4 || res.Health.Degraded != 0 || res.Health.MaxFailStreak != 0 {
		t.Errorf("health rollup %+v, want 4 healthy", res.Health)
	}
}

// TestFleetValidate rejects degenerate configurations.
func TestFleetValidate(t *testing.T) {
	if _, err := Run(Config{Nodes: 0, Periods: 1}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Run(Config{Nodes: 1, Periods: 0}); err == nil {
		t.Error("zero periods accepted")
	}
}
