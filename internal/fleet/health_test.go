package fleet

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/machine"
)

// TestFleetHealthRollup drives one node of a small fleet into degraded
// mode — a permanent counter-read outage beginning after its profiling
// phase, under the default resilience policy — and checks that the
// health rollup separates it from the healthy nodes and surfaces its
// failure streak. The faulted node is wrapped through the test hook, so
// every node runs unpooled; the healthy nodes keep the fail-fast zero
// resilience and must finish untouched.
func TestFleetHealthRollup(t *testing.T) {
	const faulted = 1
	testNodeTarget = func(node int, m *machine.Machine) (core.Target, core.Resilience) {
		if node != faulted {
			return m, core.Resilience{}
		}
		// Profiling spans 3 virtual seconds per application (≤ 18s for the
		// largest mix); from t=25s every counter read fails, forever.
		wrapped, err := faultinject.WrapTarget(m, faultinject.Scenario{
			ReadBursts: []faultinject.Window{{From: 25 * time.Second, To: 1000 * time.Hour}},
		}, nil)
		if err != nil {
			t.Errorf("wrap target: %v", err)
			return m, core.Resilience{}
		}
		return wrapped, core.DefaultResilience()
	}
	defer func() { testNodeTarget = nil }()

	res, err := Run(Config{Nodes: 3, Periods: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Health.Healthy != 2 || res.Health.Degraded != 1 {
		t.Fatalf("health rollup %+v, want 2 healthy / 1 degraded", res.Health)
	}
	if res.Health.MaxFailStreak < 1 {
		t.Errorf("max fail streak %d, want ≥ 1", res.Health.MaxFailStreak)
	}
	for _, nr := range res.Nodes {
		if nr.Node == faulted {
			if nr.Phase != core.PhaseDegraded.String() {
				t.Errorf("faulted node phase %q, want degraded", nr.Phase)
			}
			if nr.FailStreak < 1 {
				t.Errorf("faulted node fail streak %d, want ≥ 1", nr.FailStreak)
			}
			if nr.Periods != 40 {
				t.Errorf("faulted node ran %d periods, want 40 (failed periods still count)", nr.Periods)
			}
			continue
		}
		if nr.Phase == core.PhaseDegraded.String() || nr.FailStreak != 0 {
			t.Errorf("healthy node %d reports %q streak %d", nr.Node, nr.Phase, nr.FailStreak)
		}
	}
}
