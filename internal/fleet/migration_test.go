package fleet

import (
	"math"
	"reflect"
	"testing"
)

// TestFleetStreamingMigration is the golden-trajectory gate for
// defaulting fleet runs onto the streaming Equation-2 tracker: against
// the batch arm (Config.BatchFairness, the published-figures
// reference), every discrete control output — allocations, phase
// trajectory, reprofiles, cache traffic — must be identical, and the
// reported unfairness equal up to streaming-vs-batch float
// accumulation order (the tracker maintains the same sums
// incrementally, so the two arms differ only in rounding).
func TestFleetStreamingMigration(t *testing.T) {
	const tol = 1e-9
	for _, seed := range []int64{1, 42, 1234} {
		cfg := Config{Nodes: 10, Periods: 12, Seed: seed}
		stream := runAtWorkers(t, 2, cfg)
		cfg.BatchFairness = true
		batch := runAtWorkers(t, 2, cfg)
		compareArms(t, "fleet", seed, stream.Nodes, batch.Nodes, tol)
	}
	// Churn stresses the pooled path: a runtime that ran streaming is
	// reused by a batch node and vice versa; the arms must still match.
	ccfg := ChurnConfig{Arrivals: 12, MeanLife: 6, MaxLife: 12, Seed: 42}
	stream := runChurnAtWorkers(t, 2, ccfg)
	ccfg.BatchFairness = true
	batch := runChurnAtWorkers(t, 2, ccfg)
	compareArms(t, "churn", 42, stream.Nodes, batch.Nodes, tol)
}

// compareArms checks per-node equality between the streaming and batch
// fairness arms: bit-identical discrete trajectories, unfairness within
// tol.
func compareArms(t *testing.T, kind string, seed int64, stream, batch []NodeResult, tol float64) {
	t.Helper()
	if len(stream) != len(batch) {
		t.Fatalf("%s seed %d: %d vs %d nodes", kind, seed, len(stream), len(batch))
	}
	for i := range stream {
		s, b := stream[i], batch[i]
		su := s.Unfairness
		s.Unfairness, b.Unfairness = 0, 0
		sw, bw := s.Ways, b.Ways
		sm, bm := s.MBA, b.MBA
		s.Ways, s.MBA, b.Ways, b.MBA = nil, nil, nil, nil
		if !reflect.DeepEqual(s, b) {
			t.Errorf("%s seed %d node %d: discrete trajectory diverges:\nstream: %+v\nbatch:  %+v",
				kind, seed, i, stream[i], batch[i])
			continue
		}
		if !equalInts(sw, bw) || !equalInts(sm, bm) {
			t.Errorf("%s seed %d node %d: allocations diverge: %v/%v vs %v/%v",
				kind, seed, i, sw, sm, bw, bm)
		}
		if d := math.Abs(su - batch[i].Unfairness); d > tol {
			t.Errorf("%s seed %d node %d: unfairness %v vs %v (|Δ|=%g > %g)",
				kind, seed, i, su, batch[i].Unfairness, d, tol)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
