package fleet

import (
	"testing"
	"time"
)

// TestPercentileNearestRank pins the nearest-rank definition,
// sorted[⌈p/100·n⌉−1]: p50 of two samples is the FIRST, p99 of a
// hundred samples is the 99th — one below the maximum — and a
// single-sample distribution answers every percentile with that sample.
// The seed implementation used ⌊p/100·n⌋, which shifted every rank up
// one (p50 of [a,b] read b, p99 of 100 read the maximum).
func TestPercentileNearestRank(t *testing.T) {
	seq := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = time.Duration(i+1) * time.Millisecond
		}
		return s
	}
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	tests := []struct {
		n, p int
		want time.Duration
	}{
		{n: 0, p: 50, want: 0},
		{n: 1, p: 50, want: ms(1)},
		{n: 1, p: 99, want: ms(1)},
		{n: 1, p: 100, want: ms(1)},
		{n: 2, p: 50, want: ms(1)},  // ⌈0.5·2⌉ = rank 1
		{n: 2, p: 51, want: ms(2)},  // ⌈0.51·2⌉ = rank 2
		{n: 4, p: 50, want: ms(2)},  // ⌈0.5·4⌉ = rank 2, not 3
		{n: 5, p: 50, want: ms(3)},  // ⌈0.5·5⌉ = rank 3 (median)
		{n: 15, p: 50, want: ms(8)}, // odd length: true median
		{n: 100, p: 1, want: ms(1)},
		{n: 100, p: 50, want: ms(50)},
		{n: 100, p: 99, want: ms(99)}, // rank 99, not the maximum
		{n: 100, p: 100, want: ms(100)},
		{n: 200, p: 99, want: ms(198)}, // ⌈0.99·200⌉ = rank 198
	}
	for _, tc := range tests {
		if got := percentile(seq(tc.n), tc.p); got != tc.want {
			t.Errorf("percentile(n=%d, p=%d) = %v, want %v", tc.n, tc.p, got, tc.want)
		}
	}
}
