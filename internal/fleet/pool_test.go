package fleet

import (
	"reflect"
	"testing"

	"repro/internal/parallel"
)

// TestFleetPoolGolden pins the pool's exactness contract: a node run on
// a reinitialized pooled runtime produces a NodeResult bit-identical to
// one run on freshly constructed substrates (Config.NoPool), across
// several seeds. The third run exercises actual reuse — by then the
// pool holds the first pooled run's runtimes, so every node of the
// second pooled run lands on a recycled machine/manager/RNG.
func TestFleetPoolGolden(t *testing.T) {
	for _, seed := range []int64{1, 42, 1234} {
		cfg := Config{Nodes: 6, Periods: 8, Seed: seed}
		pooled := runAtWorkers(t, 2, cfg)
		warm := runAtWorkers(t, 2, cfg)
		cfg.NoPool = true
		fresh := runAtWorkers(t, 2, cfg)
		if !reflect.DeepEqual(pooled.Nodes, fresh.Nodes) {
			t.Fatalf("seed %d: pooled nodes differ from NoPool nodes:\npooled: %+v\nfresh:  %+v",
				seed, pooled.Nodes, fresh.Nodes)
		}
		if !reflect.DeepEqual(warm.Nodes, fresh.Nodes) {
			t.Fatalf("seed %d: warm pooled nodes differ from NoPool nodes:\nwarm:  %+v\nfresh: %+v",
				seed, warm.Nodes, fresh.Nodes)
		}
	}
}

// TestFleetSteadyStateAllocs pins the tentpole: once the runtime pool,
// the mix cache, both solve-cache tiers, the stripes, and a reused
// Result are warm, a sequential RunInto allocates NOTHING — not a
// bounded fixed cost, zero. Block dispatch calls a package-level
// function inline, the stripes and merge scratch retain capacity, and
// the per-node period loop was already allocation-free.
func TestFleetSteadyStateAllocs(t *testing.T) {
	cfg := Config{Nodes: 8, Periods: 5, Seed: 3}
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	var res Result
	for i := 0; i < 2; i++ { // warm the pool, every cache tier, and res
		if err := RunInto(cfg, &res); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(5, func() {
		if err := RunInto(cfg, &res); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state fleet run allocates %.1f times, want 0", avg)
	}
}
