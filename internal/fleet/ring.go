package fleet

import (
	"slices"
	"sync/atomic"
	"time"
)

// Latency bookkeeping. Before churn, Run sized a per-run sample slice
// at Nodes×Periods — fine at 256 nodes, a 1.3 MB allocation per run at
// 16384, and unsizable under churn where per-node periods vary. The
// ring replaces it with a fixed preallocated buffer: every period
// latency is pushed into the next slot (wrapping), and the percentiles
// are computed by nearest-rank over a reusable sort scratch. Memory is
// bounded and per-run allocations drop to zero once the scratch has
// grown.
//
// The trade: with more than latRingCap period samples in one run, the
// percentiles cover the most recent latRingCap samples instead of all
// of them — a 65536-sample window, which at 16384 nodes × 10 periods
// still spans 40 % of the run. The deterministic outputs (NodeResults)
// are unaffected; only the wall-clock percentile figures window.
//
// Because the ring is package state, Run and RunChurn must not execute
// concurrently with each other — their samples would interleave. (They
// never have: both fan out internally and the pool's warm-reuse design
// already assumes serialized runs.)

// latRingCap is the ring capacity: a power of two so the slot index is
// a mask, sized to hold every sample of a 4096-node default run with
// headroom. 65536 slots × 8 bytes = 512 KiB, allocated once.
const latRingCap = 1 << 16

// latRing is the fleet-wide latency ring. seq is the number of pushes
// since the last reset; slot i&(latRingCap−1) holds push i. Slots are
// atomics because ForEach workers push concurrently; each slot is
// written by exactly one push per lap, so a Load observes either this
// run's value or a stale lap that reset() already excluded via seq.
var latRing struct {
	seq atomic.Uint64
	buf [latRingCap]atomic.Int64
}

// latScratch is the reusable percentile sort scratch; owned by the
// single in-flight Run/RunChurn (see above).
var latScratch []time.Duration

// latReset starts a new run's sample window.
func latReset() { latRing.seq.Store(0) }

// latPush records one period latency. Safe for concurrent use.
//
//copart:noalloc
func latPush(d time.Duration) {
	i := latRing.seq.Add(1) - 1
	latRing.buf[i&(latRingCap-1)].Store(int64(d))
}

// latPercentiles sorts the ring's current window into the reusable
// scratch and returns the nearest-rank p50 and p99.
func latPercentiles() (p50, p99 time.Duration) {
	n := latRing.seq.Load()
	if n > latRingCap {
		n = latRingCap
	}
	if cap(latScratch) < int(n) {
		latScratch = make([]time.Duration, n) //copart:allocok amortized scratch growth; steady state reuses capacity
	}
	latScratch = latScratch[:n]
	for i := range latScratch {
		latScratch[i] = time.Duration(latRing.buf[i].Load())
	}
	slices.Sort(latScratch)
	return percentile(latScratch, 50), percentile(latScratch, 99)
}
