package fleet

// nodeSource is the fleet's math/rand source: splitmix64 over the node
// seed. math/rand's default lagged-Fibonacci source pays a ~10µs
// 607-word scramble on every Seed call — per fleet *node*, that was 18%
// of a Fleet256 period sweep — while splitmix64 seeds by storing one
// word. The generator is statistically strong for the fleet's needs
// (mix composition draws and the manager's exploration jitter), and
// determinism only requires that equal seeds yield equal streams, which
// holds trivially. It implements rand.Source64, so rand.Rand consumes
// Uint64 directly.
//
// Reseeding a retained nodeSource is exactly equivalent to constructing
// a fresh one — the entire state is the one word Seed stores — which is
// the property the runtime pool's exactness contract needs (pooled and
// fresh substrates must produce bit-identical NodeResults).
type nodeSource struct {
	state uint64
}

// Seed resets the stream to the canonical position for seed.
//
//copart:noalloc
func (s *nodeSource) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 returns the next stream word (splitmix64 finalizer over a
// Weyl sequence).
//
//copart:noalloc
func (s *nodeSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 satisfies rand.Source for consumers that do not use Source64.
//
//copart:noalloc
func (s *nodeSource) Int63() int64 { return int64(s.Uint64() >> 1) }
