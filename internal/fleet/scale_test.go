package fleet

import (
	"reflect"
	"testing"
)

// TestFleet4096Determinism extends the determinism contract to the
// benchmark's largest scale: 4096 nodes produce bit-identical
// NodeResults at any worker count, pooled runtimes and all. Short mode
// skips it (two full 4096-node sweeps).
func TestFleet4096Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-node fleet sweep in -short mode")
	}
	cfg := Config{Nodes: 4096, Periods: 2, Seed: 99}
	seq := runAtWorkers(t, 1, cfg)
	par := runAtWorkers(t, 8, cfg)
	if !reflect.DeepEqual(seq.Nodes, par.Nodes) {
		for i := range seq.Nodes {
			if !reflect.DeepEqual(seq.Nodes[i], par.Nodes[i]) {
				t.Fatalf("node %d differs between 1 and 8 workers:\nseq: %+v\npar: %+v",
					i, seq.Nodes[i], par.Nodes[i])
			}
		}
		t.Fatal("node results differ between 1 and 8 workers")
	}
	if res := seq.Health; res.Healthy != cfg.Nodes || res.Degraded != 0 {
		t.Errorf("health rollup %+v, want %d healthy", res, cfg.Nodes)
	}
}
