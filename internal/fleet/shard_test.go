package fleet

import (
	"reflect"
	"testing"
)

// TestShardedAggregationMatchesUnsharded is the striping property test:
// every deterministic output — the NodeResults, the fleet-wide counter
// sums, the health rollup, the carry count, and the structural
// per-block figures — is bit-identical whether the blocks execute on
// one worker or race across many, and identical to a naive recompute
// from the NodeResults themselves. Run under -race this doubles as the
// data-race check over the striped counters.
func TestShardedAggregationMatchesUnsharded(t *testing.T) {
	cfg := Config{Nodes: 48, Periods: 6, Seed: 21, Block: 7} // 7 full blocks + a short one
	base := runAtWorkers(t, 1, cfg)

	// Naive recompute from the per-node results must equal the striped
	// aggregation exactly.
	var periods int
	var cacheHits, cacheMisses, cacheEvictions, scoreHits, scoreMisses uint64
	var health HealthRollup
	for _, nr := range base.Nodes {
		periods += nr.Periods
		cacheHits += nr.CacheHits
		cacheMisses += nr.CacheMisses
		cacheEvictions += nr.CacheEvictions
		scoreHits += nr.ScoreHits
		scoreMisses += nr.ScoreMisses
		if nr.Phase == phaseDegradedName {
			health.Degraded++
		} else {
			health.Healthy++
		}
		if nr.FailStreak > health.MaxFailStreak {
			health.MaxFailStreak = nr.FailStreak
		}
	}
	if base.TotalPeriods != periods {
		t.Errorf("striped TotalPeriods %d, naive %d", base.TotalPeriods, periods)
	}
	if base.CacheHits != cacheHits || base.CacheMisses != cacheMisses || base.CacheEvictions != cacheEvictions {
		t.Errorf("striped cache counters %d/%d/%d, naive %d/%d/%d",
			base.CacheHits, base.CacheMisses, base.CacheEvictions, cacheHits, cacheMisses, cacheEvictions)
	}
	if base.ScoreHits != scoreHits || base.ScoreMisses != scoreMisses {
		t.Errorf("striped score counters %d/%d, naive %d/%d",
			base.ScoreHits, base.ScoreMisses, scoreHits, scoreMisses)
	}
	if base.Health != health {
		t.Errorf("striped health %+v, naive %+v", base.Health, health)
	}

	// Per-block structure: bounds tile [0, Nodes) and the block period
	// counts sum to the total.
	if base.Block != cfg.Block || len(base.Blocks) != (cfg.Nodes+cfg.Block-1)/cfg.Block {
		t.Fatalf("block structure: size %d, %d blocks", base.Block, len(base.Blocks))
	}
	blockPeriods := 0
	for i, bs := range base.Blocks {
		if bs.Lo != i*cfg.Block || (bs.Hi != bs.Lo+cfg.Block && bs.Hi != cfg.Nodes) {
			t.Errorf("block %d bounds [%d, %d)", i, bs.Lo, bs.Hi)
		}
		if bs.Stride < 1 || bs.Samples < 1 {
			t.Errorf("block %d: stride %d, %d samples", i, bs.Stride, bs.Samples)
		}
		blockPeriods += bs.Periods
	}
	if blockPeriods != base.TotalPeriods {
		t.Errorf("block periods sum %d, total %d", blockPeriods, base.TotalPeriods)
	}

	for _, w := range []int{4, 16} {
		res := runAtWorkers(t, w, cfg)
		if !reflect.DeepEqual(res.Nodes, base.Nodes) {
			t.Fatalf("workers=%d: NodeResults diverge from sequential", w)
		}
		if res.TotalPeriods != base.TotalPeriods ||
			res.CacheHits != base.CacheHits || res.CacheMisses != base.CacheMisses ||
			res.CacheEvictions != base.CacheEvictions ||
			res.ScoreHits != base.ScoreHits || res.ScoreMisses != base.ScoreMisses ||
			res.Health != base.Health || res.Pool.Carries != base.Pool.Carries {
			t.Errorf("workers=%d: deterministic aggregates diverge from sequential", w)
		}
		if res.Block != base.Block || len(res.Blocks) != len(base.Blocks) {
			t.Fatalf("workers=%d: block structure diverges", w)
		}
		for i := range res.Blocks {
			got, want := res.Blocks[i], base.Blocks[i]
			// The structural fields are deterministic; P50/P99 are
			// wall-clock and excluded.
			if got.Lo != want.Lo || got.Hi != want.Hi || got.Periods != want.Periods ||
				got.Samples != want.Samples || got.Stride != want.Stride {
				t.Errorf("workers=%d block %d: structure %+v, sequential %+v", w, i, got, want)
			}
		}
	}
}

// TestFleetRunIntoReuseMatchesFresh pins that a reused Result is
// indistinguishable from a fresh one — including shrinking: a large run
// followed by a small one into the same Result must not leak the large
// run's nodes or blocks.
func TestFleetRunIntoReuseMatchesFresh(t *testing.T) {
	big := Config{Nodes: 24, Periods: 4, Seed: 9, Block: 5}
	small := Config{Nodes: 6, Periods: 3, Seed: 10, Block: 2}
	var reused Result
	if err := RunInto(big, &reused); err != nil {
		t.Fatal(err)
	}
	if err := RunInto(small, &reused); err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reused.Nodes, fresh.Nodes) {
		t.Errorf("reused Result nodes diverge from fresh")
	}
	if len(reused.Nodes) != small.Nodes || len(reused.Blocks) != 3 {
		t.Errorf("reused Result kept stale length: %d nodes, %d blocks", len(reused.Nodes), len(reused.Blocks))
	}
	if reused.Health != fresh.Health || reused.TotalPeriods != fresh.TotalPeriods {
		t.Errorf("reused aggregates diverge: %+v vs %+v", reused.Health, fresh.Health)
	}
}
