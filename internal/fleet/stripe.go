package fleet

import (
	"slices"
	"time"
)

// Striped telemetry. Before blocks, every period latency went through
// one global atomic ring (65536 slots) and the fleet counters were
// summed from NodeResults in a final O(nodes) pass. The ring had two
// problems at 65536+ nodes: every worker hammered one cache line (the
// ring sequence counter) once per period, and a single large run
// pushed more samples than the ring held, silently windowing the
// percentiles to the most recent 65536 periods — a tail sample, not a
// run sample.
//
// Both are replaced by per-block stripes: each dispatch block (see
// fleet.go) owns a blockStripe holding a deterministic latency sampler
// and the block's share of every fleet counter. A block is executed by
// exactly one worker at a time, so stripe writes are plain stores —
// no atomics, no cross-core line bouncing — and the stripes are merged
// in block order at run end, which keeps every deterministic aggregate
// bit-identical at any worker count (integer sums and maxes over
// per-block values that are themselves worker-count invariant).
//
// Sampling semantics (the fix for the ring's windowing): each stripe
// keeps a systematic sample of its period latencies — every stride-th
// period, stride a power of two that starts at 1 and doubles whenever
// the stripe's buffer fills (compacting the buffer to every other kept
// sample, which preserves the invariant "buf[i] is the latency of push
// index i·stride"). The kept set therefore always spans the whole run
// uniformly: a run pushing any number of periods ends with between
// max/2 and max samples evenly spaced from its first period to its
// last, instead of a rolling window over its tail. Percentiles over
// the merged stripes weight each kept sample by its stripe's final
// stride, so a stripe that compacted twice counts each sample four
// periods' worth. *Which* periods are sampled is a pure function of
// (block bounds, period index) — never of timing or worker count — so
// the sampled population is identical at any -parallel setting; only
// the measured durations themselves are nondeterministic.
//
// Unsampled periods skip both fleetClock reads entirely (see runNode),
// so past the first compaction the sampler also halves the fleet's
// clock syscall traffic, then quarters it, and so on.
//
// Because the stripes are package state, Run and RunChurn must not
// execute concurrently with each other. (They never have: both fan out
// internally, and the pool's warm-reuse design already assumes
// serialized runs.)

// defaultLatSamples is the fleet-wide sample budget when
// Config.LatSamples is zero. 16384 systematic samples pin the p50/p99
// of a 131072-node run to well under a tenth of a percentile rank —
// the retired 65536-slot ring bought no more accuracy, it just
// windowed to the tail — and every unsampled period skips two clock
// reads, so the smaller budget also quarters the fleet's residual
// syscall traffic on large runs. Raise Config.LatSamples to trade
// clock reads for resolution.
const defaultLatSamples = 1 << 14

// latSampler keeps a deterministic systematic sample of a stream of
// period latencies: every stride-th pushed value, stride doubling (and
// the kept set compacting by half) whenever the buffer reaches max.
type latSampler struct {
	buf    []time.Duration
	stride uint64 // power of two; buf[i] holds push index i·stride
	seen   uint64 // pushes observed (sampled + skipped)
	max    int    // buffer bound for this run
}

// reset starts a new run's sample stream, keeping the buffer's
// capacity.
//
//copart:noalloc
func (s *latSampler) reset(max int) {
	if max < 2 {
		max = 2
	}
	s.buf = s.buf[:0]
	s.stride = 1
	s.seen = 0
	s.max = max
}

// due reports whether the next push will be kept — callers use it to
// skip the latency measurement (two clock reads) for periods the
// sampler would discard anyway.
//
//copart:noalloc
func (s *latSampler) due() bool { return s.seen%s.stride == 0 }

// skip records one unsampled period.
//
//copart:noalloc
func (s *latSampler) skip() { s.seen++ }

// push records one period latency, keeping it if the current push
// index is a multiple of the stride.
//
//copart:noalloc
func (s *latSampler) push(d time.Duration) {
	if s.seen%s.stride == 0 {
		if len(s.buf) >= s.max {
			s.compact()
		}
		if s.seen%s.stride == 0 { // still due under the possibly-doubled stride
			s.buf = append(s.buf, d) //copart:allocok bounded by max; capacity is retained across runs
		}
	}
	s.seen++
}

// compact halves the kept set to every other sample and doubles the
// stride, preserving the invariant that buf[i] is push index i·stride.
//
//copart:noalloc
func (s *latSampler) compact() {
	half := 0
	for i := 0; i < len(s.buf); i += 2 {
		s.buf[half] = s.buf[i]
		half++
	}
	s.buf = s.buf[:half]
	s.stride *= 2
}

// blockStripe is one dispatch block's private telemetry shard: the
// latency sampler plus the block's share of every fleet counter.
// Exactly one worker owns a stripe at a time (blocks are the dispatch
// unit), so the fields are plain — the merge at run end is the only
// cross-block read, and it happens after the fan-out joins.
type blockStripe struct {
	lo, hi int // node range [lo, hi)
	lat    latSampler

	periods        int
	reprofiles     int
	cacheHits      uint64
	cacheMisses    uint64
	cacheEvictions uint64
	scoreHits      uint64
	scoreMisses    uint64
	healthy        int
	degraded       int
	maxFailStreak  int
	poolCarries    uint64 // runtimes handed node-to-node without a pool round-trip
}

// reset prepares the stripe for a run over nodes [lo, hi) with the
// given per-stripe sample bound.
//
//copart:noalloc
func (st *blockStripe) reset(lo, hi, latMax int) {
	st.lat.reset(latMax)
	*st = blockStripe{lo: lo, hi: hi, lat: st.lat}
}

// accumulate folds one finished node's deterministic counters into the
// stripe.
//
//copart:noalloc
func (st *blockStripe) accumulate(nr *NodeResult) {
	st.periods += nr.Periods
	st.reprofiles += nr.Reprofiles
	st.cacheHits += nr.CacheHits
	st.cacheMisses += nr.CacheMisses
	st.cacheEvictions += nr.CacheEvictions
	st.scoreHits += nr.ScoreHits
	st.scoreMisses += nr.ScoreMisses
	if nr.Phase == phaseDegradedName {
		st.degraded++
	} else {
		st.healthy++
	}
	if nr.FailStreak > st.maxFailStreak {
		st.maxFailStreak = nr.FailStreak
	}
}

// stripes is the package stripe pool, sized per run by growStripes and
// reused across runs (serialized — see the package comment above).
var stripes []blockStripe

// growStripes sizes the stripe pool for nb blocks, retaining existing
// stripes (and their sampler buffers) across runs.
func growStripes(nb int) {
	if cap(stripes) < nb {
		next := make([]blockStripe, nb) //copart:allocok amortized stripe-pool growth; steady state reuses capacity
		copy(next, stripes)
		stripes = next
	}
	stripes = stripes[:nb]
}

// latSample is one merged latency sample: a kept duration and the
// number of periods it stands for (its stripe's final stride).
type latSample struct {
	v time.Duration
	w int64
}

// latMergeScratch is the reusable cross-stripe merge buffer; owned by
// the single in-flight Run/RunChurn.
var latMergeScratch []latSample

// weightedPercentile reads the nearest-rank p-th percentile from
// value-sorted weighted samples with total weight totalW. With unit
// weights it reduces exactly to percentile (rank ⌈p/100·n⌉).
func weightedPercentile(sorted []latSample, totalW int64, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (int64(p)*totalW + 99) / 100
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range sorted {
		cum += sorted[i].w
		if cum >= rank {
			return sorted[i].v
		}
	}
	return sorted[len(sorted)-1].v
}

// sortDurations sorts a latency buffer in place.
//
//copart:noalloc
func sortDurations(s []time.Duration) { slices.Sort(s) }

// cmpLatSample orders merged samples by duration; a package-level
// funcval so sorting allocates nothing.
func cmpLatSample(a, b latSample) int {
	switch {
	case a.v < b.v:
		return -1
	case a.v > b.v:
		return 1
	default:
		return 0
	}
}

// sortLatSamples sorts the merge buffer by duration.
//
//copart:noalloc
func sortLatSamples(s []latSample) { slices.SortFunc(s, cmpLatSample) }
