package fleet

import (
	"testing"
	"time"
)

// feedSampler drives a sampler the way runNode does: due() decides
// whether the period is measured (push) or not (skip).
func feedSampler(s *latSampler, n int) {
	for i := 0; i < n; i++ {
		if s.due() {
			s.push(time.Duration(i))
		} else {
			s.skip()
		}
	}
}

// TestLatSamplerSystematicCoverage pins the sampler's invariant — after
// any number of pushes, buf[i] holds push index i·stride — which is
// what makes the kept set span the whole stream uniformly instead of
// windowing to its tail (the retired ring's failure mode).
func TestLatSamplerSystematicCoverage(t *testing.T) {
	for _, tc := range []struct{ n, max int }{
		{1, 8}, {5, 8}, {8, 8}, {9, 8}, {16, 8}, {17, 8}, {100, 8},
		{1000, 16}, {65536, 64}, {3, 2}, {1000, 2},
	} {
		var s latSampler
		s.reset(tc.max)
		feedSampler(&s, tc.n)
		if s.seen != uint64(tc.n) {
			t.Fatalf("n=%d max=%d: seen=%d", tc.n, tc.max, s.seen)
		}
		if s.stride&(s.stride-1) != 0 || s.stride == 0 {
			t.Fatalf("n=%d max=%d: stride %d not a power of two", tc.n, tc.max, s.stride)
		}
		for i, v := range s.buf {
			if want := time.Duration(uint64(i) * s.stride); v != want {
				t.Fatalf("n=%d max=%d: buf[%d]=%d, want push index %d (stride %d)",
					tc.n, tc.max, i, v, want, s.stride)
			}
		}
		// The kept set covers the stream end to end: the last kept index
		// is within one stride of the last push.
		if last := uint64(len(s.buf)-1) * s.stride; tc.n > 0 && uint64(tc.n)-1-last >= s.stride {
			t.Fatalf("n=%d max=%d: last kept index %d leaves a gap > stride %d", tc.n, tc.max, last, s.stride)
		}
		// Past the first compaction the buffer stays at least half full.
		if tc.n > tc.max && len(s.buf) <= tc.max/2 {
			t.Fatalf("n=%d max=%d: only %d samples kept", tc.n, tc.max, len(s.buf))
		}
		if len(s.buf) > tc.max || (tc.max >= 2 && len(s.buf) > tc.max) {
			t.Fatalf("n=%d max=%d: %d samples exceed bound", tc.n, tc.max, len(s.buf))
		}
	}
}

// TestLatSamplerResetKeepsCapacity pins the allocation story: resetting
// for a new run reuses the buffer.
func TestLatSamplerResetKeepsCapacity(t *testing.T) {
	var s latSampler
	s.reset(64)
	feedSampler(&s, 1000)
	c := cap(s.buf)
	s.reset(64)
	if len(s.buf) != 0 || cap(s.buf) != c {
		t.Fatalf("reset: len=%d cap=%d, want 0/%d", len(s.buf), cap(s.buf), c)
	}
	if s.stride != 1 || s.seen != 0 {
		t.Fatalf("reset: stride=%d seen=%d", s.stride, s.seen)
	}
}

// TestWeightedPercentile pins the merge's percentile definition: with
// unit weights it is exactly the nearest-rank percentile, and a
// sample's weight counts it that many periods' worth.
func TestWeightedPercentile(t *testing.T) {
	uw := []latSample{{1, 1}, {2, 1}, {3, 1}, {4, 1}}
	plain := []time.Duration{1, 2, 3, 4}
	for _, p := range []int{1, 25, 50, 75, 99, 100} {
		if got, want := weightedPercentile(uw, 4, p), percentile(plain, p); got != want {
			t.Errorf("p%d: weighted %v, nearest-rank %v", p, got, want)
		}
	}
	// One heavy sample dominates: {v:10, w:97} pulls p50 to 10.
	heavy := []latSample{{1, 1}, {2, 1}, {10, 97}, {20, 1}}
	if got := weightedPercentile(heavy, 100, 50); got != 10 {
		t.Errorf("weighted p50 = %v, want 10", got)
	}
	if got := weightedPercentile(heavy, 100, 99); got != 10 {
		t.Errorf("weighted p99 = %v, want 10", got)
	}
	if got := weightedPercentile(heavy, 100, 100); got != 20 {
		t.Errorf("weighted p100 = %v, want 20", got)
	}
	if got := weightedPercentile(nil, 0, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}
