// Package hosttarget implements the controller's Target interface over a
// resctrl filesystem tree — the deployment path on real CAT/MBA hardware.
//
// The CoPart manager (internal/core) is substrate-agnostic: it needs
// application lists, cumulative counters, an allocation setter, and a
// clock. On the simulator all four come from *machine.Machine; on a real
// host they come from
//
//   - the resctrl tree for actuation (one control group per application,
//     schemata writes through internal/resctrl's client), and
//   - a CounterSource for the three PMCs (in production a perf-events or
//     PAPI reader; in this repository's tests, the machine simulator
//     wired behind the same interface).
//
// Step is pluggable so tests can couple the passage of time to the
// simulator while production builds sleep on the wall clock.
package hosttarget

import (
	"fmt"
	"time"

	"repro/internal/machine"
	"repro/internal/membw"
	"repro/internal/resctrl"
)

// CounterSource provides cumulative performance counters per application.
type CounterSource interface {
	ReadCounters(app string) (machine.Counters, error)
}

// Tree is the subset of the resctrl client the host drives.
// *resctrl.Client implements it directly; fault injectors and test
// doubles wrap it.
type Tree interface {
	Info() resctrl.Info
	Groups() ([]string, error)
	CreateGroup(group string) error
	DeleteGroup(group string) error
	AddTask(group string, pid int) error
	WriteSchemata(group string, s resctrl.Schemata) error
}

// Options configure a Host.
type Options struct {
	// Client is the resctrl tree to actuate (required).
	Client Tree
	// Counters supplies the PMCs (required).
	Counters CounterSource
	// Hardware describes the machine for the controller (core counts,
	// way geometry, bandwidth). Its LLCWays must agree with the tree's
	// cbm_mask.
	Hardware machine.Config
	// Step advances time. Nil selects a wall-clock sleep.
	Step func(time.Duration) error
	// Now reads the clock. Nil selects monotonic time since New.
	Now func() time.Duration
}

// Host adapts a resctrl tree plus a counter source to core.Target.
type Host struct {
	client   Tree
	counters CounterSource
	hw       machine.Config
	step     func(time.Duration) error
	now      func() time.Duration
	apps     []string
}

// New validates the options and returns an empty Host; register the
// consolidated applications with AddApp.
func New(opts Options) (*Host, error) {
	if opts.Client == nil {
		return nil, fmt.Errorf("hosttarget: nil resctrl client")
	}
	if opts.Counters == nil {
		return nil, fmt.Errorf("hosttarget: nil counter source")
	}
	if err := opts.Hardware.Validate(); err != nil {
		return nil, err
	}
	info := opts.Client.Info()
	if got := onesCount(info.CBMMask); got != opts.Hardware.LLCWays {
		return nil, fmt.Errorf("hosttarget: tree advertises %d ways, hardware config says %d",
			got, opts.Hardware.LLCWays)
	}
	// The controller emits MBA levels on membw's grid (multiples of
	// membw.Granularity, at least membw.MinLevel). The tree must accept
	// every such level, or schemata writes would fail mid-run.
	if info.MBAGran <= 0 || membw.Granularity%info.MBAGran != 0 {
		return nil, fmt.Errorf("hosttarget: tree MBA granularity %d incompatible with controller granularity %d",
			info.MBAGran, membw.Granularity)
	}
	if info.MBAMin > membw.MinLevel {
		return nil, fmt.Errorf("hosttarget: tree min bandwidth %d above controller minimum %d",
			info.MBAMin, membw.MinLevel)
	}
	h := &Host{
		client:   opts.Client,
		counters: opts.Counters,
		hw:       opts.Hardware,
		step:     opts.Step,
		now:      opts.Now,
	}
	if h.step == nil {
		h.step = func(d time.Duration) error {
			time.Sleep(d)
			return nil
		}
	}
	if h.now == nil {
		start := time.Now()                                       //copart:wallclock host fallback clock anchors real elapsed time
		h.now = func() time.Duration { return time.Since(start) } //copart:wallclock host fallback clock reads real elapsed time
	}
	return h, nil
}

func onesCount(mask uint64) int {
	n := 0
	for ; mask != 0; mask >>= 1 {
		n += int(mask & 1)
	}
	return n
}

// AddApp registers an application: its control group is created (if
// missing) and its tasks are assigned to the group, exactly as the
// paper's prototype pins each container's threads.
func (h *Host) AddApp(name string, pids []int) error {
	for _, a := range h.apps {
		if a == name {
			return fmt.Errorf("hosttarget: duplicate app %q", name)
		}
	}
	groups, err := h.client.Groups()
	if err != nil {
		return err
	}
	exists := false
	for _, g := range groups {
		if g == name {
			exists = true
			break
		}
	}
	if !exists {
		if err := h.client.CreateGroup(name); err != nil {
			return err
		}
	}
	for _, pid := range pids {
		if err := h.client.AddTask(name, pid); err != nil {
			return err
		}
	}
	h.apps = append(h.apps, name)
	return nil
}

// RemoveApp unregisters an application and deletes its control group
// (its tasks fall back to the root group, as on the kernel).
func (h *Host) RemoveApp(name string) error {
	for i, a := range h.apps {
		if a == name {
			h.apps = append(h.apps[:i], h.apps[i+1:]...)
			return h.client.DeleteGroup(name)
		}
	}
	return fmt.Errorf("hosttarget: unknown app %q", name)
}

// Apps implements core.Target.
func (h *Host) Apps() []string {
	return append([]string(nil), h.apps...)
}

// ReadCounters implements core.Target.
func (h *Host) ReadCounters(name string) (machine.Counters, error) {
	return h.counters.ReadCounters(name)
}

// SetAllocation implements core.Target: it writes the application's
// schemata through the resctrl client, which validates the CBM and MBA
// level against the tree's advertised limits.
func (h *Host) SetAllocation(name string, a machine.Alloc) error {
	if err := membw.ValidateLevel(a.MBALevel); err != nil {
		return err
	}
	return h.client.WriteSchemata(name, resctrl.Schemata{
		L3: map[int]uint64{0: a.CBM},
		MB: map[int]int{0: a.MBALevel},
	})
}

// Reset restores every registered application's schemata to the
// hardware defaults — the full cache mask and 100 % memory bandwidth —
// so a stopping controller does not leave stale partitions behind.
// All groups are attempted; the first error is returned.
func (h *Host) Reset() error {
	info := h.client.Info()
	var firstErr error
	for _, name := range h.apps {
		s := resctrl.Schemata{
			L3: make(map[int]uint64, len(info.CacheIDs)),
			MB: make(map[int]int, len(info.CacheIDs)),
		}
		for _, id := range info.CacheIDs {
			s.L3[id] = info.CBMMask
			s.MB[id] = 100
		}
		if err := h.client.WriteSchemata(name, s); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("hosttarget: reset %s: %w", name, err)
		}
	}
	return firstErr
}

// Close resets all schemata to the hardware defaults and deletes the
// applications' control groups (their tasks fall back to the root group).
// The host keeps no registered applications afterwards.
func (h *Host) Close() error {
	firstErr := h.Reset()
	for _, name := range h.apps {
		if err := h.client.DeleteGroup(name); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("hosttarget: close %s: %w", name, err)
		}
	}
	h.apps = nil
	return firstErr
}

// Config implements core.Target.
func (h *Host) Config() machine.Config { return h.hw }

// Now implements core.Target.
func (h *Host) Now() time.Duration { return h.now() }

// Step implements core.Target.
func (h *Host) Step(dt time.Duration) error {
	if dt <= 0 {
		return fmt.Errorf("hosttarget: non-positive step %v", dt)
	}
	return h.step(dt)
}
