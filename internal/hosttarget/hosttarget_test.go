package hosttarget

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/resctrl"
	"repro/internal/workloads"
)

// newHarness wires a Host to the machine simulator through the simulated
// resctrl tree: counters come from the machine, schemata writes are
// pushed into the machine on every Step — the full file-level actuation
// path a real deployment uses.
func newHarness(t *testing.T) (*Host, *machine.Machine, *resctrl.Client) {
	t.Helper()
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := resctrl.NewSimTree(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(Options{
		Client:   client,
		Counters: m,
		Hardware: cfg,
		Step: func(d time.Duration) error {
			if err := resctrl.ApplyToMachine(client, m); err != nil {
				return err
			}
			return m.Step(d)
		},
		Now: m.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, m, client
}

func TestNewValidation(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := resctrl.NewSimTree(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Counters: m, Hardware: cfg}); err == nil {
		t.Error("nil client should error")
	}
	if _, err := New(Options{Client: client, Hardware: cfg}); err == nil {
		t.Error("nil counters should error")
	}
	bad := cfg
	bad.LLCWays = 9 // disagrees with the tree's 11-way cbm_mask
	if _, err := New(Options{Client: client, Counters: m, Hardware: bad}); err == nil {
		t.Error("way-count mismatch should error")
	}
	badCfg := cfg
	badCfg.Cores = 0
	if _, err := New(Options{Client: client, Counters: m, Hardware: badCfg}); err == nil {
		t.Error("invalid hardware should error")
	}
}

func TestAddRemoveApp(t *testing.T) {
	h, m, client := newHarness(t)
	spec, err := workloads.ByName(m.Config(), "WN")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddApp(spec.Model); err != nil {
		t.Fatal(err)
	}
	if err := h.AddApp("WN", []int{101, 102}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddApp("WN", nil); err == nil {
		t.Error("duplicate app should error")
	}
	pids, err := client.Tasks("WN")
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) != 2 || pids[0] != 101 {
		t.Errorf("tasks %v", pids)
	}
	if got := h.Apps(); len(got) != 1 || got[0] != "WN" {
		t.Errorf("Apps()=%v", got)
	}
	if err := h.RemoveApp("WN"); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveApp("WN"); err == nil {
		t.Error("removing an unknown app should error")
	}
	groups, _ := client.Groups()
	if len(groups) != 0 {
		t.Errorf("group should be deleted, have %v", groups)
	}
}

func TestAddAppAdoptsExistingGroup(t *testing.T) {
	h, _, client := newHarness(t)
	if err := client.CreateGroup("pre"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddApp("pre", nil); err != nil {
		t.Errorf("adopting an existing group should work: %v", err)
	}
}

func TestSetAllocationWritesSchemata(t *testing.T) {
	h, _, client := newHarness(t)
	if err := h.AddApp("app", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.SetAllocation("app", machine.Alloc{CBM: 0x7, MBALevel: 40}); err != nil {
		t.Fatal(err)
	}
	s, err := client.ReadSchemata("app")
	if err != nil {
		t.Fatal(err)
	}
	if s.L3[0] != 0x7 || s.MB[0] != 40 {
		t.Errorf("schemata %+v", s)
	}
	if err := h.SetAllocation("app", machine.Alloc{CBM: 0b101, MBALevel: 40}); err == nil {
		t.Error("non-contiguous CBM should be rejected by the tree")
	}
	if err := h.SetAllocation("app", machine.Alloc{CBM: 1, MBALevel: 15}); err == nil {
		t.Error("invalid MBA level should be rejected")
	}
}

func TestStepValidation(t *testing.T) {
	h, _, _ := newHarness(t)
	if err := h.Step(0); err == nil {
		t.Error("zero step should error")
	}
}

func TestDefaultClock(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := resctrl.NewSimTree(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(Options{Client: client, Counters: m, Hardware: cfg})
	if err != nil {
		t.Fatal(err)
	}
	before := h.Now()
	if err := h.Step(time.Millisecond); err != nil { // real sleep
		t.Fatal(err)
	}
	if h.Now() <= before {
		t.Error("wall clock did not advance")
	}
}

// TestManagerOverHostTarget is the end-to-end deployment-path test: the
// CoPart manager drives the host target, every allocation flows through
// schemata files in the resctrl tree, and the "hardware" behind the tree
// is the machine simulator. The controller must converge exactly as it
// does against the machine directly.
func TestManagerOverHostTarget(t *testing.T) {
	h, m, _ := newHarness(t)
	cfg := m.Config()
	models, err := workloads.Mix(cfg, workloads.HLLC, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
		if err := h.AddApp(model.Name, nil); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := core.NewManager(h, core.DefaultParams(), ref,
		core.Envelope{LoWay: 0, Ways: cfg.LLCWays}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	var last core.PeriodReport
	mgr.OnPeriod = func(r core.PeriodReport) { last = r }
	if err := mgr.Profile(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		done, err := mgr.ExploreStep()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if mgr.Phase() != core.PhaseIdle {
		t.Fatalf("controller did not converge over the host target (phase %v)", mgr.Phase())
	}
	if last.Unfairness > 0.05 {
		t.Errorf("H-LLC over the host target should converge to high fairness, got %.4f",
			last.Unfairness)
	}
	// The machine's allocations must mirror the schemata the manager
	// wrote (applied on each Step).
	for _, model := range models {
		alloc, err := m.Allocation(model.Name)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.CBM == cfg.FullMask() {
			t.Errorf("%s still holds the boot-time full mask; schemata were not applied",
				model.Name)
		}
	}
}

// rewriteInfo overwrites one info/ file of a sim tree and reopens the
// client, simulating hardware with different advertised limits.
func rewriteInfo(t *testing.T, dir, rel, content string) *resctrl.Client {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, rel), []byte(content+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	client, err := resctrl.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

func TestNewValidatesMBALimits(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := resctrl.NewSimTree(dir, cfg); err != nil {
		t.Fatal(err)
	}

	// Granularity 30 does not divide the controller's 10 % steps.
	client := rewriteInfo(t, dir, filepath.Join("info", "MB", "bandwidth_gran"), "30")
	if _, err := New(Options{Client: client, Counters: m, Hardware: cfg}); err == nil {
		t.Error("incompatible MBA granularity should be rejected")
	}
	client = rewriteInfo(t, dir, filepath.Join("info", "MB", "bandwidth_gran"), "10")

	// A minimum bandwidth above the controller's lowest level means the
	// controller would emit levels the tree rejects.
	client = rewriteInfo(t, dir, filepath.Join("info", "MB", "min_bandwidth"), "20")
	if _, err := New(Options{Client: client, Counters: m, Hardware: cfg}); err == nil {
		t.Error("min bandwidth above controller minimum should be rejected")
	}
	client = rewriteInfo(t, dir, filepath.Join("info", "MB", "min_bandwidth"), "10")

	// Granularity 5 divides 10 and min 10 matches: accepted.
	client = rewriteInfo(t, dir, filepath.Join("info", "MB", "bandwidth_gran"), "5")
	if _, err := New(Options{Client: client, Counters: m, Hardware: cfg}); err != nil {
		t.Errorf("finer tree granularity should be accepted: %v", err)
	}
}

func TestResetRestoresDefaults(t *testing.T) {
	h, _, client := newHarness(t)
	for _, name := range []string{"a", "b"} {
		if err := h.AddApp(name, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.SetAllocation("a", machine.Alloc{CBM: 0x3, MBALevel: 20}); err != nil {
		t.Fatal(err)
	}
	if err := h.SetAllocation("b", machine.Alloc{CBM: 0x1c, MBALevel: 50}); err != nil {
		t.Fatal(err)
	}
	if err := h.Reset(); err != nil {
		t.Fatal(err)
	}
	full := client.Info().CBMMask
	for _, name := range []string{"a", "b"} {
		s, err := client.ReadSchemata(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.L3[0] != full || s.MB[0] != 100 {
			t.Errorf("%s schemata after Reset: %+v, want full mask %x and 100%%", name, s, full)
		}
	}
	// The groups survive a Reset; the apps stay registered.
	if got := h.Apps(); len(got) != 2 {
		t.Errorf("Apps()=%v after Reset", got)
	}
}

func TestCloseDeletesGroups(t *testing.T) {
	h, _, client := newHarness(t)
	if err := h.AddApp("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.SetAllocation("a", machine.Alloc{CBM: 0x3, MBALevel: 20}); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	groups, err := client.Groups()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Errorf("groups after Close: %v", groups)
	}
	if got := h.Apps(); len(got) != 0 {
		t.Errorf("Apps()=%v after Close", got)
	}
}
