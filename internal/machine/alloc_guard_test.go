package machine

import "testing"

// TestSolveAllocationGuard pins the solver's allocation budget: a
// steady-state solve of a consolidated 4-application system with
// exclusive cache partitions must stay within a small fixed number of
// heap allocations per call (the returned []Perf plus nothing else —
// all intermediate state lives in the per-machine scratch buffers).
// A regression here silently multiplies across the tens of thousands of
// solves behind every figure; keep the budget tight rather than roomy.
func TestSolveAllocationGuard(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	models := []AppModel{
		llcSensitiveModel(), bwSensitiveModel(), dualSensitiveModel(), insensitiveModel(),
	}
	masks, err := AssignContiguousWays([]int{3, 3, 3, 2}, 0, m.cfg.LLCWays)
	if err != nil {
		t.Fatal(err)
	}
	for i := range models {
		models[i].Name = string(rune('a' + i))
		if err := m.AddApp(models[i]); err != nil {
			t.Fatal(err)
		}
		if err := m.SetAllocation(models[i].Name, Alloc{CBM: masks[i], MBALevel: 100}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up so the scratch buffers reach steady-state size.
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
	const budget = 2 // the fresh []Perf result, plus slack for the runtime
	avg := testing.AllocsPerRun(100, func() {
		if _, err := m.Solve(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Errorf("Machine.Solve allocates %.1f times per call, budget is %d", avg, budget)
	}
}
