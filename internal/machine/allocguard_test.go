package machine

import "testing"

// TestCachedSolveAllocationGuard pins the perf contract of the warm
// paths: a repeated solve served by the per-machine L1 and a session
// solve served by the shared L2 must both be allocation-free. A
// regression here silently reintroduces GC pressure into the solver
// hot path that the benchmarks were built to eliminate.
func TestCachedSolveAllocationGuard(t *testing.T) {
	prev := SetSharedSolveCache(true)
	defer SetSharedSolveCache(prev)
	ResetSharedSolveCache()
	defer ResetSharedSolveCache()

	cfg := DefaultConfig()
	models := sharedTestModels(4)
	allocs := sweepAllocs(cfg, 4, 1, 1)[0]

	m, err := New(cfg, WithSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	perfs := make([]Perf, len(models))
	if err := m.SolveForInto(perfs, models, allocs); err != nil {
		t.Fatal(err) // cold: populates L1 and L2
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := m.SolveForInto(perfs, models, allocs); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("warm L1 hit allocates %.1f allocs/op, want 0", avg)
	}

	session := m.NewSolveSession(models)
	if err := session.SolveInto(perfs, allocs); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := session.SolveInto(perfs, allocs); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("warm session (L2) hit allocates %.1f allocs/op, want 0", avg)
	}
}
