package machine

import "math"

// Incremental fingerprints: every solver input is condensed into 64-bit
// FNV-1a digests so a cache key is O(apps) fixed-width appends instead
// of re-encoding every model field and Hot entry per lookup. The digest
// covers exactly the fields the solver reads — and nothing else — so
// two models with equal digest inputs are interchangeable to Solve:
//
//   - modelDigest folds the per-app fields (Cores, Socket, CPIBase,
//     AccPerInstr, StreamFrac, MLP, and each Hot component). Name is
//     deliberately excluded (it never affects the solved steady state)
//     and Phases are excluded because callers digest the *resolved*
//     model (AtTime already folded the active phase into the flat
//     fields; the solver itself never reads Phases).
//   - configDigest folds the machine geometry and cost model.
//     MeasurementNoise and NoiseSeed are excluded: they perturb Step's
//     counter accumulation, never Solve.
//
// FNV-1a is not collision-proof, but a collision requires two distinct
// 64-bit digests to collide within one process — with at most a few
// hundred distinct models alive at once the birthday bound is ~1e-15,
// far below the simulator's own float reproducibility concerns. The
// full allocation state still enters the key verbatim (see encodeKey),
// so the search-space explosion lives in exact bits, not in the hash.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// digestWord folds one 64-bit word into the running digest state: one
// xor-multiply round with the FNV constants, followed by a shift-xor to
// diffuse the high bits the multiply pushed up. The byte-serial FNV-1a
// form it replaces spent eight dependent multiplies per word, which made
// model re-digesting (every AddApp, every phase boundary) a visible
// slice of a fleet sweep; one round per word keeps the digest a pure
// deterministic function of the same fields at an eighth of the cost.
// Digests are process-internal (cache keys, pool keys, snapshot schema
// fingerprints) — changing the folding constants is a schema bump, not
// a correctness event.
func digestWord(h, w uint64) uint64 {
	h = (h ^ w) * fnvPrime64
	return h ^ (h >> 29)
}

// modelDigest fingerprints one resolved model. Order-sensitive over the
// Hot components, exactly like the solver's traversal.
func modelDigest(mo *AppModel) uint64 {
	h := uint64(fnvOffset64)
	h = digestWord(h, uint64(mo.Cores))
	h = digestWord(h, uint64(mo.Socket))
	h = digestWord(h, math.Float64bits(mo.CPIBase))
	h = digestWord(h, math.Float64bits(mo.AccPerInstr))
	h = digestWord(h, math.Float64bits(mo.StreamFrac))
	h = digestWord(h, math.Float64bits(mo.MLP))
	h = digestWord(h, uint64(len(mo.Hot)))
	for i := range mo.Hot {
		c := &mo.Hot[i]
		h = digestWord(h, math.Float64bits(c.Bytes))
		h = digestWord(h, math.Float64bits(c.Weight))
		h = digestWord(h, math.Float64bits(c.MLP))
	}
	return h
}

// configDigest fingerprints the solver-visible machine configuration.
func configDigest(c Config) uint64 {
	h := uint64(fnvOffset64)
	h = digestWord(h, uint64(c.Cores))
	h = digestWord(h, uint64(c.LLCWays))
	h = digestWord(h, math.Float64bits(c.WayBytes))
	h = digestWord(h, math.Float64bits(c.LineBytes))
	h = digestWord(h, math.Float64bits(c.FreqHz))
	h = digestWord(h, uint64(c.SocketCount()))
	h = digestWord(h, math.Float64bits(c.HitCostCycles))
	h = digestWord(h, math.Float64bits(c.MissCostCycles))
	h = digestWord(h, math.Float64bits(c.WritebackFactor))
	h = digestWord(h, math.Float64bits(c.MBALatencyK))
	h = digestWord(h, math.Float64bits(c.MBALatencyP))
	h = digestWord(h, math.Float64bits(c.BW.TotalBandwidth))
	h = digestWord(h, math.Float64bits(c.BW.PerCoreCap))
	h = digestWord(h, math.Float64bits(c.BW.CongestionK))
	h = digestWord(h, math.Float64bits(c.BW.CongestionP))
	return h
}

// hashKey hashes an encoded cache key (shared-cache shard selection).
// It folds the key eight bytes at a time — FNV constants over
// little-endian words rather than bytes — because it runs once per L1
// miss over a ~100-byte key and the byte-serial form was a visible
// fraction of a fleet period sweep. The word-folded value differs from
// byte-wise FNV-1a, which is irrelevant here: the hash picks a shard,
// it never names an entry (map keys are the exact bytes), so the only
// requirement is agreement with hashString over equal bytes.
func hashKey(key []byte) uint64 {
	h := uint64(fnvOffset64)
	for ; len(key) >= 8; key = key[8:] {
		w := uint64(key[0]) | uint64(key[1])<<8 | uint64(key[2])<<16 | uint64(key[3])<<24 |
			uint64(key[4])<<32 | uint64(key[5])<<40 | uint64(key[6])<<48 | uint64(key[7])<<56
		h = (h ^ w) * fnvPrime64
	}
	for _, b := range key {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}
