package machine_test

import (
	"fmt"

	"repro/internal/machine"
)

func ExampleAppModel_MissRatio() {
	// An application with an 8 MB hot set and 10% streaming traffic:
	// the miss ratio falls linearly until the hot set fits.
	m := machine.AppModel{
		Name: "demo", Cores: 4, CPIBase: 1, AccPerInstr: 0.01,
		Hot:        []machine.WSComponent{{Bytes: 8 << 20, Weight: 0.9}},
		StreamFrac: 0.1,
	}
	for _, mb := range []int{2, 4, 8, 22} {
		fmt.Printf("%2d MB -> %.2f\n", mb, m.MissRatio(float64(mb<<20)))
	}
	// Output:
	//  2 MB -> 0.78
	//  4 MB -> 0.55
	//  8 MB -> 0.10
	// 22 MB -> 0.10
}

func ExampleEqualSplit() {
	counts, _ := machine.EqualSplit(11, 4)
	masks, _ := machine.AssignContiguousWays(counts, 0, 11)
	fmt.Println(counts)
	fmt.Printf("%011b\n", masks[0])
	// Output:
	// [3 3 3 2]
	// 00000000111
}
