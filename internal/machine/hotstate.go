package machine

import (
	"fmt"
	"time"
)

// HotState is an in-place machine checkpoint: the mutable state a run
// accumulates — virtual time, per-app counters and allocations, and the
// L1 solve-cache contents — captured from a live machine and adoptable
// by another machine with the same configuration and application set.
//
// It exists for trajectory memoization: when a whole phase of execution
// is a pure function of the starting configuration (the fleet's
// profiling phase is — it consumes no RNG and, noise-free, every Step
// is deterministic), running it once and restoring the checkpoint
// elsewhere is bit-identical to re-running it. Unlike Snapshot, which
// serializes everything needed to rebuild a machine from nothing,
// HotState assumes the receiving machine already holds the same config
// and apps and only adopts the run-mutable state, allocation-free at
// steady state.
//
// A HotState shares memory with every machine that captured or restored
// it (cache keys and entry slices are immutable by the solve-cache
// contract), so it is safe to restore the same value into many machines
// concurrently — but each individual machine remains single-threaded.
type HotState struct {
	configDigest uint64
	now          time.Duration

	// Per-app state, in launch order over all apps (inactive included,
	// mirroring the app table exactly).
	names    []string
	counters []Counters
	allocs   []Alloc
	active   []bool

	// cacheTab is a self-contained copy of the L1 solve-cache contents,
	// built once at capture and immutable afterwards. Restore adopts it
	// by reference as the cache's read-only base tier (solvecache.go) —
	// a pointer swap instead of re-inserting every entry, which turns
	// the per-node restore in a fleet run from O(cached states) into
	// O(1). Entry slices inside are shared with the source cache
	// (immutable by the solve-cache contract); the key bytes are copied
	// because the source arena compacts under eviction.
	cacheTab   *perfTable
	hits       uint64
	misses     uint64
	evictions  uint64
	sharedHits uint64
	hasCache   bool
}

// CaptureHotState checkpoints the machine's run-mutable state. The
// machine is not modified. It refuses machines with measurement noise
// enabled: the checkpoint does not carry the noise stream position, so
// restoring it elsewhere would silently desynchronize the noise draws
// (Snapshot/RestoreSnapshot handle that case).
func (m *Machine) CaptureHotState() (HotState, error) {
	if m.cfg.MeasurementNoise != 0 {
		return HotState{}, fmt.Errorf("machine: hot state does not carry the measurement-noise stream; use Snapshot")
	}
	hs := HotState{
		configDigest: m.cfgDigest,
		now:          m.now,
		names:        make([]string, len(m.apps)),
		counters:     make([]Counters, len(m.apps)),
		allocs:       make([]Alloc, len(m.apps)),
		active:       make([]bool, len(m.apps)),
	}
	for i, a := range m.apps {
		hs.names[i] = a.model.Name
		hs.counters[i] = a.counters
		hs.allocs[i] = a.alloc
		hs.active[i] = a.active
	}
	if m.cache != nil {
		hs.hasCache = true
		// Flatten the cache's base tier (if this machine itself restored
		// a checkpoint) and its own table into one self-contained copy,
		// in logical insertion order.
		tab := &perfTable{}
		for _, src := range []*perfTable{m.cache.base, &m.cache.tab} {
			if src == nil {
				continue
			}
			for i := 0; i < src.size(); i++ {
				tab.insert(src.fps[i], src.keyAt(i), src.entries[i])
			}
		}
		hs.cacheTab = tab
		hs.hits = m.cache.hits.Load()
		hs.misses = m.cache.misses.Load()
		hs.evictions = m.cache.evictions.Load()
		hs.sharedHits = m.cache.sharedHits.Load()
	}
	return hs, nil
}

// RestoreHotState adopts a checkpoint in place. The machine must hold
// the same configuration (verified by digest) and the same application
// table (same names, same launch order) as the machine the checkpoint
// was captured from; the method then overwrites virtual time, per-app
// counters and allocations, and the L1 cache, leaving the machine
// bit-identical in behavior to the one that was checkpointed.
//
// Any pending L2 publications accumulated before the restore are
// dropped (the checkpointed entries were already published, or will be
// re-solved by whoever needs them — the L2 affects speed, never values).
func (m *Machine) RestoreHotState(hs HotState) error {
	if hs.configDigest != m.cfgDigest {
		return fmt.Errorf("machine: hot state config fingerprint %#x does not match %#x", hs.configDigest, m.cfgDigest)
	}
	if m.cfg.MeasurementNoise != 0 {
		return fmt.Errorf("machine: hot state does not carry the measurement-noise stream; use Snapshot")
	}
	if len(hs.names) != len(m.apps) {
		return fmt.Errorf("machine: hot state has %d apps, machine has %d", len(hs.names), len(m.apps))
	}
	for i, a := range m.apps {
		if a.model.Name != hs.names[i] {
			return fmt.Errorf("machine: hot state app %d is %q, machine has %q", i, hs.names[i], a.model.Name)
		}
	}
	if hs.hasCache != (m.cache != nil) {
		return fmt.Errorf("machine: hot state and machine disagree on solve-cache presence")
	}
	m.now = hs.now
	for i, a := range m.apps {
		a.counters = hs.counters[i]
		a.alloc = hs.allocs[i]
		a.active = hs.active[i]
		// Phased apps re-resolve at the restored time, exactly as the live
		// trajectory would have left them at its last phase boundary.
		if a.phased {
			if idx := a.model.PhaseIndexAt(m.now); idx != a.phaseIdx {
				a.resolved = a.model.AtTime(m.now)
				a.phaseIdx = idx
				a.digest = modelDigest(&a.resolved)
			}
		}
	}
	// The solver scratch no longer describes the machine.
	m.solveClean = false
	m.gatherValid = false
	if m.cache != nil {
		m.cache.clearPending()
		m.cache.tab.truncate()
		// Adopt the checkpoint's table by reference as the read-only base
		// tier: lookups see exactly the membership the checkpointed
		// machine held, so the hit/miss trajectory from here on is
		// bit-identical to a copying restore — without the per-entry
		// insert walk.
		m.cache.base = hs.cacheTab
		m.cache.hits.Store(hs.hits)
		m.cache.misses.Store(hs.misses)
		m.cache.evictions.Store(hs.evictions)
		m.cache.sharedHits.Store(hs.sharedHits)
	}
	return nil
}
