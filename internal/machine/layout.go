package machine

import (
	"fmt"
	"math/bits"
)

// AssignContiguousWays converts per-application way counts into exclusive,
// contiguous CAT bitmasks laid out left-to-right starting at bit lo.
// Every count must be ≥ 1 (a CLOS needs at least one way) and the counts
// must fit within [lo, lo+totalWays).
//
// CoPart and all partitioning baselines manage exclusive contiguous
// partitions; this helper converts the "number of ways" abstraction used
// by the controller into hardware CBMs.
func AssignContiguousWays(counts []int, lo, totalWays int) ([]uint64, error) {
	return AssignContiguousWaysInto(nil, counts, lo, totalWays)
}

// AssignContiguousWaysInto is AssignContiguousWays writing into dst,
// reusing its backing array when the capacity suffices. The controller
// calls it every control period; with a manager-owned dst the layout
// step is allocation-free.
func AssignContiguousWaysInto(dst []uint64, counts []int, lo, totalWays int) ([]uint64, error) {
	if lo < 0 || totalWays < 1 {
		return nil, fmt.Errorf("machine: invalid layout window lo=%d totalWays=%d", lo, totalWays)
	}
	sum := 0
	for i, c := range counts {
		if c < 1 {
			return nil, fmt.Errorf("machine: app %d assigned %d ways (minimum 1)", i, c)
		}
		sum += c
	}
	if sum > totalWays {
		return nil, fmt.Errorf("machine: %d ways assigned, only %d available", sum, totalWays)
	}
	if cap(dst) < len(counts) {
		dst = make([]uint64, len(counts))
	}
	dst = dst[:len(counts)]
	at := lo
	for i, c := range counts {
		dst[i] = ((uint64(1) << uint(c)) - 1) << uint(at)
		at += c
	}
	return dst, nil
}

// WayCounts extracts the way count of each mask.
func WayCounts(masks []uint64) []int {
	out := make([]int, len(masks))
	for i, m := range masks {
		out[i] = bits.OnesCount64(m)
	}
	return out
}

// EqualSplit divides totalWays across n applications as evenly as
// possible, giving the first (totalWays mod n) applications one extra way.
// It errors when n exceeds totalWays (someone would get zero ways).
func EqualSplit(totalWays, n int) ([]int, error) {
	return EqualSplitInto(nil, totalWays, n)
}

// EqualSplitInto is EqualSplit writing into dst, reusing its backing
// array when the capacity suffices — the controller recomputes the
// equal split at every profiling pass, and with a caller-owned dst that
// step is allocation-free.
//
//copart:noalloc
func EqualSplitInto(dst []int, totalWays, n int) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("machine: cannot split across %d apps", n)
	}
	if n > totalWays {
		return nil, fmt.Errorf("machine: %d apps exceed %d ways", n, totalWays)
	}
	base := totalWays / n
	extra := totalWays % n
	if cap(dst) < n {
		dst = make([]int, n) //copart:allocok first call grows the caller's buffer; steady state reuses it
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = base
		if i < extra {
			dst[i]++
		}
	}
	return dst, nil
}
