package machine

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"time"

	"repro/internal/membw"
)

// Config describes the simulated server. DefaultConfig reproduces Table 1.
// All per-resource fields (cores, LLC, bandwidth) describe ONE socket;
// Sockets multiplies the machine into independent domains.
type Config struct {
	Cores     int     // physical cores per socket
	LLCWays   int     // CAT ways per socket LLC
	WayBytes  float64 // capacity of one way
	LineBytes float64 // cache-line size
	FreqHz    float64 // core frequency
	Sockets   int     // socket count; 0 means 1 (the paper's machine)

	// HitCostCycles is the average visible stall per LLC hit (after
	// out-of-order overlap); MissCostCycles per LLC miss at an idle bus.
	HitCostCycles  float64
	MissCostCycles float64
	// WritebackFactor inflates miss traffic for dirty evictions.
	WritebackFactor float64
	// MeasurementNoise is the standard deviation of multiplicative
	// per-period jitter applied to the simulated counters (0 disables
	// it, the default). Real PMC readings fluctuate period to period —
	// scheduling, interrupts, DRAM refresh — and that fluctuation is
	// what makes the controller's δ_P/Β/Γ thresholds a trade-off
	// (§5.5.3): too small reacts to noise, too large misses signal.
	// Deterministic given NoiseSeed.
	MeasurementNoise float64
	// NoiseSeed seeds the jitter stream.
	NoiseSeed int64

	// MBALatencyK and MBALatencyP shape the extra memory latency
	// introduced by MBA throttling: effective miss cost
	// ×= 1 + K·(1 − level/100)^P. The convex shape (P > 1) matches the
	// published behaviour of MBA: low levels delay requests sharply while
	// upper-mid levels barely affect latency.
	MBALatencyK float64
	MBALatencyP float64

	BW membw.Config
}

// DefaultConfig returns the paper's machine (Table 1): 16 cores at
// 2.1 GHz, 22 MB 11-way LLC (2 MB/way), ~28 GB/s DRAM.
func DefaultConfig() Config {
	return Config{
		Cores:           16,
		LLCWays:         11,
		WayBytes:        2 << 20,
		LineBytes:       64,
		FreqHz:          2.1e9,
		HitCostCycles:   8,
		MissCostCycles:  170,
		WritebackFactor: 1.3,
		MBALatencyK:     1.3,
		MBALatencyP:     3,
		BW: membw.Config{
			TotalBandwidth: 28e9,
			PerCoreCap:     9e9,
			CongestionK:    0.8,
			CongestionP:    4,
		},
	}
}

// SocketCount returns the number of sockets, treating the zero value as 1.
func (c Config) SocketCount() int {
	if c.Sockets < 1 {
		return 1
	}
	return c.Sockets
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores < 1 || c.LLCWays < 1 {
		return fmt.Errorf("machine: invalid cores=%d ways=%d", c.Cores, c.LLCWays)
	}
	if c.Sockets < 0 {
		return fmt.Errorf("machine: negative socket count %d", c.Sockets)
	}
	if c.WayBytes <= 0 || c.LineBytes <= 0 || c.FreqHz <= 0 {
		return fmt.Errorf("machine: non-positive geometry/frequency")
	}
	if c.HitCostCycles < 0 || c.MissCostCycles <= 0 {
		return fmt.Errorf("machine: invalid stall costs hit=%v miss=%v", c.HitCostCycles, c.MissCostCycles)
	}
	if c.WritebackFactor < 1 {
		return fmt.Errorf("machine: writeback factor %v < 1", c.WritebackFactor)
	}
	if c.MBALatencyK < 0 {
		return fmt.Errorf("machine: negative MBA latency factor %v", c.MBALatencyK)
	}
	if c.MBALatencyP <= 0 {
		return fmt.Errorf("machine: non-positive MBA latency exponent %v", c.MBALatencyP)
	}
	if c.MeasurementNoise < 0 || c.MeasurementNoise >= 0.5 {
		return fmt.Errorf("machine: measurement noise %v outside [0, 0.5)", c.MeasurementNoise)
	}
	return c.BW.Validate()
}

// FullMask returns the CBM with every configured way set.
func (c Config) FullMask() uint64 { return (uint64(1) << c.LLCWays) - 1 }

// Digest fingerprints the solver-visible configuration — the value used
// in solve-cache keys and snapshot compatibility checks. Two configs
// with equal digests are interchangeable to Solve; the non-serializable
// BW.Curve is not part of the fingerprint (snapshots refuse custom
// curves for the same reason).
func (c Config) Digest() uint64 { return configDigest(c) }

// Counters are the simulated performance-monitoring counters of one
// application, cumulative since launch. Instructions, LLCAccesses, and
// LLCMisses correspond to the three PMCs the paper samples through PAPI
// (§3.2); MemoryBytes is the DRAM traffic actually granted, which backs
// the resctrl MBM emulation (mbm_total_bytes).
type Counters struct {
	Instructions float64
	LLCAccesses  float64
	LLCMisses    float64
	MemoryBytes  float64
}

// Alloc is one application's resource-allocation state (ℓ_i, m_i) of
// §2.3, expressed as a CAT bitmask plus an MBA level.
type Alloc struct {
	CBM      uint64
	MBALevel int
}

// Ways returns the number of ways in the allocation's CBM.
func (a Alloc) Ways() int { return bits.OnesCount64(a.CBM) }

// app is the runtime state of one consolidated application.
type app struct {
	model    AppModel
	alloc    Alloc
	counters Counters
	active   bool

	// resolved caches model.AtTime for the active phase index phaseIdx,
	// and digest fingerprints it (phases folded). AtTime depends on time
	// only through the phase index, so both stay valid until the index
	// changes — the per-app dirty bit gatherActive checks. Unphased apps
	// (phaseIdx -1) keep their AddApp-time resolution forever, and the
	// cache-key encoding never re-walks model fields.
	resolved AppModel
	digest   uint64
	phaseIdx int
	phased   bool

	// activeIdx is this app's position among the active apps in the last
	// full gatherActive pass — valid only while Machine.gatherValid holds.
	// SetAllocation uses it to patch scratch.allocs in place instead of
	// forcing a full regather.
	activeIdx int
}

// Perf is the solved steady-state performance of one application at the
// current system state.
type Perf struct {
	IPS        float64 // achieved aggregate instructions/s
	MissRatio  float64
	AccessRate float64 // LLC accesses/s
	MissRate   float64 // LLC misses/s
	CapBytes   float64 // effective LLC capacity (occupancy share)
	DemandBW   float64 // unconstrained traffic demand, bytes/s
	GrantBW    float64 // granted bandwidth, bytes/s
}

// Machine is the simulated server.
//
// A Machine is NOT safe for concurrent use: the solver reuses
// per-Machine scratch buffers across calls (and Step mutates counters).
// Concurrent experiment cells must each construct their own Machine —
// construction is cheap, and the experiments harness does exactly that.
type Machine struct {
	cfg       Config
	fullMask  uint64 // cfg.FullMask(), hoisted out of the solve path
	cfgDigest uint64 // configDigest(cfg), hoisted out of key encoding
	arbiter   *membw.Arbiter
	apps      []*app
	byName    map[string]int
	now       time.Duration // virtual time since construction
	noiseRNG  *rand.Rand
	// noiseCalls counts noiseFactors invocations that actually drew from
	// noiseRNG. It is the noise stream's position: a snapshot records it,
	// and restore replays the same number of draw pairs (see snapshot.go).
	noiseCalls uint64

	hasPhases bool // any active app carries a phase schedule
	// solveClean reports that scratch.view still holds the solved steady
	// state for the current machine state: no allocation, app set, or
	// snapshot change since the last solveActiveScratch. Phased machines
	// never use it (time itself is a solver input there). It lets a
	// control period whose allocations converged — idle phases, settled
	// exploration — skip the solve path entirely, key encoding and cache
	// probes included.
	solveClean bool
	// gatherValid reports that scratch.models/allocs/digests still
	// describe the active set: no app launched or removed since the last
	// full gatherActive pass, and no phases in play. Allocation changes
	// do not invalidate it — SetAllocation patches scratch.allocs in
	// place via app.activeIdx — so the common one-alloc-changed solve
	// skips re-copying every model struct and digest.
	gatherValid bool
	// scanCursor is lookup's rotation hint: the slot after the last
	// linear-scan hit. Purely a speed hint — every use re-verifies the
	// name and falls back to a full scan — so staleness (after
	// RemoveApp/Reset) is harmless.
	scanCursor int
	scratch    solveScratch
	cache      *solveCache // nil unless WithSolveCache
}

// advanceCursor moves the lookup hint past a scan hit at slot i,
// wrapping so a fixed per-period touch order stays on the one-compare
// path forever.
//
//copart:noalloc
func (m *Machine) advanceCursor(i int) {
	m.scanCursor = i + 1
	if m.scanCursor >= len(m.apps) {
		m.scanCursor = 0
	}
}

// solveScratch holds the solver's reusable buffers. solveDomainInto and
// Solve would otherwise reallocate these every fixed-point round; the
// scratch keeps the steady-state Solve path down to the one allocation
// that is the returned []Perf.
type solveScratch struct {
	models  []AppModel // Solve: resolved active models
	allocs  []Alloc    // Solve: active allocations
	digests []uint64   // resolved-model digests for cache keys
	// extDigests serves SolveFor-style external solves that pass no
	// digests: they must not write into digests, which gatherActive may
	// be holding as its memoized active-set snapshot (gatherValid).
	extDigests []uint64
	caps       []float64      // per-app effective LLC capacity
	next       []float64      // occupancyShares output buffer
	mbaDelay   []float64      // per-app MBA latency factor (fixed per solve)
	bwCaps     []float64      // per-app MBA bandwidth cap (fixed per solve)
	demands    []membw.Demand // arbitration input
	arbRes     membw.Result   // arbitration output (Grants reused)
	perfs      []Perf         // solveActiveScratch solve buffer (Step, Occupancy)
	// view is what the last solveActiveScratch returned: perfs when the
	// state was freshly solved, or a cache tier's immutable entry on a
	// hit — aliased instead of copied, since Step and Occupancy only
	// read it. Never written through.
	view []Perf
}

// Option configures a Machine at construction.
type Option func(*Machine)

// WithSolveCache enables memoization of steady-state solves, keyed by
// the resolved models and allocations. Exploration policies revisit
// allocation states constantly, so cached solves skip whole fixed-point
// iterations. The cache is exact — a hit returns bit-identical results
// to recomputing, because Solve is deterministic in its inputs — and is
// invalidated on AddApp/RemoveApp and on phase advance (Step) when any
// application is phased. Cache-enabled machines also consult the
// process-wide shared L2 (sharedcache.go) under the per-machine table,
// so states solved by other machines — grid cells, fleet nodes, oracle
// searches — are lookups here. See DESIGN.md §7 and §9.
func WithSolveCache() Option {
	return func(m *Machine) { m.cache = newSolveCache(defaultSolveCacheEntries) }
}

// New builds a machine with the given configuration.
func New(cfg Config, opts ...Option) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	arb, err := membw.New(cfg.BW)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:       cfg,
		fullMask:  cfg.FullMask(),
		cfgDigest: configDigest(cfg),
		arbiter:   arb,
		byName:    make(map[string]int),
		// noiseRNG is seeded lazily on first use (see noiseFactors):
		// seeding a math/rand source costs ~10µs and most machines run
		// noise-free, which matters now that concurrent experiment
		// cells construct one Machine each.
	}
	for _, opt := range opts {
		opt(m)
	}
	return m, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the current virtual time.
func (m *Machine) Now() time.Duration { return m.now }

// AddApp launches an application with the full-resource allocation. The
// total core demand across active applications may not exceed the machine.
func (m *Machine) AddApp(model AppModel) error {
	if err := model.Validate(); err != nil {
		return err
	}
	if _, dup := m.byName[model.Name]; dup {
		return fmt.Errorf("machine: duplicate app %q", model.Name)
	}
	if model.Socket >= m.cfg.SocketCount() {
		return fmt.Errorf("machine: app %s on socket %d, machine has %d",
			model.Name, model.Socket, m.cfg.SocketCount())
	}
	used := model.Cores
	for _, a := range m.apps {
		if a.active && a.model.Socket == model.Socket {
			used += a.model.Cores
		}
	}
	if used > m.cfg.Cores {
		return fmt.Errorf("machine: %d cores demanded on socket %d, %d available",
			used, model.Socket, m.cfg.Cores)
	}
	m.byName[model.Name] = len(m.apps)
	resolved := model.AtTime(m.now)
	a := m.nextAppSlot()
	*a = app{
		model:    model,
		alloc:    Alloc{CBM: m.fullMask, MBALevel: membw.MaxLevel},
		active:   true,
		resolved: resolved,
		digest:   modelDigest(&resolved),
		phaseIdx: model.PhaseIndexAt(m.now),
		phased:   len(model.Phases) > 0,
	}
	if len(model.Phases) > 0 {
		m.hasPhases = true
	}
	m.solveClean = false
	m.gatherValid = false
	m.cache.invalidate()
	return nil
}

// nextAppSlot appends one app slot, reusing a retired *app kept beyond
// len by Reset when one exists (the pooled-fleet path relaunches the
// same slot counts every node, so steady-state AddApp touches no heap).
func (m *Machine) nextAppSlot() *app {
	n := len(m.apps)
	if n < cap(m.apps) {
		m.apps = m.apps[:n+1]
		if m.apps[n] == nil {
			m.apps[n] = &app{}
		}
	} else {
		m.apps = append(m.apps, &app{})
	}
	return m.apps[n]
}

// Reset retires every application and rewinds virtual time to zero,
// keeping the machine's configuration, arbiter, solver scratch, and — if
// enabled — its L1 solve-cache buffers (entries and counters are
// cleared; the persistent key-intern table is kept, it only affects
// allocations). Pending shared-cache publications are flushed first so
// work solved by the retiring tenant stays visible process-wide. A reset
// machine behaves bit-identically to a freshly constructed one with the
// same configuration: the fleet's node-runtime pool relies on exactly
// that (DESIGN.md §12). App slots are retained beyond len for reuse by
// AddApp; noise machines re-seed their RNG lazily on first use, exactly
// like a new machine.
//
//copart:noalloc
func (m *Machine) Reset() {
	m.FlushShared()
	for _, a := range m.apps[:cap(m.apps)] {
		if a == nil {
			break
		}
		*a = app{}
	}
	m.apps = m.apps[:0]
	clear(m.byName)
	m.now = 0
	m.noiseRNG = nil
	m.noiseCalls = 0
	m.hasPhases = false
	m.solveClean = false
	m.gatherValid = false
	m.cache.reset()
}

// RemoveApp terminates an application (the idle phase detects this as a
// change event). Its counters become unavailable.
func (m *Machine) RemoveApp(name string) error {
	i, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("machine: unknown app %q", name)
	}
	if !m.apps[i].active {
		return fmt.Errorf("machine: app %q already removed", name)
	}
	m.apps[i].active = false
	m.solveClean = false
	m.gatherValid = false
	m.cache.invalidate()
	return nil
}

// Apps lists the names of active applications in launch order. The
// returned slice is freshly allocated; hot-path callers should prefer
// AppsInto with a reused buffer.
func (m *Machine) Apps() []string {
	return m.AppsInto(make([]string, 0, len(m.apps)))
}

// AppsInto appends the active application names to dst[:0] and returns
// it, reusing dst's backing array when the capacity suffices. The
// controller polls the application list every control period to detect
// consolidation changes; with a caller-owned dst that poll is
// allocation-free.
func (m *Machine) AppsInto(dst []string) []string {
	dst = dst[:0]
	for _, a := range m.apps {
		if a.active {
			dst = append(dst, a.model.Name)
		}
	}
	return dst
}

// Model returns the model of a (possibly inactive) application.
func (m *Machine) Model(name string) (AppModel, error) {
	i, ok := m.byName[name]
	if !ok {
		return AppModel{}, fmt.Errorf("machine: unknown app %q", name)
	}
	return m.apps[i].model, nil
}

// smallAppScan bounds the linear-scan fast path in lookup: at or below
// this many slots a name is resolved by scanning the app array instead
// of hashing it into byName. Controllers pass the same interned name
// strings every period, so the comparisons hit Go's pointer-equality
// fast path and the per-period ReadCounters/SetAllocation sweep skips
// the string-hash entirely — on a consolidation-sized machine that hash
// was the single hottest machine-layer instruction in a fleet profile.
const smallAppScan = 8

func (m *Machine) lookup(name string) (*app, error) {
	if len(m.apps) <= smallAppScan {
		// Cursor hint first: controllers touch their apps in a fixed
		// rotation (the sampling sweep, applyState), so the next lookup
		// almost always matches at the cursor on one pointer-equal
		// comparison. Missing the hint costs one extra compare; the scan
		// below still covers every slot. Same-length sibling names (the
		// mix generators emit "kind-0", "kind-1", …) defeat the length
		// shortcut and fall into byte-wise comparison, which made the
		// plain scan the hottest machine-layer block in a fleet profile.
		if c := m.scanCursor; c < len(m.apps) && m.apps[c].model.Name == name {
			m.advanceCursor(c)
			a := m.apps[c]
			if !a.active {
				return nil, fmt.Errorf("machine: app %q is not active", name)
			}
			return a, nil
		}
		for i, a := range m.apps {
			if a.model.Name == name {
				m.advanceCursor(i)
				if !a.active {
					return nil, fmt.Errorf("machine: app %q is not active", name)
				}
				return a, nil
			}
		}
		return nil, fmt.Errorf("machine: unknown app %q", name)
	}
	i, ok := m.byName[name]
	if !ok {
		return nil, fmt.Errorf("machine: unknown app %q", name)
	}
	a := m.apps[i]
	if !a.active {
		return nil, fmt.Errorf("machine: app %q is not active", name)
	}
	return a, nil
}

// SetAllocation updates an application's (CBM, MBA level). Setting the
// allocation an application already holds is a no-op: it revalidates
// nothing (equality to a held allocation proves validity) and leaves
// the solved steady state clean, so the following Step skips its solve.
func (m *Machine) SetAllocation(name string, alloc Alloc) error {
	a, err := m.lookup(name)
	if err != nil {
		return err
	}
	if a.alloc == alloc {
		return nil
	}
	if alloc.CBM == 0 || alloc.CBM&^m.fullMask != 0 {
		return fmt.Errorf("machine: invalid CBM %#x for %d ways", alloc.CBM, m.cfg.LLCWays)
	}
	if !contiguous(alloc.CBM) {
		return fmt.Errorf("machine: CBM %#x is not contiguous (CAT requires contiguous masks)", alloc.CBM)
	}
	if err := membw.ValidateLevel(alloc.MBALevel); err != nil {
		return err
	}
	a.alloc = alloc
	if m.gatherValid {
		m.scratch.allocs[a.activeIdx] = alloc
	}
	m.solveClean = false
	return nil
}

// Allocation returns an application's current allocation.
func (m *Machine) Allocation(name string) (Alloc, error) {
	a, err := m.lookup(name)
	if err != nil {
		return Alloc{}, err
	}
	return a.alloc, nil
}

// ReadCounters returns a copy of an application's cumulative counters.
func (m *Machine) ReadCounters(name string) (Counters, error) {
	a, err := m.lookup(name)
	if err != nil {
		return Counters{}, err
	}
	return a.counters, nil
}

// contiguous reports whether the set bits of mask form one contiguous run.
func contiguous(mask uint64) bool {
	if mask == 0 {
		return false
	}
	shifted := mask >> uint(bits.TrailingZeros64(mask))
	return shifted&(shifted+1) == 0
}

// Step advances virtual time by dt, accumulating counters at the solved
// steady-state rates.
func (m *Machine) Step(dt time.Duration) error {
	if dt <= 0 {
		return fmt.Errorf("machine: non-positive step %v", dt)
	}
	// The solved rates are consumed within this call, so Step reads them
	// from the machine-owned scratch instead of Solve's retained copy —
	// the per-control-period path stays allocation-free.
	perfs, err := m.solveActiveScratch()
	if err != nil {
		return err
	}
	secs := dt.Seconds()
	i := -1
	if m.cfg.MeasurementNoise == 0 {
		// Noise-free accumulation skips the per-app factor draws; the
		// factors are exactly 1 there, so the sums are bit-identical to
		// the noisy loop's.
		for _, a := range m.apps {
			if !a.active {
				continue
			}
			i++
			p := perfs[i]
			a.counters.Instructions += p.IPS * secs
			a.counters.LLCAccesses += p.AccessRate * secs
			a.counters.LLCMisses += p.MissRate * secs
			a.counters.MemoryBytes += p.GrantBW * secs
		}
	} else {
		for _, a := range m.apps {
			if !a.active {
				continue
			}
			i++
			p := perfs[i]
			perfNoise, missNoise := m.noiseFactors()
			a.counters.Instructions += p.IPS * secs * perfNoise
			a.counters.LLCAccesses += p.AccessRate * secs * perfNoise
			a.counters.LLCMisses += p.MissRate * secs * perfNoise * missNoise
			a.counters.MemoryBytes += p.GrantBW * secs * perfNoise * missNoise
		}
	}
	m.now += dt
	// Phase advances invalidate nothing: the cache key is exact over
	// resolved models, so entries from an old phase simply stop being
	// looked up, and the bounded batch eviction (solvecache.go) is the
	// memory bound. One period boundary is also the batching point for
	// shared-cache publication — everything this period solved is pushed
	// to the L2 in one grouped, striped acquire.
	m.FlushShared()
	return nil
}

// noiseFactors draws the per-period measurement jitter: a factor on the
// whole counter stream (execution-speed jitter) and an additional
// independent factor on the miss-related counters (cache-behaviour
// jitter). Both are 1 when noise is disabled.
func (m *Machine) noiseFactors() (perf, miss float64) {
	sigma := m.cfg.MeasurementNoise
	if sigma == 0 {
		return 1, 1
	}
	if m.noiseRNG == nil {
		m.noiseRNG = rand.New(rand.NewSource(m.cfg.NoiseSeed))
	}
	m.noiseCalls++
	clamp := func(f float64) float64 {
		if f < 0.5 {
			return 0.5
		}
		if f > 1.5 {
			return 1.5
		}
		return f
	}
	return clamp(1 + m.noiseRNG.NormFloat64()*sigma),
		clamp(1 + m.noiseRNG.NormFloat64()*sigma)
}

// Occupancy returns an application's current effective LLC occupancy in
// bytes (its capacity share at the solved steady state) — the quantity
// resctrl's llc_occupancy monitoring file reports. The application's
// index among the active apps is resolved from the name table directly,
// so the call costs one scratch solve and nothing else.
func (m *Machine) Occupancy(name string) (float64, error) {
	i, ok := m.byName[name]
	if !ok {
		return 0, fmt.Errorf("machine: unknown app %q", name)
	}
	if !m.apps[i].active {
		return 0, fmt.Errorf("machine: app %q is not active", name)
	}
	// Perf results are indexed over active applications in launch order;
	// count the active predecessors instead of materializing Apps().
	active := 0
	for j := 0; j < i; j++ {
		if m.apps[j].active {
			active++
		}
	}
	perfs, err := m.solveActiveScratch()
	if err != nil {
		return 0, err
	}
	return perfs[active].CapBytes, nil
}

// gatherActive resolves the active models, allocations, and model
// digests into the scratch buffers shared by Solve and
// solveActiveScratch. Resolution and digests are maintained
// incrementally per app: unphased apps keep their AddApp-time
// resolution forever, and a phased app re-resolves (and re-digests)
// only when its *phase index* changed since it was last solved — the
// per-app dirty bit. AtTime depends on time only through that index,
// so the cached resolution is exact, and one app crossing a phase
// boundary never touches its neighbours' cached state.
//
//copart:noalloc
func (m *Machine) gatherActive() ([]AppModel, []Alloc, []uint64) {
	sc := &m.scratch
	// Memoized pass: the active set is unchanged and unphased, so the
	// scratch still holds every model struct and digest — SetAllocation
	// kept sc.allocs current in place. Copying the model structs was the
	// single largest block move in a fleet period sweep.
	if m.gatherValid && !m.hasPhases {
		return sc.models, sc.allocs, sc.digests
	}
	sc.models = sc.models[:0]
	sc.allocs = sc.allocs[:0]
	sc.digests = sc.digests[:0]
	for _, a := range m.apps {
		if !a.active {
			continue
		}
		if a.phased {
			if idx := a.model.PhaseIndexAt(m.now); idx != a.phaseIdx {
				a.resolved = a.model.AtTime(m.now) //copart:allocok phase-boundary refresh, amortized over the phase's many periods
				a.phaseIdx = idx
				a.digest = modelDigest(&a.resolved)
			}
		}
		a.activeIdx = len(sc.models)
		sc.models = append(sc.models, a.resolved)
		sc.allocs = append(sc.allocs, a.alloc)
		if m.cache != nil {
			sc.digests = append(sc.digests, a.digest)
		}
	}
	if !m.hasPhases {
		m.gatherValid = true
	}
	return sc.models, sc.allocs, sc.digests
}

// Solve computes the steady-state performance of every active application
// at the current system state and virtual time (phased models resolve to
// their active phase), in Apps() order. The machine state is not
// modified. The returned slice is freshly allocated and safe to retain.
//
//copart:noalloc
func (m *Machine) Solve() ([]Perf, error) {
	models, allocs, digests := m.gatherActive()
	if len(models) == 0 {
		return nil, nil
	}
	perfs := make([]Perf, len(models)) //copart:allocok the returned slice is the API contract: callers may retain it
	if err := m.solveForInto(perfs, models, allocs, digests, true); err != nil {
		return nil, err
	}
	return perfs, nil
}

// solveActiveScratch is Solve writing into the machine-owned perfs
// scratch: zero allocations at steady state, valid only until the next
// solve. Step and Occupancy consume the results immediately and use it
// instead of Solve.
//
//copart:noalloc
func (m *Machine) solveActiveScratch() ([]Perf, error) {
	// Work skipping: when nothing a solver reads has changed since the
	// last scratch solve, the previous steady state is still exact —
	// return it without touching the cache tiers. Phased machines are
	// excluded because their resolved models move with virtual time.
	if m.solveClean && !m.hasPhases {
		return m.scratch.view, nil
	}
	models, allocs, digests := m.gatherActive()
	if len(models) == 0 {
		return nil, nil
	}
	sc := &m.scratch
	if cap(sc.perfs) < len(models) {
		sc.perfs = make([]Perf, len(models))
	}
	sc.perfs = sc.perfs[:len(models)]
	// solveRef hands back a cache tier's entry directly on a hit — the
	// dominant fleet steady state — so the per-period path moves no Perf
	// structs at all; only a fresh solve writes into sc.perfs.
	out, err := m.solveRef(sc.perfs, models, allocs, digests, true, true)
	if err != nil {
		return nil, err
	}
	sc.view = out
	m.solveClean = true
	return out, nil
}

// SolveFor solves the model for an arbitrary hypothetical set of
// applications and allocations — used by the ST oracle policy and the
// characterization sweeps without touching machine state. The returned
// slice is freshly allocated and safe to retain.
func (m *Machine) SolveFor(models []AppModel, allocs []Alloc) ([]Perf, error) {
	if len(models) == 0 && len(allocs) == 0 {
		return nil, nil
	}
	perfs := make([]Perf, len(models))
	if err := m.solveForInto(perfs, models, allocs, nil, false); err != nil {
		return nil, err
	}
	return perfs, nil
}

// SolveForInto is SolveFor writing the steady state into perfs
// (len(perfs) must equal len(models)). Callers that score many
// hypothetical states — the ST oracle's exhaustive search evaluates tens
// of thousands per mix — reuse one perfs buffer and keep the scoring
// loop allocation-free. Callers solving one fixed model set at many
// allocations should prefer a SolveSession, which hoists the model
// digests out of the loop.
func (m *Machine) SolveForInto(perfs []Perf, models []AppModel, allocs []Alloc) error {
	if len(perfs) != len(models) {
		return fmt.Errorf("machine: %d perf slots for %d models", len(perfs), len(models))
	}
	return m.solveForInto(perfs, models, allocs, nil, false)
}

// SolveSession solves one fixed set of models at many allocations with
// the model digests computed once. The models slice is captured by
// reference and must not be mutated while the session is in use; the
// session shares the machine's scratch and is no more goroutine-safe
// than the machine itself.
type SolveSession struct {
	m       *Machine
	models  []AppModel
	digests []uint64
}

// NewSolveSession prepares a digest-hoisted solving session over models.
func (m *Machine) NewSolveSession(models []AppModel) *SolveSession {
	s := &SolveSession{m: m, models: models}
	if m.cache != nil {
		s.digests = make([]uint64, len(models))
		for i := range models {
			s.digests[i] = modelDigest(&models[i])
		}
	}
	return s
}

// SolveInto solves the session's models at allocs into perfs
// (len(perfs) must equal len(models)). Sessions cache through the
// shared L2 only: their canonical user — the ST oracle's exhaustive
// search — never revisits a state within one run, so populating the
// per-machine L1 would be pure map churn; the cross-run reuse all lives
// in the process-wide tier.
func (s *SolveSession) SolveInto(perfs []Perf, allocs []Alloc) error {
	if len(perfs) != len(s.models) {
		return fmt.Errorf("machine: %d perf slots for %d models", len(perfs), len(s.models))
	}
	return s.m.solveInto(perfs, s.models, allocs, s.digests, false, false)
}

// SteadyMeasurement reports whether stepping this machine by a fixed
// period at a fixed allocation state always accumulates identical
// counter deltas: true unless measurement noise or phase schedules make
// nominally-identical periods differ. Controllers use it to decide
// whether period-level measurements may be memoized (see core's score
// memo).
func (m *Machine) SteadyMeasurement() bool {
	return m.cfg.MeasurementNoise == 0 && !m.hasPhases
}

// solveForInto is the common solver entry: validate, consult the memo
// caches (per-machine L1, then the process-wide shared L2), and solve
// per socket domain, writing the steady state into perfs
// (len(perfs) == len(models)). digests must either be nil (computed on
// demand into scratch) or hold modelDigest of each resolved model.
//
//copart:noalloc
func (m *Machine) solveForInto(perfs []Perf, models []AppModel, allocs []Alloc, digests []uint64, trusted bool) error {
	return m.solveInto(perfs, models, allocs, digests, true, trusted)
}

// solveInto is solveForInto with tier selection: useL1 false restricts
// caching to the shared L2 (the SolveSession path — states an
// exhaustive search never revisits intra-run would only churn the
// per-machine table). trusted skips the per-app input validation loop:
// it is set only for the machine's own state (solveActiveScratch,
// Solve), where every allocation was validated by SetAllocation on the
// way in and every model by AddApp — re-checking each app on each of a
// control run's thousands of solves was pure overhead. External
// hypothetical states (SolveFor, sessions) stay fully validated.
//
//copart:noalloc
func (m *Machine) solveInto(perfs []Perf, models []AppModel, allocs []Alloc, digests []uint64, useL1, trusted bool) error {
	out, err := m.solveRef(perfs, models, allocs, digests, useL1, trusted)
	if err != nil {
		return err
	}
	if len(out) != 0 && &out[0] != &perfs[0] {
		copy(perfs, out)
	}
	return nil
}

// solveRef is solveInto returning the steady state by reference: on a
// cache hit it hands back the tier's immutable entry instead of copying
// it into perfs, and only a fresh solve writes perfs (and returns it).
// Callers either copy (solveInto) or treat the result as read-only
// (solveActiveScratch, whose consumers Step and Occupancy never write).
//
//copart:noalloc
func (m *Machine) solveRef(perfs []Perf, models []AppModel, allocs []Alloc, digests []uint64, useL1, trusted bool) ([]Perf, error) {
	if len(models) != len(allocs) {
		return nil, fmt.Errorf("machine: %d models, %d allocs", len(models), len(allocs))
	}
	sockets := m.cfg.SocketCount()
	if !trusted {
		for i, al := range allocs {
			if al.CBM == 0 || al.CBM&^m.fullMask != 0 {
				return nil, fmt.Errorf("machine: invalid CBM %#x for app %d", al.CBM, i)
			}
			if err := membw.ValidateLevel(al.MBALevel); err != nil {
				return nil, fmt.Errorf("machine: app %d: %w", i, err)
			}
			if s := models[i].Socket; s < 0 || s >= sockets {
				return nil, fmt.Errorf("machine: app %d on socket %d, machine has %d",
					i, s, sockets)
			}
		}
	}
	shared := m.cache != nil && SharedSolveCacheEnabled()
	if m.cache != nil && (useL1 || shared) {
		if digests == nil {
			sc := &m.scratch
			sc.extDigests = sc.extDigests[:0]
			for i := range models {
				sc.extDigests = append(sc.extDigests, modelDigest(&models[i])) //copart:allocok amortized append growth on the external-solve path
			}
			digests = sc.extDigests
		}
		m.cache.encodeKey(m.cfgDigest, digests, allocs)
		if useL1 {
			if cached, ok := m.cache.lookup(); ok {
				return cached, nil
			}
		}
		if shared {
			if cached, ok := sharedSolve.lookup(m.cache.key, m.cache.fp); ok {
				m.cache.sharedHits.Add(1)
				if useL1 {
					// Adopt the entry into the L1 exactly as a fresh solve
					// would store it, so the L1 trajectory (and its
					// counters) is independent of whether the L2 served
					// the miss.
					m.cache.store(cached)
				}
				return cached, nil
			}
		}
	}
	// Sockets are independent resource domains: each has its own LLC and
	// DRAM budget, so the solver runs per socket and the results are
	// merged back in input order.
	if sockets > 1 {
		for s := 0; s < sockets; s++ {
			var idx []int //copart:allocok multi-socket split is off the guarded single-socket hot path
			for i := range models {
				if models[i].Socket == s {
					idx = append(idx, i) //copart:allocok multi-socket split is off the guarded single-socket hot path
				}
			}
			if len(idx) == 0 {
				continue
			}
			subModels := make([]AppModel, len(idx)) //copart:allocok multi-socket split is off the guarded single-socket hot path
			subAllocs := make([]Alloc, len(idx))    //copart:allocok multi-socket split is off the guarded single-socket hot path
			subPerfs := make([]Perf, len(idx))      //copart:allocok multi-socket split is off the guarded single-socket hot path
			for j, i := range idx {
				subModels[j] = models[i]
				subAllocs[j] = allocs[i]
			}
			if err := m.solveDomainInto(subPerfs, subModels, subAllocs); err != nil {
				return nil, err
			}
			for j, i := range idx {
				perfs[i] = subPerfs[j]
			}
		}
	} else if err := m.solveDomainInto(perfs, models, allocs); err != nil {
		return nil, err
	}
	if m.cache != nil && (useL1 || shared) {
		// encodeKey left the key in the cache's scratch. One fresh
		// immutable copy backs both tiers: the L1 owns it, and the L2
		// publishes the same slice to other machines (nobody writes
		// through a stored entry, so aliasing is safe).
		entry := make([]Perf, len(perfs)) //copart:allocok cache-miss path: one immutable entry backs both cache tiers
		copy(entry, perfs)
		if useL1 {
			m.cache.store(entry)
			if shared {
				// Self-visibility is already guaranteed by the L1, so the
				// L2 publication is deferred into the pending batch that
				// Step flushes once per period (one striped acquire per
				// node-period instead of one mutex acquire per solve).
				// Publication timing only shifts which machine's L2
				// hit/miss counter moves — documented nondeterministic.
				m.cache.pend(entry)
			}
		} else if shared {
			// SolveSession states are never revisited intra-run and have
			// no L1 for self-visibility, so they publish directly.
			sharedSolve.store(m.cache.key, m.cache.fp, entry)
		}
	}
	return perfs, nil
}

// FlushShared publishes the pending L2 entries batched since the last
// flush, grouped so each distinct shard's lock is taken once (see
// sharedCache.storeBatch). Machine calls it on period boundaries (Step)
// and on Reset, and the pending buffer flushes itself when it reaches
// capacity; drivers that solve without stepping — sweeps over SolveFor —
// may call it to publish eagerly. Safe without a cache or with nothing
// pending.
//
//copart:noalloc
func (m *Machine) FlushShared() {
	if m.cache == nil || len(m.cache.pendFps) == 0 {
		return
	}
	if SharedSolveCacheEnabled() {
		sharedSolve.storeBatch(m.cache.pendArena, m.cache.pendEnds, m.cache.pendFps, m.cache.pendEntries)
	}
	m.cache.clearPending()
}

// solveDomainInto solves one socket's applications against one LLC and
// one DRAM budget, writing the steady state into perfs
// (len(perfs) == len(models)). All intermediate state lives in the
// per-Machine scratch, so the fixed-point rounds are allocation-free.
func (m *Machine) solveDomainInto(perfs []Perf, models []AppModel, allocs []Alloc) error {
	n := len(models)
	sc := &m.scratch
	sc.caps = growFloats(sc.caps, n)
	m.initialCapacitiesInto(sc.caps, allocs)
	sc.demands = growDemands(sc.demands, n)
	sc.mbaDelay = growFloats(sc.mbaDelay, n)
	sc.bwCaps = growFloats(sc.bwCaps, n)
	// The MBA latency factor and bandwidth cap depend only on the
	// allocation, which is fixed across rounds — hoist both (and their
	// math.Pow evaluations) out of the fixed-point loop.
	for i := range models {
		sc.mbaDelay[i] = 1 + m.cfg.MBALatencyK*math.Pow(1-float64(allocs[i].MBALevel)/100, m.cfg.MBALatencyP)
		cap, err := m.arbiter.Cap(allocs[i].MBALevel, models[i].Cores)
		if err != nil {
			return err
		}
		sc.bwCaps[i] = cap
		sc.demands[i].MBALevel = allocs[i].MBALevel
		sc.demands[i].Cores = models[i].Cores
	}

	// Outer loop: occupancy shares (for overlapping CBMs) and bus
	// congestion both depend on solved rates; damped fixed-point rounds
	// converge to the sharing equilibrium (the occupancy feedback is
	// non-monotone: losing capacity raises an application's miss rate,
	// which raises its insertion pressure, which wins capacity back).
	// With exclusive CBMs — the common case under every partitioning
	// policy — capacities are fixed and only the congestion feedback
	// needs a few rounds.
	shared := m.anySharedWay(allocs)
	iters := 3
	if shared {
		iters = 10
	}
	stretch := 1.0
	for iter := 0; iter < iters; iter++ {
		for i := range models {
			perfs[i] = m.solveApp(models[i], sc.mbaDelay[i], sc.caps[i], stretch, math.Inf(1))
			sc.demands[i].Bytes = perfs[i].DemandBW
		}
		if err := m.arbiter.AllocateCapped(&sc.arbRes, sc.demands, sc.bwCaps); err != nil {
			return err
		}
		stretch = sc.arbRes.Stretch
		for i := range models {
			perfs[i] = m.solveApp(models[i], sc.mbaDelay[i], sc.caps[i], stretch, sc.arbRes.Grants[i])
		}
		if shared {
			sc.next = growFloats(sc.next, n)
			m.occupancySharesInto(sc.next, allocs, perfs)
			// Damping stabilizes the insertion-pressure feedback loop.
			for i := range sc.caps {
				sc.caps[i] = 0.5*sc.caps[i] + 0.5*sc.next[i]
			}
		}
	}
	return nil
}

// growFloats returns s resized to n (zeroed), reusing its backing array
// when the capacity suffices.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// growDemands is growFloats for demand buffers.
func growDemands(s []membw.Demand, n int) []membw.Demand {
	if cap(s) < n {
		return make([]membw.Demand, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = membw.Demand{}
	}
	return s
}

// anySharedWay reports whether any LLC way appears in more than one CBM.
func (m *Machine) anySharedWay(allocs []Alloc) bool {
	var seen, overlap uint64
	for _, al := range allocs {
		overlap |= seen & al.CBM
		seen |= al.CBM
	}
	return overlap != 0 && len(allocs) > 1
}

// solveApp evaluates one application's performance at a fixed effective
// capacity, congestion stretch, and bandwidth grant. mbaDelay is the
// precomputed MBA latency factor for the application's allocation.
func (m *Machine) solveApp(model AppModel, mbaDelay, capBytes, stretch, grant float64) Perf {
	mr, weightedMiss := model.MissBreakdown(capBytes)
	missCycles := m.cfg.MissCostCycles * stretch * mbaDelay * weightedMiss
	cpi := model.CPIBase + model.AccPerInstr*(m.cfg.HitCostCycles*(1-mr)+missCycles)
	ips := float64(model.Cores) * m.cfg.FreqHz / cpi
	bytesPerMiss := m.cfg.LineBytes * m.cfg.WritebackFactor
	demand := ips * model.AccPerInstr * mr * bytesPerMiss
	if demand > 0 && grant < demand {
		// Bandwidth-bound: the miss stream is limited to the grant
		// (roofline); instruction throughput follows.
		ips = grant / (model.AccPerInstr * mr * bytesPerMiss)
	}
	return Perf{
		IPS:        ips,
		MissRatio:  mr,
		AccessRate: ips * model.AccPerInstr,
		MissRate:   ips * model.AccPerInstr * mr,
		CapBytes:   capBytes,
		DemandBW:   demand,
		GrantBW:    math.Min(demand, grant),
	}
}

// initialCapacitiesInto seeds the occupancy iteration: each way's
// capacity is split evenly among the applications whose CBM includes
// it. caps must be zeroed with len(caps) == len(allocs).
func (m *Machine) initialCapacitiesInto(caps []float64, allocs []Alloc) {
	for w := 0; w < m.cfg.LLCWays; w++ {
		bit := uint64(1) << uint(w)
		sharers := 0
		for _, al := range allocs {
			if al.CBM&bit != 0 {
				sharers++
			}
		}
		if sharers == 0 {
			continue
		}
		per := m.cfg.WayBytes / float64(sharers)
		for i, al := range allocs {
			if al.CBM&bit != 0 {
				caps[i] += per
			}
		}
	}
}

// occupancySharesInto refines effective capacities: within each way, the
// sharing applications occupy space in proportion to their *insertion*
// pressure — the miss rate, since every miss installs a line — with a
// small access-rate term for reuse-driven recency protection. This is
// what makes unpartitioned sharing brutal for cache-friendly
// applications, as on real LRU hardware: a streamer with a high miss
// rate continuously installs dead lines and evicts a neighbour's hot
// set, even though the neighbour's *access* rate may be far higher (the
// interference premise of the paper's §1). Exclusive ways degenerate to
// their full capacity, so partitioned runs are exact.
//
// caps must be zeroed with len(caps) == len(allocs).
//
//copart:noalloc solver inner loop, runs per candidate allocation inside Solve
func (m *Machine) occupancySharesInto(caps []float64, allocs []Alloc, perfs []Perf) {
	// reuseWeight credits a fraction of reuse (hit) traffic as retention
	// pressure: LRU does protect re-referenced lines, just far less than
	// proportionally.
	const reuseWeight = 0.05
	pressure := func(i int) float64 { //copart:allocok non-escaping closure called in-function only, stack-allocated (TestSolveAllocationGuard pins the path)
		hits := perfs[i].AccessRate - perfs[i].MissRate
		return perfs[i].MissRate + reuseWeight*hits
	}
	for w := 0; w < m.cfg.LLCWays; w++ {
		bit := uint64(1) << uint(w)
		totalPressure := 0.0
		sharers := 0
		for i, al := range allocs {
			if al.CBM&bit != 0 {
				totalPressure += pressure(i)
				sharers++
			}
		}
		if sharers == 0 {
			continue
		}
		for i, al := range allocs {
			if al.CBM&bit == 0 {
				continue
			}
			if totalPressure <= 0 {
				caps[i] += m.cfg.WayBytes / float64(sharers)
			} else {
				caps[i] += m.cfg.WayBytes * pressure(i) / totalPressure
			}
		}
	}
}

// SoloPerf solves the performance of a single application running alone
// with the full machine (all ways, MBA 100 %) — the IPS_full denominator
// of Equation 1.
func (m *Machine) SoloPerf(model AppModel) (Perf, error) {
	perfs, err := m.SolveFor(
		[]AppModel{model},
		[]Alloc{{CBM: m.cfg.FullMask(), MBALevel: membw.MaxLevel}},
	)
	if err != nil {
		return Perf{}, err
	}
	return perfs[0], nil
}

// SoloPerfAt solves a single application running alone at an arbitrary
// allocation — the primitive behind the Figures 1–3 characterization
// sweeps.
func (m *Machine) SoloPerfAt(model AppModel, alloc Alloc) (Perf, error) {
	perfs, err := m.SolveFor([]AppModel{model}, []Alloc{alloc})
	if err != nil {
		return Perf{}, err
	}
	return perfs[0], nil
}
