package machine

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/membw"
)

// Test models spanning the paper's four sensitivity classes.

func llcSensitiveModel() AppModel {
	return AppModel{
		Name: "llc", Cores: 4, CPIBase: 0.9, AccPerInstr: 0.009,
		Hot:        []WSComponent{{Bytes: 8 << 20, Weight: 0.999}},
		StreamFrac: 0.001,
	}
}

func bwSensitiveModel() AppModel {
	return AppModel{
		Name: "bw", Cores: 4, CPIBase: 0.8, AccPerInstr: 0.04,
		Hot:        []WSComponent{{Bytes: 1 << 20, Weight: 0.1}},
		StreamFrac: 0.9,
		MLP:        10,
	}
}

func dualSensitiveModel() AppModel {
	return AppModel{
		Name: "dual", Cores: 4, CPIBase: 0.8, AccPerInstr: 0.02,
		Hot:        []WSComponent{{Bytes: 10 << 20, Weight: 0.55}},
		StreamFrac: 0.45,
		MLP:        4,
	}
}

func insensitiveModel() AppModel {
	return AppModel{
		Name: "ins", Cores: 4, CPIBase: 0.6, AccPerInstr: 1e-6,
		StreamFrac: 1,
	}
}

func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func alloc(ways, mba int) Alloc {
	return Alloc{CBM: (uint64(1) << ways) - 1, MBALevel: mba}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Cores != 16 {
		t.Errorf("cores=%d want 16", cfg.Cores)
	}
	if cfg.LLCWays != 11 {
		t.Errorf("ways=%d want 11", cfg.LLCWays)
	}
	if cfg.WayBytes*float64(cfg.LLCWays) != 22<<20 {
		t.Errorf("LLC capacity %v want 22MB", cfg.WayBytes*float64(cfg.LLCWays))
	}
	if cfg.FreqHz != 2.1e9 {
		t.Errorf("freq=%v want 2.1GHz", cfg.FreqHz)
	}
	if cfg.BW.TotalBandwidth != 28e9 {
		t.Errorf("bandwidth=%v want 28GB/s", cfg.BW.TotalBandwidth)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := DefaultConfig()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cores should error")
	}
	bad = DefaultConfig()
	bad.WritebackFactor = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("writeback < 1 should error")
	}
	bad = DefaultConfig()
	bad.MissCostCycles = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero miss cost should error")
	}
}

func TestModelValidate(t *testing.T) {
	if err := llcSensitiveModel().Validate(); err != nil {
		t.Error(err)
	}
	bad := llcSensitiveModel()
	bad.StreamFrac = 0.5 // weights no longer sum to 1
	if err := bad.Validate(); err == nil {
		t.Error("weight sum != 1 should error")
	}
	bad = llcSensitiveModel()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name should error")
	}
	bad = llcSensitiveModel()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cores should error")
	}
	bad = llcSensitiveModel()
	bad.Hot = []WSComponent{{Bytes: -1, Weight: 0.999}}
	if err := bad.Validate(); err == nil {
		t.Error("negative component size should error")
	}
}

func TestMissRatioCurveShape(t *testing.T) {
	m := llcSensitiveModel()
	// Monotone non-increasing in capacity.
	prev := 2.0
	for c := 0.0; c <= 24<<20; c += 1 << 20 {
		mr := m.MissRatio(c)
		if mr > prev+1e-12 {
			t.Fatalf("miss ratio not monotone at %v: %v > %v", c, mr, prev)
		}
		if mr < 0 || mr > 1 {
			t.Fatalf("miss ratio %v out of range", mr)
		}
		prev = mr
	}
	// Fits at 8MB: only the stream fraction misses.
	if mr := m.MissRatio(8 << 20); math.Abs(mr-0.001) > 1e-9 {
		t.Errorf("fitting working set should leave only stream misses, got %v", mr)
	}
	// Negative capacity clamps.
	if mr := m.MissRatio(-5); mr != 1.0 {
		t.Errorf("zero capacity miss ratio %v want 1", mr)
	}
}

func TestFootprint(t *testing.T) {
	m := dualSensitiveModel()
	if m.Footprint() != 10<<20 {
		t.Errorf("footprint %v want 10MB", m.Footprint())
	}
}

func TestAddRemoveApps(t *testing.T) {
	m := newMachine(t)
	if err := m.AddApp(llcSensitiveModel()); err != nil {
		t.Fatal(err)
	}
	if err := m.AddApp(llcSensitiveModel()); err == nil {
		t.Error("duplicate app name should error")
	}
	bw := bwSensitiveModel()
	if err := m.AddApp(bw); err != nil {
		t.Fatal(err)
	}
	if got := m.Apps(); len(got) != 2 || got[0] != "llc" || got[1] != "bw" {
		t.Errorf("Apps()=%v", got)
	}
	if err := m.RemoveApp("llc"); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveApp("llc"); err == nil {
		t.Error("double remove should error")
	}
	if err := m.RemoveApp("nope"); err == nil {
		t.Error("unknown app should error")
	}
	if got := m.Apps(); len(got) != 1 || got[0] != "bw" {
		t.Errorf("Apps() after remove=%v", got)
	}
}

func TestAddAppCoreLimit(t *testing.T) {
	m := newMachine(t)
	big := llcSensitiveModel()
	big.Cores = 16
	if err := m.AddApp(big); err != nil {
		t.Fatal(err)
	}
	other := bwSensitiveModel()
	if err := m.AddApp(other); err == nil {
		t.Error("core oversubscription should error")
	}
}

func TestSetAllocationValidation(t *testing.T) {
	m := newMachine(t)
	if err := m.AddApp(llcSensitiveModel()); err != nil {
		t.Fatal(err)
	}
	if err := m.SetAllocation("llc", Alloc{CBM: 0, MBALevel: 100}); err == nil {
		t.Error("zero CBM should error")
	}
	if err := m.SetAllocation("llc", Alloc{CBM: 1 << 12, MBALevel: 100}); err == nil {
		t.Error("out-of-range CBM should error")
	}
	if err := m.SetAllocation("llc", Alloc{CBM: 0b101, MBALevel: 100}); err == nil {
		t.Error("non-contiguous CBM should error")
	}
	if err := m.SetAllocation("llc", Alloc{CBM: 0b11, MBALevel: 15}); err == nil {
		t.Error("invalid MBA level should error")
	}
	if err := m.SetAllocation("llc", Alloc{CBM: 0b1110, MBALevel: 50}); err != nil {
		t.Errorf("valid allocation rejected: %v", err)
	}
	got, err := m.Allocation("llc")
	if err != nil {
		t.Fatal(err)
	}
	if got.CBM != 0b1110 || got.MBALevel != 50 || got.Ways() != 3 {
		t.Errorf("Allocation=%+v", got)
	}
}

func TestLLCSensitivityShape(t *testing.T) {
	// Figure 1 shape: performance rises steeply with ways, flat in MBA.
	m := newMachine(t)
	model := llcSensitiveModel()
	full, err := m.SoloPerf(model)
	if err != nil {
		t.Fatal(err)
	}
	oneWay, err := m.SoloPerfAt(model, alloc(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if oneWay.IPS > 0.85*full.IPS {
		t.Errorf("LLC-sensitive app should lose ≥15%% at 1 way: %v vs %v", oneWay.IPS, full.IPS)
	}
	lowBW, err := m.SoloPerfAt(model, alloc(11, 10))
	if err != nil {
		t.Fatal(err)
	}
	if lowBW.IPS < 0.99*full.IPS {
		t.Errorf("LLC-sensitive app should be <1%% sensitive to MBA at full ways: %v vs %v",
			lowBW.IPS, full.IPS)
	}
	// 4 ways (8MB) fit the working set: ≥90% of full performance.
	fourWays, err := m.SoloPerfAt(model, alloc(4, 100))
	if err != nil {
		t.Fatal(err)
	}
	if fourWays.IPS < 0.9*full.IPS {
		t.Errorf("4 ways should reach 90%% for an 8MB working set: %v vs %v", fourWays.IPS, full.IPS)
	}
}

func TestBWSensitivityShape(t *testing.T) {
	// Figure 2 shape: performance tracks MBA, flat in ways.
	m := newMachine(t)
	model := bwSensitiveModel()
	full, err := m.SoloPerf(model)
	if err != nil {
		t.Fatal(err)
	}
	lowBW, err := m.SoloPerfAt(model, alloc(11, 10))
	if err != nil {
		t.Fatal(err)
	}
	if lowBW.IPS > 0.85*full.IPS {
		t.Errorf("BW-sensitive app should lose ≥15%% at MBA 10: %v vs %v", lowBW.IPS, full.IPS)
	}
	oneWay, err := m.SoloPerfAt(model, alloc(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if oneWay.IPS < 0.85*full.IPS {
		t.Errorf("BW-sensitive app should be nearly insensitive to ways: %v vs %v", oneWay.IPS, full.IPS)
	}
}

func TestDualSensitivityShape(t *testing.T) {
	// Figure 3 shape: sensitive to both axes.
	m := newMachine(t)
	model := dualSensitiveModel()
	full, err := m.SoloPerf(model)
	if err != nil {
		t.Fatal(err)
	}
	oneWay, _ := m.SoloPerfAt(model, alloc(1, 100))
	lowBW, _ := m.SoloPerfAt(model, alloc(11, 10))
	if oneWay.IPS > 0.85*full.IPS {
		t.Errorf("dual app should be LLC-sensitive: %v vs %v", oneWay.IPS, full.IPS)
	}
	if lowBW.IPS > 0.85*full.IPS {
		t.Errorf("dual app should be BW-sensitive: %v vs %v", lowBW.IPS, full.IPS)
	}
}

func TestInsensitiveShape(t *testing.T) {
	m := newMachine(t)
	model := insensitiveModel()
	full, err := m.SoloPerf(model)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := m.SoloPerfAt(model, alloc(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if worst.IPS < 0.99*full.IPS {
		t.Errorf("insensitive app should lose <1%% at minimum resources: %v vs %v", worst.IPS, full.IPS)
	}
}

func TestConsolidationInterference(t *testing.T) {
	// Two heavy streamers sharing the machine without partitioning run
	// slower than either alone (congestion + shared budget).
	m := newMachine(t)
	a := bwSensitiveModel()
	b := bwSensitiveModel()
	b.Name = "bw2"
	if err := m.AddApp(a); err != nil {
		t.Fatal(err)
	}
	if err := m.AddApp(b); err != nil {
		t.Fatal(err)
	}
	solo, err := m.SoloPerf(a)
	if err != nil {
		t.Fatal(err)
	}
	perfs, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range perfs {
		if p.IPS >= solo.IPS {
			t.Errorf("app %d should suffer interference: %v vs solo %v", i, p.IPS, solo.IPS)
		}
	}
}

func TestExclusivePartitionProtectsCapacity(t *testing.T) {
	// An LLC-sensitive app co-running with a streamer: exclusive ways
	// restore most of its solo performance vs. full overlap.
	m := newMachine(t)
	llc := llcSensitiveModel()
	bw := bwSensitiveModel()
	if err := m.AddApp(llc); err != nil {
		t.Fatal(err)
	}
	if err := m.AddApp(bw); err != nil {
		t.Fatal(err)
	}
	sharedPerfs, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Partition: llc gets ways 0-5, bw gets 6-10.
	if err := m.SetAllocation("llc", Alloc{CBM: 0b00000111111, MBALevel: 100}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetAllocation("bw", Alloc{CBM: 0b11111000000, MBALevel: 100}); err != nil {
		t.Fatal(err)
	}
	partPerfs, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if partPerfs[0].IPS <= sharedPerfs[0].IPS {
		t.Errorf("partitioning should protect the LLC-sensitive app: %v vs %v",
			partPerfs[0].IPS, sharedPerfs[0].IPS)
	}
}

func TestStepAccumulatesCounters(t *testing.T) {
	m := newMachine(t)
	if err := m.AddApp(llcSensitiveModel()); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	c1, err := m.ReadCounters("llc")
	if err != nil {
		t.Fatal(err)
	}
	if c1.Instructions <= 0 || c1.LLCAccesses <= 0 {
		t.Errorf("counters should advance: %+v", c1)
	}
	if err := m.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	c2, _ := m.ReadCounters("llc")
	if c2.Instructions <= c1.Instructions {
		t.Error("counters must be cumulative")
	}
	if m.Now() != 2*time.Second {
		t.Errorf("Now()=%v want 2s", m.Now())
	}
	if err := m.Step(0); err == nil {
		t.Error("zero step should error")
	}
}

func TestStepRatesMatchSolve(t *testing.T) {
	m := newMachine(t)
	if err := m.AddApp(bwSensitiveModel()); err != nil {
		t.Fatal(err)
	}
	perfs, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	c, _ := m.ReadCounters("bw")
	if math.Abs(c.Instructions-2*perfs[0].IPS) > 1e-6*c.Instructions {
		t.Errorf("instructions %v want %v", c.Instructions, 2*perfs[0].IPS)
	}
	if math.Abs(c.LLCMisses-2*perfs[0].MissRate) > 1e-6*math.Max(c.LLCMisses, 1) {
		t.Errorf("misses %v want %v", c.LLCMisses, 2*perfs[0].MissRate)
	}
}

func TestSolveForValidation(t *testing.T) {
	m := newMachine(t)
	if _, err := m.SolveFor([]AppModel{llcSensitiveModel()}, nil); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := m.SolveFor(
		[]AppModel{llcSensitiveModel()},
		[]Alloc{{CBM: 0, MBALevel: 100}},
	); err == nil {
		t.Error("zero CBM should error")
	}
	if _, err := m.SolveFor(
		[]AppModel{llcSensitiveModel()},
		[]Alloc{{CBM: 1, MBALevel: 13}},
	); err == nil {
		t.Error("bad MBA should error")
	}
	got, err := m.SolveFor(nil, nil)
	if err != nil || got != nil {
		t.Errorf("empty solve: %v, %v", got, err)
	}
}

func TestCounterAccessErrors(t *testing.T) {
	m := newMachine(t)
	if _, err := m.ReadCounters("ghost"); err == nil {
		t.Error("unknown app should error")
	}
	if _, err := m.Allocation("ghost"); err == nil {
		t.Error("unknown app should error")
	}
	if _, err := m.Model("ghost"); err == nil {
		t.Error("unknown app should error")
	}
}

// Property: solo performance is monotone non-decreasing in both allocated
// ways and MBA level — more resources never hurt in the model.
func TestMonotonePerformanceProperty(t *testing.T) {
	m := newMachine(t)
	models := []AppModel{
		llcSensitiveModel(), bwSensitiveModel(), dualSensitiveModel(), insensitiveModel(),
	}
	f := func(modelIdx, waysRaw, mbaRaw uint8) bool {
		model := models[int(modelIdx)%len(models)]
		ways := int(waysRaw)%10 + 1 // 1..10, compare to ways+1
		mba := membw.ClampLevel(int(mbaRaw)%90 + 10)
		if mba > 90 {
			mba = 90
		}
		base, err := m.SoloPerfAt(model, alloc(ways, mba))
		if err != nil {
			return false
		}
		moreWays, err := m.SoloPerfAt(model, alloc(ways+1, mba))
		if err != nil {
			return false
		}
		moreBW, err := m.SoloPerfAt(model, alloc(ways, mba+10))
		if err != nil {
			return false
		}
		const eps = 1e-9
		return moreWays.IPS >= base.IPS*(1-eps) && moreBW.IPS >= base.IPS*(1-eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: miss ratio is within [0,1] and monotone in capacity for
// arbitrary two-component models.
func TestMissRatioProperty(t *testing.T) {
	f := func(s1, s2, w1Raw uint16) bool {
		w1 := float64(w1Raw%90+5) / 100 // 0.05..0.94
		m := AppModel{
			Name: "p", Cores: 1, CPIBase: 1, AccPerInstr: 0.01,
			Hot: []WSComponent{
				{Bytes: float64(s1%64+1) * (1 << 20), Weight: w1},
				{Bytes: float64(s2%64+1) * (1 << 20), Weight: 0.95 - w1},
			},
			StreamFrac: 0.05,
		}
		if err := m.Validate(); err != nil {
			return false
		}
		prev := 1.1
		for c := 0.0; c <= 70<<20; c += 1 << 20 {
			mr := m.MissRatio(c)
			if mr < 0 || mr > 1 || mr > prev+1e-12 {
				return false
			}
			prev = mr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAssignContiguousWays(t *testing.T) {
	masks, err := AssignContiguousWays([]int{5, 3, 2, 1}, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0b00000011111, 0b00011100000, 0b01100000000, 0b10000000000}
	for i := range want {
		if masks[i] != want[i] {
			t.Errorf("mask[%d]=%#b want %#b", i, masks[i], want[i])
		}
	}
	// Masks are disjoint.
	var union uint64
	for _, m := range masks {
		if union&m != 0 {
			t.Error("masks overlap")
		}
		union |= m
	}
	if _, err := AssignContiguousWays([]int{0, 1}, 0, 11); err == nil {
		t.Error("zero ways should error")
	}
	if _, err := AssignContiguousWays([]int{6, 6}, 0, 11); err == nil {
		t.Error("oversubscription should error")
	}
	if _, err := AssignContiguousWays([]int{1}, -1, 11); err == nil {
		t.Error("negative lo should error")
	}
}

func TestAssignContiguousWaysWindow(t *testing.T) {
	masks, err := AssignContiguousWays([]int{2, 2}, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if masks[0] != 0b00110000 || masks[1] != 0b11000000 {
		t.Errorf("windowed masks %#b %#b", masks[0], masks[1])
	}
}

func TestWayCounts(t *testing.T) {
	got := WayCounts([]uint64{0b111, 0b11000})
	if got[0] != 3 || got[1] != 2 {
		t.Errorf("WayCounts=%v", got)
	}
}

func TestEqualSplit(t *testing.T) {
	got, err := EqualSplit(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 3, 3, 2}
	sum := 0
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("EqualSplit=%v want %v", got, want)
		}
		sum += got[i]
	}
	if sum != 11 {
		t.Errorf("split sums to %d", sum)
	}
	if _, err := EqualSplit(3, 4); err == nil {
		t.Error("more apps than ways should error")
	}
	if _, err := EqualSplit(11, 0); err == nil {
		t.Error("zero apps should error")
	}
}
