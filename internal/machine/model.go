// Package machine simulates the commodity server of the paper (Table 1):
// a 16-core CPU with a shared way-partitioned LLC (Intel CAT) and per-CLOS
// memory-bandwidth throttles (Intel MBA) in front of a shared DRAM budget.
//
// The simulator is analytic and time-stepped. Each application is described
// by an AppModel — a working-set mixture that yields a miss-ratio curve,
// plus a memory intensity — and the machine solves, at each step, the
// coupled system of
//
//	capacity → miss ratio → unconstrained IPS → bandwidth demand
//	→ arbitration (MBA caps + shared budget + congestion) → achieved IPS,
//
// then advances the simulated performance counters (instructions, LLC
// accesses, LLC misses) that CoPart samples. This reproduces, for the
// controller, exactly the observable surface of the real machine: three
// PMC rates in, (ways, MBA level) out.
//
// Why this substitution is faithful: the controller never sees
// microarchitectural detail — only the response of the three counters to
// its allocations. The model produces the qualitative response surfaces of
// the paper's Figures 1–3 (capacity cliffs for LLC-sensitive applications,
// bandwidth-proportional throughput for streaming applications, and dual
// sensitivity with iso-performance contours for mixed ones), which is the
// entire behavioural contract the paper's mechanisms depend on.
package machine

import (
	"fmt"
	"math"
)

// WSComponent is one component of an application's hot working set.
// Components are listed hottest-first; under a capacity C the components
// are "filled" in order and a partially covered component hits in
// proportion to its coverage (a fractional-LRU approximation, which keeps
// the miss-ratio curve piecewise-linear and monotone).
type WSComponent struct {
	Bytes  float64 // size of the component in bytes
	Weight float64 // fraction of LLC accesses that touch it
	// MLP is the memory-level parallelism of misses to this component:
	// the average number of outstanding misses overlapped. Hot structures
	// are typically dependent (pointer-chasing, MLP≈1) while grid sweeps
	// overlap well. The zero value means 1.
	MLP float64
}

// effectiveMLP returns the component MLP, substituting 1 for zero.
func (c WSComponent) effectiveMLP() float64 {
	if c.MLP == 0 {
		return 1
	}
	return c.MLP
}

// AppModel is the analytic description of one application.
type AppModel struct {
	Name  string
	Cores int // dedicated cores (threads are pinned, as in §3.3)

	// CPIBase is cycles/instruction excluding LLC and memory stalls.
	CPIBase float64
	// AccPerInstr is LLC accesses per instruction (post-L2 filtering).
	AccPerInstr float64
	// Hot lists the hot working-set components, hottest first.
	Hot []WSComponent
	// StreamFrac is the fraction of LLC accesses that always miss
	// (streaming traffic with no temporal reuse).
	StreamFrac float64
	// MLP is the memory-level parallelism of the streaming misses: the
	// average number of outstanding misses overlapped. The visible stall
	// per streaming miss is the idle-bus miss cost divided by MLP, which
	// is what lets a streaming application be bandwidth-bound (high
	// demand) rather than latency-bound. The zero value means 1.
	MLP float64
	// Phases optionally make the application time-varying; see
	// ModelPhase. Empty means steady behaviour.
	Phases []ModelPhase
	// Socket is the home socket the application's threads are pinned to.
	// The paper's machine is single-socket (socket 0, the zero value);
	// multi-socket machines treat each socket as an independent LLC and
	// DRAM domain.
	Socket int
}

// EffectiveMLP returns the streaming MLP, substituting 1 for the zero value.
func (m AppModel) EffectiveMLP() float64 {
	if m.MLP == 0 {
		return 1
	}
	return m.MLP
}

// Validate checks model consistency: weights and the stream fraction must
// form a probability distribution over accesses.
func (m AppModel) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("machine: app model with empty name")
	}
	if m.Cores < 1 {
		return fmt.Errorf("machine: app %s has %d cores", m.Name, m.Cores)
	}
	if m.CPIBase <= 0 {
		return fmt.Errorf("machine: app %s has non-positive CPIBase %v", m.Name, m.CPIBase)
	}
	if m.AccPerInstr < 0 {
		return fmt.Errorf("machine: app %s has negative AccPerInstr %v", m.Name, m.AccPerInstr)
	}
	if m.StreamFrac < 0 || m.StreamFrac > 1 {
		return fmt.Errorf("machine: app %s has stream fraction %v outside [0,1]", m.Name, m.StreamFrac)
	}
	if m.MLP != 0 && m.MLP < 1 {
		return fmt.Errorf("machine: app %s has MLP %v < 1", m.Name, m.MLP)
	}
	for i, c := range m.Hot {
		if c.MLP != 0 && c.MLP < 1 {
			return fmt.Errorf("machine: app %s hot component %d has MLP %v < 1", m.Name, i, c.MLP)
		}
	}
	if err := validatePhases(m.Name, m.Phases); err != nil {
		return err
	}
	if m.Socket < 0 {
		return fmt.Errorf("machine: app %s on negative socket %d", m.Name, m.Socket)
	}
	total := m.StreamFrac
	for i, c := range m.Hot {
		if c.Bytes <= 0 {
			return fmt.Errorf("machine: app %s hot component %d has size %v", m.Name, i, c.Bytes)
		}
		if c.Weight < 0 {
			return fmt.Errorf("machine: app %s hot component %d has weight %v", m.Name, i, c.Weight)
		}
		total += c.Weight
	}
	if math.Abs(total-1) > 1e-6 {
		return fmt.Errorf("machine: app %s access weights sum to %v, want 1", m.Name, total)
	}
	return nil
}

// MissRatio evaluates the model's miss-ratio curve at an effective LLC
// capacity of capBytes.
func (m AppModel) MissRatio(capBytes float64) float64 {
	mr, _ := m.MissBreakdown(capBytes)
	return mr
}

// MissBreakdown evaluates the miss-ratio curve at capacity capBytes and
// additionally returns the MLP-weighted miss fraction
//
//	Σ_component missFrac_c / MLP_c  +  StreamFrac / MLP_stream,
//
// which, multiplied by the machine's idle-bus miss cost, gives the visible
// memory-stall cycles per LLC access.
func (m AppModel) MissBreakdown(capBytes float64) (missRatio, weightedMiss float64) {
	if capBytes < 0 {
		capBytes = 0
	}
	miss := m.StreamFrac
	weighted := m.StreamFrac / m.EffectiveMLP()
	remaining := capBytes
	for _, c := range m.Hot {
		coverage := 0.0
		if remaining > 0 {
			coverage = math.Min(1, remaining/c.Bytes)
			remaining -= math.Min(c.Bytes, remaining)
		}
		frac := c.Weight * (1 - coverage)
		miss += frac
		weighted += frac / c.effectiveMLP()
	}
	if miss < 0 {
		miss = 0
	}
	if miss > 1 {
		miss = 1
	}
	return miss, weighted
}

// Footprint returns the total hot working-set size in bytes, a convenience
// for tests and documentation tables.
func (m AppModel) Footprint() float64 {
	total := 0.0
	for _, c := range m.Hot {
		total += c.Bytes
	}
	return total
}
