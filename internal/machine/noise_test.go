package machine

import (
	"math"
	"testing"
	"time"
)

func noisyConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.MeasurementNoise = 0.05
	cfg.NoiseSeed = seed
	return cfg
}

func TestNoiseValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MeasurementNoise = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative noise should error")
	}
	cfg.MeasurementNoise = 0.6
	if err := cfg.Validate(); err == nil {
		t.Error("noise ≥ 0.5 should error")
	}
}

func TestNoiseOffByDefault(t *testing.T) {
	m1, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.AddApp(llcSensitiveModel()); err != nil {
		t.Fatal(err)
	}
	perfs, err := m1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	c, _ := m1.ReadCounters("llc")
	if math.Abs(c.Instructions-perfs[0].IPS) > 1e-6*perfs[0].IPS {
		t.Error("noiseless counters must match the solved rates exactly")
	}
}

func TestNoiseJittersCounters(t *testing.T) {
	m, err := New(noisyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddApp(llcSensitiveModel()); err != nil {
		t.Fatal(err)
	}
	perfs, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	jittered := false
	for i := 0; i < 10; i++ {
		if err := m.Step(time.Second); err != nil {
			t.Fatal(err)
		}
		c, _ := m.ReadCounters("llc")
		delta := c.Instructions - prev
		prev = c.Instructions
		// Counters stay monotone and within the clamp band.
		if delta < 0.5*perfs[0].IPS || delta > 1.5*perfs[0].IPS {
			t.Fatalf("period %d: delta %.3g outside the clamp band of %.3g", i, delta, perfs[0].IPS)
		}
		if math.Abs(delta-perfs[0].IPS) > 1e-3*perfs[0].IPS {
			jittered = true
		}
	}
	if !jittered {
		t.Error("noise enabled but counters never deviated")
	}
}

func TestNoiseDeterministicPerSeed(t *testing.T) {
	read := func(seed int64) float64 {
		m, err := New(noisyConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddApp(llcSensitiveModel()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := m.Step(time.Second); err != nil {
				t.Fatal(err)
			}
		}
		c, _ := m.ReadCounters("llc")
		return c.Instructions
	}
	if read(7) != read(7) {
		t.Error("same seed must reproduce identical counters")
	}
	if read(7) == read(8) {
		t.Error("different seeds should differ")
	}
}
