package machine

import "bytes"

// perfTable is the open-addressed fingerprint table behind both solve
// cache tiers: solver states keyed by their exact encoded key, entries
// dense and insertion-ordered. The previous map[string][]Perf tiers
// spent a measurable slice of every fleet period in string hashing,
// bucket probing, and key interning; the table replaces that with one
// 64-bit FNV fingerprint (computed once per period by encodeKey),
// a linear probe over an int32 slot index at ≤75% load, and an exact
// byte-compare of the stored key to rule out fingerprint collisions.
// Keys live concatenated in one arena — no per-key string headers, no
// intern table — and insertion order makes eviction deterministic
// (oldest first) where map iteration order was not.
//
// The table only ever changes speed, never values: like the maps it
// replaces, a hit is bit-identical to recomputation because the key
// covers every solver input.
type perfTable struct {
	idx      []int32 // 1+entry or 0 = empty; len is a power of two
	fps      []uint64
	keyEnd   []int32 // keyArena[keyEnd[i-1]:keyEnd[i]] is entry i's key
	entries  [][]Perf
	keyArena []byte
}

//copart:noalloc
func (t *perfTable) size() int { return len(t.fps) }

// keyAt returns entry i's key bytes (aliasing the arena).
//
//copart:noalloc
func (t *perfTable) keyAt(i int) []byte {
	lo := int32(0)
	if i > 0 {
		lo = t.keyEnd[i-1]
	}
	return t.keyArena[lo:t.keyEnd[i]]
}

// find returns the entry index holding key (with fingerprint fp), or
// -1. Linear probe; the exact key compare makes collisions harmless.
//
//copart:noalloc
func (t *perfTable) find(fp uint64, key []byte) int {
	if len(t.idx) == 0 {
		return -1
	}
	mask := uint64(len(t.idx) - 1)
	for slot := fp & mask; ; slot = (slot + 1) & mask {
		s := t.idx[slot]
		if s == 0 {
			return -1
		}
		i := int(s - 1)
		if t.fps[i] == fp && bytes.Equal(t.keyAt(i), key) {
			return i
		}
	}
}

// insert appends a new entry (key must be absent) and indexes it,
// growing the probe table when load would exceed 75%.
//
//copart:noalloc
func (t *perfTable) insert(fp uint64, key []byte, entry []Perf) {
	if 4*(len(t.fps)+1) > 3*len(t.idx) {
		t.grow()
	}
	t.fps = append(t.fps, fp)                           //copart:allocok amortized table growth; steady state reuses capacity
	t.keyArena = append(t.keyArena, key...)             //copart:allocok amortized arena growth; steady state reuses capacity
	t.keyEnd = append(t.keyEnd, int32(len(t.keyArena))) //copart:allocok amortized table growth; steady state reuses capacity
	t.entries = append(t.entries, entry)                //copart:allocok amortized table growth; steady state reuses capacity
	mask := uint64(len(t.idx) - 1)
	slot := fp & mask
	for t.idx[slot] != 0 {
		slot = (slot + 1) & mask
	}
	t.idx[slot] = int32(len(t.fps))
}

// grow doubles the probe table (min 64 slots) and reindexes.
func (t *perfTable) grow() {
	n := 2 * len(t.idx)
	if n < 64 {
		n = 64
	}
	t.idx = make([]int32, n) //copart:allocok table growth is amortized geometric
	t.reindex()
}

// reindex rebuilds the probe table from the dense entries.
//
//copart:noalloc
func (t *perfTable) reindex() {
	clear(t.idx)
	mask := uint64(len(t.idx) - 1)
	for i, fp := range t.fps {
		slot := fp & mask
		for t.idx[slot] != 0 {
			slot = (slot + 1) & mask
		}
		t.idx[slot] = int32(i + 1)
	}
}

// truncate drops every entry, retaining all capacity.
//
//copart:noalloc
func (t *perfTable) truncate() {
	clear(t.idx)
	clear(t.entries) // release entry references to the GC
	t.fps = t.fps[:0]
	t.keyEnd = t.keyEnd[:0]
	t.entries = t.entries[:0]
	t.keyArena = t.keyArena[:0]
}

// evictOldest removes the first (oldest) batch entries, compacting the
// dense storage and reindexing, and reports how many were evicted.
// Insertion-order victims make eviction deterministic, unlike the map
// iteration the tiers previously relied on — a speed/counter effect
// only, never a value change.
//
//copart:noalloc
func (t *perfTable) evictOldest(batch int) int {
	n := t.size()
	if batch >= n {
		t.truncate()
		return n
	}
	keyOff := t.keyEnd[batch-1]
	copy(t.keyArena, t.keyArena[keyOff:])
	t.keyArena = t.keyArena[:int32(len(t.keyArena))-keyOff]
	keep := n - batch
	for i := 0; i < keep; i++ {
		t.fps[i] = t.fps[batch+i]
		t.keyEnd[i] = t.keyEnd[batch+i] - keyOff
		t.entries[i] = t.entries[batch+i]
	}
	clear(t.entries[keep:])
	t.fps = t.fps[:keep]
	t.keyEnd = t.keyEnd[:keep]
	t.entries = t.entries[:keep]
	t.reindex()
	return batch
}
