package machine

import (
	"fmt"
	"time"
)

// ModelPhase describes one segment of a time-varying application. Real
// workloads move through phases — an initialization scan, an iterative
// hot loop, a write-back pass — and CoPart's idle phase exists precisely
// to catch such behavioural changes (§5.4.3). A phase scales the base
// model's memory intensity and hot-working-set size for its duration;
// the phase list repeats cyclically.
type ModelPhase struct {
	// Duration of the phase (must be positive).
	Duration time.Duration
	// AccScale multiplies AccPerInstr. Zero means 1 (unchanged).
	AccScale float64
	// HotScale multiplies every hot component's size. Zero means 1.
	HotScale float64
}

func (p ModelPhase) accScale() float64 {
	if p.AccScale == 0 {
		return 1
	}
	return p.AccScale
}

func (p ModelPhase) hotScale() float64 {
	if p.HotScale == 0 {
		return 1
	}
	return p.HotScale
}

// validatePhases checks the phase list.
func validatePhases(name string, phases []ModelPhase) error {
	for i, p := range phases {
		if p.Duration <= 0 {
			return fmt.Errorf("machine: app %s phase %d has duration %v", name, i, p.Duration)
		}
		if p.AccScale < 0 || p.HotScale < 0 {
			return fmt.Errorf("machine: app %s phase %d has negative scale", name, i)
		}
	}
	return nil
}

// PhaseIndexAt returns the index of the phase active at virtual time t,
// or -1 for a model whose resolution does not vary with time (no phases,
// or a degenerate zero-length cycle — exactly the cases AtTime returns
// the model unchanged). AtTime's output depends on t only through this
// index: the active phase's scales are applied to the static base model.
// That is what makes the resolved model cacheable per app — a dirty bit
// flips only when the index changes (see Machine.gatherActive).
//
//copart:noalloc
func (m *AppModel) PhaseIndexAt(t time.Duration) int {
	if len(m.Phases) == 0 {
		return -1
	}
	var cycle time.Duration
	for _, p := range m.Phases {
		cycle += p.Duration
	}
	if cycle <= 0 {
		return -1
	}
	off := t % cycle
	for i := range m.Phases {
		if off < m.Phases[i].Duration {
			return i
		}
		off -= m.Phases[i].Duration
	}
	return len(m.Phases) - 1 // unreachable: off < cycle by construction
}

// AtTime resolves the model at virtual time t: the active phase's scales
// are folded into a flat (phase-free) model. A model without phases is
// returned unchanged.
func (m AppModel) AtTime(t time.Duration) AppModel {
	idx := m.PhaseIndexAt(t)
	if idx < 0 {
		return m
	}
	active := m.Phases[idx]
	out := m
	out.Phases = nil
	out.AccPerInstr = m.AccPerInstr * active.accScale()
	if len(m.Hot) > 0 {
		out.Hot = make([]WSComponent, len(m.Hot))
		copy(out.Hot, m.Hot)
		for i := range out.Hot {
			out.Hot[i].Bytes *= active.hotScale()
		}
	}
	return out
}
