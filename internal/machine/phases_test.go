package machine

import (
	"testing"
	"time"
)

func phasedModel() AppModel {
	return AppModel{
		Name: "phased", Cores: 4, CPIBase: 0.8, AccPerInstr: 0.01,
		Hot:        []WSComponent{{Bytes: 4 << 20, Weight: 0.9, MLP: 1}},
		StreamFrac: 0.1,
		MLP:        4,
		Phases: []ModelPhase{
			{Duration: 10 * time.Second},                             // base behaviour
			{Duration: 10 * time.Second, AccScale: 3, HotScale: 2.5}, // hot phase
		},
	}
}

func TestPhaseValidation(t *testing.T) {
	m := phasedModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := phasedModel()
	bad.Phases[0].Duration = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero phase duration should error")
	}
	bad = phasedModel()
	bad.Phases[1].AccScale = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative scale should error")
	}
}

func TestAtTimeResolvesPhases(t *testing.T) {
	m := phasedModel()
	base := m.AtTime(5 * time.Second)
	if base.AccPerInstr != m.AccPerInstr {
		t.Errorf("base phase AccPerInstr %v want %v", base.AccPerInstr, m.AccPerInstr)
	}
	if base.Hot[0].Bytes != m.Hot[0].Bytes {
		t.Errorf("base phase hot size changed")
	}
	if len(base.Phases) != 0 {
		t.Error("resolved model should be flat")
	}
	hot := m.AtTime(15 * time.Second)
	if hot.AccPerInstr != 3*m.AccPerInstr {
		t.Errorf("hot phase AccPerInstr %v want %v", hot.AccPerInstr, 3*m.AccPerInstr)
	}
	if hot.Hot[0].Bytes != 2.5*m.Hot[0].Bytes {
		t.Errorf("hot phase hot size %v want %v", hot.Hot[0].Bytes, 2.5*m.Hot[0].Bytes)
	}
	// The cycle repeats.
	again := m.AtTime(25 * time.Second)
	if again.AccPerInstr != m.AccPerInstr {
		t.Errorf("cycle should repeat: %v", again.AccPerInstr)
	}
	// The input model is untouched.
	if m.Hot[0].Bytes != 4<<20 {
		t.Error("AtTime mutated the base model")
	}
}

func TestAtTimeSteadyModelUnchanged(t *testing.T) {
	m := phasedModel()
	m.Phases = nil
	got := m.AtTime(time.Hour)
	if got.AccPerInstr != m.AccPerInstr || len(got.Hot) != len(m.Hot) {
		t.Error("steady model should pass through")
	}
}

func TestMachineStepFollowsPhases(t *testing.T) {
	cfg := DefaultConfig()
	mach, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.AddApp(phasedModel()); err != nil {
		t.Fatal(err)
	}
	// Counters over the base phase.
	if err := mach.Step(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c1, _ := mach.ReadCounters("phased")
	// Counters over the hot phase: the access rate must jump.
	if err := mach.Step(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c2, _ := mach.ReadCounters("phased")
	baseAcc := c1.LLCAccesses / 10
	hotAcc := (c2.LLCAccesses - c1.LLCAccesses) / 10
	if hotAcc < 1.5*baseAcc {
		t.Errorf("hot phase access rate %.3g should exceed base %.3g clearly", hotAcc, baseAcc)
	}
}
