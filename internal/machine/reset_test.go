package machine

import (
	"reflect"
	"testing"
	"time"
)

// launchableTestModels normalizes sharedTestModels so they pass AddApp
// validation (StreamFrac plus the hot weights must sum to 1; SolveFor
// does not check that, AddApp does).
func launchableTestModels(n int) []AppModel {
	models := sharedTestModels(n)
	for i := range models {
		rest := 1 - models[i].StreamFrac
		models[i].Hot[0].Weight = rest * 0.7
		models[i].Hot[1].Weight = rest * 0.3
	}
	return models
}

// resetTestModels is a phased variant of launchableTestModels: the
// reset contract must hold for the stateful features too (phase dirty
// bits, noise-RNG stream position), not just the steady solver.
func resetTestModels(n int) []AppModel {
	models := launchableTestModels(n)
	for i := range models {
		if i%2 == 1 {
			models[i].Phases = []ModelPhase{
				{Duration: 3 * time.Second, AccScale: 1.5},
				{Duration: 2 * time.Second, HotScale: 0.5},
			}
		}
	}
	return models
}

// driveMachine runs a fixed workload sequence — launch, allocate,
// step/solve — and returns the machine's final snapshot.
func driveMachine(t *testing.T, m *Machine, models []AppModel) Snapshot {
	t.Helper()
	masks, err := AssignContiguousWays([]int{3, 3, 3, 2}, 0, m.cfg.LLCWays)
	if err != nil {
		t.Fatal(err)
	}
	for i := range models {
		if err := m.AddApp(models[i]); err != nil {
			t.Fatal(err)
		}
		if err := m.SetAllocation(models[i].Name, Alloc{CBM: masks[i], MBALevel: 100 - 10*i}); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 20; p++ {
		if err := m.Step(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RemoveApp(models[0].Name); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 5; p++ {
		if err := m.Step(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return m.Snapshot()
}

// TestMachineResetBitIdentical pins the pool contract: a Reset machine
// behaves bit-identically to a freshly constructed one — counters,
// virtual time, noise stream position, and the deterministic solve-cache
// counters all match (SharedHits excluded: L2 serving depends on process
// history by design).
func TestMachineResetBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MeasurementNoise = 0.02
	cfg.NoiseSeed = 99
	models := resetTestModels(4)

	fresh, err := New(cfg, WithSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	want := driveMachine(t, fresh, models)

	reused, err := New(cfg, WithSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	// Pollute with a different tenant first, then Reset.
	other := launchableTestModels(3)
	for i := range other {
		other[i].Name = "tenant0-" + other[i].Name
		if err := reused.AddApp(other[i]); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 7; p++ {
		if err := reused.Step(500 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	reused.Reset()
	got := driveMachine(t, reused, models)

	if want.SolveCache == nil || got.SolveCache == nil {
		t.Fatal("expected solve-cache counters in both snapshots")
	}
	want.SolveCache.SharedHits, got.SolveCache.SharedHits = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reset machine diverged from fresh machine:\nfresh: %+v\nreset: %+v", want, got)
	}
}

// TestMachineResetAllocationGuard pins the pooled-fleet budget: once a
// machine has been through one tenant, the full relaunch cycle —
// Reset, AddApp ×4, SetAllocation ×4, one control-period Step — must
// cost at most the one cache-entry copy the re-solve stores (entries
// are cleared by Reset; the intern table and app slots are not).
func TestMachineResetAllocationGuard(t *testing.T) {
	cfg := DefaultConfig()
	models := launchableTestModels(4)
	masks, err := AssignContiguousWays([]int{3, 3, 3, 2}, 0, cfg.LLCWays)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, WithSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		m.Reset()
		for i := range models {
			if err := m.AddApp(models[i]); err != nil {
				t.Fatal(err)
			}
			if err := m.SetAllocation(models[i].Name, Alloc{CBM: masks[i], MBALevel: 100}); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Step(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	cycle()          // warm: grow slots, scratch, intern table
	const budget = 2 // the re-stored cache entry, plus slack for the runtime
	if avg := testing.AllocsPerRun(100, cycle); avg > budget {
		t.Errorf("Reset+relaunch cycle allocates %.1f times, budget is %d", avg, budget)
	}
}
