package machine

import (
	"sync"
	"sync/atomic"
)

// The process-wide L2 solve cache. Every cache-enabled Machine — grid
// cells, fleet nodes, oracle searches — consults it under its L1, so a
// state solved once anywhere in the process is a lookup everywhere
// else. Like the L1 it is a pure exact memo: keys carry the full solver
// input (config digest + per-app model digest + allocation bits), a hit
// is bit-identical to recomputation, and sharing therefore cannot
// perturb any seeded run regardless of goroutine interleaving — only
// which duplicate solve gets skipped is timing-dependent, never a
// value. Lock striping (128 shards, each a mutex + map) keeps fleet
// workers from serializing on one lock.
const (
	sharedShardCount = 128
	sharedShardCap   = 4096 // entries per shard; ~524k process-wide
)

// SharedCacheStats is a snapshot of the process-wide cache counters.
// Hits/Misses/Evictions are cumulative; Entries is the current size.
type SharedCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

type sharedShard struct {
	mu      sync.Mutex
	entries map[string][]Perf
}

type sharedCache struct {
	shards    [sharedShardCount]sharedShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

var (
	sharedSolve sharedCache
	// sharedOff gates the L2; the zero value means enabled, so the cache
	// is on by default without an init step.
	sharedOff atomic.Bool
)

// SetSharedSolveCache enables or disables the process-wide shared solve
// cache and reports the previous setting. Disabling only stops lookups
// and stores; entries are retained until ResetSharedSolveCache. The
// shared cache is enabled by default; disabling it changes speed only —
// results of every seeded run are bit-identical either way, which the
// determinism tests pin.
func SetSharedSolveCache(on bool) bool {
	return !sharedOff.Swap(!on)
}

// SharedSolveCacheEnabled reports whether the process-wide cache is on.
func SharedSolveCacheEnabled() bool { return !sharedOff.Load() }

// SharedSolveCacheStats snapshots the process-wide cache counters.
func SharedSolveCacheStats() SharedCacheStats {
	st := SharedCacheStats{
		Hits:      sharedSolve.hits.Load(),
		Misses:    sharedSolve.misses.Load(),
		Evictions: sharedSolve.evictions.Load(),
	}
	for i := range sharedSolve.shards {
		s := &sharedSolve.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// ResetSharedSolveCache drops every shared entry and zeroes the
// counters — used by tests and benchmarks that need a cold cache.
func ResetSharedSolveCache() {
	for i := range sharedSolve.shards {
		s := &sharedSolve.shards[i]
		s.mu.Lock()
		s.entries = nil
		s.mu.Unlock()
	}
	sharedSolve.hits.Store(0)
	sharedSolve.misses.Store(0)
	sharedSolve.evictions.Store(0)
}

//copart:noalloc
func (c *sharedCache) shard(key []byte) *sharedShard {
	return &c.shards[hashKey(key)%sharedShardCount]
}

// lookup returns the shared entry for key, if present. The returned
// slice is immutable by contract: readers copy out of it and an adopting
// L1 may alias it, but nobody writes through it.
//
//copart:noalloc
func (c *sharedCache) lookup(key []byte) ([]Perf, bool) {
	s := c.shard(key)
	s.mu.Lock()
	entry, ok := s.entries[string(key)]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return entry, ok
}

// store publishes an immutable entry under key, evicting a bounded
// batch from the shard when it is full (same policy as the L1: eviction
// affects only speed and counters, never values).
func (c *sharedCache) store(key []byte, entry []Perf) {
	s := c.shard(key)
	s.mu.Lock()
	c.storeLocked(s, string(key), entry)
	s.mu.Unlock()
}

// storeLocked is store's body under an already-held shard lock, taking
// the key as a string so batched callers with interned keys store
// without a conversion allocation.
func (c *sharedCache) storeLocked(s *sharedShard, key string, entry []Perf) {
	if s.entries == nil {
		s.entries = make(map[string][]Perf, sharedShardCap/4)
	}
	if len(s.entries) >= sharedShardCap {
		if _, exists := s.entries[key]; !exists {
			evicted := uint64(0)
			for k := range s.entries {
				delete(s.entries, k)
				if evicted++; evicted >= sharedShardCap/8 {
					break
				}
			}
			c.evictions.Add(evicted)
		}
	}
	s.entries[key] = entry
}

// hashString is hashKey over a string key (no []byte conversion): the
// same word-folded FNV, so a key hashes to the same shard whether it
// arrives as scratch bytes (lookup) or an interned string (storeBatch).
//
//copart:noalloc
func hashString(key string) uint64 {
	h := uint64(fnvOffset64)
	i := 0
	for ; i+8 <= len(key); i += 8 {
		w := uint64(key[i]) | uint64(key[i+1])<<8 | uint64(key[i+2])<<16 | uint64(key[i+3])<<24 |
			uint64(key[i+4])<<32 | uint64(key[i+5])<<40 | uint64(key[i+6])<<48 | uint64(key[i+7])<<56
		h = (h ^ w) * fnvPrime64
	}
	for ; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * fnvPrime64
	}
	return h
}

// storeBatch publishes a batch of entries, taking each distinct shard's
// lock exactly once: a fleet period's worth of fresh solves lands in
// the L2 with one striped acquire per shard touched instead of one
// mutex handshake per solve (see Machine.FlushShared). keys must be
// interned strings (the pending buffer's contract); len(keys) ==
// len(entries). The shard-done set is a 128-bit mask, so the grouping
// allocates nothing.
//
//copart:noalloc
func (c *sharedCache) storeBatch(keys []string, entries [][]Perf) {
	var done [sharedShardCount / 64]uint64
	for i := range keys {
		si := hashString(keys[i]) % sharedShardCount
		if done[si/64]&(1<<(si%64)) != 0 {
			continue
		}
		done[si/64] |= 1 << (si % 64)
		s := &c.shards[si]
		s.mu.Lock()
		for j := i; j < len(keys); j++ {
			if hashString(keys[j])%sharedShardCount == si {
				c.storeLocked(s, keys[j], entries[j])
			}
		}
		s.mu.Unlock()
	}
}
