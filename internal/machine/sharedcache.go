package machine

import (
	"sync"
	"sync/atomic"
)

// The process-wide L2 solve cache. Every cache-enabled Machine — grid
// cells, fleet nodes, oracle searches — consults it under its L1, so a
// state solved once anywhere in the process is a lookup everywhere
// else. Like the L1 it is a pure exact memo: keys carry the full solver
// input (config digest + per-app model digest + allocation bits), a hit
// is bit-identical to recomputation, and sharing therefore cannot
// perturb any seeded run regardless of goroutine interleaving — only
// which duplicate solve gets skipped is timing-dependent, never a
// value. Lock striping (128 shards, each a mutex + fingerprint table)
// keeps fleet workers from serializing on one lock, and the shard is
// selected by the same hashKey fingerprint the L1 computed — an L1
// miss reaches the L2 without hashing the key a second time.
const (
	sharedShardCount = 128
	sharedShardCap   = 4096 // entries per shard; ~524k process-wide
)

// SharedCacheStats is a snapshot of the process-wide cache counters.
// Hits/Misses/Evictions are cumulative; Entries is the current size.
type SharedCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

type sharedShard struct {
	mu  sync.Mutex
	tab perfTable
}

type sharedCache struct {
	shards    [sharedShardCount]sharedShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

var (
	sharedSolve sharedCache
	// sharedOff gates the L2; the zero value means enabled, so the cache
	// is on by default without an init step.
	sharedOff atomic.Bool
)

// SetSharedSolveCache enables or disables the process-wide shared solve
// cache and reports the previous setting. Disabling only stops lookups
// and stores; entries are retained until ResetSharedSolveCache. The
// shared cache is enabled by default; disabling it changes speed only —
// results of every seeded run are bit-identical either way, which the
// determinism tests pin.
func SetSharedSolveCache(on bool) bool {
	return !sharedOff.Swap(!on)
}

// SharedSolveCacheEnabled reports whether the process-wide cache is on.
func SharedSolveCacheEnabled() bool { return !sharedOff.Load() }

// SharedSolveCacheStats snapshots the process-wide cache counters.
//
//copart:noalloc fleet-merge telemetry snapshot; locks but never allocates
func SharedSolveCacheStats() SharedCacheStats {
	st := SharedCacheStats{
		Hits:      sharedSolve.hits.Load(),
		Misses:    sharedSolve.misses.Load(),
		Evictions: sharedSolve.evictions.Load(),
	}
	for i := range sharedSolve.shards {
		s := &sharedSolve.shards[i]
		s.mu.Lock()
		st.Entries += s.tab.size()
		s.mu.Unlock()
	}
	return st
}

// ResetSharedSolveCache drops every shared entry and zeroes the
// counters — used by tests and benchmarks that need a cold cache.
func ResetSharedSolveCache() {
	for i := range sharedSolve.shards {
		s := &sharedSolve.shards[i]
		s.mu.Lock()
		s.tab.truncate()
		s.mu.Unlock()
	}
	sharedSolve.hits.Store(0)
	sharedSolve.misses.Store(0)
	sharedSolve.evictions.Store(0)
}

// lookup returns the shared entry for key (with its hashKey fingerprint
// fp, as left in the L1 scratch by encodeKey), if present. The returned
// slice is immutable by contract: readers copy out of it and an adopting
// L1 may alias it, but nobody writes through it.
//
//copart:noalloc
func (c *sharedCache) lookup(key []byte, fp uint64) ([]Perf, bool) {
	s := &c.shards[fp%sharedShardCount]
	s.mu.Lock()
	var entry []Perf
	i := s.tab.find(fp, key)
	if i >= 0 {
		entry = s.tab.entries[i]
	}
	s.mu.Unlock()
	if i >= 0 {
		c.hits.Add(1)
		return entry, true
	}
	c.misses.Add(1)
	return nil, false
}

// store publishes an immutable entry under key, evicting a bounded
// batch from the shard when it is full (same policy as the L1: eviction
// affects only speed and counters, never values).
func (c *sharedCache) store(key []byte, fp uint64, entry []Perf) {
	s := &c.shards[fp%sharedShardCount]
	s.mu.Lock()
	c.storeLocked(s, key, fp, entry)
	s.mu.Unlock()
}

// storeLocked is store's body under an already-held shard lock.
//
//copart:noalloc
func (c *sharedCache) storeLocked(s *sharedShard, key []byte, fp uint64, entry []Perf) {
	if i := s.tab.find(fp, key); i >= 0 {
		s.tab.entries[i] = entry
		return
	}
	if s.tab.size() >= sharedShardCap {
		c.evictions.Add(uint64(s.tab.evictOldest(sharedShardCap / 8)))
	}
	s.tab.insert(fp, key, entry)
}

// storeBatch publishes a batch of entries, taking each distinct shard's
// lock exactly once: a fleet period's worth of fresh solves lands in
// the L2 with one striped acquire per shard touched instead of one
// mutex handshake per solve (see Machine.FlushShared). The batch is the
// L1's pending buffer — keys concatenated in arena with ends[i]
// delimiting key i, fps the precomputed fingerprints, len(fps) ==
// len(entries) == len(ends). The shard-done set is a 128-bit mask, so
// the grouping allocates nothing.
//
//copart:noalloc
func (c *sharedCache) storeBatch(arena []byte, ends []int32, fps []uint64, entries [][]Perf) {
	var done [sharedShardCount / 64]uint64
	for i := range fps {
		si := fps[i] % sharedShardCount
		if done[si/64]&(1<<(si%64)) != 0 {
			continue
		}
		done[si/64] |= 1 << (si % 64)
		s := &c.shards[si]
		s.mu.Lock()
		for j := i; j < len(fps); j++ {
			if fps[j]%sharedShardCount != si {
				continue
			}
			lo := int32(0)
			if j > 0 {
				lo = ends[j-1]
			}
			c.storeLocked(s, arena[lo:ends[j]], fps[j], entries[j])
		}
		s.mu.Unlock()
	}
}
