package machine

import (
	"sync"
	"sync/atomic"
)

// The process-wide L2 solve cache. Every cache-enabled Machine — grid
// cells, fleet nodes, oracle searches — consults it under its L1, so a
// state solved once anywhere in the process is a lookup everywhere
// else. Like the L1 it is a pure exact memo: keys carry the full solver
// input (config digest + per-app model digest + allocation bits), a hit
// is bit-identical to recomputation, and sharing therefore cannot
// perturb any seeded run regardless of goroutine interleaving — only
// which duplicate solve gets skipped is timing-dependent, never a
// value. Lock striping (128 shards, each a mutex + map) keeps fleet
// workers from serializing on one lock.
const (
	sharedShardCount = 128
	sharedShardCap   = 4096 // entries per shard; ~524k process-wide
)

// SharedCacheStats is a snapshot of the process-wide cache counters.
// Hits/Misses/Evictions are cumulative; Entries is the current size.
type SharedCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

type sharedShard struct {
	mu      sync.Mutex
	entries map[string][]Perf
}

type sharedCache struct {
	shards    [sharedShardCount]sharedShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

var (
	sharedSolve sharedCache
	// sharedOff gates the L2; the zero value means enabled, so the cache
	// is on by default without an init step.
	sharedOff atomic.Bool
)

// SetSharedSolveCache enables or disables the process-wide shared solve
// cache and reports the previous setting. Disabling only stops lookups
// and stores; entries are retained until ResetSharedSolveCache. The
// shared cache is enabled by default; disabling it changes speed only —
// results of every seeded run are bit-identical either way, which the
// determinism tests pin.
func SetSharedSolveCache(on bool) bool {
	return !sharedOff.Swap(!on)
}

// SharedSolveCacheEnabled reports whether the process-wide cache is on.
func SharedSolveCacheEnabled() bool { return !sharedOff.Load() }

// SharedSolveCacheStats snapshots the process-wide cache counters.
func SharedSolveCacheStats() SharedCacheStats {
	st := SharedCacheStats{
		Hits:      sharedSolve.hits.Load(),
		Misses:    sharedSolve.misses.Load(),
		Evictions: sharedSolve.evictions.Load(),
	}
	for i := range sharedSolve.shards {
		s := &sharedSolve.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// ResetSharedSolveCache drops every shared entry and zeroes the
// counters — used by tests and benchmarks that need a cold cache.
func ResetSharedSolveCache() {
	for i := range sharedSolve.shards {
		s := &sharedSolve.shards[i]
		s.mu.Lock()
		s.entries = nil
		s.mu.Unlock()
	}
	sharedSolve.hits.Store(0)
	sharedSolve.misses.Store(0)
	sharedSolve.evictions.Store(0)
}

//copart:noalloc
func (c *sharedCache) shard(key []byte) *sharedShard {
	return &c.shards[hashKey(key)%sharedShardCount]
}

// lookup returns the shared entry for key, if present. The returned
// slice is immutable by contract: readers copy out of it and an adopting
// L1 may alias it, but nobody writes through it.
//
//copart:noalloc
func (c *sharedCache) lookup(key []byte) ([]Perf, bool) {
	s := c.shard(key)
	s.mu.Lock()
	entry, ok := s.entries[string(key)]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return entry, ok
}

// store publishes an immutable entry under key, evicting a bounded
// batch from the shard when it is full (same policy as the L1: eviction
// affects only speed and counters, never values).
func (c *sharedCache) store(key []byte, entry []Perf) {
	s := c.shard(key)
	s.mu.Lock()
	if s.entries == nil {
		s.entries = make(map[string][]Perf, sharedShardCap/4)
	}
	if len(s.entries) >= sharedShardCap {
		if _, exists := s.entries[string(key)]; !exists {
			evicted := uint64(0)
			for k := range s.entries {
				delete(s.entries, k)
				if evicted++; evicted >= sharedShardCap/8 {
					break
				}
			}
			c.evictions.Add(evicted)
		}
	}
	s.entries[string(key)] = entry
	s.mu.Unlock()
}
