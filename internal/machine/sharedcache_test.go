package machine

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/membw"
)

// sharedTestModels builds a deterministic 4-app mix without importing
// the workloads package (which would cycle).
func sharedTestModels(n int) []AppModel {
	models := make([]AppModel, n)
	for i := range models {
		models[i] = AppModel{
			Name:        fmt.Sprintf("app%d", i),
			Cores:       2,
			CPIBase:     0.8 + 0.1*float64(i),
			AccPerInstr: 0.01 + 0.002*float64(i),
			StreamFrac:  0.1 * float64(i),
			MLP:         2,
			Hot: []WSComponent{
				{Bytes: float64(uint(1) << (19 + uint(i))), Weight: 0.7},
				{Bytes: 8 << 20, Weight: 0.3},
			},
		}
	}
	return models
}

// sweepAllocs enumerates a deterministic set of exclusive allocation
// states for n apps over the default 11-way LLC.
func sweepAllocs(cfg Config, n, count int, seed int64) [][]Alloc {
	rng := rand.New(rand.NewSource(seed))
	states := make([][]Alloc, count)
	for s := range states {
		counts := make([]int, n)
		remaining := cfg.LLCWays - n
		for i := range counts {
			counts[i] = 1
		}
		for remaining > 0 {
			counts[rng.Intn(n)]++
			remaining--
		}
		allocs := make([]Alloc, n)
		lo := 0
		for i, c := range counts {
			allocs[i] = Alloc{
				CBM:      ((uint64(1) << c) - 1) << uint(lo),
				MBALevel: membw.MinLevel + membw.Granularity*rng.Intn((membw.MaxLevel-membw.MinLevel)/membw.Granularity+1),
			}
			lo += c
		}
		states[s] = allocs
	}
	return states
}

// TestSharedSolveCacheBitIdentical pins the tentpole invariant: results
// are bit-identical whether a state is solved bare, through a warm L1,
// or served cross-machine from the shared L2.
func TestSharedSolveCacheBitIdentical(t *testing.T) {
	prev := SetSharedSolveCache(true)
	defer SetSharedSolveCache(prev)
	ResetSharedSolveCache()
	defer ResetSharedSolveCache()

	cfg := DefaultConfig()
	models := sharedTestModels(4)
	states := sweepAllocs(cfg, 4, 50, 7)

	bare, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := New(cfg, WithSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	reader, err := New(cfg, WithSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	for i, allocs := range states {
		want, err := bare.SolveFor(models, allocs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := writer.SolveFor(models, allocs) // miss: solve + pend for L2
		if err != nil {
			t.Fatal(err)
		}
		// L2 publication batches until a period boundary (Step) or an
		// explicit flush; cross-machine visibility starts at the flush.
		writer.FlushShared()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("state %d: cached solve differs from bare solve", i)
		}
		via, err := reader.SolveFor(models, allocs) // L1 miss, served by L2
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, via) {
			t.Fatalf("state %d: shared-cache result differs from bare solve", i)
		}
	}
	if cs := reader.SolveCacheDetail(); cs.SharedHits == 0 {
		t.Fatalf("reader machine never hit the shared cache: %+v", cs)
	}
	// The adopted entries must now satisfy the reader's L1.
	h0, _, _ := reader.SolveCacheStats()
	if _, err := reader.SolveFor(models, states[0]); err != nil {
		t.Fatal(err)
	}
	if h1, _, _ := reader.SolveCacheStats(); h1 != h0+1 {
		t.Fatalf("adopted shared entry did not hit the L1 (hits %d → %d)", h0, h1)
	}
}

// TestSharedSolveCacheOnOffIdentical solves the same sweep with the L2
// enabled and disabled on separate machines and requires bit-identical
// perfs and identical L1 hit/miss counters — the property the fleet
// -verify check enforces at scale.
func TestSharedSolveCacheOnOffIdentical(t *testing.T) {
	prev := SharedSolveCacheEnabled()
	defer SetSharedSolveCache(prev)
	ResetSharedSolveCache()
	defer ResetSharedSolveCache()

	cfg := DefaultConfig()
	models := sharedTestModels(4)
	// Repeat each state so the L1 sees hits too.
	states := sweepAllocs(cfg, 4, 30, 11)
	states = append(states, states...)

	run := func(on bool) ([][]Perf, uint64, uint64) {
		SetSharedSolveCache(on)
		m, err := New(cfg, WithSolveCache())
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]Perf, len(states))
		for i, allocs := range states {
			out[i], err = m.SolveFor(models, allocs)
			if err != nil {
				t.Fatal(err)
			}
		}
		h, mi, _ := m.SolveCacheStats()
		return out, h, mi
	}
	offPerfs, offHits, offMisses := run(false)
	// Pre-seed the L2 from an unrelated machine so the on-run exercises
	// cross-machine serving, not just self-stores.
	seed, err := New(cfg, WithSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	for _, allocs := range states[:10] {
		if _, err := seed.SolveFor(models, allocs); err != nil {
			t.Fatal(err)
		}
	}
	seed.FlushShared()
	onPerfs, onHits, onMisses := run(true)
	if !reflect.DeepEqual(offPerfs, onPerfs) {
		t.Fatal("solve results differ with the shared cache on vs off")
	}
	if offHits != onHits || offMisses != onMisses {
		t.Fatalf("L1 counters differ with the shared cache on (%d/%d) vs off (%d/%d)",
			onHits, onMisses, offHits, offMisses)
	}
}

// TestSharedSolveCacheRaceStress hammers the shared cache from many
// goroutines solving overlapping state sets on private machines — the
// -race tripwire for the lock-striped tiers — and checks every result
// against a single-threaded reference.
func TestSharedSolveCacheRaceStress(t *testing.T) {
	prev := SetSharedSolveCache(true)
	defer SetSharedSolveCache(prev)
	ResetSharedSolveCache()
	defer ResetSharedSolveCache()

	cfg := DefaultConfig()
	models := sharedTestModels(4)
	states := sweepAllocs(cfg, 4, 120, 3)
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]Perf, len(states))
	for i, allocs := range states {
		if want[i], err = ref.SolveFor(models, allocs); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, err := New(cfg, WithSolveCache())
			if err != nil {
				errs <- err
				return
			}
			session := m.NewSolveSession(models)
			perfs := make([]Perf, len(models))
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 400; iter++ {
				i := rng.Intn(len(states))
				var err error
				if iter%2 == 0 {
					err = session.SolveInto(perfs, states[i])
				} else {
					err = m.SolveForInto(perfs, models, states[i])
				}
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(perfs, want[i]) {
					errs <- fmt.Errorf("goroutine %d: state %d diverged from reference", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := SharedSolveCacheStats(); st.Hits == 0 {
		t.Fatalf("stress run never hit the shared cache: %+v", st)
	}
}

// keyForShard fabricates distinct keys that all land in the same shard,
// so the eviction bound can be exercised without half a million inserts.
func keyForShard(shard int, seq *int) []byte {
	for {
		*seq++
		key := binary.LittleEndian.AppendUint64(nil, uint64(*seq))
		if int(hashKey(key)%sharedShardCount) == shard {
			return key
		}
	}
}

// TestSharedSolveCacheBoundedEviction fills one shard past its cap and
// checks that eviction trims a bounded batch instead of dropping the
// table, and that the shard never exceeds its bound.
func TestSharedSolveCacheBoundedEviction(t *testing.T) {
	ResetSharedSolveCache()
	defer ResetSharedSolveCache()
	entry := []Perf{{IPS: 1}}
	seq := 0
	const shard = 5
	for i := 0; i < sharedShardCap+100; i++ {
		key := keyForShard(shard, &seq)
		sharedSolve.store(key, hashKey(key), entry)
		if n := sharedSolve.shards[shard].tab.size(); n > sharedShardCap {
			t.Fatalf("shard grew to %d entries, cap is %d", n, sharedShardCap)
		}
	}
	st := SharedSolveCacheStats()
	if st.Evictions == 0 {
		t.Fatal("overfilling a shard evicted nothing")
	}
	// Bounded batches, not whole-table drops: after the overflow the
	// shard must retain at least cap − batch − 1 entries.
	if n := sharedSolve.shards[shard].tab.size(); n < sharedShardCap-sharedShardCap/8-1 {
		t.Fatalf("eviction dropped too much: %d entries left of %d cap", n, sharedShardCap)
	}
	// Re-storing an existing key at a full shard must not evict.
	full := SharedSolveCacheStats()
	key := keyForShard(shard, &seq)
	sharedSolve.store(key, hashKey(key), entry)
	evAfterNew := SharedSolveCacheStats().Evictions
	sharedSolve.store(key, hashKey(key), entry)
	if got := SharedSolveCacheStats().Evictions; got != evAfterNew {
		t.Fatalf("overwriting an existing key evicted (%d → %d)", evAfterNew, got)
	}
	_ = full
}

// TestSolveCacheBoundedEviction pins the L1 policy: exceeding the bound
// evicts a batch (counted), never the whole table.
func TestSolveCacheBoundedEviction(t *testing.T) {
	c := newSolveCache(16)
	entry := []Perf{{IPS: 1}}
	for i := 0; i < 100; i++ {
		c.key = binary.LittleEndian.AppendUint64(c.key[:0], uint64(i))
		c.fp = hashKey(c.key)
		c.store(append([]Perf(nil), entry...))
		if c.tab.size() > 16 {
			t.Fatalf("cache grew to %d entries, max is 16", c.tab.size())
		}
		if c.tab.size() == 0 {
			t.Fatal("cache was fully dropped")
		}
	}
	if c.evictions.Load() == 0 {
		t.Fatal("bounded store evicted nothing")
	}
	if c.tab.size() < 16-16/8 {
		t.Fatalf("eviction dropped too much: %d entries left", c.tab.size())
	}
}
