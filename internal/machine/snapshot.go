package machine

import (
	"fmt"
	"math"
	"time"

	"repro/internal/membw"
)

// Snapshot is the complete serializable state of a Machine: the
// configuration, virtual time, every application ever launched (launch
// order and inactive entries both matter — name reuse is forbidden, and
// Perf results index over active apps in launch order), the noise-RNG
// stream position, and the solve-cache counters. ConfigDigest
// fingerprints the configuration so a restore against a drifted config
// (different solver constants ⇒ different trajectories) fails loudly
// instead of silently diverging.
//
// A restored machine is bit-identical in behavior to the original: the
// solver is a pure function of (config, models, allocations), counters
// resume from their exact cumulative values, and the noise stream is
// replayed to the recorded position.
type Snapshot struct {
	Config       Config        `json:"config"`
	ConfigDigest uint64        `json:"configDigest"`
	Now          int64         `json:"nowNs"` // virtual time, nanoseconds
	Apps         []AppSnapshot `json:"apps"`
	NoiseCalls   uint64        `json:"noiseCalls,omitempty"`
	SolveCache   *CacheStats   `json:"solveCache,omitempty"`
}

// AppSnapshot is one launched application's state.
type AppSnapshot struct {
	Model    AppModel `json:"model"`
	CBM      uint64   `json:"cbm"`
	MBALevel int      `json:"mba"`
	Counters Counters `json:"counters"`
	Active   bool     `json:"active"`
}

// Snapshot captures the machine's full state. The machine is not
// modified; the snapshot shares no mutable memory with it.
func (m *Machine) Snapshot() Snapshot {
	snap := Snapshot{
		Config:       m.cfg,
		ConfigDigest: m.cfgDigest,
		Now:          int64(m.now),
		Apps:         make([]AppSnapshot, len(m.apps)),
		NoiseCalls:   m.noiseCalls,
	}
	for i, a := range m.apps {
		snap.Apps[i] = AppSnapshot{
			Model:    a.model,
			CBM:      a.alloc.CBM,
			MBALevel: a.alloc.MBALevel,
			Counters: a.counters,
			Active:   a.active,
		}
	}
	if m.cache != nil {
		cs := m.SolveCacheDetail()
		cs.Entries = 0 // entries are not serialized, only the counters
		snap.SolveCache = &cs
	}
	return snap
}

// RestoreSnapshot rebuilds a machine from a snapshot. Options are
// applied as in New; pass WithSolveCache to re-enable memoization (the
// cache's counters then resume from the snapshot, while its entries
// rebuild lazily — entries only affect speed, never values). The
// snapshot's config digest must match the digest recomputed from its
// config, which catches both a corrupted blob and a Config schema
// drift across versions.
func RestoreSnapshot(snap Snapshot, opts ...Option) (*Machine, error) {
	m, err := New(snap.Config, opts...)
	if err != nil {
		return nil, fmt.Errorf("machine: restore: %w", err)
	}
	if snap.ConfigDigest != m.cfgDigest {
		return nil, fmt.Errorf("machine: restore: config fingerprint %#x does not match %#x (snapshot from a different configuration or schema version)",
			snap.ConfigDigest, m.cfgDigest)
	}
	if snap.Now < 0 {
		return nil, fmt.Errorf("machine: restore: negative virtual time %d", snap.Now)
	}
	m.now = time.Duration(snap.Now)
	for i, as := range snap.Apps {
		if err := as.Model.Validate(); err != nil {
			return nil, fmt.Errorf("machine: restore: app %d: %w", i, err)
		}
		if _, dup := m.byName[as.Model.Name]; dup {
			return nil, fmt.Errorf("machine: restore: duplicate app %q", as.Model.Name)
		}
		if as.CBM == 0 || as.CBM&^m.fullMask != 0 || !contiguous(as.CBM) {
			return nil, fmt.Errorf("machine: restore: app %q has invalid CBM %#x", as.Model.Name, as.CBM)
		}
		// Validated here rather than by re-programming through
		// SetAllocation below: setting an allocation equal to the held one
		// is a no-op there, which would let a corrupt level through.
		if err := membw.ValidateLevel(as.MBALevel); err != nil {
			return nil, fmt.Errorf("machine: restore: app %q: %w", as.Model.Name, err)
		}
		if err := validCounters(as.Counters); err != nil {
			return nil, fmt.Errorf("machine: restore: app %q: %w", as.Model.Name, err)
		}
		resolved := as.Model.AtTime(m.now)
		m.byName[as.Model.Name] = len(m.apps)
		a := m.nextAppSlot()
		*a = app{
			model:    as.Model,
			alloc:    Alloc{CBM: as.CBM, MBALevel: as.MBALevel},
			counters: as.Counters,
			active:   as.Active,
			resolved: resolved,
			digest:   modelDigest(&resolved),
			phaseIdx: as.Model.PhaseIndexAt(m.now),
			phased:   len(as.Model.Phases) > 0,
		}
		if len(as.Model.Phases) > 0 {
			m.hasPhases = true
		}
	}
	// Allocations were validated field-by-field above; what remains is
	// the cross-app invariant AddApp would have enforced.
	for _, a := range m.apps {
		if !a.active {
			continue
		}
		used := 0
		for _, b := range m.apps {
			if b.active && b.model.Socket == a.model.Socket {
				used += b.model.Cores
			}
		}
		if used > m.cfg.Cores {
			return nil, fmt.Errorf("machine: restore: %d cores demanded on socket %d, %d available",
				used, a.model.Socket, m.cfg.Cores)
		}
	}
	// Re-establish the noise stream position: seed eagerly and replay the
	// recorded number of draw pairs. NormFloat64's rejection sampling
	// consumes a variable number of raw values, so the replay must go
	// through the same method the live path uses.
	if snap.NoiseCalls > 0 {
		if m.cfg.MeasurementNoise == 0 {
			return nil, fmt.Errorf("machine: restore: %d noise draws recorded but noise is disabled", snap.NoiseCalls)
		}
		m.noiseFactors() // seeds noiseRNG and burns the first call
		for i := uint64(1); i < snap.NoiseCalls; i++ {
			m.noiseRNG.NormFloat64()
			m.noiseRNG.NormFloat64()
		}
		m.noiseCalls = snap.NoiseCalls
	}
	if snap.SolveCache != nil && m.cache != nil {
		m.cache.hits.Store(snap.SolveCache.Hits)
		m.cache.misses.Store(snap.SolveCache.Misses)
		m.cache.evictions.Store(snap.SolveCache.Evictions)
		m.cache.sharedHits.Store(snap.SolveCache.SharedHits)
	}
	return m, nil
}

// validCounters rejects non-finite or negative cumulative counters.
func validCounters(c Counters) error {
	for _, v := range [...]float64{c.Instructions, c.LLCAccesses, c.LLCMisses, c.MemoryBytes} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("machine: invalid counter value %v", v)
		}
	}
	return nil
}
