package machine

import (
	"math"
	"testing"
	"time"

	"repro/internal/membw"
)

func snapMachine(t *testing.T, noise float64, opts ...Option) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MeasurementNoise = noise
	cfg.NoiseSeed = 42
	m, err := New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []AppModel{
		{Name: "a", Cores: 4, CPIBase: 0.8, AccPerInstr: 0.01,
			Hot: []WSComponent{{Bytes: 4 << 20, Weight: 0.9, MLP: 2}}, StreamFrac: 0.1, MLP: 2},
		{Name: "b", Cores: 4, CPIBase: 0.6, AccPerInstr: 0.02,
			Hot: []WSComponent{{Bytes: 8 << 20, Weight: 0.7, MLP: 1}}, StreamFrac: 0.3, MLP: 4},
	} {
		if err := m.AddApp(app); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestMachineSnapshotRoundTrip: stepping a restored machine must match
// stepping the original, counters and virtual clock included.
func TestMachineSnapshotRoundTrip(t *testing.T) {
	for _, noise := range []float64{0, 0.03} {
		m := snapMachine(t, noise)
		for i := 0; i < 5; i++ {
			if err := m.Step(time.Second); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.SetAllocation("a", Alloc{CBM: 0b1111, MBALevel: 50}); err != nil {
			t.Fatal(err)
		}

		r, err := RestoreSnapshot(m.Snapshot())
		if err != nil {
			t.Fatalf("noise=%v: %v", noise, err)
		}
		if r.Now() != m.Now() {
			t.Fatalf("noise=%v: restored clock %v, want %v", noise, r.Now(), m.Now())
		}
		for i := 0; i < 5; i++ {
			if err := m.Step(2 * time.Second); err != nil {
				t.Fatal(err)
			}
			if err := r.Step(2 * time.Second); err != nil {
				t.Fatal(err)
			}
		}
		for _, app := range []string{"a", "b"} {
			co, err1 := m.ReadCounters(app)
			cr, err2 := r.ReadCounters(app)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if co != cr {
				t.Errorf("noise=%v: %s counters diverged after restore:\n  orig %+v\n  rest %+v", noise, app, co, cr)
			}
			ao, _ := m.Allocation(app)
			ar, _ := r.Allocation(app)
			if ao != ar {
				t.Errorf("noise=%v: %s allocation %+v vs %+v", noise, app, ao, ar)
			}
		}
	}
}

// TestMachineSnapshotInactiveApps: departed apps keep their slot (names
// stay single-use) and counters across a restore.
func TestMachineSnapshotInactiveApps(t *testing.T) {
	m := snapMachine(t, 0)
	if err := m.Step(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveApp("a"); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSnapshot(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if apps := r.Apps(); len(apps) != 1 || apps[0] != "b" {
		t.Fatalf("restored active apps = %v, want [b]", apps)
	}
	// The departed name must remain taken.
	if err := r.AddApp(AppModel{Name: "a", Cores: 1, CPIBase: 1, AccPerInstr: 0.01,
		Hot: []WSComponent{{Bytes: 1 << 20, Weight: 1, MLP: 1}}}); err == nil {
		t.Error("reusing a departed name should fail after restore")
	}
}

// TestMachineSnapshotRejectsTampering: corrupted snapshots are refused.
func TestMachineSnapshotRejectsTampering(t *testing.T) {
	m := snapMachine(t, 0)
	if err := m.Step(time.Second); err != nil {
		t.Fatal(err)
	}

	s := m.Snapshot()
	s.ConfigDigest++
	if _, err := RestoreSnapshot(s); err == nil {
		t.Error("digest mismatch should be rejected")
	}

	s = m.Snapshot()
	s.Now = -5
	if _, err := RestoreSnapshot(s); err == nil {
		t.Error("negative time should be rejected")
	}

	s = m.Snapshot()
	s.Apps[0].Counters.Instructions = math.NaN()
	if _, err := RestoreSnapshot(s); err == nil {
		t.Error("NaN counters should be rejected")
	}

	s = m.Snapshot()
	s.Apps[0].CBM = 0
	if _, err := RestoreSnapshot(s); err == nil {
		t.Error("empty CBM should be rejected")
	}

	s = m.Snapshot()
	s.Apps[0].MBALevel = membw.MaxLevel + 7
	if _, err := RestoreSnapshot(s); err == nil {
		t.Error("illegal MBA level should be rejected")
	}

	s = m.Snapshot()
	s.NoiseCalls = 3 // machine runs noise-free; replay impossible
	if _, err := RestoreSnapshot(s); err == nil {
		t.Error("noise replay on a noise-free machine should be rejected")
	}
}

// TestMachineSnapshotSolveCacheCounters: cumulative cache counters
// survive the round trip (fleet reports aggregate them).
func TestMachineSnapshotSolveCacheCounters(t *testing.T) {
	m := snapMachine(t, 0, WithSolveCache())
	for i := 0; i < 4; i++ {
		if err := m.Step(time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Solve(); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Snapshot()
	if s.SolveCache == nil {
		t.Fatal("cache-enabled machine should export cache counters")
	}
	r, err := RestoreSnapshot(s, WithSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	oh, om, _ := m.SolveCacheStats()
	rh, rm, _ := r.SolveCacheStats()
	if oh != rh || om != rm {
		t.Errorf("cache counters: orig hits=%d misses=%d, restored hits=%d misses=%d", oh, om, rh, rm)
	}

	// A cache-less machine must not export stats.
	plain := snapMachine(t, 0)
	if plain.Snapshot().SolveCache != nil {
		t.Error("cache-less machine should not export cache counters")
	}
}
